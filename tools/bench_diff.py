#!/usr/bin/env python3
"""Compare two bench ``--json`` reports and flag wall-time regressions.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold PCT]
                        [--metric COLUMN]

Both files follow the schema written by ``da::obs::BenchReporter`` (see
docs/OBSERVABILITY.md). The comparison walks the rows of the captured
``benchmarks`` table (one row per google-benchmark run, keyed by the
benchmark's full name, e.g. ``BM_BehaviorSearch/5/1``) and reports every
row whose ``real_ms`` grew by more than ``--threshold`` percent (default
15). Rows present only in the baseline are reported as ``REMOVED`` —
coverage that silently disappeared deserves a visible diff line — and
rows present only in the candidate as ``ADDED``; neither fails the run.

Exit status: 0 when no row regressed past the threshold (including when
either report carries no benchmarks table at all — old baselines), 1 when
at least one did. CI runs this as an advisory step: shared-runner timing
noise means a red result is a prompt to look, not a gate.

Standard library only.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_rows(path: str, metric: str) -> dict[str, float] | None:
    """Benchmark name -> metric value, or None if no benchmarks table."""
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    for table in report.get("tables", []):
        if table.get("name") != "benchmarks":
            continue
        header = table.get("header", [])
        if "benchmark" not in header or metric not in header:
            raise SystemExit(
                f"{path}: benchmarks table lacks a "
                f"'benchmark' or '{metric}' column: {header}"
            )
        name_col = header.index("benchmark")
        metric_col = header.index(metric)
        rows = {}
        for row in table.get("rows", []):
            rows[row[name_col]] = float(row[metric_col])
        return rows
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline bench report (JSON)")
    parser.add_argument("candidate", help="candidate bench report (JSON)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=15.0,
        metavar="PCT",
        help="regression threshold in percent (default: %(default)s)",
    )
    parser.add_argument(
        "--metric",
        default="real_ms",
        help="benchmarks-table column to compare (default: %(default)s)",
    )
    args = parser.parse_args()

    baseline = load_rows(args.baseline, args.metric)
    candidate = load_rows(args.candidate, args.metric)
    if baseline is None or candidate is None:
        missing = args.baseline if baseline is None else args.candidate
        print(f"note: {missing} has no 'benchmarks' table; nothing to compare")
        return 0

    shared = sorted(set(baseline) & set(candidate))
    regressions = []
    print(
        f"{'benchmark':<40} {'base ' + args.metric:>14} "
        f"{'cand ' + args.metric:>14} {'delta':>9}"
    )
    for name in shared:
        base = baseline[name]
        cand = candidate[name]
        delta_pct = 0.0 if base == 0 else (cand - base) / base * 100.0
        flag = ""
        if delta_pct > args.threshold:
            regressions.append((name, base, cand, delta_pct))
            flag = "  << REGRESSION"
        print(f"{name:<40} {base:>14.3f} {cand:>14.3f} {delta_pct:>+8.1f}%{flag}")

    removed = sorted(set(baseline) - set(candidate))
    added = sorted(set(candidate) - set(baseline))
    for name in removed:
        print(
            f"{name:<40} {baseline[name]:>14.3f} {'--':>14} {'':>9}"
            "  << REMOVED (advisory: benchmark row gone from candidate)"
        )
    for name in added:
        print(f"{name:<40} {'--':>14} {candidate[name]:>14.3f} {'':>9}  ADDED")
    if removed:
        print(
            f"\nnote: {len(removed)} benchmark row(s) present in the baseline "
            "were not produced by the candidate (advisory, not a failure)"
        )

    if regressions:
        print(
            f"\n{len(regressions)} row(s) regressed more than "
            f"{args.threshold:.0f}% on {args.metric}:"
        )
        for name, base, cand, delta_pct in regressions:
            print(f"  {name}: {base:.3f} -> {cand:.3f} ({delta_pct:+.1f}%)")
        return 1
    print(f"\nno regression beyond {args.threshold:.0f}% across {len(shared)} rows")
    return 0


if __name__ == "__main__":
    sys.exit(main())
