#!/usr/bin/env python3
"""Compare two bench ``--json`` reports and flag wall-time regressions.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold PCT]
                        [--metric COLUMN] [--quantile-threshold PCT]
                        [--require-rows NAME ...]
    tools/bench_diff.py --self-test

Both files follow the schema written by ``da::obs::BenchReporter`` (see
docs/OBSERVABILITY.md). The comparison walks the rows of the captured
``benchmarks`` table (one row per google-benchmark run, keyed by the
benchmark's full name, e.g. ``BM_BehaviorSearch/5/1``) and reports every
row whose ``real_ms`` grew by more than ``--threshold`` percent (default
15). Rows present only in the baseline are reported as ``REMOVED`` —
coverage that silently disappeared deserves a visible diff line — and
rows present only in the candidate as ``ADDED``; neither fails the run.

Two advisory passes ride along:

- the reports' recorded context (``seed``, ``jobs``) is compared first;
  a mismatch prints a loud warning, because timing and quantile deltas
  between differently-configured runs reflect the configuration, not the
  code (the BENCH_perf.json policy is seed 7 / jobs 1 / clean tree);
- the ``metrics.quantiles`` sections are diffed per sketch name on p50
  and p99. Latency quantiles are measured in *virtual* time, so they are
  deterministic — any drift past ``--quantile-threshold`` percent
  (default 5) means service behaviour changed, not the machine. Drift is
  printed as ``<< CHANGED`` but never fails the run: features legitimately
  move latency, the diff just makes the move visible.

``--require-rows NAME`` (repeatable) turns a missing candidate row into a
hard failure: the run exits 1 unless the candidate carries a benchmark
named ``NAME`` exactly or a parameterization of it (``NAME/...``). Rows
the benchmark suite is *supposed* to produce — the ablation rows CI keys
on — thus cannot silently vanish behind the advisory REMOVED note.

Exit status: 0 when no benchmarks-table row regressed past the threshold
(including when either report carries no benchmarks table at all — old
baselines), 1 when at least one did or a ``--require-rows`` name is
absent from the candidate. CI runs the timing diff as an advisory step:
shared-runner timing noise means a red result is a prompt to look, not a
gate. Required-row failures are not noise and are enforced.

``--self-test`` runs the built-in unit checks (synthetic reports through
the real comparison path) and exits 0/1; ctest wires this in as the
``bench_diff_self_test`` entry.

Standard library only.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def bench_rows(report: dict, path: str, metric: str) -> dict[str, float] | None:
    """Benchmark name -> metric value, or None if no benchmarks table."""
    for table in report.get("tables", []):
        if table.get("name") != "benchmarks":
            continue
        header = table.get("header", [])
        if "benchmark" not in header or metric not in header:
            raise SystemExit(
                f"{path}: benchmarks table lacks a "
                f"'benchmark' or '{metric}' column: {header}"
            )
        name_col = header.index("benchmark")
        metric_col = header.index(metric)
        rows = {}
        for row in table.get("rows", []):
            rows[row[name_col]] = float(row[metric_col])
        return rows
    return None


def context_warnings(baseline: dict, candidate: dict) -> list[str]:
    """Warn when the two reports were produced under different settings."""
    lines = []
    mismatched = [
        (field, baseline.get(field), candidate.get(field))
        for field in ("seed", "jobs")
        if baseline.get(field) != candidate.get(field)
    ]
    if mismatched:
        detail = ", ".join(
            f"{field} {base!r} vs {cand!r}" for field, base, cand in mismatched
        )
        lines.append(
            f"WARNING: reports were produced under different settings "
            f"({detail}); deltas below may reflect the configuration, not "
            f"the code (baseline policy: seed 7, jobs 1, clean tree)"
        )
    return lines


def quantile_rows(report: dict) -> dict[str, dict[str, float]]:
    """Sketch name -> {p50, p99}, from the metrics.quantiles section."""
    rows = {}
    quantiles = report.get("metrics", {}).get("quantiles", {})
    for name, sketch in quantiles.items():
        if not isinstance(sketch, dict):
            continue
        try:
            rows[name] = {
                "p50": float(sketch["p50"]),
                "p99": float(sketch["p99"]),
            }
        except (KeyError, TypeError, ValueError):
            continue
    return rows


def diff_quantiles(
    baseline: dict, candidate: dict, threshold: float
) -> tuple[list[str], int]:
    """Advisory p50/p99 diff of the metrics.quantiles sections.

    Returns (output lines, number of sketches drifting past threshold).
    """
    base = quantile_rows(baseline)
    cand = quantile_rows(candidate)
    shared = sorted(set(base) & set(cand))
    if not shared:
        return [], 0
    lines = [
        "",
        f"{'quantile sketch':<34} {'col':>4} {'base':>12} {'cand':>12} "
        f"{'delta':>9}",
    ]
    changed = 0
    for name in shared:
        drifted = False
        for col in ("p50", "p99"):
            b = base[name][col]
            c = cand[name][col]
            delta_pct = 0.0 if b == 0 else (c - b) / b * 100.0
            flag = ""
            if abs(delta_pct) > threshold or (b == 0) != (c == 0):
                drifted = True
                flag = "  << CHANGED"
            lines.append(
                f"{name:<34} {col:>4} {b:>12.4f} {c:>12.4f} "
                f"{delta_pct:>+8.1f}%{flag}"
            )
        if drifted:
            changed += 1
    if changed:
        lines.append(
            f"note: {changed} sketch(es) drifted past {threshold:.0f}% on "
            "p50/p99 — virtual-time quantiles are deterministic, so this is "
            "a behaviour change, not machine noise (advisory, not a failure)"
        )
    return lines, changed


def compare(
    baseline: dict,
    candidate: dict,
    *,
    metric: str = "real_ms",
    threshold: float = 15.0,
    quantile_threshold: float = 5.0,
    require_rows: list[str] | None = None,
    baseline_path: str = "<baseline>",
    candidate_path: str = "<candidate>",
) -> tuple[int, list[str]]:
    """Full report-vs-report comparison. Returns (exit status, lines)."""
    lines = context_warnings(baseline, candidate)

    base_rows = bench_rows(baseline, baseline_path, metric)
    cand_rows = bench_rows(candidate, candidate_path, metric)
    regressions = []
    if base_rows is None or cand_rows is None:
        missing = baseline_path if base_rows is None else candidate_path
        lines.append(
            f"note: {missing} has no 'benchmarks' table; nothing to compare"
        )
        shared = []
    else:
        shared = sorted(set(base_rows) & set(cand_rows))
        lines.append(
            f"{'benchmark':<40} {'base ' + metric:>14} "
            f"{'cand ' + metric:>14} {'delta':>9}"
        )
        for name in shared:
            base = base_rows[name]
            cand = cand_rows[name]
            delta_pct = 0.0 if base == 0 else (cand - base) / base * 100.0
            flag = ""
            if delta_pct > threshold:
                regressions.append((name, base, cand, delta_pct))
                flag = "  << REGRESSION"
            lines.append(
                f"{name:<40} {base:>14.3f} {cand:>14.3f} "
                f"{delta_pct:>+8.1f}%{flag}"
            )

        removed = sorted(set(base_rows) - set(cand_rows))
        added = sorted(set(cand_rows) - set(base_rows))
        for name in removed:
            lines.append(
                f"{name:<40} {base_rows[name]:>14.3f} {'--':>14} {'':>9}"
                "  << REMOVED (advisory: benchmark row gone from candidate)"
            )
        for name in added:
            lines.append(
                f"{name:<40} {'--':>14} {cand_rows[name]:>14.3f} {'':>9}"
                "  ADDED"
            )
        if removed:
            lines.append(
                f"\nnote: {len(removed)} benchmark row(s) present in the "
                "baseline were not produced by the candidate (advisory, "
                "not a failure)"
            )

    qlines, _ = diff_quantiles(baseline, candidate, quantile_threshold)
    lines.extend(qlines)

    # Required rows gate on the *candidate*: a name matches itself or any
    # parameterization of itself (NAME/...), so one entry covers a whole
    # google-benchmark Args family.
    missing_required = []
    for required in require_rows or []:
        present = cand_rows is not None and any(
            name == required or name.startswith(required + "/")
            for name in cand_rows
        )
        if not present:
            missing_required.append(required)
    if missing_required:
        lines.append(
            f"\n{len(missing_required)} required row(s) MISSING from the "
            "candidate (the benchmark suite no longer produces them):"
        )
        for required in missing_required:
            lines.append(f"  {required}")
        return 1, lines

    if regressions:
        lines.append(
            f"\n{len(regressions)} row(s) regressed more than "
            f"{threshold:.0f}% on {metric}:"
        )
        for name, base, cand, delta_pct in regressions:
            lines.append(f"  {name}: {base:.3f} -> {cand:.3f} ({delta_pct:+.1f}%)")
        return 1, lines
    if base_rows is not None and cand_rows is not None:
        lines.append(
            f"\nno regression beyond {threshold:.0f}% across "
            f"{len(shared)} rows"
        )
    return 0, lines


def _report(
    *,
    seed: int = 7,
    jobs: int = 1,
    benchmarks: dict[str, float] | None = None,
    quantiles: dict[str, dict[str, float]] | None = None,
) -> dict:
    """Minimal schema-shaped report for the self-test."""
    tables = []
    if benchmarks is not None:
        tables.append(
            {
                "name": "benchmarks",
                "header": ["benchmark", "real_ms", "cpu_ms", "iterations"],
                "rows": [
                    [name, value, value, 1]
                    for name, value in benchmarks.items()
                ],
            }
        )
    return {
        "bench": "bench_perf",
        "seed": seed,
        "jobs": jobs,
        "git_describe": "self-test",
        "tables": tables,
        "metrics": {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "quantiles": quantiles or {},
        },
    }


def self_test() -> int:
    """Unit checks for the comparison logic; exits nonzero on failure."""
    failures = []

    def check(label: str, ok: bool) -> None:
        print(f"  {'ok' if ok else 'FAIL'}  {label}")
        if not ok:
            failures.append(label)

    # 1. A >threshold wall-time regression fails the diff.
    status, lines = compare(
        _report(benchmarks={"BM_A": 10.0}),
        _report(benchmarks={"BM_A": 13.0}),
        threshold=15.0,
    )
    check("regression past threshold exits 1", status == 1)
    check(
        "regression row is flagged",
        any("REGRESSION" in line for line in lines),
    )

    # 2. Growth within the threshold passes.
    status, _ = compare(
        _report(benchmarks={"BM_A": 10.0}),
        _report(benchmarks={"BM_A": 11.0}),
        threshold=15.0,
    )
    check("in-threshold growth exits 0", status == 0)

    # 3. Removed/added rows are advisory, never failures.
    status, lines = compare(
        _report(benchmarks={"BM_A": 10.0, "BM_B": 5.0}),
        _report(benchmarks={"BM_A": 10.0, "BM_C": 5.0}),
    )
    check("removed/added rows stay advisory", status == 0)
    check("removed row printed", any("REMOVED" in line for line in lines))
    check("added row printed", any("ADDED" in line for line in lines))

    # 4. A missing benchmarks table compares clean (old baselines).
    status, lines = compare(
        _report(benchmarks=None),
        _report(benchmarks={"BM_A": 10.0}),
    )
    check("missing benchmarks table exits 0", status == 0)
    check(
        "missing table is noted",
        any("no 'benchmarks' table" in line for line in lines),
    )

    # 5. Seed/jobs context mismatch warns loudly (but does not fail).
    status, lines = compare(
        _report(seed=7, jobs=1, benchmarks={"BM_A": 10.0}),
        _report(seed=7, jobs=2, benchmarks={"BM_A": 10.0}),
    )
    check("context mismatch exits 0", status == 0)
    check(
        "context mismatch warns",
        any("different settings" in line and "jobs" in line for line in lines),
    )
    _, lines = compare(
        _report(benchmarks={"BM_A": 1.0}), _report(benchmarks={"BM_A": 1.0})
    )
    check(
        "matched context does not warn",
        not any("different settings" in line for line in lines),
    )

    # 6. Quantile p50/p99 drift past the quantile threshold is flagged.
    base_q = {"service.decision_latency": {"p50": 2.0, "p99": 8.0}}
    drift_q = {"service.decision_latency": {"p50": 2.0, "p99": 9.0}}
    status, lines = compare(
        _report(benchmarks={"BM_A": 1.0}, quantiles=base_q),
        _report(benchmarks={"BM_A": 1.0}, quantiles=drift_q),
        quantile_threshold=5.0,
    )
    check("quantile drift stays advisory", status == 0)
    check(
        "quantile drift is flagged",
        any("CHANGED" in line and "p99" in line for line in lines),
    )
    _, lines = compare(
        _report(benchmarks={"BM_A": 1.0}, quantiles=base_q),
        _report(benchmarks={"BM_A": 1.0}, quantiles=base_q),
    )
    check(
        "stable quantiles are not flagged",
        not any("CHANGED" in line for line in lines),
    )

    # 7. The symmetry-ablation rows (BM_BehaviorSearchCanonical/<n>/<sym>)
    # are keyed by their full parameterized name: a regression on one
    # parameterization flags that row alone, and a baseline that predates
    # the ablation treats the new rows as ADDED, not as a failure.
    canonical_rows = {
        "BM_BehaviorSearchCanonical/5/0": 40.0,
        "BM_BehaviorSearchCanonical/5/1": 8.0,
    }
    status, lines = compare(
        _report(benchmarks=canonical_rows),
        _report(
            benchmarks={
                "BM_BehaviorSearchCanonical/5/0": 41.0,
                "BM_BehaviorSearchCanonical/5/1": 16.0,
            }
        ),
        threshold=15.0,
    )
    check("canonical-row regression exits 1", status == 1)
    check(
        "only the regressed parameterization is flagged",
        any(
            "BM_BehaviorSearchCanonical/5/1" in line and "REGRESSION" in line
            for line in lines
        )
        and not any(
            "BM_BehaviorSearchCanonical/5/0" in line and "REGRESSION" in line
            for line in lines
        ),
    )
    status, lines = compare(
        _report(benchmarks={"BM_BehaviorSearch/5/1": 30.0}),
        _report(
            benchmarks={"BM_BehaviorSearch/5/1": 30.0, **canonical_rows}
        ),
    )
    check("new canonical rows vs old baseline exit 0", status == 0)
    check(
        "new canonical rows print as ADDED",
        sum(
            "BM_BehaviorSearchCanonical" in line and "ADDED" in line
            for line in lines
        )
        == 2,
    )

    # 8. The front-end and per-class rows (BM_FrontendThroughput/<jobs>,
    # BM_ServiceClassLatency/<class>) follow the same full-name keying: a
    # regression on one admission class flags that class alone, and a
    # baseline that predates the front-end treats its rows as ADDED.
    class_rows = {
        "BM_ServiceClassLatency/0": 3.0,
        "BM_ServiceClassLatency/1": 3.0,
        "BM_ServiceClassLatency/2": 3.0,
    }
    status, lines = compare(
        _report(benchmarks=class_rows),
        _report(
            benchmarks={
                "BM_ServiceClassLatency/0": 3.1,
                "BM_ServiceClassLatency/1": 6.0,
                "BM_ServiceClassLatency/2": 3.1,
            }
        ),
        threshold=15.0,
    )
    check("per-class regression exits 1", status == 1)
    check(
        "only the regressed class row is flagged",
        any(
            "BM_ServiceClassLatency/1" in line and "REGRESSION" in line
            for line in lines
        )
        and not any(
            "BM_ServiceClassLatency/0" in line and "REGRESSION" in line
            for line in lines
        ),
    )
    frontend_rows = {
        "BM_FrontendThroughput/1": 30.0,
        "BM_FrontendThroughput/4": 9.0,
    }
    status, lines = compare(
        _report(benchmarks={"BM_ServiceThroughput/1": 25.0}),
        _report(
            benchmarks={"BM_ServiceThroughput/1": 25.0, **frontend_rows}
        ),
    )
    check("new frontend rows vs old baseline exit 0", status == 0)
    check(
        "new frontend rows print as ADDED",
        sum(
            "BM_FrontendThroughput" in line and "ADDED" in line
            for line in lines
        )
        == 2,
    )

    # 9. --require-rows: a present row (exact or parameterized) passes; a
    # missing one fails hard even though REMOVED alone stays advisory.
    subset_rows = {
        "BM_BehaviorSearchSubsetCanonical/5/0": 8.0,
        "BM_BehaviorSearchSubsetCanonical/5/1": 2.0,
    }
    status, lines = compare(
        _report(benchmarks=subset_rows),
        _report(benchmarks=subset_rows),
        require_rows=["BM_BehaviorSearchSubsetCanonical"],
    )
    check("required parameterized row present exits 0", status == 0)
    status, lines = compare(
        _report(benchmarks=subset_rows),
        _report(benchmarks={"BM_A": 1.0}),
        require_rows=["BM_BehaviorSearchSubsetCanonical"],
    )
    check("required row missing exits 1", status == 1)
    check(
        "missing required row is named",
        any(
            "MISSING" in line or "BM_BehaviorSearchSubsetCanonical" == line.strip()
            for line in lines
        )
        and any("MISSING" in line for line in lines),
    )
    status, _ = compare(
        _report(benchmarks=subset_rows),
        _report(benchmarks={"BM_BehaviorSearchSubsetCanonicalX/5/1": 2.0}),
        require_rows=["BM_BehaviorSearchSubsetCanonical"],
    )
    check("prefix match requires a '/' boundary", status == 1)
    status, _ = compare(
        _report(benchmarks=subset_rows),
        _report(benchmarks=None),
        require_rows=["BM_BehaviorSearchSubsetCanonical"],
    )
    check("required rows fail on a missing benchmarks table", status == 1)
    status, _ = compare(
        _report(benchmarks={"BM_A": 10.0}),
        _report(benchmarks={"BM_A": 10.0, **subset_rows}),
        require_rows=["BM_BehaviorSearchSubsetCanonical", "BM_A"],
    )
    check("multiple required rows all present exit 0", status == 0)

    # 10. Malformed quantile entries are skipped, not fatal.
    status, _ = compare(
        _report(benchmarks={"BM_A": 1.0}, quantiles={"bad": {"p50": 1.0}}),
        _report(benchmarks={"BM_A": 1.0}, quantiles=base_q),
    )
    check("partial quantile entries are tolerated", status == 0)

    if failures:
        print(f"self-test: {len(failures)} check(s) FAILED")
        return 1
    print("self-test: all checks passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline", nargs="?", help="baseline bench report (JSON)"
    )
    parser.add_argument(
        "candidate", nargs="?", help="candidate bench report (JSON)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=15.0,
        metavar="PCT",
        help="regression threshold in percent (default: %(default)s)",
    )
    parser.add_argument(
        "--metric",
        default="real_ms",
        help="benchmarks-table column to compare (default: %(default)s)",
    )
    parser.add_argument(
        "--quantile-threshold",
        type=float,
        default=5.0,
        metavar="PCT",
        help="advisory p50/p99 drift threshold in percent "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--require-rows",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless the candidate carries this benchmark row (exact "
        "name or NAME/<args> parameterization); repeatable",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in unit checks and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.candidate is None:
        parser.error("baseline and candidate reports are required")

    status, lines = compare(
        load_report(args.baseline),
        load_report(args.candidate),
        metric=args.metric,
        threshold=args.threshold,
        quantile_threshold=args.quantile_threshold,
        require_rows=args.require_rows,
        baseline_path=args.baseline,
        candidate_path=args.candidate,
    )
    try:
        print("\n".join(lines))
    except BrokenPipeError:
        # A downstream `| head` closed the pipe early; swallow the write
        # error (and park stdout on devnull so interpreter shutdown does
        # not raise it again) but keep the regression exit status.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return status


if __name__ == "__main__":
    sys.exit(main())
