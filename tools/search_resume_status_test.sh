#!/bin/sh
# Golden-output test for `search_resume status`. The status report is a
# pure function of the frontier bytes (frontiers store no wall times), so
# its exact text is pinned here: percent-complete over the plan, the
# weighted-of-space total, the plan (quotient) line and the eta line.
# Usage: search_resume_status_test.sh <search_resume-binary>
set -eu

BIN=${1:?usage: search_resume_status_test.sh <search_resume-binary>}
TMP=$(mktemp -d "${TMPDIR:-/tmp}/sr_status.XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

# 1. Fresh quotiented frontier: init prints the v2 plan line, 0.0%
#    progress and an "unknown" eta carrying the remaining-shard count.
"$BIN" init --out "$TMP/f" --n 4 --m 1 --u 1 >"$TMP/fresh.out"
cat >"$TMP/fresh.golden" <<'EOF'
config        n=4 m=1 u=1 max_f=1 seed=1
space         112 ordinals, 2 shards (full plan)
plan          subset-quotiented, 2 conjugacy classes (da-frontier v2)
progress      0/2 shards settled, 0 ordinals scanned (0.0% of plan)
executions    0 representatives, 0 orbit-weighted (0.0% of space)
eta           unknown (2 shards remaining; run prints a live estimate)
verdict       no hit yet
EOF
diff -u "$TMP/fresh.golden" "$TMP/fresh.out"

# 2. `status` re-reads the file and must reproduce init's report exactly.
"$BIN" status --frontier "$TMP/f" >"$TMP/status.out"
diff -u "$TMP/fresh.golden" "$TMP/status.out"

# 3. Settled clean sweep: 100.0% of plan, orbit-weighted executions
#    reconciling to 100.0% of the unreduced space, eta "settled".
"$BIN" run --frontier "$TMP/f" --jobs 2 >/dev/null
"$BIN" status --frontier "$TMP/f" >"$TMP/settled.out"
cat >"$TMP/settled.golden" <<'EOF'
config        n=4 m=1 u=1 max_f=1 seed=1
space         112 ordinals, 2 shards (full plan)
plan          subset-quotiented, 2 conjugacy classes (da-frontier v2)
progress      2/2 shards settled, 80 ordinals scanned (100.0% of plan)
executions    30 representatives, 112 orbit-weighted (100.0% of space)
eta           settled
verdict       clean (settled)
EOF
diff -u "$TMP/settled.golden" "$TMP/settled.out"

# 4. --no-subset-symmetry writes a v1 file and reports the unquotiented
#    plan (more shards: no segments were skipped).
"$BIN" init --out "$TMP/v1" --n 4 --m 1 --u 1 --no-subset-symmetry \
  >"$TMP/v1.out"
grep -q '^plan          unquotiented (da-frontier v1)$' "$TMP/v1.out"
grep -q '^space         112 ordinals, 4 shards (full plan)$' "$TMP/v1.out"
head -n 1 "$TMP/v1" | grep -q '^da-frontier v1$'
head -n 1 "$TMP/f" | grep -q '^da-frontier v2$'

# 5. A partially-run violating frontier stays deterministic too: the hit
#    at ordinal 129 settles the verdict while a cancelled shard remains.
"$BIN" init --out "$TMP/hit" --n 4 --m 1 --u 2 >/dev/null
"$BIN" run --frontier "$TMP/hit" --jobs 2 >/dev/null
"$BIN" status --frontier "$TMP/hit" >"$TMP/hit.out"
cat >"$TMP/hit.golden" <<'EOF'
config        n=4 m=1 u=2 max_f=2 seed=1
space         3952 ordinals, 4 shards (full plan)
plan          subset-quotiented, 4 conjugacy classes (da-frontier v2)
progress      3/4 shards settled, 1104 ordinals scanned (81.2% of plan)
executions    42 representatives, 172 orbit-weighted (4.4% of space)
eta           settled
verdict       violation at ordinal 129 (settled)
EOF
diff -u "$TMP/hit.golden" "$TMP/hit.out"

echo "search_resume status golden: OK"
