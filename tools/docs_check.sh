#!/bin/sh
# docs-check: fail when the docs reference things that no longer exist.
#
# Wired into the test suite as the `docs_check` ctest entry. Checks, over
# README.md and docs/*.md:
#
#   1. every backticked repo path (src/..., bench/..., tests/...,
#      examples/..., docs/..., tools/...) exists (also trying the src/
#      prefix, for include-style paths like `da/da.hpp`);
#   2. every backticked `bench_*` / `test_*` name has a matching source
#      file under bench/ or tests/;
#   3. every backticked `build/examples/<name>` has examples/<name>.cpp;
#   4. every example source is mentioned in README.md (no undocumented
#      entry points);
#   5. the README Quickstart fence is byte-identical to the code part of
#      examples/readme_quickstart.cpp (so the snippet can never rot —
#      it is compiled by the regular build);
#   6. with --bench-json FILE (a real `bench --json` report; ctest feeds
#      the bench_perf_smoke output via a fixture), every key named in the
#      docs/OBSERVABILITY.md schema example is present in FILE, so the
#      documented schema cannot drift from what benches actually emit;
#   7. with --plan-check BIN (the built examples/inject_replay.cpp), the
#      ```plan fence in docs/INJECTION.md is fed to the real FaultPlan
#      parser via `BIN --check-plan`, so the documented example plan
#      cannot drift from the grammar the parser accepts;
#   8. with --service-demo BIN (the built examples/service_demo.cpp),
#      every non-comment line of the ```demo fence in docs/SERVICE.md is
#      run as arguments to BIN, so the documented walkthrough commands
#      cannot drift from the flags the demo accepts;
#   9. with --span-check BIN (the built examples/span_inspect.cpp), the
#      demo run is executed, its spans.jsonl must pass `BIN check`, and
#      every span field named in the ```spans fence of
#      docs/OBSERVABILITY.md must occur in the emitted JSONL, so the
#      documented span schema cannot drift from what the service records.
#  10. with --frontier-check BIN (the built examples/search_resume.cpp),
#      every ```frontier fence in docs/SEARCH.md is written to its own
#      file and fed to `BIN status --frontier` individually, so each
#      documented frontier example (the v1 plan and the v2 quotient) must
#      parse with the real parser on its own.
#
# Usage: docs_check.sh [--bench-json FILE] [--plan-check BIN]
#                      [--service-demo BIN] [--span-check BIN]
#                      [--frontier-check BIN] [repo-root]
#        (repo-root defaults to the script's parent dir)

set -u
bench_json=
plan_check=
service_demo=
span_check=
frontier_check=
while :; do
  case ${1:-} in
    --bench-json) bench_json=$2; shift 2 ;;
    --plan-check) plan_check=$2; shift 2 ;;
    --service-demo) service_demo=$2; shift 2 ;;
    --span-check) span_check=$2; shift 2 ;;
    --frontier-check) frontier_check=$2; shift 2 ;;
    *) break ;;
  esac
done
root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root" || exit 2

tmpdir=$(mktemp -d) || exit 2
trap 'rm -rf "$tmpdir"' EXIT INT TERM

status=0
fail() {
  echo "docs-check: $1" >&2
  status=1
}

docs="README.md"
for f in docs/*.md; do
  [ -e "$f" ] && docs="$docs $f"
done

# Every backticked token, one per line, with its source doc prefixed.
tokens=$(
  for doc in $docs; do
    grep -o '`[^`]*`' "$doc" | sed -e 's/^`//' -e 's/`$//' \
      -e "s|^|$doc:|"
  done
)

echo "$tokens" | while IFS=: read -r doc tok; do
  case $tok in
    *'*'* | *' '* | '') continue ;;  # globs, phrases
  esac
  case $tok in
    src/* | bench/* | tests/* | examples/* | docs/* | tools/*)
      if [ ! -e "$tok" ] && [ ! -e "src/$tok" ]; then
        echo "$doc: stale path \`$tok\`"
      fi
      ;;
    build/examples/*)
      name=${tok#build/examples/}
      [ -e "examples/$name.cpp" ] || \
        echo "$doc: stale example reference \`$tok\` (no examples/$name.cpp)"
      ;;
    bench_*)
      [ -e "bench/$tok.cpp" ] || \
        echo "$doc: stale bench name \`$tok\` (no bench/$tok.cpp)"
      ;;
    test_*)
      [ -e "tests/$tok.cpp" ] || \
        echo "$doc: stale test name \`$tok\` (no tests/$tok.cpp)"
      ;;
  esac
done > "$tmpdir/stale"
if [ -s "$tmpdir/stale" ]; then
  cat "$tmpdir/stale" >&2
  fail "stale references found"
fi

# 4. Every example must be mentioned in the README.
for src in examples/*.cpp; do
  name=$(basename "$src" .cpp)
  grep -q "$name" README.md || \
    fail "examples/$name.cpp is not mentioned in README.md"
done

# 5. README Quickstart fence == examples/readme_quickstart.cpp body.
awk '/^```cpp$/{grab=1; next} /^```$/{if (grab) exit} grab' README.md \
  > "$tmpdir/readme"
sed -n '/^#include/,$p' examples/readme_quickstart.cpp \
  > "$tmpdir/example"
if ! diff -u "$tmpdir/readme" "$tmpdir/example" > "$tmpdir/diff" 2>&1; then
  cat "$tmpdir/diff" >&2
  fail "README Quickstart snippet != examples/readme_quickstart.cpp"
fi

# 6. The OBSERVABILITY.md schema example vs a real bench report: every
#    JSON key the example documents must occur in the real file.
if [ -n "$bench_json" ]; then
  if [ ! -e "$bench_json" ]; then
    fail "--bench-json: $bench_json does not exist"
  elif [ ! -e docs/OBSERVABILITY.md ]; then
    fail "--bench-json given but docs/OBSERVABILITY.md is missing"
  else
    awk '/^```json$/{grab=1; next} /^```$/{grab=0} grab' \
        docs/OBSERVABILITY.md \
      | grep -o '"[A-Za-z_][A-Za-z0-9_.]*" *:' \
      | sed -e 's/^"//' -e 's/" *:$//' | sort -u > "$tmpdir/schema_keys"
    if [ ! -s "$tmpdir/schema_keys" ]; then
      fail "no json fence with keys found in docs/OBSERVABILITY.md"
    fi
    while IFS= read -r key; do
      grep -q "\"$key\"" "$bench_json" || \
        fail "schema example key \`$key\` absent from $bench_json"
    done < "$tmpdir/schema_keys"
  fi
fi

# 7. The INJECTION.md example plan must parse with the real parser.
if [ -n "$plan_check" ]; then
  if [ ! -x "$plan_check" ]; then
    fail "--plan-check: $plan_check is not executable"
  elif [ ! -e docs/INJECTION.md ]; then
    fail "--plan-check given but docs/INJECTION.md is missing"
  else
    awk '/^```plan$/{grab=1; next} /^```$/{grab=0} grab' docs/INJECTION.md \
      > "$tmpdir/plan"
    if [ ! -s "$tmpdir/plan" ]; then
      fail "no \`\`\`plan fence found in docs/INJECTION.md"
    elif ! "$plan_check" --check-plan "$tmpdir/plan" \
           > /dev/null 2> "$tmpdir/plan_err"; then
      cat "$tmpdir/plan_err" >&2
      fail "docs/INJECTION.md example plan rejected by the parser"
    fi
  fi
fi

# 8. Every command line in the SERVICE.md walkthrough fence must run
#    cleanly against the real demo binary. Lines are the demo's argument
#    lists (the leading "service_demo" word is optional); '#' comments and
#    blank lines are skipped.
if [ -n "$service_demo" ]; then
  if [ ! -x "$service_demo" ]; then
    fail "--service-demo: $service_demo is not executable"
  elif [ ! -e docs/SERVICE.md ]; then
    fail "--service-demo given but docs/SERVICE.md is missing"
  else
    awk '/^```demo$/{grab=1; next} /^```$/{grab=0} grab' docs/SERVICE.md \
      > "$tmpdir/demo"
    if [ ! -s "$tmpdir/demo" ]; then
      fail "no \`\`\`demo fence found in docs/SERVICE.md"
    else
      ran=0
      while IFS= read -r line; do
        case $line in
          '#'* | '') continue ;;
        esac
        args=${line#service_demo}
        # shellcheck disable=SC2086  # word splitting is the point
        if ! "$service_demo" $args > /dev/null 2> "$tmpdir/demo_err"; then
          cat "$tmpdir/demo_err" >&2
          fail "docs/SERVICE.md demo line failed: $line"
        fi
        ran=$((ran + 1))
      done < "$tmpdir/demo"
      [ "$ran" -gt 0 ] || \
        fail "docs/SERVICE.md demo fence contains no runnable lines"
    fi
  fi
fi

# 9. The OBSERVABILITY.md span schema vs real span_inspect output: the
#    demo run must produce a spans.jsonl that passes the structural
#    checker, and every field the ```spans fence documents must occur in
#    the emitted JSONL.
if [ -n "$span_check" ]; then
  if [ ! -x "$span_check" ]; then
    fail "--span-check: $span_check is not executable"
  elif [ ! -e docs/OBSERVABILITY.md ]; then
    fail "--span-check given but docs/OBSERVABILITY.md is missing"
  else
    if ! "$span_check" demo "$tmpdir/spandemo" \
         > /dev/null 2> "$tmpdir/span_err"; then
      cat "$tmpdir/span_err" >&2
      fail "span_inspect demo run failed"
    elif ! "$span_check" check "$tmpdir/spandemo/spans.jsonl" \
           > /dev/null 2> "$tmpdir/span_err"; then
      cat "$tmpdir/span_err" >&2
      fail "span_inspect demo spans fail the structural check"
    else
      awk '/^```spans$/{grab=1; next} /^```$/{grab=0} grab' \
          docs/OBSERVABILITY.md \
        | grep -o '"[A-Za-z_][A-Za-z0-9_]*":' \
        | sed -e 's/^"//' -e 's/":$//' | sort -u > "$tmpdir/span_keys"
      if [ ! -s "$tmpdir/span_keys" ]; then
        fail "no \`\`\`spans fence with fields found in docs/OBSERVABILITY.md"
      fi
      while IFS= read -r key; do
        grep -q "\"$key\"" "$tmpdir/spandemo/spans.jsonl" || \
          fail "span schema field \`$key\` absent from the demo spans.jsonl"
      done < "$tmpdir/span_keys"
    fi
  fi
fi

# 10. Every SEARCH.md example frontier must parse with the real parser —
# each ```frontier fence is validated on its own, not concatenated.
if [ -n "$frontier_check" ]; then
  if [ ! -x "$frontier_check" ]; then
    fail "--frontier-check: $frontier_check is not executable"
  elif [ ! -e docs/SEARCH.md ]; then
    fail "--frontier-check given but docs/SEARCH.md is missing"
  else
    fence_count=$(awk -v dir="$tmpdir" '
      /^```frontier$/ { grab = 1; ++n; next }
      /^```$/         { grab = 0 }
      grab            { print > (dir "/frontier." n) }
      END             { print n }' docs/SEARCH.md)
    if [ "${fence_count:-0}" -eq 0 ]; then
      fail "no \`\`\`frontier fence found in docs/SEARCH.md"
    else
      i=1
      while [ "$i" -le "$fence_count" ]; do
        if [ ! -s "$tmpdir/frontier.$i" ]; then
          fail "docs/SEARCH.md \`\`\`frontier fence #$i is empty"
        elif ! "$frontier_check" status --frontier "$tmpdir/frontier.$i" \
               > /dev/null 2> "$tmpdir/frontier_err"; then
          cat "$tmpdir/frontier_err" >&2
          fail "docs/SEARCH.md \`\`\`frontier fence #$i rejected by the parser"
        fi
        i=$((i + 1))
      done
    fi
  fi
fi

[ $status -eq 0 ] && echo "docs-check: OK"
exit $status
