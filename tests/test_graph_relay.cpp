#include "relay/graph_network.hpp"

#include <gtest/gtest.h>

#include "core/agreement.hpp"
#include "faults/adversaries.hpp"
#include "graph/connectivity.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"

namespace da::relay {
namespace {

const HopCorruption kForge = [](NodeId, Value v) {
  return Value::of(v.raw() + 9999);
};

ConditionReport run_over(const graph::Graph& g, const Config& config,
                         const std::vector<NodeId>& faulty,
                         sim::Adversary* adversary) {
  const DegradableAgreement protocol(config);
  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = Value::of(42);
  spec.faulty = faulty;

  GraphRelayNetwork network(g, config.m, config.u, faulty, kForge);
  RunExtras extras;
  extras.network = &network;
  const Outcome outcome = protocol.run(spec, adversary, extras);
  return check_conditions(spec, outcome.decisions);
}

TEST(GraphRelay, DirectLinksPassThrough) {
  GraphRelayNetwork network(graph::complete(5), 1, 2, {}, kForge);
  const sim::Message msg{
      .from = 0, .to = 3, .round = 0, .value = Value::of(7)};
  const auto out = network.transit(msg);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->value, Value::of(7));
}

TEST(GraphRelay, NonAdjacentCleanChannelPreservesValue) {
  GraphRelayNetwork network(graph::circulant(9, 2), 1, 2, {}, kForge);
  const sim::Message msg{
      .from = 0, .to = 4, .round = 0, .value = Value::of(7)};
  const auto out = network.transit(msg);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->value, Value::of(7));
  EXPECT_EQ(network.paths_between(0, 4), 4);  // m+u+1
}

TEST(GraphRelay, FaultyInteriorDegradesToDefaultNotWrong) {
  // Two faulty interiors (u = 2): the channel may default but never lies.
  const auto g = graph::circulant(9, 2);
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<NodeId> faulty;
    for (const int x : rng.subset(7, 2)) faulty.push_back(x + 1);
    if (std::find(faulty.begin(), faulty.end(), 4) != faulty.end()) continue;
    GraphRelayNetwork network(g, 1, 2, faulty, kForge);
    const sim::Message msg{
        .from = 0, .to = 4, .round = 0, .value = Value::of(7)};
    const auto out = network.transit(msg);
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->value == Value::of(7) || out->value.is_default());
  }
}

TEST(GraphRelay, ByzOverSufficientConnectivityKeepsConditions) {
  // End-to-end: BYZ(1,1) for the 1/2-degradable config on a 4-connected
  // 9-node graph (connectivity = m+u+1 = 4). Faulty nodes equivocate at
  // protocol level AND corrupt relayed copies in transit.
  const auto g = graph::circulant(9, 2);
  ASSERT_EQ(graph::vertex_connectivity(g), 4);
  const Config config{.n = 9, .m = 1, .u = 2};

  for (int f = 0; f <= config.u; ++f) {
    Rng rng(static_cast<std::uint64_t>(f) + 11);
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<NodeId> faulty;
      for (const int x : rng.subset(config.n, f)) faulty.push_back(x);
      auto adversary = faults::equivocator(Value::of(42), Value::of(13));
      const ConditionReport report =
          run_over(g, config, faulty, f == 0 ? nullptr : adversary.get());
      EXPECT_TRUE(report.satisfied)
          << "f=" << f << " trial=" << trial << ": " << report.detail;
    }
  }
}

TEST(GraphRelay, ByzOverInsufficientConnectivityBreaks) {
  // Separator graph with a cut of exactly m+u = 3: one faulty cut node
  // (f = 1 <= m!) already breaks D.1 across the cut — Theorem 3's
  // necessity, observed end-to-end.
  const auto g = graph::separator_graph(3, 3, 3);  // nodes 3,4,5 = the cut
  ASSERT_EQ(graph::vertex_connectivity(g), 3);
  const Config config{.n = 9, .m = 1, .u = 2};

  auto adversary = faults::constant_liar(Value::of(13));
  const ConditionReport report = run_over(g, config, {4}, adversary.get());
  EXPECT_FALSE(report.satisfied);
}

TEST(GraphRelay, CompleteGraphIsIdenticalToPlainRun) {
  const Config config{.n = 7, .m = 1, .u = 4};
  const DegradableAgreement protocol(config);
  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 2;
  spec.sender_value = Value::of(5);
  spec.faulty = {0, 4};

  auto a1 = faults::equivocator(Value::of(5), Value::of(6));
  const Outcome plain = protocol.run(spec, a1.get());

  GraphRelayNetwork network(graph::complete(7), config.m, config.u,
                            spec.faulty, kForge);
  auto a2 = faults::equivocator(Value::of(5), Value::of(6));
  RunExtras extras;
  extras.network = &network;
  const Outcome relayed = protocol.run(spec, a2.get(), extras);
  EXPECT_EQ(plain.decisions, relayed.decisions);
}

TEST(GraphRelay, DisconnectedPairIsDropped) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  GraphRelayNetwork network(g, 0, 0, {}, kForge);
  const sim::Message msg{
      .from = 0, .to = 3, .round = 0, .value = Value::of(7)};
  EXPECT_FALSE(network.transit(msg).has_value());
  EXPECT_FALSE(network.deliver(msg));
}

}  // namespace
}  // namespace da::relay
