// The observability layer (src/obs/): the JSON document type and parser,
// the metrics registry with its thread-local sinks, the canonical JSONL
// trace export with per-node diffing, and the bench report schema
// validator.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/agreement.hpp"
#include "faults/figure2.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "sim/message.hpp"
#include "sim/trace.hpp"

namespace da::obs {
namespace {

// ---------------------------------------------------------------- json --

TEST(Json, ScalarsDumpCompact) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(-3).dump(), "-3");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersRoundTripExactly) {
  const std::int64_t big = 9007199254740993;  // not representable as double
  const auto parsed = Json::parse(Json(big).dump());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_integer());
  EXPECT_EQ(parsed->as_int(), big);
}

TEST(Json, Uint64AboveInt64MaxBecomesDouble) {
  const Json j(static_cast<std::uint64_t>(1) << 63);
  EXPECT_FALSE(j.is_integer());
  EXPECT_TRUE(j.is_number());
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, ObjectPreservesInsertionOrderAndSetReplaces) {
  Json obj = Json::object();
  obj.set("z", 1).set("a", 2).set("z", 3);
  EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
  ASSERT_NE(obj.find("a"), nullptr);
  EXPECT_EQ(obj.find("a")->as_int(), 2);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\n\t\x01").dump(),
            "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(Json, ParseRoundTripsNestedDocument) {
  Json doc = Json::object();
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(2.5);
  arr.push_back("three");
  arr.push_back(nullptr);
  doc.set("list", arr);
  doc.set("ok", true);

  const std::string pretty = doc.dump(2);
  const auto parsed = Json::parse(pretty);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, doc);
}

TEST(Json, ParseUnicodeEscape) {
  const auto parsed = Json::parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "A\xc3\xa9");
}

TEST(Json, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Json::parse("{\"a\":}", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Json::parse("[1,2", nullptr).has_value());
  EXPECT_FALSE(Json::parse("1 trailing", nullptr).has_value());
  EXPECT_FALSE(Json::parse("", nullptr).has_value());
}

// ------------------------------------------------------------- metrics --

TEST(Metrics, CounterAddsFlushOnScopeExit) {
#ifdef DA_METRICS_DISABLED
  GTEST_SKIP() << "metrics instruments are no-ops under -DDA_METRICS=OFF";
#endif
  auto& registry = MetricsRegistry::global();
  const std::uint64_t before = registry.counter_value("test.obs.counter");
  {
    const MetricsScope scope;
    const Counter counter("test.obs.counter");
    counter.add();
    counter.add(4);
  }
  EXPECT_EQ(registry.counter_value("test.obs.counter"), before + 5);
}

TEST(Metrics, PerThreadSinksMergeAcrossThreads) {
#ifdef DA_METRICS_DISABLED
  GTEST_SKIP() << "metrics instruments are no-ops under -DDA_METRICS=OFF";
#endif
  auto& registry = MetricsRegistry::global();
  const std::uint64_t before = registry.counter_value("test.obs.threads");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kAddsPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      const MetricsScope scope;
      const Counter counter("test.obs.threads");
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter_value("test.obs.threads"),
            before + kThreads * kAddsPerThread);
}

TEST(Metrics, HistogramSnapshotAggregates) {
#ifdef DA_METRICS_DISABLED
  GTEST_SKIP() << "metrics instruments are no-ops under -DDA_METRICS=OFF";
#endif
  auto& registry = MetricsRegistry::global();
  {
    const MetricsScope scope;
    const Histogram hist("test.obs.hist");
    hist.record(1.0);
    hist.record(2.0);
    hist.record(9.0);
  }
  const auto snap = registry.snapshot();
  const auto it = snap.histograms.find("test.obs.hist");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_GE(it->second.count, 3u);
  EXPECT_GE(it->second.sum, 12.0);
  EXPECT_GE(it->second.max, 9.0);
  std::uint64_t bucket_total = 0;
  for (const auto b : it->second.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, it->second.count);
}

TEST(Metrics, BucketOfIsMonotonicAndClamped) {
  EXPECT_EQ(HistogramSnapshot::bucket_of(0.0), 0u);
  std::size_t previous = 0;
  for (double v = 1e-4; v < 1e7; v *= 2) {
    const std::size_t bucket = HistogramSnapshot::bucket_of(v);
    EXPECT_GE(bucket, previous);
    EXPECT_LT(bucket, HistogramSnapshot::kBuckets);
    previous = bucket;
  }
  EXPECT_EQ(HistogramSnapshot::bucket_of(1e30),
            HistogramSnapshot::kBuckets - 1);
}

TEST(Metrics, GaugeIsLastWriteWins) {
#ifdef DA_METRICS_DISABLED
  GTEST_SKIP() << "metrics instruments are no-ops under -DDA_METRICS=OFF";
#endif
  auto& registry = MetricsRegistry::global();
  registry.set_gauge("test.obs.gauge", 1.0);
  registry.set_gauge("test.obs.gauge", 8.0);
  const auto snap = registry.snapshot();
  const auto it = snap.gauges.find("test.obs.gauge");
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_EQ(it->second, 8.0);
}

// -------------------------------------------------------- trace export --

sim::Trace figure2_trace(const faults::figure2::Scenario& scenario) {
  sim::Trace trace;
  const DegradableAgreement protocol(scenario.spec.config);
  RunExtras extras;
  extras.trace = &trace;
  (void)protocol.run(scenario.spec, scenario.adversary.get(), extras);
  return trace;
}

TEST(TraceExport, EventsAreCanonicalAndRoundTrip) {
  const auto scenario = faults::figure2::scenario_a(4);
  const sim::Trace trace = figure2_trace(scenario);
  const auto events = trace_events(trace);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.size(), trace.total_messages());
  for (std::size_t i = 1; i < events.size(); ++i) {
    const auto key = [](const TraceEvent& e) {
      return std::tuple(e.to, e.round, e.from, e.path);
    };
    EXPECT_LE(key(events[i - 1]), key(events[i]));
  }

  const std::string jsonl = trace_to_jsonl(events);
  std::string error;
  const auto parsed = read_trace_jsonl(jsonl, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, events);
}

TEST(TraceExport, IndistinguishableExecutionsExportIdentically) {
  // The Figure 2 (a)/(b) pair: node B (id 2) must see byte-identical
  // transcripts — the machine-checkable heart of the Theorem 2 proof.
  const auto sa = faults::figure2::scenario_a(4);
  const auto sb = faults::figure2::scenario_b(4);
  const auto ea = trace_events(figure2_trace(sa));
  const auto eb = trace_events(figure2_trace(sb));

  const auto only_node = [](const std::vector<TraceEvent>& events,
                            NodeId node) {
    std::vector<TraceEvent> out;
    for (const auto& e : events) {
      if (e.to == node) out.push_back(e);
    }
    return out;
  };
  EXPECT_EQ(trace_to_jsonl(only_node(ea, sb.pivot_node)),
            trace_to_jsonl(only_node(eb, sb.pivot_node)));

  const auto diff = diff_traces(ea, eb);
  bool pivot_seen = false;
  for (const auto& n : diff.nodes) {
    if (n.node == sb.pivot_node) {
      pivot_seen = true;
      EXPECT_TRUE(n.identical);
    }
  }
  EXPECT_TRUE(pivot_seen);
  // The executions differ overall (node A hears different stories).
  EXPECT_FALSE(diff.identical());
}

TEST(TraceExport, DiffReportsFirstDivergence) {
  TraceEvent base;
  base.to = 1;
  base.from = 0;
  base.round = 1;
  base.value_default = false;
  base.value = 7;

  TraceEvent changed = base;
  changed.round = 2;
  changed.value = 8;

  const std::vector<TraceEvent> a{base, changed};
  std::vector<TraceEvent> b{base, changed};
  b[1].value = 9;

  const auto diff = diff_traces(a, b);
  ASSERT_EQ(diff.nodes.size(), 1u);
  EXPECT_FALSE(diff.nodes[0].identical);
  EXPECT_EQ(diff.nodes[0].first_divergence, 1u);
  EXPECT_FALSE(diff.identical());

  // One side a strict prefix of the other: divergence at the shared length.
  const auto prefix_diff = diff_traces(a, {base});
  ASSERT_EQ(prefix_diff.nodes.size(), 1u);
  EXPECT_FALSE(prefix_diff.nodes[0].identical);
  EXPECT_EQ(prefix_diff.nodes[0].first_divergence, 1u);
}

TEST(TraceExport, ReadRejectsMalformedLinesWithLineNumber) {
  TraceEvent event;
  event.to = 1;
  event.from = 0;
  event.round = 1;
  const std::string valid_line = trace_to_jsonl({event});
  ASSERT_TRUE(read_trace_jsonl(valid_line).has_value());

  std::string error;
  EXPECT_FALSE(read_trace_jsonl(valid_line + "not json\n", &error)
                   .has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(TraceExport, WireBytesMatchMessageSize) {
  sim::Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.round = 1;
  msg.path = {0};
  msg.value = Value::of(7);
  sim::Trace trace;
  trace.record(msg);
  const auto events = trace_events(trace);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].wire_bytes, sim::wire_size_bytes(msg));
}

// ------------------------------------------------------- bench schema --

Json minimal_report() {
  Json report = Json::object();
  report.set("bench", "bench_x");
  report.set("seed", 7);
  report.set("jobs", 1);
  report.set("git_describe", "abc123");
  Json table = Json::object();
  table.set("name", "t");
  Json header = Json::array();
  header.push_back("col");
  table.set("header", header);
  Json row = Json::array();
  row.push_back("v");
  Json rows = Json::array();
  rows.push_back(row);
  table.set("rows", rows);
  Json tables = Json::array();
  tables.push_back(table);
  report.set("tables", tables);
  report.set("metrics", metrics_to_json());
  return report;
}

TEST(BenchSchema, AcceptsMinimalReport) {
  std::string error;
  EXPECT_TRUE(validate_bench_schema(minimal_report(), &error)) << error;
}

TEST(BenchSchema, RejectsMissingOrMistypedFields) {
  for (const char* field : {"bench", "seed", "jobs", "git_describe", "tables",
                            "metrics"}) {
    Json report = minimal_report();
    Json broken = Json::object();
    for (const auto& [key, value] : report.as_object()) {
      if (key != field) broken.set(key, value);
    }
    std::string error;
    EXPECT_FALSE(validate_bench_schema(broken, &error)) << field;
    EXPECT_NE(error.find(field), std::string::npos) << error;
  }

  Json mistyped = minimal_report();
  mistyped.set("seed", "seven");
  EXPECT_FALSE(validate_bench_schema(mistyped, nullptr));
}

TEST(BenchSchema, RejectsRowArityMismatch) {
  Json report = minimal_report();
  Json table = report.find("tables")->at(0);
  Json row = Json::array();
  row.push_back("a");
  row.push_back("b");  // header has one column
  Json rows = Json::array();
  rows.push_back(row);
  table.set("rows", rows);
  Json tables = Json::array();
  tables.push_back(table);
  report.set("tables", tables);
  std::string error;
  EXPECT_FALSE(validate_bench_schema(report, &error));
}

TEST(BenchSchema, MetricsToJsonContainsRegistryCounters) {
#ifdef DA_METRICS_DISABLED
  GTEST_SKIP() << "metrics instruments are no-ops under -DDA_METRICS=OFF";
#endif
  {
    const MetricsScope scope;
    const Counter counter("test.obs.schema_counter");
    counter.add(3);
  }
  const Json metrics = metrics_to_json();
  const Json* counters = metrics.find("counters");
  ASSERT_NE(counters, nullptr);
  const Json* value = counters->find("test.obs.schema_counter");
  ASSERT_NE(value, nullptr);
  EXPECT_GE(value->as_int(), 3);
}

}  // namespace
}  // namespace da::obs
