// Differential property tests for the arena-backed EigTree: a map-based
// reference tree (the pre-arena implementation, kept here as an executable
// specification) must agree with the arena on get()/has(), on resolve()
// under every applicable rule, and — end to end — on the D.1-D.4 verdicts
// of full BYZ executions replayed from their transcripts.
//
// A fixed regression corpus (tests/corpus/eig_layout.txt, lines of
// `seed ordinal`, # comments) replays first; randomized sweeps follow.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <numeric>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/byz.hpp"
#include "core/checker.hpp"
#include "faults/search.hpp"
#include "protocols/common/eig.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace da::protocols {
namespace {

/// Executable specification: the hash-map EIG tree this repo used before
/// the flat arena. Absent slots read as V_d; resolve is the direct
/// recursive transcription of the paper's rule.
class RefEigTree {
 public:
  RefEigTree(NodeId self, NodeId sender, std::vector<NodeId> nodes, int depth)
      : self_(self), sender_(sender), nodes_(std::move(nodes)), depth_(depth) {
    std::sort(nodes_.begin(), nodes_.end());
  }

  void set(const Path& path, Value v) { values_.emplace(path, v); }

  [[nodiscard]] Value get(const Path& path) const {
    const auto it = values_.find(path);
    return it == values_.end() ? Value::def() : it->second;
  }

  [[nodiscard]] bool has(const Path& path) const {
    return values_.contains(path);
  }

  [[nodiscard]] Value resolve(const Resolver& rule) const {
    Path root;
    root.push_back(sender_);
    return resolve_at(root, rule);
  }

 private:
  [[nodiscard]] Value resolve_at(const Path& path,
                                 const Resolver& rule) const {
    if (static_cast<int>(path.size()) == depth_) return get(path);
    const int n_sub = static_cast<int>(nodes_.size()) -
                      static_cast<int>(path.size()) + 1;
    std::vector<Value> w;
    w.push_back(get(path));
    for (NodeId j : nodes_) {
      if (j == self_ || path.contains(j)) continue;
      w.push_back(resolve_at(path.extended(j), rule));
    }
    return rule.resolve(n_sub, w);
  }

  NodeId self_;
  NodeId sender_;
  std::vector<NodeId> nodes_;
  int depth_;
  std::unordered_map<Path, Value> values_;
};

/// Every storable path: starts at the first element of `cur`, distinct
/// participants, length <= depth.
void enumerate_paths(const std::vector<NodeId>& nodes, const Path& cur,
                     int depth, std::vector<Path>* out) {
  out->push_back(cur);
  if (static_cast<int>(cur.size()) == depth) return;
  for (NodeId j : nodes) {
    if (!cur.contains(j)) enumerate_paths(nodes, cur.extended(j), depth, out);
  }
}

/// One ordinal of the tree-level differential: random shape (including
/// non-contiguous, shuffled node ids and self == sender), random sparse
/// fill, then arena and reference compared slot by slot and rule by rule.
bool tree_case(std::uint64_t seed, std::uint64_t ordinal,
               std::string* failure) {
  Rng rng(mix64(seed, ordinal));
  const int n = 2 + static_cast<int>(rng.below(9));  // 2..10
  const int depth = 1 + static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(std::min(4, n - 1))));
  // Non-contiguous ids with a random base exercise the rank mapping.
  const NodeId base = static_cast<NodeId>(rng.below(4));
  const NodeId stride = 1 + static_cast<NodeId>(rng.below(3));
  std::vector<NodeId> nodes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    nodes[static_cast<std::size_t>(i)] = base + stride * i;
  }
  const NodeId sender =
      nodes[rng.below(static_cast<std::uint64_t>(n))];
  // self == sender is a storage-only configuration: the sender decides on
  // its own input and never resolves (both implementations assert w-size
  // in resolve under that shape), so resolve comparisons need self to be
  // a receiver. get/has still cover the sender's tree below.
  const NodeId self = nodes[rng.below(static_cast<std::uint64_t>(n))];
  const bool can_resolve = self != sender || depth == 1;
  std::vector<NodeId> shuffled = nodes;
  rng.shuffle(shuffled);

  EigTree arena(self, sender, shuffled, depth);
  RefEigTree ref(self, sender, shuffled, depth);

  Path root;
  root.push_back(sender);
  std::vector<Path> paths;
  enumerate_paths(nodes, root, depth, &paths);
  for (const Path& p : paths) {
    const std::uint64_t roll = rng.below(10);
    if (roll >= 6) continue;  // leave the slot absent
    const Value v =
        roll == 0 ? Value::def() : Value::of(rng.range(1, 5));
    arena.set(p, v);
    ref.set(p, v);
  }

  const auto describe = [&](const char* what) {
    std::ostringstream out;
    out << "iter " << ordinal << " n=" << n << " depth=" << depth
        << " sender=" << sender << " self=" << self << ": " << what;
    return out.str();
  };

  for (const Path& p : paths) {
    if (arena.has(p) != ref.has(p) || !(arena.get(p) == ref.get(p))) {
      *failure = describe("get/has mismatch");
      return true;
    }
  }
  if (can_resolve) {
    const MajorityResolver majority;
    if (!(arena.resolve(majority) == ref.resolve(majority))) {
      *failure = describe("majority resolve mismatch");
      return true;
    }
    // Every m for which the deepest sub-instance still has alpha >= 1.
    for (int m = 0; m <= n - depth - 1; ++m) {
      const ByzResolver rule(m);
      if (!(arena.resolve(rule) == ref.resolve(rule))) {
        *failure = describe("byz resolve mismatch");
        return true;
      }
    }
  }
  return false;
}

bool replay_valid(NodeId self, NodeId sender, int n, int round,
                  const sim::Message& msg) {
  if (msg.to != self) return false;
  if (static_cast<int>(msg.path.size()) != round + 1) return false;
  if (msg.path.front() != sender) return false;
  if (msg.path.back() != msg.from) return false;
  if (!msg.path.distinct()) return false;
  if (msg.path.contains(self)) return false;
  for (NodeId hop : msg.path) {
    if (hop < 0 || hop >= n) return false;
  }
  return true;
}

/// One ordinal of the end-to-end differential: run BYZ(m) on the sync
/// runner under a randomly drawn member of the standard attack family,
/// replay each fault-free receiver's transcript into the reference tree
/// (same validation and first-delivery-wins dedupe as EigProcess), and
/// require identical decisions and identical D.1-D.4 verdicts.
bool verdict_case(std::uint64_t seed, std::uint64_t ordinal,
                  std::string* failure) {
  Rng rng(mix64(seed, ordinal));
  const int m = static_cast<int>(rng.below(4));  // depth = m+1 <= 4
  const int u = std::max(1, m + static_cast<int>(rng.below(3)));
  const int slack = static_cast<int>(rng.below(2));
  const Config config{.n = 2 * m + u + 1 + slack, .m = m, .u = u};
  if (config.n > 10) return false;  // keep the sweep bounded

  ScenarioSpec spec;
  spec.config = config;
  spec.sender =
      static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(config.n)));
  spec.sender_value = Value::of(rng.range(1, 100));
  const int f = static_cast<int>(
      rng.below(static_cast<std::uint64_t>(config.u) + 1));
  const auto subset = rng.subset(config.n, f);
  spec.faulty.assign(subset.begin(), subset.end());

  const auto family = faults::standard_family(mix64(seed, ordinal));
  const auto& factory = family[rng.below(family.size())];
  const auto adversary = factory.make(spec);

  sim::Trace trace;
  sim::RunOptions options;
  options.faulty = spec.faulty;
  options.adversary = adversary.get();
  options.trace = &trace;
  sim::SyncRunner runner(
      core::make_byz_processes(config, spec.sender, spec.sender_value),
      std::move(options));
  const sim::RunResult result = runner.run();

  const int depth = core::byz_depth(m);
  const ByzResolver rule(m);
  std::vector<NodeId> all(static_cast<std::size_t>(config.n));
  std::iota(all.begin(), all.end(), 0);

  std::map<NodeId, Value> ref_decisions = result.decisions;
  for (NodeId node : spec.fault_free_receivers()) {
    RefEigTree ref(node, spec.sender, all, depth);
    std::vector<std::vector<sim::Message>> by_round(
        static_cast<std::size_t>(depth));
    for (const sim::Message& msg : trace.received(node)) {
      if (msg.round >= 0 && msg.round < depth) {
        by_round[static_cast<std::size_t>(msg.round)].push_back(msg);
      }
    }
    for (int r = 0; r < depth; ++r) {
      auto& inbox = by_round[static_cast<std::size_t>(r)];
      sim::sort_inbox(inbox);
      for (const sim::Message& msg : inbox) {
        if (!replay_valid(node, spec.sender, config.n, r, msg)) continue;
        if (ref.has(msg.path)) continue;
        ref.set(msg.path, msg.value);
      }
    }
    ref_decisions[node] = ref.resolve(rule);
    if (!(ref_decisions[node] == result.decisions.at(node))) {
      *failure = "iter " + std::to_string(ordinal) + " " + spec.to_string() +
                 " adversary=" + factory.name + ": node " +
                 std::to_string(node) + " decision mismatch";
      return true;
    }
  }

  const ConditionReport run_report = check_conditions(spec, result.decisions);
  const ConditionReport ref_report = check_conditions(spec, ref_decisions);
  if (run_report.applied != ref_report.applied ||
      run_report.satisfied != ref_report.satisfied ||
      run_report.value_class != ref_report.value_class ||
      run_report.default_class != ref_report.default_class ||
      run_report.corollary_m_plus_1 != ref_report.corollary_m_plus_1) {
    *failure = "iter " + std::to_string(ordinal) + " " + spec.to_string() +
               " adversary=" + factory.name + ": verdict mismatch (" +
               run_report.detail + " vs " + ref_report.detail + ")";
    return true;
  }
  return false;
}

/// Replays tests/corpus/eig_layout.txt through one of the case functions.
void replay_corpus(bool (*layout_case)(std::uint64_t, std::uint64_t,
                                       std::string*)) {
  std::ifstream in(std::string(DA_TEST_CORPUS_DIR) + "/eig_layout.txt");
  ASSERT_TRUE(in.is_open()) << "missing tests/corpus/eig_layout.txt";
  std::string line;
  int replayed = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::uint64_t seed = 0;
    std::uint64_t ordinal = 0;
    ASSERT_TRUE(fields >> seed >> ordinal) << "bad corpus line: " << line;
    std::string failure;
    EXPECT_FALSE(layout_case(seed, ordinal, &failure))
        << "eig_layout.txt " << seed << " " << ordinal << ": " << failure;
    ++replayed;
  }
  EXPECT_GE(replayed, 4) << "eig_layout.txt corpus is unexpectedly small";
}

TEST(EigLayoutProperty, CorpusTreeReplay) { replay_corpus(tree_case); }

TEST(EigLayoutProperty, CorpusVerdictReplay) { replay_corpus(verdict_case); }

TEST(EigLayoutProperty, ArenaMatchesReferenceTree) {
  constexpr std::uint64_t kIterations = 300;
  for (std::uint64_t ordinal = 0; ordinal < kIterations; ++ordinal) {
    std::string failure;
    ASSERT_FALSE(tree_case(0xA12E4A, ordinal, &failure)) << failure;
  }
}

TEST(EigLayoutProperty, VerdictsMatchReference) {
  constexpr std::uint64_t kIterations = 80;
  for (std::uint64_t ordinal = 0; ordinal < kIterations; ++ordinal) {
    std::string failure;
    ASSERT_FALSE(verdict_case(0x5EED5, ordinal, &failure)) << failure;
  }
}

}  // namespace
}  // namespace da::protocols
