#include "event/event_runner.hpp"

#include <gtest/gtest.h>

#include "core/agreement.hpp"
#include "core/byz.hpp"
#include "faults/adversaries.hpp"
#include "obs/metrics.hpp"

namespace da::event {
namespace {

EventRunResult run_byz_event(const Config& config, const ScenarioSpec& spec,
                             sim::Adversary* adversary,
                             const TimingModel& timing,
                             std::vector<clocksync::HardwareClock> clocks) {
  sim::RunOptions options;
  options.faulty = spec.faulty;
  options.adversary = adversary;
  EventRunner runner(
      core::make_byz_processes(config, spec.sender, spec.sender_value),
      std::move(options), timing, std::move(clocks));
  return runner.run();
}

ScenarioSpec make_spec(const Config& config, std::vector<NodeId> faulty) {
  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = Value::of(42);
  spec.faulty = std::move(faulty);
  return spec;
}

TEST(EventRunner, PerfectClocksMatchSyncRunner) {
  const Config config{.n = 7, .m = 1, .u = 4};
  const auto spec = make_spec(config, {2, 5});
  const DegradableAgreement protocol(config);

  auto a1 = faults::equivocator(Value::of(42), Value::of(9));
  const Outcome sync_out = protocol.run(spec, a1.get());

  auto a2 = faults::equivocator(Value::of(42), Value::of(9));
  const EventRunResult event_out = run_byz_event(
      config, spec, a2.get(), TimingModel{}, perfect_clocks(config.n));

  EXPECT_EQ(event_out.base.decisions, sync_out.decisions);
  EXPECT_EQ(event_out.base.messages_sent, sync_out.messages_sent);
  EXPECT_EQ(event_out.base.messages_delivered, sync_out.messages_delivered);
  EXPECT_EQ(event_out.false_timeouts, 0u);
}

TEST(EventRunner, SmallSkewWithinMarginStillExact) {
  // |offset| <= 0.05 and latency <= 0.10: a fault-free round-r message
  // sent at local rP arrives by real rP + 0.05 + 0.10, i.e. by local
  // rP + 0.20 < rP + timeout(0.5) at any receiver. No false timeouts.
  const Config config{.n = 6, .m = 1, .u = 3};
  const auto spec = make_spec(config, {3});
  auto adversary = faults::constant_liar(Value::of(1));
  const EventRunResult result =
      run_byz_event(config, spec, adversary.get(), TimingModel{},
                    skewed_clocks(config.n, 0.05, 1e-6, 11));
  EXPECT_EQ(result.false_timeouts, 0u);
  const auto report = check_conditions(spec, result.base.decisions);
  EXPECT_EQ(report.applied, Condition::kD1);
  EXPECT_TRUE(report.satisfied) << report.detail;
}

TEST(EventRunner, CompletionTimeTracksRounds) {
  const Config config{.n = 5, .m = 2, .u = 2};  // 3 rounds
  const auto spec = make_spec(config, {});
  const EventRunResult result = run_byz_event(
      config, spec, nullptr, TimingModel{}, perfect_clocks(config.n));
  // Last deadline: local (rounds-1)*P + timeout = 2.0 + 0.5.
  EXPECT_DOUBLE_EQ(result.completion_time, 2.5);
}

TEST(EventRunner, GrossSkewCausesFalseTimeouts) {
  // One fault-free node half a round late: its relays miss everyone
  // else's deadlines and some messages to it arrive "early" (harmless),
  // so false timeouts appear even though nobody dropped anything.
  const Config config{.n = 7, .m = 1, .u = 4};
  const auto spec = make_spec(config, {1, 2});  // f = 2 > m: sync not owed
  auto clocks = perfect_clocks(config.n);
  clocks[6] = clocksync::HardwareClock(-0.6, 0.0);  // node 6 runs late
  auto adversary = faults::equivocator(Value::of(42), Value::of(9));
  const EventRunResult result =
      run_byz_event(config, spec, adversary.get(), TimingModel{},
                    std::move(clocks));
  EXPECT_GT(result.false_timeouts, 0u);

  // Section 6.1's claim, mechanistically: the degraded conditions still
  // hold under those organic false timeouts.
  const auto report = check_conditions(spec, result.base.decisions);
  EXPECT_EQ(report.applied, Condition::kD3);
  EXPECT_TRUE(report.satisfied) << report.detail;
}

TEST(EventRunner, SkewSweepNeverProducesWrongValues) {
  // However bad the clocks get, a fault-free receiver decides the sender's
  // value or V_d (f in the degraded range).
  const Config config{.n = 7, .m = 1, .u = 4};
  const auto spec = make_spec(config, {1, 2, 3});
  for (const double spread : {0.1, 0.3, 0.6, 0.9}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      auto adversary = faults::equivocator(Value::of(42), Value::of(9));
      const EventRunResult result =
          run_byz_event(config, spec, adversary.get(), TimingModel{},
                        skewed_clocks(config.n, spread, 1e-4, seed));
      for (NodeId r : spec.fault_free_receivers()) {
        const Value d = result.base.decisions.at(r);
        EXPECT_TRUE(d == spec.sender_value || d.is_default())
            << "spread=" << spread << " seed=" << seed << " node " << r
            << " -> " << d.to_string();
      }
    }
  }
}

TEST(EventRunner, TimeoutMarginControlsFalseTimeouts) {
  // Sweeping the timeout across the latency+skew margin: generous timeout
  // -> zero false timeouts; timeout below max latency -> many.
  const Config config{.n = 6, .m = 1, .u = 3};
  const auto spec = make_spec(config, {4});
  auto clocks = skewed_clocks(config.n, 0.02, 1e-6, 3);

  TimingModel tight;
  tight.timeout = 0.05;  // below max_latency = 0.10
  auto a1 = faults::constant_liar(Value::of(7));
  const EventRunResult tight_result =
      run_byz_event(config, spec, a1.get(), tight, clocks);

  TimingModel generous;
  generous.timeout = 0.5;
  auto a2 = faults::constant_liar(Value::of(7));
  const EventRunResult generous_result =
      run_byz_event(config, spec, a2.get(), generous, clocks);

  EXPECT_GT(tight_result.false_timeouts, 0u);
  EXPECT_EQ(generous_result.false_timeouts, 0u);
}

TEST(EventRunner, DeterministicAcrossRuns) {
  const Config config{.n = 7, .m = 2, .u = 2};
  const auto spec = make_spec(config, {0, 3});
  EventRunResult first;
  for (int i = 0; i < 2; ++i) {
    auto adversary = faults::random_noise(17, 0, 20, 0.3);
    EventRunResult result =
        run_byz_event(config, spec, adversary.get(), TimingModel{},
                      skewed_clocks(config.n, 0.2, 1e-4, 5));
    if (i == 0) {
      first = std::move(result);
    } else {
      EXPECT_EQ(result.base.decisions, first.base.decisions);
      EXPECT_EQ(result.false_timeouts, first.false_timeouts);
      EXPECT_DOUBLE_EQ(result.completion_time, first.completion_time);
    }
  }
}

TEST(EventRunner, FabricationToUnknownNodeIsDroppedAndCounted) {
  // Regression: a fabrication aimed at node n+3 used to trip the arrival
  // handler's index contract and abort the run; it must be dropped (and
  // counted) before an arrival event is ever scheduled.
  class ForeignTargetFabricator final : public sim::Adversary {
   public:
    explicit ForeignTargetFabricator(NodeId target) : target_(target) {}
    std::optional<sim::Message> corrupt(
        const sim::Message& original) override {
      return original;
    }
    std::vector<sim::Message> fabricate(NodeId node, int round) override {
      return {sim::Message{
          .from = node, .to = target_, .round = round, .value = Value::of(99)}};
    }

   private:
    NodeId target_;
  };

  const Config config{.n = 5, .m = 1, .u = 2};
  const auto spec = make_spec(config, {2});
  ForeignTargetFabricator adversary(/*target=*/config.n + 3);
#ifndef DA_METRICS_DISABLED
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t before =
      registry.counter_value("event.fabrications_dropped");
#endif
  const EventRunResult out = run_byz_event(
      config, spec, &adversary, TimingModel{}, perfect_clocks(config.n));
  // corrupt() is the identity, so the run matches a fault-free one except
  // for the fabricated sends (one per round) that are never delivered.
  EXPECT_EQ(out.base.messages_sent, out.base.messages_delivered + 2);
  EXPECT_EQ(out.false_timeouts, 0u);
  for (NodeId i = 0; i < config.n; ++i) {
    EXPECT_EQ(out.base.decisions.at(i), Value::of(42)) << "node " << i;
  }
#ifndef DA_METRICS_DISABLED
  EXPECT_EQ(registry.counter_value("event.fabrications_dropped"), before + 2);
#endif
}

TEST(EventRunner, RejectsBadTiming) {
  const Config config{.n = 4, .m = 1, .u = 1};
  const auto spec = make_spec(config, {});
  TimingModel bad;
  bad.timeout = 2.0;  // > round_period: rounds would overlap
  sim::RunOptions options;
  EXPECT_THROW(EventRunner(core::make_byz_processes(config, spec.sender,
                                                    spec.sender_value),
                           options, bad, perfect_clocks(config.n)),
               std::logic_error);
}

TEST(EventRunner, ClockCountMustMatch) {
  const Config config{.n = 4, .m = 1, .u = 1};
  const auto spec = make_spec(config, {});
  EXPECT_THROW(EventRunner(core::make_byz_processes(config, spec.sender,
                                                    spec.sender_value),
                           sim::RunOptions{}, TimingModel{},
                           perfect_clocks(3)),
               std::logic_error);
}

}  // namespace
}  // namespace da::event
