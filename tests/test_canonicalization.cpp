// Receiver-relabeling symmetry (faults/canon.hpp): property tests of the
// canonical form itself against brute force on exhaustively enumerable
// segments, orbit invariance of real protocol executions for all six
// protocols, and a corpus-first differential suite pinning the
// symmetry-reduced behaviour search to the full enumeration — identical
// verdicts, identical first-hit ordinals, and orbit-weighted execution
// counts that reconcile exactly against the unreduced 4^k space. Corpus
// lines in tests/corpus/canonicalization.txt are replayed first; append
// any config a randomized or field failure flags.

#include "faults/canon.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/byz.hpp"
#include "core/checker.hpp"
#include "core/scenario.hpp"
#include "faults/behavior_search.hpp"
#include "protocols/authenticated/signatures.hpp"
#include "protocols/authenticated/sm.hpp"
#include "protocols/crusader/crusader.hpp"
#include "protocols/lamport/om.hpp"
#include "sim/runner.hpp"
#include "sweep/sweep.hpp"
#include "util/rng.hpp"

namespace da {
namespace {

using faults::SlotSymmetry;
using protocols::authenticated::SignatureAuthority;

// ------------------------------------------------------------- fixtures
//
// Mirrors the behaviour search's slot construction (behavior_search.cpp's
// controlled_slots): a faulty sender broadcasts to everyone else; a faulty
// non-sender relays to everyone but itself and the sender. Rows ascend
// with the faulty id, destinations ascend within each row — the layout
// make_slot_symmetry documents.

std::vector<std::pair<NodeId, NodeId>> slots_for(const ScenarioSpec& spec) {
  std::vector<std::pair<NodeId, NodeId>> slots;
  for (NodeId from : spec.faulty) {
    for (NodeId to = 0; to < spec.config.n; ++to) {
      if (to == from) continue;
      if (from != spec.sender && to == spec.sender) continue;
      slots.emplace_back(from, to);
    }
  }
  return slots;
}

ScenarioSpec spec_of(int n, std::vector<NodeId> faulty) {
  ScenarioSpec spec;
  spec.config = Config{.n = n, .m = 1, .u = static_cast<int>(faulty.size())};
  spec.sender = 0;
  spec.sender_value = Value::of(7);
  spec.faulty = std::move(faulty);
  return spec;
}

std::uint64_t pow4(std::size_t k) { return std::uint64_t{1} << (2 * k); }

/// Brute-force orbit of `counter`: every free-column permutation applied
/// via the header's own permute helper, deduplicated.
std::vector<std::uint64_t> orbit_of(const SlotSymmetry& sym,
                                    std::uint64_t counter) {
  std::vector<std::size_t> perm(sym.free_count);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<std::uint64_t> orbit;
  do {
    orbit.push_back(faults::permute_free_receivers(sym, counter, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  std::sort(orbit.begin(), orbit.end());
  orbit.erase(std::unique(orbit.begin(), orbit.end()), orbit.end());
  return orbit;
}

// ------------------------------------------------ brute-force properties

TEST(CanonProperties, ExhaustiveSegmentsMatchBruteForce) {
  // Every enumerable segment shape the depth-2 search produces: honest
  // sender with one or two relay rows, faulty sender alone, and mixed
  // rows with fixed faulty-to-faulty slots.
  const std::vector<ScenarioSpec> specs = {
      spec_of(4, {1}),     // 1 row, free {2,3}
      spec_of(5, {1}),     // 1 row, free {2,3,4}
      spec_of(4, {0}),     // faulty sender, free {1,2,3}
      spec_of(4, {0, 1}),  // 2 rows, fixed slot (0,1), free {2,3}
      spec_of(5, {1, 2}),  // 2 rows, fixed (1,2) and (2,1), free {3,4}
  };
  for (const ScenarioSpec& spec : specs) {
    SCOPED_TRACE(spec.to_string());
    const auto slots = slots_for(spec);
    const SlotSymmetry sym = faults::make_slot_symmetry(spec, slots);
    ASSERT_FALSE(sym.trivial());
    const std::uint64_t space = pow4(slots.size());

    std::vector<char> canonical(space, 0);
    std::uint64_t representatives = 0;
    std::uint64_t weighted = 0;
    for (std::uint64_t c = 0; c < space; ++c) {
      const std::vector<std::uint64_t> orbit = orbit_of(sym, c);
      const std::uint64_t form = faults::canonical_form(sym, c);
      EXPECT_EQ(form, orbit.front()) << "canonical_form is not the orbit min";
      EXPECT_EQ(faults::canonical_form(sym, form), form) << "not idempotent";
      EXPECT_EQ(faults::is_canonical(sym, c), form == c);
      EXPECT_EQ(faults::orbit_size(sym, c), orbit.size());
      canonical[c] = static_cast<char>(form == c);
      if (form == c) {
        ++representatives;
        weighted += orbit.size();
      }
    }
    EXPECT_EQ(representatives, faults::canonical_count(sym));
    EXPECT_EQ(weighted, space) << "orbit sizes must tile the segment";

    // next_canonical == the linear-scan successor, from every start.
    std::uint64_t next = space;  // scan high-to-low: nearest canonical >= c
    for (std::uint64_t c = space; c-- > 0;) {
      if (canonical[c] != 0) next = c;
      ASSERT_LT(next, space) << "all-3s counter must be canonical";
      EXPECT_EQ(faults::next_canonical(sym, c), next) << "at counter " << c;
    }
  }
}

TEST(CanonProperties, TrivialSymmetryIsIdentity) {
  // Fewer than two free receivers: every behaviour is its own orbit.
  const ScenarioSpec spec = spec_of(3, {1});
  const auto slots = slots_for(spec);
  const SlotSymmetry sym = faults::make_slot_symmetry(spec, slots);
  EXPECT_TRUE(sym.trivial());
  const std::uint64_t space = pow4(slots.size());
  EXPECT_EQ(faults::canonical_count(sym), space);
  for (std::uint64_t c = 0; c < space; ++c) {
    EXPECT_TRUE(faults::is_canonical(sym, c));
    EXPECT_EQ(faults::canonical_form(sym, c), c);
    EXPECT_EQ(faults::orbit_size(sym, c), 1u);
    EXPECT_EQ(faults::next_canonical(sym, c), c);
  }
}

TEST(CanonProperties, RandomPermutationsPreserveOrbitData) {
  // Larger segment (7 slots, free_count 3) sampled randomly: the
  // canonical form and orbit size are invariants of the orbit.
  const ScenarioSpec spec = spec_of(5, {0, 1});
  const auto slots = slots_for(spec);
  const SlotSymmetry sym = faults::make_slot_symmetry(spec, slots);
  ASSERT_EQ(sym.free_count, 3u);
  ASSERT_EQ(slots.size(), 7u);
  Rng rng(0xCA11ull);
  std::vector<std::size_t> perm(sym.free_count);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t c = rng.below(pow4(slots.size()));
    std::iota(perm.begin(), perm.end(), 0);
    rng.shuffle(perm);
    const std::uint64_t p = faults::permute_free_receivers(sym, c, perm);
    EXPECT_EQ(faults::canonical_form(sym, p), faults::canonical_form(sym, c))
        << "counter " << c << " trial " << trial;
    EXPECT_EQ(faults::orbit_size(sym, p), faults::orbit_size(sym, c));
  }
}

// ------------------------------------- orbit invariance, all six protocols
//
// The soundness claim behind the reduction: relabeling the fault-free
// receivers of an execution permutes their decisions and changes nothing
// else. Checked here against real protocol runs — a behaviour table and a
// permuted copy must produce the identical governing D.1-D.4 verdict, the
// identical decisions at the sender and faulty nodes, and the identical
// *multiset* of decisions across the free receivers.

enum class Proto { kByz, kOm, kCrusader, kSm, kIc, kDic };

/// Plays one behaviour table keyed by (from, to) — the test-local twin of
/// the search's internal TableAdversary.
class MapAdversary final : public sim::Adversary {
 public:
  explicit MapAdversary(std::map<std::pair<NodeId, NodeId>, Value> table)
      : table_(std::move(table)) {}

  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    const auto it = table_.find({msg.from, msg.to});
    if (it == table_.end()) return msg;
    sim::Message out = msg;
    out.value = it->second;
    return out;
  }

 private:
  std::map<std::pair<NodeId, NodeId>, Value> table_;
};

std::vector<std::unique_ptr<sim::Process>> processes_for(
    Proto proto, const ScenarioSpec& spec, const SignatureAuthority& authority) {
  const Config& cfg = spec.config;
  switch (proto) {
    case Proto::kByz:
    case Proto::kDic:
      return core::make_byz_processes(cfg, spec.sender, spec.sender_value);
    case Proto::kOm:
    case Proto::kIc:
      return protocols::lamport::make_om_processes(cfg.n, cfg.m, spec.sender,
                                                   spec.sender_value);
    case Proto::kCrusader:
      return protocols::crusader::make_crusader_processes(
          cfg.n, cfg.m, spec.sender, spec.sender_value);
    case Proto::kSm:
      return protocols::authenticated::make_sm_processes(
          cfg.n, cfg.m, spec.sender, spec.sender_value, authority);
  }
  return {};
}

struct OrbitObservation {
  std::string verdict;
  std::vector<std::string> anchored;  // sender + faulty decisions, in order
  std::vector<std::string> free_multiset;  // free receivers', sorted
};

OrbitObservation observe(Proto proto, const ScenarioSpec& spec,
                         const std::vector<std::pair<NodeId, NodeId>>& slots,
                         std::uint64_t counter,
                         const SignatureAuthority& authority) {
  const std::array<Value, 4> alphabet = {spec.sender_value, Value::of(100001),
                                         Value::of(100002), Value::def()};
  std::map<std::pair<NodeId, NodeId>, Value> table;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    table[slots[i]] =
        alphabet[faults::behavior_digit(counter, slots.size(), i)];
  }
  MapAdversary adversary(std::move(table));
  sim::RunOptions options;
  options.faulty = spec.faulty;
  options.adversary = &adversary;
  const sim::RunResult result =
      sim::SyncRunner(processes_for(proto, spec, authority), std::move(options))
          .run();

  OrbitObservation obs;
  const ConditionReport report = check_conditions(spec, result.decisions);
  obs.verdict = std::string(to_string(report.applied)) +
                (report.satisfied ? "+" : "-");
  const std::vector<NodeId> free = spec.fault_free_receivers();
  for (const auto& [node, value] : result.decisions) {
    const bool is_free = std::find(free.begin(), free.end(), node) != free.end();
    if (is_free) {
      obs.free_multiset.push_back(value.to_string());
    } else {
      obs.anchored.push_back(std::to_string(node) + "=" + value.to_string());
    }
  }
  std::sort(obs.free_multiset.begin(), obs.free_multiset.end());
  return obs;
}

TEST(CanonOrbitSim, SixProtocolVerdictInvariance) {
  const std::vector<std::pair<Proto, ScenarioSpec>> cases = {
      {Proto::kByz, spec_of(4, {1})},      {Proto::kByz, spec_of(4, {0})},
      {Proto::kOm, spec_of(4, {1})},       {Proto::kCrusader, spec_of(4, {1})},
      {Proto::kSm, spec_of(4, {1})},       {Proto::kIc, spec_of(4, {1})},
      {Proto::kDic, spec_of(5, {1, 2})},
  };
  for (const auto& [proto, spec] : cases) {
    SCOPED_TRACE(spec.to_string() + " proto " +
                 std::to_string(static_cast<int>(proto)));
    const SignatureAuthority authority(0x51Full, spec.config.n);
    const auto slots = slots_for(spec);
    const SlotSymmetry sym = faults::make_slot_symmetry(spec, slots);
    ASSERT_FALSE(sym.trivial());
    const std::uint64_t space = pow4(slots.size());
    // Exhaust small segments; sample large ones on a fixed stride.
    const std::uint64_t stride = space <= 1024 ? 1 : space / 512;
    std::vector<std::size_t> perm(sym.free_count);
    Rng rng(0x0B17ull + static_cast<std::uint64_t>(proto));
    for (std::uint64_t c = 0; c < space; c += stride) {
      const OrbitObservation base = observe(proto, spec, slots, c, authority);
      std::iota(perm.begin(), perm.end(), 0);
      rng.shuffle(perm);
      const std::uint64_t image = faults::permute_free_receivers(sym, c, perm);
      const OrbitObservation moved =
          observe(proto, spec, slots, image, authority);
      ASSERT_EQ(base.verdict, moved.verdict) << "counter " << c;
      ASSERT_EQ(base.anchored, moved.anchored) << "counter " << c;
      ASSERT_EQ(base.free_multiset, moved.free_multiset) << "counter " << c;
    }
  }
}

// ----------------------------------------- corpus differential, canonical
// vs full behaviour search

std::uint64_t first_hit_of(const sweep::SweepStats& stats) {
  std::uint64_t best = sweep::kNoHit;
  for (const sweep::ShardStats& shard : stats.per_shard) {
    best = std::min(best, shard.first_hit);
  }
  return best;
}

struct SearchOutcome {
  std::string adversary;  // "(none)" when clean
  std::uint64_t first_hit = sweep::kNoHit;
  sweep::SweepStats stats;
};

SearchOutcome run_search(const Config& config, bool symmetry, int jobs) {
  faults::BehaviorSearchOptions options;
  options.symmetry = symmetry;
  sweep::SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  SearchOutcome out;
  const auto violation = faults::exhaustive_behavior_search(
      config, options, sweep_options, &out.stats);
  out.adversary = violation.has_value() ? violation->adversary : "(none)";
  out.first_hit = first_hit_of(out.stats);
  return out;
}

void check_differential(const Config& config) {
  SCOPED_TRACE(config.to_string());
  const std::uint64_t space = faults::behavior_search_space(config);
  const std::uint64_t canonical_space =
      faults::behavior_search_canonical_space(config);
  ASSERT_LE(canonical_space, space);

  const SearchOutcome full = run_search(config, /*symmetry=*/false, 1);
  const SearchOutcome canon = run_search(config, /*symmetry=*/true, 1);

  // The tentpole equivalence: verdict and first-hit ordinal survive the
  // reduction exactly.
  EXPECT_EQ(full.adversary, canon.adversary);
  EXPECT_EQ(full.first_hit, canon.first_hit);

  if (full.first_hit == sweep::kNoHit) {
    // Clean sweeps reconcile their counts against the whole space: the
    // full walk executes every ordinal; the canonical walk executes one
    // representative per orbit but weights it back to the same total.
    EXPECT_EQ(full.stats.executions, space);
    EXPECT_EQ(full.stats.weighted_executions, space);
    EXPECT_EQ(canon.stats.executions, canonical_space);
    EXPECT_EQ(canon.stats.weighted_executions, space);
  } else {
    // Violating sweeps pin the first hit instead: the winning behaviour
    // rematerializes to the same adversary through the scratch path.
    const auto replay = faults::behavior_at(config, -1, full.first_hit);
    ASSERT_TRUE(replay.has_value());
    EXPECT_EQ(replay->adversary, full.adversary);
  }

  // Canonical counts are canonical: a different jobs value must not move
  // the verdict, the hit, or either execution counter.
  const SearchOutcome wide = run_search(config, /*symmetry=*/true, 3);
  EXPECT_EQ(canon.adversary, wide.adversary);
  EXPECT_EQ(canon.first_hit, wide.first_hit);
  EXPECT_EQ(canon.stats.executions, wide.stats.executions);
  EXPECT_EQ(canon.stats.weighted_executions, wide.stats.weighted_executions);
}

TEST(CanonicalizationCorpus, FullVersusCanonicalReplay) {
  std::ifstream in(std::string(DA_TEST_CORPUS_DIR) + "/canonicalization.txt");
  ASSERT_TRUE(in.is_open()) << "missing tests/corpus/canonicalization.txt";
  std::string line;
  int replayed = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    int n = 0;
    int m = 0;
    int u = 0;
    ASSERT_TRUE(fields >> n >> m >> u) << "bad corpus line: " << line;
    check_differential(Config{.n = n, .m = m, .u = u});
    ++replayed;
  }
  EXPECT_GE(replayed, 12);  // every cheap (n <= 4, m, u) plus spot checks
}

}  // namespace
}  // namespace da
