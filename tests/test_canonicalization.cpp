// Symmetry reductions of the behaviour search (faults/canon.hpp):
// property tests of the receiver-relabeling canonical form against brute
// force on exhaustively enumerable segments, subset-conjugacy classes
// checked against full subset enumeration, orbit and conjugacy invariance
// of real protocol executions for all six protocols, boundary tests of
// the checked orbit arithmetic, and a corpus-first three-way differential
// suite pinning the receiver-canonical and subset-quotient walks to the
// full enumeration — identical verdicts, identical first-hit ordinals,
// and orbit-weighted execution counts that reconcile exactly against the
// unreduced 4^k space. Corpus lines in tests/corpus/canonicalization.txt
// are replayed first; append any config a randomized or field failure
// flags.

#include "faults/canon.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/byz.hpp"
#include "core/checker.hpp"
#include "core/scenario.hpp"
#include "faults/behavior_search.hpp"
#include "protocols/authenticated/signatures.hpp"
#include "protocols/authenticated/sm.hpp"
#include "protocols/crusader/crusader.hpp"
#include "protocols/lamport/om.hpp"
#include "sim/runner.hpp"
#include "sweep/sweep.hpp"
#include "util/rng.hpp"

namespace da {
namespace {

using faults::SlotSymmetry;
using protocols::authenticated::SignatureAuthority;

// ------------------------------------------------------------- fixtures
//
// Mirrors the behaviour search's slot construction (behavior_search.cpp's
// controlled_slots): a faulty sender broadcasts to everyone else; a faulty
// non-sender relays to everyone but itself and the sender. Rows ascend
// with the faulty id, destinations ascend within each row — the layout
// make_slot_symmetry documents.

std::vector<std::pair<NodeId, NodeId>> slots_for(const ScenarioSpec& spec) {
  std::vector<std::pair<NodeId, NodeId>> slots;
  for (NodeId from : spec.faulty) {
    for (NodeId to = 0; to < spec.config.n; ++to) {
      if (to == from) continue;
      if (from != spec.sender && to == spec.sender) continue;
      slots.emplace_back(from, to);
    }
  }
  return slots;
}

ScenarioSpec spec_of(int n, std::vector<NodeId> faulty) {
  ScenarioSpec spec;
  spec.config = Config{.n = n, .m = 1, .u = static_cast<int>(faulty.size())};
  spec.sender = 0;
  spec.sender_value = Value::of(7);
  spec.faulty = std::move(faulty);
  return spec;
}

std::uint64_t pow4(std::size_t k) { return std::uint64_t{1} << (2 * k); }

/// Brute-force orbit of `counter`: every free-column permutation applied
/// via the header's own permute helper, deduplicated.
std::vector<std::uint64_t> orbit_of(const SlotSymmetry& sym,
                                    std::uint64_t counter) {
  std::vector<std::size_t> perm(sym.free_count);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<std::uint64_t> orbit;
  do {
    orbit.push_back(faults::permute_free_receivers(sym, counter, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  std::sort(orbit.begin(), orbit.end());
  orbit.erase(std::unique(orbit.begin(), orbit.end()), orbit.end());
  return orbit;
}

// ------------------------------------------------ brute-force properties

TEST(CanonProperties, ExhaustiveSegmentsMatchBruteForce) {
  // Every enumerable segment shape the depth-2 search produces: honest
  // sender with one or two relay rows, faulty sender alone, and mixed
  // rows with fixed faulty-to-faulty slots.
  const std::vector<ScenarioSpec> specs = {
      spec_of(4, {1}),     // 1 row, free {2,3}
      spec_of(5, {1}),     // 1 row, free {2,3,4}
      spec_of(4, {0}),     // faulty sender, free {1,2,3}
      spec_of(4, {0, 1}),  // 2 rows, fixed slot (0,1), free {2,3}
      spec_of(5, {1, 2}),  // 2 rows, fixed (1,2) and (2,1), free {3,4}
  };
  for (const ScenarioSpec& spec : specs) {
    SCOPED_TRACE(spec.to_string());
    const auto slots = slots_for(spec);
    const SlotSymmetry sym = faults::make_slot_symmetry(spec, slots);
    ASSERT_FALSE(sym.trivial());
    const std::uint64_t space = pow4(slots.size());

    std::vector<char> canonical(space, 0);
    std::uint64_t representatives = 0;
    std::uint64_t weighted = 0;
    for (std::uint64_t c = 0; c < space; ++c) {
      const std::vector<std::uint64_t> orbit = orbit_of(sym, c);
      const std::uint64_t form = faults::canonical_form(sym, c);
      EXPECT_EQ(form, orbit.front()) << "canonical_form is not the orbit min";
      EXPECT_EQ(faults::canonical_form(sym, form), form) << "not idempotent";
      EXPECT_EQ(faults::is_canonical(sym, c), form == c);
      EXPECT_EQ(faults::orbit_size(sym, c), orbit.size());
      canonical[c] = static_cast<char>(form == c);
      if (form == c) {
        ++representatives;
        weighted += orbit.size();
      }
    }
    EXPECT_EQ(representatives, faults::canonical_count(sym));
    EXPECT_EQ(weighted, space) << "orbit sizes must tile the segment";

    // next_canonical == the linear-scan successor, from every start.
    std::uint64_t next = space;  // scan high-to-low: nearest canonical >= c
    for (std::uint64_t c = space; c-- > 0;) {
      if (canonical[c] != 0) next = c;
      ASSERT_LT(next, space) << "all-3s counter must be canonical";
      EXPECT_EQ(faults::next_canonical(sym, c), next) << "at counter " << c;
    }
  }
}

TEST(CanonProperties, TrivialSymmetryIsIdentity) {
  // Fewer than two free receivers: every behaviour is its own orbit.
  const ScenarioSpec spec = spec_of(3, {1});
  const auto slots = slots_for(spec);
  const SlotSymmetry sym = faults::make_slot_symmetry(spec, slots);
  EXPECT_TRUE(sym.trivial());
  const std::uint64_t space = pow4(slots.size());
  EXPECT_EQ(faults::canonical_count(sym), space);
  for (std::uint64_t c = 0; c < space; ++c) {
    EXPECT_TRUE(faults::is_canonical(sym, c));
    EXPECT_EQ(faults::canonical_form(sym, c), c);
    EXPECT_EQ(faults::orbit_size(sym, c), 1u);
    EXPECT_EQ(faults::next_canonical(sym, c), c);
  }
}

TEST(CanonProperties, RandomPermutationsPreserveOrbitData) {
  // Larger segment (7 slots, free_count 3) sampled randomly: the
  // canonical form and orbit size are invariants of the orbit.
  const ScenarioSpec spec = spec_of(5, {0, 1});
  const auto slots = slots_for(spec);
  const SlotSymmetry sym = faults::make_slot_symmetry(spec, slots);
  ASSERT_EQ(sym.free_count, 3u);
  ASSERT_EQ(slots.size(), 7u);
  Rng rng(0xCA11ull);
  std::vector<std::size_t> perm(sym.free_count);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t c = rng.below(pow4(slots.size()));
    std::iota(perm.begin(), perm.end(), 0);
    rng.shuffle(perm);
    const std::uint64_t p = faults::permute_free_receivers(sym, c, perm);
    EXPECT_EQ(faults::canonical_form(sym, p), faults::canonical_form(sym, c))
        << "counter " << c << " trial " << trial;
    EXPECT_EQ(faults::orbit_size(sym, p), faults::orbit_size(sym, c));
  }
}

// -------------------------------------------- checked orbit arithmetic

TEST(CanonChecked, FactorialBoundary) {
  EXPECT_EQ(faults::checked_factorial(0), 1u);
  EXPECT_EQ(faults::checked_factorial(1), 1u);
  // 20! is the largest factorial representable in uint64; 21! trips the
  // DA_EXPECTS contract instead of silently wrapping.
  EXPECT_EQ(faults::checked_factorial(20), 2432902008176640000ull);
  EXPECT_THROW((void)faults::checked_factorial(21), std::logic_error);
}

TEST(CanonChecked, MulBinomialMultichooseBoundaries) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(faults::checked_mul(0, max), 0u);
  EXPECT_EQ(faults::checked_mul(max, 1), max);
  EXPECT_EQ(faults::checked_mul(max / 2, 2), max - 1);
  EXPECT_THROW((void)faults::checked_mul(max / 2 + 1, 2), std::logic_error);

  EXPECT_EQ(faults::binomial(0, 0), 1u);
  EXPECT_EQ(faults::binomial(5, 7), 0u);  // k > n is an empty choice, not UB
  EXPECT_EQ(faults::binomial(6, 2), 15u);
  EXPECT_EQ(faults::binomial(60, 30), 118264581564861424ull);
  EXPECT_THROW((void)faults::binomial(70, 35), std::logic_error);

  EXPECT_EQ(faults::multichoose(4, 0), 1u);
  EXPECT_EQ(faults::multichoose(4, 3), faults::binomial(6, 3));
  EXPECT_THROW((void)faults::multichoose(0, 1), std::logic_error);
}

TEST(CanonChecked, CanonicalCountBoundary) {
  // Largest representable (rows, free_count) shape with no fixed digits:
  // multichoose(4^31, 1) = 2^62 fits; rows = 32 overflows while forming
  // the 4^rows column count and must throw, not wrap to zero columns.
  SlotSymmetry sym;
  sym.rows = 31;
  sym.free_count = 1;
  sym.slots = sym.rows * sym.free_count;
  EXPECT_EQ(faults::canonical_count(sym), std::uint64_t{1} << 62);
  sym.rows = 32;
  sym.slots = sym.rows * sym.free_count;
  EXPECT_THROW((void)faults::canonical_count(sym), std::logic_error);
}

// --------------------------------------------- subset conjugacy classes

TEST(CanonProperties, SubsetClassesPartitionTheSubsets) {
  // Brute force over every faulty subset: canonical_subset is idempotent,
  // is the lexicographic minimum of its class (hence the class member
  // with the smallest segment base), classes partition the C(n, f)
  // subsets, and each class's observed population equals
  // subset_class_size. Exactly one class per (f, sender-membership) pair.
  for (int n : {4, 5, 6}) {
    for (NodeId sender : {NodeId{0}, NodeId{2}}) {
      for (int f = 0; f <= 3; ++f) {
        SCOPED_TRACE("n=" + std::to_string(n) + " sender=" +
                     std::to_string(sender) + " f=" + std::to_string(f));
        std::map<std::vector<NodeId>, std::uint64_t> population;
        std::uint64_t subsets = 0;
        std::uint64_t representatives = 0;
        faults::for_each_subset(n, f, [&](const std::vector<NodeId>& faulty) {
          ++subsets;
          const std::vector<NodeId> rep =
              faults::canonical_subset(n, sender, faulty);
          EXPECT_EQ(faults::canonical_subset(n, sender, rep), rep);
          EXPECT_LE(rep, faulty);  // lex-min member of the class
          EXPECT_EQ(faults::is_subset_representative(n, sender, faulty),
                    rep == faulty);
          EXPECT_EQ(faults::subset_class_size(n, sender, faulty),
                    faults::subset_class_size(n, sender, rep));
          if (rep == faulty) ++representatives;
          ++population[rep];
        });
        EXPECT_EQ(subsets, faults::binomial(static_cast<std::uint64_t>(n),
                                            static_cast<std::uint64_t>(f)));
        EXPECT_EQ(representatives, population.size());
        EXPECT_EQ(representatives, f == 0 ? 1u : 2u);
        for (const auto& [rep, members] : population) {
          EXPECT_EQ(members, faults::subset_class_size(n, sender, rep));
        }
      }
    }
  }
}

TEST(CanonProperties, SenderFixingPermutationsPreserveSubsetClass) {
  // The conjugacy action itself: relabeling nodes by any permutation that
  // fixes the sender maps a subset to one with the same canonical
  // representative and class size.
  const int n = 6;
  const NodeId sender = 1;
  Rng rng(0x5B5E7ull);
  for (int trial = 0; trial < 200; ++trial) {
    const int f = 1 + static_cast<int>(rng.below(4));
    const std::vector<int> picked = rng.subset(n, f);
    std::vector<NodeId> faulty(picked.begin(), picked.end());
    std::sort(faulty.begin(), faulty.end());
    // A random permutation of the non-sender ids, identity on the sender.
    std::vector<NodeId> others;
    for (NodeId id = 0; id < n; ++id) {
      if (id != sender) others.push_back(id);
    }
    std::vector<NodeId> shuffled = others;
    rng.shuffle(shuffled);
    std::vector<NodeId> pi(n);
    pi[sender] = sender;
    for (std::size_t i = 0; i < others.size(); ++i) pi[others[i]] = shuffled[i];
    std::vector<NodeId> image;
    for (NodeId id : faulty) image.push_back(pi[id]);
    std::sort(image.begin(), image.end());
    EXPECT_EQ(faults::canonical_subset(n, sender, image),
              faults::canonical_subset(n, sender, faulty))
        << "trial " << trial;
    EXPECT_EQ(faults::subset_class_size(n, sender, image),
              faults::subset_class_size(n, sender, faulty));
  }
}

TEST(CanonProperties, SubsetQuotientReducesSegmentsThreefold) {
  // The acceptance floor for (6,1,2): the quotient walks at most a third
  // of the (sender 0) segments the receiver-canonical walk visits, and
  // the executed-representative space shrinks by at least as much.
  const Config config{.n = 6, .m = 1, .u = 2};
  std::uint64_t segments = 0;
  std::uint64_t representatives = 0;
  for (int f = 0; f <= config.u; ++f) {
    faults::for_each_subset(config.n, f,
                            [&](const std::vector<NodeId>& faulty) {
                              ++segments;
                              if (faults::is_subset_representative(
                                      config.n, 0, faulty)) {
                                ++representatives;
                              }
                            });
  }
  EXPECT_EQ(segments, 22u);        // C(6,0) + C(6,1) + C(6,2)
  EXPECT_EQ(representatives, 5u);  // {}, {0}, {1}, {0,1}, {1,2}
  EXPECT_GE(segments, 3 * representatives);
  EXPECT_GE(faults::behavior_search_canonical_space(config),
            3 * faults::behavior_search_quotient_space(config));
}

// ------------------------------------- orbit invariance, all six protocols
//
// The soundness claim behind the reduction: relabeling the fault-free
// receivers of an execution permutes their decisions and changes nothing
// else. Checked here against real protocol runs — a behaviour table and a
// permuted copy must produce the identical governing D.1-D.4 verdict, the
// identical decisions at the sender and faulty nodes, and the identical
// *multiset* of decisions across the free receivers.

enum class Proto { kByz, kOm, kCrusader, kSm, kIc, kDic };

/// Plays one behaviour table keyed by (from, to) — the test-local twin of
/// the search's internal TableAdversary.
class MapAdversary final : public sim::Adversary {
 public:
  explicit MapAdversary(std::map<std::pair<NodeId, NodeId>, Value> table)
      : table_(std::move(table)) {}

  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    const auto it = table_.find({msg.from, msg.to});
    if (it == table_.end()) return msg;
    sim::Message out = msg;
    out.value = it->second;
    return out;
  }

 private:
  std::map<std::pair<NodeId, NodeId>, Value> table_;
};

std::vector<std::unique_ptr<sim::Process>> processes_for(
    Proto proto, const ScenarioSpec& spec, const SignatureAuthority& authority) {
  const Config& cfg = spec.config;
  switch (proto) {
    case Proto::kByz:
    case Proto::kDic:
      return core::make_byz_processes(cfg, spec.sender, spec.sender_value);
    case Proto::kOm:
    case Proto::kIc:
      return protocols::lamport::make_om_processes(cfg.n, cfg.m, spec.sender,
                                                   spec.sender_value);
    case Proto::kCrusader:
      return protocols::crusader::make_crusader_processes(
          cfg.n, cfg.m, spec.sender, spec.sender_value);
    case Proto::kSm:
      return protocols::authenticated::make_sm_processes(
          cfg.n, cfg.m, spec.sender, spec.sender_value, authority);
  }
  return {};
}

struct OrbitObservation {
  std::string verdict;
  std::vector<std::string> anchored;  // sender + faulty decisions, in order
  std::vector<std::string> free_multiset;  // free receivers', sorted
};

OrbitObservation observe(Proto proto, const ScenarioSpec& spec,
                         const std::vector<std::pair<NodeId, NodeId>>& slots,
                         std::uint64_t counter,
                         const SignatureAuthority& authority) {
  const std::array<Value, 4> alphabet = {spec.sender_value, Value::of(100001),
                                         Value::of(100002), Value::def()};
  std::map<std::pair<NodeId, NodeId>, Value> table;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    table[slots[i]] =
        alphabet[faults::behavior_digit(counter, slots.size(), i)];
  }
  MapAdversary adversary(std::move(table));
  sim::RunOptions options;
  options.faulty = spec.faulty;
  options.adversary = &adversary;
  const sim::RunResult result =
      sim::SyncRunner(processes_for(proto, spec, authority), std::move(options))
          .run();

  OrbitObservation obs;
  const ConditionReport report = check_conditions(spec, result.decisions);
  obs.verdict = std::string(to_string(report.applied)) +
                (report.satisfied ? "+" : "-");
  const std::vector<NodeId> free = spec.fault_free_receivers();
  for (const auto& [node, value] : result.decisions) {
    const bool is_free = std::find(free.begin(), free.end(), node) != free.end();
    if (is_free) {
      obs.free_multiset.push_back(value.to_string());
    } else {
      obs.anchored.push_back(std::to_string(node) + "=" + value.to_string());
    }
  }
  std::sort(obs.free_multiset.begin(), obs.free_multiset.end());
  return obs;
}

TEST(CanonOrbitSim, SixProtocolVerdictInvariance) {
  const std::vector<std::pair<Proto, ScenarioSpec>> cases = {
      {Proto::kByz, spec_of(4, {1})},      {Proto::kByz, spec_of(4, {0})},
      {Proto::kOm, spec_of(4, {1})},       {Proto::kCrusader, spec_of(4, {1})},
      {Proto::kSm, spec_of(4, {1})},       {Proto::kIc, spec_of(4, {1})},
      {Proto::kDic, spec_of(5, {1, 2})},
  };
  for (const auto& [proto, spec] : cases) {
    SCOPED_TRACE(spec.to_string() + " proto " +
                 std::to_string(static_cast<int>(proto)));
    const SignatureAuthority authority(0x51Full, spec.config.n);
    const auto slots = slots_for(spec);
    const SlotSymmetry sym = faults::make_slot_symmetry(spec, slots);
    ASSERT_FALSE(sym.trivial());
    const std::uint64_t space = pow4(slots.size());
    // Exhaust small segments; sample large ones on a fixed stride.
    const std::uint64_t stride = space <= 1024 ? 1 : space / 512;
    std::vector<std::size_t> perm(sym.free_count);
    Rng rng(0x0B17ull + static_cast<std::uint64_t>(proto));
    for (std::uint64_t c = 0; c < space; c += stride) {
      const OrbitObservation base = observe(proto, spec, slots, c, authority);
      std::iota(perm.begin(), perm.end(), 0);
      rng.shuffle(perm);
      const std::uint64_t image = faults::permute_free_receivers(sym, c, perm);
      const OrbitObservation moved =
          observe(proto, spec, slots, image, authority);
      ASSERT_EQ(base.verdict, moved.verdict) << "counter " << c;
      ASSERT_EQ(base.anchored, moved.anchored) << "counter " << c;
      ASSERT_EQ(base.free_multiset, moved.free_multiset) << "counter " << c;
    }
  }
}

// ------------------------------- conjugacy invariance, all six protocols
//
// The soundness claim behind the subset quotient: relabeling the faulty
// subset by a sender-fixing node permutation — carrying the behaviour
// table along slot-for-slot — permutes node names and changes nothing
// observable. Checked against real runs of all six protocols: verdict,
// the sender's decision, and the decision multisets of both the faulty
// and the fault-free nodes must be identical.

struct ConjugacyObservation {
  std::string verdict;
  std::string sender_decision;
  std::vector<std::string> faulty_multiset;      // sorted
  std::vector<std::string> fault_free_multiset;  // sorted
};

ConjugacyObservation observe_table(
    Proto proto, const ScenarioSpec& spec,
    const std::map<std::pair<NodeId, NodeId>, Value>& table,
    const SignatureAuthority& authority) {
  MapAdversary adversary(table);
  sim::RunOptions options;
  options.faulty = spec.faulty;
  options.adversary = &adversary;
  const sim::RunResult result =
      sim::SyncRunner(processes_for(proto, spec, authority), std::move(options))
          .run();
  ConjugacyObservation obs;
  const ConditionReport report = check_conditions(spec, result.decisions);
  obs.verdict = std::string(to_string(report.applied)) +
                (report.satisfied ? "+" : "-");
  for (const auto& [node, value] : result.decisions) {
    const bool is_faulty = std::find(spec.faulty.begin(), spec.faulty.end(),
                                     node) != spec.faulty.end();
    if (node == spec.sender) obs.sender_decision = value.to_string();
    if (is_faulty) {
      obs.faulty_multiset.push_back(value.to_string());
    } else if (node != spec.sender) {
      obs.fault_free_multiset.push_back(value.to_string());
    }
  }
  std::sort(obs.faulty_multiset.begin(), obs.faulty_multiset.end());
  std::sort(obs.fault_free_multiset.begin(), obs.fault_free_multiset.end());
  return obs;
}

TEST(CanonOrbitSim, SixProtocolSubsetConjugacyInvariance) {
  // Non-canonical faulty subsets paired with a sender-fixing relabeling
  // that maps them to their class representative.
  const std::vector<std::pair<Proto, ScenarioSpec>> cases = {
      {Proto::kByz, spec_of(4, {2})},      {Proto::kByz, spec_of(5, {2, 4})},
      {Proto::kOm, spec_of(4, {3})},       {Proto::kCrusader, spec_of(4, {2})},
      {Proto::kSm, spec_of(4, {3})},       {Proto::kIc, spec_of(4, {2})},
      {Proto::kDic, spec_of(5, {2, 4})},
  };
  for (const auto& [proto, spec] : cases) {
    SCOPED_TRACE(spec.to_string() + " proto " +
                 std::to_string(static_cast<int>(proto)));
    ASSERT_FALSE(faults::is_subset_representative(spec.config.n, spec.sender,
                                                  spec.faulty));
    // A sender-fixing permutation carrying faulty -> canonical_subset:
    // map each faulty node to its canonical counterpart, then biject the
    // remaining honest non-senders onto what is left, in ascending order.
    const std::vector<NodeId> rep =
        faults::canonical_subset(spec.config.n, spec.sender, spec.faulty);
    std::vector<NodeId> pi(spec.config.n, -1);
    pi[spec.sender] = spec.sender;
    for (std::size_t i = 0; i < spec.faulty.size(); ++i) {
      pi[spec.faulty[i]] = rep[i];
    }
    NodeId next = 0;
    for (NodeId id = 0; id < spec.config.n; ++id) {
      if (pi[id] != -1) continue;
      while (pi[spec.sender] == next ||
             std::find(rep.begin(), rep.end(), next) != rep.end()) {
        ++next;
      }
      pi[id] = next++;
    }

    ScenarioSpec conjugate = spec;
    conjugate.faulty = rep;
    const SignatureAuthority authority(0x51Full, spec.config.n);
    const auto slots = slots_for(spec);
    const std::array<Value, 4> alphabet = {spec.sender_value, Value::of(100001),
                                           Value::of(100002), Value::def()};
    const std::uint64_t space = pow4(slots.size());
    const std::uint64_t stride = space <= 1024 ? 1 : space / 512;
    for (std::uint64_t c = 0; c < space; c += stride) {
      std::map<std::pair<NodeId, NodeId>, Value> table;
      std::map<std::pair<NodeId, NodeId>, Value> conjugate_table;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        const Value v =
            alphabet[faults::behavior_digit(c, slots.size(), i)];
        table[slots[i]] = v;
        conjugate_table[{pi[slots[i].first], pi[slots[i].second]}] = v;
      }
      const ConjugacyObservation base =
          observe_table(proto, spec, table, authority);
      const ConjugacyObservation moved =
          observe_table(proto, conjugate, conjugate_table, authority);
      ASSERT_EQ(base.verdict, moved.verdict) << "counter " << c;
      ASSERT_EQ(base.sender_decision, moved.sender_decision) << "counter " << c;
      ASSERT_EQ(base.faulty_multiset, moved.faulty_multiset) << "counter " << c;
      ASSERT_EQ(base.fault_free_multiset, moved.fault_free_multiset)
          << "counter " << c;
    }
  }
}

// ----------------------------------------- corpus differential, the full
// walk vs the receiver-canonical walk vs the subset-quotient walk

std::uint64_t first_hit_of(const sweep::SweepStats& stats) {
  std::uint64_t best = sweep::kNoHit;
  for (const sweep::ShardStats& shard : stats.per_shard) {
    best = std::min(best, shard.first_hit);
  }
  return best;
}

struct SearchOutcome {
  std::string adversary;  // "(none)" when clean
  std::uint64_t first_hit = sweep::kNoHit;
  sweep::SweepStats stats;
};

SearchOutcome run_search(const Config& config, bool symmetry,
                         bool subset_symmetry, int jobs) {
  faults::BehaviorSearchOptions options;
  options.symmetry = symmetry;
  options.subset_symmetry = subset_symmetry;
  sweep::SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  SearchOutcome out;
  const auto violation = faults::exhaustive_behavior_search(
      config, options, sweep_options, &out.stats);
  out.adversary = violation.has_value() ? violation->adversary : "(none)";
  out.first_hit = first_hit_of(out.stats);
  return out;
}

void check_differential(const Config& config) {
  SCOPED_TRACE(config.to_string());
  const std::uint64_t space = faults::behavior_search_space(config);
  const std::uint64_t canonical_space =
      faults::behavior_search_canonical_space(config);
  const std::uint64_t quotient_space =
      faults::behavior_search_quotient_space(config);
  ASSERT_LE(canonical_space, space);
  ASSERT_LE(quotient_space, canonical_space);

  const SearchOutcome full =
      run_search(config, /*symmetry=*/false, /*subset_symmetry=*/false, 1);
  const SearchOutcome canon =
      run_search(config, /*symmetry=*/true, /*subset_symmetry=*/false, 1);
  const SearchOutcome quotient =
      run_search(config, /*symmetry=*/true, /*subset_symmetry=*/true, 1);

  // The tentpole equivalence, one rung at a time: verdict and first-hit
  // ordinal survive the receiver-relabeling reduction and the composed
  // subset quotient exactly.
  EXPECT_EQ(full.adversary, canon.adversary);
  EXPECT_EQ(full.first_hit, canon.first_hit);
  EXPECT_EQ(full.adversary, quotient.adversary);
  EXPECT_EQ(full.first_hit, quotient.first_hit);

  if (full.first_hit == sweep::kNoHit) {
    // Clean sweeps reconcile their counts against the whole space: the
    // full walk executes every ordinal; each reduced walk executes fewer
    // representatives but weights them back to the identical total.
    EXPECT_EQ(full.stats.executions, space);
    EXPECT_EQ(full.stats.weighted_executions, space);
    EXPECT_EQ(canon.stats.executions, canonical_space);
    EXPECT_EQ(canon.stats.weighted_executions, space);
    EXPECT_EQ(quotient.stats.executions, quotient_space);
    EXPECT_EQ(quotient.stats.weighted_executions, space);
  } else {
    // Violating sweeps pin the first hit instead: the winning behaviour
    // rematerializes to the same adversary through the scratch path.
    const auto replay = faults::behavior_at(config, -1, full.first_hit);
    ASSERT_TRUE(replay.has_value());
    EXPECT_EQ(replay->adversary, full.adversary);
  }

  // Canonical counts are canonical: a different jobs value must not move
  // the verdict, the hit, or either execution counter — for either
  // reduced walk.
  const SearchOutcome canon_wide =
      run_search(config, /*symmetry=*/true, /*subset_symmetry=*/false, 3);
  EXPECT_EQ(canon.adversary, canon_wide.adversary);
  EXPECT_EQ(canon.first_hit, canon_wide.first_hit);
  EXPECT_EQ(canon.stats.executions, canon_wide.stats.executions);
  EXPECT_EQ(canon.stats.weighted_executions,
            canon_wide.stats.weighted_executions);
  const SearchOutcome quotient_wide =
      run_search(config, /*symmetry=*/true, /*subset_symmetry=*/true, 3);
  EXPECT_EQ(quotient.adversary, quotient_wide.adversary);
  EXPECT_EQ(quotient.first_hit, quotient_wide.first_hit);
  EXPECT_EQ(quotient.stats.executions, quotient_wide.stats.executions);
  EXPECT_EQ(quotient.stats.weighted_executions,
            quotient_wide.stats.weighted_executions);
}

TEST(CanonicalizationCorpus, ThreeWayDifferentialReplay) {
  std::ifstream in(std::string(DA_TEST_CORPUS_DIR) + "/canonicalization.txt");
  ASSERT_TRUE(in.is_open()) << "missing tests/corpus/canonicalization.txt";
  std::string line;
  int replayed = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    int n = 0;
    int m = 0;
    int u = 0;
    ASSERT_TRUE(fields >> n >> m >> u) << "bad corpus line: " << line;
    check_differential(Config{.n = n, .m = m, .u = u});
    ++replayed;
  }
  EXPECT_GE(replayed, 12);  // every cheap (n <= 4, m, u) plus spot checks
}

}  // namespace
}  // namespace da
