// Analytic message-count formulas vs the instrumented runtimes: for each
// protocol the closed form (protocols::eig_message_count at the protocol's
// depth) must equal both the runner's own messages_sent counter and the
// delta observed on the obs registry's sim.messages_sent counter during a
// fault-free run. This pins the formulas, the instrumentation, and the
// protocols' message patterns to each other.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/agreement.hpp"
#include "core/byz.hpp"
#include "obs/metrics.hpp"
#include "protocols/common/eig.hpp"
#include "protocols/crusader/crusader.hpp"
#include "protocols/ic/interactive_consistency.hpp"
#include "protocols/lamport/om.hpp"
#include "sim/runner.hpp"

namespace da {
namespace {

std::uint64_t sim_messages_sent() {
  return obs::MetricsRegistry::global().counter_value("sim.messages_sent");
}

// Under the -DDA_METRICS=OFF kill switch registry reads return 0; keep the
// runner-side leg of each cross-check and drop the registry-delta leg.
#ifndef DA_METRICS_DISABLED
constexpr bool kRegistryChecks = true;
#else
constexpr bool kRegistryChecks = false;
#endif

ScenarioSpec fault_free_spec(const Config& config) {
  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = Value::of(17);
  return spec;
}

// ----------------------------------------------------------- formulas --

TEST(MessageCounts, EigFormulaMatchesExplicitSum) {
  // eig_message_count(n, d) = sum_{r=1..d} (n-1)(n-2)...(n-r).
  for (int n = 2; n <= 9; ++n) {
    for (int depth = 1; depth <= 4; ++depth) {
      std::uint64_t expected = 0;
      std::uint64_t level = 1;
      for (int r = 1; r <= depth && r < n; ++r) {
        level *= static_cast<std::uint64_t>(n - r);
        expected += level;
      }
      EXPECT_EQ(protocols::eig_message_count(n, depth), expected)
          << "n=" << n << " depth=" << depth;
    }
  }
}

TEST(MessageCounts, ProtocolFormulasReduceToEig) {
  EXPECT_EQ(core::byz_message_count(7, 1),
            protocols::eig_message_count(7, core::byz_depth(1)));
  EXPECT_EQ(core::byz_message_count(7, /*t=*/2, /*m=*/1),
            protocols::eig_message_count(7, 3));
  EXPECT_EQ(protocols::lamport::om_message_count(7, 2),
            protocols::eig_message_count(7, protocols::lamport::om_rounds(2)));
  EXPECT_EQ(protocols::crusader::crusader_message_count(7),
            protocols::eig_message_count(7, 2));
  EXPECT_EQ(protocols::ic::ic_message_count(7, 1),
            7 * protocols::lamport::om_message_count(7, 1));
  // The classic small cases: OM(1) at n=4 sends 3 + 3*2 = 9 messages;
  // crusader at any n sends (n-1) + (n-1)(n-2) = (n-1)^2.
  EXPECT_EQ(protocols::lamport::om_message_count(4, 1), 9u);
  EXPECT_EQ(protocols::crusader::crusader_message_count(5), 16u);
}

// ----------------------------------------------- measured == analytic --

TEST(MessageCounts, ByzMeasuredMatchesAnalytic) {
  for (const auto& [n, m] : {std::pair{4, 1}, {5, 0}, {7, 1}, {7, 2}}) {
    const Config config{.n = n, .m = m, .u = n - 2 * m - 1};
    const DegradableAgreement protocol(config);
    const std::uint64_t before = sim_messages_sent();
    const auto outcome = protocol.run(fault_free_spec(config), nullptr);
    const std::uint64_t analytic = core::byz_message_count(n, m);
    EXPECT_EQ(outcome.messages_sent, analytic) << "n=" << n << " m=" << m;
    if (kRegistryChecks) {
      EXPECT_EQ(sim_messages_sent() - before, analytic)
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(MessageCounts, LamportOmMeasuredMatchesAnalytic) {
  for (const auto& [n, m] : {std::pair{4, 1}, {7, 2}}) {
    const LamportAgreement protocol(n, m);
    const Config config{.n = n, .m = m, .u = m};
    const std::uint64_t before = sim_messages_sent();
    const auto outcome = protocol.run(fault_free_spec(config), nullptr);
    const std::uint64_t analytic = protocols::lamport::om_message_count(n, m);
    EXPECT_EQ(outcome.messages_sent, analytic) << "n=" << n << " m=" << m;
    if (kRegistryChecks) {
      EXPECT_EQ(sim_messages_sent() - before, analytic)
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(MessageCounts, CrusaderMeasuredMatchesAnalytic) {
  for (const int n : {4, 5, 7}) {
    const std::uint64_t before = sim_messages_sent();
    sim::SyncRunner runner(
        protocols::crusader::make_crusader_processes(n, 1, 0, Value::of(17)),
        sim::RunOptions{});
    const auto result = runner.run();
    const std::uint64_t analytic =
        protocols::crusader::crusader_message_count(n);
    EXPECT_EQ(result.messages_sent, analytic) << "n=" << n;
    if (kRegistryChecks) {
      EXPECT_EQ(sim_messages_sent() - before, analytic) << "n=" << n;
    }
  }
}

TEST(MessageCounts, InteractiveConsistencyMeasuredMatchesAnalytic) {
  for (const auto& [n, m] : {std::pair{4, 1}, {5, 1}}) {
    std::vector<Value> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(Value::of(i + 1));
    const std::uint64_t before = sim_messages_sent();
    const auto result =
        protocols::ic::run_interactive_consistency(n, m, inputs, {}, nullptr);
    const std::uint64_t analytic = protocols::ic::ic_message_count(n, m);
    EXPECT_EQ(result.messages_sent, analytic) << "n=" << n << " m=" << m;
    if (kRegistryChecks) {
      EXPECT_EQ(sim_messages_sent() - before, analytic)
          << "n=" << n << " m=" << m;
    }
  }
}

// Both runtimes execute the same protocol, so their counts must agree
// with each other and with the closed form.
TEST(MessageCounts, ThreadedRuntimeAgreesWithSimulator) {
  const Config config{.n = 4, .m = 1, .u = 1};
  const DegradableAgreement protocol(config);
  const auto spec = fault_free_spec(config);
  const auto sim_outcome = protocol.run(spec, nullptr);
  const auto threaded_outcome = protocol.run_threaded(spec, nullptr);
  EXPECT_EQ(sim_outcome.messages_sent, threaded_outcome.messages_sent);
  EXPECT_EQ(threaded_outcome.messages_sent, core::byz_message_count(4, 1));
}

}  // namespace
}  // namespace da
