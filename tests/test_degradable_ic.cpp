#include "core/degradable_ic.hpp"

#include <gtest/gtest.h>

#include "core/byz.hpp"
#include "faults/adversaries.hpp"
#include "protocols/ic/interactive_consistency.hpp"
#include "util/rng.hpp"

namespace da::core {
namespace {

std::vector<Value> inputs_for(int n) {
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(Value::of(200 + i));
  return inputs;
}

protocols::ic::AdversaryFactory honest_factory() {
  return [](NodeId) { return faults::honest(); };
}

TEST(DegradableIc, NoFaultsVectorsAreInputs) {
  const Config config{.n = 7, .m = 1, .u = 4};
  const auto inputs = inputs_for(config.n);
  const DicResult result =
      run_degradable_ic(config, inputs, {}, honest_factory());
  const DicReport report = check_degradable_ic(config, inputs, {}, result);
  EXPECT_TRUE(report.satisfied) << report.detail;
  EXPECT_TRUE(report.vectors_identical);
  EXPECT_EQ(report.min_coordinate_agreement, config.n);
  for (const auto& [node, vec] : result.vectors) EXPECT_EQ(vec, inputs);
}

TEST(DegradableIc, ExactRangeKeepsVectorsIdentical) {
  const Config config{.n = 7, .m = 1, .u = 4};
  const auto inputs = inputs_for(config.n);
  const std::vector<NodeId> faulty{3};
  const DicResult result = run_degradable_ic(
      config, inputs, faulty, [](NodeId sender) {
        return faults::equivocator(Value::of(1), Value::of(2 + sender));
      });
  const DicReport report =
      check_degradable_ic(config, inputs, faulty, result);
  EXPECT_TRUE(report.satisfied) << report.detail;
  EXPECT_TRUE(report.vectors_identical);
  // Fault-free coordinates carry the true inputs at every fault-free node.
  for (const auto& [node, vec] : result.vectors) {
    if (node == 3) continue;
    for (NodeId s = 0; s < config.n; ++s) {
      if (s == 3) continue;
      EXPECT_EQ(vec[static_cast<std::size_t>(s)],
                inputs[static_cast<std::size_t>(s)]);
    }
  }
}

TEST(DegradableIc, DegradedRangeKeepsPerCoordinateGuarantee) {
  const Config config{.n = 7, .m = 1, .u = 4};
  const auto inputs = inputs_for(config.n);
  for (int f = 2; f <= 4; ++f) {
    Rng rng(static_cast<std::uint64_t>(f) * 71);
    std::vector<NodeId> faulty;
    for (const int x : rng.subset(config.n, f)) faulty.push_back(x);
    const DicResult result = run_degradable_ic(
        config, inputs, faulty, [f](NodeId sender) {
          return faults::random_noise(
              mix64(static_cast<std::uint64_t>(f),
                    static_cast<std::uint64_t>(sender)),
              0, 300, 0.3);
        });
    const DicReport report =
        check_degradable_ic(config, inputs, faulty, result);
    EXPECT_TRUE(report.satisfied) << "f=" << f << ": " << report.detail;
    EXPECT_GE(report.min_coordinate_agreement, config.m + 1) << "f=" << f;
  }
}

TEST(DegradableIc, BeatsClassicalIcPastOneThird) {
  // Same scenario for classical IC and degradable IC: past N/3 classical
  // IC loses vector identity entirely; degradable IC retains the m+1
  // per-coordinate guarantee.
  const int n = 7;
  const Config config{.n = n, .m = 1, .u = 4};
  const auto inputs = inputs_for(n);
  const std::vector<NodeId> faulty{1, 3, 5};  // f = 3 > 7/3

  const auto factory = [](NodeId sender) {
    return faults::pivot_equivocator(Value::of(60 + sender),
                                     Value::of(70 + sender), 3);
  };

  const auto ic = protocols::ic::run_interactive_consistency(n, 2, inputs,
                                                             faulty, factory);
  EXPECT_FALSE(
      protocols::ic::interactive_consistency_holds(ic, inputs, faulty));

  const DicResult dic = run_degradable_ic(config, inputs, faulty, factory);
  const DicReport report = check_degradable_ic(config, inputs, faulty, dic);
  EXPECT_TRUE(report.satisfied) << report.detail;
  EXPECT_GE(report.min_coordinate_agreement, 2);
}

TEST(DegradableIc, ViolationReportingWorks) {
  // Feed the checker a corrupted result and confirm it localizes the bad
  // coordinate.
  const Config config{.n = 5, .m = 1, .u = 2};
  const auto inputs = inputs_for(config.n);
  const std::vector<NodeId> faulty{4};
  DicResult result =
      run_degradable_ic(config, inputs, faulty, honest_factory());
  // Corrupt node 2's view of coordinate 1 to a third value.
  result.vectors[2][1] = Value::of(9999);
  const DicReport report =
      check_degradable_ic(config, inputs, faulty, result);
  EXPECT_FALSE(report.satisfied);
  ASSERT_EQ(report.violated_coordinates.size(), 1u);
  EXPECT_EQ(report.violated_coordinates[0], 1);
  EXPECT_FALSE(report.vectors_identical);
}

TEST(DegradableIc, DefaultInputsRejected) {
  const Config config{.n = 4, .m = 1, .u = 1};
  std::vector<Value> inputs = inputs_for(4);
  inputs[2] = Value::def();
  EXPECT_THROW(
      (void)run_degradable_ic(config, inputs, {}, honest_factory()),
      std::logic_error);
}

TEST(DegradableIc, MessageCostIsNInstances)
{
  const Config config{.n = 6, .m = 1, .u = 3};
  const DicResult result =
      run_degradable_ic(config, inputs_for(6), {}, honest_factory());
  EXPECT_EQ(result.messages_sent,
            static_cast<std::size_t>(config.n) *
                core::byz_message_count(config.n, config.m));
}

}  // namespace
}  // namespace da::core
