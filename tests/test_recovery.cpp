#include "channels/recovery.hpp"

#include <gtest/gtest.h>

namespace da::channels {
namespace {

using Kind = ChannelSystemConfig::Kind;

TEST(Recovery, NoFaultsEveryFrameClean) {
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 20;
  params.channel_fault_prob = 0.0;
  const RecoveryStats stats = run_recovery_experiment(system, params);
  EXPECT_EQ(stats.frames, 20);
  EXPECT_EQ(stats.fault_free_frames, 20);
  EXPECT_EQ(stats.unsafe_failures, 0);
  EXPECT_EQ(stats.safe_frames(), 20);
}

TEST(Recovery, DegradableSystemStaysSafeUnderHeavyFaults) {
  // Fault rates high enough that f > m happens regularly: the degradable
  // system must never emit an unsafe (wrong non-default) vote while
  // f <= u; with u = channel_count-... here u=2 of 4 channels, so f <= 2
  // is the common case — and the paper's C.2 keeps it safe.
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 60;
  params.channel_fault_prob = 0.18;
  params.max_concurrent_faults = 2;  // keep the f <= u hypothesis true
  params.seed = 1001;
  const RecoveryStats stats = run_recovery_experiment(system, params);
  EXPECT_EQ(stats.frames, 60);
  EXPECT_EQ(stats.unsafe_failures, 0);
  EXPECT_GT(stats.forward_recovered, 0);  // single faults were masked
}

TEST(Recovery, BackwardRecoveryEventuallySucceeds) {
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 80;
  params.channel_fault_prob = 0.30;  // frequent multi-fault frames
  params.repair_prob = 0.8;          // transient faults clear quickly
  params.max_retries = 5;
  params.max_concurrent_faults = 2;
  params.seed = 2002;
  const RecoveryStats stats = run_recovery_experiment(system, params);
  EXPECT_EQ(stats.unsafe_failures, 0);
  EXPECT_GT(stats.backward_recovered, 0);
  EXPECT_EQ(stats.safe_frames(), stats.frames);
}

TEST(Recovery, ByzantineSystemEventuallyFailsUnsafely) {
  // The contrast case: the classical majority system emits wrong votes
  // once f > m frames occur.
  const ChannelSystem system({.kind = Kind::kByzantineMajority, .m = 1});
  RecoveryParams params;
  params.frames = 120;
  params.channel_fault_prob = 0.30;
  params.repair_prob = 0.0;  // permanent for the duration of the frame
  params.max_concurrent_faults = 2;  // same hypothesis as the degradable run
  params.seed = 3003;
  const RecoveryStats stats = run_recovery_experiment(system, params);
  EXPECT_GT(stats.unsafe_failures, 0);
}

TEST(Recovery, StatsAreConsistent) {
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 40;
  params.channel_fault_prob = 0.25;
  params.max_concurrent_faults = 2;
  params.seed = 4004;
  const RecoveryStats stats = run_recovery_experiment(system, params);
  EXPECT_EQ(stats.safe_frames() + stats.unsafe_failures, stats.frames);
  EXPECT_GE(stats.fault_free_frames, 0);
  EXPECT_LE(stats.fault_free_frames, stats.frames);
}

TEST(Recovery, DeterministicForFixedSeed) {
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 30;
  params.channel_fault_prob = 0.2;
  params.seed = 5005;
  const RecoveryStats a = run_recovery_experiment(system, params);
  const RecoveryStats b = run_recovery_experiment(system, params);
  EXPECT_EQ(a.forward_recovered, b.forward_recovered);
  EXPECT_EQ(a.backward_recovered, b.backward_recovered);
  EXPECT_EQ(a.unsafe_failures, b.unsafe_failures);
}

}  // namespace
}  // namespace da::channels
