#include "channels/recovery.hpp"

#include <gtest/gtest.h>

#include "faults/adversaries.hpp"

namespace da::channels {
namespace {

using Kind = ChannelSystemConfig::Kind;

TEST(Recovery, NoFaultsEveryFrameClean) {
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 20;
  params.channel_fault_prob = 0.0;
  const RecoveryStats stats = run_recovery_experiment(system, params);
  EXPECT_EQ(stats.frames, 20);
  EXPECT_EQ(stats.fault_free_frames, 20);
  EXPECT_EQ(stats.unsafe_failures, 0);
  EXPECT_EQ(stats.safe_frames(), 20);
}

TEST(Recovery, DegradableSystemStaysSafeUnderHeavyFaults) {
  // Fault rates high enough that f > m happens regularly: the degradable
  // system must never emit an unsafe (wrong non-default) vote while
  // f <= u; with u = channel_count-... here u=2 of 4 channels, so f <= 2
  // is the common case — and the paper's C.2 keeps it safe.
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 60;
  params.channel_fault_prob = 0.18;
  params.max_concurrent_faults = 2;  // keep the f <= u hypothesis true
  params.seed = 1001;
  const RecoveryStats stats = run_recovery_experiment(system, params);
  EXPECT_EQ(stats.frames, 60);
  EXPECT_EQ(stats.unsafe_failures, 0);
  EXPECT_GT(stats.forward_recovered, 0);  // single faults were masked
}

TEST(Recovery, BackwardRecoveryEventuallySucceeds) {
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 80;
  params.channel_fault_prob = 0.30;  // frequent multi-fault frames
  params.repair_prob = 0.8;          // transient faults clear quickly
  params.max_retries = 5;
  params.max_concurrent_faults = 2;
  params.seed = 2002;
  const RecoveryStats stats = run_recovery_experiment(system, params);
  EXPECT_EQ(stats.unsafe_failures, 0);
  EXPECT_GT(stats.backward_recovered, 0);
  EXPECT_EQ(stats.safe_frames(), stats.frames);
}

TEST(Recovery, ByzantineSystemEventuallyFailsUnsafely) {
  // The contrast case: the classical majority system emits wrong votes
  // once f > m frames occur.
  const ChannelSystem system({.kind = Kind::kByzantineMajority, .m = 1});
  RecoveryParams params;
  params.frames = 120;
  params.channel_fault_prob = 0.30;
  params.repair_prob = 0.0;  // permanent for the duration of the frame
  params.max_concurrent_faults = 2;  // same hypothesis as the degradable run
  params.seed = 3003;
  const RecoveryStats stats = run_recovery_experiment(system, params);
  EXPECT_GT(stats.unsafe_failures, 0);
}

TEST(Recovery, StatsAreConsistent) {
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 40;
  params.channel_fault_prob = 0.25;
  params.max_concurrent_faults = 2;
  params.seed = 4004;
  const RecoveryStats stats = run_recovery_experiment(system, params);
  EXPECT_EQ(stats.safe_frames() + stats.unsafe_failures, stats.frames);
  EXPECT_GE(stats.fault_free_frames, 0);
  EXPECT_LE(stats.fault_free_frames, stats.frames);
}

TEST(Recovery, SensorFaultsRepairDuringRetries) {
  // Exercises the sensor-repair branch of the backward-recovery loop:
  // every frame starts with a faulty (equivocating) sensor, repair always
  // succeeds, so frames that voted V_d on the first attempt recover on a
  // retry with the repaired sensor.
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 50;
  params.channel_fault_prob = 0.0;
  params.sensor_fault_prob = 1.0;
  params.repair_prob = 1.0;
  params.max_retries = 3;
  params.seed = 6006;
  const RecoveryStats stats = run_recovery_experiment(system, params);
  EXPECT_EQ(stats.frames, 50);
  EXPECT_EQ(stats.fault_free_frames, 0);  // the sensor is down every frame
  EXPECT_GT(stats.backward_recovered, 0);
  // With guaranteed repair and retries left, no frame exhausts its budget.
  EXPECT_EQ(stats.default_exhausted, 0);
  EXPECT_EQ(stats.safe_frames() + stats.unsafe_failures, stats.frames);
}

TEST(Recovery, SensorFaultsWithoutRepairExhaustRetries) {
  // repair_prob = 0 freezes the fault pattern, so every retry replays the
  // identical frame: a first-attempt V_d can only end in default_exhausted
  // and backward recovery never fires.
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 50;
  params.channel_fault_prob = 0.0;
  params.sensor_fault_prob = 1.0;
  params.repair_prob = 0.0;
  params.max_retries = 2;
  params.seed = 7007;
  const RecoveryStats stats = run_recovery_experiment(system, params);
  EXPECT_EQ(stats.backward_recovered, 0);
  EXPECT_EQ(stats.safe_frames() + stats.unsafe_failures, stats.frames);
}

TEST(Recovery, ZeroRetryBudgetCountsExhaustionImmediately) {
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 60;
  params.channel_fault_prob = 0.35;
  params.max_retries = 0;  // no backward recovery at all
  params.max_concurrent_faults = 2;
  params.seed = 8008;
  const RecoveryStats stats = run_recovery_experiment(system, params);
  EXPECT_EQ(stats.backward_recovered, 0);
  EXPECT_EQ(stats.unsafe_failures, 0);  // f <= u: degradable stays safe
  EXPECT_EQ(stats.safe_frames(), stats.frames);
}

TEST(Recovery, DeterministicWithSensorFaults) {
  // The sensor-fault draws and the sensor-repair branch must replay
  // identically for a fixed seed, like every other stochastic path.
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 40;
  params.channel_fault_prob = 0.2;
  params.sensor_fault_prob = 0.5;
  params.repair_prob = 0.6;
  params.max_concurrent_faults = 2;
  params.seed = 9009;
  const RecoveryStats a = run_recovery_experiment(system, params);
  const RecoveryStats b = run_recovery_experiment(system, params);
  EXPECT_EQ(a.forward_recovered, b.forward_recovered);
  EXPECT_EQ(a.backward_recovered, b.backward_recovered);
  EXPECT_EQ(a.unsafe_failures, b.unsafe_failures);
  EXPECT_EQ(a.default_exhausted, b.default_exhausted);
  EXPECT_EQ(a.fault_free_frames, b.fault_free_frames);
}

TEST(Recovery, CrashingChannelsStayWithinDegradedGuarantee) {
  // Crash-restart composed with the frame pipeline: channels that go
  // silent mid-agreement (crash_after) are exactly the transient faults
  // the recovery policy is built for — the degradable system must never
  // vote an incorrect value while f <= u (C.2), only mask or default.
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  const auto adversary = faults::crash_after(0);
  for (int first = 0; first < system.config().channel_count(); ++first) {
    for (int second = first; second < system.config().channel_count();
         ++second) {
      std::vector<int> faulty{first};
      if (second != first) faulty.push_back(second);  // f = 1 or 2 <= u
      const FrameResult result = system.run_frame(
          Value::of(33), faulty, /*sensor_faulty=*/false, *adversary,
          /*faulty_output=*/Value::of(1234));
      EXPECT_NE(result.outcome, VoterOutcome::kIncorrect)
          << "faulty channels " << first << "," << second;
      EXPECT_TRUE(result.divergence_graceful);
    }
  }
}

TEST(Recovery, CrashedSensorYieldsSafeFrame) {
  // A sensor that crashes after distributing round 0 (or stays silent
  // entirely) must drive the channels to the safe default, never to an
  // incorrect vote.
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  for (const auto& adversary :
       {faults::crash_after(0), faults::silent()}) {
    const FrameResult result = system.run_frame(
        Value::of(55), /*faulty_channels=*/{}, /*sensor_faulty=*/true,
        *adversary, /*faulty_output=*/Value::of(999));
    EXPECT_NE(result.outcome, VoterOutcome::kIncorrect);
    EXPECT_TRUE(result.divergence_graceful);
  }
}

TEST(Recovery, DeterministicForFixedSeed) {
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  RecoveryParams params;
  params.frames = 30;
  params.channel_fault_prob = 0.2;
  params.seed = 5005;
  const RecoveryStats a = run_recovery_experiment(system, params);
  const RecoveryStats b = run_recovery_experiment(system, params);
  EXPECT_EQ(a.forward_recovered, b.forward_recovered);
  EXPECT_EQ(a.backward_recovered, b.backward_recovered);
  EXPECT_EQ(a.unsafe_failures, b.unsafe_failures);
}

}  // namespace
}  // namespace da::channels
