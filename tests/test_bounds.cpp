#include "core/bounds.hpp"

#include <gtest/gtest.h>

namespace da::bounds {
namespace {

TEST(Bounds, MinNodesFormula) {
  EXPECT_EQ(min_nodes(0, 0), 1);
  EXPECT_EQ(min_nodes(1, 1), 4);   // classical 3m+1
  EXPECT_EQ(min_nodes(1, 2), 5);   // the paper's Part I case
  EXPECT_EQ(min_nodes(2, 2), 7);
  EXPECT_EQ(min_nodes(1, 4), 7);
  EXPECT_EQ(min_nodes(0, 6), 7);
  EXPECT_EQ(min_nodes(3, 5), 12);
}

TEST(Bounds, MinNodesMatchesLamportWhenDegenerate) {
  for (int m = 0; m <= 5; ++m) {
    EXPECT_EQ(min_nodes(m, m), lamport_min_nodes(m));
  }
}

TEST(Bounds, MinConnectivityFormula) {
  EXPECT_EQ(min_connectivity(1, 1), 3);  // classical 2m+1
  EXPECT_EQ(min_connectivity(1, 2), 4);
  EXPECT_EQ(min_connectivity(2, 4), 7);
}

TEST(Bounds, ConnectivityNeverBelowLamport) {
  for (int m = 0; m <= 4; ++m) {
    for (int u = m; u <= 8; ++u) {
      EXPECT_GE(min_connectivity(m, u), 2 * m + 1);
    }
  }
}

TEST(Bounds, InvalidArgsRejected) {
  EXPECT_THROW((void)min_nodes(-1, 0), std::logic_error);
  EXPECT_THROW((void)min_nodes(2, 1), std::logic_error);  // u < m
  EXPECT_THROW((void)min_connectivity(1, 0), std::logic_error);
}

TEST(Bounds, MaxU) {
  EXPECT_EQ(max_u(7, 0), 6);
  EXPECT_EQ(max_u(7, 1), 4);
  EXPECT_EQ(max_u(7, 2), 2);
  EXPECT_EQ(max_u(7, 3), -1);  // u would be 0 < m
  EXPECT_EQ(max_u(4, 1), 1);
}

TEST(Bounds, MaxM) {
  EXPECT_EQ(max_m(4), 1);
  EXPECT_EQ(max_m(6), 1);
  EXPECT_EQ(max_m(7), 2);
  EXPECT_EQ(max_m(10), 3);
}

TEST(Bounds, TradeoffFrontierSevenNodes) {
  // The paper's example: with 7 nodes one may achieve 0/6-, 1/4- or
  // 2/2-degradable agreement.
  const auto frontier = tradeoff_frontier(7);
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_EQ(frontier[0].m, 0);
  EXPECT_EQ(frontier[0].u, 6);
  EXPECT_EQ(frontier[1].m, 1);
  EXPECT_EQ(frontier[1].u, 4);
  EXPECT_EQ(frontier[2].m, 2);
  EXPECT_EQ(frontier[2].u, 2);
  for (const Config& c : frontier) {
    EXPECT_TRUE(c.feasible());
    EXPECT_EQ(c.n, 7);
    // The frontier is tight: one more u would need one more node.
    EXPECT_FALSE((Config{.n = 7, .m = c.m, .u = c.u + 1}.feasible()));
  }
}

TEST(Bounds, FrontierTradesTwoUForOneM) {
  // u = n - 2m - 1: each +1 of m costs 2 of u.
  const auto frontier = tradeoff_frontier(13);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_EQ(frontier[i].m, frontier[i - 1].m + 1);
    EXPECT_EQ(frontier[i].u, frontier[i - 1].u - 2);
  }
}

TEST(Bounds, ConfigFeasible) {
  EXPECT_TRUE((Config{.n = 7, .m = 1, .u = 4}.feasible()));
  EXPECT_FALSE((Config{.n = 6, .m = 1, .u = 4}.feasible()));
  EXPECT_TRUE((Config{.n = 4, .m = 1, .u = 1}.feasible()));
  EXPECT_FALSE((Config{.n = 3, .m = 1, .u = 1}.feasible()));
}

TEST(Bounds, ConfigValid) {
  EXPECT_TRUE((Config{.n = 4, .m = 1, .u = 2}.valid()));
  EXPECT_FALSE((Config{.n = 4, .m = 2, .u = 1}.valid()));
  EXPECT_FALSE((Config{.n = 4, .m = -1, .u = 1}.valid()));
  EXPECT_FALSE((Config{.n = 4, .m = 1, .u = 4}.valid()));  // u >= n
  EXPECT_FALSE((Config{.n = 1, .m = 0, .u = 0}.valid()));
}

}  // namespace
}  // namespace da::bounds
