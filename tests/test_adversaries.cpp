#include "faults/adversaries.hpp"

#include <gtest/gtest.h>

#include "faults/scripted.hpp"

namespace da::faults {
namespace {

sim::Message msg(NodeId from, NodeId to, int round, Value v,
                 Path path = {}) {
  return sim::Message{
      .from = from, .to = to, .round = round, .path = path, .value = v};
}

TEST(Adversaries, HonestPassesThrough) {
  auto adv = honest();
  const auto m = msg(1, 2, 0, Value::of(5));
  const auto out = adv->corrupt(m);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
}

TEST(Adversaries, SilentDropsEverything) {
  auto adv = silent();
  EXPECT_FALSE(adv->corrupt(msg(1, 2, 0, Value::of(5))).has_value());
  EXPECT_FALSE(adv->corrupt(msg(3, 0, 2, Value::def())).has_value());
}

TEST(Adversaries, ConstantLiarRewritesValueOnly) {
  auto adv = constant_liar(Value::of(9));
  const auto out = adv->corrupt(msg(1, 2, 0, Value::of(5)));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->value, Value::of(9));
  EXPECT_EQ(out->from, 1);
  EXPECT_EQ(out->to, 2);
}

TEST(Adversaries, DefaultSpammerSendsVd) {
  auto adv = default_spammer();
  EXPECT_TRUE(adv->corrupt(msg(1, 2, 0, Value::of(5)))->value.is_default());
}

TEST(Adversaries, EquivocatorSplitsByParity) {
  auto adv = equivocator(Value::of(1), Value::of(2));
  EXPECT_EQ(adv->corrupt(msg(0, 2, 0, Value::of(5)))->value, Value::of(1));
  EXPECT_EQ(adv->corrupt(msg(0, 3, 0, Value::of(5)))->value, Value::of(2));
}

TEST(Adversaries, PivotEquivocatorSplitsAtPivot) {
  auto adv = pivot_equivocator(Value::of(1), Value::of(2), 3);
  EXPECT_EQ(adv->corrupt(msg(0, 2, 0, Value::of(5)))->value, Value::of(1));
  EXPECT_EQ(adv->corrupt(msg(0, 3, 0, Value::of(5)))->value, Value::of(2));
  EXPECT_EQ(adv->corrupt(msg(0, 4, 0, Value::of(5)))->value, Value::of(2));
}

TEST(Adversaries, CrashAfterRound) {
  auto adv = crash_after(1);
  EXPECT_TRUE(adv->corrupt(msg(0, 1, 0, Value::of(5))).has_value());
  EXPECT_TRUE(adv->corrupt(msg(0, 1, 1, Value::of(5))).has_value());
  EXPECT_FALSE(adv->corrupt(msg(0, 1, 2, Value::of(5))).has_value());
}

TEST(Adversaries, RandomNoiseIsMessageDeterministic) {
  auto a = random_noise(7, 0, 100, 0.3);
  auto b = random_noise(7, 0, 100, 0.3);
  for (int to = 0; to < 50; ++to) {
    const auto m = msg(0, to, 1, Value::of(5), Path{0, 3});
    const auto ra = a->corrupt(m);
    // Call b in a *different* order: results must still match.
    const auto rb = b->corrupt(m);
    EXPECT_EQ(ra.has_value(), rb.has_value());
    if (ra) {
      EXPECT_EQ(ra->value, rb->value);
    }
  }
}

TEST(Adversaries, RandomNoiseValuesInRange) {
  auto adv = random_noise(7, 10, 12, 0.0);
  for (int to = 0; to < 30; ++to) {
    const auto out = adv->corrupt(msg(0, to, 1, Value::of(5)));
    ASSERT_TRUE(out.has_value());
    EXPECT_GE(out->value.raw(), 10);
    EXPECT_LE(out->value.raw(), 12);
  }
}

TEST(Adversaries, TargetedSplitTellsTruthToTargets) {
  auto adv = targeted_split({1, 3}, Value::of(42));
  EXPECT_EQ(adv->corrupt(msg(0, 1, 0, Value::of(5)))->value, Value::of(5));
  EXPECT_EQ(adv->corrupt(msg(0, 2, 0, Value::of(5)))->value, Value::of(42));
  EXPECT_EQ(adv->corrupt(msg(0, 3, 0, Value::of(5)))->value, Value::of(5));
}

TEST(Scripted, FirstMatchWins) {
  auto adv = scripted({
      Rule{.to = 1, .action = Rule::Action::kReplace, .value = Value::of(7)},
      Rule{.to = 1, .action = Rule::Action::kOmit},
      Rule{.action = Rule::Action::kReplace, .value = Value::of(8)},
  });
  EXPECT_EQ(adv->corrupt(msg(0, 1, 0, Value::of(5)))->value, Value::of(7));
  EXPECT_EQ(adv->corrupt(msg(0, 2, 0, Value::of(5)))->value, Value::of(8));
}

TEST(Scripted, UnmatchedPassesThrough) {
  auto adv = scripted({
      Rule{.from = 3, .action = Rule::Action::kOmit},
  });
  const auto out = adv->corrupt(msg(0, 1, 0, Value::of(5)));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->value, Value::of(5));
}

TEST(Scripted, RoundAndFromFilters) {
  auto adv = scripted({
      Rule{.from = 2, .round = 1, .action = Rule::Action::kOmit},
  });
  EXPECT_TRUE(adv->corrupt(msg(2, 1, 0, Value::of(5))).has_value());
  EXPECT_FALSE(adv->corrupt(msg(2, 1, 1, Value::of(5))).has_value());
  EXPECT_TRUE(adv->corrupt(msg(3, 1, 1, Value::of(5))).has_value());
}

TEST(Scripted, PathPrefixFilter) {
  auto adv = scripted({
      Rule{.path_prefix = Path{0, 2},
           .action = Rule::Action::kReplace,
           .value = Value::of(9)},
  });
  EXPECT_EQ(adv->corrupt(msg(2, 1, 1, Value::of(5), Path{0, 2}))->value,
            Value::of(9));
  EXPECT_EQ(adv->corrupt(msg(3, 1, 1, Value::of(5), Path{0, 3}))->value,
            Value::of(5));
  // Longer paths with the prefix also match.
  EXPECT_EQ(adv->corrupt(msg(4, 1, 2, Value::of(5), Path{0, 2, 4}))->value,
            Value::of(9));
  // Shorter than the prefix: no match.
  EXPECT_EQ(adv->corrupt(msg(0, 1, 0, Value::of(5), Path{0}))->value,
            Value::of(5));
}

}  // namespace
}  // namespace da::faults
