#include "core/checker.hpp"

#include <gtest/gtest.h>

namespace da {
namespace {

ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.config = Config{.n = 5, .m = 1, .u = 2};
  spec.sender = 0;
  spec.sender_value = Value::of(10);
  return spec;
}

std::map<NodeId, Value> decisions(std::initializer_list<Value> values) {
  std::map<NodeId, Value> out;
  NodeId id = 0;
  for (const Value& v : values) out[id++] = v;
  return out;
}

TEST(Checker, D1Satisfied) {
  auto spec = base_spec();
  spec.faulty = {3};
  const auto report = check_conditions(
      spec, decisions({Value::of(10), Value::of(10), Value::of(10),
                       Value::of(99), Value::of(10)}));
  EXPECT_EQ(report.applied, Condition::kD1);
  EXPECT_TRUE(report.satisfied);
  EXPECT_EQ(report.value_class.size(), 3u);  // nodes 1,2,4
  EXPECT_TRUE(report.violators.empty());
}

TEST(Checker, D1ViolatedByDefaultDecision) {
  auto spec = base_spec();
  spec.faulty = {3};
  const auto report = check_conditions(
      spec, decisions({Value::of(10), Value::of(10), Value::def(),
                       Value::of(99), Value::of(10)}));
  EXPECT_EQ(report.applied, Condition::kD1);
  EXPECT_FALSE(report.satisfied);
  EXPECT_EQ(report.violators, std::vector<NodeId>{2});
}

TEST(Checker, D2SatisfiedOnAnyCommonValue) {
  auto spec = base_spec();
  spec.faulty = {0};  // sender faulty, f=1 <= m
  const auto report = check_conditions(
      spec, decisions({Value::of(1), Value::of(77), Value::of(77),
                       Value::of(77), Value::of(77)}));
  EXPECT_EQ(report.applied, Condition::kD2);
  EXPECT_TRUE(report.satisfied);
}

TEST(Checker, D2SatisfiedOnCommonDefault) {
  auto spec = base_spec();
  spec.faulty = {0};
  const auto report = check_conditions(
      spec, decisions({Value::of(1), Value::def(), Value::def(), Value::def(),
                       Value::def()}));
  EXPECT_EQ(report.applied, Condition::kD2);
  EXPECT_TRUE(report.satisfied);
  EXPECT_EQ(report.default_class.size(), 4u);
}

TEST(Checker, D2ViolatedBySplit) {
  auto spec = base_spec();
  spec.faulty = {0};
  const auto report = check_conditions(
      spec, decisions({Value::of(1), Value::of(7), Value::of(7), Value::of(8),
                       Value::of(7)}));
  EXPECT_EQ(report.applied, Condition::kD2);
  EXPECT_FALSE(report.satisfied);
  EXPECT_EQ(report.violators.size(), 4u);
}

TEST(Checker, D3AllowsSenderValueAndDefaultOnly) {
  auto spec = base_spec();
  spec.faulty = {3, 4};  // f=2: m < f <= u
  const auto report = check_conditions(
      spec, decisions({Value::of(10), Value::of(10), Value::def(),
                       Value::of(1), Value::of(2)}));
  EXPECT_EQ(report.applied, Condition::kD3);
  EXPECT_TRUE(report.satisfied);
  EXPECT_EQ(report.value_class, std::vector<NodeId>{1});
  EXPECT_EQ(report.default_class, std::vector<NodeId>{2});
}

TEST(Checker, D3ViolatedByThirdValue) {
  auto spec = base_spec();
  spec.faulty = {3, 4};
  const auto report = check_conditions(
      spec, decisions({Value::of(10), Value::of(10), Value::of(11),
                       Value::of(1), Value::of(2)}));
  EXPECT_EQ(report.applied, Condition::kD3);
  EXPECT_FALSE(report.satisfied);
  EXPECT_EQ(report.violators, std::vector<NodeId>{2});
}

TEST(Checker, D4AllowsOneValuePlusDefault) {
  auto spec = base_spec();
  spec.faulty = {0, 3};  // sender faulty, f=2 in (m,u]
  const auto report = check_conditions(
      spec, decisions({Value::of(1), Value::of(55), Value::def(),
                       Value::of(9), Value::of(55)}));
  EXPECT_EQ(report.applied, Condition::kD4);
  EXPECT_TRUE(report.satisfied);
  EXPECT_EQ(report.value_class.size(), 2u);
  EXPECT_EQ(report.default_class.size(), 1u);
}

TEST(Checker, D4ViolatedByTwoNonDefaultValues) {
  auto spec = base_spec();
  spec.faulty = {0, 3};
  const auto report = check_conditions(
      spec, decisions({Value::of(1), Value::of(55), Value::of(56),
                       Value::of(9), Value::of(55)}));
  EXPECT_EQ(report.applied, Condition::kD4);
  EXPECT_FALSE(report.satisfied);
  EXPECT_FALSE(report.violators.empty());
}

TEST(Checker, BeyondUPromisesNothing) {
  auto spec = base_spec();
  spec.faulty = {2, 3, 4};  // f=3 > u=2
  const auto report = check_conditions(
      spec, decisions({Value::of(10), Value::of(4), Value::of(5), Value::of(6),
                       Value::of(7)}));
  EXPECT_EQ(report.applied, Condition::kNone);
  EXPECT_TRUE(report.satisfied);
}

TEST(Checker, CorollaryCountsSenderWithItsValue) {
  auto spec = base_spec();
  spec.faulty = {3, 4};
  // Only node 1 decides the sender's value; with the fault-free sender that
  // class has 2 members >= m+1 = 2.
  const auto report = check_conditions(
      spec, decisions({Value::of(10), Value::of(10), Value::def(),
                       Value::of(1), Value::of(1)}));
  EXPECT_TRUE(report.corollary_m_plus_1);
  EXPECT_EQ(report.largest_agreeing_class, 2);
}

TEST(Checker, CorollaryFailsWhenEveryoneScatters) {
  auto spec = base_spec();
  spec.config.m = 2;  // require classes of 3
  spec.config.u = 2;
  spec.faulty = {0, 4};
  const auto report = check_conditions(
      spec, decisions({Value::of(1), Value::of(2), Value::of(2), Value::def(),
                       Value::of(9)}));
  // f=2 <= m, D.2 violated; corollary also fails (largest class = 2 < 3).
  EXPECT_FALSE(report.satisfied);
  EXPECT_FALSE(report.corollary_m_plus_1);
  EXPECT_EQ(report.largest_agreeing_class, 2);
}

TEST(Checker, DefaultSenderValueRejected) {
  auto spec = base_spec();
  spec.sender_value = Value::def();
  EXPECT_THROW((void)check_conditions(spec, decisions({Value::def(),
                                                       Value::def(),
                                                       Value::def(),
                                                       Value::def(),
                                                       Value::def()})),
               std::logic_error);
}

TEST(Checker, MissingDecisionRejected) {
  auto spec = base_spec();
  std::map<NodeId, Value> partial{{1, Value::of(10)}};
  EXPECT_THROW((void)check_conditions(spec, partial), std::logic_error);
}

TEST(Checker, ConditionNames) {
  EXPECT_STREQ(to_string(Condition::kD1), "D.1");
  EXPECT_STREQ(to_string(Condition::kD4), "D.4");
  EXPECT_STREQ(to_string(Condition::kNone), "none");
}

}  // namespace
}  // namespace da
