#include "faults/figure2.hpp"

#include <gtest/gtest.h>

#include "core/agreement.hpp"

namespace da::faults::figure2 {
namespace {

struct RunWithTrace {
  Outcome outcome;
  sim::Trace trace;
  ConditionReport report;
};

RunWithTrace run(const Scenario& scenario) {
  RunWithTrace r;
  const DegradableAgreement protocol(scenario.spec.config);
  RunExtras extras;
  extras.trace = &r.trace;
  r.outcome = protocol.run(scenario.spec, scenario.adversary.get(), extras);
  r.report = check_conditions(scenario.spec, r.outcome.decisions);
  return r;
}

TEST(Figure2, ConfigIsOneNodeShortOfFeasible) {
  const auto s = scenario_a(4);
  EXPECT_FALSE(s.spec.config.feasible());
  EXPECT_TRUE(
      (Config{.n = 5, .m = 1, .u = 2}.feasible()));  // +1 node fixes it
}

TEST(Figure2, ScenarioA_D1ForcesBeta) {
  // f = 1 <= m with a fault-free sender: D.1 applies and BYZ satisfies it
  // (4 nodes suffice for plain agreement with 1 fault).
  const auto r = run(scenario_a(4));
  EXPECT_EQ(r.report.applied, Condition::kD1);
  EXPECT_TRUE(r.report.satisfied) << r.report.detail;
  EXPECT_EQ(r.outcome.decision_of(2), kBeta);
  EXPECT_EQ(r.outcome.decision_of(3), kBeta);
}

TEST(Figure2, ScenarioB_D2StillHolds) {
  const auto r = run(scenario_b(4));
  EXPECT_EQ(r.report.applied, Condition::kD2);
  EXPECT_TRUE(r.report.satisfied) << r.report.detail;
}

TEST(Figure2, ScenarioC_ViolatesD3) {
  // The contradiction of Theorem 2 Part I: with N = 2m+u = 4 the protocol
  // must fail in one of the three scenarios — and it is (c), where node A
  // is forced (by indistinguishability from (b)) to a wrong value.
  const auto r = run(scenario_c(4));
  EXPECT_EQ(r.report.applied, Condition::kD3);
  EXPECT_FALSE(r.report.satisfied);
  EXPECT_EQ(r.outcome.decision_of(1), kBeta);  // neither alpha nor V_d
}

TEST(Figure2, NodeBCannotDistinguishAandB) {
  // B's received transcript is byte-identical in scenarios (a) and (b):
  // the indistinguishability the proof leans on.
  const auto ra = run(scenario_a(4));
  const auto rb = run(scenario_b(4));
  EXPECT_TRUE(ra.trace.indistinguishable_for(2, rb.trace));
  EXPECT_EQ(ra.outcome.decision_of(2), rb.outcome.decision_of(2));
}

TEST(Figure2, NodeACannotDistinguishBandC) {
  const auto rb = run(scenario_b(4));
  const auto rc = run(scenario_c(4));
  EXPECT_TRUE(rb.trace.indistinguishable_for(1, rc.trace));
  EXPECT_EQ(rb.outcome.decision_of(1), rc.outcome.decision_of(1));
}

TEST(Figure2, DistinguishableForOtherNodes) {
  // Sanity: the indistinguishability is specific to the pivot node.
  const auto ra = run(scenario_a(4));
  const auto rc = run(scenario_c(4));
  EXPECT_FALSE(ra.trace.indistinguishable_for(1, rc.trace));
}

class Figure2Lifted : public ::testing::TestWithParam<int> {};

TEST_P(Figure2Lifted, GroupSimulationAtLargerN) {
  // Part II of Theorem 2: the same three-scenario argument lifted to any
  // N = 2m+u (here m=1): (a) and (b) hold, (c) must break.
  const int n = GetParam();
  const auto ra = run(scenario_a(n));
  EXPECT_TRUE(ra.report.satisfied) << ra.report.detail;
  const auto rb = run(scenario_b(n));
  EXPECT_TRUE(rb.report.satisfied) << rb.report.detail;
  const auto rc = run(scenario_c(n));
  EXPECT_FALSE(rc.report.satisfied);
  // The pivot indistinguishabilities persist.
  EXPECT_TRUE(ra.trace.indistinguishable_for(2, rb.trace));
  EXPECT_TRUE(rb.trace.indistinguishable_for(1, rc.trace));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Figure2Lifted, ::testing::Values(4, 5, 6, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace da::faults::figure2
