#include "util/path.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

namespace da {
namespace {

TEST(Path, EmptyByDefault) {
  const Path p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
}

TEST(Path, InitializerList) {
  const Path p{3, 1, 4};
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], 3);
  EXPECT_EQ(p[1], 1);
  EXPECT_EQ(p[2], 4);
  EXPECT_EQ(p.front(), 3);
  EXPECT_EQ(p.back(), 4);
}

TEST(Path, PushPop) {
  Path p;
  p.push_back(5);
  p.push_back(6);
  EXPECT_EQ(p.back(), 6);
  p.pop_back();
  EXPECT_EQ(p.back(), 5);
  EXPECT_EQ(p.size(), 1u);
}

TEST(Path, Contains) {
  const Path p{0, 2, 7};
  EXPECT_TRUE(p.contains(0));
  EXPECT_TRUE(p.contains(7));
  EXPECT_FALSE(p.contains(1));
}

TEST(Path, Distinct) {
  EXPECT_TRUE((Path{0, 1, 2}).distinct());
  EXPECT_FALSE((Path{0, 1, 0}).distinct());
  EXPECT_TRUE(Path{}.distinct());
}

TEST(Path, ExtendedLeavesOriginalUntouched) {
  const Path p{1, 2};
  const Path q = p.extended(3);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.back(), 3);
}

TEST(Path, EqualityAndOrdering) {
  EXPECT_EQ((Path{1, 2}), (Path{1, 2}));
  EXPECT_FALSE((Path{1, 2}) == (Path{1, 3}));
  EXPECT_FALSE((Path{1, 2}) == (Path{1, 2, 3}));
  EXPECT_LT((Path{1, 2}), (Path{1, 3}));
  EXPECT_LT((Path{1, 2}), (Path{1, 2, 0}));
}

TEST(Path, HashConsistentWithEquality) {
  const Path a{4, 5, 6};
  const Path b{4, 5, 6};
  EXPECT_EQ(a.hash(), b.hash());
  std::unordered_set<Path> set;
  set.insert(a);
  set.insert(b);
  EXPECT_EQ(set.size(), 1u);
}

TEST(Path, HashDistinguishesLengthPrefixes) {
  // [1] vs [1,0] vs [1,0,0] must hash apart with overwhelming likelihood.
  const Path a{1};
  const Path b{1, 0};
  const Path c{1, 0, 0};
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(b.hash(), c.hash());
}

TEST(Path, ToString) {
  EXPECT_EQ((Path{0, 3, 1}).to_string(), "[0,3,1]");
  EXPECT_EQ(Path{}.to_string(), "[]");
}

TEST(Path, OverflowThrows) {
  Path p;
  for (std::size_t i = 0; i < Path::kMaxLen; ++i) {
    p.push_back(static_cast<NodeId>(i));
  }
  EXPECT_THROW(p.push_back(99), std::logic_error);
}

TEST(Path, PopEmptyThrows) {
  Path p;
  EXPECT_THROW(p.pop_back(), std::logic_error);
}

TEST(Path, RangeFor) {
  const Path p{2, 4, 6};
  int sum = 0;
  for (NodeId id : p) sum += id;
  EXPECT_EQ(sum, 12);
}

}  // namespace
}  // namespace da
