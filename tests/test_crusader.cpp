#include "protocols/crusader/crusader.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "faults/adversaries.hpp"
#include "faults/search.hpp"
#include "sim/runner.hpp"

namespace da::protocols::crusader {
namespace {

sim::RunResult run_crusader(int n, int m, NodeId sender, Value v,
                            const std::vector<NodeId>& faulty,
                            sim::Adversary* adversary) {
  sim::RunOptions options;
  options.faulty = faulty;
  options.adversary = adversary;
  sim::SyncRunner runner(make_crusader_processes(n, m, sender, v), options);
  return runner.run();
}

TEST(Crusader, TwoRoundsOnly) {
  EXPECT_EQ(crusader_rounds(), 2);
  const auto result = run_crusader(5, 1, 0, Value::of(4), {}, nullptr);
  EXPECT_EQ(result.rounds, 2);
}

TEST(Crusader, NoFaultsAllAdopt) {
  const auto result = run_crusader(5, 1, 0, Value::of(4), {}, nullptr);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(result.decisions.at(i), Value::of(4));
  }
}

TEST(Crusader, FaultFreeSenderSurvivesOneLiar) {
  auto adversary = faults::constant_liar(Value::of(9));
  const auto result = run_crusader(5, 1, 0, Value::of(4), {2},
                                   adversary.get());
  for (NodeId i : {1, 3, 4}) {
    EXPECT_EQ(result.decisions.at(i), Value::of(4)) << "node " << i;
  }
}

TEST(Crusader, FaultySenderSplitsIntoValueOrDetect) {
  // Equivocating sender: every fault-free receiver must decide some common
  // value or V_d ("sender is faulty") — never two different values.
  auto adversary = faults::pivot_equivocator(Value::of(1), Value::of(2), 3);
  const auto result = run_crusader(5, 1, 0, Value::of(1), {0},
                                   adversary.get());
  std::vector<NodeId> fault_free{1, 2, 3, 4};
  EXPECT_TRUE(crusader_agreement_holds(Value::of(1), /*sender_faulty=*/true,
                                       fault_free, result.decisions));
}

TEST(Crusader, ExhaustiveSweepSmallSystems) {
  // Crusader property over all faulty subsets (|F| <= m) and the standard
  // family, for n comfortably above 3m.
  for (const auto& [n, m] : std::vector<std::pair<int, int>>{{5, 1}, {8, 2}}) {
    const auto family = faults::standard_family(31);
    faults::for_each_subset(n, m, [&, n = n, m = m](
                                      const std::vector<NodeId>& faulty) {
      for (const auto& factory : family) {
        ScenarioSpec spec;
        spec.config = Config{.n = n, .m = m, .u = m};
        spec.sender = 0;
        spec.sender_value = Value::of(6);
        spec.faulty = faulty;
        auto adversary = factory.make(spec);
        const auto result =
            run_crusader(n, m, 0, Value::of(6), faulty, adversary.get());
        EXPECT_TRUE(crusader_agreement_holds(
            Value::of(6), spec.sender_faulty(), spec.fault_free_receivers(),
            result.decisions))
            << "n=" << n << " m=" << m << " " << spec.to_string() << " "
            << factory.name;
      }
    });
  }
}

TEST(Crusader, CheaperThanFullByzantineAgreement) {
  // Crusader needs 2 rounds regardless of m; OM/BYZ need m+1. With m = 3
  // the message volume gap is large.
  const auto crusader_result = run_crusader(10, 3, 0, Value::of(1), {},
                                            nullptr);
  EXPECT_EQ(crusader_result.rounds, 2);
  EXPECT_EQ(crusader_result.messages_sent, 9u + 9u * 8u);
}

TEST(Crusader, DetectVerdictIsDefaultValue) {
  // A silent faulty sender yields V_d everywhere: unanimous detection.
  auto adversary = faults::silent();
  const auto result = run_crusader(5, 1, 0, Value::of(4), {0},
                                   adversary.get());
  for (NodeId i = 1; i < 5; ++i) {
    EXPECT_EQ(result.decisions.at(i), Value::def());
  }
}

}  // namespace
}  // namespace da::protocols::crusader
