#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/topology.hpp"

namespace da::graph {
namespace {

TEST(Connectivity, CompleteGraph) {
  EXPECT_EQ(vertex_connectivity(complete(4)), 3);
  EXPECT_EQ(vertex_connectivity(complete(7)), 6);
}

TEST(Connectivity, Ring) {
  EXPECT_EQ(vertex_connectivity(ring(5)), 2);
  EXPECT_EQ(vertex_connectivity(ring(9)), 2);
}

TEST(Connectivity, Hypercube) {
  EXPECT_EQ(vertex_connectivity(hypercube(2)), 2);
  EXPECT_EQ(vertex_connectivity(hypercube(3)), 3);
  EXPECT_EQ(vertex_connectivity(hypercube(4)), 4);
}

TEST(Connectivity, Circulant) {
  EXPECT_EQ(vertex_connectivity(circulant(9, 2)), 4);
  EXPECT_EQ(vertex_connectivity(circulant(11, 3)), 6);
}

TEST(Connectivity, SeparatorGraphHasExactCut) {
  for (int cut = 1; cut <= 4; ++cut) {
    EXPECT_EQ(vertex_connectivity(separator_graph(3, cut, 3)), cut)
        << "cut=" << cut;
  }
}

TEST(Connectivity, DisconnectedIsZero) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(vertex_connectivity(g), 0);
}

TEST(Connectivity, PathGraphIsOne) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_EQ(vertex_connectivity(g), 1);
}

TEST(DisjointPaths, CountMatchesMenger) {
  const Graph g = separator_graph(3, 2, 3);
  // Across the separator: exactly 2 disjoint paths.
  EXPECT_EQ(max_disjoint_paths(g, 0, 7), 2);
  // Within a clique: short-circuit plus detours.
  EXPECT_GE(max_disjoint_paths(g, 0, 1), 2);
}

TEST(DisjointPaths, AdjacentPairCountsDirectEdge) {
  const Graph g = complete(5);
  EXPECT_EQ(max_disjoint_paths(g, 0, 1), 4);  // direct + 3 two-hop
}

TEST(DisjointPaths, ExtractedPathsAreValidAndDisjoint) {
  const Graph g = circulant(9, 2);
  const auto paths = disjoint_paths(g, 0, 4, 4);
  ASSERT_EQ(paths.size(), 4u);
  std::set<NodeId> interior;
  for (const auto& path : paths) {
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), 4);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]))
          << path[i] << "-" << path[i + 1];
    }
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      // Internal vertex disjointness.
      EXPECT_TRUE(interior.insert(path[i]).second)
          << "shared interior node " << path[i];
    }
  }
}

TEST(DisjointPaths, RequestingMoreThanExistReturnsMax) {
  const Graph g = ring(6);
  const auto paths = disjoint_paths(g, 0, 3, 10);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(MinVertexCut, SeparatorGraph) {
  const Graph g = separator_graph(3, 2, 3);
  const auto cut = min_vertex_cut(g, 0, 7);
  EXPECT_EQ(cut.size(), 2u);
  EXPECT_EQ((std::set<NodeId>(cut.begin(), cut.end())),
            (std::set<NodeId>{3, 4}));
}

TEST(MinVertexCut, MatchesMaxFlowDuality) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Graph g = random_at_least_k_connected(10, 3, 0.15, seed);
    for (NodeId t = 5; t < 8; ++t) {
      if (g.has_edge(0, t)) continue;
      EXPECT_EQ(static_cast<int>(min_vertex_cut(g, 0, t).size()),
                max_disjoint_paths(g, 0, t))
          << "seed=" << seed << " t=" << t;
    }
  }
}

TEST(Connectivity, RandomKConnectedMeetsFloor) {
  for (std::uint64_t seed : {10ULL, 20ULL, 30ULL}) {
    const Graph g = random_at_least_k_connected(11, 4, 0.1, seed);
    EXPECT_GE(vertex_connectivity(g), 4) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace da::graph
