#include "faults/behavior_search.hpp"

#include <gtest/gtest.h>

namespace da::faults {
namespace {

TEST(BehaviorSearch, SpaceAccounting) {
  // n=4, 1/1: f=1 subsets: sender (3 slots) + 3 receivers (2 slots each).
  const Config config{.n = 4, .m = 1, .u = 1};
  EXPECT_EQ(behavior_search_space(config),
            static_cast<std::uint64_t>(4 * 4 * 4 + 3 * (4 * 4)));
}

TEST(BehaviorSearch, LamportMinimalIsBulletproof) {
  // 1/1-degradable (= plain Byzantine agreement) with 4 nodes: *no*
  // behaviour of any single traitor breaks D.1/D.2.
  const Config config{.n = 4, .m = 1, .u = 1};
  const auto violation = exhaustive_behavior_search(config);
  EXPECT_FALSE(violation.has_value())
      << violation->adversary << " broke " << violation->spec.to_string();
}

TEST(BehaviorSearch, PaperMinimalFiveNodeIsBulletproof) {
  // 1/2-degradable with the tight budget of 5 nodes (Theorem 1 at the
  // Theorem 2 boundary): adversary-complete sweep over all behaviours of
  // up to u = 2 colluding traitors finds nothing.
  const Config config{.n = 5, .m = 1, .u = 2};
  const auto violation = exhaustive_behavior_search(config);
  EXPECT_FALSE(violation.has_value())
      << violation->adversary << " broke " << violation->spec.to_string();
}

TEST(BehaviorSearch, ZeroMEchoIsBulletproof) {
  const Config config{.n = 4, .m = 0, .u = 3};
  const auto violation = exhaustive_behavior_search(config);
  EXPECT_FALSE(violation.has_value());
}

TEST(BehaviorSearch, OneNodeShortBreaks) {
  // The Figure 2 configuration: 1/2-degradable on 4 nodes. The sweep must
  // find a violating behaviour (it rediscovers the proof's scenario (c)
  // or an equivalent one).
  const Config config{.n = 4, .m = 1, .u = 2};
  const auto violation = exhaustive_behavior_search(config);
  ASSERT_TRUE(violation.has_value());
  EXPECT_GT(violation->spec.f(), config.m);  // breakage is in degraded range
  EXPECT_LE(violation->spec.f(), config.u);
}

TEST(BehaviorSearch, ThreeNodeByzantineImpossible) {
  // 1/1 with 3 nodes: the classical 3-node impossibility, rediscovered.
  const Config config{.n = 3, .m = 1, .u = 1};
  const auto violation = exhaustive_behavior_search(config);
  ASSERT_TRUE(violation.has_value());
}

TEST(BehaviorSearch, RespectsMaxF) {
  const Config config{.n = 4, .m = 1, .u = 2};
  // Restricted to f <= 1 the 4-node system is fine (that is OM(1)).
  EXPECT_FALSE(exhaustive_behavior_search(config, 1).has_value());
  // At f = 2 it breaks.
  EXPECT_TRUE(exhaustive_behavior_search(config, 2).has_value());
}

TEST(BehaviorSearch, DepthThreeRejected) {
  const Config config{.n = 7, .m = 2, .u = 2};
  EXPECT_THROW((void)exhaustive_behavior_search(config), std::logic_error);
}

}  // namespace
}  // namespace da::faults
