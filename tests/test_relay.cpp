#include "relay/disjoint_relay.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/topology.hpp"
#include "relay/cutset_adversary.hpp"
#include "util/rng.hpp"

namespace da::relay {
namespace {

const HopCorruption kForgeBeta = [](NodeId, Value) { return Value::of(202); };

TEST(Relay, CleanChannelDeliversExactly) {
  const auto g = graph::circulant(9, 2);  // connectivity 4 = m+u+1 for 1/2
  const auto result = degradable_channel_send(g, 0, 4, Value::of(7), 1, 2, {},
                                              nullptr);
  EXPECT_EQ(result.delivered, Value::of(7));
  EXPECT_EQ(result.paths, 4);
  EXPECT_EQ(result.corrupted_paths, 0);
}

TEST(Relay, ToleratesUpToMCorruptions) {
  // m=1, u=2, 4 disjoint paths: one faulty interior node corrupts at most
  // one copy -> the true value still reaches VOTE(u+1=3, 4).
  const auto g = graph::circulant(9, 2);
  const auto paths = graph::disjoint_paths(g, 0, 4, 4);
  for (const auto& path : paths) {
    if (path.size() < 3) continue;
    const NodeId faulty = path[1];
    const auto result = degradable_channel_send(g, 0, 4, Value::of(7), 1, 2,
                                                {faulty}, kForgeBeta);
    EXPECT_EQ(result.delivered, Value::of(7)) << "faulty " << faulty;
    EXPECT_LE(result.corrupted_paths, 1);
  }
}

TEST(Relay, DegradedRangeNeverWrong) {
  // m < f <= u: delivery is the true value or V_d, never the forgery.
  const auto g = graph::circulant(9, 2);
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<NodeId> faulty;
    for (const int x : rng.subset(7, 2)) {
      faulty.push_back(x + 1);  // interior nodes only (not 0, may hit 4...)
    }
    // Node 4 is the receiver; endpoints must be fault-free.
    if (std::find(faulty.begin(), faulty.end(), 4) != faulty.end()) continue;
    const auto result = degradable_channel_send(g, 0, 4, Value::of(7), 1, 2,
                                                faulty, kForgeBeta);
    EXPECT_TRUE(result.delivered == Value::of(7) ||
                result.delivered.is_default())
        << "faulty {" << faulty[0] << "," << faulty[1] << "} got "
        << result.delivered.to_string();
  }
}

TEST(Relay, BeyondUCanBeDefeated) {
  // u+1 = 3 colluding interior nodes can deliver the forgery: the bound is
  // tight.
  const auto g = graph::circulant(9, 2);
  const auto paths = graph::disjoint_paths(g, 0, 4, 4);
  std::vector<NodeId> faulty;
  for (const auto& path : paths) {
    if (path.size() >= 3) faulty.push_back(path[1]);
    if (faulty.size() == 3) break;
  }
  ASSERT_EQ(faulty.size(), 3u);
  const auto result = degradable_channel_send(g, 0, 4, Value::of(7), 1, 2,
                                              faulty, kForgeBeta);
  EXPECT_EQ(result.delivered, Value::of(202));
}

TEST(Relay, InsufficientConnectivityRejected) {
  const auto g = graph::ring(8);  // connectivity 2 < m+u+1 = 4
  EXPECT_THROW((void)degradable_channel_send(g, 0, 4, Value::of(7), 1, 2, {},
                                             nullptr),
               std::logic_error);
}

TEST(Relay, SendAlongExplicitPaths) {
  const std::vector<std::vector<NodeId>> paths{
      {0, 1, 9}, {0, 2, 9}, {0, 3, 9}, {0, 9}};
  const auto result =
      send_along_paths(paths, Value::of(5), 2, {2}, kForgeBeta);
  EXPECT_EQ(result.corrupted_paths, 1);
  EXPECT_EQ(result.delivered, Value::of(5));  // 3 clean copies >= u+1 = 3
}

TEST(Relay, CorruptionHookSeesTransitValue) {
  const std::vector<std::vector<NodeId>> paths{{0, 1, 2, 9}};
  std::vector<std::pair<NodeId, Value>> observed;
  const HopCorruption recorder = [&observed](NodeId hop, Value v) {
    observed.emplace_back(hop, v);
    return Value::of(v.raw() + 1);
  };
  const auto result = send_along_paths(paths, Value::of(10), 0, {1, 2},
                                       recorder);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], (std::pair<NodeId, Value>{1, Value::of(10)}));
  EXPECT_EQ(observed[1], (std::pair<NodeId, Value>{2, Value::of(11)}));
  EXPECT_EQ(result.copies[0], Value::of(12));
}

TEST(CutsetLowerBound, NoThresholdWorksAtConnectivityMPlusU) {
  for (const auto& [m, u] : std::vector<std::pair<int, int>>{
           {1, 1}, {1, 2}, {2, 2}, {2, 3}, {1, 4}, {3, 4}}) {
    EXPECT_FALSE(any_threshold_works(m, u, m + u)) << "m=" << m << " u=" << u;
    const auto probes = probe_thresholds(m, u);
    for (const auto& probe : probes) {
      EXPECT_FALSE(probe.s1_ok && probe.s2_ok) << "theta=" << probe.theta;
    }
  }
}

TEST(CutsetLowerBound, ThresholdUPlusOneWorksAtConnectivityMPlusUPlusOne) {
  for (const auto& [m, u] : std::vector<std::pair<int, int>>{
           {1, 1}, {1, 2}, {2, 2}, {2, 3}, {1, 4}, {3, 4}}) {
    EXPECT_TRUE(any_threshold_works(m, u, m + u + 1))
        << "m=" << m << " u=" << u;
  }
}

TEST(CutsetLowerBound, SeparatorGraphRealizesTheScenario) {
  // Geometry check: the separator graph's cut is exactly m+u and every
  // s-t path crosses it.
  const int m = 1;
  const int u = 2;
  const auto g = graph::separator_graph(2, m + u, 2);
  EXPECT_EQ(graph::vertex_connectivity(g), m + u);
  const auto cut = graph::min_vertex_cut(g, 0, g.n() - 1);
  EXPECT_EQ(static_cast<int>(cut.size()), m + u);
}

}  // namespace
}  // namespace da::relay
