#include "protocols/common/vote.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace da::protocols {
namespace {

std::vector<Value> vals(std::initializer_list<std::int64_t> raws) {
  std::vector<Value> out;
  for (auto r : raws) out.push_back(Value::of(r));
  return out;
}

// The paper's three worked examples for VOTE(2,4).
TEST(Vote, PaperExampleWinner) {
  EXPECT_EQ(vote(vals({1, 2, 2, 3}), 2), Value::of(2));
}

TEST(Vote, PaperExampleNoThreshold) {
  EXPECT_EQ(vote(vals({1, 2, 0, 3}), 2), Value::def());
}

TEST(Vote, PaperExampleTie) {
  EXPECT_EQ(vote(vals({1, 2, 2, 1}), 2), Value::def());
}

TEST(Vote, UnanimousWins) {
  EXPECT_EQ(vote(vals({5, 5, 5, 5}), 4), Value::of(5));
}

TEST(Vote, ThresholdOneWithSingleValue) {
  EXPECT_EQ(vote(vals({9}), 1), Value::of(9));
}

TEST(Vote, ThresholdOneWithDistinctValuesIsTie) {
  EXPECT_EQ(vote(vals({1, 2}), 1), Value::def());
}

TEST(Vote, DefaultValueCanWin) {
  const std::vector<Value> values{Value::def(), Value::def(), Value::of(3)};
  EXPECT_EQ(vote(values, 2), Value::def());
}

TEST(Vote, DefaultAndOrdinaryTie) {
  const std::vector<Value> values{Value::def(), Value::def(), Value::of(3),
                                  Value::of(3)};
  EXPECT_EQ(vote(values, 2), Value::def());
}

TEST(Vote, ThreeWayTie) {
  EXPECT_EQ(vote(vals({1, 1, 2, 2, 3, 3}), 2), Value::def());
}

TEST(Vote, ExactThresholdBoundary) {
  EXPECT_EQ(vote(vals({4, 4, 4, 1, 2}), 3), Value::of(4));
  EXPECT_EQ(vote(vals({4, 4, 1, 2, 3}), 3), Value::def());
}

TEST(Vote, PermutationInvariance) {
  Rng rng(99);
  std::vector<Value> values = vals({7, 7, 7, 1, 2, 2, 9, 7});
  const Value expected = vote(values, 4);
  for (int i = 0; i < 50; ++i) {
    rng.shuffle(values);
    EXPECT_EQ(vote(values, 4), expected);
  }
}

TEST(Vote, RaisingThresholdNeverInventsAWinner) {
  // If a value wins at threshold a it has >= a copies; any winner at a
  // higher threshold must be the same value.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Value> values;
    const int len = 1 + static_cast<int>(rng.below(9));
    for (int i = 0; i < len; ++i) {
      values.push_back(Value::of(rng.range(0, 3)));
    }
    for (std::size_t alpha = 1; alpha + 1 <= values.size(); ++alpha) {
      const Value lower = vote(values, alpha);
      const Value higher = vote(values, alpha + 1);
      if (!higher.is_default()) {
        // A high-threshold winner also reaches the lower threshold, so the
        // lower vote is either the same value or V_d (tie with another
        // value that also reaches the lower threshold).
        EXPECT_TRUE(lower == higher || lower.is_default())
            << "alpha=" << alpha << " lower=" << lower.to_string()
            << " higher=" << higher.to_string();
      }
    }
  }
}

TEST(Vote, MajorityEqualsVoteAtHalfPlusOne) {
  Rng rng(21);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Value> values;
    const int len = 1 + static_cast<int>(rng.below(10));
    for (int i = 0; i < len; ++i) {
      values.push_back(rng.chance(0.15) ? Value::def()
                                        : Value::of(rng.range(0, 2)));
    }
    EXPECT_EQ(majority(values), vote(values, values.size() / 2 + 1));
  }
}

TEST(Vote, MajorityEmptyIsDefault) {
  EXPECT_EQ(majority(std::vector<Value>{}), Value::def());
}

TEST(Vote, MajorityNoStrictMajorityIsDefault) {
  EXPECT_EQ(majority(vals({1, 1, 2, 2})), Value::def());
  EXPECT_EQ(majority(vals({1, 1, 2, 2, 2})), Value::of(2));
}

TEST(Vote, KofNVoterMatchesPaperDefinition) {
  // (m+u)-out-of-(2m+u): m=1, u=2 -> 3-out-of-4.
  EXPECT_EQ(k_of_n_vote(vals({8, 8, 8, 5}), 3), Value::of(8));
  EXPECT_EQ(k_of_n_vote(vals({8, 8, 5, 5}), 3), Value::def());
}

// Parameterized sweep: with a clean super-threshold bloc, the bloc value
// always wins regardless of how adversarial the remainder is.
class VoteBlocSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(VoteBlocSweep, CleanBlocAlwaysWins) {
  const auto [total, bloc] = GetParam();
  ASSERT_GT(bloc, total - bloc);  // bloc strictly larger than remainder
  Rng rng(static_cast<std::uint64_t>(total * 100 + bloc));
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Value> values(static_cast<std::size_t>(bloc), Value::of(77));
    for (int i = bloc; i < total; ++i) {
      values.push_back(rng.chance(0.2) ? Value::def()
                                       : Value::of(rng.range(0, 200)));
    }
    rng.shuffle(values);
    EXPECT_EQ(vote(values, static_cast<std::size_t>(bloc)), Value::of(77));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VoteBlocSweep,
    ::testing::Values(std::tuple{3, 2}, std::tuple{4, 3}, std::tuple{5, 3},
                      std::tuple{7, 4}, std::tuple{9, 5}, std::tuple{10, 6},
                      std::tuple{15, 8}, std::tuple{20, 11}));

}  // namespace
}  // namespace da::protocols
