#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "faults/adversaries.hpp"
#include "obs/metrics.hpp"
#include "sim/network.hpp"

namespace da::sim {
namespace {

/// Minimal two-round protocol for runner mechanics: node 0 broadcasts its
/// value in round 0; in round 1 every node echoes what it got back to 0;
/// everyone decides the first value it saw.
class PingPong final : public Process {
 public:
  PingPong(NodeId self, int n, Value input)
      : self_(self), n_(n), input_(input) {}

  NodeId id() const override { return self_; }
  int total_rounds() const override { return 2; }

  std::vector<Message> start() override {
    std::vector<Message> out;
    if (self_ != 0) return out;
    for (NodeId to = 1; to < n_; ++to) {
      out.push_back(Message{.from = 0, .to = to, .round = 0, .value = input_});
    }
    return out;
  }

  std::vector<Message> on_round(int round,
                                const std::vector<Message>& inbox) override {
    if (!inbox.empty() && heard_.is_default()) heard_ = inbox.front().value;
    std::vector<Message> out;
    if (round == 0 && self_ != 0 && !inbox.empty()) {
      out.push_back(Message{
          .from = self_, .to = 0, .round = 1, .value = inbox.front().value});
    }
    return out;
  }

  Value decide() const override { return self_ == 0 ? input_ : heard_; }

  int echoes_seen = 0;

 private:
  NodeId self_;
  int n_;
  Value input_;
  Value heard_{};
};

std::vector<std::unique_ptr<Process>> make_pingpong(int n, Value v) {
  std::vector<std::unique_ptr<Process>> procs;
  for (NodeId i = 0; i < n; ++i) {
    procs.push_back(std::make_unique<PingPong>(i, n, v));
  }
  return procs;
}

TEST(SyncRunner, DeliversAndDecides) {
  SyncRunner runner(make_pingpong(4, Value::of(9)), RunOptions{});
  const RunResult result = runner.run();
  EXPECT_EQ(result.rounds, 2);
  // 3 broadcasts + 3 echoes.
  EXPECT_EQ(result.messages_sent, 6u);
  EXPECT_EQ(result.messages_delivered, 6u);
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(result.decisions.at(i), Value::of(9));
  }
}

TEST(SyncRunner, AdversaryCorruptsFaultySender) {
  RunOptions options;
  options.faulty = {0};
  auto adversary = faults::constant_liar(Value::of(66));
  options.adversary = adversary.get();
  SyncRunner runner(make_pingpong(3, Value::of(9)), options);
  const RunResult result = runner.run();
  EXPECT_EQ(result.decisions.at(1), Value::of(66));
  EXPECT_EQ(result.decisions.at(2), Value::of(66));
}

TEST(SyncRunner, SilentFaultyNodeMeansNoDelivery) {
  RunOptions options;
  options.faulty = {0};
  auto adversary = faults::silent();
  options.adversary = adversary.get();
  SyncRunner runner(make_pingpong(3, Value::of(9)), options);
  const RunResult result = runner.run();
  EXPECT_EQ(result.messages_delivered, 0u);
  EXPECT_EQ(result.decisions.at(1), Value::def());
}

TEST(SyncRunner, AdversaryCannotImpersonate) {
  // An adversary that rewrites from/to/round gets normalized back.
  class Impersonator final : public Adversary {
   public:
    std::optional<Message> corrupt(const Message& msg) override {
      Message out = msg;
      out.from = 99;
      out.round = 7;
      return out;
    }
  };
  RunOptions options;
  options.faulty = {0};
  Impersonator adversary;
  options.adversary = &adversary;
  options.trace = nullptr;
  Trace trace;
  options.trace = &trace;
  SyncRunner runner(make_pingpong(3, Value::of(4)), options);
  (void)runner.run();
  for (const Message& m : trace.received(1)) {
    EXPECT_EQ(m.from, 0);
    EXPECT_EQ(m.round, 0);
  }
}

/// Behaves honestly except for fabricating, each round, one message aimed
/// at a node that is not part of the instance.
class ForeignTargetFabricator final : public Adversary {
 public:
  explicit ForeignTargetFabricator(NodeId target) : target_(target) {}
  std::optional<Message> corrupt(const Message& original) override {
    return original;
  }
  std::vector<Message> fabricate(NodeId node, int round) override {
    return {Message{
        .from = node, .to = target_, .round = round, .value = Value::of(99)}};
  }

 private:
  NodeId target_;
};

TEST(SyncRunner, FabricationToUnknownNodeIsDroppedAndCounted) {
  // Regression: fabricating at node n+3 used to grow the runner's
  // node-keyed map with a phantom inbox; with indexed buffers the message
  // must be dropped (and counted) instead of writing out of bounds.
  const int n = 4;
  RunOptions options;
  options.faulty = {1};
  ForeignTargetFabricator adversary(/*target=*/n + 3);
  options.adversary = &adversary;
  Trace trace;
  options.trace = &trace;
#ifndef DA_METRICS_DISABLED
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t before =
      registry.counter_value("sim.fabrications_dropped");
#endif
  SyncRunner runner(make_pingpong(n, Value::of(9)), options);
  const RunResult result = runner.run();
  // Honest traffic (3 broadcasts + 3 echoes) is unaffected; the two
  // fabrications (rounds 0 and 1) count as sent but never as delivered,
  // and never reach the trace.
  EXPECT_EQ(result.messages_sent, 8u);
  EXPECT_EQ(result.messages_delivered, 6u);
  EXPECT_EQ(trace.total_messages(), 6u);
  for (NodeId i = 0; i < n; ++i) {
    EXPECT_EQ(result.decisions.at(i), Value::of(9));
  }
#ifndef DA_METRICS_DISABLED
  EXPECT_EQ(registry.counter_value("sim.fabrications_dropped"), before + 2);
#endif
}

TEST(SyncRunner, TopologyNetworkBlocksNonNeighbors) {
  graph::Graph g(3);
  g.add_edge(0, 1);  // 0-2 missing
  TopologyNetwork network(g);
  RunOptions options;
  options.network = &network;
  SyncRunner runner(make_pingpong(3, Value::of(5)), options);
  const RunResult result = runner.run();
  EXPECT_EQ(result.decisions.at(1), Value::of(5));
  EXPECT_EQ(result.decisions.at(2), Value::def());
}

TEST(SyncRunner, TraceRecordsDeliveredMessages) {
  Trace trace;
  RunOptions options;
  options.trace = &trace;
  SyncRunner runner(make_pingpong(4, Value::of(2)), options);
  const RunResult result = runner.run();
  EXPECT_EQ(trace.total_messages(), result.messages_delivered);
  EXPECT_EQ(trace.received(0).size(), 3u);  // the echoes
  EXPECT_EQ(trace.received(1).size(), 1u);
}

TEST(SyncRunner, MismatchedRoundCountsRejected) {
  auto procs = make_pingpong(3, Value::of(1));
  class OneRound final : public Process {
   public:
    NodeId id() const override { return 2; }
    int total_rounds() const override { return 1; }
    std::vector<Message> start() override { return {}; }
    std::vector<Message> on_round(int, const std::vector<Message>&) override {
      return {};
    }
    Value decide() const override { return Value::def(); }
  };
  procs[2] = std::make_unique<OneRound>();
  SyncRunner runner(std::move(procs), RunOptions{});
  EXPECT_THROW((void)runner.run(), std::logic_error);
}

TEST(SyncRunner, FaultyIdMustBeKnown) {
  RunOptions options;
  options.faulty = {9};
  auto adversary = faults::silent();
  options.adversary = adversary.get();
  EXPECT_THROW(SyncRunner(make_pingpong(3, Value::of(1)), options),
               std::logic_error);
}

TEST(SyncRunner, FaultyWithoutAdversaryRejected) {
  RunOptions options;
  options.faulty = {0};
  EXPECT_THROW(SyncRunner(make_pingpong(3, Value::of(1)), options),
               std::logic_error);
}

TEST(FalseTimeoutNetwork, InactiveDeliversEverything) {
  FalseTimeoutNetwork network(0.9, 1);
  Message msg{.from = 0, .to = 1, .round = 0};
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(network.deliver(msg));
}

TEST(FalseTimeoutNetwork, ActiveDropsDeterministically) {
  FalseTimeoutNetwork a(0.5, 77);
  FalseTimeoutNetwork b(0.5, 77);
  a.set_active(true);
  b.set_active(true);
  int drops = 0;
  for (int to = 0; to < 200; ++to) {
    Message msg{.from = 0, .to = to, .round = 1};
    const bool da_ = a.deliver(msg);
    EXPECT_EQ(da_, b.deliver(msg));  // pure function of identity
    drops += da_ ? 0 : 1;
  }
  EXPECT_GT(drops, 50);
  EXPECT_LT(drops, 150);
}

TEST(Trace, IndistinguishabilityByTranscript) {
  Trace t1;
  Trace t2;
  const Message m{.from = 0, .to = 1, .round = 0, .value = Value::of(3)};
  t1.record(m);
  t2.record(m);
  EXPECT_TRUE(t1.indistinguishable_for(1, t2));
  Message other = m;
  other.value = Value::of(4);
  t2.record(other);
  EXPECT_FALSE(t1.indistinguishable_for(1, t2));
  EXPECT_TRUE(t1.indistinguishable_for(2, t2));  // no messages either way
}

}  // namespace
}  // namespace da::sim
