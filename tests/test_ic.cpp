#include "protocols/ic/interactive_consistency.hpp"

#include <gtest/gtest.h>

#include "faults/adversaries.hpp"
#include "protocols/lamport/om.hpp"

namespace da::protocols::ic {
namespace {

std::vector<Value> inputs_for(int n) {
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(Value::of(100 + i));
  return inputs;
}

TEST(InteractiveConsistency, NoFaultsVectorsAreInputs) {
  const int n = 5;
  const auto inputs = inputs_for(n);
  const IcResult result = run_interactive_consistency(
      n, 1, inputs, {}, [](NodeId) { return faults::honest(); });
  EXPECT_TRUE(interactive_consistency_holds(result, inputs, {}));
  for (NodeId p = 0; p < n; ++p) {
    EXPECT_EQ(result.vectors.at(p), inputs);
  }
}

TEST(InteractiveConsistency, HoldsWithinClassicalBound) {
  const int n = 7;
  const auto inputs = inputs_for(n);
  const std::vector<NodeId> faulty{2, 5};
  const IcResult result = run_interactive_consistency(
      n, 2, inputs, faulty, [](NodeId sender) {
        return faults::equivocator(Value::of(1), Value::of(2 + sender));
      });
  EXPECT_TRUE(interactive_consistency_holds(result, inputs, faulty));
  EXPECT_EQ(largest_identical_vector_group(result, faulty, n), 5);
}

TEST(InteractiveConsistency, FaultyCoordinatesStillAgree) {
  // IC1: even the coordinates of faulty nodes are agreed upon.
  const int n = 4;
  const auto inputs = inputs_for(n);
  const std::vector<NodeId> faulty{3};
  const IcResult result = run_interactive_consistency(
      n, 1, inputs, faulty,
      [](NodeId) { return faults::equivocator(Value::of(7), Value::of(8)); });
  const auto& ref = result.vectors.at(0);
  EXPECT_EQ(result.vectors.at(1), ref);
  EXPECT_EQ(result.vectors.at(2), ref);
}

TEST(InteractiveConsistency, CollapsesBeyondOneThird) {
  // Bhandari's observation, executed: with f > N/3 the vectors of
  // fault-free nodes can disagree arbitrarily — no graceful degradation.
  const int n = 4;
  const auto inputs = inputs_for(n);
  const std::vector<NodeId> faulty{2, 3};
  const IcResult result = run_interactive_consistency(
      n, 1, inputs, faulty, [](NodeId sender) {
        return faults::pivot_equivocator(Value::of(40 + sender),
                                         Value::of(50 + sender), 1);
      });
  EXPECT_FALSE(interactive_consistency_holds(result, inputs, faulty));
  EXPECT_LT(largest_identical_vector_group(result, faulty, n), 2);
}

TEST(InteractiveConsistency, MessageCountIsNTimesOm) {
  const int n = 5;
  const IcResult result = run_interactive_consistency(
      n, 1, inputs_for(n), {}, [](NodeId) { return faults::honest(); });
  EXPECT_EQ(result.messages_sent,
            static_cast<std::size_t>(n) * lamport::om_message_count(n, 1));
}

TEST(InteractiveConsistency, InputSizeMismatchRejected) {
  EXPECT_THROW((void)run_interactive_consistency(
                   4, 1, inputs_for(3), {},
                   [](NodeId) { return faults::honest(); }),
               std::logic_error);
}

}  // namespace
}  // namespace da::protocols::ic
