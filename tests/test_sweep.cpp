// The parallel scenario-sweep engine (src/sweep/): thread pool, shard
// plans, first-hit-by-ordinal semantics, early-exit cancellation, and the
// cross-thread-count determinism contract the faults/ searches rely on —
// same seed + any --jobs value => identical violation verdict and
// identical canonical execution count.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "faults/behavior_search.hpp"
#include "faults/search.hpp"
#include "obs/metrics.hpp"
#include "sweep/shard.hpp"
#include "sweep/sweep.hpp"
#include "sweep/thread_pool.hpp"

namespace da::sweep {
namespace {

// ---------------------------------------------------------------- pool --

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WorkerSubmittedTasksAlsoRun) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &count] {
      // Fan out from inside a worker: exercises the local-deque path and
      // stealing by the other workers.
      for (int j = 0; j < 5; ++j) {
        pool.submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, CurrentWorkerIsSetInsideAndNotOutside) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.current_worker(), -1);
  std::atomic<bool> ok{false};
  pool.submit([&] {
    const int w = pool.current_worker();
    ok = (w == 0 || w == 1);
  });
  pool.wait_idle();
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

// ---------------------------------------------------------------- plan --

TEST(ShardPlan, EvenPartitionCoversSpaceExactly) {
  const ShardPlan plan = ShardPlan::even(103, 10);
  EXPECT_EQ(plan.total(), 103u);
  EXPECT_EQ(plan.shard_count(), 11u);
  std::uint64_t expected_begin = 0;
  for (const ShardRange& r : plan.shards()) {
    EXPECT_EQ(r.begin, expected_begin);
    EXPECT_LE(r.size(), 10u);
    expected_begin = r.end;
  }
  EXPECT_EQ(expected_begin, 103u);
}

TEST(ShardPlan, Pow4SegmentsSplitAtHighOrderDigitBoundaries) {
  ShardPlan plan;
  // 4^5 = 1024 ordinals, blocks of at most 4^2: expect 4^3 = 64 blocks of
  // 16 — every block holds the behaviours sharing 3 leading 4-ary digits.
  plan.append_pow4(5, 16);
  EXPECT_EQ(plan.total(), 1024u);
  EXPECT_EQ(plan.shard_count(), 64u);
  for (std::size_t i = 0; i < plan.shard_count(); ++i) {
    EXPECT_EQ(plan.shard(i).size(), 16u);
    EXPECT_EQ(plan.shard(i).begin % 16, 0u);  // digit-aligned
  }
}

TEST(ShardPlan, Pow4BlockIsLargestPowerOfFourBelowTarget) {
  ShardPlan plan;
  plan.append_pow4(4, 100);  // 4^3 = 64 <= 100 < 256 = 4^4
  EXPECT_EQ(plan.shard_count(), 4u);
  EXPECT_EQ(plan.shard(0).size(), 64u);
}

TEST(ShardPlan, MixedSegmentsConcatenate) {
  ShardPlan plan;
  const std::uint64_t base0 = plan.append_pow4(2);   // 16 ordinals
  const std::uint64_t base1 = plan.append_even(5, 2);
  EXPECT_EQ(base0, 0u);
  EXPECT_EQ(base1, 16u);
  EXPECT_EQ(plan.total(), 21u);
}

TEST(ShardPlan, SkipLeavesGapsNoShardCovers) {
  // A quotiented enumeration drops whole segments: skip() advances the
  // ordinal space without creating shards, so gap ordinals never run.
  ShardPlan plan;
  const std::uint64_t gap0 = plan.skip(16);          // [0, 16) skipped
  const std::uint64_t base0 = plan.append_pow4(2);   // [16, 32)
  const std::uint64_t gap1 = plan.skip(48);          // [32, 80) skipped
  const std::uint64_t base1 = plan.append_even(4, 2);  // [80, 84)
  EXPECT_EQ(gap0, 0u);
  EXPECT_EQ(base0, 16u);
  EXPECT_EQ(gap1, 32u);
  EXPECT_EQ(base1, 80u);
  EXPECT_EQ(plan.total(), 84u);
  for (const ShardRange& r : plan.shards()) {
    EXPECT_TRUE((r.begin >= 16 && r.end <= 32) || r.begin >= 80)
        << "shard [" << r.begin << ", " << r.end << ") inside a gap";
  }
  // The sweep engine never visits gap ordinals.
  std::vector<std::atomic<int>> seen(84);
  SweepOptions options;
  options.jobs = 3;
  const auto result = run_sweep(
      plan, options, [&](std::uint64_t o, std::size_t, Rng&) -> Visit {
        seen[o].fetch_add(1);
        return {};
      });
  EXPECT_FALSE(result.first_hit.has_value());
  EXPECT_EQ(result.stats.executions, 20u);
  for (std::uint64_t o = 0; o < 84; ++o) {
    const bool planned = (o >= 16 && o < 32) || o >= 80;
    EXPECT_EQ(seen[o].load(), planned ? 1 : 0) << o;
  }
}

// -------------------------------------------------------------- engine --

TEST(RunSweep, VisitsEveryOrdinalWhenNothingHits) {
  const ShardPlan plan = ShardPlan::even(257, 16);
  std::vector<std::atomic<int>> seen(257);
  SweepOptions options;
  options.jobs = 4;
  const auto result = run_sweep(
      plan, options, [&](std::uint64_t o, std::size_t, Rng&) -> Visit {
        seen[o].fetch_add(1);
        return {};
      });
  EXPECT_FALSE(result.first_hit.has_value());
  EXPECT_EQ(result.stats.executions, 257u);
  EXPECT_EQ(result.stats.performed, 257u);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(RunSweep, FirstHitIsSmallestOrdinalNotFastestWallClock) {
  // Hits at ordinals 400 (cheap shard, found quickly) and 37 (slow
  // shard). The sweep must settle on 37 regardless of timing.
  const ShardPlan plan = ShardPlan::even(512, 32);
  SweepOptions options;
  options.jobs = 4;
  const auto result = run_sweep(
      plan, options, [&](std::uint64_t o, std::size_t, Rng&) -> Visit {
        if (o == 37) {
          // Make the early shard slow so the later hit lands first in
          // wall-clock order on multi-core machines.
          for (volatile int spin = 0; spin < 200000; spin = spin + 1) {
          }
          return {.hit = true};
        }
        return {.hit = o == 400};
      });
  ASSERT_TRUE(result.first_hit.has_value());
  EXPECT_EQ(*result.first_hit, 37u);
  EXPECT_EQ(plan.shard(*result.first_hit_shard).begin, 32u);
}

TEST(RunSweep, CanonicalExecutionsCountSerialEarlyExitPrefix) {
  const ShardPlan plan = ShardPlan::even(1000, 10);
  for (int jobs : {1, 3, 8}) {
    SweepOptions options;
    options.jobs = jobs;
    const auto result = run_sweep(
        plan, options, [&](std::uint64_t o, std::size_t, Rng&) -> Visit {
          return {.hit = o == 321};
        });
    ASSERT_TRUE(result.first_hit.has_value()) << jobs;
    EXPECT_EQ(*result.first_hit, 321u) << jobs;
    // A serial early-exit scan executes ordinals 0..321 inclusive.
    EXPECT_EQ(result.stats.executions, 322u) << jobs;
    EXPECT_GE(result.stats.performed, result.stats.executions) << jobs;
  }
}

TEST(RunSweep, PerShardRngStreamsAreIdenticalAcrossJobCounts) {
  const ShardPlan plan = ShardPlan::even(64, 8);
  std::vector<std::uint64_t> draws_1(plan.shard_count());
  std::vector<std::uint64_t> draws_4(plan.shard_count());
  for (auto* draws : {&draws_1, &draws_4}) {
    SweepOptions options;
    options.jobs = draws == &draws_1 ? 1 : 4;
    options.seed = 99;
    (void)run_sweep(plan, options,
                    [&](std::uint64_t o, std::size_t shard, Rng& rng) -> Visit {
                      if (o == plan.shard(shard).begin) {
                        (*draws)[shard] = rng.next();
                      }
                      return {};
                    });
  }
  EXPECT_EQ(draws_1, draws_4);
}

TEST(RunSweep, PerShardStatsPartitionTheWork) {
  const ShardPlan plan = ShardPlan::even(100, 7);
  SweepOptions options;
  options.jobs = 2;
  const auto result = run_sweep(
      plan, options,
      [&](std::uint64_t, std::size_t, Rng&) -> Visit { return {}; });
  ASSERT_EQ(result.stats.per_shard.size(), plan.shard_count());
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    const ShardStats& stats = result.stats.per_shard[s];
    EXPECT_EQ(stats.begin, plan.shard(s).begin);
    EXPECT_EQ(stats.executions, plan.shard(s).size());
    EXPECT_GE(stats.worker, 0);
    EXPECT_LT(stats.worker, 2);
    sum += stats.executions;
  }
  EXPECT_EQ(sum, result.stats.performed);
}

TEST(SummarizeWorkers, RollsUpPerWorkerIncludingSkippedShards) {
  // Hand-built stats: worker 0 ran two shards, worker 1 one, and two
  // shards were cancelled before any worker picked them up (worker -1 —
  // they must land in their own bucket, not vanish or pollute a worker's).
  SweepStats stats;
  const auto shard = [](int worker, std::uint64_t executions,
                        double wall_ms) {
    ShardStats s;
    s.worker = worker;
    s.executions = executions;
    s.wall_ms = wall_ms;
    return s;
  };
  stats.per_shard = {shard(0, 10, 1.5), shard(1, 7, 2.0), shard(0, 3, 0.5),
                     shard(-1, 0, 0.0), shard(-1, 0, 0.0)};

  const auto summaries = summarize_workers(stats);
  ASSERT_EQ(summaries.size(), 3u);  // -1, 0, 1 in ascending worker order
  EXPECT_EQ(summaries[0].worker, -1);
  EXPECT_EQ(summaries[0].shards, 2u);
  EXPECT_EQ(summaries[0].executions, 0u);
  EXPECT_EQ(summaries[1].worker, 0);
  EXPECT_EQ(summaries[1].shards, 2u);
  EXPECT_EQ(summaries[1].executions, 13u);
  EXPECT_DOUBLE_EQ(summaries[1].busy_ms, 2.0);
  EXPECT_EQ(summaries[2].worker, 1);
  EXPECT_EQ(summaries[2].executions, 7u);
}

TEST(RunSweep, PopulatesMetricsRegistry) {
#ifdef DA_METRICS_DISABLED
  GTEST_SKIP() << "registry instruments compile to no-ops under "
                  "-DDA_METRICS=OFF";
#endif
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t sweeps_before = registry.counter_value("sweep.sweeps");
  const std::uint64_t execs_before =
      registry.counter_value("sweep.executions");
  const auto wall_before = registry.snapshot().histograms["sweep.wall_ms"];
  const auto busy_before =
      registry.snapshot().histograms["sweep.worker_busy_ms"];

  const ShardPlan plan = ShardPlan::even(64, 8);
  SweepOptions options;
  options.jobs = 2;
  const auto result = run_sweep(
      plan, options,
      [&](std::uint64_t, std::size_t, Rng&) -> Visit { return {}; });
  (void)result;

  EXPECT_EQ(registry.counter_value("sweep.sweeps"), sweeps_before + 1);
  EXPECT_EQ(registry.counter_value("sweep.executions"), execs_before + 64);
  auto snap = registry.snapshot();
  EXPECT_EQ(snap.histograms["sweep.wall_ms"].count, wall_before.count + 1);
  // One busy_ms sample per worker that ran shards (the -1 bucket is
  // excluded from the histogram).
  EXPECT_GT(snap.histograms["sweep.worker_busy_ms"].count, busy_before.count);
  EXPECT_LE(snap.histograms["sweep.worker_busy_ms"].count,
            busy_before.count + 2);
  EXPECT_EQ(snap.gauges["sweep.jobs"], 2.0);
}

// ------------------------------------------- ported faults/ searches ----

/// The determinism contract the satellites ask for: same seed, different
/// --jobs => identical violation verdict AND identical canonical
/// execution count.
TEST(SweepDeterminism, BehaviourSearchVerdictAndCountMatchAcrossJobs) {
  const Config broken{.n = 4, .m = 1, .u = 2};  // Figure 2: must violate
  const Config solid{.n = 4, .m = 1, .u = 1};   // Lamport minimal: must not

  std::optional<std::string> reference_hit;
  std::optional<std::uint64_t> reference_count;
  for (int jobs : {1, 2, 5}) {
    SweepOptions options;
    options.jobs = jobs;
    SweepStats stats;
    const auto violation =
        faults::exhaustive_behavior_search(broken, -1, options, &stats);
    ASSERT_TRUE(violation.has_value()) << jobs;
    const std::string hit =
        violation->spec.to_string() + " / " + violation->adversary;
    if (!reference_hit.has_value()) {
      reference_hit = hit;
      reference_count = stats.executions;
    }
    EXPECT_EQ(hit, *reference_hit) << jobs;
    EXPECT_EQ(stats.executions, *reference_count) << jobs;
    EXPECT_GE(stats.performed, stats.executions) << jobs;
  }

  for (int jobs : {1, 3}) {
    SweepOptions options;
    options.jobs = jobs;
    SweepStats stats;
    EXPECT_FALSE(
        faults::exhaustive_behavior_search(solid, -1, options, &stats)
            .has_value())
        << jobs;
    // No violation: the walk executes exactly the canonical orbit
    // representatives of the representative conjugacy subsets, and their
    // (orbit size x class size)-weighted sum reconciles to the whole
    // (unreduced) behaviour space.
    EXPECT_EQ(stats.executions,
              faults::behavior_search_quotient_space(solid))
        << jobs;
    EXPECT_EQ(stats.weighted_executions, faults::behavior_search_space(solid))
        << jobs;
  }
}

TEST(SweepDeterminism, FamilySearchVerdictAndCountMatchAcrossJobs) {
  const Config infeasible{.n = 4, .m = 1, .u = 2};
  faults::SearchOptions search;
  search.seed = 11;
  search.all_senders = true;
  search.random_trials = 3;

  std::optional<std::string> reference_hit;
  std::optional<std::uint64_t> reference_count;
  for (int jobs : {1, 2, 4}) {
    SweepOptions options;
    options.jobs = jobs;
    SweepStats stats;
    const auto violation =
        faults::search_violation(infeasible, search, options, &stats);
    ASSERT_TRUE(violation.has_value()) << jobs;
    const std::string hit =
        violation->spec.to_string() + " / " + violation->adversary;
    if (!reference_hit.has_value()) {
      reference_hit = hit;
      reference_count = stats.executions;
    }
    EXPECT_EQ(hit, *reference_hit) << jobs;
    EXPECT_EQ(stats.executions, *reference_count) << jobs;
  }
}

TEST(SweepDeterminism, FamilySearchFeasibleStaysCleanInParallel) {
  const Config feasible{.n = 5, .m = 1, .u = 2};
  faults::SearchOptions search;
  search.seed = 7;
  SweepOptions options;
  options.jobs = 3;
  SweepStats stats;
  EXPECT_FALSE(faults::search_violation(feasible, search, options, &stats)
                   .has_value());
  // Nothing hit => canonical count equals performed count equals the
  // full family-search space.
  EXPECT_EQ(stats.executions, stats.performed);
  EXPECT_GT(stats.executions, 0u);
}

TEST(SweepDeterminism, ParallelBehaviourSearchAgreesWithSerialWrapper) {
  const Config config{.n = 4, .m = 1, .u = 2};
  const auto serial = faults::exhaustive_behavior_search(config);
  SweepOptions options;
  options.jobs = 4;
  const auto parallel =
      faults::exhaustive_behavior_search(config, -1, options);
  ASSERT_TRUE(serial.has_value());
  ASSERT_TRUE(parallel.has_value());
  EXPECT_EQ(serial->spec.to_string(), parallel->spec.to_string());
  EXPECT_EQ(serial->adversary, parallel->adversary);
  EXPECT_EQ(serial->report.applied, parallel->report.applied);
}

}  // namespace
}  // namespace da::sweep
