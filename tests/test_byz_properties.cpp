#include <gtest/gtest.h>

#include "core/agreement.hpp"
#include "faults/adversaries.hpp"
#include "faults/search.hpp"
#include "util/rng.hpp"

namespace da {
namespace {

/// Property sweep over feasible configurations: for every fault count up to
/// u and a battery of adversaries, the governing condition D.1-D.4 and the
/// (m+1)-agreement corollary hold.
class ByzProperty : public ::testing::TestWithParam<Config> {};

TEST_P(ByzProperty, ConditionsHoldUnderStandardAdversaries) {
  const Config config = GetParam();
  ASSERT_TRUE(config.feasible());
  const DegradableAgreement protocol(config);
  const auto family = faults::standard_family(2024);
  Rng rng(mix64(static_cast<std::uint64_t>(config.n),
                static_cast<std::uint64_t>(config.m * 100 + config.u)));

  for (int f = 0; f <= config.u; ++f) {
    for (int trial = 0; trial < 4; ++trial) {
      ScenarioSpec spec;
      spec.config = config;
      spec.sender = static_cast<NodeId>(rng.below(
          static_cast<std::uint64_t>(config.n)));
      spec.sender_value = Value::of(rng.range(1, 50));
      const auto subset = rng.subset(config.n, f);
      spec.faulty.assign(subset.begin(), subset.end());

      for (const auto& factory : family) {
        auto adversary = factory.make(spec);
        const ConditionReport report =
            protocol.run_and_check(spec, adversary.get());
        ASSERT_TRUE(report.satisfied)
            << spec.to_string() << " under " << factory.name << ": "
            << report.detail;
        ASSERT_TRUE(report.corollary_m_plus_1)
            << spec.to_string() << " under " << factory.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FeasibleConfigs, ByzProperty,
    ::testing::Values(Config{.n = 4, .m = 1, .u = 1},
                      Config{.n = 5, .m = 1, .u = 2},
                      Config{.n = 6, .m = 1, .u = 3},
                      Config{.n = 7, .m = 1, .u = 4},
                      Config{.n = 7, .m = 2, .u = 2},
                      Config{.n = 8, .m = 2, .u = 3},
                      Config{.n = 9, .m = 2, .u = 4},
                      Config{.n = 5, .m = 0, .u = 4},
                      Config{.n = 6, .m = 1, .u = 2},
                      Config{.n = 10, .m = 3, .u = 3},
                      Config{.n = 11, .m = 3, .u = 4},
                      Config{.n = 12, .m = 2, .u = 7}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "n" + std::to_string(info.param.n) + "_m" +
             std::to_string(info.param.m) + "_u" +
             std::to_string(info.param.u);
    });

TEST(ByzPropertyExtra, ExtraNodesBeyondMinimumStillWork) {
  // Feasibility is monotone in n: adding nodes must never break anything.
  for (int extra = 0; extra <= 3; ++extra) {
    const Config config{.n = 5 + extra, .m = 1, .u = 2};
    const DegradableAgreement protocol(config);
    ScenarioSpec spec;
    spec.config = config;
    spec.sender = 0;
    spec.sender_value = Value::of(3);
    spec.faulty = {1, 2};
    auto adversary = faults::equivocator(Value::of(3), Value::of(4));
    const ConditionReport report =
        protocol.run_and_check(spec, adversary.get());
    EXPECT_TRUE(report.satisfied) << "extra=" << extra << " " << report.detail;
  }
}

TEST(ByzPropertyExtra, SenderIdentityIrrelevant) {
  const Config config{.n = 6, .m = 1, .u = 3};
  const DegradableAgreement protocol(config);
  for (NodeId sender = 0; sender < config.n; ++sender) {
    ScenarioSpec spec;
    spec.config = config;
    spec.sender = sender;
    spec.sender_value = Value::of(8);
    spec.faulty = {static_cast<NodeId>((sender + 1) % config.n)};
    auto adversary = faults::constant_liar(Value::of(1));
    const ConditionReport report =
        protocol.run_and_check(spec, adversary.get());
    EXPECT_TRUE(report.satisfied) << "sender=" << sender;
    EXPECT_EQ(report.applied, Condition::kD1);
  }
}

TEST(ByzPropertyExtra, FaultyNodesBeyondUBreakNothingStructurally) {
  // f > u: no conditions promised, but the protocol still terminates and
  // produces a decision for every node.
  const Config config{.n = 5, .m = 1, .u = 2};
  const DegradableAgreement protocol(config);
  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = Value::of(5);
  spec.faulty = {1, 2, 3};
  auto adversary = faults::random_noise(5, 0, 9, 0.5);
  const Outcome outcome = protocol.run(spec, adversary.get());
  EXPECT_EQ(outcome.decisions.size(), 5u);
  const ConditionReport report = check_conditions(spec, outcome.decisions);
  EXPECT_EQ(report.applied, Condition::kNone);
}

TEST(ByzPropertyExtra, DeterministicAcrossRuns) {
  const Config config{.n = 7, .m = 2, .u = 2};
  const DegradableAgreement protocol(config);
  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 3;
  spec.sender_value = Value::of(21);
  spec.faulty = {0, 5};
  auto a1 = faults::random_noise(99, 0, 50, 0.2);
  auto a2 = faults::random_noise(99, 0, 50, 0.2);
  const Outcome o1 = protocol.run(spec, a1.get());
  const Outcome o2 = protocol.run(spec, a2.get());
  EXPECT_EQ(o1.decisions, o2.decisions);
  EXPECT_EQ(o1.messages_delivered, o2.messages_delivered);
}

TEST(ByzPropertyExtra, OmissionsOnlyEverProduceDefaultOrTruth) {
  // A purely omitting adversary can push receivers to V_d but never to a
  // wrong value, under any fault count up to u.
  const Config config{.n = 6, .m = 1, .u = 3};
  const DegradableAgreement protocol(config);
  for (int f = 1; f <= 3; ++f) {
    ScenarioSpec spec;
    spec.config = config;
    spec.sender = 0;
    spec.sender_value = Value::of(31);
    for (int i = 0; i < f; ++i) spec.faulty.push_back(i + 1);
    auto adversary = faults::silent();
    const Outcome outcome = protocol.run(spec, adversary.get());
    for (NodeId r : spec.fault_free_receivers()) {
      const Value d = outcome.decision_of(r);
      EXPECT_TRUE(d == spec.sender_value || d.is_default())
          << "f=" << f << " node " << r << " got " << d.to_string();
    }
  }
}

}  // namespace
}  // namespace da
