// Fork-vs-scratch differential for the checkpoint/fork round engine
// (sim/round_engine.hpp): an execution assembled from begin / snapshot /
// restore / fork pieces must be byte-identical — canonical trace,
// decisions and D.1-D.4 verdict — to the same scenario executed from
// scratch by SyncRunner, for all six protocols. Corpus lines in
// tests/corpus/fork_engine.txt are replayed before any randomized trials;
// append any (seed, ordinal) pair a randomized run flags.

#include "sim/round_engine.hpp"

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/byz.hpp"
#include "core/checker.hpp"
#include "faults/adversaries.hpp"
#include "faults/behavior_search.hpp"
#include "faults/search.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "protocols/authenticated/signatures.hpp"
#include "protocols/authenticated/sm.hpp"
#include "protocols/crusader/crusader.hpp"
#include "protocols/lamport/om.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace da {
namespace {

using protocols::authenticated::SignatureAuthority;

// ------------------------------------------------------------- case space
//
// Mirrors the cross-runtime differential harness (inject/differ.cpp):
// ordinal o exercises protocol o % 6 on a small feasible-or-tight config
// with a random sender, value and faulty subset. A pure function of
// (seed, ordinal), so corpus lines replay identically.

enum class Proto { kByz, kOm, kCrusader, kSm, kIc, kDic };
constexpr int kProtoCount = 6;

struct ForkCase {
  Proto protocol = Proto::kByz;
  ScenarioSpec spec;
  std::uint64_t adversary_seed = 0;
};

ForkCase draw_fork_case(std::uint64_t seed, std::uint64_t ordinal) {
  Rng rng(mix64(mix64(seed, 0xF08Bull), ordinal));
  ForkCase c;
  c.protocol = static_cast<Proto>(ordinal % kProtoCount);
  int n = 0;
  int m = 0;
  int u = 0;
  switch (c.protocol) {
    case Proto::kByz:
      m = static_cast<int>(rng.below(2));
      u = m + static_cast<int>(rng.below(2));
      if (u == 0) u = 1;
      n = 2 * m + u + 1 + static_cast<int>(rng.below(2));
      break;
    case Proto::kOm:
      m = 1;
      u = 1;
      n = 4 + static_cast<int>(rng.below(3));
      break;
    case Proto::kCrusader:
      m = 1;
      u = 1 + static_cast<int>(rng.below(2));
      n = 2 * m + u + 1 + static_cast<int>(rng.below(2));
      break;
    case Proto::kSm:
      m = 1 + static_cast<int>(rng.below(2));
      u = m;
      n = 4 + static_cast<int>(rng.below(2));
      break;
    case Proto::kIc:
      m = 1;
      u = 1;
      n = 4 + static_cast<int>(rng.below(2));
      break;
    case Proto::kDic:
      m = 1;
      u = 1 + static_cast<int>(rng.below(2));
      n = 2 * m + u + 1;
      break;
  }
  c.spec.config = Config{n, m, u};
  c.spec.sender =
      static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
  c.spec.sender_value = Value::of(rng.range(1, 9));
  const int f = static_cast<int>(rng.below(static_cast<std::uint64_t>(u) + 1));
  for (int id : rng.subset(n, f)) {
    c.spec.faulty.push_back(static_cast<NodeId>(id));
  }
  c.adversary_seed = rng.next();
  return c;
}

std::string case_name(std::uint64_t seed, std::uint64_t ordinal,
                      const ForkCase& c) {
  return "seed=" + std::to_string(seed) +
         " ordinal=" + std::to_string(ordinal) + " " + c.spec.to_string();
}

std::vector<std::unique_ptr<sim::Process>> make_processes(
    const ForkCase& c, const SignatureAuthority& authority) {
  const Config& cfg = c.spec.config;
  switch (c.protocol) {
    case Proto::kByz:
    case Proto::kDic:
      return core::make_byz_processes(cfg, c.spec.sender, c.spec.sender_value);
    case Proto::kOm:
    case Proto::kIc:
      return protocols::lamport::make_om_processes(
          cfg.n, cfg.m, c.spec.sender, c.spec.sender_value);
    case Proto::kCrusader:
      return protocols::crusader::make_crusader_processes(
          cfg.n, cfg.m, c.spec.sender, c.spec.sender_value);
    case Proto::kSm:
      return protocols::authenticated::make_sm_processes(
          cfg.n, cfg.m, c.spec.sender, c.spec.sender_value, authority);
  }
  return {};
}

/// A fresh adversary for the case. Every family member decides from the
/// message identity alone (no internal state consumed across calls), so a
/// freshly built copy behaves identically from any fork boundary — the
/// property the checkpointed searches rely on.
std::unique_ptr<sim::Adversary> make_adversary(
    const ForkCase& c, const SignatureAuthority& authority) {
  switch (mix64(c.adversary_seed, 0xADull) % 5) {
    case 0: return faults::silent();
    case 1: return faults::constant_liar(Value::of(99));
    case 2:
      if (c.protocol == Proto::kSm) {
        return protocols::authenticated::signing_equivocator(
            authority, c.spec.faulty, c.spec.sender_value, Value::of(88));
      }
      return faults::equivocator(c.spec.sender_value, Value::of(88));
    case 3: return faults::crash_after(1);
    case 4:
      return faults::random_noise(mix64(c.adversary_seed, 0xA0ull), 1, 9, 0.2);
  }
  return faults::honest();
}

/// Canonical byte-comparable artifact of one execution: the JSONL trace
/// export, the decision vector and the governing D.1-D.4 verdict.
std::string artifact_of(const sim::Trace& trace, const sim::RunResult& result,
                        const ScenarioSpec& spec) {
  std::string out = obs::trace_to_jsonl(trace);
  for (const auto& [node, value] : result.decisions) {
    out += std::to_string(node) + "=" + value.to_string() + ";";
  }
  const ConditionReport report = check_conditions(spec, result.decisions);
  out += std::string(to_string(report.applied)) +
         (report.satisfied ? "+" : "-");
  return out;
}

std::string run_scratch(const ForkCase& c, const SignatureAuthority& authority) {
  std::unique_ptr<sim::Adversary> adversary;
  if (!c.spec.faulty.empty()) adversary = make_adversary(c, authority);
  sim::Trace trace;
  sim::RunOptions options;
  options.faulty = c.spec.faulty;
  options.adversary = adversary.get();
  options.trace = &trace;
  const sim::RunResult result =
      sim::SyncRunner(make_processes(c, authority), std::move(options)).run();
  return artifact_of(trace, result, c.spec);
}

void run_to_completion(sim::RoundEngine& engine) {
  while (!engine.done()) {
    engine.dispatch_pending();
    engine.process_round();
  }
}

/// The differential proper: scratch vs (a) incremental execution with a
/// snapshot taken at the round-0 boundary, (b) a fork rewound to that
/// boundary under a freshly built adversary, and (c) — when the sender is
/// honest — the search_violation pattern of an honest-prefix checkpoint
/// whose forks swap adversaries in. All artifacts must be byte-identical.
void check_fork_case(std::uint64_t seed, std::uint64_t ordinal) {
  const ForkCase c = draw_fork_case(seed, ordinal);
  SCOPED_TRACE(case_name(seed, ordinal, c));
  const SignatureAuthority authority(mix64(c.adversary_seed, 0x516ull),
                                     c.spec.config.n);
  const std::string scratch = run_scratch(c, authority);
  const obs::MetricsScope metrics_scope;

  std::unique_ptr<sim::Adversary> adversary;
  if (!c.spec.faulty.empty()) adversary = make_adversary(c, authority);
  sim::Trace trace;
  sim::RunOptions options;
  options.faulty = c.spec.faulty;
  options.adversary = adversary.get();
  options.trace = &trace;
  sim::RoundEngine engine(make_processes(c, authority), std::move(options));
  engine.begin();
  const sim::RoundEngine::Snapshot at_begin = engine.snapshot();
  run_to_completion(engine);
  EXPECT_EQ(scratch, artifact_of(trace, engine.finish(), c.spec))
      << "incremental execution diverged from SyncRunner";

  std::unique_ptr<sim::Adversary> fork_adversary;
  if (!c.spec.faulty.empty()) {
    fork_adversary = make_adversary(c, authority);
    engine.set_adversary(fork_adversary.get());
  }
  engine.restore(at_begin);
  run_to_completion(engine);
  EXPECT_EQ(scratch, artifact_of(trace, engine.finish(), c.spec))
      << "fork from the round-0 boundary diverged";

  if (!c.spec.faulty.empty() && !c.spec.sender_faulty()) {
    sim::HonestAdversary honest;
    sim::Trace fork_trace;
    sim::RunOptions fork_options;
    fork_options.faulty = c.spec.faulty;
    fork_options.adversary = &honest;
    fork_options.trace = &fork_trace;
    sim::RoundEngine forked(make_processes(c, authority),
                            std::move(fork_options));
    forked.begin();
    forked.dispatch_pending();
    forked.process_round();
    const sim::RoundEngine::Snapshot prefix = forked.snapshot();
    for (int fork = 0; fork < 2; ++fork) {
      auto adv = make_adversary(c, authority);
      forked.set_adversary(adv.get());
      if (fork > 0) forked.restore(prefix);
      run_to_completion(forked);
      EXPECT_EQ(scratch, artifact_of(fork_trace, forked.finish(), c.spec))
          << "honest-prefix fork " << fork << " diverged";
    }
  }
}

// --------------------------------------------------- corpus, then random

TEST(ForkEngine, CorpusReplay) {
  std::ifstream in(std::string(DA_TEST_CORPUS_DIR) + "/fork_engine.txt");
  ASSERT_TRUE(in.is_open()) << "missing tests/corpus/fork_engine.txt";
  std::string line;
  int replayed = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::uint64_t seed = 0;
    std::uint64_t ordinal = 0;
    ASSERT_TRUE(fields >> seed >> ordinal) << "bad corpus line: " << line;
    check_fork_case(seed, ordinal);
    ++replayed;
  }
  EXPECT_GE(replayed, 12);  // at least two cases per protocol
}

TEST(ForkEngine, RandomizedTriples) {
  Rng rng(0xF0CC5ull);
  for (int trial = 0; trial < 36; ++trial) {
    check_fork_case(rng.next(), static_cast<std::uint64_t>(trial));
  }
}

// ------------------------------------------------- round-boundary sweeps

TEST(ForkEngine, SnapshotAtEveryRoundBoundary) {
  // Depth-3 BYZ so the walk crosses more than one interior boundary.
  ScenarioSpec spec;
  spec.config = Config{.n = 7, .m = 2, .u = 2};
  spec.sender = 0;
  spec.sender_value = Value::of(5);
  spec.faulty = {1, 3};
  const auto adversary = faults::equivocator(Value::of(5), Value::of(6));

  sim::Trace scratch_trace;
  sim::RunOptions scratch_options;
  scratch_options.faulty = spec.faulty;
  scratch_options.adversary = adversary.get();
  scratch_options.trace = &scratch_trace;
  const sim::RunResult scratch_result =
      sim::SyncRunner(
          core::make_byz_processes(spec.config, spec.sender, spec.sender_value),
          std::move(scratch_options))
          .run();
  const std::string scratch = artifact_of(scratch_trace, scratch_result, spec);

  const obs::MetricsScope metrics_scope;
  sim::Trace trace;
  sim::RunOptions options;
  options.faulty = spec.faulty;
  options.adversary = adversary.get();
  options.trace = &trace;
  sim::RoundEngine engine(
      core::make_byz_processes(spec.config, spec.sender, spec.sender_value),
      std::move(options));
  engine.begin();
  std::vector<sim::RoundEngine::Snapshot> boundaries;
  boundaries.push_back(engine.snapshot());
  while (!engine.done()) {
    engine.dispatch_pending();
    engine.process_round();
    boundaries.push_back(engine.snapshot());
  }
  ASSERT_EQ(boundaries.size(),
            static_cast<std::size_t>(engine.total_rounds()) + 1);
  EXPECT_EQ(scratch, artifact_of(trace, engine.finish(), spec));

  // The adversary decides per message identity, so rewinding to any
  // boundary — including the final one — must reproduce the execution.
  for (std::size_t b = 0; b < boundaries.size(); ++b) {
    engine.restore(boundaries[b]);
    EXPECT_EQ(engine.rounds_processed(), static_cast<int>(b));
    run_to_completion(engine);
    EXPECT_EQ(scratch, artifact_of(trace, engine.finish(), spec))
        << "restore to boundary " << b << " diverged";
  }
}

// ------------------------------------- search equivalence and invariance

TEST(ForkEngine, BehaviorSearchCheckpointingEquivalence) {
  // One config with a violation, one exhaustively clean; for each, every
  // (jobs, checkpointing) combination must report the identical verdict
  // and the identical canonical execution count.
  for (const Config& config :
       {Config{.n = 4, .m = 1, .u = 2}, Config{.n = 4, .m = 1, .u = 1}}) {
    std::optional<std::string> expected_name;
    std::optional<std::uint64_t> expected_executions;
    bool first = true;
    for (const int jobs : {1, 3}) {
      for (const bool checkpointing : {true, false}) {
        sweep::SweepOptions options;
        options.jobs = jobs;
        sweep::SweepStats stats;
        const auto violation = faults::exhaustive_behavior_search(
            config, -1, options, &stats, checkpointing);
        const std::string name =
            violation.has_value() ? violation->adversary : "(none)";
        if (first) {
          expected_name = name;
          expected_executions = stats.executions;
          first = false;
          continue;
        }
        EXPECT_EQ(*expected_name, name)
            << config.to_string() << " jobs=" << jobs
            << " checkpointing=" << checkpointing;
        EXPECT_EQ(*expected_executions, stats.executions)
            << config.to_string() << " jobs=" << jobs
            << " checkpointing=" << checkpointing;
      }
    }
  }
}

TEST(ForkEngine, SearchViolationCheckpointingEquivalence) {
  // The family search over the paper's tight five-node config (clean) and
  // the one-node-short Figure 2 config (violating): checkpointing must not
  // change the verdict, the winning adversary or the execution count.
  for (const Config& config :
       {Config{.n = 5, .m = 1, .u = 2}, Config{.n = 4, .m = 1, .u = 2}}) {
    std::optional<std::string> expected;
    std::optional<std::uint64_t> expected_executions;
    bool first = true;
    for (const int jobs : {1, 3}) {
      for (const bool checkpointing : {true, false}) {
        faults::SearchOptions options;
        options.random_trials = 2;
        options.checkpointing = checkpointing;
        sweep::SweepOptions sweep_options;
        sweep_options.jobs = jobs;
        sweep::SweepStats stats;
        const auto violation =
            faults::search_violation(config, options, sweep_options, &stats);
        const std::string summary =
            violation.has_value()
                ? violation->adversary + "@" + violation->spec.to_string()
                : "(none)";
        if (first) {
          expected = summary;
          expected_executions = stats.executions;
          first = false;
          continue;
        }
        EXPECT_EQ(*expected, summary)
            << config.to_string() << " jobs=" << jobs
            << " checkpointing=" << checkpointing;
        EXPECT_EQ(*expected_executions, stats.executions)
            << config.to_string() << " jobs=" << jobs
            << " checkpointing=" << checkpointing;
      }
    }
  }
}

TEST(ForkEngine, CheckpointCountersVisible) {
#ifdef DA_METRICS_DISABLED
  GTEST_SKIP() << "search counters are no-ops under -DDA_METRICS=OFF";
#endif
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t checkpoints0 = registry.counter_value("search.checkpoints");
  const std::uint64_t forks0 = registry.counter_value("search.forks");
  const std::uint64_t skipped0 = registry.counter_value("search.rounds_skipped");
  const std::uint64_t replayed0 =
      registry.counter_value("search.rounds_replayed");

  // A clean config scans its whole space, so the walk forks throughout.
  const Config config{.n = 4, .m = 1, .u = 1};
  const auto violation = faults::exhaustive_behavior_search(
      config, -1, sweep::SweepOptions{}, nullptr, /*checkpointing=*/true);
  EXPECT_FALSE(violation.has_value());

  EXPECT_GT(registry.counter_value("search.checkpoints"), checkpoints0);
  EXPECT_GT(registry.counter_value("search.forks"), forks0);
  EXPECT_GT(registry.counter_value("search.rounds_skipped"), skipped0);
  EXPECT_GT(registry.counter_value("search.rounds_replayed"), replayed0);
}

// ------------------------------------------------------- Decisions class

TEST(Decisions, FlatVectorKeepsMapSurface) {
  sim::Decisions decisions;
  EXPECT_TRUE(decisions.empty());
  decisions[3] = Value::of(30);
  decisions[1] = Value::of(10);
  decisions[2] = Value::of(20);
  decisions[1] = Value::of(11);  // upsert overwrites

  EXPECT_EQ(decisions.size(), 3u);
  EXPECT_EQ(decisions.at(1), Value::of(11));
  EXPECT_TRUE(decisions.contains(2));
  EXPECT_EQ(decisions.find(9), nullptr);

  // Iteration is sorted by node id regardless of insertion order.
  std::vector<NodeId> order;
  for (const auto& [node, value] : decisions) order.push_back(node);
  EXPECT_EQ(order, (std::vector<NodeId>{1, 2, 3}));

  // Compatibility with map-based call sites.
  const std::map<NodeId, Value> as_map = decisions;
  EXPECT_EQ(as_map.size(), 3u);
  EXPECT_TRUE(decisions == as_map);
  EXPECT_EQ(as_map.at(3), Value::of(30));
}

}  // namespace
}  // namespace da
