// The fault-injection layer (src/inject/) and its differential-replay
// checker: FaultPlan parsing and determinism, InjectionNetwork semantics,
// and the headline property — the same (ScenarioSpec, FaultPlan, seed)
// triple produces byte-identical canonical artifacts and identical
// D.1-D.4 verdicts on the sim, threaded and event runtimes, for any
// sweep --jobs value. A mutation check (-DDA_MUTATION_BUG=ON) asserts the
// harness actually flags a planted protocol bug.

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "inject/differ.hpp"
#include "inject/fault_plan.hpp"
#include "inject/injection_network.hpp"
#include "sim/message.hpp"
#include "util/rng.hpp"

namespace da::inject {
namespace {

sim::Message msg(NodeId from, NodeId to, int round) {
  sim::Message m;
  m.from = from;
  m.to = to;
  m.round = round;
  m.path = Path{from};
  m.value = Value::of(7);
  return m;
}

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, ParseSerializeRoundTrip) {
  const std::string text =
      "# example plan\n"
      "seed 42\n"
      "drop from=1 to=3 round=2\n"
      "dup from=* to=2 round=* copies=3\n"
      "delay from=0 to=* round=1\n"
      "crash node=3 down=1 restart=3\n"
      "rates drop=0.05 dup=0.02 delay=0.1\n";
  std::string error;
  const auto plan = FaultPlan::parse(text, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->seed, 42u);
  ASSERT_EQ(plan->rules.size(), 3u);
  EXPECT_EQ(plan->rules[0].kind, FaultKind::kDrop);
  EXPECT_EQ(plan->rules[1].copies, 3);
  EXPECT_EQ(plan->rules[1].from, kNoNode);
  ASSERT_EQ(plan->crashes.size(), 1u);
  EXPECT_EQ(plan->crashes[0].node, 3);
  EXPECT_DOUBLE_EQ(plan->rates.drop, 0.05);

  // serialize() is a canonical fixed point: parse(serialize(p)) == p and
  // serialize(parse(s)) == serialize(p).
  const std::string canon = plan->serialize();
  const auto reparsed = FaultPlan::parse(canon, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(*reparsed, *plan);
  EXPECT_EQ(reparsed->serialize(), canon);
}

TEST(FaultPlan, ParseRejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("bogus directive\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(FaultPlan::parse("drop from=x\n", &error).has_value());
  EXPECT_FALSE(FaultPlan::parse("dup from=0 copies=1\n", &error).has_value());
  EXPECT_FALSE(FaultPlan::parse("crash down=2\n", &error).has_value());
  EXPECT_FALSE(FaultPlan::parse("rates drop=1.5\n", &error).has_value());
  EXPECT_FALSE(FaultPlan::parse("seed\n", &error).has_value());
}

TEST(FaultPlan, RuleMatchingHonoursWildcards) {
  LinkRule rule;  // all wildcards
  EXPECT_TRUE(rule.matches(msg(0, 1, 0)));
  rule.from = 2;
  EXPECT_FALSE(rule.matches(msg(0, 1, 0)));
  EXPECT_TRUE(rule.matches(msg(2, 1, 0)));
  rule.round = 1;
  EXPECT_FALSE(rule.matches(msg(2, 1, 0)));
  EXPECT_TRUE(rule.matches(msg(2, 1, 1)));
}

TEST(FaultPlan, CrashWindowCoversHalfOpenRange) {
  CrashWindow w;
  w.node = 2;
  w.down_from = 1;
  w.restart = 3;
  FaultPlan plan;
  plan.crashes.push_back(w);
  EXPECT_FALSE(plan.crashed(2, 0));
  EXPECT_TRUE(plan.crashed(2, 1));
  EXPECT_TRUE(plan.crashed(2, 2));
  EXPECT_FALSE(plan.crashed(2, 3));  // restarted
  EXPECT_FALSE(plan.crashed(1, 1));  // other node
  plan.crashes[0].restart = -1;      // never restarts
  EXPECT_TRUE(plan.crashed(2, 100));
}

TEST(FaultPlan, ValidateCatchesBadPlans) {
  FaultPlan plan;
  EXPECT_FALSE(plan.validate(4).has_value());
  plan.rules.push_back(LinkRule{.from = 7});
  EXPECT_TRUE(plan.validate(4).has_value());
  plan.rules.clear();
  plan.crashes.push_back(CrashWindow{.node = 0, .down_from = 2, .restart = 1});
  EXPECT_TRUE(plan.validate(4).has_value());
  plan.crashes.clear();
  plan.rates.delay = 1.5;
  EXPECT_TRUE(plan.validate(4).has_value());
}

TEST(FaultPlan, FromSeedIsDeterministicAndValid) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const FaultPlan a = FaultPlan::from_seed(seed, 5, 3);
    const FaultPlan b = FaultPlan::from_seed(seed, 5, 3);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.validate(5).has_value()) << *a.validate(5);
    EXPECT_TRUE(a.active());
  }
  // Different seeds give different plans (overwhelmingly).
  EXPECT_NE(FaultPlan::from_seed(1, 5, 3), FaultPlan::from_seed(2, 5, 3));
}

TEST(FaultPlan, InactivePlanIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.active());
  InjectionNetwork network(plan);
  for (int r = 0; r < 3; ++r) {
    for (NodeId from = 0; from < 4; ++from) {
      for (NodeId to = 0; to < 4; ++to) {
        const auto copies = network.transit_fanout(msg(from, to, r));
        ASSERT_EQ(copies.size(), 1u);
        EXPECT_EQ(copies[0], msg(from, to, r));
        EXPECT_EQ(network.holdback(msg(from, to, r)), 0.0);
      }
    }
  }
  EXPECT_EQ(network.stats().dropped, 0u);
  EXPECT_EQ(network.stats().duplicated, 0u);
  EXPECT_EQ(network.stats().delayed, 0u);
  EXPECT_EQ(network.stats().crash_dropped, 0u);
  EXPECT_EQ(network.stats().examined, 48u);
}

// --------------------------------------------------------- InjectionNetwork

TEST(InjectionNetwork, ScriptedRulesApplyFirstMatch) {
  FaultPlan plan;
  plan.rules.push_back(
      LinkRule{.from = 0, .to = 1, .round = 0, .kind = FaultKind::kDrop});
  plan.rules.push_back(LinkRule{
      .from = 0, .to = kNoNode, .round = -1, .kind = FaultKind::kDuplicate,
      .copies = 3});
  InjectionNetwork network(plan);

  // First rule matches (0 -> 1, round 0): dropped, even though the second
  // rule would duplicate it.
  EXPECT_TRUE(network.transit_fanout(msg(0, 1, 0)).empty());
  // Only the second matches 0 -> 2: three copies.
  EXPECT_EQ(network.transit_fanout(msg(0, 2, 0)).size(), 3u);
  // Neither matches 1 -> 0: passthrough.
  EXPECT_EQ(network.transit_fanout(msg(1, 0, 0)).size(), 1u);
  EXPECT_EQ(network.stats().dropped, 1u);
  EXPECT_EQ(network.stats().duplicated, 2u);
}

TEST(InjectionNetwork, CrashWindowDropsBothDirections) {
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{.node = 2, .down_from = 1, .restart = 2});
  InjectionNetwork network(plan);
  EXPECT_FALSE(network.transit_fanout(msg(2, 0, 0)).empty());  // before
  EXPECT_TRUE(network.transit_fanout(msg(2, 0, 1)).empty());   // down, sends
  EXPECT_TRUE(network.transit_fanout(msg(0, 2, 1)).empty());   // down, recvs
  EXPECT_FALSE(network.transit_fanout(msg(2, 0, 2)).empty());  // restarted
  EXPECT_EQ(network.stats().crash_dropped, 2u);
}

TEST(InjectionNetwork, DecisionsArePureFunctionsOfMessageIdentity) {
  const FaultPlan plan = FaultPlan::from_seed(7, 5, 4);
  InjectionNetwork a(plan);
  InjectionNetwork b(plan);
  // Visit the same message space in different orders: per-message results
  // must agree (no hidden RNG stream).
  for (int r = 0; r < 4; ++r) {
    for (NodeId from = 0; from < 5; ++from) {
      for (NodeId to = 0; to < 5; ++to) {
        const auto fwd = a.transit_fanout(msg(from, to, r));
        EXPECT_EQ(a.holdback(msg(from, to, r)), b.holdback(msg(from, to, r)));
        const auto again = b.transit_fanout(msg(from, to, r));
        EXPECT_EQ(fwd, again);
      }
    }
  }
  EXPECT_EQ(a.stats(), b.stats());
  // Replaying the identical traffic leaves identical stats.
  InjectionNetwork c(plan);
  for (int r = 3; r >= 0; --r) {
    for (NodeId from = 4; from >= 0; --from) {
      for (NodeId to = 4; to >= 0; --to) {
        (void)c.transit_fanout(msg(from, to, r));
      }
    }
  }
  EXPECT_EQ(a.stats(), c.stats());
}

TEST(InjectionNetwork, HoldbackStaysInWindow) {
  FaultPlan plan;
  plan.rates.delay = 1.0;  // every message delayed
  InjectionNetwork network(plan);
  for (NodeId from = 0; from < 6; ++from) {
    for (NodeId to = 0; to < 6; ++to) {
      const double frac = network.holdback(msg(from, to, 1));
      EXPECT_GT(frac, 0.0);
      EXPECT_LT(frac, 1.0);  // always lands inside the round window
    }
  }
}

// ------------------------------------------------------------- Differential

DifferentialCase byz_case(FaultPlan plan, AdversaryKind adversary) {
  DifferentialCase c;
  c.protocol = Protocol::kByz;
  c.spec.config = Config{4, 1, 1};
  c.spec.sender = 0;
  c.spec.sender_value = Value::of(7);
  c.spec.faulty = {2};
  c.plan = std::move(plan);
  c.adversary_seed = 11;
  c.adversary = adversary;
  return c;
}

TEST(Differential, CleanByzCaseAgreesEverywhere) {
  const DifferentialReport report =
      run_differential(byz_case(FaultPlan{}, AdversaryKind::kLiar));
  EXPECT_TRUE(report.ok()) << report.detail;
  // f=1 <= m, sender fault-free, reliable links: D.1 must hold.
  EXPECT_TRUE(report.conditions_satisfied) << report.sim.verdict;
  EXPECT_EQ(report.sim.verdict.substr(0, 3), "D.1");
  EXPECT_GT(report.sim.messages_sent, 0u);
}

TEST(Differential, ScriptedDropAgreesEverywhere) {
  FaultPlan plan;
  plan.rules.push_back(
      LinkRule{.from = 0, .to = 3, .round = 0, .kind = FaultKind::kDrop});
  const DifferentialReport report =
      run_differential(byz_case(std::move(plan), AdversaryKind::kLiar));
  EXPECT_TRUE(report.ok()) << report.detail;
}

TEST(Differential, DuplicationAgreesEverywhere) {
  FaultPlan plan;
  plan.rules.push_back(LinkRule{.from = kNoNode, .to = kNoNode, .round = -1,
                                .kind = FaultKind::kDuplicate, .copies = 3});
  const DifferentialReport report =
      run_differential(byz_case(std::move(plan), AdversaryKind::kLiar));
  EXPECT_TRUE(report.ok()) << report.detail;
  // EIG processes dedup by path, so pure duplication must not change the
  // verdict relative to the clean run.
  const DifferentialReport clean =
      run_differential(byz_case(FaultPlan{}, AdversaryKind::kLiar));
  EXPECT_EQ(report.sim.verdict, clean.sim.verdict);
  EXPECT_GT(report.sim.messages_delivered, clean.sim.messages_delivered);
}

TEST(Differential, DelayAgreesEverywhere) {
  FaultPlan plan;
  plan.rates.delay = 0.8;
  plan.seed = 99;
  const DifferentialReport report =
      run_differential(byz_case(std::move(plan), AdversaryKind::kEquivocator));
  EXPECT_TRUE(report.ok()) << report.detail;
  // Delay never pushes a message out of the round window, so the verdict
  // matches the clean run's bit for bit.
  const DifferentialReport clean =
      run_differential(byz_case(FaultPlan{}, AdversaryKind::kEquivocator));
  EXPECT_EQ(report.sim.verdict, clean.sim.verdict);
}

TEST(Differential, CrashRestartAgreesEverywhere) {
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{.node = 3, .down_from = 1, .restart = 2});
  const DifferentialReport report =
      run_differential(byz_case(std::move(plan), AdversaryKind::kSilent));
  EXPECT_TRUE(report.ok()) << report.detail;
  EXPECT_GT(report.sim.artifact.find("crash_dropped"), 0u);
}

TEST(Differential, DrawCaseIsAPureFunction) {
  for (std::uint64_t ordinal = 0; ordinal < 12; ++ordinal) {
    const DifferentialCase a = draw_case(17, ordinal);
    const DifferentialCase b = draw_case(17, ordinal);
    EXPECT_EQ(a.to_string(), b.to_string());
    EXPECT_EQ(a.plan, b.plan);
    EXPECT_EQ(a.adversary_seed, b.adversary_seed);
    ASSERT_TRUE(a.spec.config.valid()) << a.to_string();
    EXPECT_FALSE(a.plan.validate(a.spec.config.n).has_value());
  }
}

TEST(Differential, DrawCaseSpansAllProtocols) {
  std::set<std::string> protocols;
  for (std::uint64_t ordinal = 0; ordinal < 6; ++ordinal) {
    protocols.insert(to_string(draw_case(3, ordinal).protocol));
  }
  EXPECT_EQ(protocols.size(), 6u);
}

// The acceptance sweep: >= 25 (spec, plan, seed) triples spanning all six
// protocols, byte-identical artifacts and identical verdicts across the
// three runtimes, with the jobs=1 and jobs=8 sweeps agreeing on the
// canonical result. (30 ordinals = 5 full passes over the protocol ring.)
TEST(Differential, SweepThirtyCasesAcrossJobsCounts) {
  constexpr std::uint64_t kSeed = 2026;
  constexpr std::uint64_t kCases = 30;
  const DifferentialSweepResult serial = sweep_differential(kSeed, kCases, 1);
  EXPECT_FALSE(serial.first_mismatch.has_value()) << serial.detail;

  const DifferentialSweepResult parallel =
      sweep_differential(kSeed, kCases, 8);
  EXPECT_EQ(serial.first_mismatch, parallel.first_mismatch) << parallel.detail;
  EXPECT_EQ(serial.executions, parallel.executions);
  EXPECT_EQ(serial.cases, kCases);
}

// Regression corpus: previously interesting (seed, ordinal) pairs replay
// verbatim before any randomized exploration (tests/corpus/differential.txt).
TEST(Differential, CorpusReplays) {
  std::ifstream in(std::string(DA_TEST_CORPUS_DIR) + "/differential.txt");
  ASSERT_TRUE(in.is_open()) << "missing tests/corpus/differential.txt";
  std::string line;
  int replayed = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::uint64_t seed = 0;
    std::uint64_t ordinal = 0;
    ASSERT_TRUE(fields >> seed >> ordinal) << "bad corpus line: " << line;
    const DifferentialCase c = draw_case(seed, ordinal);
    const DifferentialReport report = run_differential(c);
    EXPECT_TRUE(report.ok()) << c.to_string() << ": " << report.detail;
    ++replayed;
  }
  EXPECT_GE(replayed, 6);  // at least one case per protocol
}

// ---------------------------------------------------------- Mutation check
//
// With -DDA_MUTATION_BUG=ON the build plants a known VOTE-threshold bug
// (src/protocols/common/vote.cpp). The harness must catch it: a scenario
// the paper guarantees (f <= m, fault-free sender, reliable links) stops
// satisfying D.1. In a normal build the same scenario must pass — i.e. the
// check fails exactly when the bug is present.

TEST(DifferentialMutation, PlantedVoteBugIsDetected) {
  const DifferentialReport report =
      run_differential(byz_case(FaultPlan{}, AdversaryKind::kLiar));
  // The bug is runtime-independent, so the runtimes still agree...
  EXPECT_TRUE(report.ok()) << report.detail;
#ifdef DA_MUTATION_BUG
  // ...but the weakened threshold lets the liar's echo tie the vote and
  // drag fault-free receivers to V_d: D.1 is violated and the harness
  // reports it.
  EXPECT_FALSE(report.conditions_satisfied) << report.sim.verdict;
#else
  EXPECT_TRUE(report.conditions_satisfied) << report.sim.verdict;
#endif
}

}  // namespace
}  // namespace da::inject
