// The sharded front-end (src/service/frontend.{hpp,cpp}): deterministic
// routing, the extended determinism contract (digest, artifact and merged
// sketch serializations identical for every `jobs` value), and the
// sharding-transparency pin — an uncongested front-end stream must be
// record-identical to the single-service baseline.

#include "service/frontend.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "service/service.hpp"

namespace da::service {
namespace {

ServiceConfig congested_config() {
  ServiceConfig config;
  config.arrivals = ArrivalSpec::poisson(40.0);
  config.offered = 300;
  config.cap = 8;  // per shard
  config.queue_cap = 8;
  config.policy = OverloadPolicy::kShedOldest;
  config.seed = 21;
  return config;
}

TEST(Frontend, RoutePolicyParseRoundTrips) {
  for (RoutePolicy route : {RoutePolicy::kHashJobId, RoutePolicy::kLeastLoaded}) {
    const auto parsed = parse_route_policy(to_string(route));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, route);
  }
  EXPECT_FALSE(parse_route_policy("round-robin").has_value());
  EXPECT_FALSE(parse_route_policy("").has_value());
}

TEST(Frontend, DigestAndSketchesInvariantAcrossJobsValues) {
  // The acceptance pin, extended to the front-end: for a fixed (config,
  // shards, route), every deterministic field — merged records, shard
  // placement, merged and per-class sketch serializations — must be
  // identical whether the cross-shard drain runs inline or on a pool.
  for (RoutePolicy route :
       {RoutePolicy::kHashJobId, RoutePolicy::kLeastLoaded}) {
    FrontendConfig config;
    config.service = congested_config();
    config.shards = 3;
    config.route = route;

    config.service.jobs = 1;
    const FrontendResult lone = run_frontend(config);
    config.service.jobs = 4;
    const FrontendResult fleet = run_frontend(config);

    EXPECT_EQ(lone.digest(), fleet.digest()) << to_string(route);
    EXPECT_EQ(lone.artifact(), fleet.artifact()) << to_string(route);
    EXPECT_EQ(lone.shard_of, fleet.shard_of) << to_string(route);
    EXPECT_EQ(lone.completed, fleet.completed) << to_string(route);
    EXPECT_EQ(lone.shed, fleet.shed) << to_string(route);
    EXPECT_EQ(lone.ticks, fleet.ticks) << to_string(route);
    EXPECT_EQ(lone.latency_sketch.serialize(), fleet.latency_sketch.serialize())
        << to_string(route);
    EXPECT_EQ(lone.queue_sketch.serialize(), fleet.queue_sketch.serialize())
        << to_string(route);
    for (int c = 0; c < kAdmissionClassCount; ++c) {
      EXPECT_EQ(lone.class_latency[static_cast<std::size_t>(c)].serialize(),
                fleet.class_latency[static_cast<std::size_t>(c)].serialize())
          << to_string(route) << " class " << c;
    }
    ASSERT_EQ(lone.shards.size(), fleet.shards.size());
    for (std::size_t s = 0; s < lone.shards.size(); ++s) {
      EXPECT_EQ(lone.shards[s].completed, fleet.shards[s].completed);
      EXPECT_EQ(lone.shards[s].shed, fleet.shards[s].shed);
      EXPECT_EQ(lone.shards[s].peak_active, fleet.shards[s].peak_active);
    }
  }
}

TEST(Frontend, UncongestedStreamMatchesSingleServiceBaseline) {
  // Sharding transparency: when nothing ever queues, the front-end only
  // redistributes execution — the per-job records, and therefore the
  // artifact and the merged sketches, are byte-identical to one plain
  // AgreementService run over the same seed.
  ServiceConfig base_config;
  base_config.arrivals = ArrivalSpec::poisson(2.0);
  base_config.offered = 200;
  base_config.cap = 64;
  base_config.seed = 21;
  const ServiceResult base = run_service(base_config);
  EXPECT_EQ(base.completed, base_config.offered);
  EXPECT_EQ(base.shed, 0u);

  for (RoutePolicy route :
       {RoutePolicy::kHashJobId, RoutePolicy::kLeastLoaded}) {
    for (int shards : {1, 4}) {
      FrontendConfig config;
      config.service = base_config;
      config.shards = shards;
      config.route = route;
      const FrontendResult front = run_frontend(config);
      EXPECT_EQ(front.completed, base.completed)
          << to_string(route) << " shards=" << shards;
      EXPECT_EQ(front.artifact(), base.artifact())
          << to_string(route) << " shards=" << shards;
      EXPECT_EQ(front.latency_sketch.serialize(),
                base.latency_sketch.serialize())
          << to_string(route) << " shards=" << shards;
      EXPECT_EQ(front.makespan, base.makespan);
      EXPECT_EQ(front.ticks, base.ticks);
    }
  }
}

TEST(Frontend, OneShardIsTheSingleServiceEvenUnderOverload) {
  // With one shard the router is a no-op and the global event loop is
  // the service's own: congestion, shedding and all, the streams match.
  const ServiceConfig service = congested_config();
  const ServiceResult base = run_service(service);
  EXPECT_GT(base.shed, 0u);  // the comparison covers overload handling

  FrontendConfig config;
  config.service = service;
  config.shards = 1;
  const FrontendResult front = run_frontend(config);
  EXPECT_EQ(front.artifact(), base.artifact());
  EXPECT_EQ(front.completed, base.completed);
  EXPECT_EQ(front.shed, base.shed);
  EXPECT_EQ(front.queue_sketch.serialize(), base.queue_sketch.serialize());
}

TEST(Frontend, RoutingIsConsistentAndCoversShards) {
  FrontendConfig config;
  config.service = congested_config();
  config.service.offered = 400;
  config.shards = 4;
  const FrontendResult result = run_frontend(config);

  ASSERT_EQ(result.records.size(), config.service.offered);
  ASSERT_EQ(result.shard_of.size(), config.service.offered);
  ASSERT_EQ(result.shards.size(), 4u);
  // Records come back sorted by global id, one per offered job.
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].id, i);
  }
  // Hash routing spreads a 400-job stream over every shard, and the
  // shard summaries tile the totals exactly.
  std::set<int> used(result.shard_of.begin(), result.shard_of.end());
  EXPECT_EQ(used.size(), 4u);
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  for (const FrontendShardSummary& shard : result.shards) {
    offered += shard.offered;
    completed += shard.completed;
    shed += shard.shed;
  }
  EXPECT_EQ(offered, config.service.offered);
  EXPECT_EQ(completed, result.completed);
  EXPECT_EQ(shed, result.shed);
  EXPECT_EQ(result.completed + result.shed, config.service.offered);
  // Derived shard seeds are distinct from each other and the global seed.
  ServiceFrontend frontend(config);
  std::set<std::uint64_t> seeds;
  for (int s = 0; s < frontend.shards(); ++s) {
    seeds.insert(frontend.shard_seed(s));
  }
  EXPECT_EQ(seeds.size(), 4u);
  EXPECT_EQ(seeds.count(config.service.seed), 0u);
}

TEST(Frontend, LeastLoadedSpreadsACongestedStream) {
  // Under sustained overload the least-loaded router must not pile the
  // whole stream onto shard 0: every shard ends up with work.
  FrontendConfig config;
  config.service = congested_config();
  config.shards = 4;
  config.route = RoutePolicy::kLeastLoaded;
  const FrontendResult result = run_frontend(config);
  for (const FrontendShardSummary& shard : result.shards) {
    EXPECT_GT(shard.offered, 0u);
    EXPECT_GT(shard.completed, 0u);
  }
  // Repeat runs of one front-end are identical (warm pools included).
  ServiceFrontend frontend(config);
  const FrontendResult first = frontend.run();
  const FrontendResult second = frontend.run();
  EXPECT_EQ(first.digest(), second.digest());
  EXPECT_EQ(first.digest(), result.digest());
}

TEST(Frontend, AggregatedSamplesAreJobsInvariant) {
  FrontendConfig config;
  config.service = congested_config();
  config.service.sample_every = 1.0;
  config.shards = 2;
  config.service.jobs = 1;
  const FrontendResult lone = run_frontend(config);
  config.service.jobs = 4;
  const FrontendResult fleet = run_frontend(config);
  ASSERT_FALSE(lone.samples.empty());
  ASSERT_EQ(lone.samples.size(), fleet.samples.size());
  for (std::size_t i = 0; i < lone.samples.size(); ++i) {
    const ServiceSample& a = lone.samples[i];
    const ServiceSample& b = fleet.samples[i];
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_EQ(a.active, b.active);
    EXPECT_EQ(a.queued, b.queued);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.completed_by_class, b.completed_by_class);
    EXPECT_EQ(a.queued_by_class, b.queued_by_class);
    EXPECT_DOUBLE_EQ(a.latency_p50, b.latency_p50);
    EXPECT_DOUBLE_EQ(a.latency_p99, b.latency_p99);
  }
  // The aggregated series closes at the makespan with the final totals.
  EXPECT_EQ(lone.samples.back().completed, lone.completed);
}

TEST(Frontend, RejectsEngineUnrunnableMixOnConstruction) {
  FrontendConfig config;
  config.service = congested_config();
  config.service.mix.push_back({JobKind::kByz, Config{.n = 2, .m = 1, .u = 1},
                                0, Value::of(17), {1}});
  EXPECT_THROW(ServiceFrontend{config}, UnsupportedConfig);
}

#ifndef DA_METRICS_DISABLED
TEST(Frontend, SpansMergeAcrossShardsWithGlobalJobIds) {
  FrontendConfig config;
  config.service = congested_config();
  config.service.offered = 60;
  config.service.record_spans = true;
  config.shards = 2;
  const FrontendResult result = run_frontend(config);
  ASSERT_FALSE(result.spans.empty());
  std::set<std::int64_t> jobs_seen;
  for (const obs::Span& span : result.spans) {
    if (span.name == "job") jobs_seen.insert(span.job);
  }
  // Every offered job closes exactly one job span (completed or shed),
  // under its global id.
  EXPECT_EQ(jobs_seen.size(), config.service.offered);
  EXPECT_EQ(*jobs_seen.begin(), 0);
  EXPECT_EQ(*jobs_seen.rbegin(),
            static_cast<std::int64_t>(config.service.offered) - 1);
}
#endif

}  // namespace
}  // namespace da::service
