// Causal span tracing + streaming quantile telemetry (src/obs/spans,
// src/obs/quantiles, src/obs/exposition): sketch math and exact-merge
// associativity, span export round-trips, cross-runtime phase-span
// identity, and the service's jobs-invariant span/sketch/sample exports.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/byz.hpp"
#include "event/event_runner.hpp"
#include "faults/adversaries.hpp"
#include "inject/injection_network.hpp"
#include "obs/exposition.hpp"
#include "obs/quantiles.hpp"
#include "obs/spans.hpp"
#include "rt/threaded_runner.hpp"
#include "service/service.hpp"
#include "sim/round_engine.hpp"
#include "util/rng.hpp"

namespace da {
namespace {

using obs::QuantileSketch;
using obs::Span;
using obs::SpanSink;

// ----------------------------------------------------------- sketches --

TEST(QuantileSketch, BucketOfCoversAllDoubles) {
  EXPECT_EQ(QuantileSketch::bucket_of(0.0), 0u);
  EXPECT_EQ(QuantileSketch::bucket_of(-1.0), 0u);
  EXPECT_EQ(QuantileSketch::bucket_of(std::nan("")), 0u);
  EXPECT_EQ(QuantileSketch::bucket_of(std::ldexp(1.0, -40)), 0u);
  EXPECT_EQ(QuantileSketch::bucket_of(std::numeric_limits<double>::infinity()),
            QuantileSketch::kBuckets - 1);
  EXPECT_EQ(QuantileSketch::bucket_of(std::ldexp(1.0, 20)),
            QuantileSketch::kBuckets - 1);
  // Monotone over the covered range.
  std::size_t prev = 0;
  for (double v = 1e-5; v < 4000.0; v *= 1.07) {
    const std::size_t b = QuantileSketch::bucket_of(v);
    EXPECT_GE(b, prev) << v;
    prev = b;
  }
}

TEST(QuantileSketch, BucketMidIsInsideItsBucket) {
  for (double v : {0.001, 0.5, 1.0, 1.5, 3.0, 42.0, 1000.0}) {
    const std::size_t b = QuantileSketch::bucket_of(v);
    const double mid = QuantileSketch::bucket_mid(b);
    EXPECT_EQ(QuantileSketch::bucket_of(mid), b) << v;
  }
}

TEST(QuantileSketch, QuantileWithinRelativeErrorBound) {
  QuantileSketch sketch;
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const double v = 0.1 + 10.0 * rng.uniform();
    values.push_back(v);
    sketch.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const double approx = sketch.quantile(q);
    // 2^(1/32)-1 bucket width plus nearest-rank slack.
    EXPECT_NEAR(approx, exact, exact * 0.05 + 1e-9) << q;
  }
  EXPECT_EQ(sketch.count(), 5000u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), sketch.min());
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), sketch.max());
}

TEST(QuantileSketch, EmptyAndSingletonBehave) {
  QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
  sketch.record(3.25);
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_DOUBLE_EQ(sketch.min(), 3.25);
  EXPECT_DOUBLE_EQ(sketch.max(), 3.25);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 3.25);  // clamped to [min, max]
}

TEST(QuantileSketch, MergeEqualsBulkRecord) {
  QuantileSketch a;
  QuantileSketch b;
  QuantileSketch bulk;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform() * 100.0;
    (i % 2 == 0 ? a : b).record(v);
    bulk.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.serialize(), bulk.serialize());
  EXPECT_EQ(a.count(), bulk.count());
}

// The determinism linchpin: merging thread-local sketches must yield the
// same canonical state no matter how the flush order associates.
TEST(QuantileSketch, MergeIsAssociativeAndCommutative) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    QuantileSketch parts[3];
    for (int i = 0; i < 200; ++i) {
      parts[rng.below(3)].record(rng.uniform() * 1000.0 - 200.0);
    }
    QuantileSketch left = parts[0];   // (a + b) + c
    left.merge(parts[1]);
    left.merge(parts[2]);
    QuantileSketch right = parts[2];  // a + (c + b), a folded last
    right.merge(parts[1]);
    right.merge(parts[0]);
    EXPECT_EQ(left.serialize(), right.serialize()) << trial;
  }
}

TEST(QuantileSketch, SerializeExcludesSum) {
  // Same samples in different order: sums may differ in the last ulp,
  // canonical serialization must not.
  QuantileSketch fwd;
  QuantileSketch rev;
  std::vector<double> values;
  Rng rng(17);
  for (int i = 0; i < 300; ++i) values.push_back(rng.uniform() * 7.0 + 0.01);
  for (double v : values) fwd.record(v);
  std::reverse(values.begin(), values.end());
  for (double v : values) rev.record(v);
  EXPECT_EQ(fwd.serialize(), rev.serialize());
  EXPECT_NE(fwd.serialize().find("qsketch/1"), std::string::npos);
}

// -------------------------------------------------------------- spans --

TEST(Span, IdDerivesFromIdentity) {
  Span s;
  s.name = "round";
  s.job = 12;
  s.sub = 0;
  s.round = 3;
  EXPECT_EQ(s.id(), "round:12.0#3");
  Span phase;
  phase.name = "send";
  phase.round = 2;
  EXPECT_EQ(phase.id(), "send#2");
}

TEST(Span, JsonRoundTrip) {
  Span s;
  s.name = "inst";
  s.job = 4;
  s.sub = 1;
  s.t0 = 1.5;
  s.t1 = 3.25;
  s.parent = "job:4";
  s.tags = {{"rounds", 2}, {"inj_dropped", 1}};
  const auto back = Span::from_json(s.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
}

TEST(Span, FromJsonRejectsForgedId) {
  Span s;
  s.name = "job";
  s.job = 9;
  obs::Json j = s.to_json();
  j.set("id", "job:8");  // id no longer matches the identity fields
  EXPECT_FALSE(Span::from_json(j).has_value());
}

TEST(Span, CanonicalizeIsEmissionOrderIndependent) {
  std::vector<Span> spans;
  for (int job = 2; job >= 0; --job) {
    for (int r = 1; r >= 0; --r) {
      Span s;
      s.name = "round";
      s.job = job;
      s.sub = 0;
      s.round = r;
      s.t0 = r;
      s.t1 = r + 1;
      spans.push_back(s);
    }
  }
  std::vector<Span> shuffled = spans;
  std::reverse(shuffled.begin(), shuffled.end());
  EXPECT_EQ(obs::spans_to_jsonl(spans), obs::spans_to_jsonl(shuffled));
}

TEST(Span, JsonlRoundTripAndBadLineRejected) {
  Span s;
  s.name = "queue";
  s.job = 1;
  s.t1 = 0.5;
  const std::string jsonl = obs::spans_to_jsonl({s});
  std::string error;
  const auto parsed = obs::read_spans_jsonl(jsonl, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->front(), s);
  EXPECT_FALSE(obs::read_spans_jsonl("{not json\n", &error).has_value());
}

#ifndef DA_METRICS_DISABLED

TEST(SpanSink, RendersPhaseTriplesPerRound) {
  SpanSink sink;
  sink.note_send(0, 4);
  sink.note_deliver(0, 3);  // one message dropped
  sink.note_resolve(0, 4);
  sink.note_send(1, 12);
  sink.note_deliver(1, 12);
  sink.note_resolve(1, 4);
  sink.note_done(2);
  const std::vector<Span> spans = sink.round_spans();
  ASSERT_EQ(spans.size(), 7u);  // 3 per round + decide
  EXPECT_EQ(spans[0].id(), "send#0");
  EXPECT_EQ(spans[1].id(), "deliver#0");
  EXPECT_EQ(spans[1].parent, "send#0");
  const auto dropped = std::find_if(
      spans[1].tags.begin(), spans[1].tags.end(),
      [](const auto& tag) { return tag.first == "dropped"; });
  ASSERT_NE(dropped, spans[1].tags.end());
  EXPECT_EQ(dropped->second, 1);
  EXPECT_EQ(spans[2].id(), "resolve#0");
  EXPECT_EQ(spans[2].parent, "deliver#0");
  EXPECT_EQ(spans.back().name, "decide");
  EXPECT_DOUBLE_EQ(spans.back().t0, 2.0);
}

// The three runtimes must export byte-identical phase spans for the same
// scenario — the span analogue of the cross-runtime decision contract.
TEST(SpanSink, CrossRuntimeByteIdentical) {
  const Config config{.n = 5, .m = 1, .u = 2};
  const ScenarioSpec spec{
      .config = config, .sender = 0, .sender_value = Value::of(17),
      .faulty = {2, 4}};

  const auto run_sim = [&] {
    SpanSink sink;
    auto adversary = faults::constant_liar(Value::of(5));
    sim::RunOptions options;
    options.faulty = spec.faulty;
    options.adversary = adversary.get();
    options.spans = &sink;
    sim::RoundEngine engine(
        core::make_byz_processes(config, spec.sender, spec.sender_value),
        std::move(options));
    (void)engine.run();
    return obs::spans_to_jsonl(sink.round_spans());
  };
  const auto run_threaded = [&] {
    SpanSink sink;
    auto adversary = faults::constant_liar(Value::of(5));
    sim::RunOptions options;
    options.faulty = spec.faulty;
    options.adversary = adversary.get();
    options.spans = &sink;
    rt::ThreadedRunner runner(
        core::make_byz_processes(config, spec.sender, spec.sender_value),
        std::move(options));
    (void)runner.run();
    return obs::spans_to_jsonl(sink.round_spans());
  };
  const auto run_event = [&] {
    SpanSink sink;
    auto adversary = faults::constant_liar(Value::of(5));
    sim::RunOptions options;
    options.faulty = spec.faulty;
    options.adversary = adversary.get();
    options.spans = &sink;
    event::EventRunner runner(
        core::make_byz_processes(config, spec.sender, spec.sender_value),
        std::move(options), event::TimingModel{},
        event::perfect_clocks(config.n));
    (void)runner.run();
    return obs::spans_to_jsonl(sink.round_spans());
  };

  const std::string sim_spans = run_sim();
  EXPECT_FALSE(sim_spans.empty());
  EXPECT_EQ(sim_spans, run_threaded());
  EXPECT_EQ(sim_spans, run_event());
}

#endif  // DA_METRICS_DISABLED

// ------------------------------------------------------------ service --

service::ServiceConfig obs_service_config(int jobs) {
  service::ServiceConfig config;
  config.arrivals = service::ArrivalSpec::poisson(12.0);
  config.offered = 120;
  config.cap = 12;
  config.seed = 7;
  config.jobs = jobs;
  config.record_spans = true;
  config.sample_every = 3.0;
  auto plan = inject::FaultPlan::parse(
      "seed 9\ndrop from=2 to=1 round=1\ndelay from=1 to=*\n");
  config.fault_plan = *plan;
  config.inject_every = 2;
  return config;
}

TEST(ServiceObs, SpansAndSketchesIdenticalAcrossJobs) {
  const service::ServiceResult base =
      service::run_service(obs_service_config(1));
  for (int jobs : {2, 4}) {
    const service::ServiceResult other =
        service::run_service(obs_service_config(jobs));
    EXPECT_EQ(base.digest(), other.digest()) << jobs;
    EXPECT_EQ(obs::spans_to_jsonl(base.spans),
              obs::spans_to_jsonl(other.spans))
        << jobs;
    EXPECT_EQ(base.latency_sketch.serialize(),
              other.latency_sketch.serialize())
        << jobs;
    EXPECT_EQ(base.queue_sketch.serialize(), other.queue_sketch.serialize())
        << jobs;
    ASSERT_EQ(base.samples.size(), other.samples.size()) << jobs;
    for (std::size_t i = 0; i < base.samples.size(); ++i) {
      EXPECT_EQ(base.samples[i].time, other.samples[i].time);
      EXPECT_EQ(base.samples[i].active, other.samples[i].active);
      EXPECT_EQ(base.samples[i].queued, other.samples[i].queued);
      EXPECT_EQ(base.samples[i].completed, other.samples[i].completed);
      EXPECT_EQ(base.samples[i].latency_p50, other.samples[i].latency_p50);
      EXPECT_EQ(base.samples[i].latency_p99, other.samples[i].latency_p99);
    }
  }
}

TEST(ServiceObs, WarmRerunExportsIdenticalSpans) {
  service::AgreementService svc(obs_service_config(2));
  const service::ServiceResult cold = svc.run();
  const service::ServiceResult warm = svc.run();  // recycled slots
  EXPECT_EQ(cold.digest(), warm.digest());
  EXPECT_EQ(obs::spans_to_jsonl(cold.spans), obs::spans_to_jsonl(warm.spans));
  EXPECT_EQ(cold.latency_sketch.serialize(), warm.latency_sketch.serialize());
}

TEST(ServiceObs, RecordingSpansDoesNotPerturbTheRun) {
  service::ServiceConfig with = obs_service_config(1);
  service::ServiceConfig without = with;
  without.record_spans = false;
  without.sample_every = 0.0;
  const service::ServiceResult a = service::run_service(with);
  const service::ServiceResult b = service::run_service(without);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.artifact(), b.artifact());
  EXPECT_TRUE(b.spans.empty());
  EXPECT_TRUE(b.samples.empty());
  // The always-on sketches are independent of the span switch.
  EXPECT_EQ(a.latency_sketch.serialize(), b.latency_sketch.serialize());
}

TEST(ServiceObs, SpanTreeIsWellFormed) {
  const service::ServiceResult result =
      service::run_service(obs_service_config(1));
#ifndef DA_METRICS_DISABLED
  ASSERT_FALSE(result.spans.empty());
  // Unique ids, resolvable parents, child windows inside parents.
  std::map<std::string, const Span*> by_id;
  for (const Span& s : result.spans) {
    EXPECT_TRUE(by_id.emplace(s.id(), &s).second) << s.id();
    EXPECT_LE(s.t0, s.t1) << s.id();
  }
  bool saw_rule_tag = false;
  for (const Span& s : result.spans) {
    if (!s.parent.empty()) {
      const auto it = by_id.find(s.parent);
      ASSERT_NE(it, by_id.end()) << s.parent;
      EXPECT_GE(s.t0, it->second->t0 - 1e-9) << s.id();
      EXPECT_LE(s.t1, it->second->t1 + 1e-9) << s.id();
    }
    for (const auto& [key, value] : s.tags) {
      if (key.rfind("rule", 0) == 0) saw_rule_tag = true;
    }
  }
  // The fault plan left its fingerprints on at least one round span.
  EXPECT_TRUE(saw_rule_tag);
  // Canonical order: re-canonicalizing is a no-op.
  std::vector<Span> sorted = result.spans;
  obs::canonicalize(sorted);
  EXPECT_EQ(sorted, result.spans);
#else
  // Kill switch: span recording compiles to nothing.
  EXPECT_TRUE(result.spans.empty());
#endif
}

// ------------------------------------------------- injection rule hits --

TEST(InjectionNetworkObs, RuleHitsAttributeDecisions) {
  auto plan = inject::FaultPlan::parse(
      "seed 3\ndrop from=1 to=2 round=0\ndup from=3 to=* copies=2\n");
  ASSERT_TRUE(plan.has_value());
  inject::InjectionNetwork net(*plan);
  ASSERT_EQ(net.stats().rule_hits.size(), 2u);

  sim::Message hit_drop{.from = 1, .to = 2, .round = 0};
  sim::Message hit_dup{.from = 3, .to = 0, .round = 1};
  sim::Message miss{.from = 0, .to = 1, .round = 0};
  (void)net.transit_fanout(hit_drop);
  (void)net.transit_fanout(hit_dup);
  (void)net.transit_fanout(miss);
  EXPECT_EQ(net.stats().rule_hits[0], 1u);
  EXPECT_EQ(net.stats().rule_hits[1], 1u);
  EXPECT_EQ(net.stats().examined, 3u);
  EXPECT_EQ(net.stats().dropped, 1u);
  EXPECT_EQ(net.stats().duplicated, 1u);

  net.reset_stats();
  EXPECT_EQ(net.stats().examined, 0u);
  ASSERT_EQ(net.stats().rule_hits.size(), 2u);
  EXPECT_EQ(net.stats().rule_hits[0], 0u);

  // Reseeding changes only the seed-dependent draws, not the rule table.
  net.reseed(99);
  (void)net.transit_fanout(hit_drop);
  EXPECT_EQ(net.stats().rule_hits[0], 1u);
}

// --------------------------------------------------------- exposition --

TEST(Exposition, RendersAllMetricKinds) {
  obs::MetricsSnapshot snap;
  snap.counters["sim.messages_sent"] = 42;
  snap.gauges["service.cap"] = 256.0;
  obs::HistogramSnapshot hist;
  hist.count = 2;
  hist.sum = 3.0;
  hist.min = 1.0;
  hist.max = 2.0;
  hist.buckets[obs::HistogramSnapshot::bucket_of(1.0)] += 1;
  hist.buckets[obs::HistogramSnapshot::bucket_of(2.0)] += 1;
  snap.histograms["sim.round_ms"] = hist;
  QuantileSketch sketch;
  sketch.record(1.0);
  sketch.record(2.0);
  sketch.record(3.0);
  snap.quantiles["service.decision_latency"] = sketch;

  const std::string text = obs::to_exposition(snap);
  EXPECT_NE(text.find("# TYPE da_sim_messages_sent counter"),
            std::string::npos);
  EXPECT_NE(text.find("da_sim_messages_sent 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE da_service_cap gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE da_sim_round_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("da_sim_round_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE da_service_decision_latency summary"),
            std::string::npos);
  EXPECT_NE(text.find("da_service_decision_latency{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("da_service_decision_latency_count 3"),
            std::string::npos);
  // Deterministic output: rendering twice is byte-identical.
  EXPECT_EQ(text, obs::to_exposition(snap));
}

}  // namespace
}  // namespace da
