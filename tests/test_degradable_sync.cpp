#include "clocksync/degradable_sync.hpp"

#include <gtest/gtest.h>

#include "faults/adversaries.hpp"
#include "util/rng.hpp"

namespace da::clocksync {
namespace {

ClockEnsemble make_ensemble(int n, std::vector<NodeId> faulty,
                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<HardwareClock> clocks;
  for (int i = 0; i < n; ++i) {
    clocks.emplace_back((rng.uniform() * 2 - 1) * 1e-4, 0.0);
  }
  const FaultyReading wild = [](NodeId reader, NodeId owner, double t) {
    return t + 0.5 * ((reader + owner) % 3 - 1);  // wildly wrong, two-faced
  };
  return ClockEnsemble(std::move(clocks), std::move(faulty), wild);
}

protocols::ic::AdversaryFactory noisy_adversaries(std::uint64_t seed) {
  return [seed](NodeId sender) {
    return faults::random_noise(mix64(seed, static_cast<std::uint64_t>(sender)),
                                -1000000, 1000000, 0.3);
  };
}

TEST(DegradableSync, NoFaultsEveryoneSyncs) {
  auto ensemble = make_ensemble(7, {}, 1);
  const DegradableSyncParams params{.m = 1, .u = 4};
  const auto result = degradable_sync_round(
      ensemble, 100.0, params, [](NodeId) { return faults::honest(); });
  EXPECT_TRUE(result.detected.empty());
  EXPECT_EQ(result.synced.size(), 7u);
  EXPECT_TRUE(result.conjecture_holds);
  EXPECT_LT(ensemble.skew(100.0), params.epsilon);
}

TEST(DegradableSync, WithinMEveryFaultFreeSyncs) {
  // f = m = 1: exact agreement on every coordinate -> identical vectors ->
  // identical corrections.
  auto ensemble = make_ensemble(7, {3}, 2);
  const DegradableSyncParams params{.m = 1, .u = 4};
  const auto result =
      degradable_sync_round(ensemble, 50.0, params, noisy_adversaries(9));
  EXPECT_TRUE(result.detected.empty());
  EXPECT_EQ(result.synced.size(), 6u);
  EXPECT_TRUE(result.conjecture_holds);
}

TEST(DegradableSync, ConjectureHoldsInDegradedRange) {
  // m < f <= u: the paper's conjecture — either m+1 synced or m+1 detect.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto ensemble = make_ensemble(7, {1, 4, 6}, seed);  // f = 3
    const DegradableSyncParams params{.m = 1, .u = 4};
    const auto result = degradable_sync_round(ensemble, 10.0, params,
                                              noisy_adversaries(seed * 31));
    EXPECT_TRUE(result.conjecture_holds)
        << "seed " << seed << ": synced=" << result.synced.size()
        << " detected=" << result.detected.size();
  }
}

TEST(DegradableSync, OmittingAdversaryTriggersDetection) {
  // An adversary that mostly omits pushes many coordinates to V_d; with
  // f = 3 > m the fault-free nodes must notice (> m defaults) and detect.
  auto ensemble = make_ensemble(7, {1, 4, 6}, 5);
  const DegradableSyncParams params{.m = 1, .u = 4};
  const auto result = degradable_sync_round(
      ensemble, 10.0, params, [](NodeId) { return faults::silent(); });
  EXPECT_GE(static_cast<int>(result.detected.size()), params.m + 1);
  EXPECT_TRUE(result.conjecture_holds);
}

TEST(DegradableSync, DetectionIsSoundWithFewFaults) {
  // f <= m can never produce more than m default coordinates, so no
  // fault-free node ever *falsely* detects.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto ensemble = make_ensemble(6, {2}, seed);
    const DegradableSyncParams params{.m = 1, .u = 3};
    const auto result = degradable_sync_round(
        ensemble, 20.0, params, [](NodeId) { return faults::silent(); });
    EXPECT_TRUE(result.detected.empty()) << "seed " << seed;
  }
}

TEST(DegradableSync, PeriodicResyncBoundsDrift) {
  // Fault-free clocks with real drift, resynced every 10s for 8 rounds:
  // the post-resync skew stays bounded by quantization + drift-per-period,
  // far below the unsynchronized divergence.
  Rng rng(77);
  std::vector<HardwareClock> clocks;
  for (int i = 0; i < 7; ++i) {
    clocks.emplace_back((rng.uniform() * 2 - 1) * 1e-4,
                        (rng.uniform() * 2 - 1) * 1e-5);
  }
  ClockEnsemble ensemble(std::move(clocks), {}, nullptr);
  const DegradableSyncParams params{.m = 1, .u = 4};
  const auto run = degradable_sync_run(
      ensemble, 0.0, 10.0, 8, params, [](NodeId) { return faults::honest(); });
  ASSERT_EQ(run.skew_after.size(), 8u);
  EXPECT_EQ(run.rounds_conjecture_held, 8);
  // Unsynchronized, 80s of +-1e-5 drift accumulates up to ~1.6e-3 skew;
  // resynced, each round resets to ~quantum-level agreement.
  EXPECT_LT(run.max_skew_after(), 1e-4);
  for (int count : run.synced_counts) EXPECT_EQ(count, 7);
}

TEST(DegradableSync, PeriodicResyncUnderPersistentFaults) {
  auto ensemble = make_ensemble(7, {1, 4, 6}, 31);
  const DegradableSyncParams params{.m = 1, .u = 4};
  const auto run = degradable_sync_run(ensemble, 0.0, 10.0, 5, params,
                                       noisy_adversaries(13));
  EXPECT_EQ(run.rounds_conjecture_held, 5);
  for (std::size_t r = 0; r < run.synced_counts.size(); ++r) {
    EXPECT_TRUE(run.synced_counts[r] >= params.m + 1 ||
                run.detected_counts[r] >= params.m + 1)
        << "round " << r;
  }
}

TEST(DegradableSync, SyncedSkewWithinEpsilon) {
  auto ensemble = make_ensemble(7, {2, 5}, 11);
  const DegradableSyncParams params{.m = 1, .u = 4};
  const auto result =
      degradable_sync_round(ensemble, 30.0, params, noisy_adversaries(3));
  EXPECT_LE(result.synced_skew, params.epsilon);
  if (result.synced.size() >= 2) {
    EXPECT_LE(ensemble.skew(30.0, result.synced), params.epsilon + 1e-9);
  }
}

}  // namespace
}  // namespace da::clocksync
