#include <gtest/gtest.h>

#include "core/agreement.hpp"
#include "core/byz.hpp"
#include "faults/adversaries.hpp"

namespace da {
namespace {

ScenarioSpec spec_for(Config config, NodeId sender, Value v,
                      std::vector<NodeId> faulty) {
  ScenarioSpec spec;
  spec.config = config;
  spec.sender = sender;
  spec.sender_value = v;
  spec.faulty = std::move(faulty);
  return spec;
}

TEST(ByzDepth, MatchesRecursionDepth) {
  EXPECT_EQ(core::byz_depth(0), 2);  // echo completion for m = 0
  EXPECT_EQ(core::byz_depth(1), 2);
  EXPECT_EQ(core::byz_depth(2), 3);
  EXPECT_EQ(core::byz_depth(3), 4);
}

TEST(ByzMessageCount, ClosedFormMatchesSimulator) {
  for (const auto& [n, m] : std::vector<std::pair<int, int>>{
           {4, 1}, {5, 1}, {7, 1}, {7, 2}, {9, 2}, {10, 3}}) {
    const Config config{.n = n, .m = m, .u = m};
    const DegradableAgreement protocol(config);
    const auto spec = spec_for(config, 0, Value::of(5), {});
    const Outcome outcome = protocol.run(spec, nullptr);
    EXPECT_EQ(outcome.messages_sent, core::byz_message_count(n, m))
        << "n=" << n << " m=" << m;
  }
}

TEST(ByzBasic, NoFaultsEveryoneDecidesSenderValue) {
  const Config config{.n = 7, .m = 1, .u = 4};
  const DegradableAgreement protocol(config);
  const Outcome outcome =
      protocol.run(spec_for(config, 0, Value::of(42), {}), nullptr);
  for (NodeId i = 0; i < 7; ++i) {
    EXPECT_EQ(outcome.decision_of(i), Value::of(42));
  }
}

TEST(ByzBasic, D1HoldsUnderOneLiar) {
  const Config config{.n = 7, .m = 1, .u = 4};
  const DegradableAgreement protocol(config);
  auto adversary = faults::constant_liar(Value::of(99));
  const auto spec = spec_for(config, 0, Value::of(42), {3});
  const ConditionReport report = protocol.run_and_check(spec, adversary.get());
  EXPECT_EQ(report.applied, Condition::kD1);
  EXPECT_TRUE(report.satisfied) << report.detail;
  EXPECT_EQ(report.value_class.size(), 5u);
}

TEST(ByzBasic, D2HoldsUnderFaultySender) {
  const Config config{.n = 7, .m = 2, .u = 2};
  const DegradableAgreement protocol(config);
  auto adversary = faults::equivocator(Value::of(1), Value::of(2));
  const auto spec = spec_for(config, 0, Value::of(42), {0, 4});
  const ConditionReport report = protocol.run_and_check(spec, adversary.get());
  EXPECT_EQ(report.applied, Condition::kD2);
  EXPECT_TRUE(report.satisfied) << report.detail;
}

TEST(ByzBasic, D3DegradedModeSplitsIntoAtMostTwoClasses) {
  const Config config{.n = 7, .m = 1, .u = 4};
  const DegradableAgreement protocol(config);
  auto adversary = faults::pivot_equivocator(Value::of(42), Value::of(13), 4);
  const auto spec = spec_for(config, 0, Value::of(42), {1, 2, 3});
  const ConditionReport report = protocol.run_and_check(spec, adversary.get());
  EXPECT_EQ(report.applied, Condition::kD3);
  EXPECT_TRUE(report.satisfied) << report.detail;
  EXPECT_TRUE(report.violators.empty());
}

TEST(ByzBasic, D4FaultySenderInDegradedMode) {
  const Config config{.n = 7, .m = 1, .u = 4};
  const DegradableAgreement protocol(config);
  auto adversary = faults::equivocator(Value::of(5), Value::of(9));
  const auto spec = spec_for(config, 0, Value::of(42), {0, 2, 5});
  const ConditionReport report = protocol.run_and_check(spec, adversary.get());
  EXPECT_EQ(report.applied, Condition::kD4);
  EXPECT_TRUE(report.satisfied) << report.detail;
}

TEST(ByzBasic, MEqualsUIsLamportAgreement) {
  // With m = u the protocol must deliver plain Byzantine agreement; compare
  // decisions against OM(m) under the same adversary on all-fault-free and
  // light-fault scenarios.
  const Config config{.n = 7, .m = 2, .u = 2};
  const DegradableAgreement byz(config);
  const LamportAgreement om(7, 2);
  for (const std::vector<NodeId>& faulty :
       {std::vector<NodeId>{}, {1}, {1, 5}}) {
    auto adversary = faults::equivocator(Value::of(3), Value::of(8));
    const auto spec = spec_for(config, 0, Value::of(3), faulty);
    const ConditionReport report = byz.run_and_check(spec, adversary.get());
    EXPECT_TRUE(report.satisfied) << report.detail;

    auto adversary2 = faults::equivocator(Value::of(3), Value::of(8));
    const Outcome om_out = om.run(spec, adversary2.get());
    const ConditionReport om_report = check_conditions(spec, om_out.decisions);
    EXPECT_TRUE(om_report.satisfied) << om_report.detail;
  }
}

TEST(ByzBasic, MinimalFeasibleSystems) {
  // N = 2m+u+1 exactly — the bound is tight (Theorem 2 + Theorem 1).
  for (const auto& [m, u] : std::vector<std::pair<int, int>>{
           {0, 1}, {1, 1}, {1, 2}, {1, 3}, {2, 2}}) {
    const Config config{.n = 2 * m + u + 1, .m = m, .u = u};
    ASSERT_TRUE(config.feasible());
    const DegradableAgreement protocol(config);
    // Worst allowed fault load, sender fault-free, equivocating faults.
    std::vector<NodeId> faulty;
    for (int i = 0; i < u; ++i) faulty.push_back(i + 1);
    auto adversary = faults::equivocator(Value::of(7), Value::of(8));
    const auto spec = spec_for(config, 0, Value::of(7), faulty);
    const ConditionReport report = protocol.run_and_check(spec, adversary.get());
    EXPECT_TRUE(report.satisfied)
        << "m=" << m << " u=" << u << ": " << report.detail;
    EXPECT_TRUE(report.corollary_m_plus_1);
  }
}

TEST(ByzBasic, CorollaryMPlusOneAgreement) {
  // N > 2m+u, f <= u: at least m+1 fault-free nodes share a value.
  const Config config{.n = 8, .m = 1, .u = 4};
  const DegradableAgreement protocol(config);
  for (int f = 0; f <= 4; ++f) {
    std::vector<NodeId> faulty;
    for (int i = 0; i < f; ++i) faulty.push_back(i + 2);
    auto adversary = faults::random_noise(1234 + f, 0, 9, 0.3);
    const auto spec = spec_for(config, 0, Value::of(4), faulty);
    const ConditionReport report = protocol.run_and_check(spec, adversary.get());
    EXPECT_TRUE(report.satisfied) << report.detail;
    EXPECT_TRUE(report.corollary_m_plus_1) << "f=" << f;
    EXPECT_GE(report.largest_agreeing_class, 2);
  }
}

TEST(ByzBasic, MZeroEchoProtocol) {
  // 0/2-degradable agreement with 3 nodes: sender fault-free + 1..2 faulty.
  const Config config{.n = 3, .m = 0, .u = 2};
  const DegradableAgreement protocol(config);
  auto adversary = faults::constant_liar(Value::of(9));
  const auto spec = spec_for(config, 0, Value::of(4), {1});
  const ConditionReport report = protocol.run_and_check(spec, adversary.get());
  EXPECT_EQ(report.applied, Condition::kD3);
  EXPECT_TRUE(report.satisfied) << report.detail;
}

TEST(ByzBasic, MZeroFaultySenderSatisfiesD4) {
  const Config config{.n = 4, .m = 0, .u = 3};
  const DegradableAgreement protocol(config);
  auto adversary = faults::equivocator(Value::of(5), Value::of(6));
  const auto spec = spec_for(config, 0, Value::of(5), {0});
  const ConditionReport report = protocol.run_and_check(spec, adversary.get());
  EXPECT_EQ(report.applied, Condition::kD4);
  EXPECT_TRUE(report.satisfied) << report.detail;
}

TEST(ByzBasic, DecisionsIncludeSender) {
  const Config config{.n = 5, .m = 1, .u = 2};
  const DegradableAgreement protocol(config);
  const Outcome outcome =
      protocol.run(spec_for(config, 2, Value::of(3), {}), nullptr);
  EXPECT_EQ(outcome.decision_of(2), Value::of(3));
}

TEST(ByzBasic, ConfigMismatchRejected) {
  const Config config{.n = 5, .m = 1, .u = 2};
  const DegradableAgreement protocol(config);
  const Config other{.n = 6, .m = 1, .u = 2};
  EXPECT_THROW((void)protocol.run(spec_for(other, 0, Value::of(1), {}),
                                  nullptr),
               std::logic_error);
}

}  // namespace
}  // namespace da
