#include "protocols/lamport/om.hpp"

#include <gtest/gtest.h>

#include "core/agreement.hpp"
#include "faults/adversaries.hpp"
#include "faults/search.hpp"
#include "sim/runner.hpp"

namespace da {
namespace {

Outcome run_om(int n, int m, NodeId sender, Value v,
               std::vector<NodeId> faulty, sim::Adversary* adversary) {
  const LamportAgreement protocol(n, m);
  ScenarioSpec spec;
  spec.config = Config{.n = n, .m = m, .u = m};
  spec.sender = sender;
  spec.sender_value = v;
  spec.faulty = std::move(faulty);
  return protocol.run(spec, adversary);
}

TEST(Lamport, OmZeroBroadcast) {
  const Outcome outcome = run_om(4, 0, 0, Value::of(5), {}, nullptr);
  for (NodeId i = 0; i < 4; ++i) EXPECT_EQ(outcome.decision_of(i), Value::of(5));
}

TEST(Lamport, RoundsAndMessages) {
  EXPECT_EQ(protocols::lamport::om_rounds(0), 1);
  EXPECT_EQ(protocols::lamport::om_rounds(2), 3);
  EXPECT_EQ(protocols::lamport::om_message_count(4, 1), 3u + 6u);
  EXPECT_EQ(protocols::lamport::om_message_count(7, 2), 6u + 30u + 120u);
}

TEST(Lamport, ToleratesOneFaultWithFourNodes) {
  for (const bool sender_faulty : {false, true}) {
    auto adversary = faults::equivocator(Value::of(1), Value::of(2));
    const std::vector<NodeId> faulty{sender_faulty ? 0 : 2};
    const Outcome outcome =
        run_om(4, 1, 0, Value::of(7), faulty, adversary.get());
    std::vector<NodeId> fault_free;
    for (NodeId i = 1; i < 4; ++i) {
      if (i != faulty[0]) fault_free.push_back(i);
    }
    EXPECT_TRUE(protocols::lamport::byzantine_agreement_holds(
        0, Value::of(7), sender_faulty, fault_free, outcome.decisions));
  }
}

TEST(Lamport, ExhaustiveAgreementAtClassicalBound) {
  // OM(1) with n=4 and OM(2) with n=7: agreement for every faulty subset
  // of size <= m under the standard family.
  for (const auto& [n, m] : std::vector<std::pair<int, int>>{{4, 1}, {7, 2}}) {
    const auto family = faults::standard_family(5);
    bool all_ok = true;
    faults::for_each_subset(n, m, [&](const std::vector<NodeId>& faulty) {
      for (const auto& factory : family) {
        ScenarioSpec spec;
        spec.config = Config{.n = n, .m = m, .u = m};
        spec.sender = 0;
        spec.sender_value = Value::of(9);
        spec.faulty = faulty;
        auto adversary = factory.make(spec);
        const Outcome outcome = run_om(n, m, 0, Value::of(9), faulty,
                                       adversary.get());
        const bool sender_faulty = spec.sender_faulty();
        if (!protocols::lamport::byzantine_agreement_holds(
                0, Value::of(9), sender_faulty, spec.fault_free_receivers(),
                outcome.decisions)) {
          all_ok = false;
        }
      }
    });
    EXPECT_TRUE(all_ok) << "n=" << n << " m=" << m;
  }
}

TEST(Lamport, BreaksBeyondClassicalBound) {
  // n=4, m=1 but f=2: OM makes no promise and a split liar indeed breaks
  // agreement — the contrast motivating degradable agreement (Section 3).
  auto adversary = faults::constant_liar(Value::of(50));
  const Outcome outcome =
      run_om(4, 1, 0, Value::of(7), {2, 3}, adversary.get());
  // The lone fault-free receiver 1: majority of {7, 50, 50} = 50: a wrong,
  // non-default value — an unsafe output.
  EXPECT_EQ(outcome.decision_of(1), Value::of(50));
}

TEST(Lamport, ThreeNodesOneTraitorImpossible) {
  // The classical 3-node impossibility: some adversary breaks n=3, m=1.
  bool broken = false;
  const auto family = faults::standard_family(17);
  faults::for_each_subset(3, 1, [&](const std::vector<NodeId>& faulty) {
    for (const auto& factory : family) {
      ScenarioSpec spec;
      spec.config = Config{.n = 3, .m = 1, .u = 1};
      spec.sender = 0;
      spec.sender_value = Value::of(9);
      spec.faulty = faulty;
      auto adversary = factory.make(spec);
      const Outcome outcome =
          run_om(3, 1, 0, Value::of(9), faulty, adversary.get());
      if (!protocols::lamport::byzantine_agreement_holds(
              0, Value::of(9), spec.sender_faulty(),
              spec.fault_free_receivers(), outcome.decisions)) {
        broken = true;
      }
    }
  });
  EXPECT_TRUE(broken);
}

TEST(Lamport, AgreesWithByzWhenNoFaults) {
  const Config config{.n = 6, .m = 1, .u = 3};
  const DegradableAgreement byz(config);
  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 2;
  spec.sender_value = Value::of(12);
  const Outcome byz_out = byz.run(spec, nullptr);
  const Outcome om_out = run_om(6, 1, 2, Value::of(12), {}, nullptr);
  EXPECT_EQ(byz_out.decisions, om_out.decisions);
}

}  // namespace
}  // namespace da
