#include <gtest/gtest.h>

#include "core/agreement.hpp"
#include "faults/adversaries.hpp"
#include "sim/network.hpp"

namespace da {
namespace {

/// Section 6.1: when more than m nodes are faulty, clock synchronization is
/// no longer guaranteed, so fault-free nodes may falsely time out each
/// other's messages. The claim: BYZ still satisfies the *degraded*
/// conditions D.3/D.4 under that relaxation (and D.1/D.2 whenever f <= m,
/// where clocks stay synchronized and no false timeouts occur).

TEST(RelaxedTimeouts, ExactModeUnaffectedWhenFWithinM) {
  const Config config{.n = 7, .m = 1, .u = 4};
  const DegradableAgreement protocol(config);
  sim::FalseTimeoutNetwork network(0.25, 42);
  network.set_active(false);  // f <= m: clock sync holds, no false timeouts

  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = Value::of(11);
  spec.faulty = {4};
  auto adversary = faults::constant_liar(Value::of(5));
  RunExtras extras;
  extras.network = &network;
  const Outcome outcome = protocol.run(spec, adversary.get(), extras);
  const ConditionReport report = check_conditions(spec, outcome.decisions);
  EXPECT_EQ(report.applied, Condition::kD1);
  EXPECT_TRUE(report.satisfied) << report.detail;
}

class RelaxedTimeoutSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RelaxedTimeoutSweep, DegradedConditionsSurviveFalseTimeouts) {
  const auto [f, drop_prob] = GetParam();
  const Config config{.n = 7, .m = 1, .u = 4};
  ASSERT_GT(f, config.m);  // the relaxation only applies past m faults
  ASSERT_LE(f, config.u);
  const DegradableAgreement protocol(config);

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::FalseTimeoutNetwork network(drop_prob, seed);
    network.set_active(true);

    for (const bool sender_faulty : {false, true}) {
      ScenarioSpec spec;
      spec.config = config;
      spec.sender = 0;
      spec.sender_value = Value::of(23);
      if (sender_faulty) spec.faulty.push_back(0);
      for (int i = static_cast<int>(spec.faulty.size()); i < f; ++i) {
        spec.faulty.push_back(i + 1);
      }
      auto adversary = faults::equivocator(Value::of(23), Value::of(9));
      RunExtras extras;
      extras.network = &network;
      const Outcome outcome = protocol.run(spec, adversary.get(), extras);
      const ConditionReport report = check_conditions(spec, outcome.decisions);
      EXPECT_EQ(report.applied,
                sender_faulty ? Condition::kD4 : Condition::kD3);
      EXPECT_TRUE(report.satisfied)
          << "seed=" << seed << " drop=" << drop_prob
          << " sender_faulty=" << sender_faulty << ": " << report.detail;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RelaxedTimeoutSweep,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(0.05, 0.2, 0.5)),
    [](const ::testing::TestParamInfo<std::tuple<int, double>>& info) {
      return "f" + std::to_string(std::get<0>(info.param)) + "_drop" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(RelaxedTimeouts, HeavyDropsPushTowardDefaultNotWrong) {
  // Even a 90% false-timeout rate can only grow the default class — no
  // fault-free receiver ever adopts a wrong value.
  const Config config{.n = 7, .m = 1, .u = 4};
  const DegradableAgreement protocol(config);
  sim::FalseTimeoutNetwork network(0.9, 7);
  network.set_active(true);

  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = Value::of(23);
  spec.faulty = {1, 2};
  auto adversary = faults::constant_liar(Value::of(9));
  RunExtras extras;
  extras.network = &network;
  const Outcome outcome = protocol.run(spec, adversary.get(), extras);
  for (NodeId r : spec.fault_free_receivers()) {
    const Value d = outcome.decision_of(r);
    EXPECT_TRUE(d == spec.sender_value || d.is_default())
        << "node " << r << " decided " << d.to_string();
  }
}

TEST(RelaxedTimeouts, ThreadedRuntimeSeesIdenticalDrops) {
  // The drop pattern is a pure function of message identity, so both
  // runtimes agree even under the relaxation.
  const Config config{.n = 6, .m = 1, .u = 3};
  const DegradableAgreement protocol(config);
  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = Value::of(3);
  spec.faulty = {2, 5};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::FalseTimeoutNetwork n1(0.3, seed);
    n1.set_active(true);
    sim::FalseTimeoutNetwork n2(0.3, seed);
    n2.set_active(true);
    auto a1 = faults::equivocator(Value::of(3), Value::of(4));
    auto a2 = faults::equivocator(Value::of(3), Value::of(4));
    RunExtras e1{.network = &n1};
    RunExtras e2{.network = &n2};
    const Outcome sim_out = protocol.run(spec, a1.get(), e1);
    const Outcome thr_out = protocol.run_threaded(spec, a2.get(), e2);
    EXPECT_EQ(sim_out.decisions, thr_out.decisions) << "seed " << seed;
  }
}

}  // namespace
}  // namespace da
