// Cross-runtime equivalence: the deterministic simulator, the
// thread-per-node runtime, and the event-driven runtime (with perfect
// clocks and latency within the timeout) must produce identical decisions
// for identical scenarios — the protocol body is written once, and all
// stochastic behaviour is a pure function of message identity.

#include <gtest/gtest.h>

#include "core/agreement.hpp"
#include "core/byz.hpp"
#include "event/event_runner.hpp"
#include "faults/adversaries.hpp"
#include "faults/search.hpp"
#include "rt/threaded_runner.hpp"
#include "util/rng.hpp"

namespace da {
namespace {

struct Case {
  Config config;
  int f;
  std::uint64_t seed;
};

class CrossRuntime : public ::testing::TestWithParam<Case> {};

TEST_P(CrossRuntime, AllThreeRuntimesAgree) {
  const auto& [config, f, seed] = GetParam();
  const DegradableAgreement protocol(config);
  const auto family = faults::standard_family(seed);

  Rng rng(seed);
  for (int trial = 0; trial < 3; ++trial) {
    ScenarioSpec spec;
    spec.config = config;
    spec.sender =
        static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(config.n)));
    spec.sender_value = Value::of(rng.range(1, 99));
    const auto subset = rng.subset(config.n, f);
    spec.faulty.assign(subset.begin(), subset.end());

    for (std::size_t k = 0; k < family.size(); k += 3) {
      const auto& factory = family[k];

      auto a1 = factory.make(spec);
      const Outcome sim_out = protocol.run(spec, a1.get());

      auto a2 = factory.make(spec);
      const Outcome thr_out = protocol.run_threaded(spec, a2.get());

      auto a3 = factory.make(spec);
      sim::RunOptions options;
      options.faulty = spec.faulty;
      options.adversary = a3.get();
      event::EventRunner event_runner(
          core::make_byz_processes(config, spec.sender, spec.sender_value),
          std::move(options), event::TimingModel{},
          event::perfect_clocks(config.n));
      const auto event_out = event_runner.run();

      EXPECT_EQ(sim_out.decisions, thr_out.decisions)
          << factory.name << " " << spec.to_string();
      EXPECT_EQ(sim_out.decisions, event_out.base.decisions)
          << factory.name << " " << spec.to_string();
      EXPECT_EQ(sim_out.messages_sent, event_out.base.messages_sent);
      EXPECT_EQ(event_out.false_timeouts, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CrossRuntime,
    ::testing::Values(Case{Config{.n = 5, .m = 1, .u = 2}, 2, 1},
                      Case{Config{.n = 7, .m = 1, .u = 4}, 3, 2},
                      Case{Config{.n = 7, .m = 2, .u = 2}, 2, 3},
                      Case{Config{.n = 6, .m = 0, .u = 5}, 4, 4},
                      Case{Config{.n = 9, .m = 2, .u = 4}, 4, 5}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "n" + std::to_string(info.param.config.n) + "_m" +
             std::to_string(info.param.config.m) + "_u" +
             std::to_string(info.param.config.u) + "_f" +
             std::to_string(info.param.f);
    });

TEST(CrossRuntimeExtra, FabricatingAdversaryStaysDeterministic) {
  // An adversary that *injects* duplicate-slot messages with conflicting
  // values exercises the total inbox order; both runtimes must still
  // agree decision-for-decision.
  class Duplicator final : public sim::Adversary {
   public:
    std::optional<sim::Message> corrupt(const sim::Message& msg) override {
      return msg;
    }
    std::vector<sim::Message> fabricate(NodeId node, int round) override {
      if (round != 1) return {};
      std::vector<sim::Message> out;
      // Duplicate relay slots with two different values.
      for (NodeId to = 0; to < 5; ++to) {
        if (to == node || to == 0) continue;
        for (std::int64_t v : {77, 78}) {
          sim::Message msg;
          msg.from = node;
          msg.to = to;
          msg.round = round;
          msg.path = Path{0, node};
          msg.value = Value::of(v);
          out.push_back(msg);
        }
      }
      return out;
    }
  };

  const Config config{.n = 5, .m = 1, .u = 2};
  const DegradableAgreement protocol(config);
  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = Value::of(4);
  spec.faulty = {2};

  Duplicator a1;
  const Outcome sim_out = protocol.run(spec, &a1);
  Duplicator a2;
  const Outcome thr_out = protocol.run_threaded(spec, &a2);
  EXPECT_EQ(sim_out.decisions, thr_out.decisions);

  // And the injected garbage must not break the degraded conditions.
  const auto report = check_conditions(spec, sim_out.decisions);
  EXPECT_TRUE(report.satisfied) << report.detail;
}

}  // namespace
}  // namespace da
