#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace da {
namespace {

TEST(Mix64, Deterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Mix64, TwoArgOrderMatters) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
}

TEST(Rng, Reproducible) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SubsetSizeAndRange) {
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    const auto s = rng.subset(10, 4);
    EXPECT_EQ(s.size(), 4u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    std::set<int> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 4u);
    for (int x : s) {
      EXPECT_GE(x, 0);
      EXPECT_LT(x, 10);
    }
  }
}

TEST(Rng, SubsetFullAndEmpty) {
  Rng rng(29);
  EXPECT_TRUE(rng.subset(5, 0).empty());
  const auto all = rng.subset(5, 5);
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Rng, SubsetCoversAllElements) {
  Rng rng(31);
  std::set<int> seen;
  for (int trial = 0; trial < 200; ++trial) {
    for (int x : rng.subset(6, 2)) seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 6u);
}

}  // namespace
}  // namespace da
