#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/topology.hpp"

namespace da::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g(4);
  EXPECT_EQ(g.n(), 4);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.connected());
}

TEST(Graph, AddEdgeSymmetric) {
  Graph g(3);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_EQ(g.degree(1), 0);
}

TEST(Graph, AddEdgeIdempotent) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::logic_error);
}

TEST(Graph, OutOfRangeRejected) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), std::logic_error);
  EXPECT_THROW((void)g.has_edge(-1, 0), std::logic_error);
}

TEST(Graph, RemoveEdge) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.edge_count(), 1u);
  g.remove_edge(0, 1);  // idempotent
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, ConnectedPathGraph) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.connected());
  g.remove_edge(1, 2);
  EXPECT_FALSE(g.connected());
}

TEST(Graph, SingleNodeIsConnected) {
  EXPECT_TRUE(Graph(1).connected());
}

TEST(Topology, CompleteGraph) {
  const Graph g = complete(5);
  EXPECT_TRUE(g.complete());
  EXPECT_EQ(g.edge_count(), 10u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Topology, Ring) {
  const Graph g = ring(6);
  EXPECT_EQ(g.edge_count(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(g.connected());
}

TEST(Topology, Hypercube) {
  const Graph g = hypercube(3);
  EXPECT_EQ(g.n(), 8);
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Topology, Circulant) {
  const Graph g = circulant(7, 2);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Topology, SeparatorGraphStructure) {
  // 3-clique | 2 separators | 3-clique.
  const Graph g = separator_graph(3, 2, 3);
  EXPECT_EQ(g.n(), 8);
  // Sides are not directly connected.
  for (NodeId a = 0; a < 3; ++a) {
    for (NodeId b = 5; b < 8; ++b) EXPECT_FALSE(g.has_edge(a, b));
  }
  // Separators reach everyone.
  EXPECT_EQ(g.degree(3), 7);
  EXPECT_EQ(g.degree(4), 7);
  EXPECT_TRUE(g.connected());
}

TEST(Topology, RandomAtLeastKConnectedHasMinDegree) {
  const Graph g = random_at_least_k_connected(12, 4, 0.2, 99);
  for (NodeId v = 0; v < 12; ++v) EXPECT_GE(g.degree(v), 4);
}

}  // namespace
}  // namespace da::graph
