// Randomized differential fuzzing across the whole stack:
//
//  1. random depth-2 behaviour tables (the adversary-complete alphabet,
//     sampled instead of enumerated) against random feasible configs —
//     conditions must hold at every draw;
//  2. random behaviours replayed on all three runtimes — decisions must
//     match bit-for-bit;
//  3. random *malformed-traffic* storms (fabricated garbage metadata) —
//     receivers must be unaffected.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/agreement.hpp"
#include "core/byz.hpp"
#include "event/event_runner.hpp"
#include "faults/adversaries.hpp"
#include "rt/threaded_runner.hpp"
#include "util/rng.hpp"

namespace da {
namespace {

/// Samples a random per-(from,to,path) behaviour over the canonical
/// alphabet {sender value, w1, w2, V_d, omit} — works at any depth.
class RandomTableAdversary final : public sim::Adversary {
 public:
  RandomTableAdversary(std::uint64_t seed, Value sender_value)
      : seed_(seed), sender_value_(sender_value) {}

  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    std::uint64_t h = mix64(seed_, static_cast<std::uint64_t>(msg.from));
    h = mix64(h, static_cast<std::uint64_t>(msg.to));
    h = mix64(h, msg.path.hash());
    switch (h % 5) {
      case 0: return std::nullopt;  // omit
      case 1: {
        sim::Message out = msg;
        out.value = sender_value_;
        return out;
      }
      case 2: {
        sim::Message out = msg;
        out.value = Value::of(500001);
        return out;
      }
      case 3: {
        sim::Message out = msg;
        out.value = Value::of(500002);
        return out;
      }
      default: {
        sim::Message out = msg;
        out.value = Value::def();
        return out;
      }
    }
  }

 private:
  std::uint64_t seed_;
  Value sender_value_;
};

/// Injects structurally garbage messages every round (bad rounds, bogus
/// paths, foreign participants, self-paths); validation must shrug it off.
class GarbageStorm final : public sim::Adversary {
 public:
  explicit GarbageStorm(std::uint64_t seed) : seed_(seed) {}

  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    return msg;  // behave, then spam
  }

  std::vector<sim::Message> fabricate(NodeId node, int round) override {
    Rng rng(mix64(seed_, mix64(static_cast<std::uint64_t>(node),
                               static_cast<std::uint64_t>(round))));
    std::vector<sim::Message> out;
    for (int k = 0; k < 6; ++k) {
      sim::Message msg;
      msg.from = node;
      msg.to = static_cast<NodeId>(rng.below(7));
      msg.round = round;
      const int shape = static_cast<int>(rng.below(4));
      switch (shape) {
        case 0:  // wrong path length for the round
          msg.path = Path{0, node, 99};
          break;
        case 1:  // path not ending at the transmitter
          msg.path = Path{0};
          break;
        case 2:  // repeated nodes
          msg.path = Path{0, node};
          if (round >= 1) msg.path = Path{node, node};
          break;
        default:  // foreign participant
          msg.path = Path{42, node};
          break;
      }
      msg.value = Value::of(rng.range(-5, 5));
      out.push_back(msg);
    }
    return out;
  }

 private:
  std::uint64_t seed_;
};

Config random_feasible_config(Rng& rng) {
  const int m = static_cast<int>(rng.below(3));             // 0..2
  const int u = std::max(1, m + static_cast<int>(rng.below(4)));  // >= 1
  const int slack = static_cast<int>(rng.below(3));         // 0..2 extras
  return Config{.n = 2 * m + u + 1 + slack, .m = m, .u = u};
}

TEST(Fuzz, RandomBehavioursNeverViolateConditions) {
  Rng rng(0xF00D);
  for (int iter = 0; iter < 120; ++iter) {
    const Config config = random_feasible_config(rng);
    if (config.n > 10) continue;  // keep message volume sane
    const DegradableAgreement protocol(config);

    ScenarioSpec spec;
    spec.config = config;
    spec.sender =
        static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(config.n)));
    spec.sender_value = Value::of(rng.range(1, 1000));
    const int f = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(config.u) + 1));
    const auto subset = rng.subset(config.n, f);
    spec.faulty.assign(subset.begin(), subset.end());

    RandomTableAdversary adversary(rng.next(), spec.sender_value);
    const ConditionReport report = protocol.run_and_check(spec, &adversary);
    ASSERT_TRUE(report.satisfied)
        << "iter " << iter << ": " << spec.to_string() << " -> "
        << report.detail;
    ASSERT_TRUE(report.corollary_m_plus_1) << spec.to_string();
  }
}

TEST(Fuzz, RandomBehavioursMatchAcrossRuntimes) {
  Rng rng(0xBEEF);
  for (int iter = 0; iter < 25; ++iter) {
    const Config config = random_feasible_config(rng);
    if (config.n > 9) continue;
    const DegradableAgreement protocol(config);

    ScenarioSpec spec;
    spec.config = config;
    spec.sender = 0;
    spec.sender_value = Value::of(rng.range(1, 1000));
    const int f = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(config.u) + 1));
    const auto subset = rng.subset(config.n, f);
    spec.faulty.assign(subset.begin(), subset.end());
    const std::uint64_t behaviour_seed = rng.next();

    RandomTableAdversary a1(behaviour_seed, spec.sender_value);
    const Outcome sim_out = protocol.run(spec, &a1);

    RandomTableAdversary a2(behaviour_seed, spec.sender_value);
    const Outcome thr_out = protocol.run_threaded(spec, &a2);
    ASSERT_EQ(sim_out.decisions, thr_out.decisions) << spec.to_string();

    RandomTableAdversary a3(behaviour_seed, spec.sender_value);
    sim::RunOptions options;
    options.faulty = spec.faulty;
    options.adversary = &a3;
    event::EventRunner event_runner(
        core::make_byz_processes(config, spec.sender, spec.sender_value),
        std::move(options), event::TimingModel{},
        event::perfect_clocks(config.n));
    ASSERT_EQ(sim_out.decisions, event_runner.run().base.decisions)
        << spec.to_string();
  }
}

TEST(Fuzz, GarbageStormsAreHarmless) {
  const Config config{.n = 7, .m = 1, .u = 4};
  const DegradableAgreement protocol(config);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ScenarioSpec spec;
    spec.config = config;
    spec.sender = 0;
    spec.sender_value = Value::of(21);
    spec.faulty = {2, 5};

    GarbageStorm storm(seed);
    const Outcome stormy = protocol.run(spec, &storm);

    // The storm adversary relays honestly, so the run must be identical
    // to a fault-free one: every garbage message was rejected.
    ScenarioSpec clean = spec;
    clean.faulty.clear();
    const Outcome quiet = protocol.run(clean, nullptr);
    EXPECT_EQ(stormy.decisions, quiet.decisions) << "seed " << seed;
  }
}

}  // namespace
}  // namespace da
