// Randomized differential fuzzing across the whole stack, driven by the
// parallel scenario-sweep engine (src/sweep/): each fuzz iteration is one
// sweep ordinal whose scenario is a pure function of (seed, ordinal), so
// the exact same draws are replayed for any --jobs value.
//
//  1. random depth-2 behaviour tables (the adversary-complete alphabet,
//     sampled instead of enumerated) against random feasible configs —
//     conditions must hold at every draw;
//  2. random behaviours replayed on all three runtimes — decisions must
//     match bit-for-bit;
//  3. random *malformed-traffic* storms (fabricated garbage metadata) —
//     receivers must be unaffected.

//
// A fixed regression corpus (tests/corpus/fuzz_*.txt) replays first: any
// (seed, ordinal) pair a randomized sweep ever flagged gets appended there
// and is re-checked verbatim on every run thereafter.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "core/agreement.hpp"
#include "core/byz.hpp"
#include "event/event_runner.hpp"
#include "faults/adversaries.hpp"
#include "rt/threaded_runner.hpp"
#include "sweep/sweep.hpp"
#include "util/rng.hpp"

namespace da {
namespace {

/// Samples a random per-(from,to,path) behaviour over the canonical
/// alphabet {sender value, w1, w2, V_d, omit} — works at any depth.
class RandomTableAdversary final : public sim::Adversary {
 public:
  RandomTableAdversary(std::uint64_t seed, Value sender_value)
      : seed_(seed), sender_value_(sender_value) {}

  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    std::uint64_t h = mix64(seed_, static_cast<std::uint64_t>(msg.from));
    h = mix64(h, static_cast<std::uint64_t>(msg.to));
    h = mix64(h, msg.path.hash());
    switch (h % 5) {
      case 0: return std::nullopt;  // omit
      case 1: {
        sim::Message out = msg;
        out.value = sender_value_;
        return out;
      }
      case 2: {
        sim::Message out = msg;
        out.value = Value::of(500001);
        return out;
      }
      case 3: {
        sim::Message out = msg;
        out.value = Value::of(500002);
        return out;
      }
      default: {
        sim::Message out = msg;
        out.value = Value::def();
        return out;
      }
    }
  }

 private:
  std::uint64_t seed_;
  Value sender_value_;
};

/// Injects structurally garbage messages every round (bad rounds, bogus
/// paths, foreign participants, self-paths); validation must shrug it off.
class GarbageStorm final : public sim::Adversary {
 public:
  explicit GarbageStorm(std::uint64_t seed) : seed_(seed) {}

  std::optional<sim::Message> corrupt(const sim::Message& msg) override {
    return msg;  // behave, then spam
  }

  std::vector<sim::Message> fabricate(NodeId node, int round) override {
    Rng rng(mix64(seed_, mix64(static_cast<std::uint64_t>(node),
                               static_cast<std::uint64_t>(round))));
    std::vector<sim::Message> out;
    for (int k = 0; k < 6; ++k) {
      sim::Message msg;
      msg.from = node;
      msg.to = static_cast<NodeId>(rng.below(7));
      msg.round = round;
      const int shape = static_cast<int>(rng.below(4));
      switch (shape) {
        case 0:  // wrong path length for the round
          msg.path = Path{0, node, 99};
          break;
        case 1:  // path not ending at the transmitter
          msg.path = Path{0};
          break;
        case 2:  // repeated nodes
          msg.path = Path{0, node};
          if (round >= 1) msg.path = Path{node, node};
          break;
        default:  // foreign participant
          msg.path = Path{42, node};
          break;
      }
      msg.value = Value::of(rng.range(-5, 5));
      out.push_back(msg);
    }
    return out;
  }

 private:
  std::uint64_t seed_;
};

Config random_feasible_config(Rng& rng) {
  const int m = static_cast<int>(rng.below(3));             // 0..2
  const int u = std::max(1, m + static_cast<int>(rng.below(4)));  // >= 1
  const int slack = static_cast<int>(rng.below(3));         // 0..2 extras
  return Config{.n = 2 * m + u + 1 + slack, .m = m, .u = u};
}

/// Draws the scenario for one fuzz ordinal. The stream is derived from
/// (seed, ordinal) alone, so a parallel sweep replays exactly the serial
/// draws no matter how shards land on workers.
struct FuzzDraw {
  ScenarioSpec spec;
  std::uint64_t behaviour_seed = 0;
  bool skipped = false;
};

FuzzDraw draw_scenario(std::uint64_t seed, std::uint64_t ordinal, int max_n) {
  Rng rng(mix64(seed, ordinal));
  FuzzDraw draw;
  const Config config = random_feasible_config(rng);
  if (config.n > max_n) {  // keep message volume sane
    draw.skipped = true;
    return draw;
  }
  draw.spec.config = config;
  draw.spec.sender =
      static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(config.n)));
  draw.spec.sender_value = Value::of(rng.range(1, 1000));
  const int f = static_cast<int>(rng.below(
      static_cast<std::uint64_t>(config.u) + 1));
  const auto subset = rng.subset(config.n, f);
  draw.spec.faulty.assign(subset.begin(), subset.end());
  draw.behaviour_seed = rng.next();
  return draw;
}

/// One ordinal of the conditions fuzz, shared verbatim by the randomized
/// sweep and the regression-corpus replay. Returns true on a violation
/// ("hit"), with `failure` describing it; `executed` is false for skipped
/// (oversized) draws.
bool conditions_case(std::uint64_t seed, std::uint64_t ordinal,
                     std::string* failure, bool* executed) {
  FuzzDraw draw = draw_scenario(seed, ordinal, 10);
  *executed = !draw.skipped;
  if (draw.skipped) return false;
  const DegradableAgreement protocol(draw.spec.config);
  RandomTableAdversary adversary(draw.behaviour_seed, draw.spec.sender_value);
  const ConditionReport report = protocol.run_and_check(draw.spec, &adversary);
  if (!report.satisfied || !report.corollary_m_plus_1) {
    *failure = "iter " + std::to_string(ordinal) + ": " +
               draw.spec.to_string() + " -> " + report.detail;
    return true;
  }
  return false;
}

/// One ordinal of the cross-runtime fuzz: the same behaviour replayed on
/// the sim, threaded and event runtimes must decide identically.
bool runtimes_case(std::uint64_t seed, std::uint64_t ordinal,
                   std::string* failure, bool* executed) {
  FuzzDraw draw = draw_scenario(seed, ordinal, 9);
  *executed = !draw.skipped;
  if (draw.skipped) return false;
  const ScenarioSpec& spec = draw.spec;
  const DegradableAgreement protocol(spec.config);

  RandomTableAdversary a1(draw.behaviour_seed, spec.sender_value);
  const Outcome sim_out = protocol.run(spec, &a1);

  RandomTableAdversary a2(draw.behaviour_seed, spec.sender_value);
  const Outcome thr_out = protocol.run_threaded(spec, &a2);
  if (sim_out.decisions != thr_out.decisions) {
    *failure = "threaded mismatch: " + spec.to_string();
    return true;
  }

  RandomTableAdversary a3(draw.behaviour_seed, spec.sender_value);
  sim::RunOptions run_options;
  run_options.faulty = spec.faulty;
  run_options.adversary = &a3;
  event::EventRunner event_runner(
      core::make_byz_processes(spec.config, spec.sender, spec.sender_value),
      std::move(run_options), event::TimingModel{},
      event::perfect_clocks(spec.config.n));
  if (sim_out.decisions != event_runner.run().base.decisions) {
    *failure = "event mismatch: " + spec.to_string();
    return true;
  }
  return false;
}

/// Replays `corpus_file` (lines of `seed ordinal`, # comments) through one
/// of the case functions above. Corpus draws are checked before any
/// randomized exploration runs — see the corpus tests below, which are
/// defined (and therefore run) first.
void replay_corpus(const std::string& corpus_file,
                   bool (*fuzz_case)(std::uint64_t, std::uint64_t,
                                     std::string*, bool*)) {
  std::ifstream in(std::string(DA_TEST_CORPUS_DIR) + "/" + corpus_file);
  ASSERT_TRUE(in.is_open()) << "missing tests/corpus/" << corpus_file;
  std::string line;
  int replayed = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::uint64_t seed = 0;
    std::uint64_t ordinal = 0;
    ASSERT_TRUE(fields >> seed >> ordinal) << "bad corpus line: " << line;
    std::string failure;
    bool executed = false;
    EXPECT_FALSE(fuzz_case(seed, ordinal, &failure, &executed))
        << corpus_file << " " << seed << " " << ordinal << ": " << failure;
    ++replayed;
  }
  EXPECT_GE(replayed, 4) << corpus_file << " corpus is unexpectedly small";
}

TEST(Fuzz, CorpusConditionsReplay) {
  replay_corpus("fuzz_conditions.txt", conditions_case);
}

TEST(Fuzz, CorpusRuntimesReplay) {
  replay_corpus("fuzz_runtimes.txt", runtimes_case);
}

TEST(Fuzz, RandomBehavioursNeverViolateConditions) {
  constexpr std::uint64_t kIterations = 120;
  const sweep::ShardPlan plan = sweep::ShardPlan::even(kIterations, 8);
  std::vector<std::string> failures(plan.shard_count());
  sweep::SweepOptions options;
  options.jobs = 2;
  const auto result = sweep::run_sweep(
      plan, options,
      [&](std::uint64_t ordinal, std::size_t shard, Rng&) -> sweep::Visit {
        bool executed = false;
        const bool hit =
            conditions_case(0xF00D, ordinal, &failures[shard], &executed);
        return {.hit = hit, .executions = executed ? 1u : 0u};
      });
  EXPECT_FALSE(result.first_hit.has_value())
      << failures[*result.first_hit_shard];
  EXPECT_GT(result.stats.executions, kIterations / 2);  // few skips
}

TEST(Fuzz, RandomBehavioursMatchAcrossRuntimes) {
  constexpr std::uint64_t kIterations = 25;
  const sweep::ShardPlan plan = sweep::ShardPlan::even(kIterations, 4);
  std::vector<std::string> failures(plan.shard_count());
  sweep::SweepOptions options;
  options.jobs = 2;
  const auto result = sweep::run_sweep(
      plan, options,
      [&](std::uint64_t ordinal, std::size_t shard, Rng&) -> sweep::Visit {
        bool executed = false;
        const bool hit =
            runtimes_case(0xBEEF, ordinal, &failures[shard], &executed);
        return {.hit = hit, .executions = executed ? 1u : 0u};
      });
  EXPECT_FALSE(result.first_hit.has_value())
      << failures[*result.first_hit_shard];
}

TEST(Fuzz, GarbageStormsAreHarmless) {
  const Config config{.n = 7, .m = 1, .u = 4};
  const DegradableAgreement protocol(config);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ScenarioSpec spec;
    spec.config = config;
    spec.sender = 0;
    spec.sender_value = Value::of(21);
    spec.faulty = {2, 5};

    GarbageStorm storm(seed);
    const Outcome stormy = protocol.run(spec, &storm);

    // The storm adversary relays honestly, so the run must be identical
    // to a fault-free one: every garbage message was rejected.
    ScenarioSpec clean = spec;
    clean.faulty.clear();
    const Outcome quiet = protocol.run(clean, nullptr);
    EXPECT_EQ(stormy.decisions, quiet.decisions) << "seed " << seed;
  }
}

}  // namespace
}  // namespace da
