// Serialized search frontiers (faults/frontier.hpp): the v1 text format
// round-trips exactly, the parser rejects every class of damage a crashed
// or concatenated file can exhibit, split/merge is a lossless partition,
// and — the tentpole guarantee — a behaviour sweep killed at *any*
// checkpoint boundary and resumed under *any* --jobs value converges to a
// byte-identical normalized artifact.

#include "faults/frontier.hpp"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "faults/behavior_search.hpp"
#include "sweep/sweep.hpp"

namespace da {
namespace {

constexpr Config kViolating{.n = 4, .m = 1, .u = 2};  // hit at ordinal 129
constexpr Config kClean{.n = 4, .m = 1, .u = 1};      // exhaustively clean

/// The byte-comparable artifact: the normalized serialized frontier.
std::string artifact_of(faults::Frontier frontier) {
  frontier.normalize();
  return serialize_frontier(frontier);
}

/// Runs a fresh frontier for `config` to settlement in one shot.
faults::Frontier settle(const Config& config, int jobs = 1) {
  faults::Frontier frontier = faults::init_behavior_frontier(config);
  faults::FrontierRunOptions options;
  options.jobs = jobs;
  const faults::FrontierRun run =
      faults::run_behavior_frontier(frontier, options);
  EXPECT_TRUE(run.error.empty()) << run.error;
  EXPECT_TRUE(run.settled);
  return frontier;
}

// ------------------------------------------------------------ the format

TEST(Frontier, SerializeParseRoundTrip) {
  const faults::Frontier fresh = faults::init_behavior_frontier(kViolating);
  ASSERT_GT(fresh.shards.size(), 1u);
  ASSERT_FALSE(fresh.classes.empty());  // quotiented by default: v2
  EXPECT_TRUE(fresh.covers_space());
  EXPECT_FALSE(fresh.settled());
  EXPECT_EQ(fresh.best_hit(), sweep::kNoHit);

  const std::string text = serialize_frontier(fresh);
  EXPECT_EQ(text.rfind("da-frontier v2\n", 0), 0u);
  const faults::FrontierParse parsed = faults::parse_frontier(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(serialize_frontier(*parsed.frontier), text);
  EXPECT_EQ(parsed.frontier->space, fresh.space);
  EXPECT_EQ(parsed.frontier->shards.size(), fresh.shards.size());
  EXPECT_EQ(parsed.frontier->classes.size(), fresh.classes.size());

  // The unquotiented plan keeps serializing in the v1 format, and still
  // covers the (larger, gapless) shard set.
  const faults::Frontier plain =
      faults::init_behavior_frontier(kViolating, -1, 1,
                                     /*subset_symmetry=*/false);
  EXPECT_TRUE(plain.classes.empty());
  EXPECT_TRUE(plain.covers_space());
  EXPECT_GT(plain.shards.size(), fresh.shards.size());
  const std::string plain_text = serialize_frontier(plain);
  EXPECT_EQ(plain_text.rfind("da-frontier v1\n", 0), 0u);
  const faults::FrontierParse plain_parsed = faults::parse_frontier(plain_text);
  ASSERT_TRUE(plain_parsed.ok()) << plain_parsed.error;
  EXPECT_EQ(serialize_frontier(*plain_parsed.frontier), plain_text);

  // A settled frontier (cursors, counters and a hit populated) must
  // round-trip just as exactly.
  const faults::Frontier done = settle(kViolating);
  ASSERT_NE(done.best_hit(), sweep::kNoHit);
  const std::string done_text = serialize_frontier(done);
  const faults::FrontierParse reparsed = faults::parse_frontier(done_text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  EXPECT_EQ(serialize_frontier(*reparsed.frontier), done_text);
  EXPECT_EQ(reparsed.frontier->best_hit(), done.best_hit());
}

TEST(Frontier, ParserRejectsDamage) {
  const std::string good =
      serialize_frontier(faults::init_behavior_frontier(kViolating));

  const auto error_of = [](const std::string& text) {
    const faults::FrontierParse parsed = faults::parse_frontier(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text.substr(0, 60);
    return parsed.error;
  };

  EXPECT_EQ(error_of(""), "empty frontier");
  EXPECT_EQ(error_of("something else\n"), "not a frontier file");
  EXPECT_EQ(error_of("da-frontier v3\nconfig 4 1 2 2 1 3952\nend 0\n"),
            "unsupported frontier version: v3");
  EXPECT_EQ(error_of("da-frontier v1\n"), "truncated frontier: no config");
  EXPECT_EQ(error_of("da-frontier v1\nconfig 4 x\nend 0\n"),
            "malformed config line");
  EXPECT_EQ(error_of("da-frontier v1\nconfig 0 0 0 -1 1 5\nend 0\n"),
            "invalid config");
  EXPECT_EQ(error_of("da-frontier v1\nconfig 4 1 2 2 1 0\nend 0\n"),
            "empty search space");

  // Truncation: chop the `end` trailer, then miscount it.
  const std::string no_end = good.substr(0, good.rfind("end "));
  EXPECT_EQ(error_of(no_end), "truncated frontier: missing end record");
  EXPECT_EQ(error_of(no_end + "end 1\n"),
            "truncated frontier: shard count mismatch");

  // Shard-level damage, spliced into a minimal two-shard frontier.
  const std::string header = "da-frontier v1\nconfig 4 1 2 2 1 3952\n";
  const auto with_shards = [&](const std::string& shards, int count) {
    return header + shards + "end " + std::to_string(count) + "\n";
  };
  EXPECT_EQ(error_of(with_shards("shard 0 0 0 0 0 -\n", 1)),
            "empty shard range");
  EXPECT_EQ(error_of(with_shards("shard 0 9999 0 0 0 -\n", 1)),
            "shard beyond space");
  EXPECT_EQ(error_of(with_shards("shard 0 16 0 0 0 -\nshard 0 16 0 0 0 -\n", 2)),
            "duplicate shard");
  EXPECT_EQ(error_of(with_shards("shard 0 16 0 0 0 -\nshard 8 32 8 0 0 -\n", 2)),
            "overlapping shards");
  EXPECT_EQ(error_of(with_shards("shard 0 16 20 0 0 -\n", 1)),
            "cursor out of range");
  EXPECT_EQ(error_of(with_shards("shard 0 16 16 16 16 99\n", 1)),
            "hit outside shard");
  EXPECT_EQ(error_of(with_shards("shard 0 16 8 8 8 3\n", 1)),
            "hit with unsettled cursor");
  EXPECT_EQ(error_of(with_shards("shard 0 16 16 16 16 bogus\n", 1)),
            "malformed shard hit");
  EXPECT_EQ(error_of(with_shards("record 0 16 0 0 0 -\n", 1)),
            "unknown record: record");

  // v2 class-table damage, spliced into a minimal quotiented frontier
  // (one 16-ordinal class standing for 247 conjugates: 16*247 = 3952).
  const std::string v2_header = "da-frontier v2\nconfig 4 1 2 2 1 3952\n";
  const auto v2_with = [&](const std::string& body, int count) {
    return v2_header + body + "end " + std::to_string(count) + "\n";
  };
  EXPECT_EQ(error_of(v2_with("", 0)), "v2 frontier without class records");
  EXPECT_EQ(error_of(with_shards("class 0 16 247\n", 0)),
            "class record in a v1 frontier");
  EXPECT_EQ(error_of(v2_with("class 0 16 x\n", 0)), "malformed class line");
  EXPECT_EQ(error_of(v2_with("class 0 16 247\nshard 0 16 0 0 0 -\n"
                             "class 0 16 247\n",
                             1)),
            "class record after shard records");
  EXPECT_EQ(error_of(v2_with("class 0 0 247\n", 0)), "invalid class record");
  EXPECT_EQ(error_of(v2_with("class 0 9999 1\n", 0)), "class beyond space");
  EXPECT_EQ(error_of(v2_with("class 0 16 1\nclass 0 16 246\n", 0)),
            "duplicate class");
  EXPECT_EQ(error_of(v2_with("class 0 16 1\nclass 8 16 246\n", 0)),
            "overlapping classes");
  EXPECT_EQ(error_of(v2_with("class 0 16 246\n", 0)),
            "class weights do not reconcile to the space");
  EXPECT_EQ(
      error_of(v2_with("class 0 16 1152921504606846976\n", 0)),
      "class weights overflow");
  EXPECT_EQ(error_of(v2_with("class 0 16 247\nshard 16 32 16 0 0 -\n", 1)),
            "shard outside class ranges");
}

TEST(Frontier, SplitMergeIsLossless) {
  const faults::Frontier whole = settle(kViolating);
  const std::string reference = serialize_frontier(whole);

  for (const std::size_t parts : {std::size_t{1}, std::size_t{3},
                                  whole.shards.size() + 2}) {
    const std::vector<faults::Frontier> split =
        faults::split_frontier(whole, parts);
    ASSERT_EQ(split.size(), parts);
    std::size_t shard_total = 0;
    for (const faults::Frontier& part : split) {
      shard_total += part.shards.size();
      if (part.shards.size() < whole.shards.size()) {
        EXPECT_FALSE(part.covers_space());
        EXPECT_FALSE(part.settled()) << "split parts must not settle alone";
      }
    }
    EXPECT_EQ(shard_total, whole.shards.size());
    const faults::FrontierParse merged = faults::merge_frontiers(split);
    ASSERT_TRUE(merged.ok()) << merged.error;
    EXPECT_EQ(serialize_frontier(*merged.frontier), reference);
  }

  // A part merged twice duplicates its shards — same rejection as the
  // parser's.
  const std::vector<faults::Frontier> split = faults::split_frontier(whole, 2);
  const faults::FrontierParse dup =
      faults::merge_frontiers({split[0], split[1], split[0]});
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.error, "duplicate shard");

  // Parts from different searches must not merge.
  faults::Frontier foreign = faults::init_behavior_frontier(kClean);
  const faults::FrontierParse mixed = faults::merge_frontiers({whole, foreign});
  EXPECT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.error, "header mismatch");
}

TEST(Frontier, SaveLoadAtomicRoundTrip) {
  const faults::Frontier frontier = faults::init_behavior_frontier(kClean);
  const std::string path =
      testing::TempDir() + "da_frontier_roundtrip.frontier";
  ASSERT_TRUE(faults::save_frontier(frontier, path));
  const faults::FrontierParse loaded = faults::load_frontier(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(serialize_frontier(*loaded.frontier), serialize_frontier(frontier));
  std::remove(path.c_str());

  const faults::FrontierParse missing = faults::load_frontier(path);
  EXPECT_FALSE(missing.ok());
}

// ------------------------------------------------------ resume semantics

TEST(FrontierRun, CleanSweepReconcilesCounts) {
  const faults::Frontier frontier = settle(kClean, /*jobs=*/2);
  EXPECT_EQ(frontier.best_hit(), sweep::kNoHit);
  std::uint64_t executions = 0;
  std::uint64_t weighted = 0;
  for (const faults::FrontierShard& shard : frontier.shards) {
    EXPECT_TRUE(shard.settled());
    executions += shard.executions;
    weighted += shard.weighted;
  }
  EXPECT_EQ(executions, faults::behavior_search_quotient_space(kClean));
  EXPECT_EQ(weighted, faults::behavior_search_space(kClean));
  EXPECT_EQ(weighted, frontier.space);
}

TEST(FrontierRun, KillAndResumeAtEveryBoundaryIsByteIdentical) {
  const std::string reference = artifact_of(settle(kViolating));

  // Suspend after every possible number of settled shards, then resume to
  // completion — through a serialize/parse round trip, exactly as a new
  // process would — alternating jobs values across runs.
  const std::size_t shard_count =
      faults::init_behavior_frontier(kViolating).shards.size();
  for (std::size_t boundary = 1; boundary <= shard_count; ++boundary) {
    SCOPED_TRACE("suspend after " + std::to_string(boundary) + " shards");
    faults::Frontier frontier = faults::init_behavior_frontier(kViolating);
    int runs = 0;
    int checkpoints = 0;
    bool settled = false;
    while (!settled) {
      ASSERT_LT(runs, 64) << "frontier failed to converge";
      faults::FrontierRunOptions options;
      options.jobs = (runs % 2 == 0) ? 1 : 3;
      options.max_shards = static_cast<int>(boundary);
      options.checkpoint = [&checkpoints](const faults::Frontier& snapshot) {
        // Every incremental checkpoint must itself round-trip.
        const faults::FrontierParse parsed =
            faults::parse_frontier(serialize_frontier(snapshot));
        ASSERT_TRUE(parsed.ok()) << parsed.error;
        ++checkpoints;
      };
      const faults::FrontierRun run =
          faults::run_behavior_frontier(frontier, options);
      ASSERT_TRUE(run.error.empty()) << run.error;
      settled = run.settled;
      if (settled) {
        ASSERT_TRUE(run.violation.has_value());
        EXPECT_EQ(run.violation->spec.config.n, kViolating.n);
      }
      // Reload from bytes: resuming must survive the serialized form.
      const faults::FrontierParse reloaded =
          faults::parse_frontier(serialize_frontier(frontier));
      ASSERT_TRUE(reloaded.ok()) << reloaded.error;
      frontier = *reloaded.frontier;
      ++runs;
    }
    EXPECT_GT(checkpoints, 0);
    EXPECT_EQ(artifact_of(frontier), reference);
  }
}

TEST(FrontierRun, SplitPartsMergeToTheSameArtifact) {
  const std::string reference = artifact_of(settle(kViolating));

  // Run each split part in isolation — different jobs per part, as
  // distributed workers would — then merge and compare bytes.
  const std::vector<faults::Frontier> parts =
      faults::split_frontier(faults::init_behavior_frontier(kViolating), 3);
  std::vector<faults::Frontier> finished;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    faults::Frontier part = parts[i];
    faults::FrontierRunOptions options;
    options.jobs = static_cast<int>(i) + 1;
    const faults::FrontierRun run =
        faults::run_behavior_frontier(part, options);
    ASSERT_TRUE(run.error.empty()) << run.error;
    EXPECT_FALSE(run.settled) << "a split part must not settle alone";
    finished.push_back(std::move(part));
  }
  const faults::FrontierParse merged = faults::merge_frontiers(finished);
  ASSERT_TRUE(merged.ok()) << merged.error;
  EXPECT_TRUE(merged.frontier->settled());
  EXPECT_EQ(artifact_of(*merged.frontier), reference);
}

TEST(FrontierRun, RejectsForeignShardPlans) {
  faults::Frontier frontier = faults::init_behavior_frontier(kViolating);
  ASSERT_GT(frontier.shards.size(), 1u);
  // Fuse the first two shards: still a valid frontier file, but not this
  // search's plan.
  frontier.shards[0].end = frontier.shards[1].end;
  frontier.shards.erase(frontier.shards.begin() + 1);
  const faults::FrontierRun run = faults::run_behavior_frontier(frontier);
  EXPECT_FALSE(run.error.empty());
  EXPECT_NE(run.error.find("shard plan"), std::string::npos) << run.error;
}

TEST(FrontierRun, UnreducedRunFindsTheSameHit) {
  // Three rungs of the reduction ladder: fully quotiented (v2 frontier,
  // receiver orbits on), subset quotient only (v2, receiver orbits off),
  // and completely unreduced (v1 frontier, both off). All three must
  // settle on the same hit ordinal and the same rematerialized adversary.
  faults::Frontier quotient = faults::init_behavior_frontier(kViolating);
  faults::Frontier subset_only = faults::init_behavior_frontier(kViolating);
  faults::Frontier full = faults::init_behavior_frontier(
      kViolating, -1, 1, /*subset_symmetry=*/false);
  faults::FrontierRunOptions options;
  const faults::FrontierRun quotient_run =
      faults::run_behavior_frontier(quotient, options);
  options.symmetry = false;
  const faults::FrontierRun subset_run =
      faults::run_behavior_frontier(subset_only, options);
  const faults::FrontierRun full_run =
      faults::run_behavior_frontier(full, options);
  ASSERT_TRUE(quotient_run.error.empty()) << quotient_run.error;
  ASSERT_TRUE(subset_run.error.empty()) << subset_run.error;
  ASSERT_TRUE(full_run.error.empty()) << full_run.error;
  ASSERT_TRUE(quotient_run.settled && subset_run.settled && full_run.settled);
  EXPECT_EQ(quotient.best_hit(), full.best_hit());
  EXPECT_EQ(subset_only.best_hit(), full.best_hit());
  ASSERT_TRUE(quotient_run.violation.has_value());
  ASSERT_TRUE(subset_run.violation.has_value());
  ASSERT_TRUE(full_run.violation.has_value());
  EXPECT_EQ(quotient_run.violation->adversary, full_run.violation->adversary);
  EXPECT_EQ(subset_run.violation->adversary, full_run.violation->adversary);
}

TEST(FrontierRun, QuotientAndPlainFrontiersResumeTheirOwnPlans) {
  // A v1 file keeps resuming against the unquotiented plan; a v2 file
  // against the quotiented one. Tampered class tables are rejected.
  faults::Frontier plain = faults::init_behavior_frontier(
      kClean, -1, 1, /*subset_symmetry=*/false);
  const faults::FrontierRun plain_run = faults::run_behavior_frontier(plain);
  ASSERT_TRUE(plain_run.error.empty()) << plain_run.error;
  EXPECT_TRUE(plain_run.settled);
  EXPECT_EQ(plain_run.stats.executions,
            faults::behavior_search_canonical_space(kClean));

  // A class table that disagrees with the search's own quotient plan is
  // rejected up front, before any shard executes.
  faults::Frontier tampered = faults::init_behavior_frontier(kClean);
  ASSERT_GE(tampered.classes.size(), 2u);
  std::swap(tampered.classes.front().weight, tampered.classes.back().weight);
  ASSERT_NE(tampered.classes.front().weight, tampered.classes.back().weight);
  const faults::FrontierRun run = faults::run_behavior_frontier(tampered);
  EXPECT_FALSE(run.error.empty());
  EXPECT_NE(run.error.find("class"), std::string::npos) << run.error;
}

}  // namespace
}  // namespace da
