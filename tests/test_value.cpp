#include "util/value.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace da {
namespace {

TEST(Value, DefaultConstructedIsVd) {
  const Value v;
  EXPECT_TRUE(v.is_default());
  EXPECT_EQ(v, Value::def());
}

TEST(Value, OrdinaryValuesAreNotDefault) {
  EXPECT_FALSE(Value::of(0).is_default());
  EXPECT_FALSE(Value::of(-1).is_default());
  EXPECT_FALSE(Value::of(42).is_default());
}

TEST(Value, DefaultDistinguishableFromEveryPayload) {
  // The paper: "V_d is assumed to be distinguishable from all other
  // relevant values" — including a zero payload.
  for (std::int64_t raw : {-5LL, 0LL, 1LL, 100LL}) {
    EXPECT_NE(Value::of(raw), Value::def());
  }
}

TEST(Value, EqualityIsPayloadEquality) {
  EXPECT_EQ(Value::of(7), Value::of(7));
  EXPECT_NE(Value::of(7), Value::of(8));
}

TEST(Value, RawRoundTrips) {
  EXPECT_EQ(Value::of(123456789).raw(), 123456789);
  EXPECT_EQ(Value::of(-42).raw(), -42);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value::def().to_string(), "V_d");
  EXPECT_EQ(Value::of(17).to_string(), "17");
  EXPECT_EQ(Value::of(-3).to_string(), "-3");
}

TEST(Value, HashSeparatesDefaultFromZero) {
  const std::hash<Value> h;
  EXPECT_NE(h(Value::def()), h(Value::of(0)));
}

TEST(Value, UsableInUnorderedContainers) {
  std::unordered_set<Value> set;
  set.insert(Value::def());
  set.insert(Value::of(0));
  set.insert(Value::of(0));
  set.insert(Value::of(1));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(Value::def()));
}

TEST(Value, OrderingIsTotal) {
  EXPECT_LT(Value::of(1), Value::of(2));
  // V_d sorts apart from ordinary values with the same payload.
  EXPECT_NE(Value::def() < Value::of(0), Value::of(0) < Value::def());
}

}  // namespace
}  // namespace da
