#include <gtest/gtest.h>

#include "core/agreement.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

namespace da {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  set_log_level(before);
}

TEST(Log, SuppressedBelowThreshold) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  DA_LOG(kDebug) << "never shown " << expensive();
  EXPECT_EQ(evaluations, 0);  // the stream body is short-circuited
  set_log_level(before);
}

TEST(Log, EmitsAtOrAboveThreshold) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  // kOff silences even errors — and must not crash.
  DA_LOG(kError) << "silenced";
  set_log_level(before);
}

TEST(Contracts, ExpectsThrowsWithLocation) {
  try {
    DA_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_util_misc.cpp"), std::string::npos);
  }
}

TEST(Contracts, EnsuresThrows) {
  EXPECT_THROW(DA_ENSURES(false), std::logic_error);
  EXPECT_NO_THROW(DA_ENSURES(true));
}

TEST(OutcomeTest, DecisionOfMissingNodeThrows) {
  Outcome outcome;
  outcome.decisions[1] = Value::of(3);
  EXPECT_EQ(outcome.decision_of(1), Value::of(3));
  EXPECT_THROW((void)outcome.decision_of(2), std::logic_error);
}

TEST(DegradableAgreementFacade, RoundsMatchDepth) {
  EXPECT_EQ(DegradableAgreement(Config{.n = 5, .m = 0, .u = 2}).rounds(), 2);
  EXPECT_EQ(DegradableAgreement(Config{.n = 7, .m = 1, .u = 4}).rounds(), 2);
  EXPECT_EQ(DegradableAgreement(Config{.n = 7, .m = 2, .u = 2}).rounds(), 3);
}

TEST(DegradableAgreementFacade, InvalidConfigRejected) {
  EXPECT_THROW(DegradableAgreement(Config{.n = 3, .m = 2, .u = 1}),
               std::logic_error);
}

}  // namespace
}  // namespace da
