#include "clocksync/convergence.hpp"

#include <gtest/gtest.h>

#include "clocksync/witness.hpp"
#include "util/rng.hpp"

namespace da::clocksync {
namespace {

std::vector<HardwareClock> spread_clocks(int n, double spread,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<HardwareClock> clocks;
  for (int i = 0; i < n; ++i) {
    clocks.emplace_back((rng.uniform() * 2 - 1) * spread,
                        (rng.uniform() * 2 - 1) * 1e-6);
  }
  return clocks;
}

TEST(HardwareClockTest, ReadAndAdjust) {
  HardwareClock clock(0.5, 0.01);
  EXPECT_DOUBLE_EQ(clock.read(0.0), 0.5);
  EXPECT_DOUBLE_EQ(clock.read(10.0), 10.0 * 1.01 + 0.5);
  clock.adjust(-0.5);
  EXPECT_DOUBLE_EQ(clock.read(0.0), 0.0);
}

TEST(ClockEnsemble, SkewOfPerfectClocksIsZero) {
  std::vector<HardwareClock> clocks(4, HardwareClock(0.0, 0.0));
  const ClockEnsemble ensemble(clocks, {}, nullptr);
  EXPECT_DOUBLE_EQ(ensemble.skew(5.0), 0.0);
}

TEST(ClockEnsemble, SkewMeasuresSpread) {
  std::vector<HardwareClock> clocks{HardwareClock(0.0, 0.0),
                                    HardwareClock(0.3, 0.0),
                                    HardwareClock(-0.2, 0.0)};
  const ClockEnsemble ensemble(clocks, {}, nullptr);
  EXPECT_DOUBLE_EQ(ensemble.skew(0.0), 0.5);
}

TEST(ClockEnsemble, FaultyClockAnswersThroughAdversary) {
  std::vector<HardwareClock> clocks(3, HardwareClock(0.0, 0.0));
  const ClockEnsemble ensemble(
      clocks, {2},
      [](NodeId reader, NodeId, double) { return reader == 0 ? 10.0 : 20.0; });
  EXPECT_DOUBLE_EQ(ensemble.read(0, 2, 0.0), 10.0);  // two-faced
  EXPECT_DOUBLE_EQ(ensemble.read(1, 2, 0.0), 20.0);
  EXPECT_DOUBLE_EQ(ensemble.read(0, 1, 0.0), 0.0);
  EXPECT_TRUE(ensemble.is_faulty(2));
  EXPECT_EQ(ensemble.fault_count(), 1);
}

TEST(Convergence, FaultFreeClocksConverge) {
  ClockEnsemble ensemble(spread_clocks(4, 0.01, 1), {}, nullptr);
  const double before = ensemble.skew(0.0);
  const double after = cnv_run(ensemble, 0.0, 1.0, 5, 0.05);
  EXPECT_LT(after, before / 4);
}

TEST(Convergence, ToleratesFewerThanThirdFaulty) {
  // n=7, 2 faulty < 7/3: convergence despite two-faced clocks.
  auto clocks = spread_clocks(7, 0.01, 2);
  const FaultyReading two_faced = [](NodeId reader, NodeId, double t) {
    return t + (reader % 2 == 0 ? 0.04 : -0.04);
  };
  ClockEnsemble ensemble(clocks, {5, 6}, two_faced);
  const double after = cnv_run(ensemble, 0.0, 1.0, 8, 0.05);
  EXPECT_LT(after, 0.04);
}

TEST(Convergence, DefeatedAtOneThird) {
  // n=3 with 1 faulty clock (exactly a third): the classical impossibility
  // region [3,5] — the two-faced clock can keep two fault-free clocks
  // apart. We only check that convergence is qualitatively worse than the
  // fault-free case.
  auto clocks = std::vector<HardwareClock>{HardwareClock(0.02, 0.0),
                                           HardwareClock(-0.02, 0.0),
                                           HardwareClock(0.0, 0.0)};
  const FaultyReading pull_apart = [](NodeId reader, NodeId, double t) {
    // Tells the fast clock it is slow and the slow clock it is fast.
    return t + (reader == 0 ? 0.05 : -0.05);
  };
  ClockEnsemble ensemble(clocks, {2}, pull_apart);
  const double after = cnv_run(ensemble, 0.0, 1.0, 8, 0.06);
  EXPECT_GT(after, 0.02);  // never collapses
}

TEST(Witness, SyncPossiblePredicate) {
  WitnessConfig config;
  config.processors = 4;
  config.faulty_clocks = 1;
  config.witness_clocks = 0;
  EXPECT_TRUE(config.clock_sync_possible());  // 3*1 < 4
  config.faulty_clocks = 2;
  EXPECT_FALSE(config.clock_sync_possible());  // 3*2 >= 4+0
  config.witness_clocks = 3;
  EXPECT_TRUE(config.clock_sync_possible());  // 3*2 < 7
}

TEST(Witness, WitnessClocksRestoreSynchronization) {
  // Section 6.2: 4 processors + 2 faulty clocks is hopeless; adding 3
  // witness clocks brings the ensemble back under the third.
  WitnessConfig without;
  without.processors = 4;
  without.faulty_clocks = 2;
  without.witness_clocks = 0;
  const WitnessResult r1 = run_witness_experiment(without, 6, 0.01);
  EXPECT_FALSE(r1.sync_possible);

  WitnessConfig with = without;
  with.witness_clocks = 3;
  const WitnessResult r2 = run_witness_experiment(with, 6, 0.01);
  EXPECT_TRUE(r2.sync_possible);
  // Two-faced clocks bound the achievable precision at roughly
  // 2*f*window/n; with f=2, n=7, window=0.01 that stays under the window.
  EXPECT_LT(r2.final_skew, 0.01);
}

TEST(Witness, CleanEnsembleConverges) {
  WitnessConfig config;
  config.processors = 5;
  const WitnessResult r = run_witness_experiment(config, 5, 0.01);
  EXPECT_TRUE(r.sync_possible);
  EXPECT_LT(r.final_skew, r.initial_skew);
}

}  // namespace
}  // namespace da::clocksync
