#include "channels/channel_system.hpp"

#include <gtest/gtest.h>

#include "faults/adversaries.hpp"

namespace da::channels {
namespace {

using Kind = ChannelSystemConfig::Kind;

Value f_of(Value x) { return Value::of(2 * x.raw() + 1); }

TEST(VoterOutcomeTest, Classification) {
  EXPECT_EQ(classify(Value::of(5), Value::of(5)), VoterOutcome::kCorrect);
  EXPECT_EQ(classify(Value::def(), Value::of(5)), VoterOutcome::kDefault);
  EXPECT_EQ(classify(Value::of(6), Value::of(5)), VoterOutcome::kIncorrect);
  EXPECT_STREQ(to_string(VoterOutcome::kIncorrect), "INCORRECT");
}

TEST(VoterTest, KOutOfN) {
  const std::vector<Value> outputs{Value::of(3), Value::of(3), Value::of(3),
                                   Value::of(9)};
  EXPECT_EQ(external_vote(outputs, 3), Value::of(3));
  EXPECT_EQ(external_vote(outputs, 4), Value::def());
}

TEST(ChannelConfig, CountsAndThresholds) {
  const ChannelSystemConfig byz{.kind = Kind::kByzantineMajority, .m = 1};
  EXPECT_EQ(byz.channel_count(), 3);      // Figure 1(a)
  EXPECT_EQ(byz.vote_threshold(), 2u);    // 2-out-of-3 majority
  EXPECT_EQ(byz.node_count(), 4);

  const ChannelSystemConfig deg{.kind = Kind::kDegradable, .m = 1, .u = 2};
  EXPECT_EQ(deg.channel_count(), 4);      // Figure 1(b)
  EXPECT_EQ(deg.vote_threshold(), 3u);    // 3-out-of-4
  EXPECT_EQ(deg.node_count(), 5);
}

TEST(ChannelSystem, CleanFrameIsCorrectEverywhere) {
  for (const Kind kind : {Kind::kByzantineMajority, Kind::kDegradable}) {
    const ChannelSystem system({.kind = kind, .m = 1, .u = 2});
    auto adversary = faults::honest();
    const FrameResult frame = system.run_frame(
        Value::of(10), {}, false, *adversary, Value::of(0));
    EXPECT_EQ(frame.outcome, VoterOutcome::kCorrect);
    EXPECT_EQ(frame.voter_output, f_of(Value::of(10)));
    EXPECT_EQ(frame.distinct_fault_free_states, 1);  // B.2 / C.3
    EXPECT_TRUE(frame.divergence_graceful);
  }
}

TEST(ChannelSystem, B1_ByzantineMasksUpToMFaults) {
  const ChannelSystem system({.kind = Kind::kByzantineMajority, .m = 1});
  auto adversary = faults::equivocator(Value::of(10), Value::of(13));
  const FrameResult frame = system.run_frame(
      Value::of(10), {1}, false, *adversary, Value::of(999));
  EXPECT_EQ(frame.outcome, VoterOutcome::kCorrect);  // B.1
}

TEST(ChannelSystem, ByzantineSystemFailsUnsafelyPastM) {
  // Section 3: "the three-channel system may fail if two of the channels
  // obtained the same incorrect value" — with f = 2 > m the voter can emit
  // a wrong value.
  const ChannelSystem system({.kind = Kind::kByzantineMajority, .m = 1});
  const Value lie = Value::of(13);
  auto adversary = faults::constant_liar(lie);
  const FrameResult frame = system.run_frame(
      Value::of(10), {0, 1}, false, *adversary, f_of(lie));
  EXPECT_EQ(frame.outcome, VoterOutcome::kIncorrect);
}

TEST(ChannelSystem, C1_DegradableCorrectUpToM) {
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  auto adversary = faults::equivocator(Value::of(10), Value::of(13));
  const FrameResult frame = system.run_frame(
      Value::of(10), {2}, false, *adversary, Value::of(999));
  EXPECT_EQ(frame.outcome, VoterOutcome::kCorrect);
}

TEST(ChannelSystem, C2_DegradableNeverUnsafeUpToU) {
  // f = 2 > m: outcome must be correct or default — never incorrect —
  // even when the faulty channels collude on a plausible wrong output.
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  const Value lie = Value::of(13);
  for (const auto& faulty :
       std::vector<std::vector<int>>{{0, 1}, {0, 3}, {2, 3}}) {
    auto adversary = faults::constant_liar(lie);
    const FrameResult frame = system.run_frame(
        Value::of(10), faulty, false, *adversary, f_of(lie));
    EXPECT_NE(frame.outcome, VoterOutcome::kIncorrect)
        << "faulty " << faulty[0] << "," << faulty[1];
  }
}

TEST(ChannelSystem, C3_StateDivergenceIsGraceful) {
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  auto adversary = faults::pivot_equivocator(Value::of(10), Value::of(13), 3);
  const FrameResult frame = system.run_frame(
      Value::of(10), {1, 2}, false, *adversary, Value::of(999));
  EXPECT_LE(frame.distinct_fault_free_states, 2);
  EXPECT_TRUE(frame.divergence_graceful);
}

TEST(ChannelSystem, FaultySensorWithDegradableAgreement) {
  // Sensor faulty, f = 1 <= m: all channels still agree (D.2), so the
  // voter's output is unanimous (possibly "wrong" w.r.t. the nominal
  // sensor value — that is outside any protocol's power).
  const ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  auto adversary = faults::equivocator(Value::of(4), Value::of(6));
  const FrameResult frame = system.run_frame(
      Value::of(10), {}, true, *adversary, Value::of(999));
  EXPECT_EQ(frame.distinct_fault_free_states, 1);
}

TEST(ChannelSystem, CustomComputation) {
  ChannelSystem system({.kind = Kind::kDegradable, .m = 1, .u = 2});
  system.set_computation([](Value x) { return Value::of(x.raw() * x.raw()); });
  auto adversary = faults::honest();
  const FrameResult frame =
      system.run_frame(Value::of(7), {}, false, *adversary, Value::of(0));
  EXPECT_EQ(frame.voter_output, Value::of(49));
}

TEST(ChannelSystem, ResourceCostComparison) {
  // The paper: "achieving this requires more resources, but the increase
  // is minimal" — 2m+u vs 3m channels for the same m.
  const ChannelSystemConfig byz{.kind = Kind::kByzantineMajority, .m = 2};
  const ChannelSystemConfig deg{.kind = Kind::kDegradable, .m = 2, .u = 3};
  EXPECT_EQ(byz.channel_count(), 6);
  EXPECT_EQ(deg.channel_count(), 7);  // +1 channel buys u=3 safe operation
}

}  // namespace
}  // namespace da::channels
