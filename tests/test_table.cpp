#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace da {
namespace {

TEST(Table, HeaderOnly) {
  const Table t({"a", "bb"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a | bb |"), std::string::npos);
  EXPECT_NE(s.find("|---|----|"), std::string::npos);
}

TEST(Table, RowsAligned) {
  Table t({"m", "u", "N_min"});
  t.row(1, 2, 5);
  t.row(10, 20, 41);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| 1  | 2  | 5     |"), std::string::npos);
  EXPECT_NE(s.find("| 10 | 20 | 41    |"), std::string::npos);
}

TEST(Table, MixedCellTypes) {
  Table t({"name", "count"});
  t.row("alpha", 3);
  t.row(std::string("beta"), 12);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_NE(t.to_string().find("alpha"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"one", "two"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::logic_error);
}

TEST(Table, WideCellStretchesColumn) {
  Table t({"x"});
  t.row("wider-than-header");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| wider-than-header |"), std::string::npos);
  EXPECT_NE(s.find("| x                 |"), std::string::npos);
}

}  // namespace
}  // namespace da
