#include "rt/threaded_runner.hpp"

#include <gtest/gtest.h>

#include "core/agreement.hpp"
#include "core/byz.hpp"
#include "faults/adversaries.hpp"
#include "faults/search.hpp"
#include "obs/metrics.hpp"
#include "rt/mailbox.hpp"

namespace da {
namespace {

TEST(Mailbox, DepositDrainRoundTrip) {
  rt::Mailbox box(2);
  const sim::Message m1{.from = 2, .to = 0, .round = 0, .value = Value::of(1)};
  const sim::Message m2{.from = 1, .to = 0, .round = 0, .value = Value::of(2)};
  box.deposit(0, m1);
  box.deposit(0, m2);
  const auto drained = box.drain(0);
  ASSERT_EQ(drained.size(), 2u);
  // Canonical order: by sender id.
  EXPECT_EQ(drained[0].from, 1);
  EXPECT_EQ(drained[1].from, 2);
  EXPECT_TRUE(box.drain(0).empty());
  EXPECT_EQ(box.total_deposited(), 2u);
}

TEST(Mailbox, RoundsAreSeparate) {
  rt::Mailbox box(3);
  box.deposit(1, sim::Message{.from = 0, .to = 1, .round = 1});
  EXPECT_TRUE(box.drain(0).empty());
  EXPECT_EQ(box.drain(1).size(), 1u);
  EXPECT_THROW(box.deposit(3, sim::Message{}), std::logic_error);
}

TEST(ThreadedRunner, MatchesSimulatorWithoutFaults) {
  const Config config{.n = 6, .m = 1, .u = 3};
  const DegradableAgreement protocol(config);
  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = Value::of(33);
  const Outcome sim_out = protocol.run(spec, nullptr);
  const Outcome thr_out = protocol.run_threaded(spec, nullptr);
  EXPECT_EQ(sim_out.decisions, thr_out.decisions);
  EXPECT_EQ(sim_out.messages_sent, thr_out.messages_sent);
  EXPECT_EQ(sim_out.messages_delivered, thr_out.messages_delivered);
}

TEST(ThreadedRunner, MatchesSimulatorUnderAdversaries) {
  const Config config{.n = 7, .m = 1, .u = 4};
  const DegradableAgreement protocol(config);
  const auto family = faults::standard_family(77);
  for (const auto& factory : family) {
    ScenarioSpec spec;
    spec.config = config;
    spec.sender = 1;
    spec.sender_value = Value::of(12);
    spec.faulty = {0, 3, 5};
    auto a1 = factory.make(spec);
    auto a2 = factory.make(spec);
    const Outcome sim_out = protocol.run(spec, a1.get());
    const Outcome thr_out = protocol.run_threaded(spec, a2.get());
    EXPECT_EQ(sim_out.decisions, thr_out.decisions) << factory.name;
  }
}

TEST(ThreadedRunner, ManyNodes) {
  // Thread-per-node with a wide population: exercises the barrier under
  // real contention.
  const Config config{.n = 24, .m = 1, .u = 21};
  const DegradableAgreement protocol(config);
  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = Value::of(3);
  spec.faulty = {5, 6, 7};
  auto adversary = faults::random_noise(5, 0, 9, 0.2);
  const Outcome outcome = protocol.run_threaded(spec, adversary.get());
  EXPECT_EQ(outcome.decisions.size(), 24u);
  const ConditionReport report = check_conditions(spec, outcome.decisions);
  EXPECT_TRUE(report.satisfied) << report.detail;
}

TEST(ThreadedRunner, RepeatedRunsAreDeterministic) {
  const Config config{.n = 8, .m = 2, .u = 3};
  const DegradableAgreement protocol(config);
  ScenarioSpec spec;
  spec.config = config;
  spec.sender = 2;
  spec.sender_value = Value::of(5);
  spec.faulty = {0, 1, 4};
  std::map<NodeId, Value> first;
  for (int run = 0; run < 3; ++run) {
    auto adversary = faults::random_noise(9, 0, 20, 0.3);
    const Outcome outcome = protocol.run_threaded(spec, adversary.get());
    if (run == 0) {
      first = outcome.decisions;
    } else {
      EXPECT_EQ(outcome.decisions, first) << "run " << run;
    }
  }
}

TEST(ThreadedRunner, FabricationToUnknownNodeIsDroppedAndCounted) {
  // Regression: a fabrication aimed at node n+3 used to trip the mailbox
  // index lookup's contract check and abort the run; it must instead be
  // dropped (and counted) with honest traffic untouched.
  class ForeignTargetFabricator final : public sim::Adversary {
   public:
    explicit ForeignTargetFabricator(NodeId target) : target_(target) {}
    std::optional<sim::Message> corrupt(
        const sim::Message& original) override {
      return original;
    }
    std::vector<sim::Message> fabricate(NodeId node, int round) override {
      return {sim::Message{
          .from = node, .to = target_, .round = round, .value = Value::of(99)}};
    }

   private:
    NodeId target_;
  };

  const Config config{.n = 5, .m = 1, .u = 2};
  ForeignTargetFabricator adversary(/*target=*/config.n + 3);
  sim::RunOptions options;
  options.faulty = {2};
  options.adversary = &adversary;
#ifndef DA_METRICS_DISABLED
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t before =
      registry.counter_value("rt.fabrications_dropped");
#endif
  rt::ThreadedRunner runner(core::make_byz_processes(config, 0, Value::of(7)),
                            std::move(options));
  const sim::RunResult result = runner.run();
  // corrupt() is the identity, so the run matches a fault-free one except
  // for the fabricated sends (one per round) that are never delivered.
  EXPECT_EQ(result.messages_sent, result.messages_delivered + 2);
  for (NodeId i = 0; i < config.n; ++i) {
    EXPECT_EQ(result.decisions.at(i), Value::of(7)) << "node " << i;
  }
#ifndef DA_METRICS_DISABLED
  EXPECT_EQ(registry.counter_value("rt.fabrications_dropped"), before + 2);
#endif
}

TEST(ThreadedRunner, PropagatesProcessExceptions) {
  class Bomb final : public sim::Process {
   public:
    explicit Bomb(NodeId id) : id_(id) {}
    NodeId id() const override { return id_; }
    int total_rounds() const override { return 1; }
    std::vector<sim::Message> start() override {
      if (id_ == 1) throw std::runtime_error("boom");
      return {};
    }
    std::vector<sim::Message> on_round(
        int, const std::vector<sim::Message>&) override {
      return {};
    }
    Value decide() const override { return Value::def(); }

   private:
    NodeId id_;
  };
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (NodeId i = 0; i < 3; ++i) procs.push_back(std::make_unique<Bomb>(i));
  rt::ThreadedRunner runner(std::move(procs), sim::RunOptions{});
  EXPECT_THROW((void)runner.run(), std::runtime_error);
}

}  // namespace
}  // namespace da
