#include "protocols/common/eig.hpp"

#include <gtest/gtest.h>

#include "protocols/common/eig_process.hpp"
#include "sim/runner.hpp"

namespace da::protocols {
namespace {

TEST(EigTree, MissingSlotReadsAsDefault) {
  const EigTree tree(/*self=*/1, /*sender=*/0, {0, 1, 2, 3}, /*depth=*/2);
  EXPECT_EQ(tree.get(Path{0}), Value::def());
  EXPECT_FALSE(tree.has(Path{0}));
}

TEST(EigTree, DoubleSetIsContractViolation) {
  // Receivers dedupe deliveries upstream (has() in EigProcess::on_round),
  // so a second write to a slot can only be a protocol bug: it must fault
  // loudly instead of silently keeping (or replacing) the first value.
  EigTree tree(1, 0, {0, 1, 2, 3}, 2);
  tree.set(Path{0}, Value::of(5));
  EXPECT_THROW(tree.set(Path{0}, Value::of(9)), std::logic_error);
  EXPECT_THROW(tree.set(Path{0}, Value::of(5)), std::logic_error);  // same v
  EXPECT_EQ(tree.get(Path{0}), Value::of(5));
  EXPECT_EQ(tree.stored(), 1u);
}

TEST(EigTree, SharedLayoutAcrossReceivers) {
  // All receivers of one (n, sender, depth) instance share one arena
  // layout object; a different shape gets a different layout.
  const EigTree a(1, 0, {0, 1, 2, 3}, 2);
  const EigTree b(2, 0, {0, 1, 2, 3}, 2);
  EXPECT_EQ(&a.layout(), &b.layout());
  const EigTree c(1, 0, {0, 1, 2, 3}, 3);
  EXPECT_NE(&a.layout(), &c.layout());
  // Arena size = 1 + (n-1) + (n-1)(n-2) + ... up to depth levels.
  EXPECT_EQ(a.layout().size(), 1u + 3u);
  EXPECT_EQ(c.layout().size(), 1u + 3u + 6u);
}

TEST(EigTree, RejectsForeignRoot) {
  EigTree tree(1, 0, {0, 1, 2, 3}, 2);
  EXPECT_THROW(tree.set(Path{2}, Value::of(1)), std::logic_error);
}

TEST(EigTree, RejectsOverlongPath) {
  EigTree tree(1, 0, {0, 1, 2, 3}, 2);
  EXPECT_THROW(tree.set(Path{0, 2, 3}, Value::of(1)), std::logic_error);
}

TEST(EigTree, RejectsNonParticipantAndRepeatedHops) {
  // Index-addressed storage upgrades malformed paths from silent V_d
  // reads to contract violations (receivers validate upstream anyway).
  EigTree tree(1, 0, {0, 1, 2, 3}, 3);
  EXPECT_THROW(tree.set(Path{0, 9}, Value::of(1)), std::logic_error);
  EXPECT_THROW(tree.set(Path{0, 2, 2}, Value::of(1)), std::logic_error);
  EXPECT_THROW((void)tree.get(Path{0, 9}), std::logic_error);
}

TEST(EigTree, DepthOneResolveIsDirectRead) {
  EigTree tree(1, 0, {0, 1, 2}, 1);
  tree.set(Path{0}, Value::of(8));
  const MajorityResolver rule;
  EXPECT_EQ(tree.resolve(rule), Value::of(8));
}

TEST(EigTree, DepthTwoMajorityResolve) {
  // n=4, viewer 1. Root value 7; echoes: node 2 says 7, node 3 says 9.
  EigTree tree(1, 0, {0, 1, 2, 3}, 2);
  tree.set(Path{0}, Value::of(7));
  tree.set(Path{0, 2}, Value::of(7));
  tree.set(Path{0, 3}, Value::of(9));
  const MajorityResolver rule;
  // W = {7 (own), 7 (via 2), 9 (via 3)} -> majority 7.
  EXPECT_EQ(tree.resolve(rule), Value::of(7));
}

TEST(EigTree, DepthTwoByzResolveDefaultsOnSplit) {
  // BYZ rule with m=1, n_sub=4: VOTE(2,3) at the root.
  EigTree tree(1, 0, {0, 1, 2, 3}, 2);
  tree.set(Path{0}, Value::of(7));
  tree.set(Path{0, 2}, Value::of(8));
  tree.set(Path{0, 3}, Value::of(9));
  const ByzResolver rule(1);
  // W = {7, 8, 9}: nothing reaches 2 -> V_d.
  EXPECT_EQ(tree.resolve(rule), Value::def());
}

TEST(EigTree, OmittedEchoCountsAsDefault) {
  EigTree tree(1, 0, {0, 1, 2, 3}, 2);
  tree.set(Path{0}, Value::of(7));
  tree.set(Path{0, 2}, Value::of(7));
  // Node 3's echo missing -> V_d in W.
  const ByzResolver rule(1);
  // W = {7, 7, V_d}: 7 reaches VOTE(2,3).
  EXPECT_EQ(tree.resolve(rule), Value::of(7));
}

TEST(ByzResolver, ThresholdTracksSubInstanceSize) {
  const ByzResolver rule(1);
  const std::vector<Value> w{Value::of(3), Value::of(3), Value::of(4)};
  // n_sub=4 -> alpha = 2: 3 wins.
  EXPECT_EQ(rule.resolve(4, w), Value::of(3));
}

TEST(ByzResolver, AlphaBelowOneRejected) {
  const ByzResolver rule(3);
  const std::vector<Value> w{Value::of(1), Value::of(1), Value::of(1)};
  // n_sub=4 -> alpha = 0: malformed configuration.
  EXPECT_THROW((void)rule.resolve(4, w), std::logic_error);
}

TEST(EigProcess, SenderBroadcastsItsValue) {
  const auto resolver = std::make_shared<ByzResolver>(1);
  EigProcess sender(EigProcess::Params{.self = 0,
                                       .sender = 0,
                                       .nodes = {0, 1, 2, 3},
                                       .depth = 2,
                                       .input = Value::of(6),
                                       .resolver = resolver});
  const auto out = sender.start();
  ASSERT_EQ(out.size(), 3u);
  for (const auto& msg : out) {
    EXPECT_EQ(msg.from, 0);
    EXPECT_EQ(msg.path, Path{0});
    EXPECT_EQ(msg.value, Value::of(6));
  }
  EXPECT_EQ(sender.decide(), Value::of(6));
}

TEST(EigProcess, ReceiverRelaysWithAppendedPath) {
  const auto resolver = std::make_shared<ByzResolver>(1);
  EigProcess receiver(EigProcess::Params{.self = 2,
                                         .sender = 0,
                                         .nodes = {0, 1, 2, 3},
                                         .depth = 2,
                                         .resolver = resolver});
  EXPECT_TRUE(receiver.start().empty());
  const sim::Message direct{
      .from = 0, .to = 2, .round = 0, .path = Path{0}, .value = Value::of(6)};
  const auto relays = receiver.on_round(0, {direct});
  ASSERT_EQ(relays.size(), 2u);  // to nodes 1 and 3
  for (const auto& msg : relays) {
    EXPECT_EQ(msg.path, (Path{0, 2}));
    EXPECT_EQ(msg.value, Value::of(6));
    EXPECT_NE(msg.to, 0);
    EXPECT_NE(msg.to, 2);
  }
}

TEST(EigProcess, MalformedMessagesIgnored) {
  const auto resolver = std::make_shared<ByzResolver>(1);
  EigProcess receiver(EigProcess::Params{.self = 2,
                                         .sender = 0,
                                         .nodes = {0, 1, 2, 3},
                                         .depth = 2,
                                         .resolver = resolver});
  // Wrong path length for round 0.
  const sim::Message bad_len{.from = 1,
                             .to = 2,
                             .round = 0,
                             .path = Path{0, 1},
                             .value = Value::of(1)};
  // Path not ending at transmitter.
  const sim::Message bad_tail{
      .from = 1, .to = 2, .round = 0, .path = Path{0}, .value = Value::of(2)};
  // Path containing the receiver.
  const sim::Message self_path{.from = 1,
                               .to = 2,
                               .round = 1,
                               .path = Path{0, 2},
                               .value = Value::of(3)};
  // Unknown participant in path.
  const sim::Message foreign{.from = 9,
                             .to = 2,
                             .round = 1,
                             .path = Path{0, 9},
                             .value = Value::of(4)};
  EXPECT_TRUE(receiver.on_round(0, {bad_len, bad_tail}).empty());
  (void)receiver.on_round(1, {self_path, foreign});
  EXPECT_EQ(receiver.tree().stored(), 0u);
}

TEST(EigProcess, FullRunNoFaults) {
  auto procs =
      make_eig_processes(5, 0, Value::of(11), 3, std::make_shared<ByzResolver>(2));
  sim::SyncRunner runner(std::move(procs), sim::RunOptions{});
  const auto result = runner.run();
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(result.decisions.at(i), Value::of(11)) << "node " << i;
  }
  // Message count: 4 + 4*3 + 4*3*2 = 40.
  EXPECT_EQ(result.messages_sent, 40u);
}

TEST(EigProcess, SenderMustHaveNonDefaultInput) {
  const auto resolver = std::make_shared<ByzResolver>(1);
  EXPECT_THROW(EigProcess(EigProcess::Params{.self = 0,
                                             .sender = 0,
                                             .nodes = {0, 1, 2},
                                             .depth = 2,
                                             .input = Value::def(),
                                             .resolver = resolver}),
               std::logic_error);
}

}  // namespace
}  // namespace da::protocols
