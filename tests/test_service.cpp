// The agreement service (src/service/): arrival-model statistics, the
// admission/backpressure machinery, slot recycling, and the determinism
// contract — fixed (seed, arrival spec, cap, policy) must yield
// byte-identical per-job artifacts for every `jobs` value.

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "service/arrivals.hpp"

namespace da::service {
namespace {

// [[maybe_unused]]: every call site is compiled out under -DDA_METRICS=OFF.
[[maybe_unused]] std::uint64_t registry_counter(const char* name) {
  return obs::MetricsRegistry::global().counter_value(name);
}

// ------------------------------------------------------------ arrivals --

TEST(Arrivals, ParseRoundTrips) {
  for (ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kPareto}) {
    const auto parsed = parse_arrival_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_arrival_kind("uniform").has_value());
  EXPECT_FALSE(parse_arrival_kind("").has_value());
}

TEST(Arrivals, StrictlyIncreasingAndDeterministic) {
  for (ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kPareto}) {
    ArrivalSpec spec;
    switch (kind) {
      case ArrivalKind::kPoisson:
        spec = ArrivalSpec::poisson(4.0);
        break;
      case ArrivalKind::kBursty:
        spec = ArrivalSpec::bursty(4.0);
        break;
      case ArrivalKind::kPareto:
        spec = ArrivalSpec::pareto(4.0);
        break;
    }
    ArrivalGenerator a(spec, 11);
    ArrivalGenerator b(spec, 11);
    ArrivalGenerator c(spec, 12);
    double prev = 0.0;
    bool seed_matters = false;
    for (int i = 0; i < 1000; ++i) {
      const double t = a.next();
      EXPECT_GT(t, prev) << to_string(kind) << " draw " << i;
      EXPECT_DOUBLE_EQ(t, b.next()) << to_string(kind);
      if (t != c.next()) seed_matters = true;
      prev = t;
    }
    EXPECT_TRUE(seed_matters) << to_string(kind);
  }
}

TEST(Arrivals, PoissonMatchesRate) {
  const double rate = 8.0;
  ArrivalGenerator gen(ArrivalSpec::poisson(rate), 5);
  const int n = 20000;
  double last = 0.0;
  for (int i = 0; i < n; ++i) last = gen.next();
  const double observed = n / last;
  EXPECT_NEAR(observed, rate, 0.05 * rate);
}

TEST(Arrivals, BurstyMatchesLongRunRate) {
  // The ON-state rate compensates for the OFF silences: over many on/off
  // cycles the long-run rate converges to the requested mean.
  const double rate = 6.0;
  ArrivalGenerator gen(ArrivalSpec::bursty(rate), 5);
  const int n = 50000;
  double last = 0.0;
  for (int i = 0; i < n; ++i) last = gen.next();
  EXPECT_NEAR(n / last, rate, 0.15 * rate);
}

TEST(Arrivals, ParetoGapsBoundedAndMatchRate) {
  const double rate = 5.0;
  const double alpha = 1.5;
  const double cap = 100.0;
  ArrivalGenerator gen(ArrivalSpec::pareto(rate, alpha, cap), 5);
  const int n = 50000;
  double prev = 0.0;
  double last = 0.0;
  double max_gap = 0.0;
  double min_gap = 1e300;
  for (int i = 0; i < n; ++i) {
    last = gen.next();
    const double gap = last - prev;
    max_gap = std::max(max_gap, gap);
    min_gap = std::min(min_gap, gap);
    prev = last;
  }
  // Bounded support: every gap lies in [min, cap * min] where min is the
  // unscaled minimum rescaled by the mean; heavy tail means the largest
  // observed gap dwarfs the smallest.
  EXPECT_LE(max_gap, cap * min_gap * (1.0 + 1e-9));
  EXPECT_GT(max_gap, 10.0 * min_gap);
  EXPECT_NEAR(n / last, rate, 0.1 * rate);
}

// ------------------------------------------------------------- service --

ServiceConfig small_config() {
  ServiceConfig config;
  config.arrivals = ArrivalSpec::poisson(10.0);
  config.offered = 300;
  config.cap = 32;
  config.seed = 21;
  return config;
}

TEST(Service, CompletesEveryJobUnderBlockPolicy) {
  ServiceConfig config = small_config();
  config.policy = OverloadPolicy::kBlock;
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.completed, config.offered);
  EXPECT_EQ(result.shed, 0u);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.records.size(), config.offered);
  for (const JobRecord& rec : result.records) {
    EXPECT_FALSE(rec.shed);
    EXPECT_GE(rec.admitted, rec.arrival);
    EXPECT_GT(rec.completed, rec.admitted);
    EXPECT_TRUE(rec.satisfied) << "job " << rec.id;
    EXPECT_NE(rec.applied, Condition::kNone) << "job " << rec.id;
    EXPECT_NE(rec.decisions_digest, 0u) << "job " << rec.id;
  }
  EXPECT_GT(result.throughput(), 0.0);
  // Nearest-rank quantiles are monotone in q.
  EXPECT_LE(result.latency_quantile(0.5), result.latency_quantile(0.9));
  EXPECT_LE(result.latency_quantile(0.9), result.latency_quantile(0.99));
}

TEST(Service, DeterministicAcrossJobsValues) {
  // The acceptance pin: jobs=1 and jobs=4 must produce byte-identical
  // artifacts and equal digests for every arrival model.
  for (ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kPareto}) {
    ServiceConfig config = small_config();
    switch (kind) {
      case ArrivalKind::kPoisson:
        config.arrivals = ArrivalSpec::poisson(20.0);
        break;
      case ArrivalKind::kBursty:
        config.arrivals = ArrivalSpec::bursty(20.0);
        break;
      case ArrivalKind::kPareto:
        config.arrivals = ArrivalSpec::pareto(20.0);
        break;
    }
    config.cap = 16;  // force queueing so admission order is exercised
    config.queue_cap = 8;
    config.jobs = 1;
    const ServiceResult lone = run_service(config);
    config.jobs = 4;
    const ServiceResult fleet = run_service(config);
    EXPECT_EQ(lone.digest(), fleet.digest()) << to_string(kind);
    EXPECT_EQ(lone.artifact(), fleet.artifact()) << to_string(kind);
    EXPECT_EQ(lone.completed, fleet.completed) << to_string(kind);
    EXPECT_EQ(lone.shed, fleet.shed) << to_string(kind);
    EXPECT_EQ(lone.peak_active, fleet.peak_active) << to_string(kind);
  }
}

TEST(Service, RepeatedRunsOfOneServiceAreIdentical) {
  AgreementService svc(small_config());
  const ServiceResult first = svc.run();
  const ServiceResult second = svc.run();
  EXPECT_EQ(first.digest(), second.digest());
  EXPECT_EQ(first.artifact(), second.artifact());
}

TEST(Service, SlotRecyclingIsAllocationFreeAfterWarmup) {
  // Churn >= 10k instances through a small pool: after the first run has
  // warmed every shape's free list, further admissions must not construct
  // a single new slot — `slots_created` freezes while `slot_reuse` grows
  // by at least the offered load. (An IC job counts config.n instances,
  // so 10k offered jobs exceed 10k instances.)
  ServiceConfig config = small_config();
  config.offered = 10000;
  config.cap = 24;
  config.policy = OverloadPolicy::kBlock;
  AgreementService svc(config);
  (void)svc.run();  // warm-up: constructs the steady-state pool
  const std::uint64_t warm_slots = svc.slots_created();
  const std::uint64_t warm_reuses = svc.slot_reuses();
  EXPECT_GT(warm_slots, 0u);
  // Free lists are per shape, so the pool can hold up to `cap` slots for
  // each of the default mix's 7 shapes (3 BYZ + 4 IC coordinates) — still
  // a constant, vanishing next to the 10k-job churn.
  EXPECT_LE(warm_slots, static_cast<std::uint64_t>(config.cap) * 7);
#ifndef DA_METRICS_DISABLED
  const std::uint64_t warm_counter = registry_counter("service.slots_created");
#endif

  const ServiceResult churn = svc.run();
  EXPECT_EQ(churn.completed, config.offered);
  EXPECT_EQ(svc.slots_created(), warm_slots)
      << "steady-state admission constructed a slot";
  EXPECT_GE(svc.slot_reuses() - warm_reuses, config.offered);
#ifndef DA_METRICS_DISABLED
  // Registry counters mirror the service's own tallies — unless the
  // -DDA_METRICS=OFF kill switch compiled them to no-ops.
  EXPECT_EQ(registry_counter("service.slots_created"), warm_counter);
  EXPECT_GE(registry_counter("service.slot_reuse"), svc.slot_reuses());
#endif
}

TEST(Service, ShedOldestBoundsTheQueue) {
  ServiceConfig config = small_config();
  config.arrivals = ArrivalSpec::poisson(50.0);  // ~6x what cap=8 drains
  config.offered = 400;
  config.cap = 8;
  config.queue_cap = 16;
  config.policy = OverloadPolicy::kShedOldest;
  const ServiceResult result = run_service(config);
  EXPECT_GT(result.shed, 0u);
  EXPECT_EQ(result.completed + result.shed, config.offered);
  std::uint64_t shed_seen = 0;
  for (const JobRecord& rec : result.records) {
    if (rec.shed) {
      ++shed_seen;
      EXPECT_LT(rec.admitted, 0.0);
      EXPECT_LT(rec.completed, 0.0);
    } else {
      EXPECT_GE(rec.completed, 0.0) << "job " << rec.id;
      // The bounded queue caps how long any admitted job waited.
      EXPECT_LE(rec.queue_wait(), result.makespan);
    }
  }
  EXPECT_EQ(shed_seen, result.shed);
}

TEST(Service, BlockPolicyTradesLatencyForCompleteness) {
  ServiceConfig config = small_config();
  config.arrivals = ArrivalSpec::poisson(50.0);
  config.offered = 400;
  config.cap = 8;
  config.policy = OverloadPolicy::kBlock;
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.completed, config.offered);
  EXPECT_EQ(result.shed, 0u);
  bool queued = false;
  for (const JobRecord& rec : result.records) {
    if (rec.queue_wait() > 0.0) queued = true;
  }
  EXPECT_TRUE(queued) << "overload never queued anything";
}

TEST(Service, IcJobOccupiesItsWidthInSlots) {
  ServiceConfig config;
  config.arrivals = ArrivalSpec::poisson(0.05);  // sparse: one at a time
  config.offered = 5;
  config.cap = 4;
  config.seed = 3;
  config.mix.push_back({JobKind::kIc, Config{.n = 4, .m = 1, .u = 1}, 0,
                        Value::of(17), {3}});
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.completed, config.offered);
  EXPECT_EQ(result.violations, 0u);
  // Each IC job holds all n = 4 coordinate slots while active.
  EXPECT_EQ(result.peak_active, 4);
  for (const JobRecord& rec : result.records) {
    EXPECT_TRUE(rec.satisfied);
    EXPECT_NE(rec.applied, Condition::kNone);
  }
}

TEST(Service, DefaultMixShapesAreFeasible) {
  for (const JobTemplate& tmpl : default_mix()) {
    EXPECT_TRUE(tmpl.config.valid()) << tmpl.to_string();
    EXPECT_FALSE(tmpl.to_string().empty());
    EXPECT_LE(static_cast<int>(tmpl.faulty.size()), tmpl.config.m + tmpl.config.u)
        << tmpl.to_string();
  }
}

}  // namespace
}  // namespace da::service
