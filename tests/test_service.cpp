// The agreement service (src/service/): arrival-model statistics, the
// admission/backpressure machinery, slot recycling, and the determinism
// contract — fixed (seed, arrival spec, cap, policy) must yield
// byte-identical per-job artifacts for every `jobs` value.

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "core/byz.hpp"
#include "core/scenario.hpp"
#include "obs/metrics.hpp"
#include "service/admission.hpp"
#include "service/arrivals.hpp"

namespace da::service {
namespace {

// [[maybe_unused]]: every call site is compiled out under -DDA_METRICS=OFF.
[[maybe_unused]] std::uint64_t registry_counter(const char* name) {
  return obs::MetricsRegistry::global().counter_value(name);
}

// ------------------------------------------------------------ arrivals --

TEST(Arrivals, ParseRoundTrips) {
  for (ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kPareto}) {
    const auto parsed = parse_arrival_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_arrival_kind("uniform").has_value());
  EXPECT_FALSE(parse_arrival_kind("").has_value());
}

TEST(Arrivals, StrictlyIncreasingAndDeterministic) {
  for (ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kPareto}) {
    ArrivalSpec spec;
    switch (kind) {
      case ArrivalKind::kPoisson:
        spec = ArrivalSpec::poisson(4.0);
        break;
      case ArrivalKind::kBursty:
        spec = ArrivalSpec::bursty(4.0);
        break;
      case ArrivalKind::kPareto:
        spec = ArrivalSpec::pareto(4.0);
        break;
    }
    ArrivalGenerator a(spec, 11);
    ArrivalGenerator b(spec, 11);
    ArrivalGenerator c(spec, 12);
    double prev = 0.0;
    bool seed_matters = false;
    for (int i = 0; i < 1000; ++i) {
      const double t = a.next();
      EXPECT_GT(t, prev) << to_string(kind) << " draw " << i;
      EXPECT_DOUBLE_EQ(t, b.next()) << to_string(kind);
      if (t != c.next()) seed_matters = true;
      prev = t;
    }
    EXPECT_TRUE(seed_matters) << to_string(kind);
  }
}

TEST(Arrivals, PoissonMatchesRate) {
  const double rate = 8.0;
  ArrivalGenerator gen(ArrivalSpec::poisson(rate), 5);
  const int n = 20000;
  double last = 0.0;
  for (int i = 0; i < n; ++i) last = gen.next();
  const double observed = n / last;
  EXPECT_NEAR(observed, rate, 0.05 * rate);
}

TEST(Arrivals, BurstyMatchesLongRunRate) {
  // The ON-state rate compensates for the OFF silences: over many on/off
  // cycles the long-run rate converges to the requested mean.
  const double rate = 6.0;
  ArrivalGenerator gen(ArrivalSpec::bursty(rate), 5);
  const int n = 50000;
  double last = 0.0;
  for (int i = 0; i < n; ++i) last = gen.next();
  EXPECT_NEAR(n / last, rate, 0.15 * rate);
}

TEST(Arrivals, BurstyOpensInTheOnState) {
  // Construction-state pin: the phase machine starts ON at t=0 with a
  // first phase boundary drawn from the ON mean.
  ArrivalGenerator gen(ArrivalSpec::bursty(4.0), 7);
  EXPECT_TRUE(gen.bursty_on());
  EXPECT_DOUBLE_EQ(gen.now(), 0.0);
  EXPECT_GT(gen.bursty_phase_end(), 0.0);

  // Statistical pin that fails on an OFF-start generator. bursty(4.0)
  // bursts at rate 16 with a mean OFF period of 15: opening ON puts the
  // mean first arrival near 1/16 (~0.06, plus a small correction for
  // streams whose first ON phase ends before the first draw), while
  // opening OFF would push it past the OFF mean, near 15.
  double sum = 0.0;
  const int seeds = 400;
  for (int s = 0; s < seeds; ++s) {
    ArrivalGenerator g(ArrivalSpec::bursty(4.0), 1000 + s);
    sum += g.next();
  }
  const double mean_first = sum / seeds;
  EXPECT_GT(mean_first, 0.0);
  EXPECT_LT(mean_first, 2.0) << "stream appears to open in the OFF state";
}

TEST(Arrivals, BurstyNeverArrivesInsideAnOffPhase) {
  // Every arrival must land inside an ON phase: after next() returns the
  // machine sits in the ON phase containing the arrival, with the arrival
  // no later than that phase's end. Distinct phase boundaries prove the
  // walk actually cycled through OFF silences rather than idling in one
  // long ON phase.
  ArrivalGenerator gen(ArrivalSpec::bursty(6.0), 9);
  std::set<double> phase_ends;
  for (int i = 0; i < 20000; ++i) {
    const double t = gen.next();
    ASSERT_TRUE(gen.bursty_on()) << "arrival " << i << " inside OFF";
    ASSERT_LE(t, gen.bursty_phase_end()) << "arrival " << i;
    ASSERT_DOUBLE_EQ(gen.now(), t);
    phase_ends.insert(gen.bursty_phase_end());
  }
  EXPECT_GT(phase_ends.size(), 100u) << "phase machine never left ON";
}

TEST(Arrivals, ReconstructedGeneratorReplaysTheStream) {
  // Reconstruction determinism: a fresh generator with the same (spec,
  // seed) replays the identical stream, including the bursty phase-machine
  // state at every step.
  const ArrivalSpec spec = ArrivalSpec::bursty(8.0);
  std::vector<double> times;
  std::vector<double> ends;
  {
    ArrivalGenerator gen(spec, 31);
    for (int i = 0; i < 5000; ++i) {
      times.push_back(gen.next());
      ends.push_back(gen.bursty_phase_end());
    }
  }
  ArrivalGenerator replay(spec, 31);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_DOUBLE_EQ(replay.next(), times[static_cast<std::size_t>(i)]);
    EXPECT_DOUBLE_EQ(replay.bursty_phase_end(),
                     ends[static_cast<std::size_t>(i)]);
  }
}

TEST(Arrivals, ParetoGapsBoundedAndMatchRate) {
  const double rate = 5.0;
  const double alpha = 1.5;
  const double cap = 100.0;
  ArrivalGenerator gen(ArrivalSpec::pareto(rate, alpha, cap), 5);
  const int n = 50000;
  double prev = 0.0;
  double last = 0.0;
  double max_gap = 0.0;
  double min_gap = 1e300;
  for (int i = 0; i < n; ++i) {
    last = gen.next();
    const double gap = last - prev;
    max_gap = std::max(max_gap, gap);
    min_gap = std::min(min_gap, gap);
    prev = last;
  }
  // Bounded support: every gap lies in [min, cap * min] where min is the
  // unscaled minimum rescaled by the mean; heavy tail means the largest
  // observed gap dwarfs the smallest.
  EXPECT_LE(max_gap, cap * min_gap * (1.0 + 1e-9));
  EXPECT_GT(max_gap, 10.0 * min_gap);
  EXPECT_NEAR(n / last, rate, 0.1 * rate);
}

// ------------------------------------------------------------- service --

ServiceConfig small_config() {
  ServiceConfig config;
  config.arrivals = ArrivalSpec::poisson(10.0);
  config.offered = 300;
  config.cap = 32;
  config.seed = 21;
  return config;
}

TEST(Service, CompletesEveryJobUnderBlockPolicy) {
  ServiceConfig config = small_config();
  config.policy = OverloadPolicy::kBlock;
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.completed, config.offered);
  EXPECT_EQ(result.shed, 0u);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.records.size(), config.offered);
  for (const JobRecord& rec : result.records) {
    EXPECT_FALSE(rec.shed);
    EXPECT_GE(rec.admitted, rec.arrival);
    EXPECT_GT(rec.completed, rec.admitted);
    EXPECT_TRUE(rec.satisfied) << "job " << rec.id;
    EXPECT_NE(rec.applied, Condition::kNone) << "job " << rec.id;
    EXPECT_NE(rec.decisions_digest, 0u) << "job " << rec.id;
  }
  EXPECT_GT(result.throughput(), 0.0);
  // Nearest-rank quantiles are monotone in q.
  EXPECT_LE(result.latency_quantile(0.5), result.latency_quantile(0.9));
  EXPECT_LE(result.latency_quantile(0.9), result.latency_quantile(0.99));
}

TEST(Service, DeterministicAcrossJobsValues) {
  // The acceptance pin: jobs=1 and jobs=4 must produce byte-identical
  // artifacts and equal digests for every arrival model.
  for (ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kPareto}) {
    ServiceConfig config = small_config();
    switch (kind) {
      case ArrivalKind::kPoisson:
        config.arrivals = ArrivalSpec::poisson(20.0);
        break;
      case ArrivalKind::kBursty:
        config.arrivals = ArrivalSpec::bursty(20.0);
        break;
      case ArrivalKind::kPareto:
        config.arrivals = ArrivalSpec::pareto(20.0);
        break;
    }
    config.cap = 16;  // force queueing so admission order is exercised
    config.queue_cap = 8;
    config.jobs = 1;
    const ServiceResult lone = run_service(config);
    config.jobs = 4;
    const ServiceResult fleet = run_service(config);
    EXPECT_EQ(lone.digest(), fleet.digest()) << to_string(kind);
    EXPECT_EQ(lone.artifact(), fleet.artifact()) << to_string(kind);
    EXPECT_EQ(lone.completed, fleet.completed) << to_string(kind);
    EXPECT_EQ(lone.shed, fleet.shed) << to_string(kind);
    EXPECT_EQ(lone.peak_active, fleet.peak_active) << to_string(kind);
  }
}

TEST(Service, RepeatedRunsOfOneServiceAreIdentical) {
  AgreementService svc(small_config());
  const ServiceResult first = svc.run();
  const ServiceResult second = svc.run();
  EXPECT_EQ(first.digest(), second.digest());
  EXPECT_EQ(first.artifact(), second.artifact());
}

TEST(Service, SlotRecyclingIsAllocationFreeAfterWarmup) {
  // Churn >= 10k instances through a small pool: after the first run has
  // warmed every shape's free list, further admissions must not construct
  // a single new slot — `slots_created` freezes while `slot_reuse` grows
  // by at least the offered load. (An IC job counts config.n instances,
  // so 10k offered jobs exceed 10k instances.)
  ServiceConfig config = small_config();
  config.offered = 10000;
  config.cap = 24;
  config.policy = OverloadPolicy::kBlock;
  AgreementService svc(config);
  (void)svc.run();  // warm-up: constructs the steady-state pool
  const std::uint64_t warm_slots = svc.slots_created();
  const std::uint64_t warm_reuses = svc.slot_reuses();
  EXPECT_GT(warm_slots, 0u);
  // Free lists are per shape, so the pool can hold up to `cap` slots for
  // each of the default mix's 7 shapes (3 BYZ + 4 IC coordinates) — still
  // a constant, vanishing next to the 10k-job churn.
  EXPECT_LE(warm_slots, static_cast<std::uint64_t>(config.cap) * 7);
#ifndef DA_METRICS_DISABLED
  const std::uint64_t warm_counter = registry_counter("service.slots_created");
#endif

  const ServiceResult churn = svc.run();
  EXPECT_EQ(churn.completed, config.offered);
  EXPECT_EQ(svc.slots_created(), warm_slots)
      << "steady-state admission constructed a slot";
  EXPECT_GE(svc.slot_reuses() - warm_reuses, config.offered);
#ifndef DA_METRICS_DISABLED
  // Registry counters mirror the service's own tallies — unless the
  // -DDA_METRICS=OFF kill switch compiled them to no-ops.
  EXPECT_EQ(registry_counter("service.slots_created"), warm_counter);
  EXPECT_GE(registry_counter("service.slot_reuse"), svc.slot_reuses());
#endif
}

TEST(Service, ShedOldestBoundsTheQueue) {
  ServiceConfig config = small_config();
  config.arrivals = ArrivalSpec::poisson(50.0);  // ~6x what cap=8 drains
  config.offered = 400;
  config.cap = 8;
  config.queue_cap = 16;
  config.policy = OverloadPolicy::kShedOldest;
  const ServiceResult result = run_service(config);
  EXPECT_GT(result.shed, 0u);
  EXPECT_EQ(result.completed + result.shed, config.offered);
  std::uint64_t shed_seen = 0;
  for (const JobRecord& rec : result.records) {
    if (rec.shed) {
      ++shed_seen;
      EXPECT_LT(rec.admitted, 0.0);
      EXPECT_LT(rec.completed, 0.0);
    } else {
      EXPECT_GE(rec.completed, 0.0) << "job " << rec.id;
      // The bounded queue caps how long any admitted job waited.
      EXPECT_LE(rec.queue_wait(), result.makespan);
    }
  }
  EXPECT_EQ(shed_seen, result.shed);
}

TEST(Service, BlockPolicyTradesLatencyForCompleteness) {
  ServiceConfig config = small_config();
  config.arrivals = ArrivalSpec::poisson(50.0);
  config.offered = 400;
  config.cap = 8;
  config.policy = OverloadPolicy::kBlock;
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.completed, config.offered);
  EXPECT_EQ(result.shed, 0u);
  bool queued = false;
  for (const JobRecord& rec : result.records) {
    if (rec.queue_wait() > 0.0) queued = true;
  }
  EXPECT_TRUE(queued) << "overload never queued anything";
}

TEST(Service, IcJobOccupiesItsWidthInSlots) {
  ServiceConfig config;
  config.arrivals = ArrivalSpec::poisson(0.05);  // sparse: one at a time
  config.offered = 5;
  config.cap = 4;
  config.seed = 3;
  config.mix.push_back({JobKind::kIc, Config{.n = 4, .m = 1, .u = 1}, 0,
                        Value::of(17), {3}});
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.completed, config.offered);
  EXPECT_EQ(result.violations, 0u);
  // Each IC job holds all n = 4 coordinate slots while active.
  EXPECT_EQ(result.peak_active, 4);
  for (const JobRecord& rec : result.records) {
    EXPECT_TRUE(rec.satisfied);
    EXPECT_NE(rec.applied, Condition::kNone);
  }
}

TEST(Service, DefaultMixShapesAreFeasible) {
  for (const JobTemplate& tmpl : default_mix()) {
    EXPECT_TRUE(tmpl.config.valid()) << tmpl.to_string();
    EXPECT_TRUE(tmpl.config.engine_runnable()) << tmpl.to_string();
    EXPECT_FALSE(tmpl.to_string().empty());
    EXPECT_LE(static_cast<int>(tmpl.faulty.size()), tmpl.config.m + tmpl.config.u)
        << tmpl.to_string();
  }
}

// ----------------------------------------------------------- admission --

TEST(Admission, ParseRoundTrips) {
  for (AdmissionClass cls : {AdmissionClass::kHigh, AdmissionClass::kNormal,
                             AdmissionClass::kLow}) {
    const auto parsed = parse_admission_class(to_string(cls));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, cls);
  }
  EXPECT_FALSE(parse_admission_class("urgent").has_value());
  EXPECT_FALSE(parse_admission_class("").has_value());
}

TEST(Admission, ClassMajorFifoOrderAndBlocking) {
  AdmissionQueue q;
  EXPECT_TRUE(q.empty());
  // Nothing queued blocks nothing.
  EXPECT_FALSE(q.blocks(AdmissionClass::kHigh));
  EXPECT_FALSE(q.blocks(AdmissionClass::kLow));

  q.push(AdmissionClass::kLow, {.job = 1, .width = 2});
  q.push(AdmissionClass::kNormal, {.job = 2});
  q.push(AdmissionClass::kLow, {.job = 3});
  q.push(AdmissionClass::kHigh, {.job = 4});
  q.push(AdmissionClass::kNormal, {.job = 5});
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.size_of(AdmissionClass::kHigh), 1u);
  EXPECT_EQ(q.size_of(AdmissionClass::kNormal), 2u);
  EXPECT_EQ(q.size_of(AdmissionClass::kLow), 2u);
  EXPECT_EQ(q.queued_width(), 6);  // 4 unit jobs + one width-2 job

  // A queued normal blocks arriving normal/low but lets high overtake.
  EXPECT_TRUE(q.blocks(AdmissionClass::kLow));
  EXPECT_TRUE(q.blocks(AdmissionClass::kNormal));
  EXPECT_TRUE(q.blocks(AdmissionClass::kHigh));  // job 4 queued
  // The admission head walks (class, FIFO): 4, 2, 5, 1, 3.
  const std::uint64_t expected[] = {4, 2, 5, 1, 3};
  for (const std::uint64_t want : expected) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.front().job, want);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.queued_width(), 0);
}

TEST(Admission, ShedVictimIsOldestOfLowestClass) {
  AdmissionQueue q;
  q.push(AdmissionClass::kHigh, {.job = 1});
  q.push(AdmissionClass::kLow, {.job = 2});
  q.push(AdmissionClass::kLow, {.job = 3});
  q.push(AdmissionClass::kNormal, {.job = 4});
  // Sheds consume kLow oldest-first, then kNormal, then kHigh.
  EXPECT_EQ(q.pop_shed_victim().job, 2u);
  EXPECT_EQ(q.pop_shed_victim().job, 3u);
  EXPECT_EQ(q.pop_shed_victim().job, 4u);
  EXPECT_EQ(q.pop_shed_victim().job, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(Admission, ExpireRemovesOnlyPastDeadlines) {
  AdmissionQueue q;
  q.push(AdmissionClass::kNormal, {.job = 1, .deadline_at = 5.0});
  q.push(AdmissionClass::kNormal, {.job = 2});  // kNoDeadline
  q.push(AdmissionClass::kLow, {.job = 3, .deadline_at = 2.0});
  q.push(AdmissionClass::kHigh, {.job = 4, .deadline_at = 3.0});

  std::vector<std::uint64_t> expired;
  const auto collect = [&expired](AdmissionClass, const QueuedJob& victim) {
    expired.push_back(victim.job);
  };
  q.expire(2.0, collect);  // strictly-before: deadline_at == now survives
  EXPECT_TRUE(expired.empty());
  q.expire(3.5, collect);  // class-major order: high job 4, then low job 3
  EXPECT_EQ(expired, (std::vector<std::uint64_t>{4, 3}));
  EXPECT_EQ(q.size(), 2u);
  q.expire(1e9, collect);  // job 2 has no deadline and never expires
  EXPECT_EQ(expired, (std::vector<std::uint64_t>{4, 3, 1}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.front().job, 2u);
}

TEST(Service, RejectsEngineUnrunnableConfigAtTheBoundary) {
  // (n=2, m=1) is well-formed but below the engine floor n >= 2m+1: the
  // deepest VOTE quorum would be empty. Before the structured boundary
  // this aborted via a contract failure deep inside EIG setup; now both
  // the engine factory and service construction throw a typed,
  // recoverable rejection carrying the offending config.
  const Config bad{.n = 2, .m = 1, .u = 1};
  EXPECT_TRUE(bad.valid());
  EXPECT_FALSE(bad.engine_runnable());

  try {
    (void)core::make_byz_processes(bad, 0, Value::of(17));
    FAIL() << "the engine factory accepted an engine-unrunnable config";
  } catch (const UnsupportedConfig& rejected) {
    EXPECT_EQ(rejected.config().n, 2);
    EXPECT_EQ(rejected.config().m, 1);
    EXPECT_NE(std::string(rejected.what()).find("n >= 2m+1"),
              std::string::npos);
  }

  ServiceConfig config = small_config();
  config.mix.push_back(
      {JobKind::kByz, bad, 0, Value::of(17), {1}, AdmissionClass::kNormal});
  EXPECT_THROW(AgreementService{config}, UnsupportedConfig);

  // The boundary, not valid(): n=3, m=1 sits exactly on the floor.
  EXPECT_TRUE((Config{.n = 3, .m = 1, .u = 1}).engine_runnable());
}

TEST(Service, ShedConsumesLowestClassFirstUnderOverload) {
  // Sustained ~5x overload: the default mix spreads jobs over
  // kHigh/kNormal/kLow, and shed-lowest-class-first must make the lower
  // classes absorb the loss while the high class rides the overload out
  // untouched. (The queue bound must exceed the high-class backlog — a
  // queue saturated end-to-end with high jobs would shed highs too.)
  ServiceConfig config;
  config.arrivals = ArrivalSpec::poisson(20.0);
  config.offered = 400;
  config.cap = 8;
  config.queue_cap = 32;
  config.policy = OverloadPolicy::kShedOldest;
  config.seed = 21;
  const ServiceResult result = run_service(config);
  EXPECT_GT(result.shed, 0u);
  EXPECT_EQ(result.completed + result.shed, config.offered);

  std::array<std::uint64_t, kAdmissionClassCount> offered_by{};
  std::array<std::uint64_t, kAdmissionClassCount> shed_by{};
  for (const JobRecord& rec : result.records) {
    const auto c = static_cast<std::size_t>(index_of(rec.admission));
    ++offered_by[c];
    if (rec.shed) {
      ++shed_by[c];
      EXPECT_FALSE(rec.deadline_missed);  // no template carries a deadline
    }
  }
  const auto high = static_cast<std::size_t>(index_of(AdmissionClass::kHigh));
  const auto low = static_cast<std::size_t>(index_of(AdmissionClass::kLow));
  EXPECT_GT(offered_by[high], 0u);
  EXPECT_GT(offered_by[low], 0u);
  EXPECT_EQ(shed_by[high], 0u) << "overload shed a protected high-class job";
  EXPECT_GT(shed_by[low], 0u);
  // The low class loses a larger *fraction* than every other class.
  const double low_loss =
      static_cast<double>(shed_by[low]) / static_cast<double>(offered_by[low]);
  for (std::size_t c = 0; c < kAdmissionClassCount; ++c) {
    if (c == low) continue;
    const double loss = offered_by[c] == 0
                            ? 0.0
                            : static_cast<double>(shed_by[c]) /
                                  static_cast<double>(offered_by[c]);
    EXPECT_GT(low_loss, loss) << "class " << c;
  }
}

TEST(Service, DeadlineMissedIsADistinctDisposition) {
  // One minimal BYZ template with a tight admission deadline under heavy
  // overload and the *block* policy: the only way out of the queue is
  // admission or expiry, so every shed is a deadline miss.
  ServiceConfig config;
  config.arrivals = ArrivalSpec::poisson(50.0);
  config.offered = 300;
  config.cap = 4;
  config.policy = OverloadPolicy::kBlock;
  config.seed = 13;
  JobTemplate tmpl = default_mix()[1];  // n=4 m=1, completes in 2 ticks
  tmpl.deadline = 2.0;
  config.mix.push_back(tmpl);

  config.jobs = 1;
  const ServiceResult result = run_service(config);
  EXPECT_GT(result.deadline_missed, 0u);
  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.deadline_missed, result.shed)
      << "kBlock shed a job for a reason other than its deadline";
  EXPECT_EQ(result.completed + result.shed, config.offered);
  for (const JobRecord& rec : result.records) {
    if (!rec.deadline_missed) continue;
    EXPECT_TRUE(rec.shed);
    EXPECT_LT(rec.admitted, 0.0);
    EXPECT_LT(rec.completed, 0.0);
    // Shed exactly at the deadline instant, relative to arrival.
    EXPECT_NEAR(rec.shed_at, rec.arrival + tmpl.deadline, 1e-9);
  }
  // The artifact reports the distinct disposition.
  EXPECT_NE(result.artifact().find("DEADLINE"), std::string::npos);
  EXPECT_EQ(result.artifact().find(" SHED"), std::string::npos);

  // Deadline expiry happens on the event loop, so the records stay
  // byte-identical for every jobs value.
  config.jobs = 4;
  const ServiceResult fleet = run_service(config);
  EXPECT_EQ(result.digest(), fleet.digest());
  EXPECT_EQ(result.artifact(), fleet.artifact());
}

#ifndef DA_METRICS_DISABLED
TEST(ServiceObs, CompletedCounterAgreesAtEveryInstant) {
  // The counter-drift regression: `service.completed` is bumped at
  // completion time, so a registry read at *any* event instant agrees
  // with the service's own tally and with the periodic samples — not
  // just after an end-of-run fold. Drive the service manually (the same
  // primitives run() uses) and check at every event boundary.
  ServiceConfig config = small_config();
  config.offered = 150;
  config.cap = 16;
  config.jobs = 1;  // all completions on this thread => exact TLS flush
  AgreementService svc(config);

  const std::uint64_t base = registry_counter("service.completed");
  constexpr double kNever = std::numeric_limits<double>::infinity();
  ArrivalGenerator gen(config.arrivals, config.seed);
  svc.begin_run(config.offered);
  std::uint64_t arrived = 0;
  double next_arrival = gen.next();
  double next_tick = kNever;
  double now = 0.0;
  while (svc.finished() < config.offered) {
    if (arrived < config.offered && next_arrival <= next_tick) {
      now = next_arrival;
      const std::uint64_t id = arrived++;
      next_arrival = arrived < config.offered ? gen.next() : kNever;
      JobOffer offer;
      offer.id = id;
      offer.template_index =
          draw_template_index(config.seed, id, svc.mix().size());
      offer.adversary_index =
          draw_adversary_index(config.seed, id, svc.adversary_count());
      svc.offer_job(offer, now);
      if (!svc.idle() && next_tick == kNever) {
        next_tick = now + config.round_period;
      }
    } else {
      ASSERT_NE(next_tick, kNever);
      now = next_tick;
      svc.step(now);
      next_tick = svc.idle() ? kNever : now + config.round_period;
    }
    // The pin: the registry agrees with the event-loop tally *now*.
    ASSERT_EQ(registry_counter("service.completed") - base,
              svc.completed_so_far());
  }
  const ServiceResult result = svc.end_run(now);
  EXPECT_EQ(result.completed, config.offered);
  EXPECT_EQ(registry_counter("service.completed") - base, result.completed);

  // The periodic samples carry the same instant-consistent tally: each
  // point's completed figure is the event-loop tally at its instant, so
  // the series is monotone, per-class slices sum to it, and the closing
  // point equals the counter's final value.
  config.sample_every = 0.5;
  const std::uint64_t sampled_base = registry_counter("service.completed");
  const ServiceResult sampled = run_service(config);
  ASSERT_FALSE(sampled.samples.empty());
  std::uint64_t prev = 0;
  for (const ServiceSample& sample : sampled.samples) {
    EXPECT_GE(sample.completed, prev);
    std::uint64_t by_class = 0;
    for (const std::uint64_t c : sample.completed_by_class) by_class += c;
    EXPECT_EQ(by_class, sample.completed);
    prev = sample.completed;
  }
  EXPECT_EQ(sampled.samples.back().completed, sampled.completed);
  EXPECT_EQ(registry_counter("service.completed") - sampled_base,
            sampled.completed);
}
#endif

}  // namespace
}  // namespace da::service
