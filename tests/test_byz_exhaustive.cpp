#include <gtest/gtest.h>

#include "faults/search.hpp"

namespace da {
namespace {

/// Exhaustive adversarial sweeps. For every feasible configuration in the
/// table below, `search_violation` runs BYZ(m,m) against every faulty
/// subset of every size up to u, under the whole standard adversary family,
/// and must come back empty — the executable counterpart of Theorem 1.
class ExhaustiveFeasible : public ::testing::TestWithParam<Config> {};

TEST_P(ExhaustiveFeasible, NoViolationExists) {
  const Config config = GetParam();
  ASSERT_TRUE(config.feasible());
  faults::SearchOptions options;
  options.seed = 11;
  const auto violation = faults::search_violation(config, options);
  EXPECT_FALSE(violation.has_value())
      << violation->spec.to_string() << " broken by " << violation->adversary
      << ": " << violation->report.detail;
}

INSTANTIATE_TEST_SUITE_P(
    MinimalAndSlack, ExhaustiveFeasible,
    ::testing::Values(Config{.n = 4, .m = 1, .u = 1},   // Lamport minimal
                      Config{.n = 5, .m = 1, .u = 2},   // paper's Part I
                      Config{.n = 6, .m = 1, .u = 3},
                      Config{.n = 3, .m = 0, .u = 2},
                      Config{.n = 4, .m = 0, .u = 3},
                      Config{.n = 7, .m = 2, .u = 2},
                      Config{.n = 6, .m = 1, .u = 2}),  // one node of slack
    [](const ::testing::TestParamInfo<Config>& info) {
      return "n" + std::to_string(info.param.n) + "_m" +
             std::to_string(info.param.m) + "_u" +
             std::to_string(info.param.u);
    });

/// One node below the bound the protocol must break — and the search
/// demonstrates it constructively (Theorem 2 made executable).
class ExhaustiveInfeasible : public ::testing::TestWithParam<Config> {};

TEST_P(ExhaustiveInfeasible, ViolationIsFound) {
  const Config config = GetParam();
  ASSERT_FALSE(config.feasible());
  faults::SearchOptions options;
  options.seed = 11;
  options.all_senders = true;
  const auto violation = faults::search_violation(config, options);
  ASSERT_TRUE(violation.has_value());
  // The breakage must show up only in degraded mode or exact mode with
  // f <= u (the search never exceeds u faults).
  EXPECT_LE(violation->spec.f(), config.u);
}

INSTANTIATE_TEST_SUITE_P(
    OneNodeShort, ExhaustiveInfeasible,
    ::testing::Values(Config{.n = 4, .m = 1, .u = 2},   // the Figure 2 case
                      Config{.n = 5, .m = 1, .u = 3},
                      Config{.n = 6, .m = 2, .u = 2}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "n" + std::to_string(info.param.n) + "_m" +
             std::to_string(info.param.m) + "_u" +
             std::to_string(info.param.u);
    });

TEST(SearchInfra, SubsetEnumerationCountsMatchBinomials) {
  int count = 0;
  faults::for_each_subset(6, 3, [&count](const std::vector<NodeId>& s) {
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    ++count;
  });
  EXPECT_EQ(count, 20);

  count = 0;
  faults::for_each_subset(5, 0, [&count](const std::vector<NodeId>& s) {
    EXPECT_TRUE(s.empty());
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(SearchInfra, SearchSpaceSizeIsPositiveAndMonotone) {
  const Config small{.n = 5, .m = 1, .u = 2};
  const Config large{.n = 7, .m = 1, .u = 4};
  faults::SearchOptions options;
  EXPECT_GT(faults::search_space_size(small, options), 0u);
  EXPECT_LT(faults::search_space_size(small, options),
            faults::search_space_size(large, options));
}

TEST(SearchInfra, RandomTrialsAlsoFindNothingOnFeasibleConfig) {
  const Config config{.n = 7, .m = 1, .u = 4};
  faults::SearchOptions options;
  options.random_trials = 5;
  options.seed = 3;
  EXPECT_FALSE(faults::search_violation(config, options).has_value());
}

}  // namespace
}  // namespace da
