#include "protocols/authenticated/sm.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "faults/adversaries.hpp"
#include "faults/search.hpp"
#include "protocols/lamport/om.hpp"
#include "sim/runner.hpp"

namespace da::protocols::authenticated {
namespace {

sim::RunResult run_sm(int n, int m, NodeId sender, Value v,
                      const std::vector<NodeId>& faulty,
                      sim::Adversary* adversary,
                      const SignatureAuthority& authority) {
  sim::RunOptions options;
  options.faulty = faulty;
  options.adversary = adversary;
  sim::SyncRunner runner(make_sm_processes(n, m, sender, v, authority),
                         options);
  return runner.run();
}

TEST(Signatures, SignVerifyRoundTrip) {
  const SignatureAuthority authority(1, 4);
  const Path chain{0, 2};
  const std::uint64_t tag = authority.chain_tag(chain, Value::of(7));
  EXPECT_TRUE(authority.verify_chain(chain, Value::of(7), tag));
  EXPECT_FALSE(authority.verify_chain(chain, Value::of(8), tag));
  EXPECT_FALSE(authority.verify_chain(Path{0, 3}, Value::of(7), tag));
  EXPECT_FALSE(authority.verify_chain(chain, Value::of(7), tag + 1));
}

TEST(Signatures, ChainOrderMatters) {
  const SignatureAuthority authority(2, 4);
  EXPECT_NE(authority.chain_tag(Path{0, 1}, Value::of(3)),
            authority.chain_tag(Path{1, 0}, Value::of(3)));
}

TEST(Signatures, DefaultAndZeroPayloadDiffer) {
  const SignatureAuthority authority(3, 2);
  EXPECT_NE(authority.chain_tag(Path{0}, Value::def()),
            authority.chain_tag(Path{0}, Value::of(0)));
}

TEST(Sm, NoFaultsEveryoneDecides) {
  const SignatureAuthority authority(4, 5);
  const auto result = run_sm(5, 2, 0, Value::of(9), {}, nullptr, authority);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(result.decisions.at(i), Value::of(9));
  }
}

TEST(Sm, BlindTamperingIsImpotent) {
  // A traitor that rewrites values without valid signatures only achieves
  // omission: the fault-free sender's value still wins everywhere.
  const SignatureAuthority authority(5, 5);
  auto adversary = blind_tamperer(Value::of(666));
  const auto result =
      run_sm(5, 2, 0, Value::of(9), {2, 3}, adversary.get(), authority);
  for (NodeId i : {1, 4}) {
    EXPECT_EQ(result.decisions.at(i), Value::of(9)) << "node " << i;
  }
}

TEST(Sm, FourNodesTolerateTwoTraitors) {
  // The headline property signatures buy: n = m+2 suffices (here 4 nodes,
  // 2 traitors — impossible without signatures, which need 3m+1 = 7).
  const SignatureAuthority authority(6, 4);
  const std::vector<NodeId> faulty{0, 2};  // sender itself is a traitor
  auto adversary =
      signing_equivocator(authority, faulty, Value::of(5), Value::of(8));
  const auto result =
      run_sm(4, 2, 0, Value::of(5), faulty, adversary.get(), authority);
  // IC1: both fault-free receivers decide the same value.
  EXPECT_EQ(result.decisions.at(1), result.decisions.at(3));
}

TEST(Sm, SigningEquivocatorExposedByRelay) {
  // With one traitorous sender and m = 1, the equivocation is caught:
  // receivers relay both signed values, everyone's V has two elements,
  // and choice(V) = V_d for all — agreement on the default.
  const SignatureAuthority authority(7, 5);
  const std::vector<NodeId> faulty{0};
  auto adversary =
      signing_equivocator(authority, faulty, Value::of(5), Value::of(8));
  const auto result =
      run_sm(5, 1, 0, Value::of(5), faulty, adversary.get(), authority);
  for (NodeId i = 1; i < 5; ++i) {
    EXPECT_EQ(result.decisions.at(i), Value::def()) << "node " << i;
  }
}

TEST(Sm, ExhaustiveAgreementSweep) {
  // IC1/IC2 over every faulty subset of size <= m for n = m+2 .. m+4,
  // under signing equivocators and the blind family.
  for (const auto& [n, m] : std::vector<std::pair<int, int>>{
           {4, 2}, {5, 2}, {5, 3}, {6, 2}}) {
    const SignatureAuthority authority(100 + n, n);
    faults::for_each_subset(n, m, [&, n = n, m = m](
                                      const std::vector<NodeId>& faulty) {
      std::vector<std::unique_ptr<sim::Adversary>> adversaries;
      adversaries.push_back(signing_equivocator(authority, faulty,
                                                Value::of(3), Value::of(4)));
      adversaries.push_back(blind_tamperer(Value::of(9)));
      adversaries.push_back(faults::silent());
      for (auto& adversary : adversaries) {
        const auto result =
            run_sm(n, m, 0, Value::of(3), faulty, adversary.get(), authority);
        ScenarioSpec spec;
        spec.config = Config{.n = n, .m = m, .u = m};
        spec.sender = 0;
        spec.sender_value = Value::of(3);
        spec.faulty = faulty;
        EXPECT_TRUE(lamport::byzantine_agreement_holds(
            0, Value::of(3), spec.sender_faulty(),
            spec.fault_free_receivers(), result.decisions))
            << "n=" << n << " m=" << m << " " << spec.to_string();
      }
    });
  }
}

TEST(Sm, MessageVolumeIsPolynomial) {
  // Each node relays each distinct value at most once: no N^m blowup.
  const SignatureAuthority authority(8, 10);
  const auto result = run_sm(10, 4, 0, Value::of(1), {}, nullptr, authority);
  // Fault-free run: one value, sender's 9 sends + each receiver relays to
  // the <= 8 nodes outside its chain exactly once.
  EXPECT_LT(result.messages_sent, 100u);
  EXPECT_EQ(result.rounds, 5);
}

}  // namespace
}  // namespace da::protocols::authenticated
