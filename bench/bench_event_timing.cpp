// Experiment E6b — Section 6 mechanistically: rounds driven by real
// (drifting, offset) clocks and timeout-based absence detection, instead
// of the abstract synchronous rounds of the other benches.
//
// Two sweeps on the 1/4-degradable 7-node system:
//  1. timeout margin: with synchronized clocks, a timeout above the
//     latency+skew bound produces zero false timeouts (assumption (b) of
//     Section 4 holds); squeezing it below the bound produces organic
//     false timeouts — yet D.3 keeps holding in the degraded fault range.
//  2. clock skew: growing offset spread at a fixed timeout, i.e. exactly
//     the "clock synchronization lost past m faults" situation of
//     Section 6.1.

#include <cstdio>

#include "core/agreement.hpp"
#include "core/byz.hpp"
#include "event/event_runner.hpp"
#include "faults/adversaries.hpp"
#include "obs/bench_report.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

const da::Config kConfig{.n = 7, .m = 1, .u = 4};

struct Cell {
  std::size_t false_timeouts = 0;
  int satisfied = 0;
  int runs = 0;
  double avg_default = 0.0;
};

Cell sweep(double timeout, double offset_spread, int f, std::uint64_t seed) {
  Cell cell;
  double defaults = 0;
  for (int trial = 0; trial < 15; ++trial) {
    da::ScenarioSpec spec;
    spec.config = kConfig;
    spec.sender = 0;
    spec.sender_value = da::Value::of(42);
    da::Rng rng(da::mix64(seed, static_cast<std::uint64_t>(trial)));
    const auto subset = rng.subset(kConfig.n, f);
    spec.faulty.assign(subset.begin(), subset.end());

    auto adversary =
        da::faults::equivocator(da::Value::of(42), da::Value::of(9));
    da::sim::RunOptions options;
    options.faulty = spec.faulty;
    options.adversary = adversary.get();

    da::event::TimingModel timing;
    timing.timeout = timeout;
    timing.seed = seed + trial;
    da::event::EventRunner runner(
        da::core::make_byz_processes(kConfig, spec.sender, spec.sender_value),
        std::move(options), timing,
        da::event::skewed_clocks(kConfig.n, offset_spread, 1e-5,
                                 seed * 7 + trial));
    const auto result = runner.run();
    const auto report = da::check_conditions(spec, result.base.decisions);
    ++cell.runs;
    cell.false_timeouts += result.false_timeouts;
    cell.satisfied += report.satisfied ? 1 : 0;
    defaults += static_cast<double>(report.default_class.size());
  }
  cell.avg_default = defaults / cell.runs;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  da::obs::BenchReporter reporter("bench_event_timing", &argc, argv);
  std::puts("E6b: clock-driven rounds and timeout-based absence detection");
  std::printf("     config %s, link latency U[0.01, 0.10], period 1.0\n\n",
              kConfig.to_string().c_str());

  std::puts("timeout sweep (clock offsets +-0.02, f = 3 > m):");
  {
    da::Table table({"timeout", "false timeouts (total)", "D.3 satisfied",
                     "avg |default class|"});
    for (const double timeout : {0.05, 0.08, 0.15, 0.30, 0.60}) {
      const Cell cell = sweep(timeout, 0.02, 3, 61);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", timeout);
      char buf2[32];
      std::snprintf(buf2, sizeof buf2, "%.2f", cell.avg_default);
      table.row(buf, cell.false_timeouts,
                std::to_string(cell.satisfied) + "/" +
                    std::to_string(cell.runs),
                buf2);
    }
    table.print();
  }

  std::puts("\nskew sweep (timeout 0.30, f = 3 > m):");
  {
    da::Table table({"offset spread", "false timeouts (total)",
                     "D.3 satisfied", "avg |default class|"});
    for (const double spread : {0.0, 0.05, 0.15, 0.30, 0.60}) {
      const Cell cell = sweep(0.30, spread, 3, 62);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", spread);
      char buf2[32];
      std::snprintf(buf2, sizeof buf2, "%.2f", cell.avg_default);
      table.row(buf, cell.false_timeouts,
                std::to_string(cell.satisfied) + "/" +
                    std::to_string(cell.runs),
                buf2);
    }
    table.print();
  }

  std::puts("\nexact regime control (f = 1 <= m, synchronized clocks,");
  std::puts("timeout 0.30 > latency+skew): assumption (b) holds, D.1 exact:");
  {
    da::Table table({"f", "false timeouts", "D.1 satisfied"});
    const Cell cell = sweep(0.30, 0.01, 1, 63);
    table.row(1, cell.false_timeouts,
              std::to_string(cell.satisfied) + "/" +
                  std::to_string(cell.runs));
    table.print();
  }

  std::puts("\nReading: false timeouts appear exactly when the timeout drops");
  std::puts("below the latency+skew margin or the clocks drift apart — and");
  std::puts("the degraded conditions absorb them (default class grows, the");
  std::puts("satisfied column stays full), as Section 6.1 claims.");
  return reporter.finish();
}
