// Experiment E9 — protocol costs (google-benchmark suite).
//
// The paper gives only asymptotics ("no attempt is made here to present an
// efficient algorithm"): BYZ(m,m) sends Theta(N^{m+1}) messages over m+1
// rounds. This suite measures wall time and message volume of:
//   - BYZ(m,m) on the deterministic simulator, across N and m;
//   - BYZ(m,m) on the thread-per-node runtime (real barriers/mailboxes);
//   - Lamport OM(m) over the same substrate (identical message pattern,
//     cheaper resolve);
//   - Crusader (2 rounds regardless of m);
//   - the VOTE primitive and EIG-tree resolution in isolation.

#include <benchmark/benchmark.h>

#include "core/agreement.hpp"
#include "faults/adversaries.hpp"
#include "protocols/common/vote.hpp"
#include "protocols/crusader/crusader.hpp"
#include "util/rng.hpp"

namespace {

da::ScenarioSpec make_spec(const da::Config& config, int f) {
  da::ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = da::Value::of(17);
  for (int i = 0; i < f; ++i) spec.faulty.push_back(i + 1);
  return spec;
}

void BM_ByzSimulator(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const da::Config config{.n = n, .m = m, .u = n - 2 * m - 1};
  const da::DegradableAgreement protocol(config);
  const auto spec = make_spec(config, m);
  auto adversary = da::faults::equivocator(da::Value::of(17),
                                           da::Value::of(5));
  std::size_t messages = 0;
  for (auto _ : state) {
    const auto outcome = protocol.run(spec, adversary.get());
    messages = outcome.messages_sent;
    benchmark::DoNotOptimize(outcome.decisions);
  }
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["rounds"] = protocol.rounds();
}
BENCHMARK(BM_ByzSimulator)
    ->Args({4, 1})
    ->Args({7, 1})
    ->Args({10, 1})
    ->Args({16, 1})
    ->Args({7, 2})
    ->Args({10, 2})
    ->Args({13, 2})
    ->Args({10, 3})
    ->Unit(benchmark::kMicrosecond);

void BM_ByzThreaded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const da::Config config{.n = n, .m = m, .u = n - 2 * m - 1};
  const da::DegradableAgreement protocol(config);
  const auto spec = make_spec(config, m);
  auto adversary = da::faults::equivocator(da::Value::of(17),
                                           da::Value::of(5));
  for (auto _ : state) {
    const auto outcome = protocol.run_threaded(spec, adversary.get());
    benchmark::DoNotOptimize(outcome.decisions);
  }
}
BENCHMARK(BM_ByzThreaded)
    ->Args({4, 1})
    ->Args({7, 1})
    ->Args({7, 2})
    ->Args({10, 2})
    ->Unit(benchmark::kMicrosecond);

void BM_LamportOM(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const da::LamportAgreement protocol(n, m);
  const da::Config config{.n = n, .m = m, .u = m};
  const auto spec = make_spec(config, m);
  auto adversary = da::faults::equivocator(da::Value::of(17),
                                           da::Value::of(5));
  for (auto _ : state) {
    const auto outcome = protocol.run(spec, adversary.get());
    benchmark::DoNotOptimize(outcome.decisions);
  }
}
BENCHMARK(BM_LamportOM)
    ->Args({4, 1})
    ->Args({7, 2})
    ->Args({10, 2})
    ->Args({10, 3})
    ->Unit(benchmark::kMicrosecond);

void BM_Crusader(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  auto adversary = da::faults::equivocator(da::Value::of(17),
                                           da::Value::of(5));
  da::sim::RunOptions options;
  for (int i = 0; i < m; ++i) options.faulty.push_back(i + 1);
  options.adversary = adversary.get();
  for (auto _ : state) {
    da::sim::SyncRunner runner(
        da::protocols::crusader::make_crusader_processes(n, m, 0,
                                                         da::Value::of(17)),
        options);
    const auto result = runner.run();
    benchmark::DoNotOptimize(result.decisions);
  }
}
BENCHMARK(BM_Crusader)
    ->Args({4, 1})
    ->Args({10, 3})
    ->Args({16, 5})
    ->Unit(benchmark::kMicrosecond);

void BM_Vote(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  da::Rng rng(9);
  std::vector<da::Value> values;
  for (std::size_t i = 0; i < size; ++i) {
    values.push_back(da::Value::of(rng.range(0, 7)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(da::protocols::vote(values, size / 2));
  }
}
BENCHMARK(BM_Vote)->Arg(8)->Arg(64)->Arg(512);

void BM_ThresholdVoterKofN(benchmark::State& state) {
  const std::size_t channels = static_cast<std::size_t>(state.range(0));
  std::vector<da::Value> outputs(channels, da::Value::of(21));
  outputs.back() = da::Value::def();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        da::protocols::k_of_n_vote(outputs, channels - 1));
  }
}
BENCHMARK(BM_ThresholdVoterKofN)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
