// Experiment E9 — protocol costs (google-benchmark suite).
//
// The paper gives only asymptotics ("no attempt is made here to present an
// efficient algorithm"): BYZ(m,m) sends Theta(N^{m+1}) messages over m+1
// rounds. This suite measures wall time and message volume of:
//   - BYZ(m,m) on the deterministic simulator, across N and m;
//   - BYZ(m,m) on the thread-per-node runtime (real barriers/mailboxes);
//   - Lamport OM(m) over the same substrate (identical message pattern,
//     cheaper resolve);
//   - Crusader (2 rounds regardless of m);
//   - the VOTE primitive and EIG-tree resolution in isolation;
//   - the parallel scenario-sweep engine over the adversary-complete
//     behaviour space (`--jobs N` adds an N-worker variant next to the
//     1-worker baseline, so the report shows the scaling directly).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "core/agreement.hpp"
#include "core/byz.hpp"
#include "faults/adversaries.hpp"
#include "faults/behavior_search.hpp"
#include "faults/search.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "protocols/common/eig.hpp"
#include "protocols/common/vote.hpp"
#include "protocols/crusader/crusader.hpp"
#include "protocols/ic/interactive_consistency.hpp"
#include "service/frontend.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

int g_jobs = 1;

da::ScenarioSpec make_spec(const da::Config& config, int f) {
  da::ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = da::Value::of(17);
  for (int i = 0; i < f; ++i) spec.faulty.push_back(i + 1);
  return spec;
}

void BM_ByzSimulator(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const da::Config config{.n = n, .m = m, .u = n - 2 * m - 1};
  const da::DegradableAgreement protocol(config);
  const auto spec = make_spec(config, m);
  auto adversary = da::faults::equivocator(da::Value::of(17),
                                           da::Value::of(5));
  std::size_t messages = 0;
  for (auto _ : state) {
    const auto outcome = protocol.run(spec, adversary.get());
    messages = outcome.messages_sent;
    benchmark::DoNotOptimize(outcome.decisions);
  }
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["rounds"] = protocol.rounds();
}
BENCHMARK(BM_ByzSimulator)
    ->Args({4, 1})
    ->Args({7, 1})
    ->Args({10, 1})
    ->Args({16, 1})
    ->Args({7, 2})
    ->Args({10, 2})
    ->Args({13, 2})
    ->Args({10, 3})
    ->Unit(benchmark::kMicrosecond);

void BM_ByzThreaded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const da::Config config{.n = n, .m = m, .u = n - 2 * m - 1};
  const da::DegradableAgreement protocol(config);
  const auto spec = make_spec(config, m);
  auto adversary = da::faults::equivocator(da::Value::of(17),
                                           da::Value::of(5));
  for (auto _ : state) {
    const auto outcome = protocol.run_threaded(spec, adversary.get());
    benchmark::DoNotOptimize(outcome.decisions);
  }
}
BENCHMARK(BM_ByzThreaded)
    ->Args({4, 1})
    ->Args({7, 1})
    ->Args({7, 2})
    ->Args({10, 2})
    ->Unit(benchmark::kMicrosecond);

void BM_LamportOM(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const da::LamportAgreement protocol(n, m);
  const da::Config config{.n = n, .m = m, .u = m};
  const auto spec = make_spec(config, m);
  auto adversary = da::faults::equivocator(da::Value::of(17),
                                           da::Value::of(5));
  for (auto _ : state) {
    const auto outcome = protocol.run(spec, adversary.get());
    benchmark::DoNotOptimize(outcome.decisions);
  }
}
BENCHMARK(BM_LamportOM)
    ->Args({4, 1})
    ->Args({7, 2})
    ->Args({10, 2})
    ->Args({10, 3})
    ->Unit(benchmark::kMicrosecond);

void BM_Crusader(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  auto adversary = da::faults::equivocator(da::Value::of(17),
                                           da::Value::of(5));
  da::sim::RunOptions options;
  for (int i = 0; i < m; ++i) options.faulty.push_back(i + 1);
  options.adversary = adversary.get();
  for (auto _ : state) {
    da::sim::SyncRunner runner(
        da::protocols::crusader::make_crusader_processes(n, m, 0,
                                                         da::Value::of(17)),
        options);
    const auto result = runner.run();
    benchmark::DoNotOptimize(result.decisions);
  }
}
BENCHMARK(BM_Crusader)
    ->Args({4, 1})
    ->Args({10, 3})
    ->Args({16, 5})
    ->Unit(benchmark::kMicrosecond);

void BM_Vote(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  da::Rng rng(9);
  std::vector<da::Value> values;
  for (std::size_t i = 0; i < size; ++i) {
    values.push_back(da::Value::of(rng.range(0, 7)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(da::protocols::vote(values, size / 2));
  }
}
BENCHMARK(BM_Vote)->Arg(8)->Arg(64)->Arg(512);

void BM_ThresholdVoterKofN(benchmark::State& state) {
  const std::size_t channels = static_cast<std::size_t>(state.range(0));
  std::vector<da::Value> outputs(channels, da::Value::of(21));
  outputs.back() = da::Value::def();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        da::protocols::k_of_n_vote(outputs, channels - 1));
  }
}
BENCHMARK(BM_ThresholdVoterKofN)->Arg(4)->Arg(16)->Arg(64);

void fill_subtree(da::protocols::EigTree& tree, const da::Path& path,
                  const std::vector<da::NodeId>& nodes, int depth,
                  da::Rng& rng) {
  tree.set(path, da::Value::of(rng.range(0, 3)));
  if (static_cast<int>(path.size()) == depth) return;
  for (da::NodeId j : nodes) {
    if (!path.contains(j)) {
      fill_subtree(tree, path.extended(j), nodes, depth, rng);
    }
  }
}

// Isolated resolve cost on a fully populated arena (every slot written,
// the worst case): the bottom-up pass the EIG protocols run once per node
// at the end of every execution.
void BM_EigResolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  std::vector<da::NodeId> nodes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) nodes[static_cast<std::size_t>(i)] = i;
  da::protocols::EigTree tree(/*self=*/1, /*sender=*/0, nodes, depth);
  da::Rng rng(11);
  da::Path root;
  root.push_back(0);
  fill_subtree(tree, root, nodes, depth, rng);
  const da::protocols::ByzResolver rule(depth - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.resolve(rule));
  }
  state.counters["slots"] = static_cast<double>(tree.layout().size());
}
BENCHMARK(BM_EigResolve)
    ->Args({7, 3})
    ->Args({10, 4})
    ->Unit(benchmark::kMicrosecond);

// The adversary-complete behaviour sweep at the Theorem 2 boundary
// (n = 5, 1/2-degradable), on `state.range(0)` sweep workers. Registered
// for 1 worker and for the `--jobs` value, so one run reports the
// speedup. Counters: canonical executions (thread-count independent) and
// executions actually performed (includes speculative work).
void BM_BehaviourSweep(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const da::Config config{.n = 5, .m = 1, .u = 2};
  da::sweep::SweepOptions options;
  options.jobs = jobs;
  da::sweep::SweepStats stats;
  for (auto _ : state) {
    const auto violation =
        da::faults::exhaustive_behavior_search(config, -1, options, &stats);
    benchmark::DoNotOptimize(violation);
  }
  state.counters["executions"] = static_cast<double>(stats.executions);
  state.counters["performed"] = static_cast<double>(stats.performed);
  state.counters["shards"] = static_cast<double>(stats.shards);
}

// Checkpoint-engine ablation: the adversary-complete behaviour walk with
// the checkpoint/fork engine on vs off, single worker, on *clean*
// configurations so both sides scan the full space (n = 4 and the
// Theorem 2 boundary n = 5). range(0) = n, range(1) = checkpointing.
// tests/test_fork_engine.cpp holds the two sides to identical verdicts
// and execution counts; this measures what the forking buys.
void BM_BehaviorSearch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool checkpointing = state.range(1) != 0;
  const da::Config config{.n = n, .m = 1, .u = n - 3};
  da::sweep::SweepOptions options;
  options.jobs = 1;
  da::sweep::SweepStats stats;
  for (auto _ : state) {
    const auto violation = da::faults::exhaustive_behavior_search(
        config, -1, options, &stats, checkpointing);
    benchmark::DoNotOptimize(violation);
  }
  state.counters["executions"] = static_cast<double>(stats.executions);
  state.counters["checkpointing"] = checkpointing ? 1 : 0;
}
BENCHMARK(BM_BehaviorSearch)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({5, 0})
    ->Args({5, 1})
    ->Unit(benchmark::kMillisecond);

// Symmetry-reduction ablation: the behaviour walk visiting every ordinal
// vs only the canonical representative of each receiver-relabeling orbit
// (docs/SEARCH.md §5), single worker, checkpointing on, clean configs so
// both sides settle the whole space. range(0) = n, range(1) = symmetry.
// tests/test_canonicalization.cpp holds the two sides to identical
// verdicts and reconciled counts; this measures what the orbit skip buys
// (the `executions` counter shrinks to the representatives run while
// `weighted` stays at the full 4^k space).
void BM_BehaviorSearchCanonical(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool symmetry = state.range(1) != 0;
  const da::Config config{.n = n, .m = 1, .u = n - 3};
  da::faults::BehaviorSearchOptions search;
  search.symmetry = symmetry;
  // Subset quotient pinned off on both sides: these rows isolate what the
  // receiver-orbit skip buys (BM_BehaviorSearchSubsetCanonical below
  // measures the quotient on top of it).
  search.subset_symmetry = false;
  da::sweep::SweepOptions options;
  options.jobs = 1;
  da::sweep::SweepStats stats;
  for (auto _ : state) {
    const auto violation =
        da::faults::exhaustive_behavior_search(config, search, options, &stats);
    benchmark::DoNotOptimize(violation);
  }
  state.counters["executions"] = static_cast<double>(stats.executions);
  state.counters["weighted"] = static_cast<double>(stats.weighted_executions);
  state.counters["symmetry"] = symmetry ? 1 : 0;
}
BENCHMARK(BM_BehaviorSearchCanonical)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({5, 0})
    ->Args({5, 1})
    ->Unit(benchmark::kMillisecond);

// Subset-conjugacy ablation: receiver symmetry on for both sides, the
// faulty-subset quotient (docs/SEARCH.md §6) off vs on. range(0) = n,
// range(1) = subset_symmetry; u = 2 so n = 6 is the (6,1,2) headline
// regime where the quotient walks 4 of 21 nonempty segments. The
// three-way differential in tests/test_canonicalization.cpp holds both
// sides to identical verdicts and reconciled counts; this measures what
// skipping conjugate segments buys (`executions` shrinks again while
// `weighted` stays at the full 4^k space).
void BM_BehaviorSearchSubsetCanonical(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool subset_symmetry = state.range(1) != 0;
  const da::Config config{.n = n, .m = 1, .u = 2};
  da::faults::BehaviorSearchOptions search;
  search.symmetry = true;
  search.subset_symmetry = subset_symmetry;
  da::sweep::SweepOptions options;
  options.jobs = 1;
  da::sweep::SweepStats stats;
  for (auto _ : state) {
    const auto violation =
        da::faults::exhaustive_behavior_search(config, search, options, &stats);
    benchmark::DoNotOptimize(violation);
  }
  state.counters["executions"] = static_cast<double>(stats.executions);
  state.counters["weighted"] = static_cast<double>(stats.weighted_executions);
  state.counters["subset_symmetry"] = subset_symmetry ? 1 : 0;
}
BENCHMARK(BM_BehaviorSearchSubsetCanonical)
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({6, 0})
    ->Args({6, 1})
    ->Unit(benchmark::kMillisecond);

// Same ablation for the adversary-family search, whose checkpoint is the
// honest round-0 prefix shared across the family (n = 7 feasible config,
// no violation, so every scenario runs the whole family).
void BM_SearchViolation(benchmark::State& state) {
  const bool checkpointing = state.range(0) != 0;
  const da::Config config{.n = 7, .m = 1, .u = 4};
  da::faults::SearchOptions search;
  search.seed = 7;
  search.checkpointing = checkpointing;
  da::sweep::SweepOptions options;
  options.jobs = 1;
  da::sweep::SweepStats stats;
  for (auto _ : state) {
    const auto violation =
        da::faults::search_violation(config, search, options, &stats);
    benchmark::DoNotOptimize(violation);
  }
  state.counters["executions"] = static_cast<double>(stats.executions);
  state.counters["checkpointing"] = checkpointing ? 1 : 0;
}
BENCHMARK(BM_SearchViolation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// The adversary-family search on a mid-size feasible config, same split.
void BM_FamilySearchSweep(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const da::Config config{.n = 7, .m = 1, .u = 4};
  da::faults::SearchOptions search;
  search.seed = 7;
  da::sweep::SweepOptions options;
  options.jobs = jobs;
  da::sweep::SweepStats stats;
  for (auto _ : state) {
    const auto violation =
        da::faults::search_violation(config, search, options, &stats);
    benchmark::DoNotOptimize(violation);
  }
  state.counters["executions"] = static_cast<double>(stats.executions);
  state.counters["shards"] = static_cast<double>(stats.shards);
}

// The agreement service at scale: an open-loop Poisson storm against a
// wide cap under the block policy, so thousands of instances are active
// at once (the acceptance floor is peak_active >= 1000). The service is
// constructed once and re-run per iteration, so after the first iteration
// every admission recycles a warm slot — this measures the steady state.
// range(0) = worker threads draining each round batch.
void BM_ServiceThroughput(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  da::service::ServiceConfig config;
  config.arrivals = da::service::ArrivalSpec::poisson(400.0);
  config.offered = 3000;
  config.cap = 2048;
  config.policy = da::service::OverloadPolicy::kBlock;
  config.seed = 7;
  config.jobs = jobs;
  da::service::AgreementService svc(config);
  da::service::ServiceResult result;
  double total_completed = 0.0;
  for (auto _ : state) {
    result = svc.run();
    total_completed += static_cast<double>(result.completed);
    benchmark::DoNotOptimize(result.records.data());
  }
  state.counters["ips"] =
      benchmark::Counter(total_completed, benchmark::Counter::kIsRate);
  state.counters["peak_active"] = static_cast<double>(result.peak_active);
  state.counters["p50"] = result.latency_quantile(0.50);
  state.counters["p99"] = result.latency_quantile(0.99);
  state.counters["slot_reuse"] = static_cast<double>(svc.slot_reuses());
}

// Decision latency per arrival model at a moderate load the cap can
// absorb: p50/p99 in virtual time units. range(0) = ArrivalKind.
void BM_ServiceLatency(benchmark::State& state) {
  const auto kind = static_cast<da::service::ArrivalKind>(state.range(0));
  da::service::ServiceConfig config;
  switch (kind) {
    case da::service::ArrivalKind::kPoisson:
      config.arrivals = da::service::ArrivalSpec::poisson(100.0);
      break;
    case da::service::ArrivalKind::kBursty:
      config.arrivals = da::service::ArrivalSpec::bursty(100.0);
      break;
    case da::service::ArrivalKind::kPareto:
      config.arrivals = da::service::ArrivalSpec::pareto(100.0);
      break;
  }
  config.offered = 2000;
  config.cap = 512;
  config.policy = da::service::OverloadPolicy::kBlock;
  config.seed = 7;
  da::service::AgreementService svc(config);
  da::service::ServiceResult result;
  for (auto _ : state) {
    result = svc.run();
    benchmark::DoNotOptimize(result.records.data());
  }
  state.SetLabel(da::service::to_string(kind));
  state.counters["p50"] = result.latency_quantile(0.50);
  state.counters["p99"] = result.latency_quantile(0.99);
  state.counters["peak_active"] = static_cast<double>(result.peak_active);
}
BENCHMARK(BM_ServiceLatency)
    ->Arg(static_cast<int>(da::service::ArrivalKind::kPoisson))
    ->Arg(static_cast<int>(da::service::ArrivalKind::kBursty))
    ->Arg(static_cast<int>(da::service::ArrivalKind::kPareto))
    ->Unit(benchmark::kMillisecond);

// Telemetry overhead: the identical service run with the observability
// layer quiet (range(0)=0) and recording (range(0)=1: causal spans plus
// periodic time-series samples). Both rows run the same protocol work —
// recording never perturbs admission or rounds (identical p99 counter).
// The quiet row compared across DA_METRICS=ON/OFF builds measures the
// always-on instrumentation (budget <1%; measured in the noise); the
// adjacent-row delta prices the opt-in span/sample recording. Under
// -DDA_METRICS=OFF the two rows must coincide (recording compiles away).
// docs/OBSERVABILITY.md quotes the measured numbers.
void BM_ServiceTelemetry(benchmark::State& state) {
  const bool record = state.range(0) != 0;
  da::service::ServiceConfig config;
  config.arrivals = da::service::ArrivalSpec::poisson(100.0);
  config.offered = 2000;
  config.cap = 512;
  config.policy = da::service::OverloadPolicy::kBlock;
  config.seed = 7;
  if (record) {
    config.record_spans = true;
    config.sample_every = 4.0;
  }
  da::service::AgreementService svc(config);
  da::service::ServiceResult result;
  for (auto _ : state) {
    result = svc.run();
    benchmark::DoNotOptimize(result.records.data());
  }
  state.SetLabel(record ? "recording" : "quiet");
  state.counters["spans"] = static_cast<double>(result.spans.size());
  state.counters["samples"] = static_cast<double>(result.samples.size());
  state.counters["p99"] = result.latency_quantile(0.99);
}
BENCHMARK(BM_ServiceTelemetry)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The sharded front-end under the same Poisson storm as
// BM_ServiceThroughput, split across 4 shards behind the hash router.
// The front-end is constructed once (shards persist, warm slot pools)
// and re-run per iteration. range(0) = cross-shard drain workers.
void BM_FrontendThroughput(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  da::service::FrontendConfig config;
  config.service.arrivals = da::service::ArrivalSpec::poisson(400.0);
  config.service.offered = 3000;
  config.service.cap = 512;  // per shard
  config.service.policy = da::service::OverloadPolicy::kBlock;
  config.service.seed = 7;
  config.service.jobs = jobs;
  config.shards = 4;
  config.route = da::service::RoutePolicy::kHashJobId;
  da::service::ServiceFrontend frontend(config);
  da::service::FrontendResult result;
  double total_completed = 0.0;
  for (auto _ : state) {
    result = frontend.run();
    total_completed += static_cast<double>(result.completed);
    benchmark::DoNotOptimize(result.records.data());
  }
  state.counters["ips"] =
      benchmark::Counter(total_completed, benchmark::Counter::kIsRate);
  state.counters["shards"] = static_cast<double>(result.shards.size());
  state.counters["ticks"] = static_cast<double>(result.ticks);
  state.counters["p50"] = result.latency_sketch.quantile(0.50);
  state.counters["p99"] = result.latency_sketch.quantile(0.99);
}

// Per-class decision latency under a congested shed-oldest run: the
// admission queue is class-major, so high-class jobs should post lower
// queueing delay than low-class ones. range(0) = AdmissionClass.
void BM_ServiceClassLatency(benchmark::State& state) {
  const auto cls = static_cast<da::service::AdmissionClass>(state.range(0));
  da::service::ServiceConfig config;
  config.arrivals = da::service::ArrivalSpec::poisson(40.0);
  config.offered = 2000;
  config.cap = 64;
  config.queue_cap = 128;
  config.policy = da::service::OverloadPolicy::kShedOldest;
  config.seed = 7;
  da::service::AgreementService svc(config);
  da::service::ServiceResult result;
  for (auto _ : state) {
    result = svc.run();
    benchmark::DoNotOptimize(result.records.data());
  }
  const auto& sketch =
      result.class_latency[static_cast<std::size_t>(da::service::index_of(cls))];
  state.SetLabel(da::service::to_string(cls));
  state.counters["p50"] = sketch.quantile(0.50);
  state.counters["p99"] = sketch.quantile(0.99);
  state.counters["count"] = static_cast<double>(sketch.count());
}
BENCHMARK(BM_ServiceClassLatency)
    ->Arg(static_cast<int>(da::service::AdmissionClass::kHigh))
    ->Arg(static_cast<int>(da::service::AdmissionClass::kNormal))
    ->Arg(static_cast<int>(da::service::AdmissionClass::kLow))
    ->Unit(benchmark::kMillisecond);

void register_sweep_benchmarks() {
  auto* behaviour =
      benchmark::RegisterBenchmark("BM_BehaviourSweep", BM_BehaviourSweep);
  auto* family = benchmark::RegisterBenchmark("BM_FamilySearchSweep",
                                              BM_FamilySearchSweep);
  auto* service = benchmark::RegisterBenchmark("BM_ServiceThroughput",
                                               BM_ServiceThroughput);
  auto* frontend = benchmark::RegisterBenchmark("BM_FrontendThroughput",
                                                BM_FrontendThroughput);
  for (auto* bench : {behaviour, family, service, frontend}) {
    bench->Unit(benchmark::kMillisecond)->Arg(1);
    if (g_jobs > 1) bench->Arg(g_jobs);
  }
}

// Measured-vs-analytic message counts: run each protocol fault-free (no
// omissions) and require the runner's sim.messages_sent delta — and the
// runner's own counter — to equal the closed-form formula. Returns the
// number of mismatched rows.
int verify_analytic_counts() {
  auto& registry = da::obs::MetricsRegistry::global();
  da::Table table({"protocol", "n", "m", "measured", "analytic", "match"});
  table.set_name("analytic_vs_measured");
  int mismatches = 0;

  // Registry-delta rows are meaningless under -DDA_METRICS=OFF (counter
  // writes compile to no-ops, so every delta reads 0); keep only the
  // rows fed by the runners' own outcome counts there.
#ifndef DA_METRICS_DISABLED
  constexpr bool kRegistryCounts = true;
#else
  constexpr bool kRegistryCounts = false;
#endif

  const auto check = [&](const char* protocol, int n, int m,
                         std::uint64_t measured, std::uint64_t analytic) {
    const bool ok = measured == analytic;
    if (!ok) ++mismatches;
    table.row(protocol, n, m, measured, analytic, ok ? "yes" : "MISMATCH");
  };

  for (const auto& [n, m] : {std::pair{4, 1}, {7, 1}, {7, 2}, {5, 0}}) {
    const da::Config config{.n = n, .m = m, .u = n - 2 * m - 1};
    const da::DegradableAgreement protocol(config);
    const auto spec = make_spec(config, 0);  // fault-free: no omissions
    const std::uint64_t before = registry.counter_value("sim.messages_sent");
    const auto outcome = protocol.run(spec, nullptr);
    const std::uint64_t delta =
        registry.counter_value("sim.messages_sent") - before;
    const std::uint64_t analytic =
        da::core::byz_message_count(n, m);
    if (kRegistryCounts) check("BYZ", n, m, delta, analytic);
    check("BYZ(outcome)", n, m, outcome.messages_sent, analytic);
  }

  for (const int n : {4, 7}) {
    const std::uint64_t before = registry.counter_value("sim.messages_sent");
    da::sim::SyncRunner runner(
        da::protocols::crusader::make_crusader_processes(n, 1, 0,
                                                         da::Value::of(17)),
        da::sim::RunOptions{});
    (void)runner.run();
    const std::uint64_t delta =
        registry.counter_value("sim.messages_sent") - before;
    if (kRegistryCounts) {
      check("crusader", n, 1, delta,
            da::protocols::crusader::crusader_message_count(n));
    }
  }

  for (const auto& [n, m] : {std::pair{4, 1}, {5, 1}}) {
    std::vector<da::Value> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(da::Value::of(i + 1));
    const auto result = da::protocols::ic::run_interactive_consistency(
        n, m, inputs, {}, nullptr);
    check("IC", n, m, result.messages_sent,
          da::protocols::ic::ic_message_count(n, m));
  }

  std::puts("\nAnalytic vs measured message counts (fault-free runs):");
  table.print();
  return mismatches;
}

// Service determinism smoke: a tiny open-loop run per arrival model,
// executed with 1 and 2 workers; the digests (and the byte-level
// artifacts) must match. Runs in both normal and --smoke modes, so the
// CI service-smoke job gets a real check and the `--json` report carries
// a "service_smoke" table. Returns the number of mismatched rows.
int verify_service_smoke() {
  da::Table table({"model", "completed", "shed", "p50", "p99", "digest",
                   "jobs_invariant"});
  table.set_name("service_smoke");
  int mismatches = 0;
  for (const auto kind :
       {da::service::ArrivalKind::kPoisson, da::service::ArrivalKind::kBursty,
        da::service::ArrivalKind::kPareto}) {
    da::service::ServiceConfig config;
    switch (kind) {
      case da::service::ArrivalKind::kPoisson:
        config.arrivals = da::service::ArrivalSpec::poisson(20.0);
        break;
      case da::service::ArrivalKind::kBursty:
        config.arrivals = da::service::ArrivalSpec::bursty(20.0);
        break;
      case da::service::ArrivalKind::kPareto:
        config.arrivals = da::service::ArrivalSpec::pareto(20.0);
        break;
    }
    config.offered = 200;
    config.cap = 24;
    config.queue_cap = 64;
    config.seed = 7;
    config.jobs = 1;
    const auto lone = da::service::run_service(config);
    config.jobs = 2;
    const auto pair = da::service::run_service(config);
    const bool invariant = lone.digest() == pair.digest() &&
                           lone.artifact() == pair.artifact() &&
                           lone.violations == 0 && pair.violations == 0;
    if (!invariant) ++mismatches;
    char digest[24];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(lone.digest()));
    table.row(da::service::to_string(kind), lone.completed, lone.shed,
              lone.latency_quantile(0.50), lone.latency_quantile(0.99),
              digest, invariant ? "yes" : "MISMATCH");
  }
  // The sharded front-end on the same stream: digest, artifact, and the
  // exact-merged sketch serialization must all survive the jobs split.
  {
    da::service::FrontendConfig config;
    config.service.arrivals = da::service::ArrivalSpec::poisson(20.0);
    config.service.offered = 200;
    config.service.cap = 24;
    config.service.queue_cap = 64;
    config.service.seed = 7;
    config.shards = 2;
    config.service.jobs = 1;
    const auto lone = da::service::run_frontend(config);
    config.service.jobs = 2;
    const auto pair = da::service::run_frontend(config);
    const bool invariant =
        lone.digest() == pair.digest() && lone.artifact() == pair.artifact() &&
        lone.latency_sketch.serialize() == pair.latency_sketch.serialize() &&
        lone.violations == 0 && pair.violations == 0;
    if (!invariant) ++mismatches;
    char digest[24];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(lone.digest()));
    table.row("frontend-2sh", lone.completed, lone.shed,
              lone.latency_sketch.quantile(0.50),
              lone.latency_sketch.quantile(0.99), digest,
              invariant ? "yes" : "MISMATCH");
  }
  std::puts("\nService determinism smoke (jobs=1 vs jobs=2):");
  table.print();
  return mismatches;
}

// Console reporter that additionally captures every finished run as a
// "benchmarks" table row, so the `--json` report carries the timings and
// tools/bench_diff.py can compare two reports row-by-row.
class RecordingReporter final : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(da::Table* table) : table_(table) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      table_->row(run.benchmark_name(),
                  run.real_accumulated_time * 1e3 /
                      static_cast<double>(run.iterations),
                  run.cpu_accumulated_time * 1e3 /
                      static_cast<double>(run.iterations),
                  run.iterations);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  da::Table* table_;
};

}  // namespace

// Hand-rolled main instead of BENCHMARK_MAIN(): `--jobs N` must be
// stripped before benchmark::Initialize rejects it as an unknown flag
// (the reporter strips `--json`/`--smoke` the same way).
int main(int argc, char** argv) {
  da::obs::BenchReporter reporter("bench_perf", &argc, argv);
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      g_jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      g_jobs = std::atoi(argv[i] + 7);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  reporter.set_seed(7);
  reporter.set_jobs(g_jobs);
  if (!reporter.smoke()) {
    register_sweep_benchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
      return reporter.finish(1);
    }
    da::Table bench_table({"benchmark", "real_ms", "cpu_ms", "iterations"});
    bench_table.set_name("benchmarks");
    RecordingReporter recording(&bench_table);
    benchmark::RunSpecifiedBenchmarks(&recording);
    benchmark::Shutdown();
    reporter.add_table(bench_table);
  }
  const int mismatches = verify_analytic_counts() + verify_service_smoke();
  return reporter.finish(mismatches == 0 ? 0 : 1);
}
