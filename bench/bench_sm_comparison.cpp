// Experiment E11 — oral messages vs signed messages.
//
// The paper works in the oral-message model, where Byzantine agreement
// needs 3m+1 nodes and degradable agreement buys a safe middle ground for
// 2m+u+1. Lamport's signed-messages algorithm SM(m) is the classical
// counterpoint: with unforgeable signatures m traitors are tolerated by
// just m+2 nodes. This harness puts the three side by side:
//
//   - node budgets for the same masking target m;
//   - what survives at the same *total* node budget (7 nodes);
//   - message volumes (SM relays each value once per node: polynomial,
//     vs the oral protocols' N^{m+1});
//   - what signatures do NOT fix: the connectivity bound of Theorem 3
//     (a vertex cut silences signed messages just as well).

#include <cstdio>

#include "core/agreement.hpp"
#include "core/bounds.hpp"
#include "faults/adversaries.hpp"
#include "obs/bench_report.hpp"
#include "protocols/authenticated/sm.hpp"
#include "protocols/lamport/om.hpp"
#include "relay/cutset_adversary.hpp"
#include "sim/runner.hpp"
#include "util/table.hpp"

namespace {

using da::protocols::authenticated::SignatureAuthority;

da::sim::RunResult run_sm(int n, int m, const std::vector<da::NodeId>& faulty,
                          const SignatureAuthority& authority) {
  da::sim::RunOptions options;
  options.faulty = faulty;
  auto adversary = da::protocols::authenticated::signing_equivocator(
      authority, faulty, da::Value::of(5), da::Value::of(8));
  options.adversary = adversary.get();
  da::sim::SyncRunner runner(
      da::protocols::authenticated::make_sm_processes(n, m, 0,
                                                      da::Value::of(5),
                                                      authority),
      options);
  return runner.run();
}

}  // namespace

int main(int argc, char** argv) {
  da::obs::BenchReporter reporter("bench_sm_comparison", &argc, argv);
  std::puts("E11: oral (OM / BYZ) vs signed (SM) message models\n");

  std::puts("node budget to mask m traitors:");
  {
    da::Table table({"m", "OM(m) oral", "m/u-degradable (u=m+2)",
                     "SM(m) signed"});
    for (int m = 1; m <= 4; ++m) {
      table.row(m, da::bounds::lamport_min_nodes(m),
                da::bounds::min_nodes(m, m + 2), m + 2);
    }
    table.print();
  }

  std::puts("\nwhat a fixed budget of 7 nodes supports:");
  {
    da::Table table({"model", "masking m", "safe degradation u", "notes"});
    table.row("OM (oral)", 2, 2, "nothing past f=2");
    table.row("1/4-degradable (oral)", 1, 4, "safe splits to f=4");
    table.row("0/6-degradable (oral)", 0, 6, "safe splits to f=6");
    table.row("SM (signed)", 5, 5, "agreement itself to f=5");
    table.print();
  }

  std::puts("\nmessage volume at n = 7 (fault-free run):");
  {
    const SignatureAuthority authority(1, 7);
    da::Table table({"protocol", "rounds", "messages"});
    for (int m = 1; m <= 3; ++m) {
      const auto sm = run_sm(7, m, {}, authority);
      table.row("SM(" + std::to_string(m) + ")", sm.rounds,
                sm.messages_sent);
      table.row("OM/BYZ(" + std::to_string(m) + ")", m + 1,
                da::protocols::lamport::om_message_count(7, m));
    }
    table.print();
  }

  std::puts("\nsigned agreement under traitorous senders (n=7):");
  {
    const SignatureAuthority authority(2, 7);
    da::Table table({"f (sender faulty + others)", "fault-free decisions",
                     "agreement?"});
    for (int f = 1; f <= 5; ++f) {
      std::vector<da::NodeId> faulty;
      for (int i = 0; i < f; ++i) faulty.push_back(i);  // sender included
      const auto result = run_sm(7, 5, faulty, authority);
      std::string decisions;
      bool agree = true;
      da::Value first = da::Value::def();
      bool first_set = false;
      for (const auto& [node, decision] : result.decisions) {
        if (std::find(faulty.begin(), faulty.end(), node) != faulty.end()) {
          continue;
        }
        decisions += (decisions.empty() ? "" : ",") + decision.to_string();
        if (!first_set) {
          first = decision;
          first_set = true;
        } else if (decision != first) {
          agree = false;
        }
      }
      table.row(f, decisions, agree ? "yes" : "NO");
    }
    table.print();
  }

  std::puts("\nwhat signatures do NOT fix — the Theorem 3 cut bound:");
  {
    da::Table table({"connectivity", "any rule satisfies D.1 & D.3?"});
    for (int kappa = 3; kappa <= 4; ++kappa) {
      table.row(kappa,
                da::relay::any_threshold_works(1, 2, kappa) ? "yes" : "no");
    }
    table.print();
    std::puts("a vertex cut can silence signed messages exactly as it");
    std::puts("silences oral ones; connectivity m+u+1 remains necessary.");
  }

  std::puts("\nReading: signatures dissolve the 3m+1 node bound (SM needs");
  std::puts("m+2), at polynomial message cost — but the paper's oral-model");
  std::puts("trade-off remains the relevant one when signatures are");
  std::puts("unavailable (the paper's FTMP/FTP-class hardware), and the");
  std::puts("connectivity lower bound binds either way.");
  return reporter.finish();
}
