// Experiment E7 — Section 6: clock synchronization.
//
// Part 1: the classical landscape. Interactive convergence (CNV)
//   synchronizes while 3f < n and is defeated at 3f >= n [3,5]; witness
//   clocks (Section 6.2) restore the margin without adding processors.
// Part 2: the paper's *degradable clock synchronization* problem
//   (Section 6.1), evaluated empirically: with n > 2m+u clocks and
//   m < f <= u faulty, either >= m+1 fault-free clocks synchronize or
//   >= m+1 fault-free nodes detect the existence of more than m faults.
//   The paper conjectures this is achievable; our agreement-based round
//   is one algorithm in that shape, and the table reports how often the
//   disjunction holds.

#include <cstdio>
#include <memory>

#include "clocksync/convergence.hpp"
#include "clocksync/degradable_sync.hpp"
#include "clocksync/witness.hpp"
#include "faults/adversaries.hpp"
#include "obs/bench_report.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

da::clocksync::ClockEnsemble make_ensemble(int n, std::vector<da::NodeId> faulty,
                                           std::uint64_t seed) {
  da::Rng rng(seed);
  std::vector<da::clocksync::HardwareClock> clocks;
  for (int i = 0; i < n; ++i) {
    clocks.emplace_back((rng.uniform() * 2 - 1) * 1e-4,
                        (rng.uniform() * 2 - 1) * 1e-6);
  }
  const da::clocksync::FaultyReading wild = [](da::NodeId reader,
                                               da::NodeId owner, double t) {
    return t + 0.4 * ((reader * 7 + owner * 3) % 5 - 2);
  };
  return da::clocksync::ClockEnsemble(std::move(clocks), std::move(faulty),
                                      wild);
}

void cnv_table() {
  constexpr double kWindow = 0.05;
  std::puts("CNV (interactive convergence), n = 7, window 0.05, worst-case");
  std::puts("two-faced clocks (answer just inside each reader's window):");
  da::Table table({"faulty clocks", "3f < n?", "final skew", "within window?"});
  for (int f = 0; f <= 3; ++f) {
    da::Rng rng(50 + static_cast<std::uint64_t>(f));
    std::vector<da::clocksync::HardwareClock> clocks;
    for (int i = 0; i < 7; ++i) {
      clocks.emplace_back((rng.uniform() * 2 - 1) * 1e-4,
                          (rng.uniform() * 2 - 1) * 1e-6);
    }
    std::vector<da::NodeId> faulty;
    for (int i = 0; i < f; ++i) faulty.push_back(6 - i);
    // Reader-relative two-faced clocks: the impossibility adversary [3,5].
    auto slot = std::make_shared<da::clocksync::ClockEnsemble*>(nullptr);
    const da::clocksync::FaultyReading adaptive =
        [slot](da::NodeId reader, da::NodeId, double t) {
          const double own = (*slot)->clock(reader).read(t);
          return own + (reader % 2 == 0 ? 0.9 : -0.9) * kWindow;
        };
    da::clocksync::ClockEnsemble ensemble(std::move(clocks), faulty,
                                          adaptive);
    *slot = &ensemble;
    const double skew = da::clocksync::cnv_run(ensemble, 0.0, 1.0, 8,
                                               kWindow);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.5f", skew);
    table.row(f, 3 * f < 7 ? "yes" : "no", buf,
              skew < kWindow ? "yes" : "NO (diverging)");
  }
  table.print();
  std::puts("");
}

void witness_table() {
  std::puts("Witness clocks (Section 6.2): 4 processors, 2 faulty clocks:");
  da::Table table({"witness clocks", "total", "3f < total?", "final skew"});
  for (int w : {0, 1, 3, 5}) {
    da::clocksync::WitnessConfig config;
    config.processors = 4;
    config.faulty_clocks = 2;
    config.witness_clocks = w;
    const auto result = da::clocksync::run_witness_experiment(config, 8, 0.01);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.5f", result.final_skew);
    table.row(w, config.total_clocks(), result.sync_possible ? "yes" : "no",
              buf);
  }
  table.print();
  std::puts("");
}

void degradable_table() {
  const da::clocksync::DegradableSyncParams params{.m = 1, .u = 4};
  const int n = 7;
  std::printf("Degradable clock sync (Section 6.1 conjecture), n=%d, m=%d, "
              "u=%d, 20 seeds per row:\n",
              n, params.m, params.u);
  da::Table table({"f", "all ff synced", ">= m+1 synced", ">= m+1 detected",
                   "conjecture holds"});
  for (int f = 0; f <= params.u; ++f) {
    int all_synced = 0;
    int enough_synced = 0;
    int enough_detected = 0;
    int holds = 0;
    const int kSeeds = 20;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      da::Rng rng(da::mix64(seed, static_cast<std::uint64_t>(f)));
      std::vector<da::NodeId> faulty;
      for (const int x : rng.subset(n, f)) faulty.push_back(x);
      auto ensemble = make_ensemble(n, faulty, seed * 97);
      const auto result = da::clocksync::degradable_sync_round(
          ensemble, 10.0, params, [seed](da::NodeId sender) {
            return da::faults::random_noise(
                da::mix64(seed, static_cast<std::uint64_t>(sender)), -500000,
                500000, 0.25);
          });
      const int fault_free = n - f;
      all_synced +=
          static_cast<int>(result.synced.size()) == fault_free ? 1 : 0;
      enough_synced +=
          static_cast<int>(result.synced.size()) >= params.m + 1 ? 1 : 0;
      enough_detected +=
          static_cast<int>(result.detected.size()) >= params.m + 1 ? 1 : 0;
      holds += result.conjecture_holds ? 1 : 0;
    }
    const auto frac = [kSeeds](int x) {
      return std::to_string(x) + "/" + std::to_string(kSeeds);
    };
    table.row(f, frac(all_synced), frac(enough_synced), frac(enough_detected),
              frac(holds));
  }
  table.print();
  std::puts("");
}

void periodic_table() {
  std::puts("Periodic degradable resync (n=7, m=1, u=4, period 10s):");
  da::Table table({"round", "clean: drift before", "clean: skew after",
                   "f=3: synced", "f=3: detected", "f=3: conjecture"});
  // Clean drifting ensemble.
  da::Rng rng(7);
  std::vector<da::clocksync::HardwareClock> clean_clocks;
  for (int i = 0; i < 7; ++i) {
    clean_clocks.emplace_back((rng.uniform() * 2 - 1) * 1e-4,
                              (rng.uniform() * 2 - 1) * 1e-5);
  }
  da::clocksync::ClockEnsemble clean(std::move(clean_clocks), {}, nullptr);
  const da::clocksync::DegradableSyncParams params{.m = 1, .u = 4};
  const auto clean_run = da::clocksync::degradable_sync_run(
      clean, 0.0, 10.0, 6, params,
      [](da::NodeId) { return da::faults::honest(); });

  auto faulty_ensemble = make_ensemble(7, {1, 4, 6}, 5);
  const auto faulty_run = da::clocksync::degradable_sync_run(
      faulty_ensemble, 0.0, 10.0, 6, params, [](da::NodeId sender) {
        return da::faults::random_noise(
            da::mix64(99, static_cast<std::uint64_t>(sender)), -500000,
            500000, 0.25);
      });

  for (int r = 0; r < 6; ++r) {
    char before[32];
    std::snprintf(before, sizeof before, "%.6f",
                  clean_run.skew_before[static_cast<std::size_t>(r)]);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f",
                  clean_run.skew_after[static_cast<std::size_t>(r)]);
    const bool held =
        faulty_run.synced_counts[static_cast<std::size_t>(r)] >= 2 ||
        faulty_run.detected_counts[static_cast<std::size_t>(r)] >= 2;
    table.row(r, before, buf,
              faulty_run.synced_counts[static_cast<std::size_t>(r)],
              faulty_run.detected_counts[static_cast<std::size_t>(r)],
              held ? "holds" : "FAILS");
  }
  table.print();
  std::printf("conjecture held %d/6 rounds under persistent f=3 faults.\n\n",
              faulty_run.rounds_conjecture_held);
}

}  // namespace

int main(int argc, char** argv) {
  da::obs::BenchReporter reporter("bench_clocksync", &argc, argv);
  std::puts("E7: clock synchronization (Section 6)\n");
  cnv_table();
  witness_table();
  degradable_table();
  periodic_table();
  std::puts("Reading: CNV collapses once a third of the clocks are faulty;");
  std::puts("witness clocks buy the margin back in hardware. The degradable");
  std::puts("sync round keeps the paper's conjectured disjunction — >= m+1");
  std::puts("synced or >= m+1 detecting — across the degraded fault range.");
  return reporter.finish();
}
