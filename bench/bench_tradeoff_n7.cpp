// Experiment E2 — the Section 2 example: "given a system consisting of 7
// nodes, one may achieve 2/2-degradable agreement, or 1/4-degradable
// agreement, or 0/6-degradable agreement."
//
// For each point on the trade-off frontier we sweep the fault count and
// report what the protocol delivers: exact agreement (f <= m), degraded
// agreement with the guaranteed (m+1)-class (m < f <= u), or nothing
// (f > u). The rows show the paper's trade: m buys exact masking, u buys
// safe degradation, and 2m + u is a zero-sum budget.

#include <cstdio>

#include "core/agreement.hpp"
#include "core/bounds.hpp"
#include "faults/adversaries.hpp"
#include "obs/bench_report.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct SweepRow {
  int f = 0;
  int exact = 0;     // runs with full agreement on one value
  int degraded = 0;  // runs split into {value, V_d} with class >= m+1
  int violated = 0;  // runs violating the governing condition
  int runs = 0;
};

SweepRow sweep(const da::Config& config, int f, std::uint64_t seed) {
  const da::DegradableAgreement protocol(config);
  SweepRow row;
  row.f = f;
  for (int trial = 0; trial < 20; ++trial) {
    da::ScenarioSpec spec;
    spec.config = config;
    spec.sender = 0;
    spec.sender_value = da::Value::of(17);
    da::Rng rng(da::mix64(seed, static_cast<std::uint64_t>(trial)));
    const auto subset = rng.subset(config.n, f);
    spec.faulty.assign(subset.begin(), subset.end());

    auto adversary =
        trial % 2 == 0
            ? da::faults::equivocator(da::Value::of(17), da::Value::of(5))
            : da::faults::random_noise(seed + trial, 0, 30, 0.25);
    const da::ConditionReport report =
        protocol.run_and_check(spec, adversary.get());
    ++row.runs;
    if (!report.satisfied &&
        report.applied != da::Condition::kNone) {
      ++row.violated;
    } else if (report.default_class.empty() && report.violators.empty()) {
      ++row.exact;
    } else {
      ++row.degraded;
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  da::obs::BenchReporter reporter("bench_tradeoff_n7", &argc, argv);
  std::puts("E2: the 7-node trade-off (paper, Section 2)");
  std::puts("    exact    = all fault-free nodes on one value (D.1/D.2)");
  std::puts("    degraded = {value, V_d} split, >= m+1 nodes agreeing (D.3/D.4)");
  std::puts("    broken   = governing condition violated (expected only f > u)\n");

  for (const da::Config& config : da::bounds::tradeoff_frontier(7)) {
    std::printf("%d/%d-degradable agreement (n = 7):\n", config.m, config.u);
    da::Table table({"f", "regime", "exact", "degraded", "broken"});
    for (int f = 0; f <= 6; ++f) {
      const char* regime = f <= config.m  ? "exact (<= m)"
                           : f <= config.u ? "degraded (<= u)"
                                           : "beyond u";
      if (f > config.u) {
        // Beyond u nothing is promised; report the regime only.
        table.row(f, regime, "-", "-", "(no guarantee)");
        continue;
      }
      const SweepRow row =
          sweep(config, f, 1000 + static_cast<std::uint64_t>(config.m));
      table.row(f, regime, row.exact, row.degraded, row.violated);
    }
    table.print();
    std::puts("");
  }

  std::puts("Reading: 2/2 masks two faults exactly but has no story for f=3;");
  std::puts("1/4 masks one fault and stays safe through f=4; 0/6 masks none");
  std::puts("but degrades safely through f=6. Same 7 nodes, traded per the");
  std::puts("paper's N_min = 2m+u+1 budget.");
  return reporter.finish();
}
