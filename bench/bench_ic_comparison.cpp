// Experiment E8 — the Bhandari comparison (Section 2).
//
// Bhandari proved that interactive-consistency algorithms cannot degrade
// gracefully past N/3 faults. Degradable agreement sidesteps the result by
// weakening the target: with m < (N-1)/3 it keeps >= m+1 fault-free nodes
// agreeing all the way to u > N/3.
//
// We run both on 7 nodes and measure the retained agreement as f grows:
//   - IC with m = 2 (the max for N = 7): size of the largest group of
//     fault-free nodes holding *identical vectors*;
//   - 1/4-degradable agreement: size of the largest group of fault-free
//     nodes (sender included) agreeing on one value.

#include <algorithm>
#include <cstdio>

#include "core/agreement.hpp"
#include "faults/adversaries.hpp"
#include "obs/bench_report.hpp"
#include "protocols/ic/interactive_consistency.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

constexpr int kN = 7;
constexpr int kTrials = 15;

int ic_retained(int f, std::uint64_t seed) {
  int worst = kN;
  for (int trial = 0; trial < kTrials; ++trial) {
    da::Rng rng(da::mix64(seed, static_cast<std::uint64_t>(trial)));
    std::vector<da::Value> inputs;
    for (int i = 0; i < kN; ++i) inputs.push_back(da::Value::of(100 + i));
    std::vector<da::NodeId> faulty;
    for (const int x : rng.subset(kN, f)) faulty.push_back(x);

    const auto result = da::protocols::ic::run_interactive_consistency(
        kN, 2, inputs, faulty, [&rng](da::NodeId sender) {
          return da::faults::pivot_equivocator(
              da::Value::of(40 + sender), da::Value::of(50 + sender),
              static_cast<da::NodeId>(kN / 2));
        });
    worst = std::min(worst, da::protocols::ic::largest_identical_vector_group(
                                result, faulty, kN));
  }
  return worst;
}

int degradable_retained(int f, std::uint64_t seed) {
  const da::Config config{.n = kN, .m = 1, .u = 4};
  const da::DegradableAgreement protocol(config);
  int worst = kN;
  for (int trial = 0; trial < kTrials; ++trial) {
    da::Rng rng(da::mix64(seed * 13, static_cast<std::uint64_t>(trial)));
    da::ScenarioSpec spec;
    spec.config = config;
    spec.sender = 0;
    spec.sender_value = da::Value::of(11);
    const auto subset = rng.subset(kN, f);
    spec.faulty.assign(subset.begin(), subset.end());
    auto adversary = da::faults::pivot_equivocator(
        da::Value::of(11), da::Value::of(5), static_cast<da::NodeId>(kN / 2));
    const auto report = protocol.run_and_check(spec, adversary.get());
    worst = std::min(worst, report.largest_agreeing_class);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  da::obs::BenchReporter reporter("bench_ic_comparison", &argc, argv);
  std::puts("E8: graceful degradation — interactive consistency vs");
  std::puts("    1/4-degradable agreement on 7 nodes (worst over trials)\n");

  da::Table table({"f", "regime (N/3 = 2.33)", "IC(m=2): identical vectors",
                   "1/4-deg: agreeing class", "guarantee (m+1)"});
  for (int f = 0; f <= 4; ++f) {
    const int ic = ic_retained(f, 900 + static_cast<std::uint64_t>(f));
    const int deg = degradable_retained(f, 800 + static_cast<std::uint64_t>(f));
    table.row(f, f * 3 <= kN ? "f <= N/3" : "f > N/3", ic, deg,
              f <= 4 ? 2 : 0);
  }
  table.print();

  std::puts("\nReading: IC keeps all fault-free vectors identical while");
  std::puts("f <= 2 = N_max_m, then collapses (Bhandari) — the worst-case");
  std::puts("identical group can fall to 1. Degradable agreement holds its");
  std::puts("promised >= m+1 = 2 agreeing fault-free nodes through f = u = 4,");
  std::puts("more than a third of the system.");
  return reporter.finish();
}
