// Experiment E5 — Theorem 3: network connectivity of at least m+u+1 is
// necessary (and sufficient) for m/u-degradable agreement.
//
// Three demonstrations:
//  1. The cut-set indistinguishability argument, executable: with
//     connectivity kappa = m+u, *no* decision threshold over the kappa
//     path copies can satisfy D.1 and D.3 simultaneously; with
//     kappa = m+u+1 the threshold u+1 satisfies both.
//  2. Degradable relay channels over concrete k-connected graphs: a value
//     routed over m+u+1 vertex-disjoint paths survives m corruptions
//     exactly and degrades (value-or-V_d) through u.
//  3. The separator graph realizing the proof's cut F = F1 u F2.

#include <cstdio>

#include "core/agreement.hpp"
#include "faults/adversaries.hpp"
#include "graph/connectivity.hpp"
#include "graph/topology.hpp"
#include "obs/bench_report.hpp"
#include "relay/cutset_adversary.hpp"
#include "relay/disjoint_relay.hpp"
#include "relay/graph_network.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

void threshold_demo(int m, int u) {
  std::printf("Threshold probe, m=%d u=%d (cut copies: %d beta-forged vs %d "
              "honest):\n",
              m, u, m, u);
  da::Table table({"kappa", "some threshold satisfies D.1 & D.3?"});
  for (int kappa = m + u - 1; kappa <= m + u + 2; ++kappa) {
    if (kappa < 1) continue;
    const bool works = da::relay::any_threshold_works(m, u, kappa);
    std::string label = std::to_string(kappa);
    if (kappa == m + u) label += "  (= m+u)";
    if (kappa == m + u + 1) label += "  (= m+u+1)";
    table.row(label, works ? "yes" : "no");
  }
  table.print();
  std::puts("");
}

void relay_demo(int m, int u, int n, std::uint64_t seed) {
  const int k = m + u + 1;
  const auto g = da::graph::random_at_least_k_connected(n, k, 0.1, seed);
  std::printf("Degradable relay over a %d-connected graph (n=%d, "
              "connectivity=%d, m=%d, u=%d, %d disjoint paths):\n",
              k, n, da::graph::vertex_connectivity(g), m, u, k);

  const da::relay::HopCorruption forge = [](da::NodeId, da::Value) {
    return da::Value::of(999);
  };
  da::Table table({"faulty interior nodes", "delivered true", "delivered V_d",
                   "delivered WRONG"});
  da::Rng rng(seed);
  for (int f = 0; f <= u + 1; ++f) {
    int truth = 0;
    int dflt = 0;
    int wrong = 0;
    for (int trial = 0; trial < 40; ++trial) {
      // Sample interior faulty nodes (never the endpoints 0 and n-1).
      std::vector<da::NodeId> faulty;
      for (const int x : rng.subset(n - 2, f)) faulty.push_back(x + 1);
      const auto result = da::relay::degradable_channel_send(
          g, 0, n - 1, da::Value::of(7), m, u, faulty, forge);
      if (result.delivered == da::Value::of(7)) {
        ++truth;
      } else if (result.delivered.is_default()) {
        ++dflt;
      } else {
        ++wrong;
      }
    }
    std::string label = std::to_string(f);
    if (f == m) label += " (= m)";
    if (f == u) label += " (= u)";
    if (f == u + 1) label += " (> u)";
    table.row(label, truth, dflt, wrong);
  }
  table.print();
  std::puts("");
}

// End-to-end: BYZ(m,m) running over a sparse graph through degradable
// relay channels (faulty nodes equivocate at protocol level AND corrupt
// copies they relay in transit).
void end_to_end_demo() {
  const da::Config config{.n = 9, .m = 1, .u = 2};
  const da::relay::HopCorruption forge = [](da::NodeId, da::Value v) {
    return da::Value::of(v.raw() + 9999);
  };

  struct Topology {
    const char* name;
    da::graph::Graph graph;
  };
  const Topology topologies[] = {
      {"circulant C9(1,2), kappa=4 = m+u+1", da::graph::circulant(9, 2)},
      {"separator 3|3|3, kappa=3 = m+u", da::graph::separator_graph(3, 3, 3)},
  };

  std::puts("BYZ(1,1) for 1/2-degradable agreement, end-to-end over sparse "
            "graphs:");
  da::Table table({"topology", "f", "condition", "satisfied (20 runs)"});
  for (const auto& [name, graph] : topologies) {
    for (int f = 1; f <= config.u; ++f) {
      int ok = 0;
      da::Rng rng(static_cast<std::uint64_t>(f) * 5 + 1);
      for (int trial = 0; trial < 20; ++trial) {
        da::ScenarioSpec spec;
        spec.config = config;
        spec.sender = 0;
        spec.sender_value = da::Value::of(42);
        const auto subset = rng.subset(config.n, f);
        spec.faulty.assign(subset.begin(), subset.end());

        da::relay::GraphRelayNetwork network(graph, config.m, config.u,
                                             spec.faulty, forge);
        auto adversary =
            da::faults::equivocator(da::Value::of(42), da::Value::of(13));
        da::RunExtras extras;
        extras.network = &network;
        const da::DegradableAgreement protocol(config);
        const da::Outcome outcome =
            protocol.run(spec, adversary.get(), extras);
        ok += da::check_conditions(spec, outcome.decisions).satisfied ? 1 : 0;
      }
      const char* condition = f <= config.m ? "D.1/D.2" : "D.3/D.4";
      table.row(name, f, condition,
                std::to_string(ok) + "/20");
    }
  }
  table.print();
  std::puts("");
}

void separator_demo(int m, int u) {
  const auto g = da::graph::separator_graph(3, m + u, 3);
  const auto cut = da::graph::min_vertex_cut(g, 0, g.n() - 1);
  std::printf("Separator graph (two cliques bridged by %d nodes): "
              "connectivity = %d, min cut = {",
              m + u, da::graph::vertex_connectivity(g));
  for (std::size_t i = 0; i < cut.size(); ++i) {
    std::printf("%s%d", i ? "," : "", cut[i]);
  }
  std::puts("} -- exactly the proof's F = F1 u F2, one short of m+u+1.\n");
}

}  // namespace

int main(int argc, char** argv) {
  da::obs::BenchReporter reporter("bench_connectivity", &argc, argv);
  std::puts("E5: Theorem 3 — connectivity >= m+u+1 necessary and sufficient\n");
  threshold_demo(1, 2);
  threshold_demo(2, 3);
  relay_demo(1, 2, 11, 42);
  relay_demo(2, 3, 13, 43);
  end_to_end_demo();
  separator_demo(1, 2);
  std::puts("Reading: at kappa = m+u no rule exists (necessity); at m+u+1 the");
  std::puts("VOTE(u+1, m+u+1) relay gives exactly the D.1/D.3 channel shape");
  std::puts("(sufficiency), with the wrong-value column zero through f = u.");
  return reporter.finish();
}
