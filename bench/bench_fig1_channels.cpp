// Experiment E3 — Figure 1 and conditions B.1/B.2 vs C.1-C.3 (Section 3).
//
// Figure 1(a): sensor + 3m channels + Byzantine agreement + majority voter.
// Figure 1(b): sensor + 2m+u channels + m/u-degradable agreement +
//              (m+u)-out-of-(2m+u) voter.
//
// For m = 1 (u = 2) we sweep the number of faulty channels and classify
// the external entity's vote: correct / default (safe) / INCORRECT
// (unsafe). The paper's claim has a sharp shape: the classical system
// emits incorrect values as soon as f > m, while the degradable system is
// correct-or-default all the way to u — and its fault-free channels
// diverge into at most two states, one of them safe (C.3).

#include <algorithm>
#include <cstdio>

#include "channels/channel_system.hpp"
#include "faults/adversaries.hpp"
#include "obs/bench_report.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using da::channels::ChannelSystem;
using da::channels::ChannelSystemConfig;
using da::channels::VoterOutcome;

struct Tally {
  int correct = 0;
  int dflt = 0;
  int incorrect = 0;
  int graceful = 0;
  int max_states = 0;
};

Tally sweep(const ChannelSystem& system, int f, std::uint64_t seed,
            int trials) {
  Tally tally;
  const int channels = system.config().channel_count();
  for (int trial = 0; trial < trials; ++trial) {
    da::Rng rng(da::mix64(seed, static_cast<std::uint64_t>(trial)));
    const da::Value sensor = da::Value::of(rng.range(1, 100));
    const da::Value lie = da::Value::of(sensor.raw() + 7);
    const std::vector<int> faulty = rng.subset(channels, f);

    // Colluding worst case: lie consistently during agreement AND hand the
    // matching computed value to the voter.
    auto adversary = trial % 2 == 0
                         ? da::faults::constant_liar(lie)
                         : da::faults::equivocator(sensor, lie);
    const auto frame = system.run_frame(
        sensor, faulty, /*sensor_faulty=*/false, *adversary,
        da::Value::of(2 * lie.raw() + 1));

    switch (frame.outcome) {
      case VoterOutcome::kCorrect: ++tally.correct; break;
      case VoterOutcome::kDefault: ++tally.dflt; break;
      case VoterOutcome::kIncorrect: ++tally.incorrect; break;
    }
    tally.graceful += frame.divergence_graceful ? 1 : 0;
    tally.max_states =
        std::max(tally.max_states, frame.distinct_fault_free_states);
  }
  return tally;
}

void report(const char* title, const ChannelSystem& system, int max_f,
            std::uint64_t seed) {
  std::printf("%s (channels = %d, voter = %zu-out-of-%d):\n", title,
              system.config().channel_count(),
              system.config().vote_threshold(),
              system.config().channel_count());
  da::Table table({"f", "correct", "default", "INCORRECT", "graceful_state",
                   "max_states"});
  constexpr int kTrials = 30;
  for (int f = 0; f <= max_f; ++f) {
    const Tally tally = sweep(system, f, seed + static_cast<std::uint64_t>(f),
                              kTrials);
    table.row(f, tally.correct, tally.dflt, tally.incorrect,
              std::to_string(tally.graceful) + "/" + std::to_string(kTrials),
              tally.max_states);
  }
  table.print();
  std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
  da::obs::BenchReporter reporter("bench_fig1_channels", &argc, argv);
  std::puts("E3: multiple-channel systems of Figure 1 (m = 1)\n");

  const ChannelSystem byzantine(
      {.kind = ChannelSystemConfig::Kind::kByzantineMajority, .m = 1});
  report("Figure 1(a): classical Byzantine-agreement system", byzantine, 3,
         100);

  const ChannelSystem degradable(
      {.kind = ChannelSystemConfig::Kind::kDegradable, .m = 1, .u = 2});
  report("Figure 1(b): degradable-agreement system", degradable, 3, 200);

  std::puts("Reading (the paper's B.1/C.1-C.3):");
  std::puts("  - both systems vote correctly while f <= m = 1;");
  std::puts("  - at f = 2 the classical system emits INCORRECT votes (unsafe),");
  std::puts("    the degradable system only correct-or-default (C.2) up to u = 2;");
  std::puts("  - fault-free channel states stay within {correct, safe-default}");
  std::puts("    for the degradable system (C.3), through f <= u.");
  return reporter.finish();
}
