// Experiment E1 — the Section 2 table: minimum number of nodes necessary
// for m/u-degradable agreement, N_min = 2m+u+1 (Theorem 2 + algorithm BYZ).
//
// Besides printing the paper's table, this harness *verifies* the bound
// empirically for the small cells: at N = N_min an exhaustive adversarial
// search finds no violation of D.1-D.4; at N = N_min - 1 a violation is
// found constructively. The sweeps run on the parallel scenario-sweep
// engine; `--jobs N` sets the worker count (the verdicts are identical
// for every value — see docs/SEARCH.md).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/bounds.hpp"
#include "faults/behavior_search.hpp"
#include "faults/search.hpp"
#include "obs/bench_report.hpp"
#include "sweep/sweep.hpp"
#include "util/table.hpp"

namespace {

int g_jobs = 1;

constexpr int kMaxM = 3;
constexpr int kMaxU = 6;

// Empirical verification is exponential in N; cap the exhaustive sweep
// (--smoke lowers the cap so the ctest bench-smoke entry stays fast).
int g_verify_node_cap = 7;

std::string verify_cell(int m, int u) {
  const int n_min = da::bounds::min_nodes(m, u);
  if (n_min > g_verify_node_cap) return "(formula)";

  da::faults::SearchOptions options;
  options.seed = 7;
  da::sweep::SweepOptions sweep_options;
  sweep_options.jobs = g_jobs;

  const da::Config feasible{.n = n_min, .m = m, .u = u};
  const auto ok =
      da::faults::search_violation(feasible, options, sweep_options);
  if (ok.has_value()) return "ACHIEVABILITY FAILED";

  // For depth-2 cells small enough, upgrade to the adversary-complete
  // sweep: every behaviour of every faulty subset over the canonical
  // alphabet (see faults/behavior_search.hpp and docs/SEARCH.md).
  bool adversary_complete = false;
  if (m <= 1 &&
      da::faults::behavior_search_space(feasible) <= 2'000'000) {
    if (da::faults::exhaustive_behavior_search(feasible, -1, sweep_options)
            .has_value()) {
      return "ACHIEVABILITY FAILED (behaviour sweep)";
    }
    adversary_complete = true;
  }

  const std::string base = adversary_complete ? "complete" : "verified";
  if (n_min - 1 >= 2 && u < n_min - 1) {
    da::faults::SearchOptions hard = options;
    hard.all_senders = true;
    const da::Config infeasible{.n = n_min - 1, .m = m, .u = u};
    const auto broken =
        da::faults::search_violation(infeasible, hard, sweep_options);
    if (!broken.has_value()) return "TIGHTNESS UNCONFIRMED";
    return base + "+tight";
  }
  return base;
}

}  // namespace

int main(int argc, char** argv) {
  da::obs::BenchReporter reporter("bench_table_min_nodes", &argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      g_jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      g_jobs = std::atoi(argv[i] + 7);
    }
  }
  if (reporter.smoke()) g_verify_node_cap = 4;
  reporter.set_seed(7);
  std::puts("E1: minimum number of nodes for m/u-degradable agreement");
  std::puts("    (paper, Section 2: N_min = 2m+u+1; '-' where u < m)");
  std::printf("    sweep workers: --jobs %d\n\n", g_jobs);

  {
    std::vector<std::string> header{"u \\ m"};
    for (int m = 0; m <= kMaxM; ++m) header.push_back("m=" + std::to_string(m));
    da::Table table(header);
    table.set_name("min_nodes");
    for (int u = 1; u <= kMaxU; ++u) {
      std::vector<std::string> row{std::to_string(u)};
      for (int m = 0; m <= kMaxM; ++m) {
        row.push_back(u < m ? "-"
                            : std::to_string(da::bounds::min_nodes(m, u)));
      }
      table.add_row(row);
    }
    table.print();
  }

  std::puts("\nEmpirical check per cell:");
  std::puts("  verified = no violation at N_min across all fault subsets x");
  std::puts("             the standard adversary family");
  std::puts("  complete = stronger: no violation across ALL behaviours over");
  std::puts("             the canonical alphabet (adversary-complete sweep)");
  std::puts("  +tight   = additionally, violation FOUND at N_min - 1\n");

  {
    da::Table table({"m", "u", "N_min", "connectivity_min", "check"});
    table.set_name("empirical_check");
    for (int m = 0; m <= kMaxM; ++m) {
      for (int u = m; u <= kMaxU; ++u) {
        if (u < 1) continue;
        table.row(m, u, da::bounds::min_nodes(m, u),
                  da::bounds::min_connectivity(m, u), verify_cell(m, u));
      }
    }
    table.print();
  }
  reporter.set_jobs(g_jobs);
  return reporter.finish();
}
