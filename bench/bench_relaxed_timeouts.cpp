// Experiment E6 — Section 6.1, relaxed message detection.
//
// With more than m faults, clock synchronization cannot be guaranteed, so
// a fault-free node "may incorrectly declare a message from another
// fault-free node to be absent" (false timeout). The paper's claim: BYZ
// still achieves the degraded conditions D.3/D.4 under that relaxation,
// and the exact conditions D.1/D.2 whenever f <= m (where clocks are
// synchronized and no false timeouts occur).
//
// We sweep the false-timeout probability and the fault count and report
// the fraction of runs satisfying the governing condition, plus how the
// default class grows with the drop rate (the cost of the relaxation is
// availability, never safety).

#include <cstdio>

#include "core/agreement.hpp"
#include "faults/adversaries.hpp"
#include "obs/bench_report.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Cell {
  int satisfied = 0;
  int runs = 0;
  double avg_default_class = 0.0;
};

Cell sweep(const da::Config& config, int f, double drop, std::uint64_t seed) {
  const da::DegradableAgreement protocol(config);
  Cell cell;
  double default_total = 0.0;
  for (int trial = 0; trial < 25; ++trial) {
    da::sim::FalseTimeoutNetwork network(
        drop, da::mix64(seed, static_cast<std::uint64_t>(trial)));
    network.set_active(f > config.m);  // Section 6.1: relaxed only past m

    da::ScenarioSpec spec;
    spec.config = config;
    spec.sender = 0;
    spec.sender_value = da::Value::of(23);
    da::Rng rng(da::mix64(seed * 31, static_cast<std::uint64_t>(trial)));
    const auto subset = rng.subset(config.n, f);
    spec.faulty.assign(subset.begin(), subset.end());

    auto adversary =
        da::faults::equivocator(da::Value::of(23), da::Value::of(9));
    da::RunExtras extras;
    extras.network = &network;
    const da::Outcome outcome = protocol.run(spec, adversary.get(), extras);
    const da::ConditionReport report =
        da::check_conditions(spec, outcome.decisions);
    ++cell.runs;
    cell.satisfied += report.satisfied ? 1 : 0;
    default_total += static_cast<double>(report.default_class.size());
  }
  cell.avg_default_class = default_total / cell.runs;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  da::obs::BenchReporter reporter("bench_relaxed_timeouts", &argc, argv);
  std::puts("E6: false timeouts between fault-free nodes (Section 6.1)");
  const da::Config config{.n = 7, .m = 1, .u = 4};
  std::printf("    config: %s\n\n", config.to_string().c_str());

  for (const double drop : {0.0, 0.1, 0.3, 0.6}) {
    std::printf("false-timeout probability %.0f%% (active only when f > m):\n",
                drop * 100);
    da::Table table(
        {"f", "condition", "satisfied", "avg |default class|"});
    for (int f = 0; f <= config.u; ++f) {
      const Cell cell = sweep(config, f, drop,
                              7000 + static_cast<std::uint64_t>(drop * 100));
      const char* condition = f <= config.m ? "D.1 (exact)" : "D.3 (degraded)";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", cell.avg_default_class);
      table.row(f, condition,
                std::to_string(cell.satisfied) + "/" +
                    std::to_string(cell.runs),
                buf);
    }
    table.print();
    std::puts("");
  }

  std::puts("Reading: the satisfied column stays full at every drop rate —");
  std::puts("false timeouts convert receivers to the default class (average");
  std::puts("grows with the drop rate) but never to a wrong value. Safety is");
  std::puts("preserved; only availability degrades, as Section 6.1 claims.");
  return reporter.finish();
}
