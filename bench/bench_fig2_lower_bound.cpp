// Experiment E4 — Figure 2 / Theorem 2: m/u-degradable agreement is
// impossible with N = 2m+u nodes.
//
// The harness replays the proof's three fault scenarios on the 4-node
// system (m=1, u=2 — one node short of the 5 the bound demands), shows
// the two indistinguishability pairs as byte-identical per-node message
// transcripts, and exhibits the resulting D.3 violation in scenario (c).
// The group-simulation lift of Part II is replayed at larger N = 2m+u.

#include <cstdio>

#include "core/agreement.hpp"
#include "faults/figure2.hpp"
#include "util/table.hpp"

namespace {

using da::faults::figure2::Scenario;

struct Executed {
  da::Outcome outcome;
  da::sim::Trace trace;
  da::ConditionReport report;
};

Executed execute(const Scenario& scenario) {
  Executed e;
  const da::DegradableAgreement protocol(scenario.spec.config);
  da::RunExtras extras;
  extras.trace = &e.trace;
  e.outcome = protocol.run(scenario.spec, scenario.adversary.get(), extras);
  e.report = da::check_conditions(scenario.spec, e.outcome.decisions);
  return e;
}

void run_at(int n) {
  std::printf("--- N = %d (config 1/%d-degradable: needs %d nodes) ---\n", n,
              n - 2, n + 1);
  const auto sa = da::faults::figure2::scenario_a(n);
  const auto sb = da::faults::figure2::scenario_b(n);
  const auto sc = da::faults::figure2::scenario_c(n);
  const Executed ea = execute(sa);
  const Executed eb = execute(sb);
  const Executed ec = execute(sc);

  da::Table table({"scenario", "faulty", "condition", "satisfied",
                   "decision(A=1)", "decision(B=2)"});
  const auto row = [&table](const Scenario& s, const Executed& e) {
    std::string faulty;
    for (da::NodeId id : s.spec.faulty) {
      faulty += (faulty.empty() ? "" : ",") + std::to_string(id);
    }
    const auto decision_str = [&e, &s](da::NodeId id) {
      return s.spec.is_faulty(id) ? std::string("(faulty)")
                                  : e.outcome.decision_of(id).to_string();
    };
    table.row(s.name, faulty, da::to_string(e.report.applied),
              e.report.satisfied ? "yes" : "NO", decision_str(1),
              decision_str(2));
  };
  row(sa, ea);
  row(sb, eb);
  row(sc, ec);
  table.print();

  std::printf(
      "indistinguishability: B's transcript (a) == (b): %s;  A's (b) == (c): "
      "%s\n",
      ea.trace.indistinguishable_for(2, eb.trace) ? "IDENTICAL" : "differs",
      eb.trace.indistinguishable_for(1, ec.trace) ? "IDENTICAL" : "differs");
  std::printf(
      "=> node A is forced to beta in (c), but D.3 allows only alpha or "
      "V_d: %s\n\n",
      ec.report.satisfied ? "??? (expected a violation)" : "VIOLATION, QED");
}

}  // namespace

int main() {
  std::puts("E4: Theorem 2 lower bound, Figure 2 made executable");
  std::printf("    alpha = %s, beta = %s, both distinct from V_d\n\n",
              da::faults::figure2::kAlpha.to_string().c_str(),
              da::faults::figure2::kBeta.to_string().c_str());

  run_at(4);  // the figure itself
  run_at(6);  // Part II group lift
  run_at(8);

  std::puts("With one more node (N = 2m+u+1) the exhaustive sweeps of");
  std::puts("bench_table_min_nodes find no violation: the bound is tight.");
  return 0;
}
