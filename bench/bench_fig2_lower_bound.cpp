// Experiment E4 — Figure 2 / Theorem 2: m/u-degradable agreement is
// impossible with N = 2m+u nodes.
//
// The harness replays the proof's three fault scenarios on the 4-node
// system (m=1, u=2 — one node short of the 5 the bound demands), shows
// the two indistinguishability pairs as byte-identical per-node message
// transcripts, and exhibits the resulting D.3 violation in scenario (c).
// The group-simulation lift of Part II is replayed at larger N = 2m+u.
//
// It then runs both sides of the boundary through the parallel
// adversary-complete behaviour sweep (src/sweep/): every behaviour of
// every faulty subset at N = 4 (a violation must surface) and at N = 5
// (none may). `--jobs N` sets the worker count; per-shard counters are
// aggregated per worker so the run reports its own scaling.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "core/agreement.hpp"
#include "faults/behavior_search.hpp"
#include "faults/figure2.hpp"
#include "obs/bench_report.hpp"
#include "util/table.hpp"

namespace {

using da::faults::figure2::Scenario;

struct Executed {
  da::Outcome outcome;
  da::sim::Trace trace;
  da::ConditionReport report;
};

Executed execute(const Scenario& scenario) {
  Executed e;
  const da::DegradableAgreement protocol(scenario.spec.config);
  da::RunExtras extras;
  extras.trace = &e.trace;
  e.outcome = protocol.run(scenario.spec, scenario.adversary.get(), extras);
  e.report = da::check_conditions(scenario.spec, e.outcome.decisions);
  return e;
}

void run_at(int n) {
  std::printf("--- N = %d (config 1/%d-degradable: needs %d nodes) ---\n", n,
              n - 2, n + 1);
  const auto sa = da::faults::figure2::scenario_a(n);
  const auto sb = da::faults::figure2::scenario_b(n);
  const auto sc = da::faults::figure2::scenario_c(n);
  const Executed ea = execute(sa);
  const Executed eb = execute(sb);
  const Executed ec = execute(sc);

  da::Table table({"scenario", "faulty", "condition", "satisfied",
                   "decision(A=1)", "decision(B=2)"});
  table.set_name("figure2_scenarios_n" + std::to_string(n));
  const auto row = [&table](const Scenario& s, const Executed& e) {
    std::string faulty;
    for (da::NodeId id : s.spec.faulty) {
      faulty += (faulty.empty() ? "" : ",") + std::to_string(id);
    }
    const auto decision_str = [&e, &s](da::NodeId id) {
      return s.spec.is_faulty(id) ? std::string("(faulty)")
                                  : e.outcome.decision_of(id).to_string();
    };
    table.row(s.name, faulty, da::to_string(e.report.applied),
              e.report.satisfied ? "yes" : "NO", decision_str(1),
              decision_str(2));
  };
  row(sa, ea);
  row(sb, eb);
  row(sc, ec);
  table.print();

  std::printf(
      "indistinguishability: B's transcript (a) == (b): %s;  A's (b) == (c): "
      "%s\n",
      ea.trace.indistinguishable_for(2, eb.trace) ? "IDENTICAL" : "differs",
      eb.trace.indistinguishable_for(1, ec.trace) ? "IDENTICAL" : "differs");
  std::printf(
      "=> node A is forced to beta in (c), but D.3 allows only alpha or "
      "V_d: %s\n\n",
      ec.report.satisfied ? "??? (expected a violation)" : "VIOLATION, QED");
}

void print_sweep_report(const da::sweep::SweepStats& stats) {
  std::printf(
      "  jobs=%d  shards=%llu  executions=%llu (canonical) / %llu "
      "(performed)  wall=%.1f ms\n",
      stats.jobs, static_cast<unsigned long long>(stats.shards),
      static_cast<unsigned long long>(stats.executions),
      static_cast<unsigned long long>(stats.performed), stats.wall_ms);
  double busy_total = 0.0;
  da::Table table({"worker", "shards", "executions", "busy_ms"});
  table.set_name("sweep_workers");
  for (const auto& w : da::sweep::summarize_workers(stats)) {
    table.row(w.worker, w.shards, w.executions,
              static_cast<std::int64_t>(w.busy_ms));
    if (w.worker >= 0) busy_total += w.busy_ms;
  }
  table.print();
  if (stats.wall_ms > 0.0) {
    std::printf("  parallel efficiency: %.2fx (busy %.1f ms / wall %.1f ms)\n",
                busy_total / stats.wall_ms, busy_total, stats.wall_ms);
  }
}

/// The behaviour sweep on both sides of the Theorem 2 boundary: the
/// N = 2m+u system must yield a violating behaviour, the N = 2m+u+1
/// system must survive every behaviour (executable Theorem 1).
void sweep_boundary(int jobs) {
  da::sweep::SweepOptions options;
  options.jobs = jobs;

  std::puts("\nAdversary-complete behaviour sweep across the boundary:");
  {
    const da::Config below{.n = 4, .m = 1, .u = 2};
    da::sweep::SweepStats stats;
    const auto violation =
        da::faults::exhaustive_behavior_search(below, -1, options, &stats);
    std::printf("\nN = 4 (one node short): %s\n",
                violation.has_value()
                    ? ("violation FOUND (expected): " +
                       violation->spec.to_string() + " via " +
                       violation->adversary)
                          .c_str()
                    : "??? no violation (expected one)");
    print_sweep_report(stats);
  }
  {
    const da::Config tight{.n = 5, .m = 1, .u = 2};
    da::sweep::SweepStats stats;
    const auto violation =
        da::faults::exhaustive_behavior_search(tight, -1, options, &stats);
    std::printf("\nN = 5 (the bound, %llu behaviours): %s\n",
                static_cast<unsigned long long>(
                    da::faults::behavior_search_space(tight)),
                violation.has_value() ? "??? VIOLATION (expected none)"
                                      : "no violation — Theorem 1 holds");
    print_sweep_report(stats);
  }
}

int parse_jobs(int argc, char** argv) {
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    }
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  da::obs::BenchReporter reporter("bench_fig2_lower_bound", &argc, argv);
  const int jobs = parse_jobs(argc, argv);
  reporter.set_jobs(jobs);
  std::puts("E4: Theorem 2 lower bound, Figure 2 made executable");
  std::printf("    alpha = %s, beta = %s, both distinct from V_d\n\n",
              da::faults::figure2::kAlpha.to_string().c_str(),
              da::faults::figure2::kBeta.to_string().c_str());

  run_at(4);  // the figure itself
  run_at(6);  // Part II group lift
  run_at(8);

  sweep_boundary(jobs);

  std::puts("\nWith one more node (N = 2m+u+1) the exhaustive sweeps of");
  std::puts("bench_table_min_nodes find no violation: the bound is tight.");
  return reporter.finish();
}
