// Injection-layer overhead: the cost of routing every message through
// src/inject/'s InjectionNetwork, measured on the paper's 7-node
// 1/4-degradable system. Three transports are compared:
//
//   none      — RunOptions.network = nullptr (the seed baseline);
//   inactive  — an InjectionNetwork with an empty FaultPlan (the price of
//               the hook itself, which must stay within noise);
//   active    — a seed-derived plan with drop/dup/delay rates and a crash
//               window (the price of actually perturbing traffic).
//
// The differential sweep row at the bottom exercises the full
// three-runtime replay pipeline per case (tests assert its correctness;
// this reports its throughput).

#include <chrono>
#include <cstdio>

#include "core/byz.hpp"
#include "faults/adversaries.hpp"
#include "inject/differ.hpp"
#include "inject/injection_network.hpp"
#include "obs/bench_report.hpp"
#include "sim/runner.hpp"
#include "util/table.hpp"

namespace {

const da::Config kConfig{.n = 7, .m = 1, .u = 4};

double run_batch(int runs, const da::inject::FaultPlan* plan) {
  auto adversary = da::faults::equivocator(da::Value::of(42), da::Value::of(9));
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < runs; ++i) {
    da::sim::RunOptions options;
    options.faulty = {2, 5};
    options.adversary = adversary.get();
    std::optional<da::inject::InjectionNetwork> network;
    if (plan != nullptr) {
      network.emplace(*plan);
      options.network = &*network;
    }
    da::sim::SyncRunner runner(
        da::core::make_byz_processes(kConfig, 0, da::Value::of(42)),
        std::move(options));
    (void)runner.run();
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  da::obs::BenchReporter reporter("bench_inject", &argc, argv);
  reporter.set_seed(1);
  const int runs = reporter.smoke() ? 20 : 400;

  std::puts("Injection-layer overhead on BYZ(1,1), n=7 (sim runtime)");
  std::printf("  %d runs per transport\n\n", runs);

  const da::inject::FaultPlan inactive;  // no rules, no rates: must be free
  const da::inject::FaultPlan active =
      da::inject::FaultPlan::from_seed(7, kConfig.n, 2);

  (void)run_batch(runs / 4 + 1, nullptr);  // warm-up
  const double none_ms = run_batch(runs, nullptr);
  const double inactive_ms = run_batch(runs, &inactive);
  const double active_ms = run_batch(runs, &active);

  da::Table table({"transport", "total ms", "us/run", "vs none"});
  const auto row = [&](const char* name, double ms) {
    char us[32];
    char rel[32];
    std::snprintf(us, sizeof(us), "%.1f", 1000.0 * ms / runs);
    std::snprintf(rel, sizeof(rel), "%+.1f%%",
                  100.0 * (ms - none_ms) / none_ms);
    char total[32];
    std::snprintf(total, sizeof(total), "%.2f", ms);
    table.add_row({name, total, us, rel});
  };
  row("none", none_ms);
  row("inactive plan", inactive_ms);
  row("active plan", active_ms);
  table.print();

  // Throughput of the full differential replay (3 runtimes per case).
  const std::uint64_t cases = reporter.smoke() ? 6 : 60;
  const auto start = std::chrono::steady_clock::now();
  const da::inject::DifferentialSweepResult sweep =
      da::inject::sweep_differential(1, cases, 4);
  const auto end = std::chrono::steady_clock::now();
  const double sweep_ms =
      std::chrono::duration<double, std::milli>(end - start).count();

  std::puts("");
  da::Table differ({"differential cases", "mismatches", "total ms",
                    "ms/case"});
  char per_case[32];
  std::snprintf(per_case, sizeof(per_case), "%.2f",
                sweep_ms / static_cast<double>(cases));
  char total[32];
  std::snprintf(total, sizeof(total), "%.1f", sweep_ms);
  differ.add_row({std::to_string(cases),
                  std::to_string(sweep.first_mismatch.has_value() ? 1 : 0),
                  total, per_case});
  differ.print();

  return reporter.finish(sweep.first_mismatch.has_value() ? 1 : 0);
}
