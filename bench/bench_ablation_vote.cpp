// Experiment E10 — ablation: the threshold vote is load-bearing.
//
// BYZ(t,m) resolves every recursion level with VOTE(n_sub-1-m, n_sub-1):
// a value needs n_sub-1-m confirmations or the node falls back to V_d
// (also on ties). The obvious alternative — simple majority, i.e. exactly
// Lamport's OM(m) resolve over the identical message pattern — satisfies
// D.1/D.2 for f <= m just as well, but in the degraded range m < f <= u a
// majority can be *manufactured* by the faulty nodes, and a fault-free
// receiver adopts a wrong value: D.3/D.4 collapse.
//
// We run both resolvers over the same executions and count violations of
// the governing condition per fault count.

#include <cstdio>

#include "core/agreement.hpp"
#include "core/byz.hpp"
#include "faults/adversaries.hpp"
#include "faults/search.hpp"
#include "obs/bench_report.hpp"
#include "protocols/common/eig_process.hpp"
#include "sim/runner.hpp"
#include "util/table.hpp"

namespace {

const da::Config kConfig{.n = 7, .m = 1, .u = 4};

struct Tally {
  int runs = 0;
  int violations = 0;
};

/// Runs the EIG protocol with the given resolver and checks D.1-D.4.
Tally sweep(std::shared_ptr<const da::protocols::Resolver> resolver, int f) {
  Tally tally;
  const auto family = da::faults::standard_family(3);
  da::faults::for_each_subset(
      kConfig.n, f, [&](const std::vector<da::NodeId>& faulty) {
        for (const auto& factory : family) {
          da::ScenarioSpec spec;
          spec.config = kConfig;
          spec.sender = 0;
          spec.sender_value = da::Value::of(23);
          spec.faulty = faulty;
          auto adversary = factory.make(spec);

          da::sim::RunOptions options;
          options.faulty = faulty;
          options.adversary = adversary.get();
          da::sim::SyncRunner runner(
              da::protocols::make_eig_processes(
                  kConfig.n, spec.sender, spec.sender_value,
                  da::core::byz_depth(kConfig.m), resolver),
              options);
          const auto result = runner.run();
          const auto report = da::check_conditions(spec, result.decisions);
          ++tally.runs;
          tally.violations += report.satisfied ? 0 : 1;
        }
      });
  return tally;
}

}  // namespace

int main(int argc, char** argv) {
  da::obs::BenchReporter reporter("bench_ablation_vote", &argc, argv);
  std::puts("E10: ablation — VOTE(n-1-m, n-1) vs simple majority resolve");
  std::printf("     config %s, identical message pattern, exhaustive fault "
              "subsets x adversary family\n\n",
              kConfig.to_string().c_str());

  const auto byz_rule =
      std::make_shared<da::protocols::ByzResolver>(kConfig.m);
  const auto majority_rule =
      std::make_shared<da::protocols::MajorityResolver>();

  da::Table table({"f", "regime", "threshold-vote violations",
                   "majority violations"});
  for (int f = 0; f <= kConfig.u; ++f) {
    const Tally byz = sweep(byz_rule, f);
    const Tally maj = sweep(majority_rule, f);
    const char* regime = f <= kConfig.m ? "exact" : "degraded";
    table.row(f, regime,
              std::to_string(byz.violations) + "/" + std::to_string(byz.runs),
              std::to_string(maj.violations) + "/" + std::to_string(maj.runs));
  }
  table.print();

  std::puts("\nReading: both resolvers are clean while f <= m. In the");
  std::puts("degraded range the majority resolve lets colluders fabricate a");
  std::puts("false majority at some receiver (violating D.3/D.4), while the");
  std::puts("threshold vote defaults instead — the design choice the whole");
  std::puts("degradable guarantee rests on.");
  return reporter.finish();
}
