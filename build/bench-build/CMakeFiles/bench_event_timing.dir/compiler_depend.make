# Empty compiler generated dependencies file for bench_event_timing.
# This may be replaced when dependencies are built.
