file(REMOVE_RECURSE
  "../bench/bench_event_timing"
  "../bench/bench_event_timing.pdb"
  "CMakeFiles/bench_event_timing.dir/bench_event_timing.cpp.o"
  "CMakeFiles/bench_event_timing.dir/bench_event_timing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
