file(REMOVE_RECURSE
  "../bench/bench_fig1_channels"
  "../bench/bench_fig1_channels.pdb"
  "CMakeFiles/bench_fig1_channels.dir/bench_fig1_channels.cpp.o"
  "CMakeFiles/bench_fig1_channels.dir/bench_fig1_channels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
