# Empty compiler generated dependencies file for bench_fig1_channels.
# This may be replaced when dependencies are built.
