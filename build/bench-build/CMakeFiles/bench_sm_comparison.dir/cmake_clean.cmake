file(REMOVE_RECURSE
  "../bench/bench_sm_comparison"
  "../bench/bench_sm_comparison.pdb"
  "CMakeFiles/bench_sm_comparison.dir/bench_sm_comparison.cpp.o"
  "CMakeFiles/bench_sm_comparison.dir/bench_sm_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
