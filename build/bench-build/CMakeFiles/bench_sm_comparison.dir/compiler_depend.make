# Empty compiler generated dependencies file for bench_sm_comparison.
# This may be replaced when dependencies are built.
