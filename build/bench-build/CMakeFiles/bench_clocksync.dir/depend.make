# Empty dependencies file for bench_clocksync.
# This may be replaced when dependencies are built.
