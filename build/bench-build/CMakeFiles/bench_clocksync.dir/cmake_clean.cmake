file(REMOVE_RECURSE
  "../bench/bench_clocksync"
  "../bench/bench_clocksync.pdb"
  "CMakeFiles/bench_clocksync.dir/bench_clocksync.cpp.o"
  "CMakeFiles/bench_clocksync.dir/bench_clocksync.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clocksync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
