# Empty compiler generated dependencies file for bench_table_min_nodes.
# This may be replaced when dependencies are built.
