file(REMOVE_RECURSE
  "../bench/bench_table_min_nodes"
  "../bench/bench_table_min_nodes.pdb"
  "CMakeFiles/bench_table_min_nodes.dir/bench_table_min_nodes.cpp.o"
  "CMakeFiles/bench_table_min_nodes.dir/bench_table_min_nodes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_min_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
