# Empty compiler generated dependencies file for bench_ic_comparison.
# This may be replaced when dependencies are built.
