file(REMOVE_RECURSE
  "../bench/bench_ic_comparison"
  "../bench/bench_ic_comparison.pdb"
  "CMakeFiles/bench_ic_comparison.dir/bench_ic_comparison.cpp.o"
  "CMakeFiles/bench_ic_comparison.dir/bench_ic_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ic_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
