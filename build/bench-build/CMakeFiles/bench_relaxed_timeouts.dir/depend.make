# Empty dependencies file for bench_relaxed_timeouts.
# This may be replaced when dependencies are built.
