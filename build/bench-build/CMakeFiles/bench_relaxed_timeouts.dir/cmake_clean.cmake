file(REMOVE_RECURSE
  "../bench/bench_relaxed_timeouts"
  "../bench/bench_relaxed_timeouts.pdb"
  "CMakeFiles/bench_relaxed_timeouts.dir/bench_relaxed_timeouts.cpp.o"
  "CMakeFiles/bench_relaxed_timeouts.dir/bench_relaxed_timeouts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relaxed_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
