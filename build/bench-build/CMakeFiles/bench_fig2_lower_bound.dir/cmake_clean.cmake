file(REMOVE_RECURSE
  "../bench/bench_fig2_lower_bound"
  "../bench/bench_fig2_lower_bound.pdb"
  "CMakeFiles/bench_fig2_lower_bound.dir/bench_fig2_lower_bound.cpp.o"
  "CMakeFiles/bench_fig2_lower_bound.dir/bench_fig2_lower_bound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
