# Empty compiler generated dependencies file for bench_fig2_lower_bound.
# This may be replaced when dependencies are built.
