# Empty compiler generated dependencies file for bench_connectivity.
# This may be replaced when dependencies are built.
