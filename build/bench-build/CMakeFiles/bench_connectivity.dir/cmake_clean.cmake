file(REMOVE_RECURSE
  "../bench/bench_connectivity"
  "../bench/bench_connectivity.pdb"
  "CMakeFiles/bench_connectivity.dir/bench_connectivity.cpp.o"
  "CMakeFiles/bench_connectivity.dir/bench_connectivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
