file(REMOVE_RECURSE
  "../bench/bench_perf"
  "../bench/bench_perf.pdb"
  "CMakeFiles/bench_perf.dir/bench_perf.cpp.o"
  "CMakeFiles/bench_perf.dir/bench_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
