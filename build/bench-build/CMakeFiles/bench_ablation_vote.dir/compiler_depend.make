# Empty compiler generated dependencies file for bench_ablation_vote.
# This may be replaced when dependencies are built.
