file(REMOVE_RECURSE
  "../bench/bench_ablation_vote"
  "../bench/bench_ablation_vote.pdb"
  "CMakeFiles/bench_ablation_vote.dir/bench_ablation_vote.cpp.o"
  "CMakeFiles/bench_ablation_vote.dir/bench_ablation_vote.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
