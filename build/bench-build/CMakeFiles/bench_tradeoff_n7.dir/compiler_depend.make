# Empty compiler generated dependencies file for bench_tradeoff_n7.
# This may be replaced when dependencies are built.
