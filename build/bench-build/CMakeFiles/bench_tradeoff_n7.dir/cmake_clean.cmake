file(REMOVE_RECURSE
  "../bench/bench_tradeoff_n7"
  "../bench/bench_tradeoff_n7.pdb"
  "CMakeFiles/bench_tradeoff_n7.dir/bench_tradeoff_n7.cpp.o"
  "CMakeFiles/bench_tradeoff_n7.dir/bench_tradeoff_n7.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tradeoff_n7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
