# Empty dependencies file for fly_by_wire.
# This may be replaced when dependencies are built.
