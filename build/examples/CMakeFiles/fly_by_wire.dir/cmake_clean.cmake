file(REMOVE_RECURSE
  "CMakeFiles/fly_by_wire.dir/fly_by_wire.cpp.o"
  "CMakeFiles/fly_by_wire.dir/fly_by_wire.cpp.o.d"
  "fly_by_wire"
  "fly_by_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fly_by_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
