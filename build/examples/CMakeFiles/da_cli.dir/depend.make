# Empty dependencies file for da_cli.
# This may be replaced when dependencies are built.
