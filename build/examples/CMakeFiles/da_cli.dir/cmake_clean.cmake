file(REMOVE_RECURSE
  "CMakeFiles/da_cli.dir/da_cli.cpp.o"
  "CMakeFiles/da_cli.dir/da_cli.cpp.o.d"
  "da_cli"
  "da_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
