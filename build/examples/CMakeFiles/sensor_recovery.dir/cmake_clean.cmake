file(REMOVE_RECURSE
  "CMakeFiles/sensor_recovery.dir/sensor_recovery.cpp.o"
  "CMakeFiles/sensor_recovery.dir/sensor_recovery.cpp.o.d"
  "sensor_recovery"
  "sensor_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
