# Empty dependencies file for sensor_recovery.
# This may be replaced when dependencies are built.
