
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sensor_recovery.cpp" "examples/CMakeFiles/sensor_recovery.dir/sensor_recovery.cpp.o" "gcc" "examples/CMakeFiles/sensor_recovery.dir/sensor_recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/da_channels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
