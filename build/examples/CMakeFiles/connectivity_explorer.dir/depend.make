# Empty dependencies file for connectivity_explorer.
# This may be replaced when dependencies are built.
