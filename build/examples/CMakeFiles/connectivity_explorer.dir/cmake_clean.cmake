file(REMOVE_RECURSE
  "CMakeFiles/connectivity_explorer.dir/connectivity_explorer.cpp.o"
  "CMakeFiles/connectivity_explorer.dir/connectivity_explorer.cpp.o.d"
  "connectivity_explorer"
  "connectivity_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connectivity_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
