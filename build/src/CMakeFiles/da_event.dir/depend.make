# Empty dependencies file for da_event.
# This may be replaced when dependencies are built.
