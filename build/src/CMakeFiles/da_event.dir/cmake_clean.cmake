file(REMOVE_RECURSE
  "CMakeFiles/da_event.dir/event/event_runner.cpp.o"
  "CMakeFiles/da_event.dir/event/event_runner.cpp.o.d"
  "libda_event.a"
  "libda_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
