file(REMOVE_RECURSE
  "libda_event.a"
)
