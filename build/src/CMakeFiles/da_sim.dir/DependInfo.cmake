
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/message.cpp" "src/CMakeFiles/da_sim.dir/sim/message.cpp.o" "gcc" "src/CMakeFiles/da_sim.dir/sim/message.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/da_sim.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/da_sim.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/CMakeFiles/da_sim.dir/sim/runner.cpp.o" "gcc" "src/CMakeFiles/da_sim.dir/sim/runner.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/da_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/da_sim.dir/sim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/da_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
