# Empty compiler generated dependencies file for da_sim.
# This may be replaced when dependencies are built.
