file(REMOVE_RECURSE
  "CMakeFiles/da_sim.dir/sim/message.cpp.o"
  "CMakeFiles/da_sim.dir/sim/message.cpp.o.d"
  "CMakeFiles/da_sim.dir/sim/network.cpp.o"
  "CMakeFiles/da_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/da_sim.dir/sim/runner.cpp.o"
  "CMakeFiles/da_sim.dir/sim/runner.cpp.o.d"
  "CMakeFiles/da_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/da_sim.dir/sim/trace.cpp.o.d"
  "libda_sim.a"
  "libda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
