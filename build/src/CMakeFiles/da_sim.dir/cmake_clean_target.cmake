file(REMOVE_RECURSE
  "libda_sim.a"
)
