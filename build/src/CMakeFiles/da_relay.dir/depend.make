# Empty dependencies file for da_relay.
# This may be replaced when dependencies are built.
