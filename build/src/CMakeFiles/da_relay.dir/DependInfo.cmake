
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relay/cutset_adversary.cpp" "src/CMakeFiles/da_relay.dir/relay/cutset_adversary.cpp.o" "gcc" "src/CMakeFiles/da_relay.dir/relay/cutset_adversary.cpp.o.d"
  "/root/repo/src/relay/disjoint_relay.cpp" "src/CMakeFiles/da_relay.dir/relay/disjoint_relay.cpp.o" "gcc" "src/CMakeFiles/da_relay.dir/relay/disjoint_relay.cpp.o.d"
  "/root/repo/src/relay/graph_network.cpp" "src/CMakeFiles/da_relay.dir/relay/graph_network.cpp.o" "gcc" "src/CMakeFiles/da_relay.dir/relay/graph_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/da_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
