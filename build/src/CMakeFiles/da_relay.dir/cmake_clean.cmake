file(REMOVE_RECURSE
  "CMakeFiles/da_relay.dir/relay/cutset_adversary.cpp.o"
  "CMakeFiles/da_relay.dir/relay/cutset_adversary.cpp.o.d"
  "CMakeFiles/da_relay.dir/relay/disjoint_relay.cpp.o"
  "CMakeFiles/da_relay.dir/relay/disjoint_relay.cpp.o.d"
  "CMakeFiles/da_relay.dir/relay/graph_network.cpp.o"
  "CMakeFiles/da_relay.dir/relay/graph_network.cpp.o.d"
  "libda_relay.a"
  "libda_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
