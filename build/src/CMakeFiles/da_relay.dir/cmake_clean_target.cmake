file(REMOVE_RECURSE
  "libda_relay.a"
)
