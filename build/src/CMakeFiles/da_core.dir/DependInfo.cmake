
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agreement.cpp" "src/CMakeFiles/da_core.dir/core/agreement.cpp.o" "gcc" "src/CMakeFiles/da_core.dir/core/agreement.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/CMakeFiles/da_core.dir/core/bounds.cpp.o" "gcc" "src/CMakeFiles/da_core.dir/core/bounds.cpp.o.d"
  "/root/repo/src/core/byz.cpp" "src/CMakeFiles/da_core.dir/core/byz.cpp.o" "gcc" "src/CMakeFiles/da_core.dir/core/byz.cpp.o.d"
  "/root/repo/src/core/checker.cpp" "src/CMakeFiles/da_core.dir/core/checker.cpp.o" "gcc" "src/CMakeFiles/da_core.dir/core/checker.cpp.o.d"
  "/root/repo/src/core/degradable_ic.cpp" "src/CMakeFiles/da_core.dir/core/degradable_ic.cpp.o" "gcc" "src/CMakeFiles/da_core.dir/core/degradable_ic.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/da_core.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/da_core.dir/core/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/da_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
