file(REMOVE_RECURSE
  "libda_core.a"
)
