# Empty compiler generated dependencies file for da_core.
# This may be replaced when dependencies are built.
