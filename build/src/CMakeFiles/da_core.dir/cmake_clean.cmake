file(REMOVE_RECURSE
  "CMakeFiles/da_core.dir/core/agreement.cpp.o"
  "CMakeFiles/da_core.dir/core/agreement.cpp.o.d"
  "CMakeFiles/da_core.dir/core/bounds.cpp.o"
  "CMakeFiles/da_core.dir/core/bounds.cpp.o.d"
  "CMakeFiles/da_core.dir/core/byz.cpp.o"
  "CMakeFiles/da_core.dir/core/byz.cpp.o.d"
  "CMakeFiles/da_core.dir/core/checker.cpp.o"
  "CMakeFiles/da_core.dir/core/checker.cpp.o.d"
  "CMakeFiles/da_core.dir/core/degradable_ic.cpp.o"
  "CMakeFiles/da_core.dir/core/degradable_ic.cpp.o.d"
  "CMakeFiles/da_core.dir/core/scenario.cpp.o"
  "CMakeFiles/da_core.dir/core/scenario.cpp.o.d"
  "libda_core.a"
  "libda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
