file(REMOVE_RECURSE
  "CMakeFiles/da_util.dir/util/log.cpp.o"
  "CMakeFiles/da_util.dir/util/log.cpp.o.d"
  "CMakeFiles/da_util.dir/util/rng.cpp.o"
  "CMakeFiles/da_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/da_util.dir/util/table.cpp.o"
  "CMakeFiles/da_util.dir/util/table.cpp.o.d"
  "CMakeFiles/da_util.dir/util/value.cpp.o"
  "CMakeFiles/da_util.dir/util/value.cpp.o.d"
  "libda_util.a"
  "libda_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
