
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/da_util.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/da_util.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/da_util.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/da_util.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/da_util.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/da_util.dir/util/table.cpp.o.d"
  "/root/repo/src/util/value.cpp" "src/CMakeFiles/da_util.dir/util/value.cpp.o" "gcc" "src/CMakeFiles/da_util.dir/util/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
