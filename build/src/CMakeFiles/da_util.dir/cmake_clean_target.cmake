file(REMOVE_RECURSE
  "libda_util.a"
)
