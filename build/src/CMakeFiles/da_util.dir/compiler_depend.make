# Empty compiler generated dependencies file for da_util.
# This may be replaced when dependencies are built.
