file(REMOVE_RECURSE
  "CMakeFiles/da_graph.dir/graph/connectivity.cpp.o"
  "CMakeFiles/da_graph.dir/graph/connectivity.cpp.o.d"
  "CMakeFiles/da_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/da_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/da_graph.dir/graph/topology.cpp.o"
  "CMakeFiles/da_graph.dir/graph/topology.cpp.o.d"
  "libda_graph.a"
  "libda_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
