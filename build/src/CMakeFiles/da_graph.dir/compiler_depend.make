# Empty compiler generated dependencies file for da_graph.
# This may be replaced when dependencies are built.
