file(REMOVE_RECURSE
  "libda_graph.a"
)
