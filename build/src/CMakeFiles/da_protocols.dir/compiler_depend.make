# Empty compiler generated dependencies file for da_protocols.
# This may be replaced when dependencies are built.
