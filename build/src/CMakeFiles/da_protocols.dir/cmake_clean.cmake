file(REMOVE_RECURSE
  "CMakeFiles/da_protocols.dir/protocols/authenticated/signatures.cpp.o"
  "CMakeFiles/da_protocols.dir/protocols/authenticated/signatures.cpp.o.d"
  "CMakeFiles/da_protocols.dir/protocols/authenticated/sm.cpp.o"
  "CMakeFiles/da_protocols.dir/protocols/authenticated/sm.cpp.o.d"
  "CMakeFiles/da_protocols.dir/protocols/common/eig.cpp.o"
  "CMakeFiles/da_protocols.dir/protocols/common/eig.cpp.o.d"
  "CMakeFiles/da_protocols.dir/protocols/common/eig_process.cpp.o"
  "CMakeFiles/da_protocols.dir/protocols/common/eig_process.cpp.o.d"
  "CMakeFiles/da_protocols.dir/protocols/common/vote.cpp.o"
  "CMakeFiles/da_protocols.dir/protocols/common/vote.cpp.o.d"
  "CMakeFiles/da_protocols.dir/protocols/crusader/crusader.cpp.o"
  "CMakeFiles/da_protocols.dir/protocols/crusader/crusader.cpp.o.d"
  "CMakeFiles/da_protocols.dir/protocols/ic/interactive_consistency.cpp.o"
  "CMakeFiles/da_protocols.dir/protocols/ic/interactive_consistency.cpp.o.d"
  "CMakeFiles/da_protocols.dir/protocols/lamport/om.cpp.o"
  "CMakeFiles/da_protocols.dir/protocols/lamport/om.cpp.o.d"
  "libda_protocols.a"
  "libda_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
