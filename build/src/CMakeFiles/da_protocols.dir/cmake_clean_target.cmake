file(REMOVE_RECURSE
  "libda_protocols.a"
)
