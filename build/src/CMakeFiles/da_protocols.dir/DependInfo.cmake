
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/authenticated/signatures.cpp" "src/CMakeFiles/da_protocols.dir/protocols/authenticated/signatures.cpp.o" "gcc" "src/CMakeFiles/da_protocols.dir/protocols/authenticated/signatures.cpp.o.d"
  "/root/repo/src/protocols/authenticated/sm.cpp" "src/CMakeFiles/da_protocols.dir/protocols/authenticated/sm.cpp.o" "gcc" "src/CMakeFiles/da_protocols.dir/protocols/authenticated/sm.cpp.o.d"
  "/root/repo/src/protocols/common/eig.cpp" "src/CMakeFiles/da_protocols.dir/protocols/common/eig.cpp.o" "gcc" "src/CMakeFiles/da_protocols.dir/protocols/common/eig.cpp.o.d"
  "/root/repo/src/protocols/common/eig_process.cpp" "src/CMakeFiles/da_protocols.dir/protocols/common/eig_process.cpp.o" "gcc" "src/CMakeFiles/da_protocols.dir/protocols/common/eig_process.cpp.o.d"
  "/root/repo/src/protocols/common/vote.cpp" "src/CMakeFiles/da_protocols.dir/protocols/common/vote.cpp.o" "gcc" "src/CMakeFiles/da_protocols.dir/protocols/common/vote.cpp.o.d"
  "/root/repo/src/protocols/crusader/crusader.cpp" "src/CMakeFiles/da_protocols.dir/protocols/crusader/crusader.cpp.o" "gcc" "src/CMakeFiles/da_protocols.dir/protocols/crusader/crusader.cpp.o.d"
  "/root/repo/src/protocols/ic/interactive_consistency.cpp" "src/CMakeFiles/da_protocols.dir/protocols/ic/interactive_consistency.cpp.o" "gcc" "src/CMakeFiles/da_protocols.dir/protocols/ic/interactive_consistency.cpp.o.d"
  "/root/repo/src/protocols/lamport/om.cpp" "src/CMakeFiles/da_protocols.dir/protocols/lamport/om.cpp.o" "gcc" "src/CMakeFiles/da_protocols.dir/protocols/lamport/om.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/da_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
