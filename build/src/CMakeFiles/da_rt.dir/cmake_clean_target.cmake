file(REMOVE_RECURSE
  "libda_rt.a"
)
