# Empty dependencies file for da_rt.
# This may be replaced when dependencies are built.
