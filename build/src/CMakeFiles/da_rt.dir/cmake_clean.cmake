file(REMOVE_RECURSE
  "CMakeFiles/da_rt.dir/rt/mailbox.cpp.o"
  "CMakeFiles/da_rt.dir/rt/mailbox.cpp.o.d"
  "CMakeFiles/da_rt.dir/rt/threaded_runner.cpp.o"
  "CMakeFiles/da_rt.dir/rt/threaded_runner.cpp.o.d"
  "libda_rt.a"
  "libda_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
