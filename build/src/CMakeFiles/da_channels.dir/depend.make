# Empty dependencies file for da_channels.
# This may be replaced when dependencies are built.
