file(REMOVE_RECURSE
  "libda_channels.a"
)
