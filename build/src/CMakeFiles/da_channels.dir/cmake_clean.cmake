file(REMOVE_RECURSE
  "CMakeFiles/da_channels.dir/channels/channel_system.cpp.o"
  "CMakeFiles/da_channels.dir/channels/channel_system.cpp.o.d"
  "CMakeFiles/da_channels.dir/channels/recovery.cpp.o"
  "CMakeFiles/da_channels.dir/channels/recovery.cpp.o.d"
  "CMakeFiles/da_channels.dir/channels/voter.cpp.o"
  "CMakeFiles/da_channels.dir/channels/voter.cpp.o.d"
  "libda_channels.a"
  "libda_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
