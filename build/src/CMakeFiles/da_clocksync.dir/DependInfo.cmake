
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clocksync/convergence.cpp" "src/CMakeFiles/da_clocksync.dir/clocksync/convergence.cpp.o" "gcc" "src/CMakeFiles/da_clocksync.dir/clocksync/convergence.cpp.o.d"
  "/root/repo/src/clocksync/degradable_sync.cpp" "src/CMakeFiles/da_clocksync.dir/clocksync/degradable_sync.cpp.o" "gcc" "src/CMakeFiles/da_clocksync.dir/clocksync/degradable_sync.cpp.o.d"
  "/root/repo/src/clocksync/hardware_clock.cpp" "src/CMakeFiles/da_clocksync.dir/clocksync/hardware_clock.cpp.o" "gcc" "src/CMakeFiles/da_clocksync.dir/clocksync/hardware_clock.cpp.o.d"
  "/root/repo/src/clocksync/witness.cpp" "src/CMakeFiles/da_clocksync.dir/clocksync/witness.cpp.o" "gcc" "src/CMakeFiles/da_clocksync.dir/clocksync/witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/da_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
