file(REMOVE_RECURSE
  "CMakeFiles/da_clocksync.dir/clocksync/convergence.cpp.o"
  "CMakeFiles/da_clocksync.dir/clocksync/convergence.cpp.o.d"
  "CMakeFiles/da_clocksync.dir/clocksync/degradable_sync.cpp.o"
  "CMakeFiles/da_clocksync.dir/clocksync/degradable_sync.cpp.o.d"
  "CMakeFiles/da_clocksync.dir/clocksync/hardware_clock.cpp.o"
  "CMakeFiles/da_clocksync.dir/clocksync/hardware_clock.cpp.o.d"
  "CMakeFiles/da_clocksync.dir/clocksync/witness.cpp.o"
  "CMakeFiles/da_clocksync.dir/clocksync/witness.cpp.o.d"
  "libda_clocksync.a"
  "libda_clocksync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_clocksync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
