file(REMOVE_RECURSE
  "libda_clocksync.a"
)
