# Empty compiler generated dependencies file for da_clocksync.
# This may be replaced when dependencies are built.
