
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/adversaries.cpp" "src/CMakeFiles/da_faults.dir/faults/adversaries.cpp.o" "gcc" "src/CMakeFiles/da_faults.dir/faults/adversaries.cpp.o.d"
  "/root/repo/src/faults/behavior_search.cpp" "src/CMakeFiles/da_faults.dir/faults/behavior_search.cpp.o" "gcc" "src/CMakeFiles/da_faults.dir/faults/behavior_search.cpp.o.d"
  "/root/repo/src/faults/figure2.cpp" "src/CMakeFiles/da_faults.dir/faults/figure2.cpp.o" "gcc" "src/CMakeFiles/da_faults.dir/faults/figure2.cpp.o.d"
  "/root/repo/src/faults/scripted.cpp" "src/CMakeFiles/da_faults.dir/faults/scripted.cpp.o" "gcc" "src/CMakeFiles/da_faults.dir/faults/scripted.cpp.o.d"
  "/root/repo/src/faults/search.cpp" "src/CMakeFiles/da_faults.dir/faults/search.cpp.o" "gcc" "src/CMakeFiles/da_faults.dir/faults/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/da_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
