# Empty dependencies file for da_faults.
# This may be replaced when dependencies are built.
