file(REMOVE_RECURSE
  "CMakeFiles/da_faults.dir/faults/adversaries.cpp.o"
  "CMakeFiles/da_faults.dir/faults/adversaries.cpp.o.d"
  "CMakeFiles/da_faults.dir/faults/behavior_search.cpp.o"
  "CMakeFiles/da_faults.dir/faults/behavior_search.cpp.o.d"
  "CMakeFiles/da_faults.dir/faults/figure2.cpp.o"
  "CMakeFiles/da_faults.dir/faults/figure2.cpp.o.d"
  "CMakeFiles/da_faults.dir/faults/scripted.cpp.o"
  "CMakeFiles/da_faults.dir/faults/scripted.cpp.o.d"
  "CMakeFiles/da_faults.dir/faults/search.cpp.o"
  "CMakeFiles/da_faults.dir/faults/search.cpp.o.d"
  "libda_faults.a"
  "libda_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/da_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
