file(REMOVE_RECURSE
  "libda_faults.a"
)
