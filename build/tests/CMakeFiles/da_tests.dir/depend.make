# Empty dependencies file for da_tests.
# This may be replaced when dependencies are built.
