
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adversaries.cpp" "tests/CMakeFiles/da_tests.dir/test_adversaries.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_adversaries.cpp.o.d"
  "/root/repo/tests/test_behavior_search.cpp" "tests/CMakeFiles/da_tests.dir/test_behavior_search.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_behavior_search.cpp.o.d"
  "/root/repo/tests/test_bounds.cpp" "tests/CMakeFiles/da_tests.dir/test_bounds.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_bounds.cpp.o.d"
  "/root/repo/tests/test_byz_basic.cpp" "tests/CMakeFiles/da_tests.dir/test_byz_basic.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_byz_basic.cpp.o.d"
  "/root/repo/tests/test_byz_exhaustive.cpp" "tests/CMakeFiles/da_tests.dir/test_byz_exhaustive.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_byz_exhaustive.cpp.o.d"
  "/root/repo/tests/test_byz_properties.cpp" "tests/CMakeFiles/da_tests.dir/test_byz_properties.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_byz_properties.cpp.o.d"
  "/root/repo/tests/test_channels.cpp" "tests/CMakeFiles/da_tests.dir/test_channels.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_channels.cpp.o.d"
  "/root/repo/tests/test_checker.cpp" "tests/CMakeFiles/da_tests.dir/test_checker.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_checker.cpp.o.d"
  "/root/repo/tests/test_clocksync.cpp" "tests/CMakeFiles/da_tests.dir/test_clocksync.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_clocksync.cpp.o.d"
  "/root/repo/tests/test_connectivity.cpp" "tests/CMakeFiles/da_tests.dir/test_connectivity.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_connectivity.cpp.o.d"
  "/root/repo/tests/test_cross_runtime.cpp" "tests/CMakeFiles/da_tests.dir/test_cross_runtime.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_cross_runtime.cpp.o.d"
  "/root/repo/tests/test_crusader.cpp" "tests/CMakeFiles/da_tests.dir/test_crusader.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_crusader.cpp.o.d"
  "/root/repo/tests/test_degradable_ic.cpp" "tests/CMakeFiles/da_tests.dir/test_degradable_ic.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_degradable_ic.cpp.o.d"
  "/root/repo/tests/test_degradable_sync.cpp" "tests/CMakeFiles/da_tests.dir/test_degradable_sync.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_degradable_sync.cpp.o.d"
  "/root/repo/tests/test_eig.cpp" "tests/CMakeFiles/da_tests.dir/test_eig.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_eig.cpp.o.d"
  "/root/repo/tests/test_event_runner.cpp" "tests/CMakeFiles/da_tests.dir/test_event_runner.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_event_runner.cpp.o.d"
  "/root/repo/tests/test_figure2.cpp" "tests/CMakeFiles/da_tests.dir/test_figure2.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_figure2.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/da_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/da_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_relay.cpp" "tests/CMakeFiles/da_tests.dir/test_graph_relay.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_graph_relay.cpp.o.d"
  "/root/repo/tests/test_ic.cpp" "tests/CMakeFiles/da_tests.dir/test_ic.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_ic.cpp.o.d"
  "/root/repo/tests/test_lamport.cpp" "tests/CMakeFiles/da_tests.dir/test_lamport.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_lamport.cpp.o.d"
  "/root/repo/tests/test_path.cpp" "tests/CMakeFiles/da_tests.dir/test_path.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_path.cpp.o.d"
  "/root/repo/tests/test_recovery.cpp" "tests/CMakeFiles/da_tests.dir/test_recovery.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_recovery.cpp.o.d"
  "/root/repo/tests/test_relaxed_timeouts.cpp" "tests/CMakeFiles/da_tests.dir/test_relaxed_timeouts.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_relaxed_timeouts.cpp.o.d"
  "/root/repo/tests/test_relay.cpp" "tests/CMakeFiles/da_tests.dir/test_relay.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_relay.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/da_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sim_runner.cpp" "tests/CMakeFiles/da_tests.dir/test_sim_runner.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_sim_runner.cpp.o.d"
  "/root/repo/tests/test_sm.cpp" "tests/CMakeFiles/da_tests.dir/test_sm.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_sm.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/da_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_threaded_runner.cpp" "tests/CMakeFiles/da_tests.dir/test_threaded_runner.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_threaded_runner.cpp.o.d"
  "/root/repo/tests/test_util_misc.cpp" "tests/CMakeFiles/da_tests.dir/test_util_misc.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_util_misc.cpp.o.d"
  "/root/repo/tests/test_value.cpp" "tests/CMakeFiles/da_tests.dir/test_value.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_value.cpp.o.d"
  "/root/repo/tests/test_vote.cpp" "tests/CMakeFiles/da_tests.dir/test_vote.cpp.o" "gcc" "tests/CMakeFiles/da_tests.dir/test_vote.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/da_channels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/da_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
