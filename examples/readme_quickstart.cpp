// The README's Quickstart snippet, compiled as-is so it can never rot.
//
// Everything below the marker line is byte-identical to the fenced
// ```cpp block in README.md's "Quickstart" section; tools/docs_check.sh
// (a ctest entry) diffs the two and fails the suite if they drift.
//
// readme-quickstart-begin
#include <cstdio>

#include "da/da.hpp"

int main() {
  // 1/4-degradable agreement on 7 nodes (min_nodes(1, 4) == 7).
  const da::Config config{.n = 7, .m = 1, .u = 4};
  const da::DegradableAgreement protocol(config);

  da::ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = da::Value::of(42);
  spec.faulty = {2, 3, 5};  // f = 3 > m: the degraded range

  auto adversary = da::faults::equivocator(da::Value::of(42),
                                           da::Value::of(13));
  const da::Outcome outcome =
      protocol.run(spec, adversary.get());  // or run_threaded
  const da::ConditionReport report =
      da::check_conditions(spec, outcome.decisions);
  // report.applied == da::Condition::kD3, report.satisfied == true:
  // every fault-free receiver decided 42 or V_d, >= m+1 nodes agree.
  std::printf("%s -> %s\n", da::to_string(report.applied),
              report.satisfied ? "satisfied" : "violated");
  return report.satisfied ? 0 : 1;
}
