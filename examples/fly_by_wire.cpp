// Fly-by-wire: the paper's motivating application (Section 3).
//
// "If a controller in a fly-by-wire system receives a default value from
// the computer, as a safety precaution it can inform the pilot of the
// problem."
//
// A pitch sensor feeds 2m+u = 4 computation channels through
// 1/2-degradable agreement; each channel computes an actuator command; the
// flight-control voter takes the (m+u)-out-of-(2m+u) vote. We fly a short
// mission with fault bursts and show that every frame ends in either the
// correct command or the safe default ("alert the pilot") — never a wrong
// command — while the classical 3-channel design, flown through the same
// faults, eventually feeds the actuator garbage.

#include <cstdio>
#include <vector>

#include "channels/channel_system.hpp"
#include "da/da.hpp"

namespace {

using da::channels::ChannelSystem;
using da::channels::ChannelSystemConfig;
using da::channels::VoterOutcome;

struct MissionStats {
  int correct = 0;
  int safe_default = 0;
  int wrong_command = 0;
};

// One mission: 20 control frames; frames 5-8 have one flaky channel,
// frames 12-15 have two (f > m: past classical tolerance).
MissionStats fly(const ChannelSystem& system) {
  MissionStats stats;
  const int channels = system.config().channel_count();
  for (int frame = 0; frame < 20; ++frame) {
    const da::Value pitch = da::Value::of(100 + frame);
    std::vector<int> faulty;
    if (frame >= 5 && frame <= 8) faulty = {1};
    if (frame >= 12 && frame <= 15) faulty = {0, channels - 1};

    const da::Value lie = da::Value::of(pitch.raw() + 40);
    auto adversary = da::faults::equivocator(pitch, lie);
    const auto result =
        system.run_frame(pitch, faulty, /*sensor_faulty=*/false, *adversary,
                         da::Value::of(2 * lie.raw() + 1));
    switch (result.outcome) {
      case VoterOutcome::kCorrect: ++stats.correct; break;
      case VoterOutcome::kDefault: ++stats.safe_default; break;
      case VoterOutcome::kIncorrect: ++stats.wrong_command; break;
    }

    const char* status =
        result.outcome == VoterOutcome::kCorrect   ? "actuate"
        : result.outcome == VoterOutcome::kDefault ? "SAFE HOLD + alert pilot"
                                                   : "WRONG COMMAND SENT";
    std::printf("  frame %2d  f=%zu  voter=%-5s  -> %s\n", frame,
                faulty.size(), result.voter_output.to_string().c_str(),
                status);
  }
  return stats;
}

}  // namespace

int main() {
  std::puts("Fly-by-wire pitch channel, degradable design (m=1, u=2):");
  const ChannelSystem degradable(
      {.kind = ChannelSystemConfig::Kind::kDegradable, .m = 1, .u = 2});
  const MissionStats deg = fly(degradable);

  std::puts("\nSame mission, classical 3-channel majority design (m=1):");
  const ChannelSystem classical(
      {.kind = ChannelSystemConfig::Kind::kByzantineMajority, .m = 1});
  const MissionStats cls = fly(classical);

  std::puts("\nmission summary:");
  std::printf("  degradable: %2d correct, %2d safe-default, %2d wrong\n",
              deg.correct, deg.safe_default, deg.wrong_command);
  std::printf("  classical : %2d correct, %2d safe-default, %2d wrong\n",
              cls.correct, cls.safe_default, cls.wrong_command);
  std::puts(deg.wrong_command == 0
                ? "\nThe degradable design never actuated a wrong command."
                : "\nUNEXPECTED: degradable design actuated a wrong command!");
  return deg.wrong_command == 0 ? 0 : 1;
}
