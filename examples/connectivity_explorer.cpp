// Connectivity explorer: which (m,u) pairs can a given network support?
//
// Theorem 2 bounds the node count (N >= 2m+u+1) and Theorem 3 the vertex
// connectivity (kappa >= m+u+1). This example computes both for a few
// standard topologies and prints the feasible degradable-agreement
// configurations each one supports, then demonstrates a degradable relay
// channel across the weakest usable link of one of them.

#include <cstdio>
#include <string>

#include "da/da.hpp"
#include "graph/connectivity.hpp"
#include "graph/topology.hpp"
#include "relay/disjoint_relay.hpp"
#include "util/table.hpp"

namespace {

void analyze(const std::string& name, const da::graph::Graph& g) {
  const int n = g.n();
  const int kappa = da::graph::vertex_connectivity(g);
  std::printf("%s: n = %d, vertex connectivity = %d\n", name.c_str(), n,
              kappa);

  da::Table table({"m", "max u (nodes)", "max u (connectivity)", "supported"});
  for (int m = 0; m <= da::bounds::max_m(n); ++m) {
    const int u_nodes = da::bounds::max_u(n, m);          // N >= 2m+u+1
    const int u_kappa = kappa - m - 1;                    // kappa >= m+u+1
    const int u = std::min(u_nodes, u_kappa);
    table.row(m, u_nodes, u_kappa,
              u >= m ? std::to_string(m) + "/" + std::to_string(u) +
                           "-degradable"
                     : std::string("none"));
  }
  table.print();
  std::puts("");
}

}  // namespace

int main() {
  analyze("complete K7", da::graph::complete(7));
  analyze("hypercube Q3", da::graph::hypercube(3));
  analyze("circulant C9(1,2)", da::graph::circulant(9, 2));
  analyze("ring R7", da::graph::ring(7));

  // Route a value across the circulant's diameter through a degradable
  // relay channel: m+u+1 = 4 vertex-disjoint paths, VOTE(u+1, 4) at the
  // receiver, one Byzantine relay on the way.
  std::puts("degradable relay across C9(1,2), nodes 0 -> 4, m=1, u=2:");
  const auto g = da::graph::circulant(9, 2);
  const auto paths = da::graph::disjoint_paths(g, 0, 4, 4);
  for (const auto& path : paths) {
    std::string s = "  path:";
    for (da::NodeId v : path) s += " " + std::to_string(v);
    std::puts(s.c_str());
  }
  const auto result = da::relay::degradable_channel_send(
      g, 0, 4, da::Value::of(7), 1, 2, {paths[0][1]},
      [](da::NodeId, da::Value) { return da::Value::of(666); });
  std::printf("  faulty relay %d forged 666 on its path; receiver's copies:",
              paths[0][1]);
  for (const da::Value& v : result.copies) {
    std::printf(" %s", v.to_string().c_str());
  }
  std::printf("\n  VOTE(u+1=3, 4) delivers: %s\n",
              result.delivered.to_string().c_str());
  return result.delivered == da::Value::of(7) ? 0 : 1;
}
