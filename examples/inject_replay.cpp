// Fault-plan toolbox for the injection layer (src/inject/):
//
//   inject_replay                          demo differential sweep
//   inject_replay --check-plan FILE        parse FILE, echo the canonical
//                                          form (exit 1 on a parse error;
//                                          tools/docs_check.sh uses this to
//                                          validate docs/INJECTION.md)
//   inject_replay --case SEED ORDINAL      replay one differential case
//                                          and print each runtime's verdict
//   inject_replay --sweep SEED CASES [JOBS] sweep ordinals [0, CASES)
//
// Exit status is 0 iff every replayed case agreed across the sim,
// threaded and event runtimes.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "inject/differ.hpp"
#include "inject/fault_plan.hpp"

namespace {

int check_plan(const char* path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "inject_replay: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  const auto plan = da::inject::FaultPlan::parse(text.str(), &error);
  if (!plan.has_value()) {
    std::fprintf(stderr, "inject_replay: %s: %s\n", path, error.c_str());
    return 1;
  }
  if (const auto problem = plan->validate(64)) {
    std::fprintf(stderr, "inject_replay: %s: %s\n", path, problem->c_str());
    return 1;
  }
  std::printf("# canonical form of %s\n%s", path, plan->serialize().c_str());
  return 0;
}

int replay_case(std::uint64_t seed, std::uint64_t ordinal) {
  const da::inject::DifferentialCase c = da::inject::draw_case(seed, ordinal);
  std::printf("case %llu/%llu: %s\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(ordinal),
              c.to_string().c_str());
  const da::inject::DifferentialReport report = da::inject::run_differential(c);
  std::printf("  sim      verdict %s  (%zu msgs)\n", report.sim.verdict.c_str(),
              report.sim.messages_sent);
  std::printf("  threaded verdict %s  (%zu msgs)\n",
              report.threaded.verdict.c_str(), report.threaded.messages_sent);
  std::printf("  event    verdict %s  (%zu msgs)\n",
              report.event.verdict.c_str(), report.event.messages_sent);
  if (report.ok()) {
    std::printf("  runtimes agree: artifacts byte-identical (%zu bytes)\n",
                report.sim.artifact.size());
    return 0;
  }
  std::printf("  MISMATCH: %s\n", report.detail.c_str());
  return 1;
}

int sweep(std::uint64_t seed, std::uint64_t cases, int jobs) {
  const da::inject::DifferentialSweepResult result =
      da::inject::sweep_differential(seed, cases, jobs);
  std::printf("sweep seed=%llu over %llu cases (%llu executions, jobs=%d)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(result.cases),
              static_cast<unsigned long long>(result.executions), jobs);
  if (!result.first_mismatch.has_value()) {
    std::puts("all cases byte-identical across sim/threaded/event");
    return 0;
  }
  std::printf("FIRST MISMATCH at ordinal %llu:\n  %s\n",
              static_cast<unsigned long long>(*result.first_mismatch),
              result.detail.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--check-plan") {
    return check_plan(argv[2]);
  }
  if (argc >= 4 && std::string(argv[1]) == "--case") {
    return replay_case(std::strtoull(argv[2], nullptr, 10),
                       std::strtoull(argv[3], nullptr, 10));
  }
  if (argc >= 4 && std::string(argv[1]) == "--sweep") {
    return sweep(std::strtoull(argv[2], nullptr, 10),
                 std::strtoull(argv[3], nullptr, 10),
                 argc >= 5 ? std::atoi(argv[4]) : 4);
  }
  if (argc > 1) {
    std::fprintf(stderr,
                 "usage: inject_replay [--check-plan FILE | --case SEED "
                 "ORDINAL | --sweep SEED CASES [JOBS]]\n");
    return 2;
  }
  // Demo: one detailed case, then a short sweep across all six protocols.
  if (replay_case(2026, 0) != 0) return 1;
  std::puts("");
  return sweep(2026, 12, 4);
}
