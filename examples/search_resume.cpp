// Resumable exhaustive behaviour certification from the command line:
// initialize a serialized search frontier, run (or resume) it with a
// shard budget, split it across files for distribution, merge the parts
// back, and emit the final byte-deterministic artifact.
//
//   search_resume init    --out F [--n N --m M --u U] [--max-f K] [--seed S]
//                         [--no-subset-symmetry]
//   search_resume run     --frontier F [--jobs J] [--max-shards K]
//                         [--no-symmetry] [--no-checkpointing]
//   search_resume status  --frontier F
//   search_resume split   --frontier F --parts P --out-prefix PFX
//   search_resume merge   --out F part1 part2 ...
//   search_resume artifact --frontier F [--out F2]
//
// `init` writes a subset-quotiented frontier (da-frontier v2) by
// default; `--no-subset-symmetry` writes the full v1 plan. The choice is
// baked into the file — `run` derives it from the class records, so v1
// files keep resuming unquotiented (docs/SEARCH.md §6).
//
// `run` checkpoints the frontier back to its file after every settled
// shard (atomic tmp+rename), so a `kill -9` mid-sweep loses at most the
// in-flight shards' partial cursors; rerunning `run` resumes from the
// last checkpoint and converges to the same normalized artifact for any
// --jobs value and any interruption pattern (docs/SEARCH.md §5).
// `artifact` refuses to print until the frontier has settled.
//
// `status` output is a pure function of the frontier bytes (frontiers
// store no wall times, keeping artifacts machine-independent), so its
// eta line only reports "settled" or the remaining-shard count; `run`
// appends a live estimate from the shards it just timed.
//
// Exit status: 0 on success (for `run`: the verdict may be either way;
// for `artifact`: frontier settled), 1 on a clean "not settled yet",
// 2 on usage or file errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "faults/behavior_search.hpp"
#include "faults/frontier.hpp"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "search_resume: %s\n", msg);
  std::fprintf(
      stderr,
      "usage:\n"
      "  search_resume init    --out F [--n N --m M --u U] [--max-f K] "
      "[--seed S]\n"
      "                        [--no-subset-symmetry]\n"
      "  search_resume run     --frontier F [--jobs J] [--max-shards K]\n"
      "                        [--no-symmetry] [--no-checkpointing]\n"
      "  search_resume status  --frontier F\n"
      "  search_resume split   --frontier F --parts P --out-prefix PFX\n"
      "  search_resume merge   --out F part1 part2 ...\n"
      "  search_resume artifact --frontier F [--out F2]\n");
  std::exit(2);
}

int parse_int(const char* flag, const char* arg) {
  char* end = nullptr;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0') usage(flag);
  return static_cast<int>(v);
}

da::faults::Frontier load_or_die(const std::string& path) {
  da::faults::FrontierParse parsed = da::faults::load_frontier(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "search_resume: %s: %s\n", path.c_str(),
                 parsed.error.c_str());
    std::exit(2);
  }
  return *std::move(parsed.frontier);
}

void save_or_die(const da::faults::Frontier& frontier,
                 const std::string& path) {
  if (!da::faults::save_frontier(frontier, path)) {
    std::fprintf(stderr, "search_resume: cannot write %s\n", path.c_str());
    std::exit(2);
  }
}

void print_status(const da::faults::Frontier& frontier) {
  std::size_t settled = 0;
  std::uint64_t scanned = 0;
  std::uint64_t covered = 0;
  std::uint64_t executions = 0;
  std::uint64_t weighted = 0;
  for (const da::faults::FrontierShard& s : frontier.shards) {
    if (s.settled()) ++settled;
    scanned += s.cursor - s.begin;
    covered += s.end - s.begin;
    executions += s.executions;
    weighted += s.weighted;
  }
  std::printf("config        n=%d m=%d u=%d max_f=%d seed=%llu\n",
              frontier.config.n, frontier.config.m, frontier.config.u,
              frontier.max_f,
              static_cast<unsigned long long>(frontier.seed));
  std::printf("space         %llu ordinals, %zu shards (%s)\n",
              static_cast<unsigned long long>(frontier.space),
              frontier.shards.size(),
              frontier.covers_space() ? "full plan" : "split part");
  if (frontier.classes.empty()) {
    std::printf("plan          unquotiented (da-frontier v1)\n");
  } else {
    std::printf("plan          subset-quotiented, %zu conjugacy classes "
                "(da-frontier v2)\n",
                frontier.classes.size());
  }
  // Percentages are over the *plan* (the shards this file owns — a split
  // part reports its own completion, not the whole space's).
  const double plan_pct =
      covered == 0 ? 100.0
                   : 100.0 * static_cast<double>(scanned) /
                         static_cast<double>(covered);
  std::printf("progress      %zu/%zu shards settled, %llu ordinals scanned "
              "(%.1f%% of plan)\n",
              settled, frontier.shards.size(),
              static_cast<unsigned long long>(scanned), plan_pct);
  const double space_pct =
      frontier.space == 0 ? 100.0
                          : 100.0 * static_cast<double>(weighted) /
                                static_cast<double>(frontier.space);
  std::printf("executions    %llu representatives, %llu orbit-weighted "
              "(%.1f%% of space)\n",
              static_cast<unsigned long long>(executions),
              static_cast<unsigned long long>(weighted), space_pct);
  if (frontier.settled()) {
    std::printf("eta           settled\n");
  } else {
    // Frontiers carry no wall times (artifacts stay byte-identical across
    // machines), so a saved file cannot price the remaining work; `run`
    // prints a live estimate from the shards it just timed.
    std::printf("eta           unknown (%zu shards remaining; run prints a "
                "live estimate)\n",
                frontier.shards.size() - settled);
  }
  const std::uint64_t hit = frontier.best_hit();
  if (hit == da::sweep::kNoHit) {
    std::printf("verdict       %s\n",
                frontier.settled() ? "clean (settled)" : "no hit yet");
  } else {
    std::printf("verdict       violation at ordinal %llu%s\n",
                static_cast<unsigned long long>(hit),
                frontier.settled() ? " (settled)" : " (candidate)");
  }
}

int cmd_run(const std::string& path, int jobs, int max_shards, bool symmetry,
            bool checkpointing) {
  da::faults::Frontier frontier = load_or_die(path);
  da::faults::FrontierRunOptions options;
  options.jobs = jobs;
  options.max_shards = max_shards;
  options.symmetry = symmetry;
  options.checkpointing = checkpointing;
  options.checkpoint = [&path](const da::faults::Frontier& snapshot) {
    // Best-effort incremental checkpoint; the final state is saved below.
    (void)da::faults::save_frontier(snapshot, path);
  };
  const da::faults::FrontierRun run =
      da::faults::run_behavior_frontier(frontier, options);
  if (!run.error.empty()) {
    std::fprintf(stderr, "search_resume: %s\n", run.error.c_str());
    return 2;
  }
  save_or_die(frontier, path);
  print_status(frontier);
  if (!frontier.settled()) {
    // Live ETA from this run's own timing: average wall time of the
    // shards that settled here, priced over the shards still open. Not
    // part of the frontier (artifacts stay machine-independent).
    double wall_ms = 0.0;
    std::size_t timed = 0;
    for (const da::sweep::ShardStats& s : run.stats.per_shard) {
      if (s.worker >= 0 && s.cursor == s.end) {
        wall_ms += s.wall_ms;
        ++timed;
      }
    }
    std::size_t remaining = 0;
    for (const da::faults::FrontierShard& s : frontier.shards) {
      if (!s.settled()) ++remaining;
    }
    if (timed > 0 && remaining > 0) {
      const double per_shard = wall_ms / static_cast<double>(timed);
      std::printf("live eta      ~%.0f ms (%zu shards at ~%.2f ms/shard "
                  "this run)\n",
                  per_shard * static_cast<double>(remaining), remaining,
                  per_shard);
    }
  }
  if (run.violation.has_value()) {
    std::printf("violation     %s under %s: %s\n",
                run.violation->spec.to_string().c_str(),
                run.violation->adversary.c_str(),
                run.violation->report.detail.c_str());
  }
  return frontier.settled() ? 0 : 1;
}

int cmd_artifact(const std::string& path, const std::string& out) {
  da::faults::Frontier frontier = load_or_die(path);
  if (!frontier.settled()) {
    std::fprintf(stderr,
                 "search_resume: frontier not settled; run it to completion "
                 "(or merge all split parts) first\n");
    return 1;
  }
  frontier.normalize();
  std::string artifact = serialize_frontier(frontier);
  const std::uint64_t hit = frontier.best_hit();
  if (hit == da::sweep::kNoHit) {
    artifact += "verdict clean\n";
  } else {
    const auto violation = da::faults::behavior_at(
        frontier.config, frontier.max_f, hit);
    artifact += "verdict violation " + std::to_string(hit) + " " +
                (violation.has_value() ? violation->adversary : "?") + "\n";
  }
  if (out.empty()) {
    std::fputs(artifact.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr || std::fputs(artifact.c_str(), f) < 0) {
    std::fprintf(stderr, "search_resume: cannot write %s\n", out.c_str());
    if (f != nullptr) std::fclose(f);
    return 2;
  }
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing subcommand");
  const std::string cmd = argv[1];
  std::string frontier_path;
  std::string out;
  std::string out_prefix;
  std::vector<std::string> positional;
  int n = 4;
  int m = 1;
  int u = 1;
  int max_f = -1;
  int seed = 1;
  int jobs = 1;
  int parts = 0;
  int max_shards = -1;
  bool symmetry = true;
  bool subset_symmetry = true;
  bool checkpointing = true;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(arg);
      return argv[++i];
    };
    if (std::strcmp(arg, "--frontier") == 0) {
      frontier_path = value();
    } else if (std::strcmp(arg, "--out") == 0) {
      out = value();
    } else if (std::strcmp(arg, "--out-prefix") == 0) {
      out_prefix = value();
    } else if (std::strcmp(arg, "--n") == 0) {
      n = parse_int(arg, value());
    } else if (std::strcmp(arg, "--m") == 0) {
      m = parse_int(arg, value());
    } else if (std::strcmp(arg, "--u") == 0) {
      u = parse_int(arg, value());
    } else if (std::strcmp(arg, "--max-f") == 0) {
      max_f = parse_int(arg, value());
    } else if (std::strcmp(arg, "--seed") == 0) {
      seed = parse_int(arg, value());
    } else if (std::strcmp(arg, "--jobs") == 0) {
      jobs = parse_int(arg, value());
    } else if (std::strcmp(arg, "--parts") == 0) {
      parts = parse_int(arg, value());
    } else if (std::strcmp(arg, "--max-shards") == 0) {
      max_shards = parse_int(arg, value());
    } else if (std::strcmp(arg, "--no-symmetry") == 0) {
      symmetry = false;
    } else if (std::strcmp(arg, "--no-subset-symmetry") == 0) {
      subset_symmetry = false;
    } else if (std::strcmp(arg, "--no-checkpointing") == 0) {
      checkpointing = false;
    } else if (arg[0] == '-') {
      usage(arg);
    } else {
      positional.emplace_back(arg);
    }
  }

  if (cmd == "init") {
    if (out.empty()) usage("init needs --out");
    const da::Config config{.n = n, .m = m, .u = u};
    if (!config.valid() || config.m > 1) usage("invalid config");
    const da::faults::Frontier frontier = da::faults::init_behavior_frontier(
        config, max_f, static_cast<std::uint64_t>(seed), subset_symmetry);
    save_or_die(frontier, out);
    print_status(frontier);
    return 0;
  }
  if (cmd == "run") {
    if (frontier_path.empty()) usage("run needs --frontier");
    return cmd_run(frontier_path, jobs, max_shards, symmetry, checkpointing);
  }
  if (cmd == "status") {
    if (frontier_path.empty()) usage("status needs --frontier");
    print_status(load_or_die(frontier_path));
    return 0;
  }
  if (cmd == "split") {
    if (frontier_path.empty() || parts <= 0 || out_prefix.empty()) {
      usage("split needs --frontier, --parts and --out-prefix");
    }
    const da::faults::Frontier frontier = load_or_die(frontier_path);
    const std::vector<da::faults::Frontier> split = da::faults::split_frontier(
        frontier, static_cast<std::size_t>(parts));
    for (std::size_t i = 0; i < split.size(); ++i) {
      save_or_die(split[i], out_prefix + std::to_string(i));
    }
    std::printf("split %zu shards into %zu parts\n", frontier.shards.size(),
                split.size());
    return 0;
  }
  if (cmd == "merge") {
    if (out.empty() || positional.empty()) {
      usage("merge needs --out and part files");
    }
    std::vector<da::faults::Frontier> frontiers;
    frontiers.reserve(positional.size());
    for (const std::string& path : positional) {
      frontiers.push_back(load_or_die(path));
    }
    da::faults::FrontierParse merged = da::faults::merge_frontiers(frontiers);
    if (!merged.ok()) {
      std::fprintf(stderr, "search_resume: merge: %s\n",
                   merged.error.c_str());
      return 2;
    }
    save_or_die(*merged.frontier, out);
    print_status(*merged.frontier);
    return 0;
  }
  if (cmd == "artifact") {
    if (frontier_path.empty()) usage("artifact needs --frontier");
    return cmd_artifact(frontier_path, out);
  }
  usage("unknown subcommand");
}
