// Inspect causal span exports from the agreement service (src/obs/spans,
// docs/OBSERVABILITY.md "Spans").
//
//   span_inspect demo <outdir>            run a small fault-injected
//                                         service, write spans.jsonl,
//                                         metrics.prom, samples.csv and
//                                         plan.txt into <outdir>
//   span_inspect timeline <spans.jsonl> [--job N] [--plan plan.txt]
//                                         reconstruct one job's full
//                                         admit -> rounds -> decide
//                                         timeline, attributing observed
//                                         perturbation to FaultPlan rules
//   span_inspect quantiles <spans.jsonl>  per-span-name duration
//                                         percentile table (streaming
//                                         QuantileSketch estimates)
//   span_inspect check <spans.jsonl>      validate the export: unique ids,
//                                         resolvable parents, ordered
//                                         windows, canonical sort
//   span_inspect schema                   print the JSONL field reference
//
// Exit status: 0 on success; 1 when `check` finds a violation, the demo
// run reports condition violations, or an input fails to parse.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <system_error>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/checker.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/quantiles.hpp"
#include "obs/spans.hpp"
#include "service/service.hpp"

namespace {

using da::obs::Span;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "span_inspect: %s\n", msg);
  std::fprintf(stderr,
               "usage: span_inspect demo <outdir>\n"
               "       span_inspect timeline <spans.jsonl> [--job N] "
               "[--plan plan.txt]\n"
               "       span_inspect quantiles <spans.jsonl>\n"
               "       span_inspect check <spans.jsonl>\n"
               "       span_inspect schema\n");
  std::exit(2);
}

std::vector<Span> load_spans(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "span_inspect: cannot open %s\n", path);
    std::exit(1);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto spans = da::obs::read_spans_jsonl(buf.str(), &error);
  if (!spans.has_value()) {
    std::fprintf(stderr, "span_inspect: %s: %s\n", path, error.c_str());
    std::exit(1);
  }
  return *std::move(spans);
}

std::int64_t tag_of(const Span& span, const char* key, std::int64_t fallback) {
  for (const auto& [k, v] : span.tags) {
    if (k == key) return v;
  }
  return fallback;
}

std::string tags_line(const Span& span, const char* skip = nullptr) {
  std::string out;
  for (const auto& [k, v] : span.tags) {
    if (skip != nullptr && k == skip) continue;
    out += out.empty() ? "" : " ";
    out += k + "=" + std::to_string(v);
  }
  return out;
}

/// The scripted-rule lines of a fault-plan text file, in declaration
/// order, so `rule<k>` span tags can be labelled with the rule they index.
std::vector<std::string> plan_rule_lines(const char* path) {
  std::vector<std::string> rules;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    const std::string body = line.substr(start);
    if (body.rfind("drop", 0) == 0 || body.rfind("dup", 0) == 0 ||
        body.rfind("delay", 0) == 0) {
      rules.push_back(body);
    }
  }
  return rules;
}

// ---------------------------------------------------------------- demo --

int run_demo(const char* outdir) {
  using namespace da::service;

  std::error_code mkdir_error;
  std::filesystem::create_directories(outdir, mkdir_error);
  if (mkdir_error) {
    std::fprintf(stderr, "span_inspect: cannot create %s: %s\n", outdir,
                 mkdir_error.message().c_str());
    return 1;
  }

  // One BYZ(1,4) shape at n=7 with spec-faulty {2,3}; the plan only
  // perturbs traffic *from* those already-faulty nodes, so every verdict
  // stays within the degraded promise (D.3 holds: f=2 <= u=4) and the
  // demo exits 0 while still exercising drop/delay attribution.
  const char* plan_text =
      "seed 99\n"
      "drop from=2 to=1 round=1\n"
      "delay from=3 to=* round=*\n";
  std::string plan_error;
  auto plan = da::inject::FaultPlan::parse(plan_text, &plan_error);
  if (!plan.has_value()) {
    std::fprintf(stderr, "span_inspect: demo plan: %s\n", plan_error.c_str());
    return 1;
  }

  ServiceConfig config;
  config.arrivals = ArrivalSpec::poisson(4.0);
  config.offered = 40;
  config.cap = 8;
  config.round_period = 1.0;
  config.seed = 7;
  config.jobs = 1;
  config.mix.push_back({JobKind::kByz, da::Config{.n = 7, .m = 1, .u = 4}, 0,
                        da::Value::of(17), {2, 3}});
  config.record_spans = true;
  config.sample_every = 2.0;
  config.fault_plan = *plan;
  config.inject_every = 2;  // every other job runs under the plan

  const ServiceResult result = run_service(config);

  const std::string dir = outdir;
  const std::string spans_path = dir + "/spans.jsonl";
  if (!da::obs::write_spans_jsonl(result.spans, spans_path)) {
    std::fprintf(stderr, "span_inspect: cannot write %s\n",
                 spans_path.c_str());
    return 1;
  }
  const std::string prom_path = dir + "/metrics.prom";
  if (!da::obs::write_exposition(da::obs::MetricsRegistry::global().snapshot(),
                                 prom_path)) {
    std::fprintf(stderr, "span_inspect: cannot write %s\n", prom_path.c_str());
    return 1;
  }
  {
    std::ofstream out(dir + "/plan.txt", std::ios::binary);
    out << plan->serialize();
  }
  {
    std::ofstream out(dir + "/samples.csv", std::ios::binary);
    out << "time,active,queued,completed,shed,latency_p50,latency_p99\n";
    char line[160];
    for (const ServiceSample& s : result.samples) {
      std::snprintf(line, sizeof line, "%.6f,%d,%zu,%llu,%llu,%.6f,%.6f\n",
                    s.time, s.active, s.queued,
                    static_cast<unsigned long long>(s.completed),
                    static_cast<unsigned long long>(s.shed), s.latency_p50,
                    s.latency_p99);
      out << line;
    }
  }

  std::printf("demo: offered=%llu completed=%llu shed=%llu violations=%llu\n",
              static_cast<unsigned long long>(config.offered),
              static_cast<unsigned long long>(result.completed),
              static_cast<unsigned long long>(result.shed),
              static_cast<unsigned long long>(result.violations));
  std::printf("demo: %zu spans, %zu samples -> %s\n", result.spans.size(),
              result.samples.size(), dir.c_str());
  std::printf("demo: latency sketch p50=%.3f p99=%.3f (n=%llu)\n",
              result.latency_sketch.quantile(0.5),
              result.latency_sketch.quantile(0.99),
              static_cast<unsigned long long>(result.latency_sketch.count()));
  return result.violations == 0 ? 0 : 1;
}

// ------------------------------------------------------------ timeline --

int run_timeline(const std::vector<Span>& spans, std::int64_t want_job,
                 const std::vector<std::string>& rule_labels) {
  // Default to the first job whose rounds carry injection tags — the
  // interesting one to attribute.
  if (want_job < 0) {
    for (const Span& s : spans) {
      if (s.name == "round" && !s.tags.empty()) {
        want_job = s.job;
        break;
      }
    }
    if (want_job < 0 && !spans.empty()) want_job = spans.front().job;
  }

  const Span* job = nullptr;
  const Span* queue = nullptr;
  const Span* decide = nullptr;
  std::map<int, const Span*> insts;                     // by sub
  std::map<int, std::vector<const Span*>> rounds;       // by sub
  for (const Span& s : spans) {
    if (s.job != want_job) continue;
    if (s.name == "job") job = &s;
    if (s.name == "queue") queue = &s;
    if (s.name == "decide") decide = &s;
    if (s.name == "inst") insts[s.sub] = &s;
    if (s.name == "round") rounds[s.sub].push_back(&s);
  }
  if (job == nullptr) {
    std::fprintf(stderr, "span_inspect: no job span for job %lld\n",
                 static_cast<long long>(want_job));
    return 1;
  }

  std::printf("job %lld  [%.6f, %.6f]  latency %.6f  tmpl=%lld adv=%lld%s\n",
              static_cast<long long>(want_job), job->t0, job->t1,
              job->t1 - job->t0,
              static_cast<long long>(tag_of(*job, "tmpl", -1)),
              static_cast<long long>(tag_of(*job, "adv", -1)),
              tag_of(*job, "shed", 0) != 0 ? "  SHED" : "");
  if (queue != nullptr) {
    std::printf("  queue    [%.6f, %.6f]  wait %.6f  width=%lld\n", queue->t0,
                queue->t1, queue->t1 - queue->t0,
                static_cast<long long>(tag_of(*queue, "width", 1)));
  }
  // Per-rule perturbation totals across the whole job, for attribution.
  std::map<int, std::int64_t> rule_totals;
  for (const auto& [sub, inst] : insts) {
    std::printf("  inst %d   [%.6f, %.6f]  rounds=%lld  %s\n", sub, inst->t0,
                inst->t1, static_cast<long long>(tag_of(*inst, "rounds", -1)),
                tags_line(*inst, "rounds").c_str());
    for (const Span* r : rounds[sub]) {
      std::printf("    round %-3d [%.6f, %.6f]  %s\n", r->round, r->t0, r->t1,
                  tags_line(*r).c_str());
      for (const auto& [k, v] : r->tags) {
        if (k.rfind("rule", 0) == 0 && k.size() > 4) {
          rule_totals[std::atoi(k.c_str() + 4)] += v;
        }
      }
    }
  }
  if (decide != nullptr) {
    const auto cond = static_cast<da::Condition>(tag_of(*decide, "cond", 0));
    std::printf("  decide   at %.6f  %s  condition=%s\n", decide->t0,
                tag_of(*decide, "ok", 1) != 0 ? "ok" : "VIOLATED",
                da::to_string(cond));
  }
  if (!rule_totals.empty()) {
    std::printf("  fault attribution:\n");
    for (const auto& [rule, hits] : rule_totals) {
      const char* label =
          rule >= 0 && static_cast<std::size_t>(rule) < rule_labels.size()
              ? rule_labels[static_cast<std::size_t>(rule)].c_str()
              : "(pass --plan to label)";
      std::printf("    rule%d: %lld message(s)  %s\n", rule,
                  static_cast<long long>(hits), label);
    }
  }
  return 0;
}

// ----------------------------------------------------------- quantiles --

int run_quantiles(const std::vector<Span>& spans) {
  std::map<std::string, da::obs::QuantileSketch> by_name;
  for (const Span& s : spans) by_name[s.name].record(s.t1 - s.t0);
  std::printf("%-8s %8s %10s %10s %10s %10s %10s\n", "span", "count", "min",
              "p50", "p90", "p99", "max");
  for (const auto& [name, sketch] : by_name) {
    std::printf("%-8s %8llu %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                name.c_str(), static_cast<unsigned long long>(sketch.count()),
                sketch.min(), sketch.quantile(0.5), sketch.quantile(0.9),
                sketch.quantile(0.99), sketch.max());
  }
  return 0;
}

// --------------------------------------------------------------- check --

int run_check(const std::vector<Span>& spans) {
  int errors = 0;
  const auto fail = [&errors](const std::string& msg) {
    std::fprintf(stderr, "check: %s\n", msg.c_str());
    ++errors;
  };

  std::set<std::string> ids;
  for (const Span& s : spans) {
    if (!ids.insert(s.id()).second) fail("duplicate id " + s.id());
    if (s.t1 < s.t0) fail("inverted window on " + s.id());
  }
  constexpr double kEps = 1e-9;
  std::map<std::string, const Span*> by_id;
  for (const Span& s : spans) by_id[s.id()] = &s;
  for (const Span& s : spans) {
    if (s.parent.empty()) continue;
    const auto it = by_id.find(s.parent);
    if (it == by_id.end()) {
      fail("unresolvable parent " + s.parent + " of " + s.id());
      continue;
    }
    const Span& p = *it->second;
    if (s.t0 < p.t0 - kEps || s.t1 > p.t1 + kEps) {
      fail("child " + s.id() + " escapes parent " + p.id() + " window");
    }
  }
  std::vector<Span> sorted = spans;
  da::obs::canonicalize(sorted);
  if (sorted != spans) fail("spans are not in canonical order");

  if (errors == 0) {
    std::printf("check: OK (%zu spans, %zu roots)\n", spans.size(),
                static_cast<std::size_t>(std::count_if(
                    spans.begin(), spans.end(),
                    [](const Span& s) { return s.parent.empty(); })));
    return 0;
  }
  std::fprintf(stderr, "check: %d error(s)\n", errors);
  return 1;
}

// -------------------------------------------------------------- schema --

int run_schema() {
  std::puts(
      "span JSONL: one compact JSON object per line, canonical order\n"
      "  id      string  name[:job][.sub][#round], derived from identity\n"
      "  name    string  job|queue|inst|round|decide|recycle|"
      "send|deliver|resolve\n"
      "  job     int     owning service job id, -1 for runtime spans\n"
      "  sub     int     sub-instance (IC coordinate), -1 when n/a\n"
      "  round   int     round index, -1 when n/a\n"
      "  t0, t1  number  virtual time (service) or round units (runtime)\n"
      "  parent  string  id of the causing span, \"\" = root\n"
      "  tags    object  int64-valued labels: tmpl/adv/width/rounds/ok/"
      "cond,\n"
      "                  messages/dropped/nodes (runtime phases),\n"
      "                  inj_* and rule<k> fault-injection attribution");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing subcommand");
  const char* cmd = argv[1];

  if (std::strcmp(cmd, "schema") == 0) return run_schema();
  if (std::strcmp(cmd, "demo") == 0) {
    if (argc != 3) usage("demo expects an output directory");
    return run_demo(argv[2]);
  }
  if (argc < 3) usage("missing spans.jsonl path");
  const std::vector<Span> spans = load_spans(argv[2]);

  if (std::strcmp(cmd, "quantiles") == 0) return run_quantiles(spans);
  if (std::strcmp(cmd, "check") == 0) return run_check(spans);
  if (std::strcmp(cmd, "timeline") == 0) {
    std::int64_t job = -1;
    std::vector<std::string> rule_labels;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--job") == 0 && i + 1 < argc) {
        job = std::atoll(argv[++i]);
      } else if (std::strcmp(argv[i], "--plan") == 0 && i + 1 < argc) {
        rule_labels = plan_rule_lines(argv[++i]);
      } else {
        usage(argv[i]);
      }
    }
    return run_timeline(spans, job, rule_labels);
  }
  usage(cmd);
}
