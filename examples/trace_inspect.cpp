// trace_inspect: inspect, diff, and explain JSONL trace exports.
//
//   trace_inspect dump <trace.jsonl> [--node N]
//   trace_inspect diff <a.jsonl> <b.jsonl> [--node N]
//   trace_inspect fig2 [--n N] [--out DIR]
//   trace_inspect schema
//
// `dump` prints a per-node summary (and optionally one node's canonical
// transcript). `diff` is the machine-checkable form of the paper's
// indistinguishability argument: for each node it reports whether the two
// executions delivered byte-identical transcripts, and where they first
// diverge otherwise. `fig2` generates the three Theorem 2 scenarios,
// writes their exports next to each other, and runs both diffs — the
// pivotal fault-free node must come out IDENTICAL in each pair. `schema`
// prints one annotated event record.
//
//   $ trace_inspect fig2 --out /tmp/fig2
//   $ trace_inspect diff /tmp/fig2/scenario_a.jsonl /tmp/fig2/scenario_b.jsonl

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/agreement.hpp"
#include "faults/figure2.hpp"
#include "obs/trace_export.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"

namespace {

[[noreturn]] void usage() {
  std::puts(
      "usage: trace_inspect dump <trace.jsonl> [--node N]\n"
      "       trace_inspect diff <a.jsonl> <b.jsonl> [--node N]\n"
      "       trace_inspect fig2 [--n N] [--out DIR]\n"
      "       trace_inspect schema");
  std::exit(2);
}

std::optional<std::vector<da::obs::TraceEvent>> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_inspect: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  auto events = da::obs::read_trace_jsonl(text.str(), &error);
  if (!events.has_value()) {
    std::fprintf(stderr, "trace_inspect: %s: %s\n", path.c_str(),
                 error.c_str());
  }
  return events;
}

std::string path_to_string(const std::vector<da::NodeId>& path) {
  std::string out;
  for (da::NodeId id : path) {
    out += (out.empty() ? "" : ".") + std::to_string(id);
  }
  return out.empty() ? "-" : out;
}

void print_events(const std::vector<da::obs::TraceEvent>& events) {
  da::Table table({"to", "round", "from", "path", "value", "aux", "bytes"});
  for (const auto& e : events) {
    table.row(e.to, e.round, e.from, path_to_string(e.path),
              e.value_default ? std::string("V_d") : std::to_string(e.value),
              e.aux, static_cast<std::int64_t>(e.wire_bytes));
  }
  table.print();
}

int cmd_dump(const std::string& path, std::optional<da::NodeId> node) {
  const auto events = load(path);
  if (!events.has_value()) return 1;

  if (node.has_value()) {
    std::vector<da::obs::TraceEvent> selected;
    for (const auto& e : *events) {
      if (e.to == *node) selected.push_back(e);
    }
    std::printf("%s: node %d, %zu events (canonical order)\n", path.c_str(),
                *node, selected.size());
    print_events(selected);
    return 0;
  }

  std::size_t bytes = 0;
  for (const auto& e : *events) bytes += e.wire_bytes;
  std::printf("%s: %zu events, %zu wire bytes\n", path.c_str(), events->size(),
              bytes);
  da::Table table({"node", "events", "rounds", "wire_bytes"});
  da::NodeId current = da::kNoNode;
  std::size_t count = 0, node_bytes = 0;
  int max_round = 0;
  const auto flush = [&] {
    if (count > 0) {
      table.row(current, static_cast<std::int64_t>(count), max_round + 1,
                static_cast<std::int64_t>(node_bytes));
    }
    count = node_bytes = 0;
    max_round = 0;
  };
  for (const auto& e : *events) {  // events arrive sorted by node
    if (e.to != current) {
      flush();
      current = e.to;
    }
    ++count;
    node_bytes += e.wire_bytes;
    if (e.round > max_round) max_round = e.round;
  }
  flush();
  table.print();
  return 0;
}

/// Prints the per-node verdict table; returns the diff for the caller to
/// inspect (exit status, pivot checks).
da::obs::TraceDiff print_diff(const std::vector<da::obs::TraceEvent>& a,
                              const std::vector<da::obs::TraceEvent>& b) {
  const auto diff = da::obs::diff_traces(a, b);
  da::Table table(
      {"node", "events_a", "events_b", "transcript", "first_divergence"});
  for (const auto& n : diff.nodes) {
    table.row(n.node, static_cast<std::int64_t>(n.events_a),
              static_cast<std::int64_t>(n.events_b),
              n.identical ? "IDENTICAL" : "differs",
              n.identical ? std::string("-")
                          : std::to_string(n.first_divergence));
  }
  table.print();
  return diff;
}

int cmd_diff(const std::string& path_a, const std::string& path_b,
             std::optional<da::NodeId> node) {
  const auto a = load(path_a);
  const auto b = load(path_b);
  if (!a.has_value() || !b.has_value()) return 1;

  std::printf("diff %s %s\n", path_a.c_str(), path_b.c_str());
  const auto diff = print_diff(*a, *b);

  if (node.has_value()) {
    for (const auto& n : diff.nodes) {
      if (n.node != *node) continue;
      std::printf(
          "\nnode %d: %s — a node with an identical transcript cannot\n"
          "distinguish the two executions, so it must decide identically\n"
          "in both (the paper's indistinguishability argument).\n",
          *node, n.identical ? "IDENTICAL" : "DIFFERS");
      return n.identical ? 0 : 1;
    }
    std::fprintf(stderr, "trace_inspect: node %d not present in either trace\n",
                 *node);
    return 1;
  }
  return diff.identical() ? 0 : 1;
}

da::sim::Trace run_scenario(const da::faults::figure2::Scenario& scenario) {
  da::sim::Trace trace;
  const da::DegradableAgreement protocol(scenario.spec.config);
  da::RunExtras extras;
  extras.trace = &trace;
  (void)protocol.run(scenario.spec, scenario.adversary.get(), extras);
  return trace;
}

int cmd_fig2(int n, const std::string& out_dir) {
  std::error_code dir_error;
  std::filesystem::create_directories(out_dir, dir_error);
  const auto sa = da::faults::figure2::scenario_a(n);
  const auto sb = da::faults::figure2::scenario_b(n);
  const auto sc = da::faults::figure2::scenario_c(n);
  const da::sim::Trace ta = run_scenario(sa);
  const da::sim::Trace tb = run_scenario(sb);
  const da::sim::Trace tc = run_scenario(sc);

  const std::string pa = out_dir + "/scenario_a.jsonl";
  const std::string pb = out_dir + "/scenario_b.jsonl";
  const std::string pc = out_dir + "/scenario_c.jsonl";
  for (const auto& [trace, path] :
       {std::pair<const da::sim::Trace&, const std::string&>{ta, pa},
        {tb, pb},
        {tc, pc}}) {
    if (!da::obs::write_trace_jsonl(trace, path)) {
      std::fprintf(stderr, "trace_inspect: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }

  const auto ea = da::obs::trace_events(ta);
  const auto eb = da::obs::trace_events(tb);
  const auto ec = da::obs::trace_events(tc);

  bool ok = true;
  const auto check_pair = [&](const char* label, const char* pair_files,
                              const std::vector<da::obs::TraceEvent>& x,
                              const std::vector<da::obs::TraceEvent>& y,
                              da::NodeId pivot) {
    std::printf("\n%s  (%s)\n", label, pair_files);
    const auto diff = print_diff(x, y);
    bool pivot_identical = false;
    for (const auto& node : diff.nodes) {
      if (node.node == pivot) pivot_identical = node.identical;
    }
    std::printf("pivot node %d: %s\n", pivot,
                pivot_identical
                    ? "IDENTICAL — it cannot tell the scenarios apart, so "
                      "its decision is forced"
                    : "DIFFERS (unexpected: the lower-bound argument needs "
                      "an identical view)");
    ok = ok && pivot_identical;
  };
  check_pair("scenario (a) vs (b), pivot B", "scenario_a.jsonl vs _b.jsonl",
             ea, eb, sb.pivot_node);
  check_pair("scenario (b) vs (c), pivot A", "scenario_b.jsonl vs _c.jsonl",
             eb, ec, sc.pivot_node);

  std::printf(
      "\n%s\n",
      ok ? "Both indistinguishability pairs hold: with N = 2m+u the chain "
           "(a)->(b)->(c) forces node A into a D.3 violation (Theorem 2)."
         : "??? an indistinguishability pair failed; the export or the "
           "scenarios are broken.");
  return ok ? 0 : 1;
}

int cmd_schema() {
  da::obs::TraceEvent event;
  event.to = 2;
  event.from = 3;
  event.round = 1;
  event.path = {0, 3};
  event.value_default = false;
  event.value = 101;
  event.wire_bytes = 17;
  std::printf("%s\n", event.to_json().dump(2).c_str());
  std::puts(
      "\nfields:\n"
      "  to            receiving node (transcripts are grouped by `to`)\n"
      "  from          immediate sender\n"
      "  round         protocol round the message was delivered in\n"
      "  path          EIG relay path: nodes the value passed through\n"
      "  value         payload; `null` encodes the default value V_d\n"
      "  aux           protocol-specific tag (omitted when 0)\n"
      "  wire_bytes    serialized size under sim::wire_size_bytes\n"
      "\norder: events are canonical — sorted by (to, round, from, path) —\n"
      "so exports of indistinguishable executions are byte-identical.");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];

  std::optional<da::NodeId> node;
  int n = 4;
  std::string out_dir = ".";
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const auto want = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) usage();
      return true;
    };
    if (want("--node")) {
      node = std::atoi(argv[++i]);
    } else if (want("--n")) {
      n = std::atoi(argv[++i]);
    } else if (want("--out")) {
      out_dir = argv[++i];
    } else if (argv[i][0] == '-') {
      usage();
    } else {
      positional.emplace_back(argv[i]);
    }
  }

  if (cmd == "dump" && positional.size() == 1) {
    return cmd_dump(positional[0], node);
  }
  if (cmd == "diff" && positional.size() == 2) {
    return cmd_diff(positional[0], positional[1], node);
  }
  if (cmd == "fig2" && positional.empty()) {
    if (n < 4) {
      std::fprintf(stderr, "trace_inspect: fig2 needs --n >= 4\n");
      return 2;
    }
    return cmd_fig2(n, out_dir);
  }
  if (cmd == "schema" && positional.empty()) {
    return cmd_schema();
  }
  usage();
}
