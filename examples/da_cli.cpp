// da_cli: run a single degradable-agreement scenario from the command line.
//
//   da_cli [--n N] [--m M] [--u U] [--sender S] [--value V]
//          [--faulty a,b,c] [--adversary NAME] [--runtime sim|threaded]
//          [--trace]
//
// Adversaries: honest, silent, liar, default, equivocator, pivot, crash,
// noise. Exit status 0 iff the governing condition D.1-D.4 is satisfied.
//
//   $ da_cli --n 7 --m 1 --u 4 --faulty 2,3,5 --adversary equivocator
//
// This is the "try the paper" entry point: pick any configuration, any
// fault pattern, any strategy, and see which condition applies and whether
// the protocol met it.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "da/da.hpp"

namespace {

struct Args {
  int n = 7;
  int m = 1;
  int u = 4;
  da::NodeId sender = 0;
  std::int64_t value = 42;
  std::vector<da::NodeId> faulty;
  std::string adversary = "equivocator";
  std::string runtime = "sim";
  bool trace = false;
};

std::vector<da::NodeId> parse_id_list(const char* arg) {
  std::vector<da::NodeId> out;
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) out.push_back(std::atoi(token.c_str()));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return out;
}

[[noreturn]] void usage() {
  std::puts(
      "usage: da_cli [--n N] [--m M] [--u U] [--sender S] [--value V]\n"
      "              [--faulty a,b,c] [--adversary NAME]\n"
      "              [--runtime sim|threaded] [--trace]\n"
      "adversaries: honest silent liar default equivocator pivot crash "
      "noise");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const auto want = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) usage();
      return true;
    };
    if (want("--n")) {
      args.n = std::atoi(argv[++i]);
    } else if (want("--m")) {
      args.m = std::atoi(argv[++i]);
    } else if (want("--u")) {
      args.u = std::atoi(argv[++i]);
    } else if (want("--sender")) {
      args.sender = std::atoi(argv[++i]);
    } else if (want("--value")) {
      args.value = std::atoll(argv[++i]);
    } else if (want("--faulty")) {
      args.faulty = parse_id_list(argv[++i]);
    } else if (want("--adversary")) {
      args.adversary = argv[++i];
    } else if (want("--runtime")) {
      args.runtime = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      args.trace = true;
    } else {
      usage();
    }
  }
  return args;
}

std::unique_ptr<da::sim::Adversary> make_adversary(const Args& args) {
  const da::Value truth = da::Value::of(args.value);
  const da::Value lie = da::Value::of(args.value + 13);
  if (args.adversary == "honest") return da::faults::honest();
  if (args.adversary == "silent") return da::faults::silent();
  if (args.adversary == "liar") return da::faults::constant_liar(lie);
  if (args.adversary == "default") return da::faults::default_spammer();
  if (args.adversary == "equivocator") {
    return da::faults::equivocator(truth, lie);
  }
  if (args.adversary == "pivot") {
    return da::faults::pivot_equivocator(truth, lie, args.n / 2);
  }
  if (args.adversary == "crash") return da::faults::crash_after(0);
  if (args.adversary == "noise") {
    return da::faults::random_noise(99, args.value - 5, args.value + 5, 0.25);
  }
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  da::ScenarioSpec spec;
  spec.config = da::Config{.n = args.n, .m = args.m, .u = args.u};
  spec.sender = args.sender;
  spec.sender_value = da::Value::of(args.value);
  spec.faulty = args.faulty;
  std::sort(spec.faulty.begin(), spec.faulty.end());

  if (!spec.config.valid()) {
    std::fprintf(stderr, "invalid config: %s\n",
                 spec.config.to_string().c_str());
    return 2;
  }
  std::printf("scenario: %s\n", spec.to_string().c_str());
  std::printf("feasible: %s (N_min = %d, connectivity_min = %d)\n",
              spec.config.feasible() ? "yes" : "NO",
              da::bounds::min_nodes(args.m, args.u),
              da::bounds::min_connectivity(args.m, args.u));

  const da::DegradableAgreement protocol(spec.config);
  auto adversary = make_adversary(args);
  da::sim::Trace trace;
  da::RunExtras extras;
  if (args.trace) extras.trace = &trace;

  const da::Outcome outcome =
      args.runtime == "threaded"
          ? protocol.run_threaded(spec, adversary.get(), extras)
          : protocol.run(spec, adversary.get(), extras);

  std::printf("\n%d rounds, %zu messages sent, %zu delivered\n",
              outcome.rounds, outcome.messages_sent,
              outcome.messages_delivered);
  for (const auto& [node, decision] : outcome.decisions) {
    std::printf("  node %-3d -> %-6s%s\n", node,
                decision.to_string().c_str(),
                spec.is_faulty(node)  ? " (faulty)"
                : node == spec.sender ? " (sender)"
                                      : "");
  }

  const da::ConditionReport report =
      da::check_conditions(spec, outcome.decisions);
  std::printf("\ncondition %s: %s\n", da::to_string(report.applied),
              report.satisfied ? "SATISFIED" : "VIOLATED");
  if (!report.detail.empty()) std::printf("  %s\n", report.detail.c_str());
  std::printf("value class %zu, default class %zu, largest agreeing %d "
              "(corollary m+1: %s)\n",
              report.value_class.size(), report.default_class.size(),
              report.largest_agreeing_class,
              report.corollary_m_plus_1 ? "holds" : "fails");

  if (args.trace) {
    for (const auto& [node, decision] : outcome.decisions) {
      std::printf("\n--- transcript of node %d ---\n%s", node,
                  trace.transcript(node).c_str());
    }
  }
  return report.satisfied ? 0 : 1;
}
