// Forward and backward recovery (Section 3).
//
// A sensor-fed redundant computation pipeline processes a stream of
// readings. Transient channel faults come and go:
//   - while f <= m the redundancy masks them outright (forward recovery);
//   - while m < f <= u the degradable voter yields the safe default, the
//     driver re-runs the frame, and the transient faults clear (backward
//     recovery);
//   - a wrong output — the unsafe case — never happens within the fault
//     hypothesis, which is the paper's central safety claim (C.2).

#include <cstdio>

#include "channels/recovery.hpp"
#include "da/da.hpp"

int main() {
  const da::channels::ChannelSystem system(
      {.kind = da::channels::ChannelSystemConfig::Kind::kDegradable,
       .m = 1,
       .u = 2});
  std::printf("pipeline: sensor -> %d channels (1/2-degradable) -> %zu-of-%d "
              "voter\n\n",
              system.config().channel_count(),
              system.config().vote_threshold(),
              system.config().channel_count());

  da::channels::RecoveryParams params;
  params.frames = 200;
  params.channel_fault_prob = 0.15;  // transient faults are common
  params.repair_prob = 0.6;          // and usually clear on retry
  params.max_retries = 4;
  params.max_concurrent_faults = 2;  // the f <= u fault hypothesis
  params.seed = 20260705;

  const da::channels::RecoveryStats stats =
      da::channels::run_recovery_experiment(system, params);

  std::printf("frames processed ............ %d\n", stats.frames);
  std::printf("  fault-free ................ %d\n", stats.fault_free_frames);
  std::printf("  forward-recovered ......... %d   (faults masked, f <= m)\n",
              stats.forward_recovered);
  std::printf("  backward-recovered ........ %d   (default -> retry -> ok)\n",
              stats.backward_recovered);
  std::printf("  safe default (gave up) .... %d   (still safe)\n",
              stats.default_exhausted);
  std::printf("  UNSAFE wrong outputs ...... %d\n", stats.unsafe_failures);
  std::printf("\nsafety: %d/%d frames ended safely\n", stats.safe_frames(),
              stats.frames);

  if (stats.unsafe_failures != 0) {
    std::puts("UNEXPECTED: C.2 violated within the fault hypothesis!");
    return 1;
  }
  std::puts("C.2 held: within f <= u the voter never emitted a wrong value.");
  return 0;
}
