// Drive the long-lived agreement service (src/service/) from the command
// line: an open-loop arrival stream of BYZ/IC jobs admitted against a
// concurrency cap and executed in batched round ticks.
//
//   service_demo [flags]
//     --model poisson|bursty|pareto   arrival model       (poisson)
//     --rate R                        mean jobs/time unit (8.0)
//     --offered N                     jobs to offer       (1000)
//     --cap C                         concurrency cap, in slots (256)
//     --queue Q                       queue bound for shed-oldest (1024)
//     --policy shed|block             overload policy     (shed)
//     --period P                      virtual time per round tick (1.0)
//     --seed S                        arrival/mix seed    (1)
//     --jobs J                        worker threads, 0 = all cores (1)
//     --shards N                      front-end shards, 1 = plain service (1)
//     --route hash|least-loaded       front-end routing   (hash)
//     --deadline T                    admission deadline on every template,
//                                     in virtual time (0 = none)
//     --artifact                      dump the per-job artifact lines
//     --spans-out FILE                record causal spans, write JSONL
//     --metrics-out FILE              write Prometheus-style exposition
//     --sample-every P                periodic samples every P time units
//     --inject "SPEC"                 fault plan, ';'-separated plan lines
//                                     (e.g. "seed 9;drop from=2 to=1")
//     --inject-every K                inject every K-th job (1)
//
// Prints a one-screen summary (throughput, latency quantiles, per-class
// shed counts, determinism digest; per-shard rows when --shards > 1).
// Exit status is 0 iff every completed job satisfied its applicable
// condition (D.1-D.4). docs/SERVICE.md walks through the output;
// tools/docs_check.sh --service-demo executes that walkthrough.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "service/frontend.hpp"
#include "service/service.hpp"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "service_demo: %s\n", msg);
  std::fprintf(stderr,
               "usage: service_demo [--model poisson|bursty|pareto] "
               "[--rate R] [--offered N] [--cap C] [--queue Q] "
               "[--policy shed|block] [--period P] [--seed S] [--jobs J] "
               "[--shards N] [--route hash|least-loaded] [--deadline T] "
               "[--artifact] [--spans-out FILE] [--metrics-out FILE] "
               "[--sample-every P] [--inject SPEC] [--inject-every K]\n");
  std::exit(2);
}

double parse_positive(const char* flag, const char* arg) {
  char* end = nullptr;
  const double v = std::strtod(arg, &end);
  if (end == arg || *end != '\0' || v <= 0.0) usage(flag);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace da::service;

  ServiceConfig config;
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate = 8.0;
  int shards = 1;
  RoutePolicy route = RoutePolicy::kHashJobId;
  double deadline = 0.0;
  bool dump_artifact = false;
  const char* spans_out = nullptr;
  const char* metrics_out = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(flag);
      return argv[++i];
    };
    if (std::strcmp(flag, "--model") == 0) {
      const auto parsed = parse_arrival_kind(next());
      if (!parsed.has_value()) usage("--model expects poisson|bursty|pareto");
      kind = *parsed;
    } else if (std::strcmp(flag, "--rate") == 0) {
      rate = parse_positive("--rate expects a positive number", next());
    } else if (std::strcmp(flag, "--offered") == 0) {
      config.offered = static_cast<std::uint64_t>(
          parse_positive("--offered expects a positive count", next()));
    } else if (std::strcmp(flag, "--cap") == 0) {
      config.cap = static_cast<int>(
          parse_positive("--cap expects a positive count", next()));
    } else if (std::strcmp(flag, "--queue") == 0) {
      config.queue_cap = static_cast<std::size_t>(
          parse_positive("--queue expects a positive count", next()));
    } else if (std::strcmp(flag, "--policy") == 0) {
      const char* p = next();
      if (std::strcmp(p, "shed") == 0) {
        config.policy = OverloadPolicy::kShedOldest;
      } else if (std::strcmp(p, "block") == 0) {
        config.policy = OverloadPolicy::kBlock;
      } else {
        usage("--policy expects shed|block");
      }
    } else if (std::strcmp(flag, "--period") == 0) {
      config.round_period =
          parse_positive("--period expects a positive number", next());
    } else if (std::strcmp(flag, "--seed") == 0) {
      config.seed = static_cast<std::uint64_t>(
          std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(flag, "--jobs") == 0) {
      config.jobs = std::atoi(next());
    } else if (std::strcmp(flag, "--shards") == 0) {
      shards = static_cast<int>(
          parse_positive("--shards expects a positive count", next()));
    } else if (std::strcmp(flag, "--route") == 0) {
      const auto parsed = parse_route_policy(next());
      if (!parsed.has_value()) usage("--route expects hash|least-loaded");
      route = *parsed;
    } else if (std::strcmp(flag, "--deadline") == 0) {
      deadline =
          parse_positive("--deadline expects a positive number", next());
    } else if (std::strcmp(flag, "--artifact") == 0) {
      dump_artifact = true;
    } else if (std::strcmp(flag, "--spans-out") == 0) {
      spans_out = next();
      config.record_spans = true;
    } else if (std::strcmp(flag, "--metrics-out") == 0) {
      metrics_out = next();
    } else if (std::strcmp(flag, "--sample-every") == 0) {
      config.sample_every =
          parse_positive("--sample-every expects a positive number", next());
    } else if (std::strcmp(flag, "--inject") == 0) {
      // Plan lines separated by ';' (the multi-line text form of
      // docs/INJECTION.md, flattened for the shell).
      std::string text = next();
      for (char& c : text) {
        if (c == ';') c = '\n';
      }
      std::string error;
      const auto plan = da::inject::FaultPlan::parse(text, &error);
      if (!plan.has_value()) {
        std::fprintf(stderr, "service_demo: --inject: %s\n", error.c_str());
        return 2;
      }
      config.fault_plan = *plan;
    } else if (std::strcmp(flag, "--inject-every") == 0) {
      config.inject_every = static_cast<std::uint64_t>(
          parse_positive("--inject-every expects a positive count", next()));
    } else {
      usage(flag);
    }
  }

  switch (kind) {
    case ArrivalKind::kPoisson:
      config.arrivals = ArrivalSpec::poisson(rate);
      break;
    case ArrivalKind::kBursty:
      config.arrivals = ArrivalSpec::bursty(rate);
      break;
    case ArrivalKind::kPareto:
      config.arrivals = ArrivalSpec::pareto(rate);
      break;
  }

  // --deadline rides on the resolved default mix: every template gets the
  // same relative admission deadline.
  if (deadline > 0.0) {
    config.mix = default_mix();
    for (JobTemplate& tmpl : config.mix) tmpl.deadline = deadline;
  }

  // Fold the per-job outcomes into one by-class table (offered /
  // completed / shed / deadline-missed per admission class).
  struct ClassRow {
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t missed = 0;
  };
  std::array<ClassRow, kAdmissionClassCount> by_class{};
  const auto tally = [&by_class](const std::vector<JobRecord>& records) {
    for (const JobRecord& rec : records) {
      ClassRow& row = by_class[static_cast<std::size_t>(index_of(rec.admission))];
      ++row.offered;
      if (rec.shed) {
        ++row.shed;
        if (rec.deadline_missed) ++row.missed;
      } else if (rec.completed >= 0.0) {
        ++row.completed;
      }
    }
  };
  const auto print_classes = [&by_class] {
    for (int c = 0; c < kAdmissionClassCount; ++c) {
      const ClassRow& row = by_class[static_cast<std::size_t>(c)];
      if (row.offered == 0) continue;
      std::printf("class      %-6s offered %llu  completed %llu  shed %llu  "
                  "deadline_missed %llu\n",
                  to_string(static_cast<AdmissionClass>(c)),
                  static_cast<unsigned long long>(row.offered),
                  static_cast<unsigned long long>(row.completed),
                  static_cast<unsigned long long>(row.shed),
                  static_cast<unsigned long long>(row.missed));
    }
  };
  const auto write_outputs = [&](const std::vector<da::obs::Span>& spans,
                                 std::size_t samples) {
    if (spans_out != nullptr) {
      if (!da::obs::write_spans_jsonl(spans, spans_out)) {
        std::fprintf(stderr, "service_demo: cannot write %s\n", spans_out);
        return false;
      }
      std::printf("spans      %zu -> %s\n", spans.size(), spans_out);
    }
    if (metrics_out != nullptr) {
      if (!da::obs::write_exposition(
              da::obs::MetricsRegistry::global().snapshot(), metrics_out)) {
        std::fprintf(stderr, "service_demo: cannot write %s\n", metrics_out);
        return false;
      }
      std::printf("metrics    -> %s\n", metrics_out);
    }
    if (config.sample_every > 0.0) {
      std::printf("samples    %zu (every %g time units)\n", samples,
                  config.sample_every);
    }
    return true;
  };

  if (shards > 1) {
    // Sharded front-end path: one global arrival stream and tick grid
    // over N independent service shards.
    FrontendConfig frontend_config;
    frontend_config.service = config;
    frontend_config.shards = shards;
    frontend_config.route = route;
    ServiceFrontend frontend(frontend_config);
    const FrontendResult result = frontend.run();
    tally(result.records);

    std::printf("frontend: %s  shards=%d route=%s cap=%d queue=%zu "
                "policy=%s period=%g seed=%llu jobs=%d\n",
                config.arrivals.to_string().c_str(), shards,
                to_string(route), config.cap, config.queue_cap,
                to_string(config.policy), config.round_period,
                static_cast<unsigned long long>(config.seed), config.jobs);
    std::printf("offered    %llu jobs\n",
                static_cast<unsigned long long>(config.offered));
    std::printf("completed  %llu   shed %llu   deadline_missed %llu   "
                "violations %llu\n",
                static_cast<unsigned long long>(result.completed),
                static_cast<unsigned long long>(result.shed),
                static_cast<unsigned long long>(result.deadline_missed),
                static_cast<unsigned long long>(result.violations));
    std::printf("makespan   %.3f time units over %llu ticks  (%.1f ms wall)\n",
                result.makespan, static_cast<unsigned long long>(result.ticks),
                result.wall_ms);
    std::printf("throughput %.3f jobs/time unit\n", result.throughput());
    std::printf("latency    p50 %.3f  p90 %.3f  p99 %.3f time units\n",
                result.latency_sketch.quantile(0.50),
                result.latency_sketch.quantile(0.90),
                result.latency_sketch.quantile(0.99));
    print_classes();
    for (std::size_t s = 0; s < result.shards.size(); ++s) {
      const FrontendShardSummary& shard = result.shards[s];
      std::printf("shard      %zu offered %llu  completed %llu  shed %llu  "
                  "peak_active %d\n",
                  s, static_cast<unsigned long long>(shard.offered),
                  static_cast<unsigned long long>(shard.completed),
                  static_cast<unsigned long long>(shard.shed),
                  shard.peak_active);
    }
    std::printf("digest     %016llx\n",
                static_cast<unsigned long long>(result.digest()));
    if (dump_artifact) std::fputs(result.artifact().c_str(), stdout);
    if (!write_outputs(result.spans, result.samples.size())) return 1;
    return result.violations == 0 ? 0 : 1;
  }

  AgreementService svc(config);
  const ServiceResult result = svc.run();
  tally(result.records);

  std::printf("service: %s  cap=%d queue=%zu policy=%s period=%g seed=%llu "
              "jobs=%d\n",
              config.arrivals.to_string().c_str(), config.cap,
              config.queue_cap, to_string(config.policy), config.round_period,
              static_cast<unsigned long long>(config.seed), config.jobs);
  std::printf("offered    %llu jobs\n",
              static_cast<unsigned long long>(config.offered));
  std::printf("completed  %llu   shed %llu   deadline_missed %llu   "
              "violations %llu\n",
              static_cast<unsigned long long>(result.completed),
              static_cast<unsigned long long>(result.shed),
              static_cast<unsigned long long>(result.deadline_missed),
              static_cast<unsigned long long>(result.violations));
  std::printf("makespan   %.3f time units over %llu ticks  (%.1f ms wall)\n",
              result.makespan, static_cast<unsigned long long>(result.ticks),
              result.wall_ms);
  std::printf("throughput %.3f jobs/time unit   peak_active %d slots\n",
              result.throughput(), result.peak_active);
  std::printf("latency    p50 %.3f  p90 %.3f  p99 %.3f time units\n",
              result.latency_quantile(0.50), result.latency_quantile(0.90),
              result.latency_quantile(0.99));
  print_classes();
  std::printf("slots      created %llu  reused %llu\n",
              static_cast<unsigned long long>(svc.slots_created()),
              static_cast<unsigned long long>(svc.slot_reuses()));
  std::printf("digest     %016llx\n",
              static_cast<unsigned long long>(result.digest()));
  if (dump_artifact) std::fputs(result.artifact().c_str(), stdout);
  if (!write_outputs(result.spans, result.samples.size())) return 1;

  return result.violations == 0 ? 0 : 1;
}
