// Quickstart: run one m/u-degradable agreement, inspect the outcome, and
// check it against the paper's conditions D.1-D.4.
//
//   $ ./quickstart
//
// A 7-node system configured for 1/4-degradable agreement: Byzantine
// agreement while at most 1 node is faulty, safe degraded agreement (every
// fault-free node on the sender's value or the default V_d) through 4
// faults — more than a third of the system, which classical Byzantine
// agreement cannot touch.

#include <cstdio>

#include "da/da.hpp"

int main() {
  // 1. Pick a configuration. min_nodes(1, 4) == 7, so n = 7 is exactly
  //    enough (Theorem 2).
  const da::Config config{.n = 7, .m = 1, .u = 4};
  std::printf("config: %s (needs >= %d nodes, connectivity >= %d)\n",
              config.to_string().c_str(),
              da::bounds::min_nodes(config.m, config.u),
              da::bounds::min_connectivity(config.m, config.u));

  const da::DegradableAgreement protocol(config);

  // 2. Describe a scenario: node 0 sends 42; nodes 2, 3 and 5 are
  //    Byzantine (f = 3 > m: we are in the degraded range).
  da::ScenarioSpec spec;
  spec.config = config;
  spec.sender = 0;
  spec.sender_value = da::Value::of(42);
  spec.faulty = {2, 3, 5};

  // 3. Give the faulty nodes a strategy. Equivocating between the true
  //    value and a forgery is the classical worst case.
  auto adversary = da::faults::equivocator(da::Value::of(42),
                                           da::Value::of(13));

  // 4. Run BYZ(m,m) — here on the deterministic simulator; use
  //    run_threaded() for one OS thread per node.
  const da::Outcome outcome = protocol.run(spec, adversary.get());
  std::printf("\n%d rounds, %zu messages\n", outcome.rounds,
              outcome.messages_sent);
  for (const auto& [node, decision] : outcome.decisions) {
    std::printf("  node %d decided %-4s%s\n", node,
                decision.to_string().c_str(),
                spec.is_faulty(node)  ? "  (faulty)"
                : node == spec.sender ? "  (sender)"
                                      : "");
  }

  // 5. Check the paper's conditions.
  const da::ConditionReport report =
      da::check_conditions(spec, outcome.decisions);
  std::printf("\ngoverning condition: %s -> %s\n",
              da::to_string(report.applied),
              report.satisfied ? "satisfied" : "VIOLATED");
  std::printf("value class: %zu node(s), default class: %zu node(s)\n",
              report.value_class.size(), report.default_class.size());
  std::printf("corollary (>= m+1 fault-free agree): %s (largest class %d)\n",
              report.corollary_m_plus_1 ? "holds" : "FAILS",
              report.largest_agreeing_class);
  return report.satisfied ? 0 : 1;
}
