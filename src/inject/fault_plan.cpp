#include "inject/fault_plan.hpp"

#include <charconv>
#include <cstdio>

#include "util/rng.hpp"

namespace da::inject {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kDelay: return "delay";
  }
  return "?";
}

bool LinkRule::matches(const sim::Message& msg) const {
  if (from != kNoNode && msg.from != from) return false;
  if (to != kNoNode && msg.to != to) return false;
  if (round >= 0 && msg.round != round) return false;
  return true;
}

bool FaultPlan::crashed(NodeId id, int round) const {
  for (const CrashWindow& w : crashes) {
    if (w.down_at(id, round)) return true;
  }
  return false;
}

std::optional<std::string> FaultPlan::validate(int n) const {
  const auto node_ok = [n](NodeId id) {
    return id == kNoNode || (id >= 0 && id < n);
  };
  for (const LinkRule& r : rules) {
    if (!node_ok(r.from) || !node_ok(r.to)) {
      return "rule references a node outside 0.." + std::to_string(n - 1);
    }
    if (r.kind == FaultKind::kDuplicate && r.copies < 2) {
      return "dup rule needs copies >= 2";
    }
  }
  for (const CrashWindow& w : crashes) {
    if (w.node < 0 || w.node >= n) {
      return "crash window references node " + std::to_string(w.node) +
             " outside 0.." + std::to_string(n - 1);
    }
    if (w.down_from < 0 || (w.restart >= 0 && w.restart <= w.down_from)) {
      return "crash window for node " + std::to_string(w.node) +
             " has an empty or negative round range";
    }
  }
  const auto rate_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!rate_ok(rates.drop) || !rate_ok(rates.duplicate) ||
      !rate_ok(rates.delay)) {
    return "rates must lie in [0, 1]";
  }
  return std::nullopt;
}

namespace {

std::string node_str(NodeId id) {
  return id == kNoNode ? "*" : std::to_string(id);
}

std::string round_str(int round) {
  return round < 0 ? "*" : std::to_string(round);
}

std::string rate_str(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", p);
  return buf;
}

/// One `key=value` token. Returns false on shape mismatch.
bool split_kv(const std::string& token, std::string& key, std::string& val) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    return false;
  }
  key = token.substr(0, eq);
  val = token.substr(eq + 1);
  return true;
}

bool parse_node(const std::string& val, NodeId& out) {
  if (val == "*") {
    out = kNoNode;
    return true;
  }
  int v = 0;
  const auto [p, ec] = std::from_chars(val.data(), val.data() + val.size(), v);
  if (ec != std::errc{} || p != val.data() + val.size() || v < 0) return false;
  out = v;
  return true;
}

bool parse_round(const std::string& val, int& out) {
  if (val == "*") {
    out = -1;
    return true;
  }
  const auto [p, ec] =
      std::from_chars(val.data(), val.data() + val.size(), out);
  return ec == std::errc{} && p == val.data() + val.size() && out >= 0;
}

bool parse_double(const std::string& val, double& out) {
  char* end = nullptr;
  out = std::strtod(val.c_str(), &end);
  return end == val.c_str() + val.size() && !val.empty();
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    if (end > pos) tokens.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return tokens;
}

}  // namespace

std::string FaultPlan::serialize() const {
  std::string out = "seed " + std::to_string(seed) + "\n";
  for (const LinkRule& r : rules) {
    out += std::string(da::inject::to_string(r.kind)) + " from=" + node_str(r.from) +
           " to=" + node_str(r.to) + " round=" + round_str(r.round);
    if (r.kind == FaultKind::kDuplicate) {
      out += " copies=" + std::to_string(r.copies);
    }
    out += "\n";
  }
  for (const CrashWindow& w : crashes) {
    out += "crash node=" + std::to_string(w.node) +
           " down=" + std::to_string(w.down_from);
    if (w.restart >= 0) out += " restart=" + std::to_string(w.restart);
    out += "\n";
  }
  if (rates.any()) {
    out += "rates drop=" + rate_str(rates.drop) +
           " dup=" + rate_str(rates.duplicate) +
           " delay=" + rate_str(rates.delay) + "\n";
  }
  return out;
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& text,
                                          std::string* error) {
  const auto fail = [error](std::size_t line_no, const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return std::nullopt;
  };

  FaultPlan plan;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') {
      if (pos > text.size()) break;
      continue;
    }
    const std::string& verb = tokens[0];

    if (verb == "seed") {
      if (tokens.size() != 2) return fail(line_no, "seed wants one value");
      const std::string& v = tokens[1];
      const auto [p, ec] =
          std::from_chars(v.data(), v.data() + v.size(), plan.seed);
      if (ec != std::errc{} || p != v.data() + v.size()) {
        return fail(line_no, "bad seed `" + v + "`");
      }
    } else if (verb == "drop" || verb == "dup" || verb == "delay") {
      LinkRule rule;
      rule.kind = verb == "drop"  ? FaultKind::kDrop
                  : verb == "dup" ? FaultKind::kDuplicate
                                  : FaultKind::kDelay;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        std::string key, val;
        if (!split_kv(tokens[i], key, val)) {
          return fail(line_no, "expected key=value, got `" + tokens[i] + "`");
        }
        if (key == "from" && parse_node(val, rule.from)) continue;
        if (key == "to" && parse_node(val, rule.to)) continue;
        if (key == "round" && parse_round(val, rule.round)) continue;
        if (key == "copies" && rule.kind == FaultKind::kDuplicate) {
          int c = 0;
          const auto [p, ec] =
              std::from_chars(val.data(), val.data() + val.size(), c);
          if (ec == std::errc{} && p == val.data() + val.size() && c >= 2) {
            rule.copies = c;
            continue;
          }
        }
        return fail(line_no, "bad " + verb + " field `" + tokens[i] + "`");
      }
      plan.rules.push_back(rule);
    } else if (verb == "crash") {
      CrashWindow window;
      bool have_node = false;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        std::string key, val;
        if (!split_kv(tokens[i], key, val)) {
          return fail(line_no, "expected key=value, got `" + tokens[i] + "`");
        }
        int v = 0;
        const auto [p, ec] =
            std::from_chars(val.data(), val.data() + val.size(), v);
        const bool is_int =
            ec == std::errc{} && p == val.data() + val.size() && v >= 0;
        if (key == "node" && is_int) {
          window.node = v;
          have_node = true;
        } else if (key == "down" && is_int) {
          window.down_from = v;
        } else if (key == "restart" && is_int) {
          window.restart = v;
        } else {
          return fail(line_no, "bad crash field `" + tokens[i] + "`");
        }
      }
      if (!have_node) return fail(line_no, "crash wants node=<id>");
      plan.crashes.push_back(window);
    } else if (verb == "rates") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        std::string key, val;
        double p = 0.0;
        if (!split_kv(tokens[i], key, val) || !parse_double(val, p) ||
            p < 0.0 || p > 1.0) {
          return fail(line_no, "bad rates field `" + tokens[i] + "`");
        }
        if (key == "drop") {
          plan.rates.drop = p;
        } else if (key == "dup") {
          plan.rates.duplicate = p;
        } else if (key == "delay") {
          plan.rates.delay = p;
        } else {
          return fail(line_no, "unknown rate `" + key + "`");
        }
      }
    } else {
      return fail(line_no, "unknown directive `" + verb + "`");
    }
    if (pos > text.size()) break;
  }
  return plan;
}

FaultPlan FaultPlan::from_seed(std::uint64_t seed, int n, int rounds) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(mix64(seed, 0x1417EC7ULL));

  // Moderate background rates; any heavier and every execution degenerates
  // to all-defaults, which stops exercising the interesting vote paths.
  plan.rates.drop = 0.02 + 0.10 * rng.uniform();
  plan.rates.duplicate = 0.10 * rng.uniform();
  plan.rates.delay = 0.25 * rng.uniform();

  // Half the plans crash-restart one node for a one-round (sometimes
  // permanent) outage.
  if (rng.chance(0.5) && n > 0 && rounds > 1) {
    CrashWindow window;
    window.node = static_cast<NodeId>(rng.below(static_cast<uint64_t>(n)));
    window.down_from =
        1 + static_cast<int>(rng.below(static_cast<uint64_t>(rounds - 1)));
    window.restart = rng.chance(0.8) ? window.down_from + 1 : -1;
    plan.crashes.push_back(window);
  }

  // A couple of scripted per-link rules on random links/rounds.
  const int rule_count = static_cast<int>(rng.below(3));  // 0..2
  for (int i = 0; i < rule_count && n > 1; ++i) {
    LinkRule rule;
    rule.from = static_cast<NodeId>(rng.below(static_cast<uint64_t>(n)));
    rule.to = static_cast<NodeId>(rng.below(static_cast<uint64_t>(n)));
    rule.round = static_cast<int>(rng.below(static_cast<uint64_t>(rounds)));
    switch (rng.below(3)) {
      case 0: rule.kind = FaultKind::kDrop; break;
      case 1:
        rule.kind = FaultKind::kDuplicate;
        rule.copies = 2 + static_cast<int>(rng.below(2));
        break;
      default: rule.kind = FaultKind::kDelay; break;
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  return std::to_string(rules.size()) + " rules, " +
         std::to_string(crashes.size()) + " crashes, rates d=" +
         rate_str(rates.drop) + "/u=" + rate_str(rates.duplicate) +
         "/l=" + rate_str(rates.delay) + ", seed " + std::to_string(seed);
}

}  // namespace da::inject
