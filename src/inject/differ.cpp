#include "inject/differ.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "core/byz.hpp"
#include "core/checker.hpp"
#include "event/event_runner.hpp"
#include "faults/adversaries.hpp"
#include "inject/injection_network.hpp"
#include "obs/json.hpp"
#include "obs/trace_export.hpp"
#include "protocols/authenticated/signatures.hpp"
#include "protocols/authenticated/sm.hpp"
#include "protocols/crusader/crusader.hpp"
#include "protocols/lamport/om.hpp"
#include "rt/threaded_runner.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"
#include "sweep/sweep.hpp"
#include "util/rng.hpp"

namespace da::inject {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kByz: return "byz";
    case Protocol::kOm: return "om";
    case Protocol::kCrusader: return "crusader";
    case Protocol::kSm: return "sm";
    case Protocol::kIc: return "ic";
    case Protocol::kDic: return "dic";
  }
  return "?";
}

namespace {

const char* adversary_name(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::kFromSeed: return "seeded";
    case AdversaryKind::kHonest: return "honest";
    case AdversaryKind::kSilent: return "silent";
    case AdversaryKind::kLiar: return "liar";
    case AdversaryKind::kEquivocator: return "equivocator";
    case AdversaryKind::kCrash: return "crash";
    case AdversaryKind::kNoise: return "noise";
  }
  return "?";
}

enum class Runtime { kSim, kThreaded, kEvent };

const char* runtime_name(Runtime rt) {
  switch (rt) {
    case Runtime::kSim: return "sim";
    case Runtime::kThreaded: return "threaded";
    case Runtime::kEvent: return "event";
  }
  return "?";
}

bool multi_instance(Protocol p) {
  return p == Protocol::kIc || p == Protocol::kDic;
}

int protocol_rounds(Protocol p, const Config& cfg) {
  switch (p) {
    case Protocol::kByz:
    case Protocol::kDic: return core::byz_depth(cfg.m);
    case Protocol::kOm:
    case Protocol::kIc: return protocols::lamport::om_rounds(cfg.m);
    case Protocol::kCrusader: return protocols::crusader::crusader_rounds();
    case Protocol::kSm: return cfg.m + 1;
  }
  return 2;
}

/// The scenario one instance of the case runs. Single-instance protocols
/// run the case's spec verbatim; IC/DIC instance s broadcasts sender s's
/// input (the case sender keeps the case value, everyone else a value
/// derived from their id so coordinates are distinguishable).
ScenarioSpec instance_spec(const DifferentialCase& c, int instance) {
  ScenarioSpec spec = c.spec;
  if (multi_instance(c.protocol)) {
    spec.sender = instance;
    if (instance != c.spec.sender) {
      spec.sender_value = Value::of(100 + instance);
    }
  }
  return spec;
}

std::vector<std::unique_ptr<sim::Process>> make_processes(
    Protocol p, const ScenarioSpec& spec,
    const protocols::authenticated::SignatureAuthority& authority) {
  const Config& cfg = spec.config;
  switch (p) {
    case Protocol::kByz:
    case Protocol::kDic:
      return core::make_byz_processes(cfg, spec.sender, spec.sender_value);
    case Protocol::kOm:
    case Protocol::kIc:
      return protocols::lamport::make_om_processes(cfg.n, cfg.m, spec.sender,
                                                   spec.sender_value);
    case Protocol::kCrusader:
      return protocols::crusader::make_crusader_processes(
          cfg.n, cfg.m, spec.sender, spec.sender_value);
    case Protocol::kSm:
      return protocols::authenticated::make_sm_processes(
          cfg.n, cfg.m, spec.sender, spec.sender_value, authority);
  }
  return {};
}

AdversaryKind resolve_adversary(const DifferentialCase& c, int instance) {
  if (c.adversary != AdversaryKind::kFromSeed) return c.adversary;
  // Rotate the family deterministically per (case, instance): honest is
  // deliberately excluded (draw_case already produces f = 0 cases).
  static constexpr AdversaryKind kFamily[] = {
      AdversaryKind::kSilent,      AdversaryKind::kLiar,
      AdversaryKind::kEquivocator, AdversaryKind::kCrash,
      AdversaryKind::kNoise,
  };
  const std::uint64_t pick =
      mix64(c.adversary_seed, 0xADull + static_cast<std::uint64_t>(instance));
  return kFamily[pick % (sizeof(kFamily) / sizeof(kFamily[0]))];
}

std::unique_ptr<sim::Adversary> make_adversary(
    const DifferentialCase& c, const ScenarioSpec& spec, int instance,
    AdversaryKind kind,
    const protocols::authenticated::SignatureAuthority& authority) {
  switch (kind) {
    case AdversaryKind::kFromSeed:  // resolved before this call
    case AdversaryKind::kHonest: return faults::honest();
    case AdversaryKind::kSilent: return faults::silent();
    case AdversaryKind::kLiar: return faults::constant_liar(Value::of(99));
    case AdversaryKind::kEquivocator:
      // Against signatures, value substitution needs re-signing to bite.
      if (c.protocol == Protocol::kSm) {
        return protocols::authenticated::signing_equivocator(
            authority, spec.faulty, spec.sender_value, Value::of(88));
      }
      return faults::equivocator(spec.sender_value, Value::of(88));
    case AdversaryKind::kCrash: return faults::crash_after(1);
    case AdversaryKind::kNoise:
      return faults::random_noise(
          mix64(c.adversary_seed,
                0xA0ull + static_cast<std::uint64_t>(instance)),
          1, 9, 0.2);
  }
  return faults::honest();
}

std::string decisions_str(const std::map<NodeId, Value>& decisions) {
  std::string out;
  for (const auto& [node, value] : decisions) {
    if (!out.empty()) out += ",";
    out += std::to_string(node) + "=" + value.to_string();
  }
  return out;
}

std::string faulty_str(const std::vector<NodeId>& faulty) {
  std::string out;
  for (NodeId id : faulty) {
    if (!out.empty()) out += ",";
    out += std::to_string(id);
  }
  return out;
}

/// Runs every instance of `c` on one runtime and folds the results into a
/// canonical byte-comparable artifact. Every input that could vary — the
/// processes, the adversary, the injection network, the trace — is built
/// fresh per (runtime, instance) from the case alone.
RuntimeObservation observe(const DifferentialCase& c, Runtime rt) {
  RuntimeObservation obs;
  const int n = c.spec.config.n;
  const int instances = multi_instance(c.protocol) ? n : 1;
  const protocols::authenticated::SignatureAuthority authority(
      mix64(c.adversary_seed, 0x516ull), n);

  obs::Json header = obs::Json::object();
  header.set("protocol", obs::Json(std::string(to_string(c.protocol))))
      .set("config", obs::Json(c.spec.config.to_string()))
      .set("sender", obs::Json(static_cast<std::int64_t>(c.spec.sender)))
      .set("value", obs::Json(c.spec.sender_value.to_string()))
      .set("faulty", obs::Json(faulty_str(c.spec.faulty)))
      .set("plan", obs::Json(c.plan.serialize()));
  obs.artifact = header.dump() + "\n";

  for (int instance = 0; instance < instances; ++instance) {
    const ScenarioSpec spec = instance_spec(c, instance);
    const AdversaryKind kind = resolve_adversary(c, instance);
    std::unique_ptr<sim::Adversary> adversary;
    if (!spec.faulty.empty()) {
      adversary = make_adversary(c, spec, instance, kind, authority);
    }
    InjectionNetwork network(c.plan);
    sim::Trace trace;
    sim::RunOptions options;
    options.faulty = spec.faulty;
    options.adversary = adversary.get();
    options.network = &network;
    options.trace = &trace;

    sim::RunResult result;
    switch (rt) {
      case Runtime::kSim:
        result = sim::SyncRunner(make_processes(c.protocol, spec, authority),
                                 std::move(options))
                     .run();
        break;
      case Runtime::kThreaded:
        result =
            da::rt::ThreadedRunner(make_processes(c.protocol, spec, authority),
                                   std::move(options))
                .run();
        break;
      case Runtime::kEvent: {
        event::TimingModel timing;
        timing.seed = mix64(c.adversary_seed, 0xE7ull);
        result = event::EventRunner(make_processes(c.protocol, spec, authority),
                                    std::move(options), timing,
                                    event::perfect_clocks(n))
                     .run()
                     .base;
        break;
      }
    }

    const ConditionReport report = check_conditions(spec, result.decisions);
    const std::string verdict =
        std::string(da::to_string(report.applied)) +
        (report.satisfied ? "+" : "-");
    if (!obs.verdict.empty()) obs.verdict += "|";
    obs.verdict += verdict;
    obs.decisions[instance] = result.decisions;
    obs.messages_sent += result.messages_sent;
    obs.messages_delivered += result.messages_delivered;

    obs::Json record = obs::Json::object();
    record.set("instance", obs::Json(static_cast<std::int64_t>(instance)))
        .set("adversary", obs::Json(std::string(adversary_name(kind))))
        .set("verdict", obs::Json(verdict))
        .set("decisions", obs::Json(decisions_str(result.decisions)))
        .set("sent", obs::Json(static_cast<std::int64_t>(result.messages_sent)))
        .set("delivered",
             obs::Json(static_cast<std::int64_t>(result.messages_delivered)))
        .set("inject", network.stats().to_json());
    obs.artifact += record.dump() + "\n";
    obs.artifact += obs::trace_to_jsonl(trace);
    if (!obs.artifact.empty() && obs.artifact.back() != '\n') {
      obs.artifact += '\n';
    }
  }
  return obs;
}

/// First line where two artifacts diverge, for the report's detail field.
std::string first_divergence(Runtime ra, const RuntimeObservation& a,
                             Runtime rb, const RuntimeObservation& b) {
  if (a.artifact == b.artifact) return {};
  std::size_t line = 1;
  std::size_t pa = 0;
  std::size_t pb = 0;
  while (pa < a.artifact.size() && pb < b.artifact.size()) {
    std::size_t ea = a.artifact.find('\n', pa);
    std::size_t eb = b.artifact.find('\n', pb);
    if (ea == std::string::npos) ea = a.artifact.size();
    if (eb == std::string::npos) eb = b.artifact.size();
    const std::string la = a.artifact.substr(pa, ea - pa);
    const std::string lb = b.artifact.substr(pb, eb - pb);
    if (la != lb) {
      return "artifact line " + std::to_string(line) + ": " +
             runtime_name(ra) + " `" + la.substr(0, 160) + "` vs " +
             runtime_name(rb) + " `" + lb.substr(0, 160) + "`";
    }
    pa = ea + 1;
    pb = eb + 1;
    ++line;
  }
  return std::string("artifact length: ") + runtime_name(ra) + " " +
         std::to_string(a.artifact.size()) + " bytes vs " + runtime_name(rb) +
         " " + std::to_string(b.artifact.size()) + " bytes";
}

}  // namespace

std::string DifferentialCase::to_string() const {
  return std::string(inject::to_string(protocol)) + " " + spec.config.to_string() +
         " sender=" + std::to_string(spec.sender) +
         " value=" + spec.sender_value.to_string() + " faulty=[" +
         faulty_str(spec.faulty) + "] adversary=" + adversary_name(adversary) +
         " plan{" + plan.to_string() + "}";
}

DifferentialReport run_differential(const DifferentialCase& c) {
  DifferentialReport report;
  report.sim = observe(c, Runtime::kSim);
  report.threaded = observe(c, Runtime::kThreaded);
  report.event = observe(c, Runtime::kEvent);

  report.artifacts_identical =
      report.sim.artifact == report.threaded.artifact &&
      report.sim.artifact == report.event.artifact;
  report.decisions_identical =
      report.sim.decisions == report.threaded.decisions &&
      report.sim.decisions == report.event.decisions;
  report.verdicts_identical = report.sim.verdict == report.threaded.verdict &&
                              report.sim.verdict == report.event.verdict;
  report.conditions_satisfied =
      report.sim.verdict.find('-') == std::string::npos;

  if (!report.ok()) {
    report.detail = first_divergence(Runtime::kSim, report.sim,
                                     Runtime::kThreaded, report.threaded);
    if (report.detail.empty()) {
      report.detail = first_divergence(Runtime::kSim, report.sim,
                                       Runtime::kEvent, report.event);
    }
    if (report.detail.empty()) {
      report.detail = "decisions or verdicts diverged without an artifact diff";
    }
  }
  return report;
}

DifferentialCase draw_case(std::uint64_t seed, std::uint64_t ordinal) {
  Rng rng(mix64(mix64(seed, 0xD1FFull), ordinal));
  DifferentialCase c;
  c.protocol = static_cast<Protocol>(ordinal % kProtocolCount);

  int n = 0;
  int m = 0;
  int u = 0;
  switch (c.protocol) {
    case Protocol::kByz:
      m = static_cast<int>(rng.below(2));  // 0 or 1
      u = m + static_cast<int>(rng.below(2));
      if (u == 0) u = 1;
      n = 2 * m + u + 1 + static_cast<int>(rng.below(2));  // <= 6
      break;
    case Protocol::kOm:
      m = 1;
      u = 1;
      n = 4 + static_cast<int>(rng.below(3));  // OM(1) wants n >= 4
      break;
    case Protocol::kCrusader:
      m = 1;
      u = 1 + static_cast<int>(rng.below(2));
      n = 2 * m + u + 1 + static_cast<int>(rng.below(2));  // <= 6
      break;
    case Protocol::kSm:
      m = 1 + static_cast<int>(rng.below(2));  // 1 or 2
      u = m;
      n = 4 + static_cast<int>(rng.below(2));  // n >= m+2 holds
      break;
    case Protocol::kIc:
      m = 1;
      u = 1;
      n = 4 + static_cast<int>(rng.below(2));  // n instances each: keep small
      break;
    case Protocol::kDic:
      m = 1;
      u = 1 + static_cast<int>(rng.below(2));
      n = 2 * m + u + 1;  // 4 or 5
      break;
  }
  c.spec.config = Config{n, m, u};
  c.spec.sender = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
  c.spec.sender_value = Value::of(rng.range(1, 9));

  // f in 0..u so cases span the fault-free, D.1/D.2 and D.3/D.4 regimes.
  const int f = static_cast<int>(rng.below(static_cast<std::uint64_t>(u) + 1));
  for (int id : rng.subset(n, f)) {
    c.spec.faulty.push_back(static_cast<NodeId>(id));
  }

  c.plan = FaultPlan::from_seed(rng.next(), n,
                                protocol_rounds(c.protocol, c.spec.config));
  c.adversary_seed = rng.next();
  return c;
}

DifferentialSweepResult sweep_differential(std::uint64_t seed,
                                           std::uint64_t cases, int jobs) {
  DifferentialSweepResult out;
  out.cases = cases;
  if (cases == 0) return out;

  // One detail slot per shard: each shard is scanned by exactly one
  // worker, so slots need no locking (the sweep engine's contract).
  const sweep::ShardPlan plan = sweep::ShardPlan::even(cases, 4);
  std::vector<std::string> details(plan.shard_count());

  sweep::SweepOptions options;
  options.jobs = jobs;
  options.seed = seed;
  const sweep::SweepResult result = sweep::run_sweep(
      plan, options,
      [&](std::uint64_t ordinal, std::size_t shard, Rng&) {
        const DifferentialCase c = draw_case(seed, ordinal);
        const DifferentialReport report = run_differential(c);
        sweep::Visit visit;
        // Three runtimes, `instances` executions each.
        visit.executions =
            3 * static_cast<std::uint64_t>(
                    multi_instance(c.protocol) ? c.spec.config.n : 1);
        visit.hit = !report.ok();
        if (visit.hit && details[shard].empty()) {
          details[shard] = c.to_string() + ": " + report.detail;
        }
        return visit;
      });

  out.first_mismatch = result.first_hit;
  out.executions = result.stats.executions;
  if (result.first_hit_shard.has_value()) {
    out.detail = details[*result.first_hit_shard];
  }
  return out;
}

}  // namespace da::inject
