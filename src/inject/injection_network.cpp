#include "inject/injection_network.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace da::inject {

namespace {

/// Independent decision hash per (plan seed, purpose, message identity).
/// `purpose` decouples the drop/dup/delay draws so one message can be,
/// say, duplicated without that also biasing its delay draw.
double unit_draw(std::uint64_t seed, std::uint64_t purpose,
                 const sim::Message& msg) {
  std::uint64_t h = mix64(seed, purpose);
  h = mix64(h, static_cast<std::uint64_t>(msg.from));
  h = mix64(h, static_cast<std::uint64_t>(msg.to));
  h = mix64(h, static_cast<std::uint64_t>(msg.round));
  h = mix64(h, msg.path.hash());
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kDropDraw = 0xD0;
constexpr std::uint64_t kDupDraw = 0xD1;
constexpr std::uint64_t kDelayDraw = 0xD2;
constexpr std::uint64_t kDelayFracDraw = 0xD3;

}  // namespace

obs::Json InjectionStats::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("examined", static_cast<std::int64_t>(examined))
      .set("dropped", static_cast<std::int64_t>(dropped))
      .set("duplicated", static_cast<std::int64_t>(duplicated))
      .set("delayed", static_cast<std::int64_t>(delayed))
      .set("crash_dropped", static_cast<std::int64_t>(crash_dropped));
  obs::Json hits = obs::Json::array();
  for (std::uint64_t h : rule_hits) {
    hits.push_back(obs::Json(static_cast<std::int64_t>(h)));
  }
  j.set("rule_hits", std::move(hits));
  return j;
}

InjectionNetwork::InjectionNetwork(FaultPlan plan, sim::NetworkModel* inner)
    : plan_(std::move(plan)), inner_(inner) {
  stats_.rule_hits.assign(plan_.rules.size(), 0);
}

InjectionNetwork::Decision InjectionNetwork::decide(
    const sim::Message& msg) const {
  Decision d;
  // Crash windows dominate: a down endpoint neither sends nor receives.
  if (plan_.crashed(msg.from, msg.round) || plan_.crashed(msg.to, msg.round)) {
    d.crash = true;
    return d;
  }
  // First matching scripted rule wins.
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const LinkRule& rule = plan_.rules[i];
    if (!rule.matches(msg)) continue;
    d.rule = static_cast<int>(i);
    switch (rule.kind) {
      case FaultKind::kDrop: d.drop = true; return d;
      case FaultKind::kDuplicate: d.copies = rule.copies; return d;
      case FaultKind::kDelay:
        d.delay_frac = 0.5 + 0.4 * unit_draw(plan_.seed, kDelayFracDraw, msg);
        return d;
    }
  }
  // Background rates, each from an independent per-message draw.
  if (plan_.rates.drop > 0.0 &&
      unit_draw(plan_.seed, kDropDraw, msg) < plan_.rates.drop) {
    d.drop = true;
    return d;
  }
  if (plan_.rates.duplicate > 0.0 &&
      unit_draw(plan_.seed, kDupDraw, msg) < plan_.rates.duplicate) {
    d.copies = 2;
  }
  if (plan_.rates.delay > 0.0 &&
      unit_draw(plan_.seed, kDelayDraw, msg) < plan_.rates.delay) {
    d.delay_frac = 0.5 + 0.4 * unit_draw(plan_.seed, kDelayFracDraw, msg);
  }
  return d;
}

bool InjectionNetwork::deliver(const sim::Message& msg) {
  // NetworkModel's single-copy entry points funnel through transit().
  const Decision d = decide(msg);
  return !d.crash && !d.drop;
}

std::optional<sim::Message> InjectionNetwork::transit(
    const sim::Message& msg) {
  std::vector<sim::Message> copies = transit_fanout(msg);
  if (copies.empty()) return std::nullopt;
  return std::move(copies.front());
}

std::vector<sim::Message> InjectionNetwork::transit_fanout(
    const sim::Message& msg) {
  static const obs::Counter examined("inject.examined");
  static const obs::Counter dropped("inject.dropped");
  static const obs::Counter duplicated("inject.duplicated");
  static const obs::Counter delayed("inject.delayed");
  static const obs::Counter crash_dropped("inject.crash_dropped");

  ++stats_.examined;
  examined.add();
  const Decision d = decide(msg);
  if (d.rule >= 0 &&
      static_cast<std::size_t>(d.rule) < stats_.rule_hits.size()) {
    ++stats_.rule_hits[static_cast<std::size_t>(d.rule)];
  }
  if (d.crash) {
    ++stats_.crash_dropped;
    crash_dropped.add();
    return {};
  }
  if (d.drop) {
    ++stats_.dropped;
    dropped.add();
    return {};
  }

  // The inner model sees the message once; its verdict (drop, rewrite)
  // applies to every injected copy — duplication happens on *this* hop.
  std::vector<sim::Message> inner_copies =
      inner_ != nullptr ? inner_->transit_fanout(msg)
                        : std::vector<sim::Message>{msg};
  if (inner_copies.empty()) return {};

  if (d.delay_frac > 0.0) {
    ++stats_.delayed;
    delayed.add();
  }
  if (d.copies > 1) {
    const std::size_t base = inner_copies.size();
    for (int c = 1; c < d.copies; ++c) {
      for (std::size_t i = 0; i < base; ++i) {
        inner_copies.push_back(inner_copies[i]);
        ++stats_.duplicated;
        duplicated.add();
      }
    }
  }
  return inner_copies;
}

double InjectionNetwork::holdback(const sim::Message& msg) {
  const Decision d = decide(msg);
  double frac = d.crash || d.drop ? 0.0 : d.delay_frac;
  if (inner_ != nullptr) {
    frac = std::max(frac, inner_->holdback(msg));
  }
  return frac;
}

}  // namespace da::inject
