#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/scenario.hpp"
#include "inject/fault_plan.hpp"
#include "util/value.hpp"

namespace da::inject {

/// Which protocol a differential case replays. Single-instance protocols
/// run one process set; the interactive-consistency pair (kIc / kDic)
/// replays one agreement instance per sender and checks every coordinate.
enum class Protocol {
  kByz,       // BYZ(m,m) — the paper's m/u-degradable agreement
  kOm,        // Lamport-Shostak-Pease OM(m)
  kCrusader,  // BYZ(1,m) as standalone crusader agreement
  kSm,        // signed-messages SM(m)
  kIc,        // interactive consistency: n parallel OM(m) instances
  kDic,       // degradable IC: n parallel BYZ(m,m) instances
};

inline constexpr int kProtocolCount = 6;

[[nodiscard]] const char* to_string(Protocol p);

/// How the faulty nodes behave. kFromSeed rotates deterministically through
/// the family below, keyed on the case's adversary_seed.
enum class AdversaryKind {
  kFromSeed,
  kHonest,
  kSilent,
  kLiar,
  kEquivocator,
  kCrash,
  kNoise,
};

/// One differential-replay triple: a scenario, a fault plan and the seeds
/// that fix the adversary. Everything an execution observes derives from
/// this struct — no ambient state — so a case replays bit-identically.
struct DifferentialCase {
  Protocol protocol = Protocol::kByz;
  ScenarioSpec spec;
  FaultPlan plan;
  std::uint64_t adversary_seed = 0;
  AdversaryKind adversary = AdversaryKind::kFromSeed;

  [[nodiscard]] std::string to_string() const;
};

/// What one runtime observed for a case: a canonical byte-comparable
/// artifact (header, then per instance a verdict/decisions/injection-stats
/// record followed by the canonical JSONL trace export), plus the pieces
/// tests want individually.
struct RuntimeObservation {
  std::string artifact;
  /// decisions[instance][node]; single-instance protocols use instance 0.
  std::map<int, std::map<NodeId, Value>> decisions;
  /// Concatenated per-instance D.1-D.4 classification signature, e.g.
  /// "D1+" or "D3+|D4-|..." — the condition that governed, then '+'/'-'
  /// for satisfied/violated.
  std::string verdict;
  std::size_t messages_sent = 0;
  std::size_t messages_delivered = 0;
};

/// Differential verdict across the sim, threaded and event runtimes.
struct DifferentialReport {
  RuntimeObservation sim, threaded, event;
  bool artifacts_identical = false;  // byte-identical canonical artifacts
  bool decisions_identical = false;
  bool verdicts_identical = false;
  /// Every instance's governing condition held on the sim runtime.
  /// Injection can legitimately break conditions (the paper assumes
  /// reliable links), so this is reported, not asserted, except by tests
  /// that use plans known to preserve the hypothesis.
  bool conditions_satisfied = false;
  std::string detail;  // first divergence, empty when ok()

  [[nodiscard]] bool ok() const {
    return artifacts_identical && decisions_identical && verdicts_identical;
  }
};

/// Replays `c` through all three runtimes and compares.
[[nodiscard]] DifferentialReport run_differential(const DifferentialCase& c);

/// The canonical (seed, ordinal) -> case enumeration used by the
/// differential sweep, tests and the regression corpus: a pure function —
/// no shared RNG stream — so any subset of ordinals replays identically
/// for any --jobs value. Ordinal o exercises protocol o % 6.
[[nodiscard]] DifferentialCase draw_case(std::uint64_t seed,
                                         std::uint64_t ordinal);

struct DifferentialSweepResult {
  /// First (by ordinal) case whose runtimes diverged, or nullopt.
  std::optional<std::uint64_t> first_mismatch;
  std::uint64_t cases = 0;       // ordinals in the sweep space
  std::uint64_t executions = 0;  // canonical execution count (jobs-invariant)
  std::string detail;            // describes first_mismatch when present
};

/// Sweeps ordinals [0, cases) of draw_case(seed, .) on the parallel sweep
/// engine. first_mismatch and executions are identical for every jobs
/// value (the sweep engine's determinism contract).
[[nodiscard]] DifferentialSweepResult sweep_differential(std::uint64_t seed,
                                                         std::uint64_t cases,
                                                         int jobs);

}  // namespace da::inject
