#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "inject/fault_plan.hpp"
#include "obs/json.hpp"
#include "sim/network.hpp"

namespace da::inject {

/// What an InjectionNetwork did to the traffic that passed through it.
/// Counts are pure functions of (plan, traffic), so two runtimes replaying
/// the same scenario under the same plan must report identical stats — the
/// differential checker includes them in its canonical artifact.
struct InjectionStats {
  std::uint64_t examined = 0;     // sends that entered the layer
  std::uint64_t dropped = 0;      // suppressed by a rule or the drop rate
  std::uint64_t duplicated = 0;   // extra copies materialized
  std::uint64_t delayed = 0;      // deliveries held back within the window
  std::uint64_t crash_dropped = 0;  // suppressed by a crash window
  /// Per-rule match tallies, indexed like `FaultPlan::rules` — how often
  /// each scripted rule was the one that decided a message's fate. Span
  /// consumers use this to attribute observed delay/loss to a plan rule.
  std::vector<std::uint64_t> rule_hits{};

  [[nodiscard]] obs::Json to_json() const;

  friend bool operator==(const InjectionStats&, const InjectionStats&) =
      default;
};

/// The fault-injection transport: wraps any inner NetworkModel (null =
/// reliable links) and perturbs traffic per a FaultPlan — scripted
/// per-link drop/duplicate/delay rules, crash-restart windows, and seeded
/// background rates. Every decision derives from the plan seed and the
/// message identity via mix64, never from call order, so the sim, threaded
/// and event runtimes observe byte-identical executions (the property
/// tests/test_differential.cpp machine-checks).
///
/// Thread-safety: the threaded runtime serializes all NetworkModel calls
/// under its shared mutex (as it does for adversaries), so the plain stats
/// counters need no atomics.
class InjectionNetwork final : public sim::NetworkModel {
 public:
  explicit InjectionNetwork(FaultPlan plan,
                            sim::NetworkModel* inner = nullptr);

  [[nodiscard]] bool deliver(const sim::Message& msg) override;
  [[nodiscard]] std::optional<sim::Message> transit(
      const sim::Message& msg) override;
  [[nodiscard]] std::vector<sim::Message> transit_fanout(
      const sim::Message& msg) override;
  [[nodiscard]] double holdback(const sim::Message& msg) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const InjectionStats& stats() const { return stats_; }

  /// Re-seed the plan's decision hashes (e.g. per service instance) without
  /// rebuilding the rule table.
  void reseed(std::uint64_t seed) { plan_.seed = seed; }

  /// Zero the stats, keeping the per-rule tally sized to the plan. Lets a
  /// recycled service slot reuse one network across instances.
  void reset_stats() {
    stats_ = InjectionStats{};
    stats_.rule_hits.assign(plan_.rules.size(), 0);
  }

 private:
  /// The plan's verdict for one message, before the inner network runs.
  struct Decision {
    FaultKind kind = FaultKind::kDelay;  // kDelay doubles as "pass, maybe late"
    bool crash = false;                  // crash window drop
    bool drop = false;
    int copies = 1;
    double delay_frac = 0.0;  // 0 = on time
    int rule = -1;  // index of the scripted rule that decided, -1 if none
  };
  [[nodiscard]] Decision decide(const sim::Message& msg) const;

  FaultPlan plan_;
  sim::NetworkModel* inner_;
  InjectionStats stats_;
};

}  // namespace da::inject
