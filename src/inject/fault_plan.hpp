#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "util/ids.hpp"

namespace da::inject {

/// What the injection layer does to a matched message.
enum class FaultKind {
  kDrop,       // suppress the delivery (receiver observes absence / V_d)
  kDuplicate,  // deliver `copies` identical copies instead of one
  kDelay,      // deliver late-but-in-window (event runtime); reorders arrivals
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scripted per-link rule. A field left at its wildcard default
/// (kNoNode / -1) matches anything; the *first* matching rule decides a
/// message's fate, mirroring faults::Rule's first-match discipline.
struct LinkRule {
  NodeId from = kNoNode;  // kNoNode = any sender
  NodeId to = kNoNode;    // kNoNode = any destination
  int round = -1;         // -1 = any round
  FaultKind kind = FaultKind::kDrop;
  int copies = 2;  // kDuplicate only: total delivered copies, >= 2

  [[nodiscard]] bool matches(const sim::Message& msg) const;

  friend bool operator==(const LinkRule&, const LinkRule&) = default;
};

/// A crash-restart window: while `node` is down (rounds in
/// [down_from, restart)), every message it sends *or* receives is dropped.
/// `restart < 0` means the node never comes back. The process object keeps
/// its state across the outage — i.e. a fail-silent crash with
/// state-preserving restart, modelled entirely at the link layer so all
/// three runtimes observe the identical execution.
struct CrashWindow {
  NodeId node = kNoNode;
  int down_from = 0;
  int restart = -1;  // exclusive; < 0 = never restarts

  [[nodiscard]] bool down_at(NodeId id, int round) const {
    return id == node && round >= down_from &&
           (restart < 0 || round < restart);
  }

  friend bool operator==(const CrashWindow&, const CrashWindow&) = default;
};

/// Seeded background perturbation rates, applied per message identity to
/// messages no explicit rule matched. Each probability is evaluated from
/// an independent hash of (plan seed, from, to, round, path), so decisions
/// are pure functions of the message identity — identical under the sim,
/// threaded and event runtimes and for any sweep --jobs value.
struct RandomRates {
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;

  [[nodiscard]] bool any() const {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0;
  }

  friend bool operator==(const RandomRates&, const RandomRates&) = default;
};

/// A deterministic fault-injection plan: explicit scripted rules, crash
/// windows, and seeded background rates. The plan plus its seed fully
/// determine every injection decision; there is no hidden RNG state.
///
/// Text form (parse()/serialize(); see docs/INJECTION.md):
///
///   # comments and blank lines ignored
///   seed 42
///   drop from=1 to=3 round=2
///   dup from=* to=2 round=* copies=3
///   delay from=0 to=* round=1
///   crash node=3 down=1 restart=3
///   rates drop=0.05 dup=0.02 delay=0.10
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<LinkRule> rules;
  std::vector<CrashWindow> crashes;
  RandomRates rates;

  /// True when the plan perturbs anything at all. An inactive plan must be
  /// indistinguishable (and near-free: see bench_inject) from no plan.
  [[nodiscard]] bool active() const {
    return !rules.empty() || !crashes.empty() || rates.any();
  }

  /// True if any crash window has `id` down at `round`.
  [[nodiscard]] bool crashed(NodeId id, int round) const;

  /// Basic well-formedness for an n-node system; returns the first
  /// problem, or nullopt when the plan is sound.
  [[nodiscard]] std::optional<std::string> validate(int n) const;

  /// Canonical text form; parse(serialize()) == *this.
  [[nodiscard]] std::string serialize() const;

  /// Parses the text form. Returns nullopt (and sets `error`, if non-null)
  /// on the first malformed line.
  [[nodiscard]] static std::optional<FaultPlan> parse(
      const std::string& text, std::string* error = nullptr);

  /// A randomized-but-reproducible plan for an n-node, `rounds`-round
  /// execution: moderate background rates, sometimes a crash window and a
  /// couple of scripted rules — all drawn from `seed` alone (the same
  /// per-ordinal RNG discipline as src/sweep/).
  [[nodiscard]] static FaultPlan from_seed(std::uint64_t seed, int n,
                                           int rounds);

  /// One-line human summary ("2 rules, 1 crash, rates d=0.05/u=0/l=0.1").
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace da::inject
