#pragma once

#include <cstdint>

#include "clocksync/hardware_clock.hpp"

namespace da::clocksync {

/// Section 6.2: decouple clock failures from processor failures. Clock
/// hardware is orders of magnitude simpler than a processor, so a system
/// that tolerates u > N/3 *processor* faults can still assume fewer than a
/// third of the *clocks* fail — or add dedicated witness clocks (after
/// Paris's witnesses for replicated files) until it can.
struct WitnessConfig {
  int processors = 4;     // e.g. Figure 1(b): 2m+u channels + sensor
  int witness_clocks = 0; // extra clock-only nodes
  int faulty_clocks = 0;  // Byzantine clocks (two-faced)
  double drift_magnitude = 1e-5;
  double initial_offset_spread = 1e-3;
  std::uint64_t seed = 7;

  [[nodiscard]] int total_clocks() const {
    return processors + witness_clocks;
  }
  /// Classical bound: CNV synchronizes while 3*faulty < total.
  [[nodiscard]] bool clock_sync_possible() const {
    return 3 * faulty_clocks < total_clocks();
  }
};

struct WitnessResult {
  bool sync_possible = false;
  /// Fault-free skew after the CNV rounds (meaningful when sync_possible).
  double final_skew = 0.0;
  /// Skew before synchronization, for contrast.
  double initial_skew = 0.0;
};

/// Builds an ensemble per the config (two-faced faulty clocks) and runs
/// interactive-convergence rounds over *all* clocks, witnesses included.
/// Adding witnesses raises the number of tolerable clock faults from
/// floor((p-1)/3) to floor((p+w-1)/3) without touching the processors.
[[nodiscard]] WitnessResult run_witness_experiment(const WitnessConfig& config,
                                                   int rounds, double window);

}  // namespace da::clocksync
