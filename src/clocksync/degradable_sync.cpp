#include "clocksync/degradable_sync.hpp"

#include <algorithm>
#include <cmath>

#include "core/degradable_ic.hpp"
#include "util/contracts.hpp"

namespace da::clocksync {

namespace {

Value quantize(double reading, double quantum) {
  return Value::of(static_cast<std::int64_t>(std::llround(reading / quantum)));
}

double dequantize(Value v, double quantum) {
  return static_cast<double>(v.raw()) * quantum;
}

}  // namespace

DegradableSyncResult degradable_sync_round(
    ClockEnsemble& ensemble, double real_time,
    const DegradableSyncParams& params,
    const protocols::ic::AdversaryFactory& adversaries) {
  const int n = ensemble.n();
  const Config config{.n = n, .m = params.m, .u = params.u};
  DA_EXPECTS(config.valid());

  std::vector<NodeId> faulty;
  for (NodeId id = 0; id < n; ++id) {
    if (ensemble.is_faulty(id)) faulty.push_back(id);
  }

  // One degradable-IC round over quantized clock readings: node s's input
  // is its own clock's claim to itself (the agreement adversary distorts
  // what a faulty node tells others).
  std::vector<Value> inputs;
  inputs.reserve(static_cast<std::size_t>(n));
  for (NodeId s = 0; s < n; ++s) {
    Value reading = quantize(ensemble.read(s, s, real_time), params.quantum);
    if (reading.is_default()) reading = Value::of(1);
    inputs.push_back(reading);
  }
  const core::DicResult ic =
      core::run_degradable_ic(config, inputs, faulty, adversaries);
  const auto& vectors = ic.vectors;

  DegradableSyncResult result;

  // Detection + correction per fault-free node.
  std::vector<std::pair<NodeId, double>> adjusted;  // candidates for sync
  for (NodeId p = 0; p < n; ++p) {
    if (ensemble.is_faulty(p)) continue;
    const auto& vec = vectors.at(p);
    const int defaults = static_cast<int>(
        std::count_if(vec.begin(), vec.end(),
                      [](const Value& v) { return v.is_default(); }));
    if (defaults > params.m) {
      // Sound detection: f <= m can produce at most m default entries.
      result.detected.push_back(p);
      continue;
    }
    // Fault-tolerant midpoint: discard readings outside the egocentric
    // window (clipping wild lies, as CNV does), then drop the m lowest and
    // m highest of the remainder.
    const double own = ensemble.clock(p).read(real_time);
    std::vector<double> readings;
    for (const Value& v : vec) {
      if (v.is_default()) continue;
      const double r = dequantize(v, params.quantum);
      if (std::abs(r - own) <= params.window) readings.push_back(r);
    }
    std::sort(readings.begin(), readings.end());
    const int k = static_cast<int>(readings.size());
    if (k <= 2 * params.m) {
      // Too few plausible readings to correct safely; treat as detection
      // (only reachable when more than m senders fed implausible values).
      result.detected.push_back(p);
      continue;
    }
    const double target =
        (readings[static_cast<std::size_t>(params.m)] +
         readings[static_cast<std::size_t>(k - 1 - params.m)]) /
        2.0;
    ensemble.clock(p).adjust(target - own);
    adjusted.emplace_back(p, target);
  }

  // Largest epsilon-cluster among the adjusted fault-free clocks.
  std::sort(adjusted.begin(), adjusted.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::size_t best_lo = 0;
  std::size_t best_len = adjusted.empty() ? 0 : 1;
  std::size_t lo = 0;
  for (std::size_t hi = 0; hi < adjusted.size(); ++hi) {
    while (adjusted[hi].second - adjusted[lo].second > params.epsilon) ++lo;
    if (hi - lo + 1 > best_len) {
      best_len = hi - lo + 1;
      best_lo = lo;
    }
  }
  for (std::size_t i = best_lo; i < best_lo + best_len; ++i) {
    result.synced.push_back(adjusted[i].first);
  }
  std::sort(result.synced.begin(), result.synced.end());
  if (best_len >= 1) {
    result.synced_skew = adjusted[best_lo + best_len - 1].second -
                         adjusted[best_lo].second;
  }

  result.conjecture_holds =
      static_cast<int>(result.synced.size()) >= params.m + 1 ||
      static_cast<int>(result.detected.size()) >= params.m + 1;
  return result;
}

double DegradableSyncRunResult::max_skew_after() const {
  double worst = 0.0;
  for (double s : skew_after) worst = std::max(worst, s);
  return worst;
}

DegradableSyncRunResult degradable_sync_run(
    ClockEnsemble& ensemble, double start, double period, int rounds,
    const DegradableSyncParams& params,
    const protocols::ic::AdversaryFactory& adversaries) {
  DA_EXPECTS(rounds >= 1 && period > 0.0);
  DegradableSyncRunResult run;
  for (int r = 0; r < rounds; ++r) {
    const double now = start + r * period;
    run.skew_before.push_back(ensemble.skew(now));
    const DegradableSyncResult round =
        degradable_sync_round(ensemble, now, params, adversaries);
    run.skew_after.push_back(ensemble.skew(now, round.synced));
    run.synced_counts.push_back(static_cast<int>(round.synced.size()));
    run.detected_counts.push_back(static_cast<int>(round.detected.size()));
    run.rounds_conjecture_held += round.conjecture_holds ? 1 : 0;
  }
  return run;
}

}  // namespace da::clocksync
