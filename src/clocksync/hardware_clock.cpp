#include "clocksync/hardware_clock.hpp"

#include <algorithm>

namespace da::clocksync {

ClockEnsemble::ClockEnsemble(std::vector<HardwareClock> clocks,
                             std::vector<NodeId> faulty,
                             FaultyReading faulty_reading)
    : clocks_(std::move(clocks)),
      faulty_(std::move(faulty)),
      faulty_reading_(std::move(faulty_reading)) {
  DA_EXPECTS(!clocks_.empty());
  std::sort(faulty_.begin(), faulty_.end());
  for (NodeId id : faulty_) DA_EXPECTS(id >= 0 && id < n());
  DA_EXPECTS(faulty_.empty() || faulty_reading_ != nullptr);
}

bool ClockEnsemble::is_faulty(NodeId id) const {
  return std::binary_search(faulty_.begin(), faulty_.end(), id);
}

double ClockEnsemble::read(NodeId reader, NodeId owner,
                           double real_time) const {
  DA_EXPECTS(owner >= 0 && owner < n());
  if (is_faulty(owner)) return faulty_reading_(reader, owner, real_time);
  return clocks_[static_cast<std::size_t>(owner)].read(real_time);
}

HardwareClock& ClockEnsemble::clock(NodeId id) {
  DA_EXPECTS(id >= 0 && id < n());
  return clocks_[static_cast<std::size_t>(id)];
}

const HardwareClock& ClockEnsemble::clock(NodeId id) const {
  DA_EXPECTS(id >= 0 && id < n());
  return clocks_[static_cast<std::size_t>(id)];
}

double ClockEnsemble::skew(double real_time,
                           const std::vector<NodeId>& subset) const {
  std::vector<NodeId> nodes = subset;
  if (nodes.empty()) {
    for (NodeId id = 0; id < n(); ++id) {
      if (!is_faulty(id)) nodes.push_back(id);
    }
  }
  if (nodes.size() < 2) return 0.0;
  double lo = clocks_[static_cast<std::size_t>(nodes[0])].read(real_time);
  double hi = lo;
  for (NodeId id : nodes) {
    const double r = clocks_[static_cast<std::size_t>(id)].read(real_time);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  return hi - lo;
}

}  // namespace da::clocksync
