#pragma once

#include <functional>
#include <vector>

#include "util/contracts.hpp"
#include "util/ids.hpp"

namespace da::clocksync {

/// A drifting hardware clock: reads real time t as t*(1+drift) + offset.
/// Synchronization algorithms adjust the offset.
class HardwareClock {
 public:
  HardwareClock(double offset, double drift)
      : offset_(offset), drift_(drift) {}

  [[nodiscard]] double read(double real_time) const {
    return real_time * (1.0 + drift_) + offset_;
  }

  /// Apply a correction (adds to the offset).
  void adjust(double delta) { offset_ += delta; }

  [[nodiscard]] double offset() const { return offset_; }
  [[nodiscard]] double drift() const { return drift_; }

 private:
  double offset_;
  double drift_;
};

/// What a faulty clock tells a particular reader at a given real time.
/// Byzantine clocks may be two-faced: different readers can see different
/// values for the same clock — the behaviour that makes clock
/// synchronization impossible with one third faulty [3,5].
using FaultyReading =
    std::function<double(NodeId reader, NodeId owner, double real_time)>;

/// An ensemble of clocks, some of them Byzantine.
class ClockEnsemble {
 public:
  ClockEnsemble(std::vector<HardwareClock> clocks, std::vector<NodeId> faulty,
                FaultyReading faulty_reading);

  [[nodiscard]] int n() const { return static_cast<int>(clocks_.size()); }
  [[nodiscard]] bool is_faulty(NodeId id) const;
  [[nodiscard]] int fault_count() const {
    return static_cast<int>(faulty_.size());
  }

  /// What `reader` observes when it reads `owner`'s clock at `real_time`.
  /// Fault-free clocks read truthfully; faulty clocks answer through the
  /// adversary function.
  [[nodiscard]] double read(NodeId reader, NodeId owner,
                            double real_time) const;

  [[nodiscard]] HardwareClock& clock(NodeId id);
  [[nodiscard]] const HardwareClock& clock(NodeId id) const;

  /// Maximum pairwise difference of the fault-free clocks' readings at
  /// `real_time`, restricted to `subset` (empty = all fault-free).
  [[nodiscard]] double skew(double real_time,
                            const std::vector<NodeId>& subset = {}) const;

 private:
  std::vector<HardwareClock> clocks_;
  std::vector<NodeId> faulty_;
  FaultyReading faulty_reading_;
};

}  // namespace da::clocksync
