#pragma once

#include <cstdint>
#include <vector>

#include "clocksync/hardware_clock.hpp"
#include "protocols/ic/interactive_consistency.hpp"

namespace da::clocksync {

/// Parameters of one m/u-degradable clock synchronization round
/// (Section 6.1's proposed problem).
struct DegradableSyncParams {
  int m = 1;
  int u = 2;
  /// Seconds per agreement-value unit when quantizing clock readings.
  double quantum = 1e-6;
  /// Two clocks count as synchronized if they differ by at most this.
  double epsilon = 1e-3;
  /// Egocentric acceptance window (as in interactive convergence): agreed
  /// readings further than this from the node's own clock are discarded
  /// before the midpoint is taken. Bounds the leverage of faulty senders
  /// that pass plausible-looking values through agreement.
  double window = 0.1;
};

/// Result of one degradable sync round, evaluated against the paper's
/// conjecture: with more than 2m+u clocks and at most u faulty, either
/// (i) at least m+1 fault-free clocks are synchronized, or (ii) at least
/// m+1 fault-free nodes detect the existence of more than m faulty clocks.
struct DegradableSyncResult {
  /// Fault-free nodes that detected > m faults (more than m default
  /// entries in their agreed vector — a sound detector: with f <= m at
  /// most m entries can be V_d).
  std::vector<NodeId> detected;
  /// Largest set of fault-free, non-detecting nodes whose adjusted clocks
  /// agree within epsilon.
  std::vector<NodeId> synced;
  double synced_skew = 0.0;
  bool conjecture_holds = false;
};

/// Runs one synchronization round at `real_time`: every node distributes
/// its clock reading with m/u-degradable agreement (one instance per
/// sender, the degradable analogue of interactive consistency); each
/// fault-free node either detects or adjusts to the fault-tolerant
/// midpoint of its agreed vector (discarding the m lowest and m highest
/// non-default readings).
///
/// `adversaries` builds the agreement adversary per instance (as in the
/// IC baseline); it drives the clock-faulty nodes' Byzantine behaviour
/// inside agreement.
[[nodiscard]] DegradableSyncResult degradable_sync_round(
    ClockEnsemble& ensemble, double real_time,
    const DegradableSyncParams& params,
    const protocols::ic::AdversaryFactory& adversaries);

/// Long-run behaviour: periodic resynchronization of a drifting ensemble.
struct DegradableSyncRunResult {
  /// Fault-free skew just before each resync (drift accumulated over the
  /// period) and right after it (residual).
  std::vector<double> skew_before;
  std::vector<double> skew_after;
  /// Sizes of the synced cluster / detecting set per round.
  std::vector<int> synced_counts;
  std::vector<int> detected_counts;
  /// Rounds (out of the total) in which the paper's disjunction held.
  int rounds_conjecture_held = 0;

  [[nodiscard]] double max_skew_after() const;
};

/// Runs `rounds` resync rounds spaced `period` apart starting at `start`.
/// Between rounds the fault-free clocks drift apart at their hardware
/// rates; each round is one `degradable_sync_round`.
[[nodiscard]] DegradableSyncRunResult degradable_sync_run(
    ClockEnsemble& ensemble, double start, double period, int rounds,
    const DegradableSyncParams& params,
    const protocols::ic::AdversaryFactory& adversaries);

}  // namespace da::clocksync
