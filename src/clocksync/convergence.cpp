#include "clocksync/convergence.hpp"

#include <cmath>
#include <vector>

namespace da::clocksync {

double cnv_round(ClockEnsemble& ensemble, double real_time, double window) {
  const int n = ensemble.n();
  std::vector<double> corrections(static_cast<std::size_t>(n), 0.0);

  for (NodeId p = 0; p < n; ++p) {
    if (ensemble.is_faulty(p)) continue;
    const double own = ensemble.clock(p).read(real_time);
    double sum = 0.0;
    for (NodeId q = 0; q < n; ++q) {
      double r = ensemble.read(p, q, real_time);
      if (std::abs(r - own) > window) r = own;  // egocentric clip
      sum += r - own;
    }
    corrections[static_cast<std::size_t>(p)] = sum / n;
  }

  for (NodeId p = 0; p < n; ++p) {
    if (ensemble.is_faulty(p)) continue;
    ensemble.clock(p).adjust(corrections[static_cast<std::size_t>(p)]);
  }
  return ensemble.skew(real_time);
}

double cnv_run(ClockEnsemble& ensemble, double start, double period,
               int rounds, double window) {
  double skew = ensemble.skew(start);
  for (int r = 0; r < rounds; ++r) {
    skew = cnv_round(ensemble, start + r * period, window);
  }
  return skew;
}

}  // namespace da::clocksync
