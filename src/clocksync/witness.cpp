#include "clocksync/witness.hpp"

#include <memory>

#include "clocksync/convergence.hpp"
#include "util/rng.hpp"

namespace da::clocksync {

WitnessResult run_witness_experiment(const WitnessConfig& config, int rounds,
                                     double window) {
  Rng rng(config.seed);
  const int n = config.total_clocks();

  std::vector<HardwareClock> clocks;
  clocks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double offset =
        (rng.uniform() * 2.0 - 1.0) * config.initial_offset_spread;
    const double drift =
        (rng.uniform() * 2.0 - 1.0) * config.drift_magnitude;
    clocks.emplace_back(offset, drift);
  }

  // The last `faulty_clocks` ids are Byzantine and two-faced in the
  // classical worst-case way: each faulty clock answers relative to the
  // *reader's own clock* — just inside the acceptance window, pushing
  // even-numbered readers up and odd-numbered readers down. This is the
  // adversary behind the one-third impossibility [3,5]: it is never
  // clipped, and it drives the fault-free clocks apart at a rate the
  // honest averaging can only counter while 3f < n.
  std::vector<NodeId> faulty;
  for (int i = n - config.faulty_clocks; i < n; ++i) faulty.push_back(i);
  const auto ensemble_slot = std::make_shared<ClockEnsemble*>(nullptr);
  const FaultyReading two_faced = [ensemble_slot, window](NodeId reader,
                                                          NodeId /*owner*/,
                                                          double real_time) {
    const double own = (*ensemble_slot)->clock(reader).read(real_time);
    return own + (reader % 2 == 0 ? 0.9 : -0.9) * window;
  };

  ClockEnsemble ensemble(std::move(clocks), faulty, two_faced);
  *ensemble_slot = &ensemble;

  WitnessResult result;
  result.sync_possible = config.clock_sync_possible();
  result.initial_skew = ensemble.skew(0.0);
  result.final_skew = cnv_run(ensemble, 0.0, 1.0, rounds, window);
  return result;
}

}  // namespace da::clocksync
