#pragma once

#include "clocksync/hardware_clock.hpp"

namespace da::clocksync {

/// One resynchronization round of the interactive-convergence algorithm
/// (CNV, Lamport & Melliar-Smith — the classical software clock
/// synchronization the paper's Section 6 discusses): each fault-free node
/// reads every clock, replaces readings further than `window` from its own
/// by its own reading (the "egocentric" clip), and adjusts to the average.
///
/// Guarantees convergence while fewer than a third of the clocks are
/// faulty; with a third or more it can be defeated by two-faced clocks —
/// the impossibility [3,5] the degradable variant works around.
///
/// Returns the ensemble's fault-free skew after the adjustment.
double cnv_round(ClockEnsemble& ensemble, double real_time, double window);

/// Runs `rounds` CNV rounds spaced `period` apart starting at `start`;
/// returns the final fault-free skew.
double cnv_run(ClockEnsemble& ensemble, double start, double period,
               int rounds, double window);

}  // namespace da::clocksync
