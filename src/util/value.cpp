#include "util/value.hpp"

namespace da {

std::string Value::to_string() const {
  if (default_) return "V_d";
  return std::to_string(raw_);
}

}  // namespace da
