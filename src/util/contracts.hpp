#pragma once

#include <stdexcept>
#include <string>

namespace da::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* cond,
                                          const char* file, int line) {
  throw std::logic_error(std::string(kind) + " violated: " + cond + " at " +
                         file + ":" + std::to_string(line));
}

}  // namespace da::detail

/// Precondition check. Throws std::logic_error on violation. These guard
/// API boundaries (configuration time), not hot loops.
#define DA_EXPECTS(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::da::detail::contract_failure("precondition", #cond, __FILE__,      \
                                     __LINE__);                            \
  } while (false)

/// Postcondition / internal invariant check.
#define DA_ENSURES(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::da::detail::contract_failure("invariant", #cond, __FILE__,         \
                                     __LINE__);                            \
  } while (false)
