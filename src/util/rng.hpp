#pragma once

#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace da {

/// Mix a 64-bit value (SplitMix64 finalizer). Used to derive decision seeds
/// from (seed, from, to, round, ...) tuples so that adversary and network
/// behaviour is a pure function of the message identity — identical in the
/// deterministic simulator and the threaded runtime regardless of thread
/// interleaving.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit values into one (order-dependent).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a,
                                            std::uint64_t b) noexcept {
  return mix64(a ^ (0x9e3779b97f4a7c15ULL + (b << 1)));
}

/// Deterministic xoshiro256** PRNG. Self-contained so results are
/// reproducible across standard libraries and platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform in [0, 2^64).
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Uniform double in [0,1).
  double uniform() noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// A uniformly random k-subset of {0,...,n-1}, in increasing order.
  std::vector<int> subset(int n, int k);

 private:
  std::uint64_t s_[4];
};

}  // namespace da
