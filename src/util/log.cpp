#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace da {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_out_mutex;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo:  return "[info ] ";
    case LogLevel::kWarn:  return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    default:               return "";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  const std::lock_guard<std::mutex> lock(g_out_mutex);
  std::fputs(prefix(level), stderr);
  std::fputs(msg.c_str(), stderr);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace da
