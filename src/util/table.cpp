#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/contracts.hpp"

namespace da {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DA_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DA_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out = render_row(header_);
  std::string sep = "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

namespace {
std::function<void(const Table&)>& print_listener() {
  static std::function<void(const Table&)> listener;
  return listener;
}
}  // namespace

void Table::set_print_listener(std::function<void(const Table&)> listener) {
  print_listener() = std::move(listener);
}

void Table::print() const {
  std::fputs(to_string().c_str(), stdout);
  if (const auto& listener = print_listener()) listener(*this);
}

}  // namespace da
