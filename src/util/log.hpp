#pragma once

#include <sstream>
#include <string>

namespace da {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Defaults to kWarn so library users see problems but
/// benches/tests stay quiet. Thread-safe: the level is an atomic (callable
/// at any time, from any thread) and emitted lines are serialized by a
/// writer mutex, so concurrent DA_LOG lines never interleave.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

/// Stream-style logger: DA_LOG(kInfo) << "n=" << n;
/// Message is emitted (with a level prefix, atomically per line) when the
/// temporary dies at the end of the full expression.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { detail::log_line(level_, out_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace da

#define DA_LOG(lvl)                                      \
  if (::da::LogLevel::lvl < ::da::log_level()) {         \
  } else                                                 \
    ::da::LogStream(::da::LogLevel::lvl)
