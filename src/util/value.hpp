#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace da {

/// A protocol value.
///
/// The paper's model has ordinary values plus one distinguished *default
/// value* `V_d` which is "distinguishable from all other values" (Section 2).
/// We model that as a tagged 64-bit integer: `Value::of(x)` is an ordinary
/// value and `Value::def()` is `V_d`. `Value::of(x) != Value::def()` for
/// every `x`, including `x == 0`.
class Value {
 public:
  /// Default-constructed value is `V_d`.
  constexpr Value() noexcept = default;

  /// The distinguished default value `V_d`.
  [[nodiscard]] static constexpr Value def() noexcept { return Value{}; }

  /// An ordinary (non-default) value carrying `raw`.
  [[nodiscard]] static constexpr Value of(std::int64_t raw) noexcept {
    return Value(raw, /*is_default=*/false);
  }

  [[nodiscard]] constexpr bool is_default() const noexcept {
    return default_;
  }

  /// Payload of an ordinary value. Meaningless for `V_d` (returns 0).
  [[nodiscard]] constexpr std::int64_t raw() const noexcept { return raw_; }

  friend constexpr bool operator==(Value, Value) noexcept = default;
  friend constexpr auto operator<=>(Value, Value) noexcept = default;

  /// "V_d" for the default value, decimal payload otherwise.
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr Value(std::int64_t raw, bool is_default) noexcept
      : raw_(raw), default_(is_default) {}

  std::int64_t raw_ = 0;
  bool default_ = true;
};

}  // namespace da

template <>
struct std::hash<da::Value> {
  std::size_t operator()(const da::Value& v) const noexcept {
    const auto h = std::hash<std::int64_t>{}(v.raw());
    return v.is_default() ? ~h : h;
  }
};
