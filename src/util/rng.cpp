#include "util/rng.hpp"

#include <algorithm>
#include <bit>

namespace da {

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed the four lanes with SplitMix64 per the xoshiro authors' advice.
  std::uint64_t x = seed;
  for (auto& lane : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    lane = mix64(x);
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  DA_EXPECTS(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  DA_EXPECTS(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit span
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<int> Rng::subset(int n, int k) {
  DA_EXPECTS(0 <= k && k <= n);
  // Floyd's algorithm.
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(k));
  for (int j = n - k; j < n; ++j) {
    const int t = static_cast<int>(below(static_cast<std::uint64_t>(j) + 1));
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace da
