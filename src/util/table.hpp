#pragma once

#include <cstddef>
#include <string>
#include <type_traits>
#include <vector>

namespace da {

/// A minimal ASCII table printer used by the bench harness to print the
/// paper's tables (minimum node counts, outcome classifications, ...) in a
/// readable row/column format.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format anything streamable into cells.
  template <typename... Ts>
  void row(const Ts&... cells) {
    add_row({cell_to_string(cells)...});
  }

  /// Render as an aligned ASCII table, with a separator under the header.
  [[nodiscard]] std::string to_string() const;

  /// Print to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string cell_to_string(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return std::to_string(v);
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace da
