#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

namespace da {

/// A minimal ASCII table printer used by the bench harness to print the
/// paper's tables (minimum node counts, outcome classifications, ...) in a
/// readable row/column format.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Optional machine-readable identifier, carried into structured exports
  /// (the bench `--json` reports name each captured table with it).
  void set_name(std::string name) { name_ = std::move(name); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Adds a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format anything streamable into cells.
  template <typename... Ts>
  void row(const Ts&... cells) {
    add_row({cell_to_string(cells)...});
  }

  /// Render as an aligned ASCII table, with a separator under the header.
  [[nodiscard]] std::string to_string() const;

  /// Print to stdout (and notify the print listener, if any).
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& cells() const {
    return rows_;
  }

  /// Installs a process-wide observer invoked by every `print()` with the
  /// printed table; pass nullptr to uninstall. Lets a reporter capture
  /// tables as they are printed without threading itself through every
  /// print site. Not thread-safe: install before spawning workers.
  static void set_print_listener(std::function<void(const Table&)> listener);

 private:
  template <typename T>
  static std::string cell_to_string(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return std::to_string(v);
    }
  }

  std::string name_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace da
