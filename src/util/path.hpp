#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/contracts.hpp"
#include "util/ids.hpp"

namespace da {

/// A relay chain for EIG-style protocols: the sequence of node ids a value
/// travelled through, starting at the original sender. Paths in BYZ(t,m)
/// never repeat a node and never exceed m+1 hops, so a small inline array
/// avoids per-message heap allocation in the simulator's hot path.
class Path {
 public:
  static constexpr std::size_t kMaxLen = 12;

  constexpr Path() noexcept = default;

  Path(std::initializer_list<NodeId> ids) {
    DA_EXPECTS(ids.size() <= kMaxLen);
    for (NodeId id : ids) nodes_[len_++] = id;
  }

  [[nodiscard]] constexpr std::size_t size() const noexcept { return len_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return len_ == 0; }

  [[nodiscard]] constexpr NodeId operator[](std::size_t i) const noexcept {
    return nodes_[i];
  }

  [[nodiscard]] constexpr NodeId front() const noexcept { return nodes_[0]; }
  [[nodiscard]] constexpr NodeId back() const noexcept {
    return nodes_[len_ - 1];
  }

  void push_back(NodeId id) {
    DA_EXPECTS(len_ < kMaxLen);
    nodes_[len_++] = id;
  }

  void pop_back() {
    DA_EXPECTS(len_ > 0);
    --len_;
  }

  [[nodiscard]] bool contains(NodeId id) const noexcept {
    return std::find(nodes_.begin(), nodes_.begin() + len_, id) !=
           nodes_.begin() + len_;
  }

  /// All elements pairwise distinct?
  [[nodiscard]] bool distinct() const noexcept {
    for (std::size_t i = 0; i < len_; ++i)
      for (std::size_t j = i + 1; j < len_; ++j)
        if (nodes_[i] == nodes_[j]) return false;
    return true;
  }

  /// A copy of this path with `id` appended.
  [[nodiscard]] Path extended(NodeId id) const {
    Path p = *this;
    p.push_back(id);
    return p;
  }

  [[nodiscard]] const NodeId* begin() const noexcept { return nodes_.data(); }
  [[nodiscard]] const NodeId* end() const noexcept {
    return nodes_.data() + len_;
  }

  friend bool operator==(const Path& a, const Path& b) noexcept {
    return a.len_ == b.len_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

  /// Lexicographic order (used for deterministic iteration in maps).
  friend bool operator<(const Path& a, const Path& b) noexcept {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < len_; ++i) {
      if (i) s += ",";
      s += std::to_string(nodes_[i]);
    }
    return s + "]";
  }

  [[nodiscard]] std::size_t hash() const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::size_t i = 0; i < len_; ++i) {
      h ^= static_cast<std::uint64_t>(nodes_[i]) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h ^ len_);
  }

 private:
  std::array<NodeId, kMaxLen> nodes_{};
  std::uint8_t len_ = 0;
};

}  // namespace da

template <>
struct std::hash<da::Path> {
  std::size_t operator()(const da::Path& p) const noexcept { return p.hash(); }
};
