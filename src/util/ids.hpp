#pragma once

#include <cstdint>

namespace da {

/// Identifier of a node (sender or receiver). Nodes are numbered 0..N-1.
using NodeId = std::int32_t;

/// Sentinel meaning "no node".
inline constexpr NodeId kNoNode = -1;

}  // namespace da
