#include "service/service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "core/byz.hpp"
#include "faults/adversaries.hpp"
#include "inject/injection_network.hpp"
#include "obs/metrics.hpp"
#include "protocols/lamport/om.hpp"
#include "sweep/sweep.hpp"
#include "util/contracts.hpp"

namespace da::service {

namespace {

const obs::Counter& arrivals_counter() {
  static const obs::Counter c("service.arrivals");
  return c;
}
const obs::Counter& admitted_counter() {
  static const obs::Counter c("service.admitted");
  return c;
}
const obs::Counter& completed_counter() {
  static const obs::Counter c("service.completed");
  return c;
}
const obs::Counter& shed_counter() {
  static const obs::Counter c("service.shed");
  return c;
}
const obs::Counter& deadline_missed_counter() {
  static const obs::Counter c("service.deadline_missed");
  return c;
}
const obs::Counter& instances_counter() {
  static const obs::Counter c("service.instances_completed");
  return c;
}
const obs::Counter& slots_created_counter() {
  static const obs::Counter c("service.slots_created");
  return c;
}
const obs::Counter& slot_reuse_counter() {
  static const obs::Counter c("service.slot_reuse");
  return c;
}
const obs::Counter& ticks_counter() {
  static const obs::Counter c("service.ticks");
  return c;
}
const obs::Counter& rounds_driven_counter() {
  static const obs::Counter c("service.rounds_driven");
  return c;
}
// Per-class slices of the lifecycle counters ("service.<class>.*" in the
// catalogue, docs/OBSERVABILITY.md): one static handle per class, indexed
// by the enum.
const obs::Counter& class_completed_counter(AdmissionClass cls) {
  static const obs::Counter c[kAdmissionClassCount] = {
      obs::Counter("service.high.completed"),
      obs::Counter("service.normal.completed"),
      obs::Counter("service.low.completed")};
  return c[static_cast<std::size_t>(index_of(cls))];
}
const obs::Counter& class_shed_counter(AdmissionClass cls) {
  static const obs::Counter c[kAdmissionClassCount] = {
      obs::Counter("service.high.shed"), obs::Counter("service.normal.shed"),
      obs::Counter("service.low.shed")};
  return c[static_cast<std::size_t>(index_of(cls))];
}
const obs::Counter& class_deadline_counter(AdmissionClass cls) {
  static const obs::Counter c[kAdmissionClassCount] = {
      obs::Counter("service.high.deadline_missed"),
      obs::Counter("service.normal.deadline_missed"),
      obs::Counter("service.low.deadline_missed")};
  return c[static_cast<std::size_t>(index_of(cls))];
}
// Latency-shaped metrics use quantile sketches (p50/p90/p99/p999 in the
// registry snapshot) rather than the power-of-two histograms: virtual-time
// latencies cluster within a few octaves, where 2.2%-relative-error
// sketch buckets resolve what octave histograms blur.
const obs::Quantile& decision_latency_quantile() {
  static const obs::Quantile q("service.decision_latency");
  return q;
}
const obs::Quantile& queue_wait_quantile() {
  static const obs::Quantile q("service.queue_wait");
  return q;
}
const obs::Quantile& class_latency_quantile(AdmissionClass cls) {
  static const obs::Quantile q[kAdmissionClassCount] = {
      obs::Quantile("service.high.decision_latency"),
      obs::Quantile("service.normal.decision_latency"),
      obs::Quantile("service.low.decision_latency")};
  return q[static_cast<std::size_t>(index_of(cls))];
}
const obs::Quantile& class_queue_wait_quantile(AdmissionClass cls) {
  static const obs::Quantile q[kAdmissionClassCount] = {
      obs::Quantile("service.high.queue_wait"),
      obs::Quantile("service.normal.queue_wait"),
      obs::Quantile("service.low.queue_wait")};
  return q[static_cast<std::size_t>(index_of(cls))];
}
const obs::Histogram& tick_ms_histogram() {
  static const obs::Histogram h("service.tick_ms");
  return h;
}

#ifndef DA_METRICS_DISABLED
constexpr bool kSpansEnabled = true;
#else
constexpr bool kSpansEnabled = false;
#endif

std::string job_span_id(std::uint64_t job) {
  return "job:" + std::to_string(job);
}

std::string inst_span_id(std::uint64_t job, int sub) {
  return "inst:" + std::to_string(job) + '.' + std::to_string(sub);
}

/// Appends nonzero injection tallies (`base == nullptr`: totals; else the
/// delta since `base`) as `inj_*` / `rule<k>` span tags — the correlation
/// handles span_inspect uses to attribute delay to a FaultPlan rule.
void add_injection_tags(
    std::vector<std::pair<std::string, std::int64_t>>& tags,
    const inject::InjectionStats& cur, const inject::InjectionStats* base) {
  const auto add = [&tags](const char* key, std::uint64_t c,
                           std::uint64_t b) {
    if (c > b) tags.emplace_back(key, static_cast<std::int64_t>(c - b));
  };
  add("inj_examined", cur.examined, base != nullptr ? base->examined : 0);
  add("inj_dropped", cur.dropped, base != nullptr ? base->dropped : 0);
  add("inj_duplicated", cur.duplicated,
      base != nullptr ? base->duplicated : 0);
  add("inj_delayed", cur.delayed, base != nullptr ? base->delayed : 0);
  add("inj_crash_dropped", cur.crash_dropped,
      base != nullptr ? base->crash_dropped : 0);
  for (std::size_t k = 0; k < cur.rule_hits.size(); ++k) {
    const std::uint64_t b =
        base != nullptr && k < base->rule_hits.size() ? base->rule_hits[k]
                                                      : 0;
    if (cur.rule_hits[k] > b) {
      tags.emplace_back("rule" + std::to_string(k),
                        static_cast<std::int64_t>(cur.rule_hits[k] - b));
    }
  }
}

constexpr double kNever = std::numeric_limits<double>::infinity();

std::uint64_t fold_value(std::uint64_t h, Value v) {
  return mix64(h, v.is_default() ? ~std::uint64_t{0}
                                 : static_cast<std::uint64_t>(v.raw()));
}

std::uint64_t fold_double(std::uint64_t h, double d) {
  return mix64(h, std::bit_cast<std::uint64_t>(d));
}

/// Severity order for folding an IC job's per-coordinate conditions into
/// one: report the strongest condition that *applied* (a faulty-sender
/// coordinate under D.2/D.4 outranks the fault-free ones).
int condition_rank(Condition c) {
  switch (c) {
    case Condition::kNone:
      return 0;
    case Condition::kD1:
      return 1;
    case Condition::kD3:
      return 2;
    case Condition::kD2:
      return 3;
    case Condition::kD4:
      return 4;
  }
  return 0;
}

}  // namespace

const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kByz:
      return "byz";
    case JobKind::kIc:
      return "ic";
  }
  return "?";
}

const char* to_string(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShedOldest:
      return "shed-oldest";
  }
  return "?";
}

std::string JobTemplate::to_string() const {
  char buf[112];
  std::snprintf(buf, sizeof buf, "%s n=%d m=%d u=%d sender=%d f=%zu class=%s",
                service::to_string(kind), config.n, config.m, config.u,
                static_cast<int>(sender), faulty.size(),
                service::to_string(admission));
  return buf;
}

std::vector<JobTemplate> default_mix() {
  std::vector<JobTemplate> mix;
  // Degraded-range BYZ (f = 2 > m = 1): exercises D.3.
  mix.push_back({JobKind::kByz, Config{.n = 7, .m = 1, .u = 4}, 0,
                 Value::of(17), {2, 3}, AdmissionClass::kNormal, 0.0});
  // Minimal feasible BYZ (f = 1 = m): exercises D.1; rides first class.
  mix.push_back({JobKind::kByz, Config{.n = 4, .m = 1, .u = 1}, 0,
                 Value::of(17), {1}, AdmissionClass::kHigh, 0.0});
  // Exact-range BYZ at m = 2 (3 rounds, the heavy shape): best effort.
  mix.push_back({JobKind::kByz, Config{.n = 7, .m = 2, .u = 2}, 0,
                 Value::of(17), {1, 2}, AdmissionClass::kLow, 0.0});
  // Interactive consistency: 4 parallel OM(1) coordinates per job.
  mix.push_back({JobKind::kIc, Config{.n = 4, .m = 1, .u = 1}, 0,
                 Value::of(17), {3}, AdmissionClass::kNormal, 0.0});
  return mix;
}

int draw_template_index(std::uint64_t seed, std::uint64_t id,
                        std::size_t mix_size) {
  return static_cast<int>(mix64(seed, mix64(id, 0x70)) % mix_size);
}

int draw_adversary_index(std::uint64_t seed, std::uint64_t id,
                         std::size_t adversary_count) {
  return static_cast<int>(mix64(seed, mix64(id, 0xad)) % adversary_count);
}

/// One recyclable scenario shape: everything needed to stamp out (or
/// rewind) an instance of a specific (protocol, config, sender, value,
/// faulty) combination. The `start` snapshot is taken at the round-0
/// pre-dispatch boundary, where no adversary decision has happened yet.
struct AgreementService::Shape {
  JobKind kind = JobKind::kByz;
  ScenarioSpec spec{};  // config/sender/value/faulty, for the checker
  sim::RunOptions options{};
  sim::RoundEngine::Snapshot start{};
  int rounds = 0;

  [[nodiscard]] std::vector<std::unique_ptr<sim::Process>> make() const {
    if (kind == JobKind::kByz) {
      return core::make_byz_processes(spec.config, spec.sender,
                                      spec.sender_value);
    }
    return protocols::lamport::make_om_processes(
        spec.config.n, spec.config.m, spec.sender, spec.sender_value);
  }
};

/// A pooled engine bound to one shape. Recycling = `restore(start)` +
/// `set_adversary`; the engine's buffers are assigned over, never
/// reallocated, so a warm pool admits instances without touching the
/// allocator.
struct AgreementService::InstanceSlot {
  int shape_index = 0;
  std::uint64_t job_id = 0;  // local job index (records_[job_id].id = global)
  int sub = 0;  // coordinate index within the job (0 for kByz)
  sim::RoundEngine engine;
  /// Per-slot fault transport, constructed lazily on the first injected
  /// admission and re-seeded per job. One worker advances one slot per
  /// tick, so its plain stats counters are race-free.
  std::unique_ptr<inject::InjectionNetwork> net;
  bool injected = false;
  // Span bookkeeping (meaningful only while record_spans is on).
  double admitted_at = 0.0;
  double last_time = 0.0;               // previous tick boundary
  inject::InjectionStats last_stats{};  // injection tallies at it

  InstanceSlot(int shape, const Shape& s)
      : shape_index(shape), engine(s.make(), s.options) {}
};

struct AgreementService::ActiveJob {
  int remaining_subs = 0;
};

AgreementService::AgreementService(ServiceConfig config)
    : config_(std::move(config)) {
  DA_EXPECTS(config_.cap >= 1);
  DA_EXPECTS(config_.round_period > 0.0);
  DA_EXPECTS(config_.inject_every >= 1);
  DA_EXPECTS(config_.sample_every >= 0.0);
  inject_enabled_ = config_.fault_plan.active();
  recording_ = kSpansEnabled && config_.record_spans;
  mix_ = config_.mix.empty() ? default_mix() : config_.mix;
  // The stateless adversary family instances draw from; all derive their
  // behaviour from message identity alone, so one object serves any
  // number of concurrent instances on any number of workers.
  adversaries_.push_back(faults::silent());
  adversaries_.push_back(faults::default_spammer());
  adversaries_.push_back(faults::constant_liar(Value::of(5)));
  adversaries_.push_back(faults::equivocator(Value::of(17), Value::of(5)));
  adversaries_.push_back(
      faults::pivot_equivocator(Value::of(17), Value::of(5), 3));
  adversaries_.push_back(faults::crash_after(0));
  build_shapes();
  const int jobs = sweep::resolve_jobs(config_.jobs);
  config_.jobs = jobs;
  if (jobs > 1) pool_ = std::make_unique<sweep::ThreadPool>(jobs);
}

AgreementService::~AgreementService() = default;

void AgreementService::build_shapes() {
  template_shapes_.resize(mix_.size());
  for (std::size_t t = 0; t < mix_.size(); ++t) {
    const JobTemplate& tmpl = mix_[t];
    DA_EXPECTS(tmpl.config.valid());
    // The structured admission-boundary rejection: a well-formed config
    // the engine cannot execute (e.g. n=2, m=1) is refused here, not by
    // a contract failure rounds deep in EIG setup.
    if (!tmpl.config.engine_runnable()) throw UnsupportedConfig(tmpl.config);
    const int width =
        tmpl.kind == JobKind::kIc ? tmpl.config.n : 1;
    DA_EXPECTS(width <= config_.cap);  // a wider job could never admit
    for (int sub = 0; sub < width; ++sub) {
      auto shape = std::make_unique<Shape>();
      shape->kind = tmpl.kind == JobKind::kByz ? JobKind::kByz : JobKind::kIc;
      shape->spec.config = tmpl.config;
      if (tmpl.kind == JobKind::kIc) {
        // Coordinate `sub`: node `sub` distributes its private value via
        // OM(m); u = m (OM makes no degraded promise).
        shape->spec.config.u = tmpl.config.m;
        shape->spec.sender = static_cast<NodeId>(sub);
        shape->spec.sender_value =
            Value::of(tmpl.sender_value.raw() + sub);
      } else {
        shape->spec.sender = tmpl.sender;
        shape->spec.sender_value = tmpl.sender_value;
      }
      shape->spec.faulty = tmpl.faulty;
      shape->options.faulty = tmpl.faulty;
      // A non-null placeholder satisfies the engine's faulty => adversary
      // contract; every admission installs the job's real adversary.
      shape->options.adversary =
          tmpl.faulty.empty() ? nullptr : adversaries_.front().get();
      // Template engine: collect round-0 sends once, snapshot the
      // pre-dispatch boundary. Every instance of this shape starts as a
      // restore of this snapshot.
      sim::RoundEngine tmpl_engine(shape->make(), shape->options);
      tmpl_engine.begin();
      shape->start = tmpl_engine.snapshot();
      shape->rounds = tmpl_engine.total_rounds();
      template_shapes_[t].push_back(static_cast<int>(shapes_.size()));
      shapes_.push_back(std::move(shape));
    }
  }
  free_slots_.resize(shapes_.size());
}

AgreementService::InstanceSlot* AgreementService::acquire_slot(
    int shape_index) {
  auto& free = free_slots_[static_cast<std::size_t>(shape_index)];
  if (!free.empty()) {
    InstanceSlot* slot = free.back();
    free.pop_back();
    ++slot_reuses_;
    slot_reuse_counter().add();
    return slot;
  }
  ++slots_created_;
  slots_created_counter().add();
  slots_.push_back(std::make_unique<InstanceSlot>(
      shape_index, *shapes_[static_cast<std::size_t>(shape_index)]));
  return slots_.back().get();
}

void AgreementService::release_slot(InstanceSlot* slot) {
  free_slots_[static_cast<std::size_t>(slot->shape_index)].push_back(slot);
}

bool AgreementService::try_admit(std::uint64_t local, double now) {
  JobRecord& rec = records_[local];
  const auto& shape_ids =
      template_shapes_[static_cast<std::size_t>(rec.template_index)];
  const int width = static_cast<int>(shape_ids.size());
  if (active_width_ + width > config_.cap) return false;
  const bool inject = inject_enabled_ && job_injected(rec.id);
  for (int sub = 0; sub < width; ++sub) {
    const int shape_index = shape_ids[static_cast<std::size_t>(sub)];
    InstanceSlot* slot = acquire_slot(shape_index);
    const Shape& shape = *shapes_[static_cast<std::size_t>(shape_index)];
    slot->job_id = local;
    slot->sub = sub;
    slot->engine.restore(shape.start);
    slot->engine.set_adversary(
        shape.options.faulty.empty()
            ? nullptr
            : adversaries_[static_cast<std::size_t>(rec.adversary_index)]
                  .get());
    // Fault transport: selected jobs route every dispatch through a
    // per-slot injection network re-seeded per job (by *global* id, so
    // the fault pattern is invariant under front-end sharding). Sound
    // for the same reason set_adversary is — the restore boundary
    // precedes every dispatch of this instance.
    if (inject) {
      if (slot->net == nullptr) {
        slot->net =
            std::make_unique<inject::InjectionNetwork>(config_.fault_plan);
      }
      slot->net->reseed(mix64(config_.fault_plan.seed, mix64(rec.id, 0x1f)));
      slot->net->reset_stats();
      slot->engine.set_network(slot->net.get());
      slot->injected = true;
    } else if (slot->injected) {
      slot->engine.set_network(nullptr);
      slot->injected = false;
    }
    if (recording_) {
      slot->admitted_at = now;
      slot->last_time = now;
      slot->last_stats =
          slot->injected ? slot->net->stats() : inject::InjectionStats{};
    }
    active_.push_back(slot);
  }
  active_width_ += width;
  peak_active_ = std::max(peak_active_, active_width_);
  jobs_[local].remaining_subs = width;
  rec.admitted = now;
  admitted_counter().add();
  queue_wait_quantile().record(rec.queue_wait());
  class_queue_wait_quantile(rec.admission).record(rec.queue_wait());
  queue_sketch_.record(rec.queue_wait());
  if (recording_) {
    obs::Span span;
    span.name = "queue";
    span.job = static_cast<std::int64_t>(rec.id);
    span.t0 = rec.arrival;
    span.t1 = now;
    span.parent = job_span_id(rec.id);
    span.tags.emplace_back("width", width);
    span.tags.emplace_back("class", index_of(rec.admission));
    spans_.push_back(std::move(span));
  }
  return true;
}

void AgreementService::shed_job(std::uint64_t local, double at,
                                bool deadline_missed) {
  JobRecord& rec = records_[local];
  rec.shed = true;
  rec.deadline_missed = deadline_missed;
  rec.applied = Condition::kNone;
  rec.shed_at = at;
  ++finished_this_run_;
  ++shed_so_far_;
  shed_counter().add();
  class_shed_counter(rec.admission).add();
  if (deadline_missed) {
    ++deadline_missed_so_far_;
    deadline_missed_counter().add();
    class_deadline_counter(rec.admission).add();
  }
  if (recording_) {
    obs::Span span;
    span.name = "job";
    span.job = static_cast<std::int64_t>(rec.id);
    span.t0 = rec.arrival;
    span.t1 = at;
    span.tags.emplace_back("tmpl", rec.template_index);
    span.tags.emplace_back("adv", rec.adversary_index);
    span.tags.emplace_back("class", index_of(rec.admission));
    span.tags.emplace_back(deadline_missed ? "deadline" : "shed", 1);
    spans_.push_back(std::move(span));
  }
}

void AgreementService::expire_deadlines(double now) {
  // Strictly-before semantics: a job whose deadline falls exactly on an
  // event instant may still be admitted at that instant.
  admission_.expire(now, [this](AdmissionClass, const QueuedJob& victim) {
    shed_job(victim.job, victim.deadline_at, /*deadline_missed=*/true);
  });
}

void AgreementService::drain_queue(double now) {
  // Class-major head-of-line: the oldest job of the highest occupied
  // class admits first, and a blocked head blocks everything behind it —
  // admission order is part of the determinism contract.
  while (!admission_.empty() && try_admit(admission_.front().job, now)) {
    admission_.pop_front();
  }
}

void AgreementService::complete_sub_instance(InstanceSlot& slot, double now) {
  const Shape& shape = *shapes_[static_cast<std::size_t>(slot.shape_index)];
  slot.engine.finish_into(scratch_result_);
  JobRecord& rec = records_[slot.job_id];
  const ConditionReport report =
      check_conditions(shape.spec, scratch_result_.decisions);
  if (condition_rank(report.applied) > condition_rank(rec.applied)) {
    rec.applied = report.applied;
  }
  rec.satisfied = rec.satisfied && report.satisfied;
  std::uint64_t h = rec.decisions_digest;
  for (const auto& [node, value] : scratch_result_.decisions) {
    h = mix64(h, static_cast<std::uint64_t>(node));
    h = fold_value(h, value);
  }
  rec.decisions_digest = h;
  instances_counter().add();
  if (recording_) {
    obs::Span inst;
    inst.name = "inst";
    inst.job = static_cast<std::int64_t>(rec.id);
    inst.sub = slot.sub;
    inst.t0 = slot.admitted_at;
    inst.t1 = now;
    inst.parent = job_span_id(rec.id);
    inst.tags.emplace_back("rounds", shape.rounds);
    if (slot.injected) {
      add_injection_tags(inst.tags, slot.net->stats(), nullptr);
    }
    spans_.push_back(std::move(inst));
  }
  ActiveJob& job = jobs_[slot.job_id];
  if (--job.remaining_subs == 0) {
    rec.completed = now;
    ++finished_this_run_;
    ++completed_so_far_;
    ++completed_by_class_[static_cast<std::size_t>(index_of(rec.admission))];
    // Counted and recorded at completion time (not in the end-of-run
    // fold) so mid-run registry snapshots, periodic samples and the
    // `service.completed` counter all agree at every instant.
    completed_counter().add();
    class_completed_counter(rec.admission).add();
    decision_latency_quantile().record(rec.latency());
    class_latency_quantile(rec.admission).record(rec.latency());
    latency_sketch_.record(rec.latency());
    class_latency_[static_cast<std::size_t>(index_of(rec.admission))].record(
        rec.latency());
    if (recording_) {
      obs::Span job_span;
      job_span.name = "job";
      job_span.job = static_cast<std::int64_t>(rec.id);
      job_span.t0 = rec.arrival;
      job_span.t1 = now;
      job_span.tags.emplace_back("tmpl", rec.template_index);
      job_span.tags.emplace_back("adv", rec.adversary_index);
      job_span.tags.emplace_back("class", index_of(rec.admission));
      spans_.push_back(std::move(job_span));
      obs::Span decide;
      decide.name = "decide";
      decide.job = static_cast<std::int64_t>(rec.id);
      decide.t0 = now;
      decide.t1 = now;
      decide.parent = job_span_id(rec.id);
      decide.tags.emplace_back("ok", rec.satisfied ? 1 : 0);
      decide.tags.emplace_back("cond",
                               static_cast<std::int64_t>(rec.applied));
      spans_.push_back(std::move(decide));
    }
  }
}

void AgreementService::tick(double now) {
  const obs::ScopedTimer timer(tick_ms_histogram());
  ticks_counter().add();
  ++ticks_this_run_;
  rounds_driven_counter().add(active_.size());
  // Batched round dispatch: every co-scheduled instance advances exactly
  // one synchronous round. Instances are disjoint process sets, so the
  // batch parallelizes freely; the records stay identical for any worker
  // count because each slot's outcome is a pure function of its own state.
  const auto advance = [](InstanceSlot* slot) {
    slot->engine.dispatch_pending();
    slot->engine.process_round();
  };
  if (pool_ != nullptr && active_.size() > 1) {
    const std::size_t chunks =
        std::min<std::size_t>(active_.size(),
                              static_cast<std::size_t>(pool_->threads()) * 4);
    const std::size_t per = (active_.size() + chunks - 1) / chunks;
    for (std::size_t begin = 0; begin < active_.size(); begin += per) {
      const std::size_t end = std::min(begin + per, active_.size());
      pool_->submit([this, begin, end, &advance] {
        const obs::MetricsScope worker_scope;
        for (std::size_t i = begin; i < end; ++i) advance(active_[i]);
      });
    }
    pool_->wait_idle();
  } else {
    for (InstanceSlot* slot : active_) advance(slot);
  }
  // Sequential completion scan in active order (deterministic): fold
  // finished sub-instances into their job records and recycle the slots.
  std::size_t kept = 0;
  for (InstanceSlot* slot : active_) {
    if (recording_) {
      // The round this tick just processed, [previous boundary, now],
      // tagged with the injection deltas it incurred.
      obs::Span span;
      span.name = "round";
      span.job = static_cast<std::int64_t>(records_[slot->job_id].id);
      span.sub = slot->sub;
      span.round = slot->engine.rounds_processed() - 1;
      span.t0 = slot->last_time;
      span.t1 = now;
      span.parent = inst_span_id(records_[slot->job_id].id, slot->sub);
      if (slot->injected) {
        const inject::InjectionStats& cur = slot->net->stats();
        add_injection_tags(span.tags, cur, &slot->last_stats);
        slot->last_stats = cur;
      }
      slot->last_time = now;
      spans_.push_back(std::move(span));
    }
    if (!slot->engine.done()) {
      active_[kept++] = slot;
      continue;
    }
    complete_sub_instance(*slot, now);
    release_slot(slot);
    --active_width_;
    if (recording_) {
      obs::Span span;
      span.name = "recycle";
      span.job = static_cast<std::int64_t>(records_[slot->job_id].id);
      span.sub = slot->sub;
      span.t0 = now;
      span.t1 = now;
      span.parent = inst_span_id(records_[slot->job_id].id, slot->sub);
      spans_.push_back(std::move(span));
    }
  }
  active_.resize(kept);
}

void AgreementService::begin_run(std::uint64_t expected) {
  DA_EXPECTS(active_.empty());
  records_.clear();
  records_.reserve(expected);
  jobs_.clear();
  jobs_.reserve(expected);
  admission_.clear();
  spans_.clear();
  samples_.clear();
  latency_sketch_.clear();
  queue_sketch_.clear();
  for (auto& sketch : class_latency_) sketch.clear();
  completed_so_far_ = 0;
  shed_so_far_ = 0;
  deadline_missed_so_far_ = 0;
  completed_by_class_.fill(0);
  finished_this_run_ = 0;  // completed + shed
  ticks_this_run_ = 0;
  peak_active_ = 0;
  next_sample_ = config_.sample_every > 0.0 ? config_.sample_every : kNever;
}

void AgreementService::offer_job(const JobOffer& offer, double now) {
  // Sweep expired deadlines first: an expired job must not block (or be
  // counted against) this arrival's admission.
  expire_deadlines(now);
  arrivals_counter().add();
  const std::uint64_t local = records_.size();
  records_.emplace_back();
  jobs_.emplace_back();
  JobRecord& rec = records_.back();
  rec.id = offer.id;
  rec.arrival = now;
  rec.template_index = offer.template_index;
  rec.adversary_index = offer.adversary_index;
  const JobTemplate& tmpl =
      mix_[static_cast<std::size_t>(rec.template_index)];
  rec.admission = tmpl.admission;
  // Class-aware admission: an arrival may overtake queued *lower*-class
  // jobs, but queues behind its own class (FIFO) and higher ones. With a
  // single class this is exactly the old "admit iff the queue is empty".
  if (!admission_.blocks(tmpl.admission) && try_admit(local, now)) {
    return;  // admitted on arrival
  }
  QueuedJob queued;
  queued.job = local;
  queued.deadline_at = tmpl.deadline > 0.0 ? now + tmpl.deadline : kNoDeadline;
  queued.width = static_cast<int>(
      template_shapes_[static_cast<std::size_t>(rec.template_index)].size());
  admission_.push(tmpl.admission, queued);
  if (config_.policy == OverloadPolicy::kShedOldest &&
      admission_.size() > config_.queue_cap) {
    const QueuedJob victim = admission_.pop_shed_victim();
    shed_job(victim.job, now, /*deadline_missed=*/false);
  }
}

void AgreementService::step(double now) {
  tick(now);  // bumps finished_this_run_ as jobs settle
  // Completions freed capacity; expire stale deadlines, then admit the
  // queue head(s) at tick time.
  expire_deadlines(now);
  drain_queue(now);
}

ServiceResult AgreementService::end_run(double makespan) {
  ServiceResult result;
  result.records = records_;
  result.completed = completed_so_far_;
  result.shed = shed_so_far_;
  result.deadline_missed = deadline_missed_so_far_;
  result.violations = 0;
  for (const JobRecord& rec : records_) {
    if (!rec.shed && !rec.satisfied) ++result.violations;
  }
  result.makespan = makespan;
  result.peak_active = peak_active_;
  result.ticks = ticks_this_run_;
  if (recording_) {
    obs::canonicalize(spans_);
    result.spans = spans_;
  }
  result.samples = samples_;
  result.latency_sketch = latency_sketch_;
  result.queue_sketch = queue_sketch_;
  result.class_latency = class_latency_;
  obs::MetricsRegistry::global().set_gauge("service.peak_active",
                                           result.peak_active);
  obs::MetricsRegistry::global().set_gauge("service.cap", config_.cap);
  return result;
}

ServiceResult AgreementService::run() {
  const obs::MetricsScope metrics_scope;
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t offered = config_.offered;
  DA_EXPECTS(offered >= 1);
  begin_run(offered);

  ArrivalGenerator gen(config_.arrivals, config_.seed);
  std::uint64_t arrived = 0;
  double next_arrival = gen.next();
  double next_tick = kNever;
  double now = 0.0;

  while (finished_this_run_ < offered) {
    // Emit time-series points for grid instants strictly before the next
    // event: between events the state is constant, so each point reflects
    // the state as of its own instant.
    flush_samples(std::min(next_arrival, next_tick));
    if (arrived < offered && next_arrival <= next_tick) {
      // Arrival event (ties with a tick resolve arrival-first, so a job
      // arriving exactly at a tick boundary can join that tick's batch).
      now = next_arrival;
      const std::uint64_t id = arrived++;
      next_arrival = arrived < offered ? gen.next() : kNever;
      JobOffer offer;
      offer.id = id;
      offer.template_index = draw_template_index(config_.seed, id,
                                                 mix_.size());
      offer.adversary_index =
          draw_adversary_index(config_.seed, id, adversaries_.size());
      offer_job(offer, now);
      if (!active_.empty() && next_tick == kNever) {
        next_tick = now + config_.round_period;
      }
      continue;
    }
    DA_EXPECTS(next_tick != kNever);  // else nothing active and no arrivals
    now = next_tick;
    step(now);
    next_tick = active_.empty() ? kNever : now + config_.round_period;
  }

  // Close the time series at the makespan (the grid never reaches it:
  // flushes stop strictly before the final event).
  if (config_.sample_every > 0.0) push_sample(now);

  ServiceResult result = end_run(now);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return result;
}

bool AgreementService::job_injected(std::uint64_t job_id) const {
  return job_id % config_.inject_every == 0;
}

void AgreementService::flush_samples(double next_event) {
  if (next_sample_ == kNever || next_event == kNever) return;
  while (next_sample_ < next_event) {
    push_sample(next_sample_);
    next_sample_ += config_.sample_every;
  }
}

void AgreementService::push_sample(double at) {
  ServiceSample sample;
  sample.time = at;
  sample.active = active_width_;
  sample.queued = admission_.size();
  sample.completed = completed_so_far_;
  sample.shed = shed_so_far_;
  sample.deadline_missed = deadline_missed_so_far_;
  sample.completed_by_class = completed_by_class_;
  for (int c = 0; c < kAdmissionClassCount; ++c) {
    sample.queued_by_class[static_cast<std::size_t>(c)] =
        admission_.size_of(static_cast<AdmissionClass>(c));
  }
  sample.latency_p50 = latency_sketch_.quantile(0.5);
  sample.latency_p99 = latency_sketch_.quantile(0.99);
  samples_.push_back(sample);
}

double ServiceResult::latency_quantile(double q) const {
  std::vector<double> latencies;
  latencies.reserve(records.size());
  for (const JobRecord& rec : records) {
    if (!rec.shed && rec.completed >= 0.0) latencies.push_back(rec.latency());
  }
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const std::size_t index = std::min(
      latencies.size() - 1,
      static_cast<std::size_t>(clamped *
                               static_cast<double>(latencies.size() - 1) +
                               0.5));
  return latencies[index];
}

std::uint64_t fold_job_record(std::uint64_t h, const JobRecord& rec) {
  h = mix64(h, rec.id);
  h = mix64(h, static_cast<std::uint64_t>(rec.template_index));
  h = mix64(h, static_cast<std::uint64_t>(rec.adversary_index));
  h = mix64(h, static_cast<std::uint64_t>(index_of(rec.admission)));
  h = fold_double(h, rec.arrival);
  h = mix64(h, rec.shed ? 1 : 0);
  if (rec.shed) return mix64(h, rec.deadline_missed ? 1 : 0);
  h = fold_double(h, rec.admitted);
  h = fold_double(h, rec.completed);
  h = mix64(h, static_cast<std::uint64_t>(rec.applied));
  h = mix64(h, rec.satisfied ? 1 : 0);
  return mix64(h, rec.decisions_digest);
}

std::uint64_t ServiceResult::digest() const {
  // Everything deterministic about the run, excluding wall_ms.
  std::uint64_t h = mix64(0x5e41ce, records.size());
  for (const JobRecord& rec : records) h = fold_job_record(h, rec);
  return h;
}

void append_record_line(std::string& out, const JobRecord& rec) {
  char line[192];
  if (rec.shed) {
    std::snprintf(line, sizeof line,
                  "job %llu tmpl=%d adv=%d class=%s arrival=%.6f %s\n",
                  static_cast<unsigned long long>(rec.id),
                  rec.template_index, rec.adversary_index,
                  to_string(rec.admission), rec.arrival,
                  rec.deadline_missed ? "DEADLINE" : "SHED");
  } else {
    std::snprintf(line, sizeof line,
                  "job %llu tmpl=%d adv=%d class=%s arrival=%.6f "
                  "admitted=%.6f completed=%.6f %s %s digest=%016llx\n",
                  static_cast<unsigned long long>(rec.id),
                  rec.template_index, rec.adversary_index,
                  to_string(rec.admission), rec.arrival, rec.admitted,
                  rec.completed, to_string(rec.applied),
                  rec.satisfied ? "ok" : "VIOLATED",
                  static_cast<unsigned long long>(rec.decisions_digest));
  }
  out += line;
}

std::string ServiceResult::artifact() const {
  std::string out;
  out.reserve(records.size() * 112);
  for (const JobRecord& rec : records) append_record_line(out, rec);
  return out;
}

ServiceResult run_service(const ServiceConfig& config) {
  AgreementService svc(config);
  return svc.run();
}

}  // namespace da::service
