#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/checker.hpp"
#include "core/scenario.hpp"
#include "inject/fault_plan.hpp"
#include "obs/quantiles.hpp"
#include "obs/spans.hpp"
#include "service/admission.hpp"
#include "service/arrivals.hpp"
#include "sim/adversary.hpp"
#include "sim/round_engine.hpp"
#include "sweep/thread_pool.hpp"

namespace da::service {

/// Agreement as a service: a long-lived loop driving thousands of
/// concurrent BYZ/IC instances off one global virtual-time event queue,
/// built on `sim::RoundEngine` snapshots (docs/SERVICE.md).
///
/// The paper's protocols are exercised elsewhere one instance per `run()`
/// call; here a stream of agreement *jobs* arrives open-loop (Poisson,
/// bursty, heavy-tailed — `service/arrivals.hpp`), is admitted against a
/// concurrency cap with class-aware backpressure (`service/admission.hpp`:
/// priority classes, optional admission deadlines, shed-lowest-class-first
/// overload handling), and is executed in *batched round ticks*: every
/// `round_period` of virtual time, all co-scheduled instances advance one
/// synchronous round together, drained by the sweep engine's
/// work-stealing pool when `jobs > 1`.
///
/// Steady-state admission is allocation-free: per distinct scenario
/// *shape* (protocol, config, sender, value, faulty set) the service
/// keeps a template `RoundEngine::Snapshot` taken at the round-0
/// pre-dispatch boundary, and a pool of recycled `InstanceSlot`s whose
/// engines are rewound with `restore()` (which assigns over existing
/// buffers) instead of rebuilt. Because that boundary precedes every
/// adversary decision, `set_adversary()` per admission is sound — the
/// same argument the checkpointed searches rely on (docs/SEARCH.md §4).
///
/// Determinism contract: for a fixed (seed, arrival spec, cap, policy,
/// mix), the per-job records — arrival/admission/completion times,
/// verdicts, decision digests, shed dispositions — are identical for
/// every `jobs` value. Arrivals and admissions happen on the event-loop
/// thread only; workers touch disjoint engines; all adversary behaviour
/// is a pure function of message identity. `ServiceResult::digest()`
/// folds every record so tests can pin the contract in one comparison.
///
/// Besides the self-driving `run()`, the service exposes a *driven mode*
/// (`begin_run` / `offer_job` / `step` / `end_run`): the sharded
/// front-end (`service/frontend.hpp`) drives many services in lockstep
/// off one global event sequence through exactly the primitives `run()`
/// itself is built on, which is what makes an uncongested front-end
/// stream record-identical to the single-service baseline.

/// What kind of agreement one arriving job asks for.
enum class JobKind {
  /// One BYZ(m,m) instance: `config`, `sender`, `sender_value`.
  kByz,
  /// One interactive-consistency job: `config.n` parallel OM(m)
  /// instances, one per sender (node i's private value is
  /// `sender_value + i`); the job completes when the last coordinate
  /// decides. Occupies `config.n` slots while active.
  kIc,
};

[[nodiscard]] const char* to_string(JobKind kind);

/// One entry of the service's scenario mix. Each arriving job draws a
/// template (and an adversary from the service's stateless family) by a
/// pure function of (seed, job id).
struct JobTemplate {
  JobKind kind = JobKind::kByz;
  Config config{};
  NodeId sender = 0;
  Value sender_value = Value::of(17);
  std::vector<NodeId> faulty{};
  /// Priority class: admission order is (class, FIFO within class), and
  /// overload shedding consumes the lowest class first.
  AdmissionClass admission = AdmissionClass::kNormal;
  /// Relative admission deadline in virtual time: a job still queued
  /// when `arrival + deadline` passes is shed with the distinct
  /// `deadline_missed` disposition. <= 0 means no deadline.
  double deadline = 0.0;

  [[nodiscard]] std::string to_string() const;
};

/// The standard mix used by benches and the demo: three BYZ shapes
/// (n=7 1/4-degradable, n=4 1/1, n=7 2/2) and one n=4 IC job, faults
/// within budget so D.1-D.4 all hold and the stream stays clean. The
/// minimal-feasible BYZ shape rides in `kHigh`, the heavy 3-round shape
/// in `kLow`, the rest in `kNormal`; no template carries a deadline.
[[nodiscard]] std::vector<JobTemplate> default_mix();

/// What to do when arrivals outpace the cap.
enum class OverloadPolicy {
  /// Queue without bound; every job is eventually admitted in (class,
  /// FIFO) order. Latency absorbs the backlog.
  kBlock,
  /// Bound the admission queue at `queue_cap` jobs; when a new arrival
  /// would exceed it, the oldest job of the *lowest occupied class* is
  /// shed (dropped, counted, recorded with `shed = true`). High classes
  /// ride out bursts at the expense of low ones; with a single class
  /// this degenerates to the classic shed-oldest.
  kShedOldest,
};

[[nodiscard]] const char* to_string(OverloadPolicy policy);

struct ServiceConfig {
  ArrivalSpec arrivals = ArrivalSpec::poisson(8.0);
  /// Jobs the arrival process offers per `run()`.
  std::uint64_t offered = 1000;
  /// Concurrency cap, in slots (an IC job holds `n` slots at once).
  int cap = 256;
  /// Queue bound for kShedOldest, in jobs.
  std::size_t queue_cap = 1024;
  OverloadPolicy policy = OverloadPolicy::kShedOldest;
  /// Virtual time between round ticks (every active instance advances
  /// one synchronous round per tick).
  double round_period = 1.0;
  std::uint64_t seed = 1;
  /// Worker threads draining each round batch; <= 1 drains inline.
  int jobs = 1;
  /// Scenario mix; `default_mix()` when empty.
  std::vector<JobTemplate> mix{};
  /// Record causal lifecycle spans (job/queue/inst/round/decide/recycle,
  /// obs/spans.hpp) into `ServiceResult::spans`. Ignored when the build's
  /// metrics kill switch (DA_METRICS=OFF) is on.
  bool record_spans = false;
  /// Emit a `ServiceSample` every this much virtual time (0 = off).
  double sample_every = 0.0;
  /// Fault plan routed through selected jobs' message transport via a
  /// per-slot `inject::InjectionNetwork` (inactive plan = reliable links).
  inject::FaultPlan fault_plan{};
  /// Every k-th job (id % k == 0) runs under `fault_plan`; 1 = every job.
  std::uint64_t inject_every = 1;
};

/// Outcome of one job, in virtual time. `admitted`/`completed` are
/// negative while not (yet) reached; a shed job never gets either.
struct JobRecord {
  std::uint64_t id = 0;
  int template_index = 0;
  int adversary_index = 0;
  AdmissionClass admission = AdmissionClass::kNormal;
  double arrival = 0.0;
  double admitted = -1.0;
  double completed = -1.0;
  bool shed = false;
  /// Shed because the admission deadline passed while queued (a subset
  /// of `shed`), as opposed to an overload-policy eviction.
  bool deadline_missed = false;
  /// Folded over all coordinates for kIc (worst coordinate wins:
  /// satisfied only if every coordinate satisfied).
  Condition applied = Condition::kNone;
  bool satisfied = true;
  /// mix64 fold of every (node, decision) pair, all coordinates.
  std::uint64_t decisions_digest = 0;
  /// Virtual time the job was shed (-1 when not shed; the deadline
  /// instant for deadline misses). Redundant with the event sequence, so
  /// excluded from `digest()`/`artifact()`; it closes the shed job's
  /// span.
  double shed_at = -1.0;

  [[nodiscard]] double queue_wait() const {
    return admitted < 0.0 ? 0.0 : admitted - arrival;
  }
  [[nodiscard]] double latency() const {
    return completed < 0.0 ? 0.0 : completed - arrival;
  }
};

/// Appends `rec`'s canonical one-line artifact form to `out` (shared by
/// `ServiceResult::artifact()` and `FrontendResult::artifact()`, so an
/// uncongested front-end stream can be compared to the single-service
/// baseline byte for byte).
void append_record_line(std::string& out, const JobRecord& rec);

/// mix64-folds every digest-relevant field of one record into `h` (shared
/// by `ServiceResult::digest()` and `FrontendResult::digest()`).
[[nodiscard]] std::uint64_t fold_job_record(std::uint64_t h,
                                            const JobRecord& rec);

/// One periodic time-series point, taken on the `sample_every` grid of
/// virtual time by the event loop — every field derives from deterministic
/// event-loop state, so the series is identical for every `jobs` value.
struct ServiceSample {
  double time = 0.0;
  int active = 0;          // occupied slots at this instant
  std::size_t queued = 0;  // jobs waiting for admission
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  /// Deadline-missed sheds so far (subset of `shed`).
  std::uint64_t deadline_missed = 0;
  /// Per-class breakdowns, indexed by `index_of(AdmissionClass)`.
  std::array<std::uint64_t, kAdmissionClassCount> completed_by_class{};
  std::array<std::uint64_t, kAdmissionClassCount> queued_by_class{};
  /// Running decision-latency quantiles (sketch estimates; 0 until the
  /// first completion).
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
};

/// Aggregate of one `run()` call.
struct ServiceResult {
  std::vector<JobRecord> records;  // by job id, one per offered job
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;  // all sheds, deadline misses included
  std::uint64_t deadline_missed = 0;
  std::uint64_t violations = 0;  // jobs whose D.1-D.4 verdict failed
  /// Virtual completion time of the last job.
  double makespan = 0.0;
  /// Wall-clock time the run took (the only nondeterministic field).
  double wall_ms = 0.0;
  /// Highest number of simultaneously active slots observed.
  int peak_active = 0;
  std::uint64_t ticks = 0;
  /// Causal spans in canonical order (when `record_spans`); empty
  /// otherwise and under DA_METRICS=OFF.
  std::vector<obs::Span> spans;
  /// Periodic time series (when `sample_every > 0`).
  std::vector<ServiceSample> samples;
  /// Streaming sketches over completed jobs — decision latency and queue
  /// wait in virtual time. Always recorded (independent of the registry
  /// kill switch); exact-merge determinism makes their `serialize()` form
  /// byte-identical across `jobs` values.
  obs::QuantileSketch latency_sketch{};
  obs::QuantileSketch queue_sketch{};
  /// Per-class decision-latency sketches, indexed by
  /// `index_of(AdmissionClass)`; same determinism guarantee.
  std::array<obs::QuantileSketch, kAdmissionClassCount> class_latency{};

  /// Exact latency quantile over completed jobs (q in [0,1]); 0 when
  /// nothing completed.
  [[nodiscard]] double latency_quantile(double q) const;
  /// Completed jobs per unit of virtual time.
  [[nodiscard]] double throughput() const {
    return makespan <= 0.0 ? 0.0
                           : static_cast<double>(completed) / makespan;
  }
  /// Order- and jobs-invariant fold of every record; the determinism pin.
  [[nodiscard]] std::uint64_t digest() const;
  /// Canonical one-line-per-job text artifact (byte-identical across
  /// `jobs` values for a fixed config).
  [[nodiscard]] std::string artifact() const;
};

/// Template / adversary draws for job `id`: pure functions of (seed, id),
/// shared verbatim by `AgreementService::run()` and the sharded front-end
/// so both see the same job stream for the same seed.
[[nodiscard]] int draw_template_index(std::uint64_t seed, std::uint64_t id,
                                      std::size_t mix_size);
[[nodiscard]] int draw_adversary_index(std::uint64_t seed, std::uint64_t id,
                                       std::size_t adversary_count);

/// One pre-drawn arriving job handed to a driven service: the caller
/// (the `run()` loop or the front-end router) owns the arrival stream
/// and the draws; the service owns admission, execution and records.
struct JobOffer {
  std::uint64_t id = 0;  // global job id (record identity, span ids)
  int template_index = 0;
  int adversary_index = 0;
};

/// The long-lived service. Construct once; `run()` may be called
/// repeatedly — slots, engines and queues persist across runs, so every
/// run after the first starts warm (no slot construction at all when the
/// mix is unchanged).
class AgreementService {
 public:
  /// Throws `UnsupportedConfig` when a mix template's config is outside
  /// what the engine can execute (`Config::engine_runnable()`).
  explicit AgreementService(ServiceConfig config);
  ~AgreementService();

  AgreementService(const AgreementService&) = delete;
  AgreementService& operator=(const AgreementService&) = delete;

  /// Offers `config().offered` jobs through the arrival model and drives
  /// the event loop until every job is completed or shed. Virtual time
  /// restarts at 0 each run; the arrival stream is re-seeded identically,
  /// so repeated runs of an unchanged service are identical.
  [[nodiscard]] ServiceResult run();

  // --- Driven mode -------------------------------------------------
  // The front-end (or a test) drives the service through the exact
  // primitives `run()` is built on: `begin_run` resets per-run state,
  // `offer_job` performs full arrival semantics (deadline sweep,
  // class-aware admit-or-queue, overload shedding), `step` is one
  // batched round tick plus deadline sweep plus queue drain, and
  // `end_run` folds the aggregates. All four must be called from one
  // thread (the caller's event loop).

  /// `expected` pre-sizes the record store (0 is fine).
  void begin_run(std::uint64_t expected);
  void offer_job(const JobOffer& offer, double now);
  void step(double now);
  [[nodiscard]] ServiceResult end_run(double makespan);

  /// True when no instance is active. Invariant: a non-empty admission
  /// queue implies an active instance, so an idle service has nothing
  /// to do until the next offer.
  [[nodiscard]] bool idle() const { return active_.empty(); }
  /// Jobs finished (completed + shed) since `begin_run`.
  [[nodiscard]] std::uint64_t finished() const { return finished_this_run_; }
  /// Occupied slots + queued slot width: the deterministic-least-loaded
  /// router's load figure.
  [[nodiscard]] int load() const {
    return active_width_ + admission_.queued_width();
  }
  [[nodiscard]] int active_width() const { return active_width_; }
  [[nodiscard]] std::size_t queue_depth() const { return admission_.size(); }
  [[nodiscard]] std::size_t queued_of(AdmissionClass cls) const {
    return admission_.size_of(cls);
  }
  [[nodiscard]] std::uint64_t completed_so_far() const {
    return completed_so_far_;
  }
  [[nodiscard]] std::uint64_t shed_so_far() const { return shed_so_far_; }
  [[nodiscard]] std::uint64_t deadline_missed_so_far() const {
    return deadline_missed_so_far_;
  }
  [[nodiscard]] std::uint64_t completed_of(AdmissionClass cls) const {
    return completed_by_class_[static_cast<std::size_t>(index_of(cls))];
  }
  /// Running decision-latency sketch (merged by the front-end per
  /// sample instant).
  [[nodiscard]] const obs::QuantileSketch& running_latency_sketch() const {
    return latency_sketch_;
  }

  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  /// The resolved mix (`default_mix()` when the config left it empty).
  [[nodiscard]] const std::vector<JobTemplate>& mix() const { return mix_; }
  /// Size of the stateless adversary family (for `draw_adversary_index`).
  [[nodiscard]] std::size_t adversary_count() const {
    return adversaries_.size();
  }

  /// Slots constructed / recycled since construction (mirrors the
  /// `service.slots_created` / `service.slot_reuse` counters, readable
  /// without a registry snapshot).
  [[nodiscard]] std::uint64_t slots_created() const { return slots_created_; }
  [[nodiscard]] std::uint64_t slot_reuses() const { return slot_reuses_; }

 private:
  struct Shape;
  struct InstanceSlot;
  struct ActiveJob;

  void build_shapes();
  [[nodiscard]] InstanceSlot* acquire_slot(int shape_index);
  void release_slot(InstanceSlot* slot);
  [[nodiscard]] bool try_admit(std::uint64_t local, double now);
  void shed_job(std::uint64_t local, double at, bool deadline_missed);
  void expire_deadlines(double now);
  void drain_queue(double now);
  void tick(double now);
  void complete_sub_instance(InstanceSlot& slot, double now);
  [[nodiscard]] bool job_injected(std::uint64_t job_id) const;
  void flush_samples(double next_event);
  void push_sample(double at);

  ServiceConfig config_;
  std::vector<JobTemplate> mix_;
  /// Stateless adversary family shared by all concurrent instances.
  std::vector<std::unique_ptr<sim::Adversary>> adversaries_;
  std::vector<std::unique_ptr<Shape>> shapes_;
  /// mix_[t] -> indices into shapes_, one per sub-instance of a job.
  std::vector<std::vector<int>> template_shapes_;

  std::vector<std::unique_ptr<InstanceSlot>> slots_;   // owner
  std::vector<std::vector<InstanceSlot*>> free_slots_;  // per shape
  std::vector<InstanceSlot*> active_;
  std::vector<ActiveJob> jobs_;  // per offered job, by local index
  AdmissionQueue admission_;
  int active_width_ = 0;

  std::unique_ptr<sweep::ThreadPool> pool_;
  std::uint64_t slots_created_ = 0;
  std::uint64_t slot_reuses_ = 0;

  // Per-run scratch (kept across runs to preserve capacity). Records and
  // job states are appended per offer; in `run()` the local index equals
  // the job id, under the front-end it is the shard-local offer ordinal
  // (`records_[local].id` holds the global id).
  std::vector<JobRecord> records_;
  std::uint64_t finished_this_run_ = 0;  // completed + shed jobs
  std::uint64_t ticks_this_run_ = 0;
  int peak_active_ = 0;
  sim::RunResult scratch_result_;

  // Observability scratch (spans/samples/sketches, reset per run).
  bool recording_ = false;        // record_spans, post kill-switch gate
  bool inject_enabled_ = false;   // fault_plan.active()
  std::vector<obs::Span> spans_;
  std::vector<ServiceSample> samples_;
  obs::QuantileSketch latency_sketch_;
  obs::QuantileSketch queue_sketch_;
  std::array<obs::QuantileSketch, kAdmissionClassCount> class_latency_{};
  double next_sample_ = 0.0;
  std::uint64_t completed_so_far_ = 0;
  std::uint64_t shed_so_far_ = 0;
  std::uint64_t deadline_missed_so_far_ = 0;
  std::array<std::uint64_t, kAdmissionClassCount> completed_by_class_{};
};

/// One-shot convenience: construct, run once, return the result.
[[nodiscard]] ServiceResult run_service(const ServiceConfig& config);

}  // namespace da::service
