#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace da::service {

/// Open-loop arrival processes for the agreement service: the offered
/// load is a function of the model and the seed alone, never of how fast
/// the service drains it (the YAPS-style central-event-queue discipline).
/// All times are in the service's virtual time unit (one protocol round
/// is `ServiceConfig::round_period` of them).
enum class ArrivalKind {
  /// Memoryless: exponential inter-arrival gaps at `rate`.
  kPoisson,
  /// Two-state on/off (Markov-modulated): while ON, Poisson arrivals at
  /// `burst_rate`; while OFF, silence. ON/OFF holding times are
  /// exponential with means `on_period` / `off_period`.
  kBursty,
  /// Heavy-tailed renewal process: inter-arrival gaps drawn from a
  /// bounded Pareto with tail index `pareto_alpha`, truncated at
  /// `pareto_cap` times the minimum gap and rescaled so the long-run
  /// mean rate is `rate`. Most gaps are tiny; rare gaps are huge.
  kPareto,
};

[[nodiscard]] const char* to_string(ArrivalKind kind);

/// Parses "poisson" / "bursty" / "pareto" (the `service_demo --model`
/// vocabulary); nullopt on anything else.
[[nodiscard]] std::optional<ArrivalKind> parse_arrival_kind(
    std::string_view name);

/// Parameters of one arrival model. `rate` is the long-run mean arrival
/// rate (jobs per time unit) for every kind; the factory functions fill
/// the kind-specific fields with conventional shapes.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate = 1.0;

  // kBursty: ON-state arrival rate and the mean ON/OFF holding times.
  // The long-run mean rate is burst_rate * on_period/(on_period+off_period);
  // `bursty()` derives burst_rate from `rate` so the duty cycle burns the
  // same offered load as the other kinds.
  double burst_rate = 0.0;
  double on_period = 0.0;
  double off_period = 0.0;

  // kPareto: tail index (> 1 so the mean exists) and the truncation
  // point, as a multiple of the minimum gap.
  double pareto_alpha = 1.5;
  double pareto_cap = 1000.0;

  [[nodiscard]] static ArrivalSpec poisson(double rate);
  /// ON fraction = on_period/(on_period+off_period); arrivals inside a
  /// burst come `burstiness` times faster than the long-run rate.
  [[nodiscard]] static ArrivalSpec bursty(double rate, double burstiness = 4.0,
                                          double on_period = 5.0,
                                          double off_period = 15.0);
  [[nodiscard]] static ArrivalSpec pareto(double rate, double alpha = 1.5,
                                          double cap = 1000.0);

  [[nodiscard]] std::string to_string() const;
};

/// Sequential generator of arrival times for one spec. Deterministic for
/// a (spec, seed) pair: the k-th arrival time is independent of how the
/// service schedules work, so the offered trace is identical for every
/// `--jobs` value. Generation happens only on the service's event loop
/// thread — sequential state (the bursty on/off phase) is safe here.
class ArrivalGenerator {
 public:
  ArrivalGenerator(ArrivalSpec spec, std::uint64_t seed);

  /// Absolute time of the next arrival (strictly increasing).
  [[nodiscard]] double next();

  [[nodiscard]] const ArrivalSpec& spec() const { return spec_; }

  /// Phase-machine introspection for kBursty (meaningless for the other
  /// kinds): whether the generator currently sits in an ON phase, and the
  /// absolute end time of that phase. The stream *opens ON at t=0* — the
  /// constructor draws the first phase end from `on_period` with
  /// `on_ == true`, so the very first arrivals come at `burst_rate`, not
  /// after an OFF-length silence. `tests/test_service.cpp` pins both the
  /// opening state and the no-arrival-inside-an-OFF-phase invariant
  /// through these accessors.
  [[nodiscard]] bool bursty_on() const { return on_; }
  [[nodiscard]] double bursty_phase_end() const { return phase_end_; }
  /// Absolute time of the most recent arrival (0 before the first).
  [[nodiscard]] double now() const { return now_; }

 private:
  [[nodiscard]] double exponential(double mean);
  [[nodiscard]] double bounded_pareto_gap();

  ArrivalSpec spec_;
  Rng rng_;
  double now_ = 0.0;
  // kBursty phase machine.
  bool on_ = true;
  double phase_end_ = 0.0;
  // kPareto: mean of the unscaled bounded-Pareto draw, precomputed so
  // every gap is one draw plus one multiply.
  double pareto_mean_ = 1.0;
};

}  // namespace da::service
