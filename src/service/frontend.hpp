#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/quantiles.hpp"
#include "obs/spans.hpp"
#include "service/service.hpp"
#include "sweep/thread_pool.hpp"

namespace da::service {

/// The sharded front-end (docs/SERVICE.md §"Sharded front-end"): N
/// independent `AgreementService` shards behind one deterministic router
/// and one global virtual-time event loop. The front-end owns the arrival
/// stream and the per-job draws (template, adversary — the same pure
/// functions of (seed, global id) the single service uses), routes each
/// arrival to a shard, and drives every shard's round ticks in lockstep
/// on one global tick grid. Cross-shard draining is batched on the sweep
/// `ThreadPool` (`FrontendConfig::service.jobs > 1`): shards touch
/// disjoint state, so a tick fans one task per active shard.
///
/// Determinism contract, extended: for a fixed (config, shard count,
/// route policy), every field of `FrontendResult` except `wall_ms` —
/// merged records, per-shard placement, merged and per-class quantile
/// sketches — is identical for every `jobs` value (`digest()` pins it).
/// And because shards are driven through the exact primitives
/// `AgreementService::run()` is built on (one global tick grid, arrival
/// -first tie-break, class-aware admission inside each shard), an
/// *uncongested* front-end stream is record-identical to the
/// single-service baseline: sharding only redistributes queueing, never
/// outcomes.
enum class RoutePolicy {
  /// shard = mix64(seed, id) % shards: stateless, uniform in the limit.
  kHashJobId,
  /// The shard with the least (active + queued) slot width at arrival
  /// time; ties break to the lowest shard index. Deterministic because
  /// routing happens on the event-loop thread between ticks.
  kLeastLoaded,
};

[[nodiscard]] const char* to_string(RoutePolicy policy);

/// Parses "hash" / "least-loaded" (the `service_demo --route`
/// vocabulary); nullopt on anything else.
[[nodiscard]] std::optional<RoutePolicy> parse_route_policy(
    std::string_view name);

struct FrontendConfig {
  /// Per-shard service configuration. `offered` and `seed` are global
  /// (the front-end owns the arrival stream); `jobs` sizes the
  /// *front-end's* cross-shard pool (each shard runs single-threaded
  /// inside its tick task); `sample_every` drives the *aggregated*
  /// time series.
  ServiceConfig service{};
  int shards = 2;
  RoutePolicy route = RoutePolicy::kHashJobId;
};

/// Per-shard slice of one front-end run.
struct FrontendShardSummary {
  std::uint64_t seed = 0;  // the shard's derived seed
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_missed = 0;
  int peak_active = 0;
};

/// Aggregate of one front-end run: the shard results exact-merged back
/// into one stream.
struct FrontendResult {
  std::vector<JobRecord> records;  // by global job id
  std::vector<int> shard_of;       // routing decision, by global job id
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_missed = 0;
  std::uint64_t violations = 0;
  double makespan = 0.0;
  /// Wall-clock time (the only nondeterministic field).
  double wall_ms = 0.0;
  /// Global tick-grid instants driven (each may tick several shards).
  std::uint64_t ticks = 0;
  std::vector<FrontendShardSummary> shards;
  /// Aggregated time series on the global `sample_every` grid (sums over
  /// shards; latency quantiles over the exact-merged running sketches).
  std::vector<ServiceSample> samples;
  /// Concatenated per-shard spans, re-canonicalized (global job ids keep
  /// them disjoint).
  std::vector<obs::Span> spans;
  /// Exact merges of the per-shard sketches: associative/commutative
  /// bucket adds, so `serialize()` is byte-identical across `jobs`.
  obs::QuantileSketch latency_sketch{};
  obs::QuantileSketch queue_sketch{};
  std::array<obs::QuantileSketch, kAdmissionClassCount> class_latency{};

  [[nodiscard]] double throughput() const {
    return makespan <= 0.0 ? 0.0
                           : static_cast<double>(completed) / makespan;
  }
  /// Jobs-invariant fold of every record plus its shard placement.
  [[nodiscard]] std::uint64_t digest() const;
  /// Canonical per-job artifact in the *same* line format as
  /// `ServiceResult::artifact()` (no shard column), so an uncongested
  /// front-end run can be compared to the single-service baseline byte
  /// for byte. Shard placement is covered by `digest()` and `shard_of`.
  [[nodiscard]] std::string artifact() const;
};

/// The front-end itself. Construct once; `run()` may be called
/// repeatedly — shards persist, so warm runs reuse every slot pool.
class ServiceFrontend {
 public:
  /// Throws `UnsupportedConfig` for mix templates the engine cannot
  /// execute (the shards validate on construction).
  explicit ServiceFrontend(FrontendConfig config);
  ~ServiceFrontend();

  ServiceFrontend(const ServiceFrontend&) = delete;
  ServiceFrontend& operator=(const ServiceFrontend&) = delete;

  [[nodiscard]] FrontendResult run();

  [[nodiscard]] const FrontendConfig& config() const { return config_; }
  [[nodiscard]] int shards() const { return static_cast<int>(shards_.size()); }
  /// The derived seed shard `s` was constructed with.
  [[nodiscard]] std::uint64_t shard_seed(int s) const;

 private:
  [[nodiscard]] int route(std::uint64_t id) const;
  void push_sample(double at, std::vector<ServiceSample>& samples) const;

  FrontendConfig config_;
  std::vector<JobTemplate> mix_;
  std::vector<std::unique_ptr<AgreementService>> shards_;
  std::unique_ptr<sweep::ThreadPool> pool_;
};

/// One-shot convenience: construct, run once, return the result.
[[nodiscard]] FrontendResult run_frontend(const FrontendConfig& config);

}  // namespace da::service
