#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <string_view>

namespace da::service {

/// Class-aware admission control for the agreement service
/// (docs/SERVICE.md §"Admission classes"): every arriving job carries a
/// priority class and an optional relative deadline, the wait queue is a
/// deterministic priority structure (class-major, FIFO within a class),
/// and overload shedding generalizes `kShedOldest` to
/// shed-lowest-class-first. Everything here runs on the event-loop
/// thread only, so plain containers suffice; determinism follows from
/// the strict (class, arrival-order) total order.

/// Priority class of one job. Lower enumerator = higher priority: kHigh
/// jobs admit ahead of kNormal ahead of kLow, and shedding consumes the
/// classes in the opposite order.
enum class AdmissionClass : std::uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

inline constexpr int kAdmissionClassCount = 3;

[[nodiscard]] constexpr int index_of(AdmissionClass cls) {
  return static_cast<int>(cls);
}

[[nodiscard]] const char* to_string(AdmissionClass cls);

/// Parses "high" / "normal" / "low" (the `service_demo --class`
/// vocabulary); nullopt on anything else.
[[nodiscard]] std::optional<AdmissionClass> parse_admission_class(
    std::string_view name);

/// Sentinel for "no deadline" (`QueuedJob::deadline_at`).
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// One waiting job, by the service's local job index. `deadline_at` is
/// the absolute virtual time after which admission is pointless
/// (`kNoDeadline` when the job's template has none); `width` is the slot
/// width the job will occupy, kept here so the queue can answer the
/// least-loaded router's "how much work is parked" question in O(1).
struct QueuedJob {
  std::uint64_t job = 0;
  double deadline_at = kNoDeadline;
  int width = 1;
};

/// The service's wait queue: one FIFO per class, totally ordered by
/// (class, arrival order). All mutation happens on the event-loop
/// thread; the structure never allocates in steady state beyond the
/// deques' own block reuse.
class AdmissionQueue {
 public:
  void clear();

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t size_of(AdmissionClass cls) const {
    return by_class_[static_cast<std::size_t>(index_of(cls))].size();
  }
  /// Total slot width parked in the queue (for least-loaded routing).
  [[nodiscard]] int queued_width() const { return queued_width_; }

  /// True when some queued job has class `cls` or higher — an arriving
  /// job of class `cls` must queue behind it (per-class FIFO order is
  /// part of the determinism contract; only *lower* classes may be
  /// overtaken).
  [[nodiscard]] bool blocks(AdmissionClass cls) const;

  void push(AdmissionClass cls, const QueuedJob& job);

  /// Admission head: the oldest job of the highest occupied class.
  /// Callable only when !empty().
  [[nodiscard]] const QueuedJob& front() const;
  [[nodiscard]] AdmissionClass front_class() const;
  void pop_front();

  /// Overload victim: the *oldest* job of the *lowest* occupied class
  /// (the shed-lowest-class-first generalization of kShedOldest).
  /// Callable only when !empty().
  QueuedJob pop_shed_victim();

  /// Removes every queued job whose deadline passed strictly before
  /// `now` and hands it to `fn(AdmissionClass, QueuedJob)` in
  /// deterministic (class-major, FIFO) order. O(1) when nothing queued
  /// carries a deadline.
  template <typename Fn>
  void expire(double now, Fn&& fn) {
    if (with_deadline_ == 0) return;
    for (int c = 0; c < kAdmissionClassCount; ++c) {
      auto& q = by_class_[static_cast<std::size_t>(c)];
      for (std::size_t i = 0; i < q.size();) {
        if (q[i].deadline_at < now) {
          const QueuedJob victim = q[i];
          q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
          --size_;
          --with_deadline_;
          queued_width_ -= victim.width;
          fn(static_cast<AdmissionClass>(c), victim);
        } else {
          ++i;
        }
      }
    }
  }

 private:
  std::array<std::deque<QueuedJob>, kAdmissionClassCount> by_class_{};
  std::size_t size_ = 0;
  std::size_t with_deadline_ = 0;
  int queued_width_ = 0;
};

}  // namespace da::service
