#include "service/arrivals.hpp"

#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"

namespace da::service {

const char* to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
    case ArrivalKind::kPareto:
      return "pareto";
  }
  return "?";
}

std::optional<ArrivalKind> parse_arrival_kind(std::string_view name) {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "bursty") return ArrivalKind::kBursty;
  if (name == "pareto") return ArrivalKind::kPareto;
  return std::nullopt;
}

ArrivalSpec ArrivalSpec::poisson(double rate) {
  DA_EXPECTS(rate > 0.0);
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.rate = rate;
  return spec;
}

ArrivalSpec ArrivalSpec::bursty(double rate, double burstiness,
                                double on_period, double off_period) {
  DA_EXPECTS(rate > 0.0 && burstiness >= 1.0);
  DA_EXPECTS(on_period > 0.0 && off_period >= 0.0);
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kBursty;
  spec.rate = rate;
  spec.on_period = on_period;
  spec.off_period = off_period;
  // Duty cycle on/(on+off); the ON-state rate compensates for the silence
  // so the long-run offered load matches `rate` — but never below the
  // requested burstiness factor.
  const double duty = on_period / (on_period + off_period);
  spec.burst_rate = rate * std::max(burstiness, 1.0 / duty);
  return spec;
}

ArrivalSpec ArrivalSpec::pareto(double rate, double alpha, double cap) {
  DA_EXPECTS(rate > 0.0 && alpha > 1.0 && cap > 1.0);
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPareto;
  spec.rate = rate;
  spec.pareto_alpha = alpha;
  spec.pareto_cap = cap;
  return spec;
}

std::string ArrivalSpec::to_string() const {
  char buf[128];
  switch (kind) {
    case ArrivalKind::kPoisson:
      std::snprintf(buf, sizeof buf, "poisson(rate=%g)", rate);
      break;
    case ArrivalKind::kBursty:
      std::snprintf(buf, sizeof buf,
                    "bursty(rate=%g, burst_rate=%g, on=%g, off=%g)", rate,
                    burst_rate, on_period, off_period);
      break;
    case ArrivalKind::kPareto:
      std::snprintf(buf, sizeof buf, "pareto(rate=%g, alpha=%g, cap=%g)",
                    rate, pareto_alpha, pareto_cap);
      break;
  }
  return buf;
}

ArrivalGenerator::ArrivalGenerator(ArrivalSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(mix64(seed, 0x5e41)) {
  DA_EXPECTS(spec_.rate > 0.0);
  if (spec_.kind == ArrivalKind::kBursty) {
    DA_EXPECTS(spec_.burst_rate > 0.0 && spec_.on_period > 0.0);
    // The stream opens in the ON state (`on_` defaults true): the first
    // phase boundary is an ON-phase end drawn with the ON mean, so
    // arrivals start at `burst_rate` from t=0 rather than behind an
    // initial silence. Pinned by Arrivals.BurstyOpensInTheOnState.
    phase_end_ = exponential(spec_.on_period);
  } else if (spec_.kind == ArrivalKind::kPareto) {
    // Mean of the bounded Pareto on [1, cap] with tail index alpha != 1:
    //   E[X] = alpha/(alpha-1) * (1 - cap^(1-alpha)) / (1 - cap^(-alpha)).
    const double a = spec_.pareto_alpha;
    const double cap = spec_.pareto_cap;
    pareto_mean_ = a / (a - 1.0) * (1.0 - std::pow(cap, 1.0 - a)) /
                   (1.0 - std::pow(cap, -a));
  }
}

double ArrivalGenerator::exponential(double mean) {
  // uniform() is in [0,1); flip to (0,1] so the log is finite.
  return -mean * std::log(1.0 - rng_.uniform());
}

double ArrivalGenerator::bounded_pareto_gap() {
  // Inverse-CDF draw from the bounded Pareto on [1, cap], rescaled so the
  // long-run rate is spec_.rate.
  const double a = spec_.pareto_alpha;
  const double cap = spec_.pareto_cap;
  const double u = rng_.uniform();
  const double x =
      std::pow(1.0 - u * (1.0 - std::pow(cap, -a)), -1.0 / a);
  return x / (pareto_mean_ * spec_.rate);
}

double ArrivalGenerator::next() {
  switch (spec_.kind) {
    case ArrivalKind::kPoisson:
      now_ += exponential(1.0 / spec_.rate);
      return now_;
    case ArrivalKind::kPareto:
      now_ += bounded_pareto_gap();
      return now_;
    case ArrivalKind::kBursty:
      break;
  }
  // Bursty: walk the on/off phase machine until an ON-state draw lands
  // inside its phase.
  for (;;) {
    if (!on_) {
      now_ = phase_end_;
      on_ = true;
      phase_end_ = now_ + exponential(spec_.on_period);
      continue;
    }
    const double gap = exponential(1.0 / spec_.burst_rate);
    if (now_ + gap <= phase_end_) {
      now_ += gap;
      return now_;
    }
    // The burst ended before the next arrival; enter an OFF phase.
    now_ = phase_end_;
    on_ = false;
    phase_end_ = now_ + exponential(spec_.off_period);
  }
}

}  // namespace da::service
