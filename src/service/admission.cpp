#include "service/admission.hpp"

#include "util/contracts.hpp"

namespace da::service {

const char* to_string(AdmissionClass cls) {
  switch (cls) {
    case AdmissionClass::kHigh:
      return "high";
    case AdmissionClass::kNormal:
      return "normal";
    case AdmissionClass::kLow:
      return "low";
  }
  return "?";
}

std::optional<AdmissionClass> parse_admission_class(std::string_view name) {
  if (name == "high") return AdmissionClass::kHigh;
  if (name == "normal") return AdmissionClass::kNormal;
  if (name == "low") return AdmissionClass::kLow;
  return std::nullopt;
}

void AdmissionQueue::clear() {
  for (auto& q : by_class_) q.clear();
  size_ = 0;
  with_deadline_ = 0;
  queued_width_ = 0;
}

bool AdmissionQueue::blocks(AdmissionClass cls) const {
  for (int c = 0; c <= index_of(cls); ++c) {
    if (!by_class_[static_cast<std::size_t>(c)].empty()) return true;
  }
  return false;
}

void AdmissionQueue::push(AdmissionClass cls, const QueuedJob& job) {
  by_class_[static_cast<std::size_t>(index_of(cls))].push_back(job);
  ++size_;
  if (job.deadline_at != kNoDeadline) ++with_deadline_;
  queued_width_ += job.width;
}

const QueuedJob& AdmissionQueue::front() const {
  DA_EXPECTS(size_ > 0);
  for (const auto& q : by_class_) {
    if (!q.empty()) return q.front();
  }
  return by_class_.back().front();  // unreachable
}

AdmissionClass AdmissionQueue::front_class() const {
  DA_EXPECTS(size_ > 0);
  for (int c = 0; c < kAdmissionClassCount; ++c) {
    if (!by_class_[static_cast<std::size_t>(c)].empty()) {
      return static_cast<AdmissionClass>(c);
    }
  }
  return AdmissionClass::kLow;  // unreachable
}

void AdmissionQueue::pop_front() {
  DA_EXPECTS(size_ > 0);
  for (auto& q : by_class_) {
    if (q.empty()) continue;
    if (q.front().deadline_at != kNoDeadline) --with_deadline_;
    queued_width_ -= q.front().width;
    q.pop_front();
    --size_;
    return;
  }
}

QueuedJob AdmissionQueue::pop_shed_victim() {
  DA_EXPECTS(size_ > 0);
  for (int c = kAdmissionClassCount - 1; c >= 0; --c) {
    auto& q = by_class_[static_cast<std::size_t>(c)];
    if (q.empty()) continue;
    const QueuedJob victim = q.front();
    q.pop_front();
    --size_;
    if (victim.deadline_at != kNoDeadline) --with_deadline_;
    queued_width_ -= victim.width;
    return victim;
  }
  return {};  // unreachable
}

}  // namespace da::service
