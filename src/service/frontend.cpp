#include "service/frontend.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "sweep/sweep.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace da::service {

namespace {

const obs::Counter& routed_counter() {
  static const obs::Counter c("frontend.jobs_routed");
  return c;
}
const obs::Counter& frontend_ticks_counter() {
  static const obs::Counter c("frontend.ticks");
  return c;
}

constexpr double kNever = std::numeric_limits<double>::infinity();

}  // namespace

const char* to_string(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kHashJobId:
      return "hash";
    case RoutePolicy::kLeastLoaded:
      return "least-loaded";
  }
  return "?";
}

std::optional<RoutePolicy> parse_route_policy(std::string_view name) {
  if (name == "hash") return RoutePolicy::kHashJobId;
  if (name == "least-loaded") return RoutePolicy::kLeastLoaded;
  return std::nullopt;
}

ServiceFrontend::ServiceFrontend(FrontendConfig config)
    : config_(std::move(config)) {
  DA_EXPECTS(config_.shards >= 1);
  mix_ = config_.service.mix.empty() ? default_mix() : config_.service.mix;
  const int jobs = sweep::resolve_jobs(config_.service.jobs);
  config_.service.jobs = jobs;
  // The cross-shard pool lives here; each shard runs single-threaded
  // inside its tick task (disjoint state, one task per active shard).
  if (jobs > 1 && config_.shards > 1) {
    pool_ = std::make_unique<sweep::ThreadPool>(jobs);
  }
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    ServiceConfig shard = config_.service;
    shard.mix = mix_;  // resolved once, so all shards share one mix view
    shard.seed = shard_seed(s);
    shard.jobs = 1;          // parallelism is across shards, not within
    shard.sample_every = 0;  // the front-end owns the aggregated series
    shards_.push_back(std::make_unique<AgreementService>(std::move(shard)));
  }
}

ServiceFrontend::~ServiceFrontend() = default;

std::uint64_t ServiceFrontend::shard_seed(int s) const {
  return mix64(config_.service.seed, mix64(static_cast<std::uint64_t>(s),
                                           0xf2));
}

int ServiceFrontend::route(std::uint64_t id) const {
  if (config_.route == RoutePolicy::kHashJobId) {
    return static_cast<int>(mix64(config_.service.seed, mix64(id, 0x5d)) %
                            shards_.size());
  }
  // Deterministic least-loaded: the router runs on the event-loop thread
  // between ticks, so every shard's load figure is settled; ties break
  // to the lowest index.
  int best = 0;
  int best_load = shards_[0]->load();
  for (int s = 1; s < static_cast<int>(shards_.size()); ++s) {
    const int load = shards_[static_cast<std::size_t>(s)]->load();
    if (load < best_load) {
      best = s;
      best_load = load;
    }
  }
  return best;
}

void ServiceFrontend::push_sample(double at,
                                  std::vector<ServiceSample>& samples) const {
  ServiceSample sample;
  sample.time = at;
  obs::QuantileSketch merged;
  for (const auto& shard : shards_) {
    sample.active += shard->active_width();
    sample.queued += shard->queue_depth();
    sample.completed += shard->completed_so_far();
    sample.shed += shard->shed_so_far();
    sample.deadline_missed += shard->deadline_missed_so_far();
    for (int c = 0; c < kAdmissionClassCount; ++c) {
      const auto cls = static_cast<AdmissionClass>(c);
      sample.completed_by_class[static_cast<std::size_t>(c)] +=
          shard->completed_of(cls);
      sample.queued_by_class[static_cast<std::size_t>(c)] +=
          shard->queued_of(cls);
    }
    merged.merge(shard->running_latency_sketch());
  }
  sample.latency_p50 = merged.quantile(0.5);
  sample.latency_p99 = merged.quantile(0.99);
  samples.push_back(sample);
}

FrontendResult ServiceFrontend::run() {
  const obs::MetricsScope metrics_scope;
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t offered = config_.service.offered;
  DA_EXPECTS(offered >= 1);
  const double period = config_.service.round_period;
  const double sample_every = config_.service.sample_every;
  const std::size_t nshards = shards_.size();
  for (auto& shard : shards_) {
    shard->begin_run(offered / nshards + 1);
  }

  FrontendResult result;
  result.shard_of.assign(offered, 0);

  ArrivalGenerator gen(config_.service.arrivals, config_.service.seed);
  const std::size_t adversary_count = shards_.front()->adversary_count();
  std::uint64_t arrived = 0;
  std::uint64_t finished = 0;
  double next_arrival = gen.next();
  double next_tick = kNever;
  double next_sample = sample_every > 0.0 ? sample_every : kNever;
  double now = 0.0;

  const auto any_active = [this] {
    for (const auto& shard : shards_) {
      if (!shard->idle()) return true;
    }
    return false;
  };
  const auto total_finished = [this] {
    std::uint64_t n = 0;
    for (const auto& shard : shards_) n += shard->finished();
    return n;
  };

  // One global event loop over all shards: the same arrival-first
  // tie-break and the same persistent tick grid as the single service,
  // so an uncongested stream sees identical event instants either way.
  while (finished < offered) {
    const double next_event = std::min(next_arrival, next_tick);
    while (next_sample < next_event) {
      push_sample(next_sample, result.samples);
      next_sample += sample_every;
    }
    if (arrived < offered && next_arrival <= next_tick) {
      now = next_arrival;
      const std::uint64_t id = arrived++;
      next_arrival = arrived < offered ? gen.next() : kNever;
      JobOffer offer;
      offer.id = id;
      offer.template_index =
          draw_template_index(config_.service.seed, id, mix_.size());
      offer.adversary_index =
          draw_adversary_index(config_.service.seed, id, adversary_count);
      const int s = route(id);
      result.shard_of[id] = s;
      routed_counter().add();
      shards_[static_cast<std::size_t>(s)]->offer_job(offer, now);
      finished = total_finished();  // overload sheds settle immediately
      if (next_tick == kNever &&
          !shards_[static_cast<std::size_t>(s)]->idle()) {
        next_tick = now + period;
      }
      continue;
    }
    DA_EXPECTS(next_tick != kNever);  // else nothing active and no arrivals
    now = next_tick;
    frontend_ticks_counter().add();
    ++result.ticks;
    // Lockstep tick: every non-idle shard advances one round batch at
    // the same instant. Idle shards have empty queues (queue non-empty
    // implies active inside a shard), so skipping them loses nothing.
    if (pool_ != nullptr) {
      for (auto& shard : shards_) {
        if (shard->idle()) continue;
        AgreementService* raw = shard.get();
        pool_->submit([raw, now] {
          const obs::MetricsScope worker_scope;
          raw->step(now);
        });
      }
      pool_->wait_idle();
    } else {
      for (auto& shard : shards_) {
        if (!shard->idle()) shard->step(now);
      }
    }
    finished = total_finished();
    next_tick = any_active() ? now + period : kNever;
  }

  // Close the aggregated series at the makespan.
  if (sample_every > 0.0) push_sample(now, result.samples);

  result.makespan = now;
  // Fold the shards back into one stream: exact sketch merges, record
  // concat + sort by global id, span concat + re-canonicalization.
  result.records.reserve(offered);
  for (std::size_t s = 0; s < nshards; ++s) {
    ServiceResult part = shards_[s]->end_run(now);
    FrontendShardSummary summary;
    summary.seed = shards_[s]->config().seed;
    summary.offered = part.records.size();
    summary.completed = part.completed;
    summary.shed = part.shed;
    summary.deadline_missed = part.deadline_missed;
    summary.peak_active = part.peak_active;
    result.shards.push_back(summary);
    result.completed += part.completed;
    result.shed += part.shed;
    result.deadline_missed += part.deadline_missed;
    result.violations += part.violations;
    result.latency_sketch.merge(part.latency_sketch);
    result.queue_sketch.merge(part.queue_sketch);
    for (int c = 0; c < kAdmissionClassCount; ++c) {
      result.class_latency[static_cast<std::size_t>(c)].merge(
          part.class_latency[static_cast<std::size_t>(c)]);
    }
    result.records.insert(result.records.end(), part.records.begin(),
                          part.records.end());
    result.spans.insert(result.spans.end(), part.spans.begin(),
                        part.spans.end());
    obs::MetricsRegistry::global().set_gauge(
        "frontend.shard" + std::to_string(s) + ".completed",
        static_cast<double>(part.completed));
  }
  std::sort(result.records.begin(), result.records.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.id < b.id; });
  if (!result.spans.empty()) obs::canonicalize(result.spans);
  obs::MetricsRegistry::global().set_gauge("frontend.shards",
                                           static_cast<double>(nshards));
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return result;
}

std::uint64_t FrontendResult::digest() const {
  // Everything deterministic about the run, excluding wall_ms: the merged
  // records plus each job's shard placement and the shard count.
  std::uint64_t h = mix64(0xf407e4d, records.size());
  h = mix64(h, static_cast<std::uint64_t>(shards.size()));
  for (const JobRecord& rec : records) {
    h = fold_job_record(h, rec);
    h = mix64(h, static_cast<std::uint64_t>(shard_of[rec.id]));
  }
  return h;
}

std::string FrontendResult::artifact() const {
  std::string out;
  out.reserve(records.size() * 112);
  for (const JobRecord& rec : records) append_record_line(out, rec);
  return out;
}

FrontendResult run_frontend(const FrontendConfig& config) {
  ServiceFrontend frontend(config);
  return frontend.run();
}

}  // namespace da::service
