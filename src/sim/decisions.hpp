#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "util/contracts.hpp"
#include "util/ids.hpp"
#include "util/value.hpp"

namespace da::sim {

/// One decision per node, stored as a flat vector sorted by NodeId.
///
/// This is the per-execution result payload of the runners, allocated once
/// per protocol execution in the exhaustive-search hot loops — a sorted
/// vector instead of a node-keyed `std::map` keeps that allocation to one
/// contiguous block and makes lookups a branch-predictable binary search.
/// The map-facing surface (`at`, `find`, `operator[]`, iteration over
/// `std::pair<NodeId, Value>`, conversion to `std::map`) is kept so the
/// checker/table call sites read exactly as before.
class Decisions {
 public:
  using value_type = std::pair<NodeId, Value>;
  using const_iterator = std::vector<value_type>::const_iterator;

  Decisions() = default;

  /// Value for `id`; inserts V_d if absent (map-style upsert).
  Value& operator[](NodeId id) {
    const auto it = lower_bound(id);
    if (it != entries_.end() && it->first == id) return it->second;
    return entries_.insert(it, {id, Value::def()})->second;
  }

  /// Value for `id`; contract violation if absent.
  [[nodiscard]] const Value& at(NodeId id) const {
    const Value* v = find(id);
    DA_EXPECTS(v != nullptr);
    return *v;
  }

  /// Pointer to the value for `id`, or nullptr if absent.
  [[nodiscard]] const Value* find(NodeId id) const {
    const auto it = lower_bound(id);
    return it != entries_.end() && it->first == id ? &it->second : nullptr;
  }

  [[nodiscard]] bool contains(NodeId id) const { return find(id) != nullptr; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }  // keeps capacity: forks reuse storage

  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  friend bool operator==(const Decisions&, const Decisions&) = default;

  friend bool operator==(const Decisions& a,
                         const std::map<NodeId, Value>& b) {
    if (a.size() != b.size()) return false;
    auto it = b.begin();
    for (const auto& [node, value] : a.entries_) {
      if (node != it->first || value != it->second) return false;
      ++it;
    }
    return true;
  }

  /// Compatibility accessor for map-based call sites (crusader/OM checkers,
  /// differential artifacts). Implicit so existing code compiles unchanged;
  /// costs one allocation per node — keep it off the search hot paths.
  operator std::map<NodeId, Value>() const {  // NOLINT(google-explicit-*)
    return {entries_.begin(), entries_.end()};
  }

 private:
  [[nodiscard]] std::vector<value_type>::iterator lower_bound(NodeId id) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), id,
        [](const value_type& e, NodeId key) { return e.first < key; });
  }
  [[nodiscard]] const_iterator lower_bound(NodeId id) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), id,
        [](const value_type& e, NodeId key) { return e.first < key; });
  }

  std::vector<value_type> entries_;
};

}  // namespace da::sim
