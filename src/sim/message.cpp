#include "sim/message.hpp"

namespace da::sim {

std::string Message::to_string() const {
  std::string s = "msg(" + std::to_string(from) + "->" + std::to_string(to) +
                  " r" + std::to_string(round) + " " + path.to_string() + " " +
                  value.to_string();
  if (aux != 0) s += " aux=" + std::to_string(aux);
  return s + ")";
}

}  // namespace da::sim
