#include "sim/message.hpp"

namespace da::sim {

std::string Message::to_string() const {
  std::string s = "msg(" + std::to_string(from) + "->" + std::to_string(to) +
                  " r" + std::to_string(round) + " " + path.to_string() + " " +
                  value.to_string();
  if (aux != 0) s += " aux=" + std::to_string(aux);
  return s + ")";
}

std::size_t wire_size_bytes(const Message& msg) {
  std::size_t bytes = 4 + 4 + 4;           // from, to, round
  bytes += 1 + msg.path.size();            // path length + hops
  bytes += msg.value.is_default() ? 1 : 9; // value tag (+ payload)
  if (msg.aux != 0) bytes += 8;
  return bytes;
}

}  // namespace da::sim
