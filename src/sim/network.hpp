#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "sim/message.hpp"

namespace da::sim {

/// Models the link layer between two fault-free endpoints (adversaries
/// handle faulty senders separately). `deliver` returning false means the
/// receiver observes an absent message.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;
  [[nodiscard]] virtual bool deliver(const Message& msg) = 0;

  /// Generalization for networks that *alter* messages in transit (e.g.
  /// multi-hop relay channels over a sparse graph, where faulty interior
  /// nodes may corrupt a copy and the receiver votes over the path copies).
  /// Default: all-or-nothing delivery with content intact.
  [[nodiscard]] virtual std::optional<Message> transit(const Message& msg) {
    return deliver(msg) ? std::optional<Message>(msg) : std::nullopt;
  }

  /// Fan-out generalization for networks that may deliver *several* copies
  /// of one send (duplication faults — src/inject/). All three runtimes
  /// route every send through this entry point. Implementations must keep
  /// the result a pure function of the message identity, never of call
  /// order. Default: zero-or-one copies via transit().
  [[nodiscard]] virtual std::vector<Message> transit_fanout(
      const Message& msg) {
    std::optional<Message> one = transit(msg);
    if (one) return {std::move(*one)};
    return {};
  }

  /// Injection hook for the event-driven runtime: an extra in-window
  /// delivery delay for `msg`, as a fraction [0,1) of the receiver's
  /// remaining round window after link latency. The round-synchronous
  /// runtimes ignore it (intra-round delivery order is canonicalized by
  /// sort_inbox), so a holdback perturbs real-time arrival order without
  /// changing any observable decision — which is exactly what the
  /// differential-replay harness asserts. Must be a pure function of the
  /// message identity.
  [[nodiscard]] virtual double holdback(const Message& msg) {
    (void)msg;
    return 0.0;
  }
};

/// Assumption (a)/(b) of Section 4: all messages delivered, absence
/// detectable. The baseline network.
class ReliableNetwork final : public NetworkModel {
 public:
  [[nodiscard]] bool deliver(const Message&) override { return true; }
};

/// Section 6.1 relaxation: when more than m nodes are faulty, clock
/// synchronization can no longer be guaranteed, so a fault-free node "may
/// incorrectly declare a message from another fault-free node to be absent
/// (due to time-outs)". We model that as an i.i.d. drop with probability
/// `drop_prob` on fault-free->fault-free messages, enabled only when the
/// scenario's fault count exceeds m (set via `set_active`).
///
/// Drops are a pure function of (seed, from, to, round, path) so the
/// deterministic and threaded runtimes observe identical behaviour.
class FalseTimeoutNetwork final : public NetworkModel {
 public:
  FalseTimeoutNetwork(double drop_prob, std::uint64_t seed)
      : drop_prob_(drop_prob), seed_(seed) {}

  void set_active(bool active) { active_ = active; }

  [[nodiscard]] bool deliver(const Message& msg) override;

 private:
  double drop_prob_;
  std::uint64_t seed_;
  bool active_ = false;
};

/// Restricts communication to the edges of a graph: messages between
/// non-adjacent nodes are never delivered. Used by the connectivity
/// experiments (Theorem 3).
class TopologyNetwork final : public NetworkModel {
 public:
  explicit TopologyNetwork(graph::Graph g) : graph_(std::move(g)) {}

  [[nodiscard]] bool deliver(const Message& msg) override;

  [[nodiscard]] const graph::Graph& graph() const { return graph_; }

 private:
  graph::Graph graph_;
};

}  // namespace da::sim
