#pragma once

#include <memory>
#include <vector>

#include "sim/message.hpp"
#include "util/contracts.hpp"
#include "util/ids.hpp"
#include "util/value.hpp"

namespace da::sim {

/// Per-node protocol logic, written once and executed by either runtime
/// (the deterministic `SyncRunner` or the thread-per-node `ThreadedRunner`).
///
/// Lifecycle driven by a runner:
///   1. `start()` is called once; returned messages are the node's round-0
///      sends.
///   2. For r = 0..total_rounds()-1, `on_round(r, inbox)` receives exactly
///      the messages addressed to this node that were sent in round r (after
///      adversary corruption and network filtering) and returns the node's
///      round r+1 sends. Messages returned from the final round are
///      discarded.
///   3. `decide()` is queried after the final round.
class Process {
 public:
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] virtual NodeId id() const = 0;

  /// Number of communication rounds this protocol needs.
  [[nodiscard]] virtual int total_rounds() const = 0;

  /// Round-0 sends.
  [[nodiscard]] virtual std::vector<Message> start() = 0;

  /// Handle the messages delivered in round `round`; return round+1 sends.
  [[nodiscard]] virtual std::vector<Message> on_round(
      int round, const std::vector<Message>& inbox) = 0;

  /// The node's decision after the final round.
  [[nodiscard]] virtual Value decide() const = 0;

  /// Deep copy of the process mid-execution, for the checkpoint/fork
  /// round engine (sim/round_engine.hpp). Protocol process types
  /// (EIG-family, SM) override this; the default is a contract violation
  /// so ad-hoc processes that never meet a checkpoint need not bother.
  [[nodiscard]] virtual std::unique_ptr<Process> clone() const {
    DA_EXPECTS(false && "Process::clone not implemented for this type");
    return nullptr;
  }

  /// Copies `other`'s execution state into this process, reusing existing
  /// storage (the allocation-free form of clone() used when forking into
  /// a live engine). `other` must be the same concrete type over the same
  /// instance topology (same id, sender, participants, depth).
  virtual void assign_from(const Process& other) {
    (void)other;
    DA_EXPECTS(false && "Process::assign_from not implemented for this type");
  }

 protected:
  Process() = default;
};

}  // namespace da::sim
