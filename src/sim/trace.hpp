#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "util/ids.hpp"

namespace da::sim {

/// Records the full sequence of messages each node received, in a canonical
/// order. The Figure 2 / Theorem 2 demonstration uses traces to show
/// *indistinguishability*: a fault-free node's trace is byte-identical in
/// two different fault scenarios, so its decision must be identical too.
class Trace {
 public:
  void record(const Message& msg);

  /// Canonical per-node transcript: messages sorted by (round, from, path).
  [[nodiscard]] std::string transcript(NodeId node) const;

  [[nodiscard]] const std::vector<Message>& received(NodeId node) const;

  /// True if `node` received byte-identical transcripts in `*this` and
  /// `other`.
  [[nodiscard]] bool indistinguishable_for(NodeId node,
                                           const Trace& other) const;

  [[nodiscard]] std::size_t total_messages() const;

  /// Nodes that received at least one message, ascending.
  [[nodiscard]] std::vector<NodeId> nodes() const;

 private:
  std::map<NodeId, std::vector<Message>> by_node_;
  static const std::vector<Message> kEmpty;
};

}  // namespace da::sim
