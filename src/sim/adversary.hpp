#pragma once

#include <optional>
#include <vector>

#include "sim/message.hpp"

namespace da::sim {

/// A Byzantine adversary controls every faulty node at once (collusion is
/// the worst case and subsumes independent faults).
///
/// The runner passes each outgoing message of a faulty node through
/// `corrupt`; the adversary may rewrite the value, or return nullopt to
/// suppress the message (which fault-free receivers observe as an absent
/// message, i.e. the default value V_d — assumption (b) of Section 4).
///
/// Receivers validate message structure (correct round, well-formed path,
/// matching `from`), so an adversary forging *metadata* is equivalent to one
/// omitting the message; forging the *value* is the full Byzantine power for
/// the protocols studied here. `fabricate` additionally lets an adversary
/// send messages a correct node never would (e.g. a faulty node "echoing" a
/// value it never received); fabricated messages are validated by receivers
/// like any others.
///
/// Implementations must derive all randomness from the message identity
/// (via `da::mix64`), never from call order: both runtimes must observe
/// identical behaviour.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Transform an outgoing message of a faulty node. nullopt = omit.
  [[nodiscard]] virtual std::optional<Message> corrupt(
      const Message& original) = 0;

  /// Extra messages the faulty `node` injects in round `round` (these are
  /// in addition to — not instead of — its protocol sends).
  [[nodiscard]] virtual std::vector<Message> fabricate(NodeId node,
                                                       int round) {
    (void)node;
    (void)round;
    return {};
  }
};

/// The identity adversary: faulty nodes follow the protocol. Useful as a
/// control and for "crashed but honest" baselines.
class HonestAdversary final : public Adversary {
 public:
  [[nodiscard]] std::optional<Message> corrupt(
      const Message& original) override {
    return original;
  }
};

}  // namespace da::sim
