#include "sim/network.hpp"

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace da::sim {

bool FalseTimeoutNetwork::deliver(const Message& msg) {
  if (!active_ || drop_prob_ <= 0.0) return true;
  std::uint64_t h = mix64(seed_, static_cast<std::uint64_t>(msg.from));
  h = mix64(h, static_cast<std::uint64_t>(msg.to));
  h = mix64(h, static_cast<std::uint64_t>(msg.round));
  h = mix64(h, msg.path.hash());
  const double x = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (x < drop_prob_) {
    static const obs::Counter dropped("sim.network.false_timeouts");
    dropped.add();
    return false;
  }
  return true;
}

bool TopologyNetwork::deliver(const Message& msg) {
  if (graph_.has_edge(msg.from, msg.to)) return true;
  static const obs::Counter blocked("sim.network.topology_blocked");
  blocked.add();
  return false;
}

}  // namespace da::sim
