#include "sim/network.hpp"

#include "util/rng.hpp"

namespace da::sim {

bool FalseTimeoutNetwork::deliver(const Message& msg) {
  if (!active_ || drop_prob_ <= 0.0) return true;
  std::uint64_t h = mix64(seed_, static_cast<std::uint64_t>(msg.from));
  h = mix64(h, static_cast<std::uint64_t>(msg.to));
  h = mix64(h, static_cast<std::uint64_t>(msg.round));
  h = mix64(h, msg.path.hash());
  const double x = static_cast<double>(h >> 11) * 0x1.0p-53;
  return x >= drop_prob_;
}

}  // namespace da::sim
