#include "sim/round_engine.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "util/contracts.hpp"

namespace da::sim {

namespace {

const obs::Counter& executions_counter() {
  static const obs::Counter c("sim.executions");
  return c;
}
const obs::Counter& rounds_counter() {
  static const obs::Counter c("sim.rounds");
  return c;
}
const obs::Counter& sent_counter() {
  static const obs::Counter c("sim.messages_sent");
  return c;
}
const obs::Counter& delivered_counter() {
  static const obs::Counter c("sim.messages_delivered");
  return c;
}
const obs::Counter& wire_bytes_counter() {
  static const obs::Counter c("sim.wire_bytes");
  return c;
}
const obs::Counter& fabrications_dropped_counter() {
  static const obs::Counter c("sim.fabrications_dropped");
  return c;
}
const obs::Histogram& round_ms_histogram() {
  static const obs::Histogram h("sim.round_ms");
  return h;
}

}  // namespace

RoundEngine::RoundEngine(std::vector<std::unique_ptr<Process>> processes,
                         RunOptions options)
    : processes_(std::move(processes)),
      options_(std::move(options)),
      index_(processes_) {
  DA_EXPECTS(!processes_.empty());
  DA_EXPECTS(options_.faulty.empty() || options_.adversary != nullptr);
  for (NodeId f : options_.faulty) {
    DA_EXPECTS(index_.at(f) != NodeIndex::npos);
  }
  rounds_ = processes_[0]->total_rounds();
  for (const auto& p : processes_) DA_EXPECTS(p->total_rounds() == rounds_);
  const std::size_t n = processes_.size();
  pending_.resize(n);
  inflight_.resize(n);
  delivered_.resize(n);
}

void RoundEngine::begin() {
  DA_EXPECTS(!begun_);
  executions_counter().add();
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    pending_[i] = processes_[i]->start();
  }
  pending_round_ = 0;
  begun_ = true;
  dispatched_ = false;
}

void RoundEngine::dispatch(std::vector<Message>& outbox, NodeId from,
                           int round, bool fabricated) {
  const bool faulty = is_faulty(options_, from);
  // Metric deltas are batched per dispatch call — identical totals, one
  // thread-local add per metric instead of three per message.
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t wire_bytes = 0;
  const auto deliver = [&](const Message& copy) {
    const std::size_t to = index_.at(copy.to);
    if (to == NodeIndex::npos) {
      // Only fabricate() can aim at a non-participant (corrupt() is
      // normalized, honest processes address peers): drop and count.
      DA_EXPECTS(fabricated);
      fabrications_dropped_counter().add();
      return;
    }
    ++messages_delivered_;
    ++delivered;
    wire_bytes += wire_size_bytes(copy);
    if (options_.trace != nullptr) options_.trace->record(copy);
    inflight_[to].push_back(copy);
  };

  for (Message& msg : outbox) {
    DA_EXPECTS(msg.from == from);
    msg.round = round;
    ++messages_sent_;
    ++sent;
    if (options_.network == nullptr) {
      // Reliable-link fast path: no per-message fan-out vector. Semantics
      // identical to filter_fanout (corrupt + from/to/round normalization).
      if (fabricated || !faulty) {
        deliver(msg);
        continue;
      }
      DA_EXPECTS(options_.adversary != nullptr);
      std::optional<Message> out = options_.adversary->corrupt(msg);
      if (!out) continue;
      out->from = msg.from;
      out->to = msg.to;
      out->round = msg.round;
      deliver(*out);
    } else {
      // Fabricated messages already carry adversarial content; they skip
      // corrupt() but still traverse the network model.
      for (const Message& copy :
           filter_fanout(msg, options_, faulty, fabricated)) {
        deliver(copy);
      }
    }
  }
  if (sent != 0) sent_counter().add(sent);
  if (delivered != 0) delivered_counter().add(delivered);
  if (wire_bytes != 0) wire_bytes_counter().add(wire_bytes);
  if (options_.spans != nullptr) {
    options_.spans->note_send(round, sent);
    options_.spans->note_deliver(round, delivered);
  }
}

void RoundEngine::dispatch_pending() {
  DA_EXPECTS(begun_ && !dispatched_ && !done());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    dispatch(pending_[i], processes_[i]->id(), pending_round_,
             /*fabricated=*/false);
    pending_[i].clear();  // keep capacity for the next collect
    if (is_faulty(options_, processes_[i]->id())) {
      std::vector<Message> fabricated =
          options_.adversary->fabricate(processes_[i]->id(), pending_round_);
      dispatch(fabricated, processes_[i]->id(), pending_round_,
               /*fabricated=*/true);
    }
  }
  dispatched_ = true;
}

void RoundEngine::process_round() {
  DA_EXPECTS(begun_ && dispatched_ && !done());
  rounds_counter().add();
  const obs::ScopedTimer round_timer(round_ms_histogram());
  const int r = rounds_processed_;
  delivered_.swap(inflight_);  // inflight buffers are all empty (cleared)
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    Process& p = *processes_[i];
    std::vector<Message>& inbox = delivered_[i];
    sort_inbox(inbox);
    std::vector<Message> outbox = p.on_round(r, inbox);
    inbox.clear();  // keep capacity for the round after next
    if (r + 1 < rounds_) {
      pending_[i] = std::move(outbox);
    }
    // Messages returned from the final round are discarded, uncounted —
    // same as SyncRunner.
  }
  rounds_processed_ = r + 1;
  pending_round_ = r + 1;
  dispatched_ = false;
  if (options_.spans != nullptr) {
    options_.spans->note_resolve(r, processes_.size());
    if (done()) options_.spans->note_done(rounds_);
  }
}

RunResult RoundEngine::finish() const {
  RunResult result;
  finish_into(result);
  return result;
}

void RoundEngine::finish_into(RunResult& out) const {
  DA_EXPECTS(done());
  out.decisions.clear();
  for (const auto& p : processes_) out.decisions[p->id()] = p->decide();
  out.messages_sent = messages_sent_;
  out.messages_delivered = messages_delivered_;
  out.rounds = rounds_;
}

RunResult RoundEngine::run() {
  const obs::MetricsScope metrics_scope;
  if (!begun_) begin();
  while (!done()) {
    dispatch_pending();
    process_round();
  }
  return finish();
}

RoundEngine::Snapshot RoundEngine::snapshot() const {
  DA_EXPECTS(begun_ && !dispatched_);
  Snapshot snap;
  snap.processes.reserve(processes_.size());
  for (const auto& p : processes_) snap.processes.push_back(p->clone());
  snap.pending = pending_;
  snap.pending_round = pending_round_;
  snap.rounds_processed = rounds_processed_;
  snap.begun = begun_;
  snap.messages_sent = messages_sent_;
  snap.messages_delivered = messages_delivered_;
  if (options_.trace != nullptr) {
    snap.trace = *options_.trace;
    snap.trace_attached = true;
  }
  return snap;
}

void RoundEngine::restore(const Snapshot& snap) {
  DA_EXPECTS(snap.processes.size() == processes_.size());
  DA_EXPECTS((options_.trace != nullptr) == snap.trace_attached);
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    processes_[i]->assign_from(*snap.processes[i]);
  }
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    pending_[i] = snap.pending[i];  // copy-assign: reuses capacity
    inflight_[i].clear();
    delivered_[i].clear();
  }
  pending_round_ = snap.pending_round;
  rounds_processed_ = snap.rounds_processed;
  begun_ = snap.begun;
  dispatched_ = false;
  messages_sent_ = snap.messages_sent;
  messages_delivered_ = snap.messages_delivered;
  if (snap.trace_attached) *options_.trace = snap.trace;
}

}  // namespace da::sim
