#pragma once

#include <memory>
#include <vector>

#include "sim/runner.hpp"

namespace da::sim {

/// Resumable synchronous-round executor: `SyncRunner`'s loop, unrolled
/// into explicit phases so a search can checkpoint an execution at a round
/// boundary and fork cheap copies that continue under different adversary
/// decisions.
///
/// A round has two phases, and the engine alternates them:
///
///   1. *collect* — `begin()` gathers every process's round-0 sends;
///      `process_round()` delivers the pending inboxes for the current
///      round (canonical `sort_inbox` order), runs `on_round`, and gathers
///      the resulting next-round outboxes. Collected outboxes are *held*,
///      not yet sent.
///   2. *dispatch* — `dispatch_pending()` pushes the held outboxes through
///      the adversary (`corrupt`/`fabricate`) and the network model into
///      the receivers' inboxes.
///
/// The split matters because all adversary influence happens at dispatch:
/// a snapshot taken between collect and dispatch (the *pre-dispatch
/// boundary*) captures an execution prefix that is independent of any
/// adversary decision not yet applied. `snapshot()` copies the full state
/// at such a boundary — `Process::clone()` of every node (plain vector
/// copies for the flat EIG arena), the held outboxes, the result counters,
/// and the trace prefix when a trace is attached — and `restore()` rewinds
/// an engine to it, reusing the engine's existing buffers so steady-state
/// forking allocates nothing. `set_adversary()` swaps the adversary
/// between forks; the prefix stays valid as long as the swapped-in
/// adversary would have made the same (absent) round-0..k decisions, which
/// docs/SEARCH.md's checkpoint-engine section spells out.
///
/// `run()` drives the phases to completion and is exactly `SyncRunner`'s
/// loop — `SyncRunner::run()` now delegates here, so the two cannot drift.
class RoundEngine {
 public:
  RoundEngine(std::vector<std::unique_ptr<Process>> processes,
              RunOptions options);

  /// Collects round-0 sends. Must be the first phase call; counts one
  /// `sim.executions`.
  void begin();

  /// Dispatches the held outboxes (adversary, network, routing) into the
  /// receivers' next-round inboxes.
  void dispatch_pending();

  /// Delivers the current round's inboxes, runs `on_round`, holds the
  /// next-round outboxes. After the final round there is nothing left to
  /// dispatch and `done()` is true.
  void process_round();

  /// True once every round has been processed.
  [[nodiscard]] bool done() const { return rounds_processed_ == rounds_; }

  /// Decisions + logical message counters of the execution so far.
  [[nodiscard]] RunResult finish() const;

  /// Reuse-friendly `finish()`: overwrites `out`, keeping its capacity.
  void finish_into(RunResult& out) const;

  /// Drives begin (unless already begun) / dispatch / process to
  /// completion and returns the result. One-shot equivalent of SyncRunner.
  RunResult run();

  [[nodiscard]] int total_rounds() const { return rounds_; }
  /// Rounds fully processed so far (= the next round to process).
  [[nodiscard]] int rounds_processed() const { return rounds_processed_; }

  /// Swap the adversary applied to future dispatches (forks install their
  /// own table); faulty-set, network and process topology stay fixed.
  void set_adversary(Adversary* adversary) { options_.adversary = adversary; }

  /// Swap the network model applied to future dispatches. Like
  /// `set_adversary`, this is sound at a pre-dispatch boundary: no
  /// dispatch of the current prefix consulted the old model after that
  /// boundary. The agreement service uses it to attach a per-slot
  /// fault-injection network on admission (docs/SERVICE.md).
  void set_network(NetworkModel* network) { options_.network = network; }

  /// Full engine state at a pre-dispatch boundary. Opaque to callers;
  /// create with `snapshot()`, consume with `restore()`.
  struct Snapshot {
    std::vector<std::unique_ptr<Process>> processes;
    std::vector<std::vector<Message>> pending;
    int pending_round = 0;
    int rounds_processed = 0;
    bool begun = false;
    std::size_t messages_sent = 0;
    std::size_t messages_delivered = 0;
    Trace trace;  // prefix transcript; meaningful iff trace_attached
    bool trace_attached = false;
  };

  /// Captures the state. Legal only at a pre-dispatch boundary (after
  /// `begin()` or `process_round()`, before `dispatch_pending()`), where
  /// the in-flight buffers are empty by construction.
  [[nodiscard]] Snapshot snapshot() const;

  /// Rewinds this engine to `snap` (which must come from an engine over
  /// the same process set). Buffers are assigned over, not reallocated, so
  /// repeated restore/replay cycles are allocation-free at steady state.
  void restore(const Snapshot& snap);

 private:
  void dispatch(std::vector<Message>& outbox, NodeId from, int round,
                bool fabricated);

  std::vector<std::unique_ptr<Process>> processes_;
  RunOptions options_;
  NodeIndex index_;
  int rounds_ = 0;

  // Held outboxes (one per process) for round `pending_round_`, collected
  // but not yet dispatched. `begun_` flips on begin(); `dispatched_`
  // tracks which phase is next.
  std::vector<std::vector<Message>> pending_;
  int pending_round_ = 0;
  bool begun_ = false;
  bool dispatched_ = false;

  // In-flight inboxes for round `rounds_processed_` (filled by dispatch,
  // consumed by process_round) and the spare buffer set they swap with.
  std::vector<std::vector<Message>> inflight_;
  std::vector<std::vector<Message>> delivered_;
  int rounds_processed_ = 0;

  std::size_t messages_sent_ = 0;
  std::size_t messages_delivered_ = 0;
};

}  // namespace da::sim
