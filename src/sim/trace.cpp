#include "sim/trace.hpp"

#include <algorithm>

namespace da::sim {

const std::vector<Message> Trace::kEmpty{};

void Trace::record(const Message& msg) { by_node_[msg.to].push_back(msg); }

std::string Trace::transcript(NodeId node) const {
  auto msgs = received(node);
  std::sort(msgs.begin(), msgs.end(),
            [](const Message& a, const Message& b) {
              if (a.round != b.round) return a.round < b.round;
              if (a.from != b.from) return a.from < b.from;
              return a.path < b.path;
            });
  std::string out;
  for (const Message& m : msgs) {
    out += m.to_string();
    out += '\n';
  }
  return out;
}

const std::vector<Message>& Trace::received(NodeId node) const {
  const auto it = by_node_.find(node);
  return it == by_node_.end() ? kEmpty : it->second;
}

bool Trace::indistinguishable_for(NodeId node, const Trace& other) const {
  return transcript(node) == other.transcript(node);
}

std::vector<NodeId> Trace::nodes() const {
  std::vector<NodeId> out;
  out.reserve(by_node_.size());
  for (const auto& [node, msgs] : by_node_) out.push_back(node);
  return out;
}

std::size_t Trace::total_messages() const {
  std::size_t total = 0;
  for (const auto& [node, msgs] : by_node_) total += msgs.size();
  return total;
}

}  // namespace da::sim
