#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/ids.hpp"
#include "util/path.hpp"
#include "util/value.hpp"

namespace da::sim {

/// A point-to-point message. All protocols in this repository are
/// synchronous-round protocols: a message produced in round r is delivered
/// at the start of round r (the runner enforces the discipline).
///
/// `path` is the relay chain used by EIG protocols (BYZ / OM / IC); for
/// other payloads (clock readings, channel outputs) it is empty and `aux`
/// carries auxiliary data.
struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  int round = 0;
  Path path{};
  Value value{};
  std::int64_t aux = 0;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Size of `msg` under a compact reference wire encoding, in bytes. Used
/// by the metrics layer to account bits-on-wire: 4-byte from/to/round, a
/// length-prefixed path (1 byte length + 1 byte per hop), a 1-byte value
/// tag plus an 8-byte payload for non-default values, and an 8-byte aux
/// field only when aux is nonzero.
[[nodiscard]] std::size_t wire_size_bytes(const Message& msg);

}  // namespace da::sim
