#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "sim/adversary.hpp"
#include "sim/decisions.hpp"
#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/trace.hpp"
#include "util/ids.hpp"

namespace da::obs {
class SpanSink;
}  // namespace da::obs

namespace da::sim {

/// Everything a runner needs besides the processes themselves.
struct RunOptions {
  /// Ids of Byzantine nodes. Must be process ids.
  std::vector<NodeId> faulty{};
  /// Controls all faulty nodes. May be null iff `faulty` is empty.
  Adversary* adversary = nullptr;
  /// Link model; null means reliable delivery.
  NetworkModel* network = nullptr;
  /// Optional transcript capture (delivered messages per receiver).
  Trace* trace = nullptr;
  /// Optional per-round phase tallies (send/deliver/resolve spans, see
  /// obs/spans.hpp). The runtimes call it from their serialized dispatch
  /// sections, so one sink observes one execution at a time.
  obs::SpanSink* spans = nullptr;
};

/// Outcome of one protocol execution.
struct RunResult {
  /// Every node's decision (including the sender's, which for fault-free
  /// senders is its own value by construction of the protocols). A flat
  /// sorted vector under a map-like surface — see sim/decisions.hpp.
  Decisions decisions;
  std::size_t messages_sent = 0;
  std::size_t messages_delivered = 0;
  int rounds = 0;
};

/// Deterministic, single-threaded synchronous-round executor. Rounds are
/// global: all messages produced in round r are delivered together at the
/// start of processing for round r, in a canonical order (sender id, then
/// relay path), so executions are exactly reproducible. The loop itself
/// lives in `RoundEngine` (sim/round_engine.hpp), which additionally
/// supports checkpoint/fork replay; `run()` is the one-shot form.
class SyncRunner {
 public:
  SyncRunner(std::vector<std::unique_ptr<Process>> processes,
             RunOptions options);

  [[nodiscard]] RunResult run();

 private:
  std::vector<std::unique_ptr<Process>> processes_;
  RunOptions options_;
};

/// The single normalization path used by all three runtimes' dispatch
/// loops: adversary
/// (skipped for fabricated messages, which already carry adversarial
/// content), then the network model's transit_fanout. A duplicating
/// network (src/inject/) may return several copies; a dropping one, none.
[[nodiscard]] std::vector<Message> filter_fanout(const Message& msg,
                                                 const RunOptions& options,
                                                 bool from_is_faulty,
                                                 bool fabricated);

/// True if `id` is in `options.faulty`.
[[nodiscard]] bool is_faulty(const RunOptions& options, NodeId id);

/// Dense NodeId -> process-index table shared by the three runtimes'
/// indexed inbox buffers: `at(id)` is the process position, or npos for
/// ids no process owns. Honest senders and the normalized adversary
/// `corrupt` hook can only target participants, but `fabricate` may aim
/// anywhere — runtimes must *drop* (and count) fabricated messages whose
/// target is unknown instead of growing a map or writing out of bounds.
class NodeIndex {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit NodeIndex(const std::vector<std::unique_ptr<Process>>& processes);

  [[nodiscard]] std::size_t at(NodeId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < index_.size()
               ? index_[static_cast<std::size_t>(id)]
               : npos;
  }

  [[nodiscard]] std::size_t size() const { return count_; }

 private:
  std::vector<std::size_t> index_;  // NodeId -> position, npos when unknown
  std::size_t count_ = 0;
};

/// Canonical inbox order used by both runtimes.
void sort_inbox(std::vector<Message>& inbox);

}  // namespace da::sim
