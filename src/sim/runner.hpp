#pragma once

#include <map>
#include <memory>
#include <vector>

#include "sim/adversary.hpp"
#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/trace.hpp"
#include "util/ids.hpp"

namespace da::sim {

/// Everything a runner needs besides the processes themselves.
struct RunOptions {
  /// Ids of Byzantine nodes. Must be process ids.
  std::vector<NodeId> faulty{};
  /// Controls all faulty nodes. May be null iff `faulty` is empty.
  Adversary* adversary = nullptr;
  /// Link model; null means reliable delivery.
  NetworkModel* network = nullptr;
  /// Optional transcript capture (delivered messages per receiver).
  Trace* trace = nullptr;
};

/// Outcome of one protocol execution.
struct RunResult {
  /// Every node's decision (including the sender's, which for fault-free
  /// senders is its own value by construction of the protocols).
  std::map<NodeId, Value> decisions;
  std::size_t messages_sent = 0;
  std::size_t messages_delivered = 0;
  int rounds = 0;
};

/// Deterministic, single-threaded synchronous-round executor. Rounds are
/// global: all messages produced in round r are delivered together at the
/// start of processing for round r, in a canonical order (sender id, then
/// relay path), so executions are exactly reproducible.
class SyncRunner {
 public:
  SyncRunner(std::vector<std::unique_ptr<Process>> processes,
             RunOptions options);

  [[nodiscard]] RunResult run();

 private:
  std::vector<std::unique_ptr<Process>> processes_;
  RunOptions options_;
};

/// Shared by both runtimes: pass one outgoing message through the adversary
/// (if `from` is faulty) and the network model. Returns the possibly
/// rewritten message, or nullopt if it is suppressed/dropped.
[[nodiscard]] std::optional<Message> filter_message(const Message& msg,
                                                    const RunOptions& options,
                                                    bool from_is_faulty);

/// Fan-out variant used by all three runtimes' dispatch loops: adversary
/// (skipped for fabricated messages, which already carry adversarial
/// content), then the network model's transit_fanout. A duplicating
/// network (src/inject/) may return several copies; a dropping one, none.
[[nodiscard]] std::vector<Message> filter_fanout(const Message& msg,
                                                 const RunOptions& options,
                                                 bool from_is_faulty,
                                                 bool fabricated);

/// True if `id` is in `options.faulty`.
[[nodiscard]] bool is_faulty(const RunOptions& options, NodeId id);

/// Canonical inbox order used by both runtimes.
void sort_inbox(std::vector<Message>& inbox);

}  // namespace da::sim
