#include "sim/runner.hpp"

#include <algorithm>
#include <utility>

#include "sim/round_engine.hpp"
#include "util/contracts.hpp"

namespace da::sim {

bool is_faulty(const RunOptions& options, NodeId id) {
  return std::find(options.faulty.begin(), options.faulty.end(), id) !=
         options.faulty.end();
}

NodeIndex::NodeIndex(
    const std::vector<std::unique_ptr<Process>>& processes) {
  NodeId max_id = -1;
  for (const auto& p : processes) {
    DA_EXPECTS(p->id() >= 0);
    max_id = std::max(max_id, p->id());
  }
  index_.assign(static_cast<std::size_t>(max_id) + 1, npos);
  for (std::size_t i = 0; i < processes.size(); ++i) {
    std::size_t& slot = index_[static_cast<std::size_t>(processes[i]->id())];
    DA_EXPECTS(slot == npos);  // ids unique
    slot = i;
  }
  count_ = processes.size();
}

std::vector<Message> filter_fanout(const Message& msg,
                                   const RunOptions& options,
                                   bool from_is_faulty, bool fabricated) {
  std::optional<Message> out = msg;
  if (!fabricated && from_is_faulty) {
    DA_EXPECTS(options.adversary != nullptr);
    out = options.adversary->corrupt(msg);
    if (!out) return {};
    // The adversary may rewrite content but not impersonate other nodes or
    // time-travel: receivers would reject those, so normalize here.
    out->from = msg.from;
    out->to = msg.to;
    out->round = msg.round;
  }
  if (options.network != nullptr) {
    return options.network->transit_fanout(*out);
  }
  return {std::move(*out)};
}

void sort_inbox(std::vector<Message>& inbox) {
  // Total order: a fabricating adversary may inject duplicates of a
  // (from, path) slot with different contents, and both runtimes must
  // present them to the process in the same order.
  std::sort(inbox.begin(), inbox.end(),
            [](const Message& a, const Message& b) {
              if (a.from != b.from) return a.from < b.from;
              if (!(a.path == b.path)) return a.path < b.path;
              if (a.value != b.value) return a.value < b.value;
              return a.aux < b.aux;
            });
}

SyncRunner::SyncRunner(std::vector<std::unique_ptr<Process>> processes,
                       RunOptions options)
    : processes_(std::move(processes)), options_(std::move(options)) {
  DA_EXPECTS(!processes_.empty());
  DA_EXPECTS(options_.faulty.empty() || options_.adversary != nullptr);
  for (NodeId f : options_.faulty) {
    const bool known = std::any_of(
        processes_.begin(), processes_.end(),
        [f](const auto& p) { return p->id() == f; });
    DA_EXPECTS(known);
  }
}

RunResult SyncRunner::run() {
  return RoundEngine(std::move(processes_), std::move(options_)).run();
}

}  // namespace da::sim
