#include "sim/runner.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace da::sim {

bool is_faulty(const RunOptions& options, NodeId id) {
  return std::find(options.faulty.begin(), options.faulty.end(), id) !=
         options.faulty.end();
}

NodeIndex::NodeIndex(
    const std::vector<std::unique_ptr<Process>>& processes) {
  NodeId max_id = -1;
  for (const auto& p : processes) {
    DA_EXPECTS(p->id() >= 0);
    max_id = std::max(max_id, p->id());
  }
  index_.assign(static_cast<std::size_t>(max_id) + 1, npos);
  for (std::size_t i = 0; i < processes.size(); ++i) {
    std::size_t& slot = index_[static_cast<std::size_t>(processes[i]->id())];
    DA_EXPECTS(slot == npos);  // ids unique
    slot = i;
  }
  count_ = processes.size();
}

std::vector<Message> filter_fanout(const Message& msg,
                                   const RunOptions& options,
                                   bool from_is_faulty, bool fabricated) {
  std::optional<Message> out = msg;
  if (!fabricated && from_is_faulty) {
    DA_EXPECTS(options.adversary != nullptr);
    out = options.adversary->corrupt(msg);
    if (!out) return {};
    // The adversary may rewrite content but not impersonate other nodes or
    // time-travel: receivers would reject those, so normalize here.
    out->from = msg.from;
    out->to = msg.to;
    out->round = msg.round;
  }
  if (options.network != nullptr) {
    return options.network->transit_fanout(*out);
  }
  return {std::move(*out)};
}

void sort_inbox(std::vector<Message>& inbox) {
  // Total order: a fabricating adversary may inject duplicates of a
  // (from, path) slot with different contents, and both runtimes must
  // present them to the process in the same order.
  std::sort(inbox.begin(), inbox.end(),
            [](const Message& a, const Message& b) {
              if (a.from != b.from) return a.from < b.from;
              if (!(a.path == b.path)) return a.path < b.path;
              if (a.value != b.value) return a.value < b.value;
              return a.aux < b.aux;
            });
}

SyncRunner::SyncRunner(std::vector<std::unique_ptr<Process>> processes,
                       RunOptions options)
    : processes_(std::move(processes)), options_(std::move(options)) {
  DA_EXPECTS(!processes_.empty());
  DA_EXPECTS(options_.faulty.empty() || options_.adversary != nullptr);
  for (NodeId f : options_.faulty) {
    const bool known = std::any_of(
        processes_.begin(), processes_.end(),
        [f](const auto& p) { return p->id() == f; });
    DA_EXPECTS(known);
  }
}

RunResult SyncRunner::run() {
  const int rounds = processes_[0]->total_rounds();
  for (const auto& p : processes_) DA_EXPECTS(p->total_rounds() == rounds);

  static const obs::Counter executions("sim.executions");
  static const obs::Counter rounds_run("sim.rounds");
  static const obs::Counter sent("sim.messages_sent");
  static const obs::Counter delivered_count("sim.messages_delivered");
  static const obs::Counter wire_bytes("sim.wire_bytes");
  static const obs::Counter fabrications_dropped("sim.fabrications_dropped");
  static const obs::Histogram round_ms("sim.round_ms");
  const obs::MetricsScope metrics_scope;
  executions.add();

  RunResult result;
  result.rounds = rounds;

  const NodeIndex index(processes_);
  const std::size_t n = processes_.size();
  // Indexed round buffers, reused across rounds with capacity preserved:
  // inflight[i] collects messages for process i's next round; delivered[i]
  // is the inbox being consumed this round. The two swap roles each round.
  std::vector<std::vector<Message>> inflight(n);
  std::vector<std::vector<Message>> delivered(n);

  const auto dispatch = [&](std::vector<Message>&& outbox, NodeId from,
                            int round, bool fabricated) {
    const bool faulty = is_faulty(options_, from);
    for (Message& msg : outbox) {
      DA_EXPECTS(msg.from == from);
      msg.round = round;
      ++result.messages_sent;
      sent.add();
      // Fabricated messages already carry adversarial content; they skip
      // corrupt() but still traverse the network model.
      for (const Message& copy :
           filter_fanout(msg, options_, faulty, fabricated)) {
        const std::size_t to = index.at(copy.to);
        if (to == NodeIndex::npos) {
          // Only fabricate() can aim at a non-participant (corrupt() is
          // normalized, honest processes address peers): drop and count.
          DA_EXPECTS(fabricated);
          fabrications_dropped.add();
          continue;
        }
        ++result.messages_delivered;
        delivered_count.add();
        wire_bytes.add(wire_size_bytes(copy));
        if (options_.trace != nullptr) options_.trace->record(copy);
        inflight[to].push_back(copy);
      }
    }
  };

  // Round-0 sends.
  for (const auto& p : processes_) {
    dispatch(p->start(), p->id(), 0, /*fabricated=*/false);
    if (is_faulty(options_, p->id())) {
      dispatch(options_.adversary->fabricate(p->id(), 0), p->id(), 0,
               /*fabricated=*/true);
    }
  }

  for (int r = 0; r < rounds; ++r) {
    rounds_run.add();
    const obs::ScopedTimer round_timer(round_ms);
    delivered.swap(inflight);  // inflight buffers are all empty (cleared)
    for (std::size_t i = 0; i < n; ++i) {
      Process& p = *processes_[i];
      std::vector<Message>& inbox = delivered[i];
      sort_inbox(inbox);
      std::vector<Message> outbox = p.on_round(r, inbox);
      inbox.clear();  // keep capacity for the round after next
      if (r + 1 < rounds) {
        dispatch(std::move(outbox), p.id(), r + 1, /*fabricated=*/false);
        if (is_faulty(options_, p.id())) {
          dispatch(options_.adversary->fabricate(p.id(), r + 1), p.id(),
                   r + 1, /*fabricated=*/true);
        }
      }
    }
  }

  for (const auto& p : processes_) result.decisions[p->id()] = p->decide();
  return result;
}

}  // namespace da::sim
