#include "relay/graph_network.hpp"

#include <algorithm>

#include "graph/connectivity.hpp"
#include "util/contracts.hpp"

namespace da::relay {

namespace {

std::uint64_t pair_key(NodeId s, NodeId t) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s)) << 32) |
         static_cast<std::uint32_t>(t);
}

}  // namespace

GraphRelayNetwork::GraphRelayNetwork(graph::Graph g, int m, int u,
                                     std::vector<NodeId> faulty,
                                     HopCorruption corruption)
    : graph_(std::move(g)),
      m_(m),
      u_(u),
      faulty_(std::move(faulty)),
      corruption_(std::move(corruption)) {
  DA_EXPECTS(m_ >= 0 && u_ >= m_);
  std::sort(faulty_.begin(), faulty_.end());
}

bool GraphRelayNetwork::deliver(const sim::Message& msg) {
  return transit(msg).has_value();
}

const std::vector<std::vector<NodeId>>& GraphRelayNetwork::paths_for(
    NodeId s, NodeId t) {
  const std::uint64_t key = pair_key(s, t);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  auto paths = graph::disjoint_paths(graph_, s, t, m_ + u_ + 1);
  return cache_.emplace(key, std::move(paths)).first->second;
}

int GraphRelayNetwork::paths_between(NodeId s, NodeId t) {
  return static_cast<int>(paths_for(s, t).size());
}

std::optional<sim::Message> GraphRelayNetwork::transit(
    const sim::Message& msg) {
  if (msg.from == msg.to) return msg;
  if (graph_.has_edge(msg.from, msg.to)) return msg;  // direct link

  const auto& paths = paths_for(msg.from, msg.to);
  if (paths.empty()) return std::nullopt;  // disconnected pair

  const ChannelResult channel =
      send_along_paths(paths, msg.value, u_, faulty_, corruption_);
  // A defaulted channel is indistinguishable from an omitted message for
  // the EIG protocols (an unset tree slot reads as V_d), but delivering
  // the V_d explicitly keeps the message counts meaningful.
  sim::Message out = msg;
  out.value = channel.delivered;
  return out;
}

}  // namespace da::relay
