#pragma once

#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/value.hpp"

namespace da::relay {

/// What a faulty intermediate node substitutes for the value it is
/// relaying (called once per traversed faulty hop).
using HopCorruption =
    std::function<Value(NodeId faulty_hop, Value in_transit)>;

/// A *degradable channel* between non-adjacent nodes of a k-connected
/// graph: the sender pushes its value along k internally vertex-disjoint
/// paths; the receiver takes VOTE(u+1, k) over the k arriving copies.
///
/// With k = m+u+1 disjoint paths this realizes the sufficiency direction
/// of Theorem 3 (the paper states it without proof):
///   - at most m faulty intermediates corrupt at most m copies, so at
///     least u+1 clean copies reach the threshold: the true value wins
///     (and no forged value can, since m <= u < u+1);
///   - with f <= u faulty intermediates no forged value reaches u+1
///     copies either, so the receiver obtains the true value or V_d —
///     exactly the D.1 / D.3 shape, per link.
struct ChannelResult {
  Value delivered{};
  int paths = 0;
  int corrupted_paths = 0;
  std::vector<Value> copies;
};

[[nodiscard]] ChannelResult degradable_channel_send(
    const graph::Graph& g, NodeId s, NodeId t, Value value, int m, int u,
    const std::vector<NodeId>& faulty, const HopCorruption& corrupt);

/// Runs the value along the given explicit paths (each s..t); used by the
/// tests to control path selection.
[[nodiscard]] ChannelResult send_along_paths(
    const std::vector<std::vector<NodeId>>& paths, Value value, int u,
    const std::vector<NodeId>& faulty, const HopCorruption& corrupt);

}  // namespace da::relay
