#pragma once

#include <string>
#include <vector>

#include "util/value.hpp"

namespace da::relay {

/// The Theorem 3 necessity argument, made executable.
///
/// Take connectivity exactly kappa = m+u (one short of the bound) between
/// sender side G1 and receiver side G2; the cut F splits into F1 (m nodes)
/// and F2 (u nodes). Any channel scheme reduces to choosing a decision rule
/// over the kappa path copies. Two fault scenarios are indistinguishable to
/// G2:
///   S1: F1 faulty and forging beta  -> copies: m beta + u alpha,
///       f = m <= m, so D.1 forces G2 to decide alpha;
///   S2: F2 faulty and forging alpha -> copies: m beta + u alpha (sender's
///       value beta), f = u <= u, so D.3 allows only beta or V_d.
/// Identical copy multisets, contradictory requirements: no rule works.
///
/// `probe_thresholds` runs every threshold rule VOTE(theta, m+u) through
/// both scenarios and reports which requirement each theta breaks.
struct ThresholdProbe {
  int theta = 0;
  Value s1_decision{};  // must be alpha for D.1
  Value s2_decision{};  // must be beta or V_d for D.3
  bool s1_ok = false;
  bool s2_ok = false;
};

[[nodiscard]] std::vector<ThresholdProbe> probe_thresholds(int m, int u);

/// True if some threshold satisfies both scenarios — expected false for
/// kappa = m+u and true for kappa = m+u+1 (where `probe_thresholds_k`
/// generalizes to kappa copies: u+1 always works).
[[nodiscard]] bool any_threshold_works(int m, int u, int kappa);

}  // namespace da::relay
