#pragma once

#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "relay/disjoint_relay.hpp"
#include "sim/network.hpp"

namespace da::relay {

/// A network model that runs an agreement protocol end-to-end over a
/// *sparse* graph: adjacent nodes exchange messages directly; messages
/// between non-adjacent nodes travel as copies along up to m+u+1
/// internally vertex-disjoint paths, where faulty interior nodes corrupt
/// their copy, and the receiving endpoint takes VOTE(u+1, k) over the
/// arriving copies (the degradable channel of Theorem 3's sufficiency
/// remark).
///
/// With vertex connectivity >= m+u+1, every virtual link is a degradable
/// channel — true value through m interior faults, true-or-V_d through u —
/// and BYZ(m,m) on top retains its D.1-D.4 guarantees (a V_d'd copy is
/// indistinguishable from an omission, which the protocol already
/// absorbs). With connectivity m+u or less some pair has too few paths,
/// the channel cannot simultaneously satisfy its D.1 and D.3 shapes
/// (Theorem 3's necessity), and agreement observably breaks.
///
/// Faulty *interior* corruption is driven by `corruption`; faulty
/// *endpoint* behaviour is the ordinary protocol-level adversary, which
/// the runner applies before transit.
class GraphRelayNetwork final : public sim::NetworkModel {
 public:
  GraphRelayNetwork(graph::Graph g, int m, int u,
                    std::vector<NodeId> faulty, HopCorruption corruption);

  [[nodiscard]] bool deliver(const sim::Message& msg) override;

  [[nodiscard]] std::optional<sim::Message> transit(
      const sim::Message& msg) override;

  /// Number of disjoint paths available between a pair (cached).
  [[nodiscard]] int paths_between(NodeId s, NodeId t);

 private:
  [[nodiscard]] const std::vector<std::vector<NodeId>>& paths_for(NodeId s,
                                                                  NodeId t);

  graph::Graph graph_;
  int m_;
  int u_;
  std::vector<NodeId> faulty_;
  HopCorruption corruption_;
  std::unordered_map<std::uint64_t, std::vector<std::vector<NodeId>>> cache_;
};

}  // namespace da::relay
