#include "relay/cutset_adversary.hpp"

#include "protocols/common/vote.hpp"
#include "util/contracts.hpp"

namespace da::relay {

namespace {

const Value kAlpha = Value::of(1);
const Value kBeta = Value::of(2);

std::vector<Value> copies(int count_alpha, int count_beta) {
  std::vector<Value> v;
  v.insert(v.end(), static_cast<std::size_t>(count_alpha), kAlpha);
  v.insert(v.end(), static_cast<std::size_t>(count_beta), kBeta);
  return v;
}

}  // namespace

std::vector<ThresholdProbe> probe_thresholds(int m, int u) {
  DA_EXPECTS(m >= 1 && u >= m);
  const int kappa = m + u;
  std::vector<ThresholdProbe> probes;
  for (int theta = 1; theta <= kappa; ++theta) {
    ThresholdProbe probe;
    probe.theta = theta;
    // S1: fault-free sender sent alpha; F1 (m paths) forged beta.
    //     D.1 (f = m) requires alpha.
    probe.s1_decision = protocols::vote(copies(/*alpha=*/u, /*beta=*/m),
                                        static_cast<std::size_t>(theta));
    probe.s1_ok = probe.s1_decision == kAlpha;
    // S2: fault-free sender sent beta; F2 (u paths) forged alpha.
    //     D.3 (f = u) allows only beta or V_d.
    probe.s2_decision = protocols::vote(copies(/*alpha=*/u, /*beta=*/m),
                                        static_cast<std::size_t>(theta));
    probe.s2_ok =
        probe.s2_decision == kBeta || probe.s2_decision.is_default();
    probes.push_back(probe);
  }
  return probes;
}

bool any_threshold_works(int m, int u, int kappa) {
  DA_EXPECTS(m >= 0 && u >= m && kappa >= 1);
  for (int theta = 1; theta <= kappa; ++theta) {
    // S1: m forged copies of beta among kappa; rest carry the true alpha.
    const Value d1 = protocols::vote(copies(kappa - m, m),
                                     static_cast<std::size_t>(theta));
    // S2: u forged copies of alpha among kappa; rest carry the true beta.
    const Value d2 = protocols::vote(copies(u, kappa - u),
                                     static_cast<std::size_t>(theta));
    const bool s1_ok = d1 == kAlpha;
    const bool s2_ok = d2 == kBeta || d2.is_default();
    if (s1_ok && s2_ok) return true;
  }
  return false;
}

}  // namespace da::relay
