#include "relay/disjoint_relay.hpp"

#include <algorithm>

#include "graph/connectivity.hpp"
#include "protocols/common/vote.hpp"
#include "util/contracts.hpp"

namespace da::relay {

ChannelResult send_along_paths(const std::vector<std::vector<NodeId>>& paths,
                               Value value, int u,
                               const std::vector<NodeId>& faulty,
                               const HopCorruption& corrupt) {
  const auto is_faulty = [&faulty](NodeId id) {
    return std::find(faulty.begin(), faulty.end(), id) != faulty.end();
  };

  ChannelResult result;
  result.paths = static_cast<int>(paths.size());
  for (const auto& path : paths) {
    DA_EXPECTS(path.size() >= 2);
    Value in_transit = value;
    bool touched = false;
    // Endpoints are assumed fault-free for a channel property (the
    // agreement layer above handles faulty endpoints); interior hops may
    // corrupt.
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      if (is_faulty(path[i])) {
        in_transit = corrupt ? corrupt(path[i], in_transit)
                             : Value::of(in_transit.raw() + 1);
        touched = true;
      }
    }
    if (touched) ++result.corrupted_paths;
    result.copies.push_back(in_transit);
  }

  result.delivered =
      protocols::vote(result.copies, static_cast<std::size_t>(u) + 1);
  return result;
}

ChannelResult degradable_channel_send(const graph::Graph& g, NodeId s,
                                      NodeId t, Value value, int m, int u,
                                      const std::vector<NodeId>& faulty,
                                      const HopCorruption& corrupt) {
  DA_EXPECTS(m >= 0 && u >= m);
  const int k = m + u + 1;
  const auto paths = graph::disjoint_paths(g, s, t, k);
  DA_EXPECTS(static_cast<int>(paths.size()) == k);  // needs connectivity >= k
  return send_along_paths(paths, value, u, faulty, corrupt);
}

}  // namespace da::relay
