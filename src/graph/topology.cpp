#include "graph/topology.hpp"

#include "util/rng.hpp"

namespace da::graph {

Graph complete(int n) {
  Graph g(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  return g;
}

Graph ring(int n) {
  DA_EXPECTS(n >= 3);
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

Graph hypercube(int dim) {
  DA_EXPECTS(dim >= 1 && dim <= 16);
  const int n = 1 << dim;
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (int b = 0; b < dim; ++b) {
      const NodeId w = v ^ (1 << b);
      if (v < w) g.add_edge(v, w);
    }
  }
  return g;
}

Graph circulant(int n, int k) {
  DA_EXPECTS(k >= 1 && n > 2 * k);
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (int d = 1; d <= k; ++d) g.add_edge(v, (v + d) % n);
  }
  return g;
}

Graph separator_graph(int a, int cut, int b) {
  DA_EXPECTS(a >= 1 && b >= 1 && cut >= 1);
  const int n = a + cut + b;
  Graph g(n);
  auto connect_range = [&g](int lo, int hi) {  // clique on [lo,hi)
    for (NodeId x = lo; x < hi; ++x)
      for (NodeId y = x + 1; y < hi; ++y) g.add_edge(x, y);
  };
  connect_range(0, a);
  connect_range(a + cut, n);
  for (NodeId s = a; s < a + cut; ++s) {
    for (NodeId x = 0; x < n; ++x) {
      if (x != s) g.add_edge(s, x);
    }
  }
  return g;
}

Graph random_at_least_k_connected(int n, int k, double p, std::uint64_t seed) {
  DA_EXPECTS(k >= 1);
  const int half = (k + 1) / 2;
  DA_EXPECTS(n > 2 * half);
  Graph g = circulant(n, half);
  Rng rng(seed);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (!g.has_edge(a, b) && rng.chance(p)) g.add_edge(a, b);
    }
  }
  return g;
}

}  // namespace da::graph
