#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace da::graph {

/// K_n: every pair adjacent. Connectivity n-1. This is the network
/// algorithm BYZ assumes (Section 4: "BYZ assumes that the nodes are fully
/// connected").
[[nodiscard]] Graph complete(int n);

/// Cycle 0-1-...-(n-1)-0. Connectivity 2.
[[nodiscard]] Graph ring(int n);

/// d-dimensional hypercube on 2^d nodes. Connectivity d.
[[nodiscard]] Graph hypercube(int dim);

/// Circulant graph C_n(1..k): node i adjacent to i±1,...,i±k (mod n).
/// Vertex connectivity 2k for n > 2k — a convenient family with exactly
/// tunable connectivity for the Theorem 3 experiments.
[[nodiscard]] Graph circulant(int n, int k);

/// Two cliques of sizes a and b bridged by `cut` shared... rather: a
/// "barbell" with an explicit separator: nodes {0..a-1} form a clique,
/// nodes {a..a+cut-1} are the separator (complete to both sides), nodes
/// {a+cut..a+cut+b-1} form the other clique. Vertex connectivity is
/// exactly `cut` (for a,b >= 1). Used by the connectivity lower-bound
/// scenario: the separator is the paper's cut set F = F1 u F2.
[[nodiscard]] Graph separator_graph(int a, int cut, int b);

/// Random graph guaranteed k-connected: start from circulant(n,ceil(k/2))
/// and add random extra edges with probability p. (Adding edges never
/// reduces connectivity.)
[[nodiscard]] Graph random_at_least_k_connected(int n, int k, double p,
                                                std::uint64_t seed);

}  // namespace da::graph
