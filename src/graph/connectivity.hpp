#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace da::graph {

/// Maximum number of internally vertex-disjoint s-t paths (s != t, non-
/// adjacent or adjacent both handled; an s-t edge counts as one path).
/// Computed by unit-capacity max-flow on the split-node digraph (Even's
/// construction realizing Menger's theorem).
[[nodiscard]] int max_disjoint_paths(const Graph& g, NodeId s, NodeId t);

/// Up to `k` internally vertex-disjoint s-t paths, each path listed as the
/// node sequence s,...,t. Returns as many as exist (<= k). Extracted by flow
/// decomposition of the max-flow used in `max_disjoint_paths`.
[[nodiscard]] std::vector<std::vector<NodeId>> disjoint_paths(const Graph& g,
                                                              NodeId s,
                                                              NodeId t, int k);

/// Vertex connectivity of `g`: the minimum, over non-adjacent pairs (plus
/// the degree bound), of the max number of disjoint paths. For the complete
/// graph K_n this is n-1 by convention.
[[nodiscard]] int vertex_connectivity(const Graph& g);

/// A minimum vertex cut separating s and t (empty if s,t adjacent and
/// no cut exists short of removing endpoints). Nodes in the cut exclude
/// s and t themselves.
[[nodiscard]] std::vector<NodeId> min_vertex_cut(const Graph& g, NodeId s,
                                                 NodeId t);

}  // namespace da::graph
