#include "graph/graph.hpp"

#include <algorithm>
#include <queue>

namespace da::graph {

Graph::Graph(int n) : n_(n) {
  DA_EXPECTS(n >= 1);
  adj_.assign(static_cast<std::size_t>(n),
              std::vector<bool>(static_cast<std::size_t>(n), false));
  nbr_.assign(static_cast<std::size_t>(n), {});
}

void Graph::add_edge(NodeId a, NodeId b) {
  check_node(a);
  check_node(b);
  DA_EXPECTS(a != b);
  if (adj_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]) return;
  adj_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
  adj_[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = true;
  nbr_[static_cast<std::size_t>(a)].push_back(b);
  nbr_[static_cast<std::size_t>(b)].push_back(a);
  ++edges_;
}

void Graph::remove_edge(NodeId a, NodeId b) {
  check_node(a);
  check_node(b);
  if (!has_edge(a, b)) return;
  adj_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = false;
  adj_[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = false;
  auto erase_from = [](std::vector<NodeId>& v, NodeId x) {
    v.erase(std::remove(v.begin(), v.end(), x), v.end());
  };
  erase_from(nbr_[static_cast<std::size_t>(a)], b);
  erase_from(nbr_[static_cast<std::size_t>(b)], a);
  --edges_;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  return adj_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

const std::vector<NodeId>& Graph::neighbors(NodeId v) const {
  check_node(v);
  return nbr_[static_cast<std::size_t>(v)];
}

int Graph::degree(NodeId v) const {
  check_node(v);
  return static_cast<int>(nbr_[static_cast<std::size_t>(v)].size());
}

bool Graph::connected() const {
  std::vector<bool> seen(static_cast<std::size_t>(n_), false);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = true;
  int count = 0;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    ++count;
    for (NodeId w : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        q.push(w);
      }
    }
  }
  return count == n_;
}

bool Graph::complete() const {
  return edges_ == static_cast<std::size_t>(n_) *
                       static_cast<std::size_t>(n_ - 1) / 2;
}

std::string Graph::to_string() const {
  std::string s = "graph(n=" + std::to_string(n_) + "){";
  for (NodeId v = 0; v < n_; ++v) {
    for (NodeId w : neighbors(v)) {
      if (v < w) s += " " + std::to_string(v) + "-" + std::to_string(w);
    }
  }
  return s + " }";
}

}  // namespace da::graph
