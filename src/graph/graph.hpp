#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/contracts.hpp"
#include "util/ids.hpp"

namespace da::graph {

/// A simple undirected graph on nodes 0..n-1, stored both as an adjacency
/// matrix (O(1) edge queries for the network models) and adjacency lists
/// (fast iteration for flow / BFS).
class Graph {
 public:
  explicit Graph(int n);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Adds undirected edge {a,b}. Idempotent; self-loops are rejected.
  void add_edge(NodeId a, NodeId b);

  void remove_edge(NodeId a, NodeId b);

  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;

  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId v) const;

  [[nodiscard]] int degree(NodeId v) const;

  [[nodiscard]] bool connected() const;

  /// True if every pair of nodes is adjacent.
  [[nodiscard]] bool complete() const;

  /// Graphviz-ish description, for debugging.
  [[nodiscard]] std::string to_string() const;

 private:
  void check_node(NodeId v) const {
    DA_EXPECTS(v >= 0 && v < n_);
  }

  int n_;
  std::size_t edges_ = 0;
  std::vector<std::vector<bool>> adj_;
  std::vector<std::vector<NodeId>> nbr_;
};

}  // namespace da::graph
