#include "graph/connectivity.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <unordered_map>

namespace da::graph {
namespace {

// Unit-capacity digraph for vertex-disjoint path computation: each vertex v
// splits into v_in = 2v and v_out = 2v+1 joined by a capacity-1 arc; each
// undirected edge {a,b} becomes a_out->b_in and b_out->a_in. Max flow from
// s_out to t_in equals the number of internally vertex-disjoint s-t paths
// (Menger). Dense adjacency-matrix flow is plenty for the graph sizes the
// experiments use (n <= ~200).
class SplitFlow {
 public:
  SplitFlow(const Graph& g, NodeId s, NodeId t)
      : n_(g.n()), s_(2 * s + 1), t_(2 * t) {
    DA_EXPECTS(s != t);
    const int v = 2 * n_;
    cap_.assign(static_cast<std::size_t>(v),
                std::vector<int>(static_cast<std::size_t>(v), 0));
    constexpr int kInf = std::numeric_limits<int>::max() / 4;
    for (NodeId x = 0; x < n_; ++x) {
      // Endpoint split arcs carry infinite capacity so that removing s or t
      // is never counted as a "cut".
      cap_[in(x)][out(x)] = (x == s || x == t) ? kInf : 1;
    }
    for (NodeId a = 0; a < n_; ++a) {
      for (NodeId b : g.neighbors(a)) {
        cap_[out(a)][in(b)] = 1;
      }
    }
  }

  int max_flow() {
    int total = 0;
    while (augment()) ++total;
    return total;
  }

  // One BFS augmenting path of unit capacity (Edmonds-Karp on 0/1 arcs).
  bool augment() {
    const std::size_t v = cap_.size();
    std::vector<int> prev(v, -1);
    std::queue<int> q;
    q.push(s_);
    prev[static_cast<std::size_t>(s_)] = s_;
    while (!q.empty() && prev[static_cast<std::size_t>(t_)] == -1) {
      const int x = q.front();
      q.pop();
      for (std::size_t y = 0; y < v; ++y) {
        if (prev[y] == -1 && residual(x, static_cast<int>(y)) > 0) {
          prev[y] = x;
          q.push(static_cast<int>(y));
        }
      }
    }
    if (prev[static_cast<std::size_t>(t_)] == -1) return false;
    for (int y = t_; y != s_; y = prev[static_cast<std::size_t>(y)]) {
      const int x = prev[static_cast<std::size_t>(y)];
      flow_at(x, y) += 1;
    }
    return true;
  }

  int residual(int x, int y) const {
    return cap_[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] -
           flow(x, y) + flow(y, x);
  }

  int flow(int x, int y) const {
    auto it = flow_map_.find(key(x, y));
    return it == flow_map_.end() ? 0 : it->second;
  }

  int& flow_at(int x, int y) { return flow_map_[key(x, y)]; }

  // Decompose the computed flow into node paths (original vertex ids).
  std::vector<std::vector<NodeId>> decompose(int units) {
    // Normalize to net flow on each arc.
    normalize();
    std::vector<std::vector<NodeId>> paths;
    for (int i = 0; i < units; ++i) {
      std::vector<NodeId> path;
      int x = s_;
      path.push_back(static_cast<NodeId>(x / 2));
      while (x != t_) {
        int nxt = -1;
        for (std::size_t y = 0; y < cap_.size(); ++y) {
          if (flow(x, static_cast<int>(y)) > 0) {
            nxt = static_cast<int>(y);
            break;
          }
        }
        DA_ENSURES(nxt != -1);
        flow_at(x, nxt) -= 1;
        x = nxt;
        const NodeId orig = static_cast<NodeId>(x / 2);
        if (path.back() != orig) path.push_back(orig);
      }
      paths.push_back(std::move(path));
    }
    return paths;
  }

  // Reachability in the residual graph from s_out; used for min cut.
  std::vector<bool> residual_reachable() {
    const std::size_t v = cap_.size();
    std::vector<bool> seen(v, false);
    std::queue<int> q;
    q.push(s_);
    seen[static_cast<std::size_t>(s_)] = true;
    while (!q.empty()) {
      const int x = q.front();
      q.pop();
      for (std::size_t y = 0; y < v; ++y) {
        if (!seen[y] && residual(x, static_cast<int>(y)) > 0) {
          seen[y] = true;
          q.push(static_cast<int>(y));
        }
      }
    }
    return seen;
  }

  static std::size_t in(NodeId v) { return static_cast<std::size_t>(2 * v); }
  static std::size_t out(NodeId v) {
    return static_cast<std::size_t>(2 * v + 1);
  }

 private:
  void normalize() {
    // Replace pairwise opposing flows with their net value.
    for (auto& [k, f] : flow_map_) {
      const int x = static_cast<int>(k >> 32);
      const int y = static_cast<int>(k & 0xffffffffu);
      const int back = flow(y, x);
      if (f > 0 && back > 0) {
        const int cancel = std::min(f, back);
        f -= cancel;
        flow_map_[key(y, x)] -= cancel;
      }
    }
  }

  static std::uint64_t key(int x, int y) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 32) |
           static_cast<std::uint32_t>(y);
  }

  int n_;
  int s_;
  int t_;
  std::vector<std::vector<int>> cap_;
  std::unordered_map<std::uint64_t, int> flow_map_;
};

}  // namespace

int max_disjoint_paths(const Graph& g, NodeId s, NodeId t) {
  SplitFlow flow(g, s, t);
  return flow.max_flow();
}

std::vector<std::vector<NodeId>> disjoint_paths(const Graph& g, NodeId s,
                                                NodeId t, int k) {
  DA_EXPECTS(k >= 0);
  SplitFlow flow(g, s, t);
  const int units = std::min(k, flow.max_flow());
  return flow.decompose(units);
}

int vertex_connectivity(const Graph& g) {
  if (!g.connected()) return 0;
  if (g.complete()) return g.n() - 1;
  int best = g.n() - 1;
  for (NodeId s = 0; s < g.n(); ++s) {
    for (NodeId t = s + 1; t < g.n(); ++t) {
      if (!g.has_edge(s, t)) {
        best = std::min(best, max_disjoint_paths(g, s, t));
      }
    }
  }
  return best;
}

std::vector<NodeId> min_vertex_cut(const Graph& g, NodeId s, NodeId t) {
  SplitFlow flow(g, s, t);
  flow.max_flow();
  const std::vector<bool> reach = flow.residual_reachable();

  // Every saturated arc crossing the residual-reachable boundary maps to a
  // cut vertex: a split arc in_v -> out_v maps to v; an edge arc
  // out_a -> in_b maps to b (or to a when b is an endpoint). The direct
  // s-t edge, if present, cannot be covered by any vertex cut and is
  // skipped — callers compare against max_disjoint_paths, which also
  // counts that edge as a path only when it exists.
  std::vector<NodeId> cut;
  const auto add = [&cut](NodeId v) {
    if (std::find(cut.begin(), cut.end(), v) == cut.end()) cut.push_back(v);
  };
  // Split-arc boundary crossings.
  for (NodeId v = 0; v < g.n(); ++v) {
    if (v == s || v == t) continue;
    if (reach[SplitFlow::in(v)] && !reach[SplitFlow::out(v)]) add(v);
  }
  // Edge-arc boundary crossings.
  for (NodeId a = 0; a < g.n(); ++a) {
    if (!reach[SplitFlow::out(a)]) continue;
    for (NodeId b : g.neighbors(a)) {
      if (reach[SplitFlow::in(b)]) continue;
      if (b != s && b != t) {
        add(b);
      } else if (a != s && a != t) {
        add(a);
      }
      // else: the direct s-t edge; no vertex can cover it.
    }
  }
  std::sort(cut.begin(), cut.end());
  return cut;
}

}  // namespace da::graph
