#pragma once

#include <vector>

#include "core/scenario.hpp"

namespace da::bounds {

/// Theorem 2: m/u-degradable agreement needs at least 2m+u+1 nodes
/// (and 2m+u+1 suffice, by algorithm BYZ).
[[nodiscard]] int min_nodes(int m, int u);

/// Theorem 3: network vertex-connectivity of at least m+u+1 is necessary
/// (and sufficient, Section 5).
[[nodiscard]] int min_connectivity(int m, int u);

/// Classical Byzantine agreement bound (Lamport et al.): 3m+1 nodes.
/// Degradable agreement with u = m degenerates to exactly this.
[[nodiscard]] int lamport_min_nodes(int m);

/// Largest u achievable with n nodes for a given m (u = n - 2m - 1),
/// or -1 if even u = m is out of reach.
[[nodiscard]] int max_u(int n, int m);

/// Largest m achievable with n nodes (the classical floor((n-1)/3)).
[[nodiscard]] int max_m(int n);

/// All (m,u) pairs achievable with exactly the budget of n nodes, i.e.
/// the trade-off frontier u = n - 2m - 1 for m = 0..max_m(n). For n = 7
/// this yields the paper's example: 0/6, 1/4, 2/2.
[[nodiscard]] std::vector<Config> tradeoff_frontier(int n);

}  // namespace da::bounds
