#include "core/checker.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "util/contracts.hpp"

namespace da {

const char* to_string(Condition c) {
  switch (c) {
    case Condition::kD1: return "D.1";
    case Condition::kD2: return "D.2";
    case Condition::kD3: return "D.3";
    case Condition::kD4: return "D.4";
    case Condition::kNone: return "none";
  }
  return "?";
}

namespace {

Value decision_of(const std::map<NodeId, Value>& decisions, NodeId id) {
  const auto it = decisions.find(id);
  DA_EXPECTS(it != decisions.end());
  return it->second;
}

Value decision_of(const sim::Decisions& decisions, NodeId id) {
  return decisions.at(id);
}

template <typename DecisionContainer>
ConditionReport check_conditions_impl(const ScenarioSpec& spec,
                                      const DecisionContainer& decisions) {
  spec.validate();
  ConditionReport report;

  const int f = spec.f();
  const int m = spec.config.m;
  const int u = spec.config.u;
  const bool sender_ok = !spec.sender_faulty();
  const std::vector<NodeId> receivers = spec.fault_free_receivers();

  // Classify the governing condition.
  if (f <= m) {
    report.applied = sender_ok ? Condition::kD1 : Condition::kD2;
  } else if (f <= u) {
    report.applied = sender_ok ? Condition::kD3 : Condition::kD4;
  } else {
    report.applied = Condition::kNone;
  }

  // Partition fault-free receivers by decision. Flat scratch instead of a
  // value-keyed map — this runs once per execution inside the exhaustive
  // searches — reused thread-locally so the steady state allocates
  // nothing; sorted by Value afterwards to keep exactly the iteration
  // order the map gave (reports list classes, and violators within an
  // unsatisfied report, in ascending Value order).
  static thread_local std::vector<std::pair<Value, std::vector<NodeId>>>
      class_scratch;
  std::size_t class_count = 0;
  for (NodeId r : receivers) {
    const Value v = decision_of(decisions, r);
    std::size_t i = 0;
    while (i < class_count && class_scratch[i].first != v) ++i;
    if (i == class_count) {
      if (class_count == class_scratch.size()) class_scratch.emplace_back();
      class_scratch[i].first = v;
      class_scratch[i].second.clear();  // keeps capacity
      ++class_count;
    }
    class_scratch[i].second.push_back(r);
  }
  std::sort(class_scratch.begin(),
            class_scratch.begin() + static_cast<std::ptrdiff_t>(class_count),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const std::span<const std::pair<Value, std::vector<NodeId>>> classes(
      class_scratch.data(), class_count);

  switch (report.applied) {
    case Condition::kD1: {
      // Everyone must decide the sender's value.
      for (const auto& [value, members] : classes) {
        if (value == spec.sender_value) {
          report.value_class = members;
        } else {
          report.violators.insert(report.violators.end(), members.begin(),
                                  members.end());
        }
      }
      report.satisfied = report.violators.empty();
      if (!report.satisfied) report.detail = "D.1: not all decided sender's value";
      break;
    }
    case Condition::kD2: {
      // One identical value (any value, default included).
      report.satisfied = classes.size() <= 1;
      if (!classes.empty()) {
        const auto& [value, members] = *classes.begin();
        if (value.is_default()) {
          report.default_class = members;
        } else {
          report.value_class = members;
        }
      }
      if (!report.satisfied) {
        report.detail = "D.2: fault-free receivers decided " +
                        std::to_string(classes.size()) + " distinct values";
        for (const auto& [value, members] : classes) {
          report.violators.insert(report.violators.end(), members.begin(),
                                  members.end());
        }
      }
      break;
    }
    case Condition::kD3: {
      // Each fault-free receiver decides the sender's value or V_d.
      for (const auto& [value, members] : classes) {
        if (value == spec.sender_value) {
          report.value_class = members;
        } else if (value.is_default()) {
          report.default_class = members;
        } else {
          report.violators.insert(report.violators.end(), members.begin(),
                                  members.end());
        }
      }
      report.satisfied = report.violators.empty();
      if (!report.satisfied) {
        report.detail = "D.3: some fault-free receiver decided a value that "
                        "is neither the sender's nor V_d";
      }
      break;
    }
    case Condition::kD4: {
      // At most one non-default value among fault-free receivers.
      int non_default_values = 0;
      for (const auto& [value, members] : classes) {
        if (value.is_default()) {
          report.default_class = members;
        } else {
          ++non_default_values;
          if (non_default_values == 1) {
            report.value_class = members;
          } else {
            report.violators.insert(report.violators.end(), members.begin(),
                                    members.end());
          }
        }
      }
      report.satisfied = non_default_values <= 1;
      if (!report.satisfied) {
        report.detail = "D.4: fault-free receivers decided " +
                        std::to_string(non_default_values) +
                        " distinct non-default values";
      }
      break;
    }
    case Condition::kNone:
      report.satisfied = true;  // nothing promised beyond u faults
      break;
  }

  // Section 2 corollary: largest group of fault-free nodes (sender included,
  // agreeing on its own value when fault-free) deciding one identical value.
  bool sender_value_seen = false;
  for (const auto& [value, members] : classes) {
    int count = static_cast<int>(members.size());
    if (sender_ok && value == spec.sender_value) {
      ++count;
      sender_value_seen = true;
    }
    report.largest_agreeing_class =
        std::max(report.largest_agreeing_class, count);
  }
  if (sender_ok && !sender_value_seen) {
    report.largest_agreeing_class = std::max(report.largest_agreeing_class, 1);
  }
  report.corollary_m_plus_1 = report.largest_agreeing_class >= m + 1;

  return report;
}

}  // namespace

ConditionReport check_conditions(const ScenarioSpec& spec,
                                 const sim::Decisions& decisions) {
  return check_conditions_impl(spec, decisions);
}

ConditionReport check_conditions(const ScenarioSpec& spec,
                                 const std::map<NodeId, Value>& decisions) {
  return check_conditions_impl(spec, decisions);
}

}  // namespace da
