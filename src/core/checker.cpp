#include "core/checker.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace da {

const char* to_string(Condition c) {
  switch (c) {
    case Condition::kD1: return "D.1";
    case Condition::kD2: return "D.2";
    case Condition::kD3: return "D.3";
    case Condition::kD4: return "D.4";
    case Condition::kNone: return "none";
  }
  return "?";
}

namespace {

Value decision_of(const std::map<NodeId, Value>& decisions, NodeId id) {
  const auto it = decisions.find(id);
  DA_EXPECTS(it != decisions.end());
  return it->second;
}

}  // namespace

ConditionReport check_conditions(const ScenarioSpec& spec,
                                 const std::map<NodeId, Value>& decisions) {
  spec.validate();
  ConditionReport report;

  const int f = spec.f();
  const int m = spec.config.m;
  const int u = spec.config.u;
  const bool sender_ok = !spec.sender_faulty();
  const std::vector<NodeId> receivers = spec.fault_free_receivers();

  // Classify the governing condition.
  if (f <= m) {
    report.applied = sender_ok ? Condition::kD1 : Condition::kD2;
  } else if (f <= u) {
    report.applied = sender_ok ? Condition::kD3 : Condition::kD4;
  } else {
    report.applied = Condition::kNone;
  }

  // Partition fault-free receivers by decision.
  std::map<Value, std::vector<NodeId>> classes;
  for (NodeId r : receivers) {
    classes[decision_of(decisions, r)].push_back(r);
  }

  switch (report.applied) {
    case Condition::kD1: {
      // Everyone must decide the sender's value.
      for (const auto& [value, members] : classes) {
        if (value == spec.sender_value) {
          report.value_class = members;
        } else {
          report.violators.insert(report.violators.end(), members.begin(),
                                  members.end());
        }
      }
      report.satisfied = report.violators.empty();
      if (!report.satisfied) report.detail = "D.1: not all decided sender's value";
      break;
    }
    case Condition::kD2: {
      // One identical value (any value, default included).
      report.satisfied = classes.size() <= 1;
      if (!classes.empty()) {
        const auto& [value, members] = *classes.begin();
        if (value.is_default()) {
          report.default_class = members;
        } else {
          report.value_class = members;
        }
      }
      if (!report.satisfied) {
        report.detail = "D.2: fault-free receivers decided " +
                        std::to_string(classes.size()) + " distinct values";
        for (const auto& [value, members] : classes) {
          report.violators.insert(report.violators.end(), members.begin(),
                                  members.end());
        }
      }
      break;
    }
    case Condition::kD3: {
      // Each fault-free receiver decides the sender's value or V_d.
      for (const auto& [value, members] : classes) {
        if (value == spec.sender_value) {
          report.value_class = members;
        } else if (value.is_default()) {
          report.default_class = members;
        } else {
          report.violators.insert(report.violators.end(), members.begin(),
                                  members.end());
        }
      }
      report.satisfied = report.violators.empty();
      if (!report.satisfied) {
        report.detail = "D.3: some fault-free receiver decided a value that "
                        "is neither the sender's nor V_d";
      }
      break;
    }
    case Condition::kD4: {
      // At most one non-default value among fault-free receivers.
      int non_default_values = 0;
      for (const auto& [value, members] : classes) {
        if (value.is_default()) {
          report.default_class = members;
        } else {
          ++non_default_values;
          if (non_default_values == 1) {
            report.value_class = members;
          } else {
            report.violators.insert(report.violators.end(), members.begin(),
                                    members.end());
          }
        }
      }
      report.satisfied = non_default_values <= 1;
      if (!report.satisfied) {
        report.detail = "D.4: fault-free receivers decided " +
                        std::to_string(non_default_values) +
                        " distinct non-default values";
      }
      break;
    }
    case Condition::kNone:
      report.satisfied = true;  // nothing promised beyond u faults
      break;
  }

  // Section 2 corollary: largest group of fault-free nodes (sender included,
  // agreeing on its own value when fault-free) deciding one identical value.
  std::map<Value, int> sizes;
  for (const auto& [value, members] : classes) {
    sizes[value] = static_cast<int>(members.size());
  }
  if (sender_ok) sizes[spec.sender_value] += 1;
  for (const auto& [value, count] : sizes) {
    report.largest_agreeing_class =
        std::max(report.largest_agreeing_class, count);
  }
  report.corollary_m_plus_1 = report.largest_agreeing_class >= m + 1;

  return report;
}

}  // namespace da
