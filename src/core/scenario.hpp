#pragma once

#include <string>
#include <vector>

#include "util/ids.hpp"
#include "util/value.hpp"

namespace da {

/// Parameters of one m/u-degradable agreement instance.
///
/// `m` is the exact-agreement fault budget (conditions D.1/D.2 hold while
/// f <= m); `u` is the degraded budget (D.3/D.4 hold while m < f <= u).
/// The paper requires u >= m >= 0; N > 2m+u is required for the protocol's
/// guarantees, but deliberately *not* enforced here — the lower-bound
/// experiments run infeasible configurations on purpose.
struct Config {
  int n = 0;
  int m = 0;
  int u = 0;

  /// Theorem 2 feasibility: N >= 2m+u+1.
  [[nodiscard]] bool feasible() const { return n >= 2 * m + u + 1; }

  /// Basic well-formedness (0 <= m <= u < n).
  [[nodiscard]] bool valid() const {
    return n >= 2 && m >= 0 && u >= m && u < n;
  }

  [[nodiscard]] std::string to_string() const;
};

/// One concrete execution: who sends what, and who is Byzantine.
struct ScenarioSpec {
  Config config{};
  NodeId sender = 0;
  Value sender_value = Value::of(1);
  std::vector<NodeId> faulty{};  // sorted, unique

  [[nodiscard]] int f() const { return static_cast<int>(faulty.size()); }
  [[nodiscard]] bool sender_faulty() const;
  [[nodiscard]] bool is_faulty(NodeId id) const;

  /// Fault-free receivers (everyone but sender and faulty nodes).
  [[nodiscard]] std::vector<NodeId> fault_free_receivers() const;

  /// Throws on malformed specs (ids out of range, duplicate faulty ids,
  /// default sender value, ...).
  void validate() const;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace da
