#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "util/ids.hpp"
#include "util/value.hpp"

namespace da {

/// Parameters of one m/u-degradable agreement instance.
///
/// `m` is the exact-agreement fault budget (conditions D.1/D.2 hold while
/// f <= m); `u` is the degraded budget (D.3/D.4 hold while m < f <= u).
/// The paper requires u >= m >= 0; N > 2m+u is required for the protocol's
/// guarantees, but deliberately *not* enforced here — the lower-bound
/// experiments run infeasible configurations on purpose.
struct Config {
  int n = 0;
  int m = 0;
  int u = 0;

  /// Theorem 2 feasibility: N >= 2m+u+1.
  [[nodiscard]] bool feasible() const { return n >= 2 * m + u + 1; }

  /// Basic well-formedness (0 <= m <= u < n).
  [[nodiscard]] bool valid() const {
    return n >= 2 && m >= 0 && u >= m && u < n;
  }

  /// Whether the EIG engine family can *execute* this config at all:
  /// the deepest resolve level works with subtrees over n - (m-1) nodes
  /// and needs its VOTE quorum alpha = n - 2m to stay positive, so
  /// n >= 2m+1. This is strictly weaker than `feasible()` — configs in
  /// [2m+1, 2m+u] are infeasible (Theorem 2) yet still runnable, which
  /// the lower-bound experiments rely on — but below it the engine
  /// cannot even be constructed (e.g. n=2, m=1). Execution boundaries
  /// throw `UnsupportedConfig` on violation; `valid()` deliberately
  /// does not fold this in so bounds code can still *describe* such
  /// configs.
  [[nodiscard]] bool engine_runnable() const { return n >= 2 * m + 1; }

  [[nodiscard]] std::string to_string() const;
};

/// Structured rejection for well-formed configs the EIG-based agreement
/// engine cannot execute (`Config::engine_runnable()` fails). Thrown by
/// `core::make_byz_processes` and the service admission boundary so
/// callers can distinguish "you asked for the impossible" from plain
/// contract bugs, and can recover the offending config. Deliberately not
/// part of `ScenarioSpec::validate()`: specs are protocol-agnostic, and
/// the non-EIG protocols (SM, OM's majority resolve, crusader) run
/// configs below the EIG floor just fine.
class UnsupportedConfig : public std::invalid_argument {
 public:
  explicit UnsupportedConfig(const Config& config);

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

/// One concrete execution: who sends what, and who is Byzantine.
struct ScenarioSpec {
  Config config{};
  NodeId sender = 0;
  Value sender_value = Value::of(1);
  std::vector<NodeId> faulty{};  // sorted, unique

  [[nodiscard]] int f() const { return static_cast<int>(faulty.size()); }
  [[nodiscard]] bool sender_faulty() const;
  [[nodiscard]] bool is_faulty(NodeId id) const;

  /// Fault-free receivers (everyone but sender and faulty nodes).
  [[nodiscard]] std::vector<NodeId> fault_free_receivers() const;

  /// Throws on malformed specs (ids out of range, duplicate faulty ids,
  /// default sender value, ...).
  void validate() const;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace da
