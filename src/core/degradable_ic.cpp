#include "core/degradable_ic.hpp"

#include <algorithm>

#include "core/agreement.hpp"
#include "util/contracts.hpp"

namespace da::core {

DicResult run_degradable_ic(const Config& config,
                            const std::vector<Value>& inputs,
                            const std::vector<NodeId>& faulty,
                            const protocols::ic::AdversaryFactory& adversaries) {
  DA_EXPECTS(config.valid());
  DA_EXPECTS(static_cast<int>(inputs.size()) == config.n);
  DA_EXPECTS(std::is_sorted(faulty.begin(), faulty.end()));
  for (const Value& input : inputs) DA_EXPECTS(!input.is_default());

  const DegradableAgreement protocol(config);
  DicResult result;
  for (NodeId p = 0; p < config.n; ++p) {
    result.vectors[p].assign(static_cast<std::size_t>(config.n),
                             Value::def());
  }

  for (NodeId sender = 0; sender < config.n; ++sender) {
    ScenarioSpec spec;
    spec.config = config;
    spec.sender = sender;
    spec.sender_value = inputs[static_cast<std::size_t>(sender)];
    spec.faulty = faulty;

    std::unique_ptr<sim::Adversary> adversary;
    sim::Adversary* adversary_ptr = nullptr;
    if (!faulty.empty()) {
      adversary = adversaries(sender);
      adversary_ptr = adversary.get();
    }
    const Outcome outcome = protocol.run(spec, adversary_ptr);
    result.messages_sent += outcome.messages_sent;
    for (const auto& [node, decision] : outcome.decisions) {
      result.vectors[node][static_cast<std::size_t>(sender)] = decision;
    }
  }
  return result;
}

DicReport check_degradable_ic(const Config& config,
                              const std::vector<Value>& inputs,
                              const std::vector<NodeId>& faulty,
                              const DicResult& result) {
  DicReport report;
  report.min_coordinate_agreement = config.n;

  const auto is_faulty = [&faulty](NodeId id) {
    return std::binary_search(faulty.begin(), faulty.end(), id);
  };

  // Per-coordinate D.1-D.4 via the single-sender checker: coordinate s of
  // every node's vector is that node's "decision" in instance s.
  for (NodeId s = 0; s < config.n; ++s) {
    ScenarioSpec spec;
    spec.config = config;
    spec.sender = s;
    spec.sender_value = inputs[static_cast<std::size_t>(s)];
    spec.faulty = faulty;

    std::map<NodeId, Value> decisions;
    for (const auto& [node, vec] : result.vectors) {
      decisions[node] = vec[static_cast<std::size_t>(s)];
    }
    const ConditionReport coordinate = check_conditions(spec, decisions);
    if (!coordinate.satisfied && coordinate.applied != Condition::kNone) {
      report.satisfied = false;
      report.violated_coordinates.push_back(s);
      if (report.detail.empty()) {
        report.detail = "coordinate " + std::to_string(s) + ": " +
                        coordinate.detail;
      }
    }
    report.min_coordinate_agreement = std::min(
        report.min_coordinate_agreement, coordinate.largest_agreeing_class);
  }

  // Vector identity across fault-free nodes.
  const std::vector<Value>* reference = nullptr;
  report.vectors_identical = true;
  for (const auto& [node, vec] : result.vectors) {
    if (is_faulty(node)) continue;
    if (reference == nullptr) {
      reference = &vec;
    } else if (vec != *reference) {
      report.vectors_identical = false;
      break;
    }
  }
  return report;
}

}  // namespace da::core
