#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/checker.hpp"
#include "core/scenario.hpp"
#include "protocols/ic/interactive_consistency.hpp"

namespace da::core {

/// Degradable interactive consistency: every node distributes its private
/// value with m/u-degradable agreement (one BYZ(m,m) instance per sender).
///
/// Section 3 notes the approach "is useful when multiple senders measure
/// the same quantity"; this is the natural vector form. Per coordinate s
/// the guarantees are exactly D.1-D.4 of the single-sender problem:
///   - f <= m: all fault-free vectors agree on every coordinate, and
///     fault-free senders' coordinates carry their true inputs;
///   - m < f <= u: each coordinate splits fault-free nodes into at most
///     two classes — the true/common value and V_d — so every coordinate
///     still has >= m+1 fault-free nodes in agreement (whereas classical
///     interactive consistency retains nothing past N/3; see Bhandari).
struct DicResult {
  /// vectors[p][s] = what node p decided node s's private value is.
  std::map<NodeId, std::vector<Value>> vectors;
  std::size_t messages_sent = 0;
};

[[nodiscard]] DicResult run_degradable_ic(
    const Config& config, const std::vector<Value>& inputs,
    const std::vector<NodeId>& faulty,
    const protocols::ic::AdversaryFactory& adversaries);

/// Per-coordinate verdicts against D.1-D.4.
struct DicReport {
  bool satisfied = true;
  /// Coordinates whose governing condition was violated.
  std::vector<NodeId> violated_coordinates;
  /// min over coordinates of the largest fault-free group agreeing on that
  /// coordinate (sender included). The degradable guarantee is >= m+1 for
  /// every coordinate while f <= u.
  int min_coordinate_agreement = 0;
  /// True when every fault-free node holds exactly the same vector
  /// (guaranteed for f <= m).
  bool vectors_identical = false;
  std::string detail;
};

[[nodiscard]] DicReport check_degradable_ic(
    const Config& config, const std::vector<Value>& inputs,
    const std::vector<NodeId>& faulty, const DicResult& result);

}  // namespace da::core
