#include "core/scenario.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace da {

std::string Config::to_string() const {
  return std::to_string(m) + "/" + std::to_string(u) + "-degradable, n=" +
         std::to_string(n);
}

UnsupportedConfig::UnsupportedConfig(const Config& config)
    : std::invalid_argument(
          "unsupported config: " + config.to_string() +
          " needs n >= 2m+1 = " + std::to_string(2 * config.m + 1) +
          " for the engine's deepest VOTE quorum to be non-empty"),
      config_(config) {}

bool ScenarioSpec::sender_faulty() const { return is_faulty(sender); }

bool ScenarioSpec::is_faulty(NodeId id) const {
  return std::binary_search(faulty.begin(), faulty.end(), id);
}

std::vector<NodeId> ScenarioSpec::fault_free_receivers() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < config.n; ++id) {
    if (id != sender && !is_faulty(id)) out.push_back(id);
  }
  return out;
}

void ScenarioSpec::validate() const {
  DA_EXPECTS(config.valid());
  DA_EXPECTS(sender >= 0 && sender < config.n);
  DA_EXPECTS(!sender_value.is_default());
  DA_EXPECTS(std::is_sorted(faulty.begin(), faulty.end()));
  DA_EXPECTS(std::adjacent_find(faulty.begin(), faulty.end()) ==
             faulty.end());
  for (NodeId id : faulty) DA_EXPECTS(id >= 0 && id < config.n);
}

std::string ScenarioSpec::to_string() const {
  std::string s = config.to_string() + ", sender=" + std::to_string(sender) +
                  " value=" + sender_value.to_string() + ", faulty={";
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(faulty[i]);
  }
  return s + "}";
}

}  // namespace da
