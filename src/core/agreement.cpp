#include "core/agreement.hpp"

#include "obs/metrics.hpp"
#include "rt/threaded_runner.hpp"
#include "util/contracts.hpp"

namespace da {

namespace {

sim::RunOptions to_run_options(const ScenarioSpec& spec,
                               sim::Adversary* adversary,
                               const RunExtras& extras) {
  sim::RunOptions options;
  options.faulty = spec.faulty;
  options.adversary = adversary;
  options.network = extras.network;
  options.trace = extras.trace;
  return options;
}

Outcome to_outcome(sim::RunResult&& result) {
  Outcome out;
  out.decisions = std::move(result.decisions);
  out.messages_sent = result.messages_sent;
  out.messages_delivered = result.messages_delivered;
  out.rounds = result.rounds;
  return out;
}

}  // namespace

Value Outcome::decision_of(NodeId id) const { return decisions.at(id); }

DegradableAgreement::DegradableAgreement(Config config) : config_(config) {
  DA_EXPECTS(config_.valid());
}

Outcome DegradableAgreement::run(const ScenarioSpec& spec,
                                 sim::Adversary* adversary,
                                 const RunExtras& extras) const {
  spec.validate();
  DA_EXPECTS(spec.config.n == config_.n && spec.config.m == config_.m &&
             spec.config.u == config_.u);
  static const obs::Counter executions("protocol.byz.executions");
  static const obs::Counter messages("protocol.byz.messages_sent");
  executions.add();
  sim::SyncRunner runner(
      core::make_byz_processes(config_, spec.sender, spec.sender_value),
      to_run_options(spec, adversary, extras));
  Outcome out = to_outcome(runner.run());
  messages.add(out.messages_sent);
  return out;
}

Outcome DegradableAgreement::run_threaded(const ScenarioSpec& spec,
                                          sim::Adversary* adversary,
                                          const RunExtras& extras) const {
  spec.validate();
  DA_EXPECTS(spec.config.n == config_.n && spec.config.m == config_.m &&
             spec.config.u == config_.u);
  static const obs::Counter executions("protocol.byz.executions");
  static const obs::Counter messages("protocol.byz.messages_sent");
  executions.add();
  rt::ThreadedRunner runner(
      core::make_byz_processes(config_, spec.sender, spec.sender_value),
      to_run_options(spec, adversary, extras));
  Outcome out = to_outcome(runner.run());
  messages.add(out.messages_sent);
  return out;
}

ConditionReport DegradableAgreement::run_and_check(
    const ScenarioSpec& spec, sim::Adversary* adversary,
    const RunExtras& extras) const {
  const Outcome outcome = run(spec, adversary, extras);
  return check_conditions(spec, outcome.decisions);
}

LamportAgreement::LamportAgreement(int n, int m) : n_(n), m_(m) {
  DA_EXPECTS(n >= 2 && m >= 0);
}

Outcome LamportAgreement::run(const ScenarioSpec& spec,
                              sim::Adversary* adversary,
                              const RunExtras& extras) const {
  spec.validate();
  DA_EXPECTS(spec.config.n == n_);
  static const obs::Counter executions("protocol.om.executions");
  static const obs::Counter messages("protocol.om.messages_sent");
  executions.add();
  auto procs = protocols::make_eig_processes(
      n_, spec.sender, spec.sender_value, m_ + 1,
      std::make_shared<protocols::MajorityResolver>());
  sim::SyncRunner runner(std::move(procs),
                         to_run_options(spec, adversary, extras));
  Outcome out = to_outcome(runner.run());
  messages.add(out.messages_sent);
  return out;
}

}  // namespace da
