#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "sim/decisions.hpp"
#include "util/value.hpp"

namespace da {

/// Which of the paper's agreement conditions governs a scenario.
enum class Condition {
  kD1,    // f <= m, sender fault-free: all decide sender's value
  kD2,    // f <= m, sender faulty: all decide one identical value
  kD3,    // m < f <= u, sender fault-free: classes {sender value, V_d}
  kD4,    // m < f <= u, sender faulty: classes {some value, V_d}
  kNone,  // f > u: the protocol promises nothing
};

[[nodiscard]] const char* to_string(Condition c);

/// Verdict of checking one execution against the definition of
/// m/u-degradable agreement (Section 2).
struct ConditionReport {
  Condition applied = Condition::kNone;
  bool satisfied = true;

  /// Fault-free receivers that decided the sender's value (D.1/D.3) or the
  /// non-default agreed value (D.2/D.4).
  std::vector<NodeId> value_class;
  /// Fault-free receivers that decided V_d.
  std::vector<NodeId> default_class;
  /// Fault-free receivers that decided something else (witnesses of a
  /// violation).
  std::vector<NodeId> violators;

  /// Section 2 corollary: with N > 2m+u and f <= u, at least m+1 fault-free
  /// nodes (sender included) agree on an identical value.
  bool corollary_m_plus_1 = false;
  int largest_agreeing_class = 0;

  std::string detail;
};

/// Checks decisions (one per node; faulty nodes' entries are ignored)
/// against conditions D.1-D.4 for `spec`. The `sim::Decisions` overload is
/// the allocation-free form used by the search hot loops; the map overload
/// serves callers that assemble decisions by hand.
[[nodiscard]] ConditionReport check_conditions(const ScenarioSpec& spec,
                                               const sim::Decisions& decisions);
[[nodiscard]] ConditionReport check_conditions(
    const ScenarioSpec& spec, const std::map<NodeId, Value>& decisions);

}  // namespace da
