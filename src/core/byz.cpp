#include "core/byz.hpp"

#include "util/contracts.hpp"

namespace da::core {

int byz_depth(int m) {
  DA_EXPECTS(m >= 0);
  return m >= 1 ? m + 1 : 2;
}

std::uint64_t byz_message_count(int n, int m) {
  DA_EXPECTS(n >= 2 && m >= 0);
  const int depth = byz_depth(m);
  std::uint64_t total = 0;
  std::uint64_t level = 1;
  // Round r carries (n-1)(n-2)...(n-r) messages: one per length-r relay
  // chain of distinct nodes starting at the sender.
  for (int r = 1; r <= depth; ++r) {
    level *= static_cast<std::uint64_t>(n - r);
    total += level;
  }
  return total;
}

std::shared_ptr<const protocols::Resolver> byz_resolver(int m) {
  return std::make_shared<protocols::ByzResolver>(m);
}

std::vector<std::unique_ptr<sim::Process>> make_byz_processes(
    const Config& config, NodeId sender, Value value) {
  DA_EXPECTS(config.valid());
  return protocols::make_eig_processes(config.n, sender, value,
                                       byz_depth(config.m),
                                       byz_resolver(config.m));
}

}  // namespace da::core
