#include "core/byz.hpp"

#include "util/contracts.hpp"

namespace da::core {

int byz_depth(int m) {
  DA_EXPECTS(m >= 0);
  return m >= 1 ? m + 1 : 2;
}

std::uint64_t byz_message_count(int n, int m) {
  DA_EXPECTS(n >= 2 && m >= 0);
  return protocols::eig_message_count(n, byz_depth(m));
}

std::uint64_t byz_message_count(int n, int t, int m) {
  DA_EXPECTS(n >= 2 && t >= 1 && m >= 0);
  (void)m;  // m tunes the resolve thresholds, not the message pattern
  return protocols::eig_message_count(n, t + 1);
}

std::shared_ptr<const protocols::Resolver> byz_resolver(int m) {
  return std::make_shared<protocols::ByzResolver>(m);
}

std::vector<std::unique_ptr<sim::Process>> make_byz_processes(
    const Config& config, NodeId sender, Value value) {
  DA_EXPECTS(config.valid());
  // Engine boundary: a well-formed config below the EIG floor (n < 2m+1,
  // e.g. n=2, m=1) would only abort rounds later, when the deepest
  // resolve level finds its VOTE quorum alpha = n - 2m empty. Refuse it
  // here with a typed, recoverable rejection instead.
  if (!config.engine_runnable()) throw UnsupportedConfig(config);
  return protocols::make_eig_processes(config.n, sender, value,
                                       byz_depth(config.m),
                                       byz_resolver(config.m));
}

}  // namespace da::core
