#include "core/bounds.hpp"

#include "util/contracts.hpp"

namespace da::bounds {

int min_nodes(int m, int u) {
  DA_EXPECTS(m >= 0 && u >= m);
  return 2 * m + u + 1;
}

int min_connectivity(int m, int u) {
  DA_EXPECTS(m >= 0 && u >= m);
  return m + u + 1;
}

int lamport_min_nodes(int m) {
  DA_EXPECTS(m >= 0);
  return 3 * m + 1;
}

int max_u(int n, int m) {
  DA_EXPECTS(n >= 1 && m >= 0);
  const int u = n - 2 * m - 1;
  return u >= m ? u : -1;
}

int max_m(int n) {
  DA_EXPECTS(n >= 1);
  return (n - 1) / 3;
}

std::vector<Config> tradeoff_frontier(int n) {
  std::vector<Config> out;
  for (int m = 0; m <= max_m(n); ++m) {
    const int u = max_u(n, m);
    if (u >= m) out.push_back(Config{.n = n, .m = m, .u = u});
  }
  return out;
}

}  // namespace da::bounds
