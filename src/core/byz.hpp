#pragma once

#include <memory>
#include <vector>

#include "core/scenario.hpp"
#include "protocols/common/eig_process.hpp"
#include "sim/process.hpp"

namespace da::core {

/// Communication rounds used by algorithm BYZ(m,m).
///
/// For m >= 1 the recursion BYZ(m,m) -> BYZ(m-1,m) -> ... -> BYZ(1,m)
/// unfolds into m+1 rounds (one send, m relay levels). The paper omits the
/// m = 0 algorithm; a bare broadcast would violate D.4 (a faulty sender
/// could split the fault-free receivers into more than two classes), so we
/// use the natural completion: one echo round with the unanimity vote
/// VOTE(n-1, n-1) — i.e. the BYZ(1,m) structure evaluated at m = 0, which
/// satisfies D.1/D.3/D.4 for 0/u-degradable agreement (D.2 is vacuous at
/// m = 0). Hence depth 2 for m = 0.
[[nodiscard]] int byz_depth(int m);

/// Total point-to-point messages BYZ(m,m) sends with n nodes and no
/// omissions: (n-1) + (n-1)(n-2) + ... + (n-1)...(n-1-m)  — the paper's
/// "no attempt is made here to present an efficient algorithm". Equals
/// protocols::eig_message_count(n, byz_depth(m)).
[[nodiscard]] std::uint64_t byz_message_count(int n, int m);

/// Generalization to BYZ(t,m): the recursion unfolds over t+1 rounds (the
/// message pattern depends only on t; m only tunes the VOTE thresholds),
/// so the count is protocols::eig_message_count(n, t+1).
[[nodiscard]] std::uint64_t byz_message_count(int n, int t, int m);

/// The shared BYZ resolve rule for parameter m.
[[nodiscard]] std::shared_ptr<const protocols::Resolver> byz_resolver(int m);

/// Processes for one BYZ(m,m) execution of `spec.config` with the given
/// sender and value. The returned processes all follow the protocol; the
/// runner applies the adversary to the faulty ones.
[[nodiscard]] std::vector<std::unique_ptr<sim::Process>> make_byz_processes(
    const Config& config, NodeId sender, Value value);

}  // namespace da::core
