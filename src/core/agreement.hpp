#pragma once

#include "core/byz.hpp"
#include "core/checker.hpp"
#include "core/scenario.hpp"
#include "sim/adversary.hpp"
#include "sim/decisions.hpp"
#include "sim/network.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"

namespace da {

/// Result of one agreement execution.
struct Outcome {
  sim::Decisions decisions;
  std::size_t messages_sent = 0;
  std::size_t messages_delivered = 0;
  int rounds = 0;

  [[nodiscard]] Value decision_of(NodeId id) const;
};

/// Optional execution knobs shared by both runtimes.
struct RunExtras {
  sim::NetworkModel* network = nullptr;  // null = reliable links
  sim::Trace* trace = nullptr;           // optional transcript capture
};

/// The paper's protocol, packaged: construct with a Config, run scenarios.
///
///   da::DegradableAgreement proto({.n = 7, .m = 1, .u = 4});
///   auto outcome = proto.run(spec, adversary.get());
///   auto report  = da::check_conditions(spec, outcome.decisions);
///
/// `run` executes on the deterministic single-threaded simulator;
/// `run_threaded` executes the identical protocol with one OS thread per
/// node (barrier-synchronized rounds). Both produce identical decisions for
/// identical scenarios.
class DegradableAgreement {
 public:
  explicit DegradableAgreement(Config config);

  [[nodiscard]] const Config& config() const { return config_; }

  /// Rounds BYZ(m,m) uses under this config.
  [[nodiscard]] int rounds() const { return core::byz_depth(config_.m); }

  [[nodiscard]] Outcome run(const ScenarioSpec& spec,
                            sim::Adversary* adversary,
                            const RunExtras& extras = {}) const;

  [[nodiscard]] Outcome run_threaded(const ScenarioSpec& spec,
                                     sim::Adversary* adversary,
                                     const RunExtras& extras = {}) const;

  /// Convenience: run on the simulator and immediately check D.1-D.4.
  [[nodiscard]] ConditionReport run_and_check(
      const ScenarioSpec& spec, sim::Adversary* adversary,
      const RunExtras& extras = {}) const;

 private:
  Config config_;
};

/// Baseline: Lamport-Shostak-Pease OM(m) over the same substrate (majority
/// resolve instead of the threshold vote). Used for comparisons and the
/// m = u equivalence tests.
class LamportAgreement {
 public:
  LamportAgreement(int n, int m);

  [[nodiscard]] Outcome run(const ScenarioSpec& spec,
                            sim::Adversary* adversary,
                            const RunExtras& extras = {}) const;

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int m() const { return m_; }

 private:
  int n_;
  int m_;
};

}  // namespace da
