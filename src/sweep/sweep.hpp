#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "sweep/shard.hpp"
#include "util/rng.hpp"

namespace da::sweep {

/// Sentinel "no hit yet" ordinal for first-hit fields.
inline constexpr std::uint64_t kNoHit =
    std::numeric_limits<std::uint64_t>::max();

/// Saved progress of one shard, for suspending a sweep and resuming it
/// later (possibly in another process — see src/faults/frontier.hpp for
/// the serialized form). `cursor` is the next unvisited ordinal; a shard
/// is settled when cursor == end. Counters are cumulative across runs.
struct ShardResume {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t cursor = 0;
  std::uint64_t executions = 0;
  std::uint64_t weighted = 0;
  std::uint64_t first_hit = kNoHit;
};

/// Saved progress of a whole sweep, one entry per plan shard, in plan
/// order (begins/ends must match the plan exactly).
struct SweepResume {
  std::vector<ShardResume> shards;
};

/// Per-shard counters, in shard (= ordinal) order.
struct ShardStats {
  std::uint64_t begin = 0;       // first global ordinal of the shard
  std::uint64_t end = 0;         // one past the last
  std::uint64_t cursor = 0;      // next unvisited ordinal (end: settled)
  std::uint64_t executions = 0;  // protocol executions actually performed
  std::uint64_t weighted = 0;    // orbit-weighted executions (see Visit)
  std::uint64_t violations = 0;  // hits reported by the visitor
  std::uint64_t first_hit = kNoHit;  // shard's first hit ordinal, if any
  double wall_ms = 0.0;          // wall time spent scanning this shard
  int worker = -1;               // pool worker that ran it (-1: skipped)
};

/// Knobs for one parallel sweep.
struct SweepOptions {
  /// Worker threads; <= 0 means std::thread::hardware_concurrency().
  int jobs = 1;
  /// Base seed for the per-shard RNG streams (shard s receives
  /// Rng(mix64(seed, s.begin)) — a pure function of the plan, so streams
  /// are identical for every jobs value).
  std::uint64_t seed = 1;
  /// Resume from previously saved shard cursors instead of from scratch.
  /// Settled shards are skipped (their counters carry over verbatim) and
  /// saved hits pre-seed the canceller. Resuming a shard mid-range
  /// restarts its RNG stream from the shard head, so mid-shard resume is
  /// only sound for visitors that ignore `rng` (the behaviour search
  /// does; the family search checkpoints only at shard boundaries).
  const SweepResume* resume = nullptr;
  /// Cooperative suspension: polled (from worker threads — must be
  /// thread-safe) before each shard and each ordinal; once it returns
  /// true, in-flight shards park their cursors and queued shards never
  /// start. Suspended progress is reported via `per_shard` cursors.
  std::function<bool()> stop;
  /// Invoked from the owning worker thread each time a shard settles
  /// (scanned to its end or found its hit) during *this* run — the hook
  /// for incremental frontier checkpointing. Not called for shards that
  /// were already settled by a resumed-in state, nor for suspended or
  /// cancelled shards.
  std::function<void(std::size_t shard, const ShardStats&)> on_shard_done;
};

/// Whole-sweep counters.
struct SweepStats {
  /// Canonical execution count: the number of protocol executions a
  /// serial early-exit scan of the same plan would perform — i.e. all
  /// executions at ordinals <= the first violation (or the whole space
  /// when there is none). Identical for every jobs value.
  std::uint64_t executions = 0;
  /// Canonical orbit-weighted execution count, aggregated exactly like
  /// `executions`. Visitors that skip symmetry orbits report each
  /// representative's orbit size as its weight, so on a clean (no-hit)
  /// sweep this reconciles to the full unreduced space.
  std::uint64_t weighted_executions = 0;
  /// Executions actually performed, including speculative work by shards
  /// that were later cancelled. >= executions; depends on scheduling.
  std::uint64_t performed = 0;
  std::uint64_t violations = 0;  // total hits seen (all shards)
  std::uint64_t shards = 0;
  int jobs = 1;
  double wall_ms = 0.0;  // end-to-end sweep wall time
  std::vector<ShardStats> per_shard;
};

/// Early-exit state shared by all shards of one sweep: the smallest hit
/// ordinal seen so far. A shard stops as soon as the best known hit
/// precedes its next ordinal — nothing it could still find would be the
/// sweep's first hit. Shards that precede the best hit are never
/// cancelled (they may still find an earlier one), which is exactly what
/// makes the canonical execution count deterministic.
class Canceller {
 public:
  static constexpr std::uint64_t kNone =
      std::numeric_limits<std::uint64_t>::max();

  /// True if a hit strictly before `ordinal` is already known.
  [[nodiscard]] bool cancelled(std::uint64_t ordinal) const {
    return best_.load(std::memory_order_relaxed) < ordinal;
  }

  /// Records a hit; keeps the minimum ordinal.
  void report(std::uint64_t ordinal) {
    std::uint64_t cur = best_.load(std::memory_order_relaxed);
    while (ordinal < cur &&
           !best_.compare_exchange_weak(cur, ordinal,
                                        std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t best() const {
    return best_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> best_{kNone};
};

/// The visitor executes the scenario at one global ordinal and reports
/// whether it was a violation ("hit"). `shard` is the shard's index in
/// the plan (stash per-shard payloads there — each shard is scanned by
/// exactly one worker, so a slot per shard needs no locking); `rng` is
/// the shard's private deterministic stream.
struct Visit {
  bool hit = false;
  /// Protocol executions this ordinal cost (family search runs a whole
  /// adversary family per scenario ordinal).
  std::uint64_t executions = 1;
  /// Orbit-weighted cost folded into `weighted` counters. Symmetry-aware
  /// visitors report the orbit size of an executed representative (and 0
  /// for skipped ordinals); plain visitors leave the default so weighted
  /// counts equal unweighted ones.
  std::uint64_t weight = 1;
  /// Skip-ahead target: when > ordinal + 1, the scan jumps there next
  /// (used to leap over non-canonical orbit members without visiting
  /// them). 0 (the default) means no skip. Jumps are clamped to the
  /// shard range; a hit always settles the shard regardless.
  std::uint64_t next = 0;
};
using Visitor =
    std::function<Visit(std::uint64_t ordinal, std::size_t shard, Rng& rng)>;

struct SweepResult {
  /// Smallest hit ordinal, or nullopt if no visitor reported a hit.
  std::optional<std::uint64_t> first_hit;
  /// Plan index of the shard containing first_hit.
  std::optional<std::size_t> first_hit_shard;
  SweepStats stats;
};

/// Runs the visitor over every ordinal of `plan` on a work-stealing pool,
/// early-exiting once the first (by ordinal) hit is settled.
///
/// Deterministic contract, for any jobs >= 1: `first_hit`,
/// `first_hit_shard` and `stats.executions` are identical; only
/// `stats.performed`, per-shard wall times and worker assignments vary.
[[nodiscard]] SweepResult run_sweep(const ShardPlan& plan,
                                    const SweepOptions& options,
                                    const Visitor& visitor);

/// Resolved job count: `jobs` if positive, else hardware concurrency.
[[nodiscard]] int resolve_jobs(int jobs);

/// Per-worker rollup of the per-shard counters, for scaling reports:
/// how many shards each pool worker scanned, how many protocol
/// executions that cost, and how long the worker was busy. Skipped
/// (cancelled-before-start) shards are reported under worker -1.
struct WorkerSummary {
  int worker = -1;
  std::uint64_t shards = 0;
  std::uint64_t executions = 0;
  double busy_ms = 0.0;
};
[[nodiscard]] std::vector<WorkerSummary> summarize_workers(
    const SweepStats& stats);

}  // namespace da::sweep
