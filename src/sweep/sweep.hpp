#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "sweep/shard.hpp"
#include "util/rng.hpp"

namespace da::sweep {

/// Knobs for one parallel sweep.
struct SweepOptions {
  /// Worker threads; <= 0 means std::thread::hardware_concurrency().
  int jobs = 1;
  /// Base seed for the per-shard RNG streams (shard s receives
  /// Rng(mix64(seed, s.begin)) — a pure function of the plan, so streams
  /// are identical for every jobs value).
  std::uint64_t seed = 1;
};

/// Per-shard counters, in shard (= ordinal) order.
struct ShardStats {
  std::uint64_t begin = 0;       // first global ordinal of the shard
  std::uint64_t end = 0;         // one past the last
  std::uint64_t executions = 0;  // protocol executions actually performed
  std::uint64_t violations = 0;  // hits reported by the visitor
  double wall_ms = 0.0;          // wall time spent scanning this shard
  int worker = -1;               // pool worker that ran it (-1: skipped)
};

/// Whole-sweep counters.
struct SweepStats {
  /// Canonical execution count: the number of protocol executions a
  /// serial early-exit scan of the same plan would perform — i.e. all
  /// executions at ordinals <= the first violation (or the whole space
  /// when there is none). Identical for every jobs value.
  std::uint64_t executions = 0;
  /// Executions actually performed, including speculative work by shards
  /// that were later cancelled. >= executions; depends on scheduling.
  std::uint64_t performed = 0;
  std::uint64_t violations = 0;  // total hits seen (all shards)
  std::uint64_t shards = 0;
  int jobs = 1;
  double wall_ms = 0.0;  // end-to-end sweep wall time
  std::vector<ShardStats> per_shard;
};

/// Early-exit state shared by all shards of one sweep: the smallest hit
/// ordinal seen so far. A shard stops as soon as the best known hit
/// precedes its next ordinal — nothing it could still find would be the
/// sweep's first hit. Shards that precede the best hit are never
/// cancelled (they may still find an earlier one), which is exactly what
/// makes the canonical execution count deterministic.
class Canceller {
 public:
  static constexpr std::uint64_t kNone =
      std::numeric_limits<std::uint64_t>::max();

  /// True if a hit strictly before `ordinal` is already known.
  [[nodiscard]] bool cancelled(std::uint64_t ordinal) const {
    return best_.load(std::memory_order_relaxed) < ordinal;
  }

  /// Records a hit; keeps the minimum ordinal.
  void report(std::uint64_t ordinal) {
    std::uint64_t cur = best_.load(std::memory_order_relaxed);
    while (ordinal < cur &&
           !best_.compare_exchange_weak(cur, ordinal,
                                        std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t best() const {
    return best_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> best_{kNone};
};

/// The visitor executes the scenario at one global ordinal and reports
/// whether it was a violation ("hit"). `shard` is the shard's index in
/// the plan (stash per-shard payloads there — each shard is scanned by
/// exactly one worker, so a slot per shard needs no locking); `rng` is
/// the shard's private deterministic stream.
struct Visit {
  bool hit = false;
  /// Protocol executions this ordinal cost (family search runs a whole
  /// adversary family per scenario ordinal).
  std::uint64_t executions = 1;
};
using Visitor =
    std::function<Visit(std::uint64_t ordinal, std::size_t shard, Rng& rng)>;

struct SweepResult {
  /// Smallest hit ordinal, or nullopt if no visitor reported a hit.
  std::optional<std::uint64_t> first_hit;
  /// Plan index of the shard containing first_hit.
  std::optional<std::size_t> first_hit_shard;
  SweepStats stats;
};

/// Runs the visitor over every ordinal of `plan` on a work-stealing pool,
/// early-exiting once the first (by ordinal) hit is settled.
///
/// Deterministic contract, for any jobs >= 1: `first_hit`,
/// `first_hit_shard` and `stats.executions` are identical; only
/// `stats.performed`, per-shard wall times and worker assignments vary.
[[nodiscard]] SweepResult run_sweep(const ShardPlan& plan,
                                    const SweepOptions& options,
                                    const Visitor& visitor);

/// Resolved job count: `jobs` if positive, else hardware concurrency.
[[nodiscard]] int resolve_jobs(int jobs);

/// Per-worker rollup of the per-shard counters, for scaling reports:
/// how many shards each pool worker scanned, how many protocol
/// executions that cost, and how long the worker was busy. Skipped
/// (cancelled-before-start) shards are reported under worker -1.
struct WorkerSummary {
  int worker = -1;
  std::uint64_t shards = 0;
  std::uint64_t executions = 0;
  double busy_ms = 0.0;
};
[[nodiscard]] std::vector<WorkerSummary> summarize_workers(
    const SweepStats& stats);

}  // namespace da::sweep
