#include "sweep/shard.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace da::sweep {

namespace {

std::uint64_t pow4(std::uint64_t digits) {
  DA_EXPECTS(digits <= 31);  // 4^32 overflows uint64
  return std::uint64_t{1} << (2 * digits);
}

}  // namespace

std::uint64_t ShardPlan::append_pow4(std::uint64_t slots,
                                     std::uint64_t target_block) {
  const std::uint64_t base = total_;
  const std::uint64_t segment = pow4(slots);
  if (target_block < 1) target_block = 1;
  // Largest power of four <= target_block, capped at the segment size.
  std::uint64_t block_digits = 0;
  while (block_digits < slots && pow4(block_digits + 1) <= target_block) {
    ++block_digits;
  }
  const std::uint64_t block = pow4(block_digits);
  for (std::uint64_t off = 0; off < segment; off += block) {
    shards_.push_back({base + off, base + off + block});
  }
  total_ += segment;
  return base;
}

std::uint64_t ShardPlan::append_even(std::uint64_t count,
                                     std::uint64_t target_block) {
  const std::uint64_t base = total_;
  if (target_block < 1) target_block = 1;
  for (std::uint64_t off = 0; off < count; off += target_block) {
    const std::uint64_t len = std::min(target_block, count - off);
    shards_.push_back({base + off, base + off + len});
  }
  total_ += count;
  return base;
}

std::uint64_t ShardPlan::skip(std::uint64_t count) {
  const std::uint64_t base = total_;
  total_ += count;
  return base;
}

ShardPlan ShardPlan::even(std::uint64_t total, std::uint64_t target_block) {
  ShardPlan plan;
  plan.append_even(total, target_block);
  return plan;
}

}  // namespace da::sweep
