#include "sweep/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include "obs/metrics.hpp"
#include "sweep/thread_pool.hpp"
#include "util/contracts.hpp"

namespace da::sweep {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepResult run_sweep(const ShardPlan& plan, const SweepOptions& options,
                      const Visitor& visitor) {
  DA_EXPECTS(static_cast<bool>(visitor));
  using Clock = std::chrono::steady_clock;
  const auto sweep_start = Clock::now();
  const int jobs = resolve_jobs(options.jobs);

  SweepResult result;
  result.stats.jobs = jobs;
  result.stats.shards = plan.shard_count();
  result.stats.per_shard.resize(plan.shard_count());
  if (options.resume != nullptr) {
    DA_EXPECTS(options.resume->shards.size() == plan.shard_count());
    for (std::size_t s = 0; s < plan.shard_count(); ++s) {
      const ShardResume& saved = options.resume->shards[s];
      DA_EXPECTS(saved.begin == plan.shard(s).begin);
      DA_EXPECTS(saved.end == plan.shard(s).end);
      DA_EXPECTS(saved.cursor >= saved.begin && saved.cursor <= saved.end);
    }
  }

  Canceller canceller;
  if (options.resume != nullptr) {
    // Pre-seed from hits found by earlier runs so cancellation picks up
    // exactly where the suspended sweep left off.
    for (const ShardResume& saved : options.resume->shards) {
      if (saved.first_hit != kNoHit) canceller.report(saved.first_hit);
    }
  }
  {
    ThreadPool pool(jobs);
    for (std::size_t s = 0; s < plan.shard_count(); ++s) {
      pool.submit([&, s] {
        // Flush this worker's thread-local metric deltas when the shard
        // finishes: visitors that drive a RoundEngine phase-by-phase (the
        // checkpointed searches) stage counters outside any MetricsScope
        // of their own, and pool threads die without flushing.
        const obs::MetricsScope metrics_scope;
        const ShardRange range = plan.shard(s);
        ShardStats& stats = result.stats.per_shard[s];
        stats.begin = range.begin;
        stats.end = range.end;
        std::uint64_t o = range.begin;
        if (options.resume != nullptr) {
          const ShardResume& saved = options.resume->shards[s];
          stats.executions = saved.executions;
          stats.weighted = saved.weighted;
          stats.first_hit = saved.first_hit;
          if (saved.first_hit != kNoHit) stats.violations = 1;
          o = saved.first_hit != kNoHit ? range.end : saved.cursor;
        }
        stats.cursor = o;
        if (o >= range.end) return;  // settled by the resumed-in state
        if (canceller.cancelled(o)) return;  // stats.worker = -1
        if (options.stop && options.stop()) return;  // suspended, untouched
        stats.worker = pool.current_worker();
        const auto start = Clock::now();
        Rng rng(mix64(options.seed, range.begin));
        while (o < range.end) {
          if (canceller.cancelled(o)) break;
          if (options.stop && options.stop()) break;  // park the cursor
          const Visit visit = visitor(o, s, rng);
          stats.executions += visit.executions;
          stats.weighted += visit.weight;
          if (visit.hit) {
            ++stats.violations;
            stats.first_hit = o;
            canceller.report(o);
            o = range.end;  // ascending scan: the shard verdict is settled
            break;
          }
          o = std::max(o + 1, visit.next);
        }
        stats.cursor = std::min(o, range.end);
        stats.wall_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - start)
                            .count();
        if (stats.cursor == range.end && options.on_shard_done) {
          options.on_shard_done(s, stats);
        }
      });
    }
    pool.wait_idle();
  }

  // Aggregate. The winner is the shard holding the best (minimum) hit
  // ordinal; every shard before it ran to completion (cancellation only
  // fires for ordinals after a known hit), so summing executed counts up
  // to and including the winner yields the canonical serial-early-exit
  // execution count.
  const std::uint64_t best = canceller.best();
  std::uint64_t performed_weighted = 0;
  std::size_t winner = plan.shard_count();
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    const ShardStats& stats = result.stats.per_shard[s];
    result.stats.performed += stats.executions;
    performed_weighted += stats.weighted;
    result.stats.violations += stats.violations;
    if (winner == plan.shard_count() && best != Canceller::kNone &&
        best >= plan.shard(s).begin && best < plan.shard(s).end) {
      winner = s;
    }
  }
  if (best != Canceller::kNone) {
    DA_ENSURES(winner < plan.shard_count());
    result.first_hit = best;
    result.first_hit_shard = winner;
    for (std::size_t s = 0; s <= winner; ++s) {
      result.stats.executions += result.stats.per_shard[s].executions;
      result.stats.weighted_executions += result.stats.per_shard[s].weighted;
    }
  } else {
    result.stats.executions = result.stats.performed;
    result.stats.weighted_executions = performed_weighted;
  }
  result.stats.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - sweep_start)
          .count();

  // Fold the sweep's own statistics into the metrics registry (the
  // per-execution sim.* counters were already written by the workers).
  static const obs::Counter sweeps("sweep.sweeps");
  static const obs::Counter executions("sweep.executions");
  static const obs::Counter weighted("sweep.weighted_executions");
  static const obs::Counter performed("sweep.performed");
  static const obs::Counter violations("sweep.violations");
  static const obs::Counter shards("sweep.shards");
  static const obs::Counter cancelled_shards("sweep.cancelled_shards");
  // A quantile sketch rather than the octave histogram: shard imbalance
  // lives in the p99/max tail, which 2x-wide buckets cannot resolve.
  static const obs::Quantile shard_wall_ms("sweep.shard_wall_ms");
  static const obs::Histogram worker_busy_ms("sweep.worker_busy_ms");
  static const obs::Histogram wall_ms("sweep.wall_ms");
  const obs::MetricsScope metrics_scope;
  sweeps.add();
  executions.add(result.stats.executions);
  weighted.add(result.stats.weighted_executions);
  performed.add(result.stats.performed);
  violations.add(result.stats.violations);
  shards.add(result.stats.shards);
  for (const ShardStats& shard : result.stats.per_shard) {
    if (shard.worker < 0) {
      cancelled_shards.add();
    } else {
      shard_wall_ms.record(shard.wall_ms);
    }
  }
  for (const WorkerSummary& w : summarize_workers(result.stats)) {
    if (w.worker >= 0) worker_busy_ms.record(w.busy_ms);
  }
  wall_ms.record(result.stats.wall_ms);
  obs::MetricsRegistry::global().set_gauge("sweep.jobs", jobs);
  return result;
}

std::vector<WorkerSummary> summarize_workers(const SweepStats& stats) {
  std::map<int, WorkerSummary> by_worker;
  for (const ShardStats& shard : stats.per_shard) {
    WorkerSummary& summary = by_worker[shard.worker];
    summary.worker = shard.worker;
    ++summary.shards;
    summary.executions += shard.executions;
    summary.busy_ms += shard.wall_ms;
  }
  std::vector<WorkerSummary> out;
  out.reserve(by_worker.size());
  for (const auto& [worker, summary] : by_worker) out.push_back(summary);
  return out;
}

}  // namespace da::sweep
