#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace da::sweep {

/// A small work-stealing thread pool.
///
/// Each worker owns a deque; `submit` deals tasks round-robin across the
/// deques, a worker pops from the front of its own deque and, when empty,
/// steals from the *back* of a sibling's. Stealing keeps all cores busy
/// when shard costs are skewed (behaviour shards containing a violation
/// exit early; subsets with a faulty sender have 4x the work of the rest).
///
/// The pool makes no ordering promises — determinism of sweep results is
/// the shard plan's job, not the scheduler's (see sweep.hpp).
class ThreadPool {
 public:
  /// Spawns `threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int threads);

  /// Drains nothing: outstanding tasks are completed before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Thread-safe; may be called from worker threads
  /// (the task lands on the submitting worker's own deque in that case).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void wait_idle();

  [[nodiscard]] int threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Index of the calling worker thread within this pool, or -1 when
  /// called from a non-worker thread.
  [[nodiscard]] int current_worker() const;

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> queue;
  };

  void worker_loop(std::size_t index);
  bool try_pop(std::size_t index, std::function<void()>& task);
  bool try_steal(std::size_t thief, std::function<void()>& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;                  // guards cv waits + counters below
  std::condition_variable work_cv_;   // "a task was submitted / stop"
  std::condition_variable idle_cv_;   // "a task finished"
  std::size_t pending_ = 0;        // submitted but not yet finished
  std::size_t next_ = 0;           // round-robin submit cursor
  bool stop_ = false;
};

}  // namespace da::sweep
