#include "sweep/thread_pool.hpp"

#include <algorithm>

namespace da::sweep {

namespace {

/// Which pool (if any) the current thread is a worker of, and its index.
/// Plain thread_locals: a worker belongs to exactly one pool for its
/// whole lifetime.
thread_local const ThreadPool* t_pool = nullptr;
thread_local int t_worker = -1;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const std::size_t count = static_cast<std::size_t>(std::max(1, threads));
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

int ThreadPool::current_worker() const {
  return t_pool == this ? t_worker : -1;
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
    // A worker submitting keeps its task local; external submitters deal
    // round-robin.
    const int self = current_worker();
    target = self >= 0 ? static_cast<std::size_t>(self)
                       : next_++ % workers_.size();
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->queue.push_back(std::move(task));
  }
  // Notify under mu_: waiters evaluate their predicate (a scan of the
  // queues) while holding mu_, so a notify outside it could land between
  // a waiter's scan and its block, stranding the task (lost wakeup).
  {
    std::lock_guard<std::mutex> lock(mu_);
    work_cv_.notify_one();
  }
}

bool ThreadPool::try_pop(std::size_t index, std::function<void()>& task) {
  Worker& w = *workers_[index];
  std::lock_guard<std::mutex> lock(w.mu);
  if (w.queue.empty()) return false;
  task = std::move(w.queue.front());
  w.queue.pop_front();
  return true;
}

bool ThreadPool::try_steal(std::size_t thief, std::function<void()>& task) {
  const std::size_t n = workers_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Worker& victim = *workers_[(thief + k) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.queue.empty()) continue;
    task = std::move(victim.queue.back());
    victim.queue.pop_back();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  t_pool = this;
  t_worker = static_cast<int>(index);
  for (;;) {
    std::function<void()> task;
    if (try_pop(index, task) || try_steal(index, task)) {
      task();
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      if (pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    // Re-check queues under no lock inversion: cheap spurious wakeups are
    // fine; missed notifies are not, so wait with a predicate re-probe.
    work_cv_.wait(lock, [this, index] {
      if (stop_) return true;
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        std::lock_guard<std::mutex> qlock(workers_[i]->mu);
        if (!workers_[i]->queue.empty()) return true;
      }
      return false;
    });
    if (stop_) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace da::sweep
