#pragma once

#include <cstdint>
#include <vector>

namespace da::sweep {

/// A contiguous range of global scenario ordinals, scanned in ascending
/// order by exactly one shard task.
struct ShardRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  // exclusive

  [[nodiscard]] std::uint64_t size() const { return end - begin; }
};

/// Deterministic partition of the global ordinal space [0, total) into
/// contiguous shards.
///
/// The plan is a pure function of the enumeration space — never of the
/// thread count — so a sweep's canonical result (first violation ordinal,
/// canonical execution count) is reproducible for any `--jobs` value: the
/// shards are simply dealt to however many workers exist.
///
/// Behaviour-enumeration segments are split at *high-order base-4 digit*
/// boundaries (`append_pow4`): a 4^s-sized segment becomes 4^d blocks of
/// 4^(s-d) counters each, i.e. every behaviour inside a block shares its d
/// leading 4-ary digits and blocks enumerate those digits in ascending
/// order. Scenario-granular segments (adversary-family search, fuzz) use
/// `append_even`.
class ShardPlan {
 public:
  /// Target number of ordinals per shard used by the `append_*` helpers
  /// when the caller does not override it. A fixed constant (not derived
  /// from the job count) keeps plans identical across `--jobs` values
  /// while leaving enough shards for stealing to balance skew.
  static constexpr std::uint64_t kDefaultBlock = 4096;

  /// Appends a segment of 4^slots ordinals, split at high-order digit
  /// boundaries into blocks of 4^k ordinals where 4^k is the largest
  /// power of four <= max(1, target_block) (and <= the segment itself).
  /// Returns the segment's base ordinal.
  std::uint64_t append_pow4(std::uint64_t slots,
                            std::uint64_t target_block = kDefaultBlock);

  /// Appends a segment of `count` ordinals split into near-equal
  /// contiguous blocks of at most max(1, target_block) ordinals.
  /// Returns the segment's base ordinal.
  std::uint64_t append_even(std::uint64_t count,
                            std::uint64_t target_block = kDefaultBlock);

  /// Advances the ordinal space by `count` without creating any shard — a
  /// gap no worker ever scans. Quotiented enumerations use this to leave
  /// out whole segments while keeping every remaining shard's global
  /// ordinals pinned to the unreduced space. Returns the gap's base.
  std::uint64_t skip(std::uint64_t count);

  /// Convenience: a plan that is one even segment over [0, total).
  [[nodiscard]] static ShardPlan even(std::uint64_t total,
                                      std::uint64_t target_block =
                                          kDefaultBlock);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const ShardRange& shard(std::size_t i) const {
    return shards_[i];
  }
  [[nodiscard]] const std::vector<ShardRange>& shards() const {
    return shards_;
  }

 private:
  std::uint64_t total_ = 0;
  std::vector<ShardRange> shards_;
};

}  // namespace da::sweep
