#include "channels/voter.hpp"

#include "protocols/common/vote.hpp"

namespace da::channels {

const char* to_string(VoterOutcome outcome) {
  switch (outcome) {
    case VoterOutcome::kCorrect: return "correct";
    case VoterOutcome::kDefault: return "default";
    case VoterOutcome::kIncorrect: return "INCORRECT";
  }
  return "?";
}

Value external_vote(std::span<const Value> channel_outputs, std::size_t k) {
  return protocols::k_of_n_vote(channel_outputs, k);
}

VoterOutcome classify(Value voted, Value correct) {
  if (voted == correct) return VoterOutcome::kCorrect;
  if (voted.is_default()) return VoterOutcome::kDefault;
  return VoterOutcome::kIncorrect;
}

}  // namespace da::channels
