#include "channels/channel_system.hpp"

#include <algorithm>
#include <set>

#include "core/agreement.hpp"
#include "util/contracts.hpp"

namespace da::channels {

int ChannelSystemConfig::channel_count() const {
  switch (kind) {
    case Kind::kByzantineMajority: return 3 * m;
    case Kind::kDegradable: return 2 * m + u;
  }
  return 0;
}

std::size_t ChannelSystemConfig::vote_threshold() const {
  switch (kind) {
    case Kind::kByzantineMajority:
      return static_cast<std::size_t>(3 * m) / 2 + 1;  // majority of 3m
    case Kind::kDegradable:
      return static_cast<std::size_t>(m + u);  // (m+u)-out-of-(2m+u)
  }
  return 1;
}

ChannelSystem::ChannelSystem(ChannelSystemConfig config)
    : config_(config),
      compute_([](Value x) { return Value::of(2 * x.raw() + 1); }) {
  DA_EXPECTS(config_.m >= 1);
  if (config_.kind == ChannelSystemConfig::Kind::kDegradable) {
    DA_EXPECTS(config_.u >= config_.m);
  }
}

void ChannelSystem::set_computation(Computation f) {
  DA_EXPECTS(f != nullptr);
  compute_ = std::move(f);
}

FrameResult ChannelSystem::run_frame(Value sensor_value,
                                     const std::vector<int>& faulty_channels,
                                     bool sensor_faulty,
                                     sim::Adversary& adversary,
                                     Value faulty_output) const {
  const int channels = config_.channel_count();
  const int n = config_.node_count();

  ScenarioSpec spec;
  spec.sender = 0;  // the sensor
  spec.sender_value = sensor_value;
  if (sensor_faulty) spec.faulty.push_back(0);
  for (int c : faulty_channels) {
    DA_EXPECTS(c >= 0 && c < channels);
    spec.faulty.push_back(c + 1);
  }
  std::sort(spec.faulty.begin(), spec.faulty.end());

  Outcome agreement;
  if (config_.kind == ChannelSystemConfig::Kind::kDegradable) {
    spec.config = Config{.n = n, .m = config_.m, .u = config_.u};
    const DegradableAgreement protocol(spec.config);
    agreement = protocol.run(spec, &adversary);
  } else {
    spec.config = Config{.n = n, .m = config_.m, .u = config_.m};
    const LamportAgreement protocol(n, config_.m);
    agreement = protocol.run(spec, &adversary);
  }

  // Each channel computes on its agreed input; a channel that agreed on
  // V_d enters the safe default state and reports V_d to the voter (C.3).
  FrameResult frame;
  frame.channel_outputs.resize(static_cast<std::size_t>(channels));
  std::set<Value> fault_free_states;
  const Value correct = compute_(sensor_value);

  for (int c = 0; c < channels; ++c) {
    const NodeId node = c + 1;
    const bool faulty = spec.is_faulty(node);
    Value output;
    if (faulty) {
      output = faulty_output;  // colluding wrong output to the voter
    } else {
      const Value agreed = agreement.decision_of(node);
      output = agreed.is_default() ? Value::def() : compute_(agreed);
      fault_free_states.insert(output);
    }
    frame.channel_outputs[static_cast<std::size_t>(c)] = output;
  }

  frame.distinct_fault_free_states =
      static_cast<int>(fault_free_states.size());
  frame.divergence_graceful = std::all_of(
      fault_free_states.begin(), fault_free_states.end(),
      [&correct](const Value& s) { return s == correct || s.is_default(); });

  frame.voter_output =
      external_vote(frame.channel_outputs, config_.vote_threshold());
  frame.outcome = classify(frame.voter_output, correct);
  return frame;
}

}  // namespace da::channels
