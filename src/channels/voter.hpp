#pragma once

#include <span>
#include <string>

#include "util/value.hpp"

namespace da::channels {

/// How the external entity's vote turned out relative to the value it
/// should have obtained.
enum class VoterOutcome {
  kCorrect,    // the vote produced the correct computation result
  kDefault,    // the vote produced V_d: the safe/default action (C.2)
  kIncorrect,  // the vote produced a wrong non-default value: unsafe
};

[[nodiscard]] const char* to_string(VoterOutcome outcome);

/// The external entity of Figure 1: a k-out-of-n voter over the channel
/// outputs. For the degradable system k = m+u, n = 2m+u (condition C.1);
/// for the classical system k = majority of 3m... the caller picks k.
[[nodiscard]] Value external_vote(std::span<const Value> channel_outputs,
                                  std::size_t k);

[[nodiscard]] VoterOutcome classify(Value voted, Value correct);

}  // namespace da::channels
