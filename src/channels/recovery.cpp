#include "channels/recovery.hpp"

#include "faults/adversaries.hpp"
#include "util/rng.hpp"

namespace da::channels {

RecoveryStats run_recovery_experiment(const ChannelSystem& system,
                                      const RecoveryParams& params) {
  Rng rng(params.seed);
  RecoveryStats stats;
  const int channels = system.config().channel_count();

  for (int frame = 0; frame < params.frames; ++frame) {
    const Value sensor_value = Value::of(rng.range(1, 1000));

    // Inject this frame's transient faults.
    std::vector<int> faulty;
    for (int c = 0; c < channels; ++c) {
      if (rng.chance(params.channel_fault_prob)) faulty.push_back(c);
    }
    if (params.max_concurrent_faults >= 0 &&
        static_cast<int>(faulty.size()) > params.max_concurrent_faults) {
      faulty.resize(static_cast<std::size_t>(params.max_concurrent_faults));
    }
    bool sensor_faulty = rng.chance(params.sensor_fault_prob);

    ++stats.frames;
    const bool was_fault_free = faulty.empty() && !sensor_faulty;
    if (was_fault_free) ++stats.fault_free_frames;

    const Value lie = Value::of(sensor_value.raw() + 7);
    bool counted = false;
    for (int attempt = 0; attempt <= params.max_retries && !counted;
         ++attempt) {
      auto adversary =
          faults::equivocator(sensor_value, lie);
      const FrameResult result = system.run_frame(
          sensor_value, faulty, sensor_faulty, *adversary,
          /*faulty_output=*/Value::of(2 * lie.raw() + 1));

      switch (result.outcome) {
        case VoterOutcome::kCorrect:
          if (was_fault_free) {
            // already counted as fault-free
          } else if (attempt == 0) {
            ++stats.forward_recovered;
          } else {
            ++stats.backward_recovered;  // faults may have cleared meanwhile
          }
          counted = true;
          break;
        case VoterOutcome::kIncorrect:
          ++stats.unsafe_failures;
          counted = true;
          break;
        case VoterOutcome::kDefault:
          if (attempt == params.max_retries) {
            ++stats.default_exhausted;
            counted = true;
          } else {
            // Backward recovery: re-do the computation; transient faults
            // may have cleared in the meantime.
            std::vector<int> still_faulty;
            for (int c : faulty) {
              if (!rng.chance(params.repair_prob)) still_faulty.push_back(c);
            }
            faulty.swap(still_faulty);
            if (sensor_faulty && rng.chance(params.repair_prob)) {
              sensor_faulty = false;
            }
          }
          break;
      }
    }
  }
  return stats;
}

}  // namespace da::channels
