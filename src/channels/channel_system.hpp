#pragma once

#include <functional>
#include <vector>

#include "channels/voter.hpp"
#include "core/scenario.hpp"
#include "sim/adversary.hpp"
#include "util/ids.hpp"
#include "util/value.hpp"

namespace da::channels {

/// The multiple-channel fault-tolerant system of Section 3 / Figure 1:
/// a sensor (the sender) distributes its reading to computation channels;
/// each channel computes on the agreed input; an external entity votes on
/// the channel outputs.
struct ChannelSystemConfig {
  enum class Kind {
    /// Figure 1(a): 3m channels + Byzantine agreement + majority voter
    /// (2m+1 of 3m). Conditions B.1/B.2 — and no guarantee past m faults.
    kByzantineMajority,
    /// Figure 1(b): 2m+u channels + m/u-degradable agreement +
    /// (m+u)-out-of-(2m+u) voter. Conditions C.1-C.3.
    kDegradable,
  };

  Kind kind = Kind::kDegradable;
  int m = 1;
  int u = 2;  // ignored (= m) for kByzantineMajority

  [[nodiscard]] int channel_count() const;
  [[nodiscard]] std::size_t vote_threshold() const;
  /// Agreement population: the sensor plus the channels.
  [[nodiscard]] int node_count() const { return channel_count() + 1; }
};

/// Result of one input frame through the system.
struct FrameResult {
  Value voter_output{};
  VoterOutcome outcome = VoterOutcome::kDefault;
  /// Distinct states among fault-free channels (C.3: 1 up to m faults,
  /// at most 2 — one of them the safe default state — up to u).
  int distinct_fault_free_states = 0;
  /// True if fault-free states are within {correct state, default state}.
  bool divergence_graceful = true;
  std::vector<Value> channel_outputs;  // indexed by channel (0-based)
};

/// Runs input frames through the configured system. Node 0 is the sensor;
/// channels are agreement nodes 1..channel_count().
class ChannelSystem {
 public:
  using Computation = std::function<Value(Value input)>;

  explicit ChannelSystem(ChannelSystemConfig config);

  /// Replace the per-channel computation (default: x -> 2x+1).
  void set_computation(Computation f);

  /// Runs one frame. `faulty_channels` lists faulty channel indices
  /// (0-based, i.e. agreement nodes faulty_channels[i]+1); `sensor_faulty`
  /// marks the sensor itself Byzantine. `adversary` drives all faulty
  /// nodes during agreement. Faulty channels hand `faulty_output` to the
  /// external voter (colluding on one wrong value — the worst case for a
  /// threshold voter).
  [[nodiscard]] FrameResult run_frame(Value sensor_value,
                                      const std::vector<int>& faulty_channels,
                                      bool sensor_faulty,
                                      sim::Adversary& adversary,
                                      Value faulty_output) const;

  [[nodiscard]] const ChannelSystemConfig& config() const { return config_; }

 private:
  ChannelSystemConfig config_;
  Computation compute_;
};

}  // namespace da::channels
