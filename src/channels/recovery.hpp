#pragma once

#include <cstdint>
#include <vector>

#include "channels/channel_system.hpp"

namespace da::channels {

/// Forward/backward recovery driver (Section 3's motivation).
///
/// Frames stream through the channel system. A frame whose vote is
/// correct despite faults is *forward recovery* — the redundancy masked
/// the faults. A frame whose vote is the default value triggers
/// *backward recovery*: the computation is re-done (up to `max_retries`
/// times), modelling transient faults that clear with probability
/// `repair_prob` per retry. A frame whose vote is a wrong non-default
/// value is an unsafe failure — exactly what C.2 rules out (up to u
/// faults) and what the classical system cannot rule out past m faults.
struct RecoveryStats {
  int frames = 0;
  int fault_free_frames = 0;
  int forward_recovered = 0;   // faults present, vote still correct
  int backward_recovered = 0;  // default vote, retry eventually correct
  int default_exhausted = 0;   // default vote, retries never succeeded (safe)
  int unsafe_failures = 0;     // wrong non-default vote (unsafe!)

  [[nodiscard]] int safe_frames() const {
    return fault_free_frames + forward_recovered + backward_recovered +
           default_exhausted;
  }
};

struct RecoveryParams {
  int frames = 100;
  int max_retries = 3;
  /// Per-retry probability that a transiently faulty channel is repaired.
  double repair_prob = 0.5;
  /// Per-frame probability that each channel is faulty.
  double channel_fault_prob = 0.1;
  /// Per-frame probability that the sensor is faulty.
  double sensor_fault_prob = 0.0;
  /// Fault-hypothesis cap: at most this many channels fail per frame
  /// (-1 = unlimited). The paper's guarantees are conditional on f <= u;
  /// experiments that evaluate the guarantee keep the hypothesis true,
  /// experiments that probe beyond it lift the cap.
  int max_concurrent_faults = -1;
  std::uint64_t seed = 42;
};

/// Streams frames with randomly injected faults (two-faced equivocating
/// adversary) and applies the forward/backward recovery policy.
[[nodiscard]] RecoveryStats run_recovery_experiment(
    const ChannelSystem& system, const RecoveryParams& params);

}  // namespace da::channels
