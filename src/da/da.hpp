#pragma once

/// Umbrella header for the degradable-agreement library.
///
///   #include "da/da.hpp"
///
/// pulls in the public API: Config / ScenarioSpec, the DegradableAgreement
/// and LamportAgreement protocols, the D.1-D.4 condition checker, the
/// bounds of Theorems 2-3, and the adversary library.

#include "core/agreement.hpp"
#include "core/bounds.hpp"
#include "core/byz.hpp"
#include "core/checker.hpp"
#include "core/scenario.hpp"
#include "faults/adversaries.hpp"
#include "faults/scripted.hpp"
#include "protocols/common/vote.hpp"
#include "util/value.hpp"
