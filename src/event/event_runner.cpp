#include "event/event_runner.hpp"

#include <algorithm>
#include <queue>

#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace da::event {

namespace {

enum class Kind { kSend, kArrival, kDeadline };

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // ties broken by schedule order: deterministic
  Kind kind = Kind::kSend;
  std::size_t node_index = 0;  // kSend / kDeadline
  int round = 0;
  sim::Message msg{};  // kArrival
};

struct Later {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

double latency_of(const TimingModel& timing, const sim::Message& msg) {
  std::uint64_t h = mix64(timing.seed, static_cast<std::uint64_t>(msg.from));
  h = mix64(h, static_cast<std::uint64_t>(msg.to));
  h = mix64(h, static_cast<std::uint64_t>(msg.round));
  h = mix64(h, msg.path.hash());
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return timing.min_latency +
         unit * (timing.max_latency - timing.min_latency);
}

/// Real time at which `clock` reads `local`.
double real_of(const clocksync::HardwareClock& clock, double local) {
  return (local - clock.offset()) / (1.0 + clock.drift());
}

}  // namespace

EventRunner::EventRunner(std::vector<std::unique_ptr<sim::Process>> processes,
                         sim::RunOptions options, TimingModel timing,
                         std::vector<clocksync::HardwareClock> clocks)
    : processes_(std::move(processes)),
      options_(std::move(options)),
      timing_(timing),
      clocks_(std::move(clocks)) {
  DA_EXPECTS(!processes_.empty());
  DA_EXPECTS(clocks_.size() == processes_.size());
  DA_EXPECTS(options_.faulty.empty() || options_.adversary != nullptr);
  DA_EXPECTS(timing_.round_period > 0.0);
  DA_EXPECTS(timing_.timeout > 0.0 &&
             timing_.timeout <= timing_.round_period);
  DA_EXPECTS(timing_.min_latency >= 0.0 &&
             timing_.min_latency <= timing_.max_latency);
}

EventRunResult EventRunner::run() {
  const int rounds = processes_[0]->total_rounds();
  for (const auto& p : processes_) DA_EXPECTS(p->total_rounds() == rounds);
  const std::size_t n = processes_.size();

  static const obs::Counter executions("event.executions");
  static const obs::Counter sent("event.messages_sent");
  static const obs::Counter delivered_count("event.messages_delivered");
  static const obs::Counter false_timeouts("event.false_timeouts");
  static const obs::Counter fabrications_dropped(
      "event.fabrications_dropped");
  static const obs::Histogram run_ms("event.run_ms");
  const obs::MetricsScope metrics_scope;
  const obs::ScopedTimer run_timer(run_ms);
  executions.add();

  const sim::NodeIndex index(processes_);  // asserts ids unique

  EventRunResult result;
  result.base.rounds = rounds;

  std::priority_queue<Event, std::vector<Event>, Later> queue;
  std::uint64_t seq = 0;

  // Pre-schedule every node's send and deadline instants. For node i,
  // round r: send at local r*P, inbox closes at local r*P + T. Pushing
  // Deadline(r) right after Send(r) keeps same-instant ties (T == P)
  // ordered deadline-before-next-send per node.
  for (std::size_t i = 0; i < n; ++i) {
    for (int r = 0; r < rounds; ++r) {
      const double local = r * timing_.round_period;
      queue.push(Event{.time = real_of(clocks_[i], local),
                       .seq = seq++,
                       .kind = Kind::kSend,
                       .node_index = i,
                       .round = r});
      queue.push(Event{.time = real_of(clocks_[i], local + timing_.timeout),
                       .seq = seq++,
                       .kind = Kind::kDeadline,
                       .node_index = i,
                       .round = r});
    }
  }

  // inbox[i][r]: messages buffered for node i's round r while it is open.
  std::vector<std::vector<std::vector<sim::Message>>> inbox(
      n, std::vector<std::vector<sim::Message>>(
             static_cast<std::size_t>(rounds)));
  std::vector<std::vector<bool>> closed(
      n, std::vector<bool>(static_cast<std::size_t>(rounds), false));
  // Round r+1 sends, produced by on_round(r) and held until the send event.
  std::vector<std::vector<sim::Message>> pending_outbox(n);

  const auto dispatch = [&](std::vector<sim::Message>&& outbox,
                            std::size_t from_index, int round, double now,
                            bool fabricated) {
    const NodeId from = processes_[from_index]->id();
    const bool faulty = sim::is_faulty(options_, from);
    for (sim::Message& msg : outbox) {
      DA_EXPECTS(msg.from == from);
      msg.round = round;
      ++result.base.messages_sent;
      sent.add();
      if (options_.spans != nullptr) options_.spans->note_send(round, 1);
      for (const sim::Message& delivered :
           sim::filter_fanout(msg, options_, faulty, fabricated)) {
        if (index.at(delivered.to) == sim::NodeIndex::npos) {
          // Only fabricate() can aim at a non-participant: drop before an
          // arrival event is ever scheduled (the arrival handler indexes
          // the receiver's inbox buffers directly).
          DA_EXPECTS(fabricated);
          fabrications_dropped.add();
          continue;
        }
        double latency = latency_of(timing_, delivered);
        if (options_.network != nullptr) {
          // Injection holdback: deliver later within the receiver's round
          // window. The fraction applies to the window remaining after the
          // link latency, so (with clocks synchronized and max_latency <=
          // timeout) a held-back message still beats the deadline.
          const double frac = options_.network->holdback(delivered);
          if (frac > 0.0 && timing_.timeout > latency) {
            latency += frac * (timing_.timeout - latency);
          }
        }
        queue.push(Event{.time = now + latency,
                         .seq = seq++,
                         .kind = Kind::kArrival,
                         .node_index = 0,
                         .round = round,
                         .msg = delivered});
      }
    }
  };

  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();
    switch (event.kind) {
      case Kind::kSend: {
        sim::Process& proc = *processes_[event.node_index];
        std::vector<sim::Message> outbox =
            event.round == 0 ? proc.start()
                             : std::move(pending_outbox[event.node_index]);
        pending_outbox[event.node_index].clear();
        dispatch(std::move(outbox), event.node_index, event.round, event.time,
                 /*fabricated=*/false);
        if (sim::is_faulty(options_, proc.id())) {
          dispatch(options_.adversary->fabricate(proc.id(), event.round),
                   event.node_index, event.round, event.time,
                   /*fabricated=*/true);
        }
        break;
      }
      case Kind::kArrival: {
        const std::size_t to = index.at(event.msg.to);
        DA_EXPECTS(to != sim::NodeIndex::npos);
        const int r = event.msg.round;
        if (r < 0 || r >= rounds) break;
        if (closed[to][static_cast<std::size_t>(r)]) {
          // Arrived after the receiver's deadline: the receiver has already
          // declared this message absent — Section 6.1's false timeout.
          ++result.false_timeouts;
          false_timeouts.add();
          break;
        }
        ++result.base.messages_delivered;
        delivered_count.add();
        if (options_.spans != nullptr) options_.spans->note_deliver(r, 1);
        if (options_.trace != nullptr) options_.trace->record(event.msg);
        inbox[to][static_cast<std::size_t>(r)].push_back(event.msg);
        break;
      }
      case Kind::kDeadline: {
        sim::Process& proc = *processes_[event.node_index];
        const std::size_t r = static_cast<std::size_t>(event.round);
        closed[event.node_index][r] = true;
        std::vector<sim::Message> box;
        box.swap(inbox[event.node_index][r]);
        sim::sort_inbox(box);
        if (options_.spans != nullptr) {
          options_.spans->note_resolve(event.round, 1);
        }
        std::vector<sim::Message> next = proc.on_round(event.round, box);
        if (event.round + 1 < rounds) {
          pending_outbox[event.node_index] = std::move(next);
        } else {
          result.completion_time =
              std::max(result.completion_time, event.time);
        }
        break;
      }
    }
  }

  if (options_.spans != nullptr) options_.spans->note_done(rounds);
  for (const auto& p : processes_) {
    result.base.decisions[p->id()] = p->decide();
  }
  return result;
}

std::vector<clocksync::HardwareClock> perfect_clocks(int n) {
  DA_EXPECTS(n >= 1);
  return std::vector<clocksync::HardwareClock>(
      static_cast<std::size_t>(n), clocksync::HardwareClock(0.0, 0.0));
}

std::vector<clocksync::HardwareClock> skewed_clocks(int n,
                                                    double offset_spread,
                                                    double drift,
                                                    std::uint64_t seed) {
  DA_EXPECTS(n >= 1);
  Rng rng(seed);
  std::vector<clocksync::HardwareClock> clocks;
  clocks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    clocks.emplace_back((rng.uniform() * 2 - 1) * offset_spread,
                        (rng.uniform() * 2 - 1) * drift);
  }
  return clocks;
}

}  // namespace da::event
