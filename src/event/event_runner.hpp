#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "clocksync/hardware_clock.hpp"
#include "sim/process.hpp"
#include "sim/runner.hpp"

namespace da::event {

/// Timing model of the event-driven runtime.
///
/// The synchronous-round abstraction the paper's proofs assume is
/// implemented the way a real system would (Section 6): each node owns a
/// hardware clock; it transmits its round-r messages when its *local*
/// clock reads r * round_period, and declares a round-r message absent if
/// it has not arrived by local time r * round_period + timeout. With
/// synchronized clocks and timeout >= max latency + skew no fault-free
/// message is ever missed; with unsynchronized clocks the "false timeout"
/// of Section 6.1 emerges mechanistically rather than by an injected drop.
struct TimingModel {
  /// Local-clock spacing between round boundaries.
  double round_period = 1.0;
  /// How long past the boundary a node keeps its round inbox open.
  /// Must be <= round_period (a node closes round r before sending r+1).
  double timeout = 0.5;
  /// Per-message link latency, uniform in [min_latency, max_latency],
  /// derived deterministically from the message identity.
  double min_latency = 0.01;
  double max_latency = 0.10;
  std::uint64_t seed = 1;
};

/// RunResult plus the timing facts of the execution.
struct EventRunResult {
  sim::RunResult base;
  /// Messages that arrived after the receiver's deadline (observed by the
  /// receiver as absence — V_d).
  std::size_t false_timeouts = 0;
  /// Real time at which the last node decided.
  double completion_time = 0.0;
};

/// Discrete-event executor for the same `sim::Process` protocol objects.
///
/// Three event types drive the run: a node's round-r *send* (at local time
/// r*P), a message *arrival* (send time + link latency), and a node's
/// round-r *deadline* (local r*P + timeout), at which the node consumes
/// its round inbox and hands the runner its round r+1 messages. Events are
/// totally ordered by (real time, sequence number), so runs are exactly
/// reproducible.
///
/// `clocks[i]` is node i's hardware clock; pass all-zero clocks for a
/// perfectly synchronous execution (then the results coincide with
/// `sim::SyncRunner` whenever max_latency <= timeout).
class EventRunner {
 public:
  EventRunner(std::vector<std::unique_ptr<sim::Process>> processes,
              sim::RunOptions options, TimingModel timing,
              std::vector<clocksync::HardwareClock> clocks);

  [[nodiscard]] EventRunResult run();

 private:
  std::vector<std::unique_ptr<sim::Process>> processes_;
  sim::RunOptions options_;
  TimingModel timing_;
  std::vector<clocksync::HardwareClock> clocks_;
};

/// Convenience: n perfectly synchronized drift-free clocks.
[[nodiscard]] std::vector<clocksync::HardwareClock> perfect_clocks(int n);

/// n clocks with offsets uniform in +-offset_spread and drifts uniform in
/// +-drift, seeded.
[[nodiscard]] std::vector<clocksync::HardwareClock> skewed_clocks(
    int n, double offset_spread, double drift, std::uint64_t seed);

}  // namespace da::event
