#include "rt/threaded_runner.hpp"

#include <barrier>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "rt/mailbox.hpp"
#include "util/contracts.hpp"

namespace da::rt {

ThreadedRunner::ThreadedRunner(
    std::vector<std::unique_ptr<sim::Process>> processes,
    sim::RunOptions options)
    : processes_(std::move(processes)), options_(std::move(options)) {
  DA_EXPECTS(!processes_.empty());
  DA_EXPECTS(options_.faulty.empty() || options_.adversary != nullptr);
}

sim::RunResult ThreadedRunner::run() {
  const int rounds = processes_[0]->total_rounds();
  for (const auto& p : processes_) DA_EXPECTS(p->total_rounds() == rounds);

  static const obs::Counter executions("rt.executions");
  static const obs::Counter sent("rt.messages_sent");
  static const obs::Counter delivered_count("rt.messages_delivered");
  static const obs::Counter wire_bytes("rt.wire_bytes");
  static const obs::Counter fabrications_dropped("rt.fabrications_dropped");
  static const obs::Histogram run_ms("rt.run_ms");
  const obs::MetricsScope metrics_scope;
  const obs::ScopedTimer run_timer(run_ms);
  executions.add();

  const std::size_t n = processes_.size();
  const sim::NodeIndex index(processes_);  // asserts ids unique
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  mailboxes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    mailboxes.push_back(std::make_unique<Mailbox>(rounds));
  }

  std::barrier barrier(static_cast<std::ptrdiff_t>(n));
  std::mutex shared_mutex;  // serializes adversary/network/trace/counters
  sim::RunResult result;
  result.rounds = rounds;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto dispatch = [&](std::vector<sim::Message>&& outbox, NodeId from,
                            int round, bool fabricated, bool faulty) {
    for (sim::Message& msg : outbox) {
      DA_EXPECTS(msg.from == from);
      msg.round = round;
      std::vector<sim::Message> copies;
      {
        const std::lock_guard<std::mutex> lock(shared_mutex);
        ++result.messages_sent;
        copies = sim::filter_fanout(msg, options_, faulty, fabricated);
        // Fabricated messages may target non-participants: drop them
        // before they are counted as delivered, traced, or deposited.
        std::erase_if(copies, [&](const sim::Message& copy) {
          if (index.at(copy.to) != sim::NodeIndex::npos) return false;
          DA_EXPECTS(fabricated);
          fabrications_dropped.add();
          return true;
        });
        result.messages_delivered += copies.size();
        if (options_.trace != nullptr) {
          for (const sim::Message& delivered : copies) {
            options_.trace->record(delivered);
          }
        }
        if (options_.spans != nullptr) {
          options_.spans->note_send(round, 1);
          options_.spans->note_deliver(round, copies.size());
        }
      }
      sent.add();
      for (const sim::Message& delivered : copies) {
        delivered_count.add();
        wire_bytes.add(sim::wire_size_bytes(delivered));
        mailboxes[index.at(delivered.to)]->deposit(round, delivered);
      }
    }
  };

  const auto node_main = [&](sim::Process& proc) {
    // Flush this node thread's staged metric deltas before it joins (TLS
    // writes in dispatch() need no lock; the merge happens here, once).
    const obs::MetricsScope node_metrics_scope;
    try {
      const NodeId self = proc.id();
      const bool faulty = sim::is_faulty(options_, self);
      const std::size_t my_index = index.at(self);

      // Round-0 send phase.
      dispatch(proc.start(), self, 0, /*fabricated=*/false, faulty);
      if (faulty) {
        std::vector<sim::Message> extra;
        {
          const std::lock_guard<std::mutex> lock(shared_mutex);
          extra = options_.adversary->fabricate(self, 0);
        }
        dispatch(std::move(extra), self, 0, /*fabricated=*/true, faulty);
      }
      barrier.arrive_and_wait();

      for (int r = 0; r < rounds; ++r) {
        const std::vector<sim::Message> inbox = mailboxes[my_index]->drain(r);
        std::vector<sim::Message> outbox = proc.on_round(r, inbox);
        if (options_.spans != nullptr) {
          const std::lock_guard<std::mutex> lock(shared_mutex);
          options_.spans->note_resolve(r, 1);
        }
        if (r + 1 < rounds) {
          dispatch(std::move(outbox), self, r + 1, /*fabricated=*/false,
                   faulty);
          if (faulty) {
            std::vector<sim::Message> extra;
            {
              const std::lock_guard<std::mutex> lock(shared_mutex);
              extra = options_.adversary->fabricate(self, r + 1);
            }
            dispatch(std::move(extra), self, r + 1, /*fabricated=*/true,
                     faulty);
          }
        }
        barrier.arrive_and_wait();
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      // Keep the barrier protocol alive so sibling threads do not hang:
      // this thread has already arrived an unknown number of times, so the
      // only safe option is to drop out of the barrier entirely.
      barrier.arrive_and_drop();
    }
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(n);
    for (const auto& p : processes_) {
      threads.emplace_back([&node_main, &p] { node_main(*p); });
    }
  }  // join

  if (first_error) std::rethrow_exception(first_error);
  if (options_.spans != nullptr) options_.spans->note_done(rounds);

  for (const auto& p : processes_) result.decisions[p->id()] = p->decide();
  return result;
}

}  // namespace da::rt
