#pragma once

#include <condition_variable>
#include <mutex>
#include <vector>

#include "sim/message.hpp"

namespace da::rt {

/// A thread-safe per-node, per-round mailbox. Senders deposit during the
/// send phase of round r; the owner drains once the round barrier has been
/// passed, so deposits and drains for one round never overlap (the barrier
/// provides the ordering; the mutex makes concurrent deposits safe).
class Mailbox {
 public:
  explicit Mailbox(int rounds);

  void deposit(int round, const sim::Message& msg);

  /// All messages deposited for `round`, in the canonical inbox order.
  [[nodiscard]] std::vector<sim::Message> drain(int round);

  [[nodiscard]] std::size_t total_deposited() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<sim::Message>> by_round_;
  std::size_t deposited_ = 0;
};

}  // namespace da::rt
