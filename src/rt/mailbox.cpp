#include "rt/mailbox.hpp"

#include "sim/runner.hpp"
#include "util/contracts.hpp"

namespace da::rt {

Mailbox::Mailbox(int rounds) {
  DA_EXPECTS(rounds >= 1);
  by_round_.resize(static_cast<std::size_t>(rounds));
}

void Mailbox::deposit(int round, const sim::Message& msg) {
  DA_EXPECTS(round >= 0 &&
             static_cast<std::size_t>(round) < by_round_.size());
  const std::lock_guard<std::mutex> lock(mutex_);
  by_round_[static_cast<std::size_t>(round)].push_back(msg);
  ++deposited_;
}

std::vector<sim::Message> Mailbox::drain(int round) {
  DA_EXPECTS(round >= 0 &&
             static_cast<std::size_t>(round) < by_round_.size());
  std::vector<sim::Message> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.swap(by_round_[static_cast<std::size_t>(round)]);
  }
  sim::sort_inbox(out);
  return out;
}

std::size_t Mailbox::total_deposited() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return deposited_;
}

}  // namespace da::rt
