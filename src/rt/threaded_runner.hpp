#pragma once

#include <memory>
#include <vector>

#include "sim/process.hpp"
#include "sim/runner.hpp"

namespace da::rt {

/// Thread-per-node executor with the same observable semantics as
/// `sim::SyncRunner`.
///
/// Each node runs on its own `std::jthread`; rounds are separated by a
/// `std::barrier`, so every thread finishes depositing its round-r messages
/// before any thread reads its round-r inbox — exactly the synchronous-round
/// discipline the paper's proofs assume ("the clocks on all the fault-free
/// nodes are synchronized", Section 2; the barrier *is* our synchronized
/// clock).
///
/// Determinism: the adversary and network model are shared across threads;
/// a mutex serializes calls into them, and all stochastic behaviour in the
/// provided adversaries/networks is a pure function of the message identity
/// (never of call order), so the threaded runtime decides exactly what the
/// deterministic simulator decides.
class ThreadedRunner {
 public:
  ThreadedRunner(std::vector<std::unique_ptr<sim::Process>> processes,
                 sim::RunOptions options);

  [[nodiscard]] sim::RunResult run();

 private:
  std::vector<std::unique_ptr<sim::Process>> processes_;
  sim::RunOptions options_;
};

}  // namespace da::rt
