#include "protocols/crusader/crusader.hpp"

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace da::protocols::crusader {

std::vector<std::unique_ptr<sim::Process>> make_crusader_processes(
    int n, int m, NodeId sender, Value value) {
  DA_EXPECTS(m >= 0);
  static const obs::Counter instances("protocol.crusader.instances");
  instances.add();
  return make_eig_processes(n, sender, value, crusader_rounds(),
                            std::make_shared<ByzResolver>(m));
}

std::uint64_t crusader_message_count(int n) {
  return eig_message_count(n, crusader_rounds());
}

bool crusader_agreement_holds(
    Value sender_value, bool sender_faulty,
    const std::vector<NodeId>& fault_free_receivers,
    const std::map<NodeId, Value>& decisions) {
  Value agreed = Value::def();
  for (NodeId r : fault_free_receivers) {
    const auto it = decisions.find(r);
    DA_EXPECTS(it != decisions.end());
    const Value d = it->second;
    if (d.is_default()) {
      if (!sender_faulty) return false;  // must adopt a correct sender
      continue;
    }
    if (!sender_faulty && d != sender_value) return false;
    if (agreed.is_default()) {
      agreed = d;
    } else if (d != agreed) {
      return false;  // two distinct non-default decisions
    }
  }
  return true;
}

}  // namespace da::protocols::crusader
