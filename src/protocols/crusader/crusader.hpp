#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "protocols/common/eig_process.hpp"
#include "sim/process.hpp"
#include "util/ids.hpp"
#include "util/value.hpp"

namespace da::protocols::crusader {

/// Crusader agreement (Dolev, "The Byzantine generals strike again", the
/// paper's reference [2]): fault-free receivers either agree on the
/// sender's value or explicitly detect "sender faulty".
///
/// We realize it as the paper's own BYZ(1,m) building block used as a
/// standalone two-round protocol — send, echo, VOTE(n-1-m, n-1) — with the
/// default value V_d playing the role of Dolev's "sender is faulty" verdict.
/// Lemma 2 of the paper is then exactly the crusader property set:
///   - f <= m, sender fault-free: all fault-free decide the sender's value;
///   - any f <= u: every fault-free decides the sender's value or V_d
///     (sender fault-free), and for m = 1 at most one non-default value
///     exists among fault-free decisions (sender faulty).
[[nodiscard]] std::vector<std::unique_ptr<sim::Process>>
make_crusader_processes(int n, int m, NodeId sender, Value value);

[[nodiscard]] constexpr int crusader_rounds() { return 2; }

/// Point-to-point messages of one crusader execution with n nodes and no
/// omissions: the depth-2 EIG pattern, eig_message_count(n, 2) =
/// (n-1) + (n-1)(n-2) = (n-1)^2.
[[nodiscard]] std::uint64_t crusader_message_count(int n);

/// Crusader conditions: (1) fault-free sender => all fault-free receivers
/// decide its value; (2) receivers that decide a non-default value all
/// decide the same one.
[[nodiscard]] bool crusader_agreement_holds(
    Value sender_value, bool sender_faulty,
    const std::vector<NodeId>& fault_free_receivers,
    const std::map<NodeId, Value>& decisions);

}  // namespace da::protocols::crusader
